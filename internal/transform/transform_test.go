package transform

import (
	"math"
	"testing"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/statevec"
	"edm/internal/workloads"
)

func TestInvertMeasureStructure(t *testing.T) {
	c := circuit.New(3, 3)
	c.H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	v := InvertMeasure(c)
	if err := v.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two X gates inserted, original untouched.
	s := v.Circuit.Stats()
	if s.SG != c.Stats().SG+2 {
		t.Fatalf("SG = %d, want %d", s.SG, c.Stats().SG+2)
	}
	if len(c.Ops) != 4 {
		t.Fatal("source circuit mutated")
	}
	// Decode flips exactly the measured bits.
	raw := bitstr.MustParse("000")
	dec := v.Decode(raw)
	if dec.String() != "110" {
		t.Fatalf("Decode = %v", dec)
	}
}

func TestIdentityVariant(t *testing.T) {
	c := circuit.New(1, 1)
	c.X(0).Measure(0, 0)
	v := Identity(c)
	b := bitstr.MustParse("1")
	if !v.Decode(b).Equal(b) {
		t.Fatal("identity decode changed outcome")
	}
}

// TestInvertMeasureIdealEquivalence: on a noiseless machine the decoded
// output of the inverted variant equals the original program's ideal
// distribution exactly.
func TestInvertMeasureIdealEquivalence(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.IdealProfile(), rng.New(1))
	m := backend.New(cal)
	w := workloads.BV("1011")
	comp := mapper.NewCompiler(cal)
	exe, err := comp.Compile(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	want, err := statevec.IdealDist(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range BothBases(exe.Circuit) {
		counts, err := Run(m, v, 2000, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if tv := counts.Dist().TV(want); tv > 1e-9 {
			t.Fatalf("variant %s deviates on ideal machine: TV=%v", v.Name, tv)
		}
	}
}

// TestInvertMeasureBeatsBiasOnOnes: with readout heavily biased against
// |1>, a program whose answer is all-ones reads out far more reliably
// through the inverted variant.
func TestInvertMeasureBeatsBiasOnOnes(t *testing.T) {
	cal := device.Generate(device.Linear(4), device.IdealProfile(), rng.New(1))
	for q := 0; q < 4; q++ {
		cal.Meas10[q] = 0.25 // strong 1 -> 0 bias
		cal.Meas01[q] = 0.01
	}
	m := backend.New(cal)
	c := circuit.New(4, 4)
	for q := 0; q < 4; q++ {
		c.X(q)
	}
	c.MeasureAll()
	correct := bitstr.Ones(4)

	plain, err := Run(m, Identity(c), 20000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Run(m, InvertMeasure(c), 20000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pPlain := plain.Dist().PST(correct)
	pInv := inv.Dist().PST(correct)
	// Plain: each bit survives with ~0.75; inverted: ~0.99.
	if math.Abs(pPlain-math.Pow(0.75, 4)) > 0.03 {
		t.Fatalf("plain PST = %v, want ~%v", pPlain, math.Pow(0.75, 4))
	}
	if pInv < 0.9 {
		t.Fatalf("inverted PST = %v, want > 0.9", pInv)
	}
}

func TestEnsembleGrid(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(7))
	m := backend.New(cal.Drift(0.1, rng.New(8)))
	comp := mapper.NewCompiler(cal)
	w := workloads.BV("1011")
	execs, err := comp.TopK(w.Circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Ensemble(m, execs, BothBases, 2002, core.WeightUniform, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 { // 2 mappings x 2 bases
		t.Fatalf("cells = %d", len(res.Cells))
	}
	total := 0
	variants := map[string]int{}
	for _, c := range res.Cells {
		total += c.Counts.Total()
		variants[c.Variant]++
		if math.Abs(c.Weight-0.25) > 1e-12 {
			t.Fatalf("uniform weight = %v", c.Weight)
		}
	}
	if total != 2002 {
		t.Fatalf("total trials = %d", total)
	}
	if variants["identity"] != 2 || variants["invert-measure"] != 2 {
		t.Fatalf("variants = %v", variants)
	}
	if math.Abs(res.Merged.Sum()-1) > 1e-9 {
		t.Fatalf("merged mass = %v", res.Merged.Sum())
	}
}

func TestEnsembleReducesToEDM(t *testing.T) {
	// With only the identity variant, Ensemble must equal core's EDM run
	// under the same trial split and seeds... structurally: same cell
	// count and a valid merged distribution.
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(11))
	m := backend.New(cal)
	comp := mapper.NewCompiler(cal)
	w := workloads.BV("101")
	execs, err := comp.TopK(w.Circuit, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Ensemble(m, execs,
		func(c *circuit.Circuit) []Variant { return []Variant{Identity(c)} },
		900, core.WeightUniform, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Counts.Total() != 300 {
			t.Fatalf("cell trials = %d", c.Counts.Total())
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	cal := device.Generate(device.Linear(3), device.IdealProfile(), rng.New(1))
	m := backend.New(cal)
	if _, err := Ensemble(m, nil, BothBases, 100, core.WeightUniform, rng.New(1)); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	comp := mapper.NewCompiler(cal)
	c := circuit.New(2, 2)
	c.H(0).MeasureAll()
	execs, err := comp.TopK(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ensemble(m, execs, BothBases, 1, core.WeightUniform, rng.New(1)); err == nil {
		t.Fatal("insufficient trials accepted")
	}
	if _, err := Ensemble(m, execs,
		func(*circuit.Circuit) []Variant { return nil },
		100, core.WeightUniform, rng.New(1)); err == nil {
		t.Fatal("no variants accepted")
	}
}

// TestGridImprovesUnderBiasAndCorrelation: on a machine with both
// mapping-correlated errors and measurement bias, the (mapping x basis)
// grid should beat plain EDM on median IST for a ones-heavy answer.
func TestGridImprovesUnderBiasAndCorrelation(t *testing.T) {
	w := workloads.BV("110111") // heavy key: five 1-bits suffer the bias
	var edm, grid []float64
	rounds := 5
	for round := 0; round < rounds; round++ {
		cal := device.Generate(device.Melbourne(), device.MelbourneProfile(),
			rng.New(uint64(40+round)))
		m := backend.New(cal.Drift(0.2, rng.New(uint64(50+round))))
		comp := mapper.NewCompiler(cal)
		execs, err := comp.TopK(w.Circuit, 4)
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.New(uint64(60 + round))
		plain, err := Ensemble(m, execs,
			func(c *circuit.Circuit) []Variant { return []Variant{Identity(c)} },
			8192, core.WeightUniform, seed.Derive("edm"))
		if err != nil {
			t.Fatal(err)
		}
		both, err := Ensemble(m, execs, BothBases, 8192, core.WeightUniform, seed.Derive("grid"))
		if err != nil {
			t.Fatal(err)
		}
		edm = append(edm, plain.Merged.IST(w.Correct))
		grid = append(grid, both.Merged.IST(w.Correct))
	}
	me, mg := median(edm), median(grid)
	t.Logf("median IST: EDM=%.3f EDM+IM=%.3f", me, mg)
	if mg < me*0.85 {
		t.Errorf("grid ensemble fell well below EDM: %.3f vs %.3f", mg, me)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
