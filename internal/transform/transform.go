// Package transform implements *program-transformation diversity*, the
// extension the paper's conclusion marks as future work: "there are other
// sources of program transformations that can provide diversity as well".
//
// The flagship transform is Invert-and-Measure from the authors'
// companion MICRO-52 paper (cited in Section 7): measurement errors are
// state-dependent — reading |1> as 0 is far more likely than the reverse
// — so a variant that applies X to every measured qubit right before
// readout (and flips the recorded bits back in software) measures the
// complementary basis state and suffers the *opposite* bias. Splitting
// trials between the plain and inverted variants diversifies measurement
// mistakes exactly the way EDM diversifies mapping mistakes, and the two
// compose: an ensemble over (mapping x measurement-basis) cells.
package transform

import (
	"fmt"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/core"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
)

// Variant is a transformed executable together with the decoding that
// maps its raw outcomes back to the original program's outcome space.
type Variant struct {
	Name    string
	Circuit *circuit.Circuit
	// mask holds the classical bits whose recorded value must be flipped
	// to undo the transform.
	mask uint64
}

// Decode maps a raw outcome of the transformed circuit to the outcome of
// the original program.
func (v Variant) Decode(b bitstr.BitString) bitstr.BitString {
	return bitstr.New(b.Uint64()^v.mask, b.Len())
}

// Identity returns the untransformed variant.
func Identity(c *circuit.Circuit) Variant {
	return Variant{Name: "identity", Circuit: c.Clone()}
}

// InvertMeasure returns the Invert-and-Measure variant: an X gate is
// inserted immediately before every measurement, and Decode flips the
// corresponding classical bits back. On an ideal machine the decoded
// output distribution is identical to the original program's; on a
// machine with state-dependent readout bias the variant's measurement
// errors hit the *complementary* outcomes.
func InvertMeasure(c *circuit.Circuit) Variant {
	out := circuit.New(c.NumQubits, c.NumClbits)
	out.Name = c.Name
	var mask uint64
	for _, op := range c.Ops {
		if op.Kind == circuit.Measure {
			out.X(op.Qubits[0])
			mask |= 1 << uint(op.Cbit)
		}
		out.Ops = append(out.Ops, op.Clone())
	}
	return Variant{Name: "invert-measure", Circuit: out, mask: mask}
}

// BothBases returns the two measurement-basis variants, the split used by
// the companion paper.
func BothBases(c *circuit.Circuit) []Variant {
	return []Variant{Identity(c), InvertMeasure(c)}
}

// Run executes a variant on the machine and returns the *decoded*
// histogram, directly comparable with other variants' outputs.
func Run(m *backend.Machine, v Variant, trials int, r *rng.RNG) (*dist.Counts, error) {
	raw, err := m.Run(v.Circuit, trials, r)
	if err != nil {
		return nil, fmt.Errorf("transform: variant %s: %w", v.Name, err)
	}
	if v.mask == 0 {
		return raw, nil
	}
	decoded := dist.NewCounts(raw.N())
	for _, e := range raw.Sorted() {
		decoded.ObserveN(v.Decode(e.Value), e.Count)
	}
	return decoded, nil
}

// Cell is one (mapping, variant) member of a transform-diverse ensemble.
type Cell struct {
	Mapping int // index into the executables slice
	Variant string
	Counts  *dist.Counts
	Output  *dist.Dist
	Weight  float64
}

// GridResult is the outcome of a (mapping x transform) ensemble run.
type GridResult struct {
	Cells  []Cell
	Merged *dist.Dist
}

// Ensemble runs every combination of the given mappings and the variants
// produced by makeVariants, splitting the trial budget evenly across
// cells (earlier cells absorb the remainder), and merges the decoded
// outputs under the given weighting. With a single identity variant this
// reduces exactly to EDM/WEDM; with BothBases it is EDM composed with
// Invert-and-Measure.
func Ensemble(m *backend.Machine, execs []*mapper.Executable,
	makeVariants func(*circuit.Circuit) []Variant,
	trials int, weighting core.Weighting, r *rng.RNG) (*GridResult, error) {
	if len(execs) == 0 {
		return nil, fmt.Errorf("transform: empty ensemble")
	}
	type pending struct {
		mapping int
		v       Variant
	}
	var cells []pending
	for i, e := range execs {
		for _, v := range makeVariants(e.Circuit) {
			cells = append(cells, pending{mapping: i, v: v})
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("transform: no variants")
	}
	if trials < len(cells) {
		return nil, fmt.Errorf("transform: %d trials cannot cover %d cells", trials, len(cells))
	}
	res := &GridResult{}
	base := trials / len(cells)
	rem := trials % len(cells)
	for i, c := range cells {
		t := base
		if i < rem {
			t++
		}
		counts, err := Run(m, c.v, t, r.DeriveN("cell", i))
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, Cell{
			Mapping: c.mapping,
			Variant: c.v.Name,
			Counts:  counts,
			Output:  counts.Dist(),
		})
	}
	dists := make([]*dist.Dist, len(res.Cells))
	for i := range res.Cells {
		dists[i] = res.Cells[i].Output
	}
	weights := core.MergeWeights(dists, weighting)
	var total float64
	for _, w := range weights {
		total += w
	}
	for i := range res.Cells {
		res.Cells[i].Weight = weights[i] / total
	}
	res.Merged = dist.WeightedMerge(dists, weights)
	return res, nil
}
