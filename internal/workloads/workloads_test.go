package workloads

import (
	"fmt"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/statevec"
)

// TestGoldenOutputsIdeal verifies the defining property of every
// benchmark: on an ideal machine the golden output dominates. BV,
// greycode, fredkin, adder and decode24 are deterministic (probability 1);
// QAOA is probabilistic but its golden cut must be the unique most likely
// outcome.
func TestGoldenOutputsIdeal(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			d, err := statevec.IdealDist(w.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			ml := d.MostLikely()
			if !ml.Value.Equal(w.Correct) {
				t.Fatalf("most likely = %v (p=%v), golden = %v (p=%v)",
					ml.Value, ml.P, w.Correct, d.P(w.Correct))
			}
			if ist := d.IST(w.Correct); ist <= 1 {
				t.Fatalf("ideal IST = %v, want > 1", ist)
			}
		})
	}
}

func TestDeterministicWorkloadsAreCertain(t *testing.T) {
	for _, w := range []Workload{BV("110011"), BV("1101011"), Greycode6(), Fredkin(), Adder(), Decoder24()} {
		d, err := statevec.IdealDist(w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if p := d.P(w.Correct); p < 1-1e-9 {
			t.Errorf("%s: ideal P(correct) = %v, want 1", w.Name, p)
		}
	}
}

func TestQAOASuccessProbability(t *testing.T) {
	for _, n := range []int{5, 6, 7} {
		w := QAOA(n)
		d, err := statevec.IdealDist(w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		p := d.P(w.Correct)
		// Depth-1 QAOA concentrates only moderately; what matters for the
		// paper's experiments is that the golden cut strictly dominates.
		if p < 0.08 {
			t.Errorf("qaoa-%d: P(cut) = %v too small for reliable inference", n, p)
		}
		// Symmetry must be broken: the complementary cut is strictly less
		// likely.
		if pc := d.P(w.Correct.Invert()); pc >= p {
			t.Errorf("qaoa-%d: complement as likely as cut (%v vs %v)", n, pc, p)
		}
	}
}

func TestBVProperties(t *testing.T) {
	w := BV("110011")
	if w.Circuit.NumQubits != 7 || w.Circuit.NumClbits != 6 {
		t.Fatalf("registers: %d/%d", w.Circuit.NumQubits, w.Circuit.NumClbits)
	}
	s := w.Stats()
	if s.CX != 4 { // one CX per key bit set
		t.Fatalf("bv-6 logical CX = %d, want 4", s.CX)
	}
	if s.M != 6 {
		t.Fatalf("bv-6 M = %d", s.M)
	}
	// BV-7 has one more CX than BV-6 for this key pair (5 ones vs 4).
	if d := BV("1101011").Stats().CX - s.CX; d != 1 {
		t.Fatalf("bv-7 minus bv-6 CX = %d", d)
	}
}

func TestGreycodeShape(t *testing.T) {
	w := Greycode6()
	s := w.Stats()
	if s.CX != 5 {
		t.Fatalf("greycode CX = %d, want n-1 = 5 (paper Table 1)", s.CX)
	}
	if s.M != 6 {
		t.Fatalf("greycode M = %d, want 6", s.M)
	}
	if s.Swaps != 0 {
		t.Fatal("logical greycode has swaps")
	}
}

func TestGreycodeRoundTripProperty(t *testing.T) {
	// For several outputs, the constructed input must decode to exactly
	// that output.
	for _, out := range []string{"000000", "111111", "001000", "101010", "0110"} {
		w := Greycode(out)
		d, err := statevec.IdealDist(w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if p := d.P(bitstr.MustParse(out)); p < 1-1e-9 {
			t.Errorf("greycode(%s): P = %v", out, p)
		}
	}
}

func TestQAOAGateShape(t *testing.T) {
	// Two CX per path edge; SG = H(n) + RZ(n-1 edges + 1 field) + mixer 3n.
	for _, n := range []int{5, 6, 7} {
		w := QAOA(n)
		s := w.Stats()
		wantCX := 2 * (n - 1)
		if s.CX != wantCX {
			t.Fatalf("qaoa-%d CX = %d, want %d", n, s.CX, wantCX)
		}
		wantSG := n + (n - 1) + 1 + 3*n
		if s.SG != wantSG {
			t.Fatalf("qaoa-%d SG = %d, want %d", n, s.SG, wantSG)
		}
		if s.M != n {
			t.Fatalf("qaoa-%d M = %d", n, s.M)
		}
	}
}

func TestTable1Order(t *testing.T) {
	names := []string{"greycode-6", "bv-6", "bv-7", "qaoa-5", "qaoa-6", "qaoa-7", "fredkin", "adder", "decode24"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries", len(all))
	}
	for i, w := range all {
		if w.Name != names[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, w.Name, names[i])
		}
		if err := w.Circuit.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", w.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("bv-6")
	if !ok || w.Name != "bv-6" {
		t.Fatal("ByName(bv-6) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted garbage")
	}
}

func TestByNameGreycodeN(t *testing.T) {
	// Table 1's greycode-6 (output 001000) must shadow the parametric
	// builder at n=6.
	w6, ok := ByName("greycode-6")
	if !ok || w6.Correct.String() != "001000" {
		t.Fatalf("ByName(greycode-6) = %v %v, want Table 1 output 001000", w6.Correct, ok)
	}
	for _, n := range []int{2, 5, 48, bitstr.MaxBits} {
		name := fmt.Sprintf("greycode-%d", n)
		if n == 6 {
			continue
		}
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%s) failed", name)
		}
		if w.Name != name || w.Correct.Len() != n {
			t.Fatalf("ByName(%s): name=%s len=%d", name, w.Name, w.Correct.Len())
		}
		for i := 0; i < n; i++ {
			if w.Correct.Bit(i) != (i%2 == 0) {
				t.Fatalf("%s output %v is not alternating", name, w.Correct)
			}
		}
		st := w.Circuit.Stats()
		if st.CX != n-1 {
			t.Fatalf("%s has %d CX, want %d", name, st.CX, n-1)
		}
	}
	for _, bad := range []string{"greycode-1", "greycode-64", "greycode-x", "greycode-"} {
		if _, ok := ByName(bad); ok {
			t.Fatalf("ByName(%s) accepted out-of-range width", bad)
		}
	}
}

func TestBV2ForFigure1(t *testing.T) {
	w := BV("11")
	d, err := statevec.IdealDist(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if p := d.P(bitstr.MustParse("11")); p < 1-1e-9 {
		t.Fatalf("BV-2 ideal P = %v", p)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BV("") },
		func() { Greycode("1") },
		func() { QAOA(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRepetitionCode(t *testing.T) {
	w := RepetitionCode()
	d, err := statevec.IdealDist(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if p := d.P(w.Correct); p < 1-1e-9 {
		t.Fatalf("ideal P(correct) = %v", p)
	}
	// Not part of Table 1.
	if _, ok := ByName("repcode-3"); ok {
		t.Fatal("repcode leaked into All()")
	}
	// A single injected X on any code qubit between encode and decode is
	// corrected: the golden output still dominates.
	for q := 0; q < 3; q++ {
		c := w.Circuit.Clone()
		// Insert the error right after the barrier (index of barrier + 1).
		for i, op := range c.Ops {
			if op.Kind == circuit.Barrier {
				rest := append([]circuit.Op(nil), c.Ops[i+1:]...)
				c.Ops = append(c.Ops[:i+1], circuit.Op{Kind: circuit.X, Qubits: []int{q}, Cbit: -1})
				c.Ops = append(c.Ops, rest...)
				break
			}
		}
		d, err := statevec.IdealDist(c)
		if err != nil {
			t.Fatal(err)
		}
		// Data bit must still read 1 (bit 0 of the outcome).
		most := d.MostLikely().Value
		if !most.Bit(0) {
			t.Fatalf("X on qubit %d not corrected: most likely %v", q, most)
		}
	}
}

func TestGrover(t *testing.T) {
	for _, marked := range []string{"10", "01", "11", "101", "110", "000"} {
		w := Grover(marked)
		d, err := statevec.IdealDist(w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		p := d.P(w.Correct)
		if p < 0.9 {
			t.Errorf("grover(%s): P(marked) = %v, want >= 0.9", marked, p)
		}
		if !d.MostLikely().Value.Equal(w.Correct) {
			t.Errorf("grover(%s): most likely = %v", marked, d.MostLikely().Value)
		}
	}
	mustPanicW(t, func() { Grover("1") })
	mustPanicW(t, func() { Grover("1111") })
}

func mustPanicW(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
