// Package workloads builds the paper's benchmark circuits (Table 1) as
// logical circuits with known golden outputs:
//
//	greycode  6-bit grey-code decoder           output 001000
//	bv-6      Bernstein-Vazirani, key 110011
//	bv-7      Bernstein-Vazirani, key 1101011
//	qaoa-5/6/7  max-cut on path graphs          cuts 10101 / 101010 / 1010101
//	fredkin   controlled-SWAP                   output 110
//	adder     1-bit full adder                  output 011
//	decode24  2:4 decoder                       output 100000
//
// Two notes on fidelity to the paper. First, Table 1's gate counts are
// post-compilation counts (they include routing SWAPs: e.g. bv-6's CX:7 is
// four oracle CX plus one SWAP lowered to three CX), so comparisons belong
// after mapping, not here. Second, textbook QAOA output is symmetric under
// global bit-flip, which would make the listed cut impossible to infer
// even ideally; we pin vertex 0 to the S1 partition with a local field —
// the standard symmetry-breaking for max-cut — so the listed cut is the
// unique optimum.
package workloads

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/statevec"
)

// Workload is a benchmark: a logical circuit plus its golden output.
type Workload struct {
	Name        string
	Description string
	Circuit     *circuit.Circuit
	Correct     bitstr.BitString
}

// Stats returns the logical circuit's operation counts.
func (w Workload) Stats() circuit.Stats { return w.Circuit.Stats() }

// All returns the nine benchmarks of the paper's Table 1, in table order.
func All() []Workload {
	return []Workload{
		Greycode6(),
		BV("110011"),
		BV("1101011"),
		QAOA(5),
		QAOA(6),
		QAOA(7),
		Fredkin(),
		Adder(),
		Decoder24(),
	}
}

// ByName returns the workload with the given name from All, or false.
// Beyond the fixed Table 1 set, names of the form "greycode-N" (N from 2
// to bitstr.MaxBits) build an N-bit grey-code decoder with the
// alternating golden output 1010…; its n-1 CX chain is all-Clifford, the
// wide-device workload of the stabilizer engine.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	if rest, ok := strings.CutPrefix(name, "greycode-"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n >= 2 && n <= bitstr.MaxBits {
			out := make([]byte, n)
			for i := range out {
				out[i] = byte('1' - i%2)
			}
			return Greycode(string(out)), true
		}
	}
	return Workload{}, false
}

// BV builds the Bernstein-Vazirani circuit for the given secret key. The
// algorithm finds an n-bit secret with one oracle query: Hadamard all data
// qubits, prepare the ancilla in |->, apply CX from data qubit i to the
// ancilla for every key bit 1, Hadamard the data qubits again, measure.
// The ideal output is the key itself with probability 1.
func BV(key string) Workload {
	k := bitstr.MustParse(key)
	n := k.Len()
	if n < 1 {
		panic("workloads: empty BV key")
	}
	c := circuit.New(n+1, n)
	c.Name = fmt.Sprintf("bv-%d", n)
	anc := n
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.X(anc).H(anc)
	for q := 0; q < n; q++ {
		if k.Bit(q) {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return Workload{
		Name:        c.Name,
		Description: fmt.Sprintf("Bernstein-Vazirani, key %s", key),
		Circuit:     c,
		Correct:     k,
	}
}

// Greycode6 builds the 6-bit grey-code decoder: the reversible CX chain
// g[i] = b[i] xor b[i+1] run in reverse to decode, on the input chosen so
// the golden output is the paper's 001000.
func Greycode6() Workload {
	return Greycode("001000")
}

// Greycode builds a grey-code decoder whose golden output is the given
// string: the input binary string is derived by the inverse transform,
// prepared with X gates, then the CX chain converts binary to grey code.
// It has exactly n-1 CX and n measurements, the shallow
// equal-measurement-and-CX shape the paper uses to separate measurement
// from gate correlation.
func Greycode(output string) Workload {
	g := bitstr.MustParse(output)
	n := g.Len()
	if n < 2 {
		panic("workloads: greycode needs at least 2 bits")
	}
	// The CX chain below computes g[i] = b[i] xor b[i+1] for i < n-1 and
	// g[n-1] = b[n-1]; invert from the high end: b[n-1] = g[n-1],
	// b[i] = g[i] xor b[i+1].
	b := bitstr.Zeros(n)
	prev := false
	for i := n - 1; i >= 0; i-- {
		var bit bool
		if i == n-1 {
			bit = g.Bit(i)
		} else {
			bit = g.Bit(i) != prev // xor
		}
		b = b.WithBit(i, bit)
		prev = bit
	}
	c := circuit.New(n, n)
	c.Name = fmt.Sprintf("greycode-%d", n)
	for i := 0; i < n; i++ {
		if b.Bit(i) {
			c.X(i)
		}
	}
	// gray[i] = b[i] xor b[i+1], computed in place from the high end so
	// each source bit is still the original binary value when read.
	for i := 0; i < n-1; i++ {
		c.CX(i+1, i)
	}
	c.MeasureAll()
	return Workload{
		Name:        c.Name,
		Description: fmt.Sprintf("grey-code decoder, output %s", output),
		Circuit:     c,
		Correct:     g,
	}
}

// qaoaAngles caches the grid-searched (gamma, beta) per problem size.
var qaoaAngles sync.Map // int -> [2]float64

// QAOA builds a depth-1 QAOA max-cut circuit on the n-vertex path graph,
// with vertex 0 pinned to partition S1 by a local Z field (symmetry
// breaking, see the package comment). The golden output is the unique
// optimal cut 1010...: alternating partitions cut every path edge. The
// (gamma, beta) angles are grid-searched once per n on the ideal
// simulator to maximize the success probability, mirroring how QAOA
// parameters are classically optimized before the quantum runs.
func QAOA(n int) Workload {
	if n < 2 {
		panic("workloads: QAOA needs at least 2 vertices")
	}
	cut := bitstr.Zeros(n)
	for i := 0; i < n; i += 2 {
		cut = cut.WithBit(i, true)
	}
	gamma, beta := qaoaBestAngles(n)
	c := buildQAOA(n, gamma, beta)
	return Workload{
		Name:        fmt.Sprintf("qaoa-%d", n),
		Description: fmt.Sprintf("max-cut on the %d-vertex path, cut %s", n, cut),
		Circuit:     c,
		Correct:     cut,
	}
}

// buildQAOA assembles the depth-1 circuit: H layer, cost layer (ZZ on
// every path edge via CX-RZ-CX plus the pinning field on vertex 0), and
// an X mixer expressed as H-RZ-H per qubit (the hardware-basis form whose
// gate counts match the paper's Table 1).
func buildQAOA(n int, gamma, beta float64) *circuit.Circuit {
	c := circuit.New(n, n)
	c.Name = fmt.Sprintf("qaoa-%d", n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
		c.RZ(q+1, 2*gamma)
		c.CX(q, q+1)
	}
	// Pinning field: steers vertex 0 toward |1> (partition S1), weight
	// comparable to one edge.
	c.RZ(0, 2*gamma)
	for q := 0; q < n; q++ {
		c.H(q)
		c.RZ(q, 2*beta)
		c.H(q)
	}
	c.MeasureAll()
	return c
}

// qaoaBestAngles grid-searches gamma, beta in (0, pi) x (0, pi/2) for the
// angles maximizing the ideal probability of the golden cut.
func qaoaBestAngles(n int) (gamma, beta float64) {
	if v, ok := qaoaAngles.Load(n); ok {
		a := v.([2]float64)
		return a[0], a[1]
	}
	cut := bitstr.Zeros(n)
	for i := 0; i < n; i += 2 {
		cut = cut.WithBit(i, true)
	}
	const steps = 24
	best := -1.0
	var bg, bb float64
	for i := 1; i < steps; i++ {
		g := math.Pi * float64(i) / steps
		for j := 1; j < steps; j++ {
			b := math.Pi / 2 * float64(j) / steps
			d, err := statevec.IdealDist(buildQAOA(n, g, b))
			if err != nil {
				panic(err)
			}
			if p := d.P(cut); p > best {
				best, bg, bb = p, g, b
			}
		}
	}
	qaoaAngles.Store(n, [2]float64{bg, bb})
	return bg, bb
}

// toffoli appends the standard 6-CX Toffoli decomposition with control
// qubits a, b and target t.
func toffoli(c *circuit.Circuit, a, b, t int) {
	c.H(t)
	c.CX(b, t).Tdg(t)
	c.CX(a, t).T(t)
	c.CX(b, t).Tdg(t)
	c.CX(a, t).T(b).T(t)
	c.H(t)
	c.CX(a, b).T(a).Tdg(b)
	c.CX(a, b)
}

// Fredkin builds a controlled-SWAP on (control, x, y) = (q0, q1, q2) with
// input |1,0,1>, so the swap fires and the golden output is 110.
func Fredkin() Workload {
	c := circuit.New(3, 3)
	c.Name = "fredkin"
	c.X(0).X(2) // control = 1, x = 0, y = 1
	// CSWAP(c, x, y) = CX(y, x) · Toffoli(c, x, y) · CX(y, x).
	c.CX(2, 1)
	toffoli(c, 0, 1, 2)
	c.CX(2, 1)
	c.MeasureAll()
	return Workload{
		Name:        "fredkin",
		Description: "Fredkin (controlled-SWAP) gate, output 110",
		Circuit:     c,
		Correct:     bitstr.MustParse("110"),
	}
}

// Adder builds a reversible 1-bit full adder on (a, b, cin, carry):
// a=1, b=0, cin=1 gives sum 0, carry 1. The golden output 011 is the
// measured triple (sum, carry, a).
func Adder() Workload {
	c := circuit.New(4, 3)
	c.Name = "adder"
	c.X(0).X(2) // a = 1, b = 0, cin = 1
	toffoli(c, 0, 1, 3)
	c.CX(0, 1)
	toffoli(c, 1, 2, 3)
	c.CX(1, 2)
	// Qubit 2 now holds the sum, qubit 3 the carry.
	c.Measure(2, 0) // sum = 0
	c.Measure(3, 1) // carry = 1
	c.Measure(0, 2) // a = 1
	return Workload{
		Name:        "adder",
		Description: "1-bit full adder (a=1, b=0, cin=1), output 011",
		Circuit:     c,
		Correct:     bitstr.MustParse("011"),
	}
}

// Decoder24 builds a reversible 2:4 decoder on inputs (a, b) = (0, 0):
// exactly output line 0 fires, and the golden output over the measured
// bits (o0, o1, o2, o3, a, b) is 100000. Each minterm is a Toffoli with
// the inputs conjugated by X gates.
func Decoder24() Workload {
	c := circuit.New(6, 6)
	c.Name = "decode24"
	a, b := 0, 1
	o := []int{2, 3, 4, 5}
	// o3 = a AND b
	toffoli(c, a, b, o[3])
	// o2 = a AND NOT b
	c.X(b)
	toffoli(c, a, b, o[2])
	// o0 = NOT a AND NOT b
	c.X(a)
	toffoli(c, a, b, o[0])
	// o1 = NOT a AND b
	c.X(b)
	toffoli(c, a, b, o[1])
	c.X(a) // restore inputs
	c.Measure(o[0], 0)
	c.Measure(o[1], 1)
	c.Measure(o[2], 2)
	c.Measure(o[3], 3)
	c.Measure(a, 4)
	c.Measure(b, 5)
	return Workload{
		Name:        "decode24",
		Description: "2:4 decoder (a=b=0), output 100000",
		Circuit:     c,
		Correct:     bitstr.MustParse("100000"),
	}
}

// RepetitionCode builds a 3-qubit bit-flip repetition-code round: the
// data qubit is prepared in |1>, encoded across three qubits, decoded,
// and majority-corrected with a Toffoli before measurement. The golden
// output is 100 (data restored to 1, both syndrome qubits back to 0).
// It is not part of the paper's Table 1; it exists because the paper's
// related work points at low-cost detection codes as a complementary
// mitigation, and a code round is the natural workload to study EDM on
// error-detection circuits.
func RepetitionCode() Workload {
	c := circuit.New(3, 3)
	c.Name = "repcode-3"
	c.X(0)
	// Encode |1> -> |111>.
	c.CX(0, 1).CX(0, 2)
	c.Barrier()
	// Decode: syndromes land on qubits 1 and 2.
	c.CX(0, 1).CX(0, 2)
	// Majority correction: flip data iff both syndromes fire.
	toffoli(c, 1, 2, 0)
	c.MeasureAll()
	return Workload{
		Name:        "repcode-3",
		Description: "3-qubit repetition-code round on |1>, output 100",
		Circuit:     c,
		Correct:     bitstr.MustParse("100"),
	}
}

// Grover builds a Grover search over n qubits for a single marked item,
// running the optimal floor(pi/4*sqrt(2^n)) iterations. The golden output
// is the marked bitstring, which the ideal machine returns with
// probability >= 94% for n >= 2 — a classic inference-threatened workload
// whose oracle uses multi-controlled phase flips (deep in CX), useful for
// stressing EDM beyond the paper's Table 1. Supported sizes: n = 2 or 3.
func Grover(marked string) Workload {
	m := bitstr.MustParse(marked)
	n := m.Len()
	if n < 2 || n > 3 {
		panic("workloads: Grover supports 2 or 3 qubits")
	}
	iterations := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n)))))
	if iterations < 1 {
		iterations = 1
	}
	c := circuit.New(n, n)
	c.Name = fmt.Sprintf("grover-%d", n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for it := 0; it < iterations; it++ {
		// Oracle: phase-flip the marked state. Conjugate a controlled-Z
		// (n=2) or CCZ (n=3) with X on the zero bits of the mark.
		flipZeros(c, m)
		appendControlledZ(c, n)
		flipZeros(c, m)
		// Diffusion: H X (CZ/CCZ) X H.
		for q := 0; q < n; q++ {
			c.H(q).X(q)
		}
		appendControlledZ(c, n)
		for q := 0; q < n; q++ {
			c.X(q).H(q)
		}
	}
	c.MeasureAll()
	return Workload{
		Name:        c.Name,
		Description: fmt.Sprintf("Grover search, marked item %s, %d iteration(s)", marked, iterations),
		Circuit:     c,
		Correct:     m,
	}
}

func flipZeros(c *circuit.Circuit, m bitstr.BitString) {
	for q := 0; q < m.Len(); q++ {
		if !m.Bit(q) {
			c.X(q)
		}
	}
}

// appendControlledZ appends CZ for n=2 or CCZ (via H-Toffoli-H on the
// target) for n=3.
func appendControlledZ(c *circuit.Circuit, n int) {
	if n == 2 {
		c.CZ(0, 1)
		return
	}
	c.H(2)
	toffoli(c, 0, 1, 2)
	c.H(2)
}
