// Package selector implements compile-time predicted-IST ensemble
// selection — the design alternative the paper sketches and sets aside in
// Section 5.3: "We could form an ensemble of mappings that is estimated
// to produce the highest IST, however, to keep the design simple, we
// select the top K mappings that are deemed to have the highest PST."
//
// Where ESP folds a mapping's error rates into a single success
// probability, this selector *simulates* each candidate executable
// exactly (density-matrix engine, compile-time calibration), predicts its
// full output distribution, and greedily assembles the ensemble whose
// merged predicted distribution maximizes IST. It therefore accounts for
// which wrong answers a mapping makes, not just how often it fails — the
// information EDM's diversity argument actually runs on.
//
// The catch, and the reason the paper kept ESP, is cost: exact channel
// simulation is exponential in the executable's footprint, and the
// prediction is only as good as the calibration (run-time drift erodes
// it). The ablation benchmark quantifies both sides.
package selector

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/statevec"
)

// Prediction is a candidate mapping with its exactly simulated output.
type Prediction struct {
	Exec *mapper.Executable
	// Output is the predicted (exact, compile-time-calibration) output
	// distribution of the executable.
	Output *dist.Dist
	// IST is the predicted inference strength against the program's ideal
	// answer.
	IST float64
}

// Predict simulates the executable exactly under the calibration and
// returns its predicted output distribution and IST for the given correct
// outcome.
func Predict(cal *device.Calibration, exe *mapper.Executable, correct bitstr.BitString) (Prediction, error) {
	m := backend.New(cal)
	out, err := m.ExactDist(exe.Circuit)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Exec: exe, Output: out, IST: out.IST(correct)}, nil
}

// IdealAnswer computes the compile-time notion of "the correct answer":
// the most likely outcome of the noise-free program. For the paper's
// deterministic workloads this is the golden output with probability 1;
// for QAOA it is the optimal cut.
func IdealAnswer(exe *mapper.Executable) (bitstr.BitString, error) {
	d, err := statevec.IdealDist(exe.Circuit)
	if err != nil {
		return bitstr.BitString{}, err
	}
	return d.MostLikely().Value, nil
}

// Options bounds the selection's cost.
type Options struct {
	// MaxCandidates caps how many pool entries (in ESP order) are
	// simulated exactly. Zero means 16.
	MaxCandidates int
	// MaxQubits refuses candidates whose footprint would exceed the exact
	// engine's practical range. Zero means the density engine's limit.
	MaxQubits int
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates <= 0 {
		return 16
	}
	return o.MaxCandidates
}

// Select assembles a k-member ensemble from the candidate pool by greedy
// predicted-IST maximization: the first member is the candidate with the
// highest predicted individual IST, and each further member is the
// candidate whose addition maximizes the IST of the uniformly merged
// predicted distribution. It returns the chosen executables together with
// the predicted merged IST.
func Select(cal *device.Calibration, pool []*mapper.Executable, k int, correct bitstr.BitString, opts Options) ([]*mapper.Executable, float64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("selector: k must be positive")
	}
	if len(pool) == 0 {
		return nil, 0, fmt.Errorf("selector: empty pool")
	}
	maxQ := opts.MaxQubits
	if maxQ <= 0 {
		maxQ = 10 // density.MaxQubits
	}
	limit := opts.maxCandidates()
	cands := make([]*mapper.Executable, 0, limit)
	for _, exe := range pool {
		if len(cands) == limit {
			break
		}
		if len(exe.UsedQubits()) > maxQ {
			continue
		}
		cands = append(cands, exe)
	}
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("selector: no candidate fits the exact engine (footprint > %d qubits)", maxQ)
	}
	// Exact simulation dominates the selection cost, so candidates are
	// predicted concurrently into per-index slots; the slot order keeps the
	// result identical to the serial loop this replaced, and the first
	// error by candidate index is the one reported. The fan-out is bounded
	// by a local semaphore rather than the compute-token pool: each
	// simulation is itself a token-gated leaf inside the backend, and an
	// orchestration layer must never hold tokens its leaves wait on.
	preds := make([]Prediction, len(cands))
	errs := make([]error, len(cands))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, exe := range cands {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, exe *mapper.Executable) {
			defer wg.Done()
			defer func() { <-sem }()
			preds[i], errs[i] = Predict(cal, exe, correct)
		}(i, exe)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].IST > preds[j].IST })

	chosen := []Prediction{preds[0]}
	rest := append([]Prediction(nil), preds[1:]...)
	for len(chosen) < k && len(rest) > 0 {
		bestIdx, bestIST := -1, -1.0
		for i, cand := range rest {
			merged := mergePredicted(chosen, cand)
			if ist := merged.IST(correct); ist > bestIST {
				bestIST = ist
				bestIdx = i
			}
		}
		// Stop early if no addition improves on the current ensemble —
		// a smaller, stronger ensemble beats a padded one.
		current := mergePredicted(chosen)
		if bestIST <= current.IST(correct) && len(chosen) > 1 {
			break
		}
		chosen = append(chosen, rest[bestIdx])
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
	}
	execs := make([]*mapper.Executable, len(chosen))
	for i, p := range chosen {
		execs[i] = p.Exec
	}
	final := mergePredicted(chosen)
	return execs, final.IST(correct), nil
}

func mergePredicted(chosen []Prediction, extra ...Prediction) *dist.Dist {
	all := make([]*dist.Dist, 0, len(chosen)+len(extra))
	for _, p := range chosen {
		all = append(all, p.Output)
	}
	for _, p := range extra {
		all = append(all, p.Output)
	}
	return dist.Merge(all)
}
