package selector

import (
	"testing"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/workloads"
)

func pool(t *testing.T, cal *device.Calibration, w workloads.Workload, n int) []*mapper.Executable {
	t.Helper()
	comp := mapper.NewCompiler(cal)
	execs, err := comp.TopK(w.Circuit, n)
	if err != nil {
		t.Fatal(err)
	}
	return execs
}

func TestPredictMatchesMachine(t *testing.T) {
	// The prediction is exact: the machine sampling the same executable
	// under the same calibration must converge to it.
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(3))
	w := workloads.BV("101")
	execs := pool(t, cal, w, 1)
	p, err := Predict(cal, execs[0], w.Correct)
	if err != nil {
		t.Fatal(err)
	}
	m := backend.New(cal)
	got, err := m.RunDist(execs[0].Circuit, 60000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if tv := got.TV(p.Output); tv > 0.02 {
		t.Fatalf("prediction deviates from sampling: TV = %v", tv)
	}
}

func TestIdealAnswer(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	w := workloads.BV("1101")
	execs := pool(t, cal, w, 1)
	ans, err := IdealAnswer(execs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(w.Correct) {
		t.Fatalf("IdealAnswer = %v, want %v", ans, w.Correct)
	}
}

func TestSelectBasics(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(7))
	w := workloads.BV("1011")
	cand := pool(t, cal, w, 8)
	execs, predIST, err := Select(cal, cand, 3, w.Correct, Options{MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) == 0 || len(execs) > 3 {
		t.Fatalf("selected %d members", len(execs))
	}
	if predIST <= 0 {
		t.Fatalf("predicted IST = %v", predIST)
	}
	// Members are distinct.
	seen := map[*mapper.Executable]bool{}
	for _, e := range execs {
		if seen[e] {
			t.Fatal("duplicate member selected")
		}
		seen[e] = true
	}
}

func TestSelectPredictionBeatsESPOrder(t *testing.T) {
	// The predicted merged IST of the selected ensemble must be at least
	// that of the naive first-k-by-ESP ensemble (it optimizes exactly
	// that objective over a superset of choices).
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(9))
	w := workloads.BV("1011")
	cand := pool(t, cal, w, 8)
	_, predIST, err := Select(cal, cand, 4, w.Correct, Options{MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	var naive []*dist.Dist
	for _, e := range cand[:4] {
		p, err := Predict(cal, e, w.Correct)
		if err != nil {
			t.Fatal(err)
		}
		naive = append(naive, p.Output)
	}
	naiveIST := dist.Merge(naive).IST(w.Correct)
	if predIST+1e-9 < naiveIST {
		t.Fatalf("selector predicted %v, naive ESP-order ensemble predicts %v", predIST, naiveIST)
	}
}

func TestSelectRunsOnMachine(t *testing.T) {
	// End-to-end: the selected ensemble executes and produces a sane
	// merged distribution.
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(11))
	w := workloads.BV("1011")
	cand := pool(t, cal, w, 6)
	execs, _, err := Select(cal, cand, 4, w.Correct, Options{MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewRunner(mapper.NewCompiler(cal), backend.New(cal.Drift(0.2, rng.New(12))))
	res, err := runner.RunExecutables(execs, core.Config{K: len(execs), Trials: 2000, Weighting: core.WeightUniform}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Support() == 0 {
		t.Fatal("empty merged output")
	}
}

func TestSelectValidation(t *testing.T) {
	cal := device.Generate(device.Linear(3), device.IdealProfile(), rng.New(1))
	correct := bitstr.MustParse("00")
	if _, _, err := Select(cal, nil, 2, correct, Options{}); err == nil {
		t.Fatal("empty pool accepted")
	}
	w := workloads.BV("10")
	cand := pool(t, cal, w, 1)
	if _, _, err := Select(cal, cand, 0, w.Correct, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Footprint cap filters everything out.
	if _, _, err := Select(cal, cand, 1, w.Correct, Options{MaxQubits: 1}); err == nil {
		t.Fatal("impossible footprint accepted")
	}
}

func TestSelectStopsWhenAdditionHurts(t *testing.T) {
	// With one dominant mapping and clearly worse alternatives, the
	// greedy selection may stop below k rather than dilute the ensemble.
	topo := device.Linear(6)
	cal := device.Generate(topo, device.IdealProfile(), rng.New(1))
	// Make qubits 0,1 perfect and the rest noisy at readout.
	for q := 2; q < 6; q++ {
		cal.Meas01[q] = 0.4
		cal.Meas10[q] = 0.4
	}
	w := workloads.BV("1")
	comp := mapper.NewCompiler(cal)
	execs, err := comp.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	chosen, predIST, err := Select(cal, execs, 4, w.Correct, Options{MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) == 4 {
		t.Logf("selector kept all 4 members (predicted IST %v)", predIST)
	} else {
		t.Logf("selector stopped at %d members (predicted IST %v)", len(chosen), predIST)
	}
	if predIST < 1 {
		t.Fatalf("predicted IST %v < 1 on a nearly ideal pair", predIST)
	}
}
