// Package backend is the simulated NISQ machine. It stands in for the
// paper's ibmq-16-melbourne: it accepts a *physical* executable (a circuit
// whose qubit indices are device qubits and whose two-qubit gates respect
// the coupling map), runs it for N trials under the device's noise model,
// and returns the histogram of measured outcomes — the "output log" of the
// NISQ execution model (paper Section 2.2).
//
// Two execution paths share one compiled schedule:
//
//   - Run: Monte-Carlo trajectories through the statevector engine, one
//     stochastic sample per trial. This is the path used by all
//     experiments; its sampling noise is the paper's shot noise.
//   - ExactDist: exact channel evolution through the density-matrix
//     engine, used by tests to validate the trajectory path and by
//     analyses that need noise-free-of-shot-noise distributions.
//
// Only the qubits the executable touches are simulated; crosstalk onto
// untouched spectator qubits is folded into an equivalent local phase
// (a spectator stuck in |0> turns a ZZ kick into a Z rotation).
package backend

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/density"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/memo"
	"edm/internal/noise"
	"edm/internal/pool"
	"edm/internal/rng"
	"edm/internal/statevec"
)

// Machine simulates one device with one (runtime) calibration. It keeps
// a bounded cache of compiled programs keyed by circuit fingerprint, so
// experiment loops that re-run the same executable across rounds and
// policies skip compilation and fusion.
type Machine struct {
	cal   *device.Calibration
	progs progCache
	// runs memoizes whole trial runs by (circuit, trials, RNG state);
	// nil unless EnableRunCache was called. See runcache.go.
	runs *memo.Cache[*runEntry]
	// engine selects the Monte-Carlo execution strategy; the zero value
	// is the prefix-sharing engine (see prefix.go).
	engine TrajectoryEngine
}

// TrajectoryEngine selects how Run turns a compiled program into trial
// outcomes.
type TrajectoryEngine uint8

const (
	// EnginePrefixSharing (the default) executes the dominant stochastic
	// path once per program and replays trials against its recorded
	// branch thresholds, simulating only each trial's post-divergence
	// suffix. Output histograms are byte-identical to EngineLegacy at
	// any GOMAXPROCS; see prefix.go for the soundness argument.
	EnginePrefixSharing TrajectoryEngine = iota
	// EngineLegacy runs every trial's full trajectory from |0...0>. It
	// is kept as the frozen baseline for benchmarks and as a
	// cross-check in the byte-identity tests. It never uses the
	// stabilizer fast path.
	EngineLegacy
	// EngineStabilizer is the strict tableau engine: fully-Clifford
	// schedules run on the stabilizer tableau (stab.go), anything else
	// is an error. Use it to assert that a campaign actually gets the
	// fast path instead of silently paying for statevectors.
	EngineStabilizer
	// EngineStatevector pins the tape-tree statevector engine even for
	// fully-Clifford programs that the default engine would route to
	// the tableau. Benchmarks use it to keep frozen baselines measuring
	// statevector work.
	EngineStatevector
)

// SetTrajectoryEngine selects the trial execution strategy. Like
// EnableRunCache it must be called before the machine is shared across
// goroutines; it is not safe to race with Run.
func (m *Machine) SetTrajectoryEngine(e TrajectoryEngine) { m.engine = e }

// Engine returns the machine's trajectory engine.
func (m *Machine) Engine() TrajectoryEngine { return m.engine }

// New returns a machine with the given runtime calibration. The
// calibration passed here may differ from the one the compiler used — that
// gap is exactly the compile-time/run-time drift of paper Section 5.3.
func New(cal *device.Calibration) *Machine {
	if err := cal.Validate(); err != nil {
		panic(fmt.Sprintf("backend: invalid calibration: %v", err))
	}
	return &Machine{cal: cal}
}

// Calibration returns the machine's runtime calibration.
func (m *Machine) Calibration() *device.Calibration { return m.cal }

// stepKind discriminates compiled schedule steps.
type stepKind int

const (
	stepU1      stepKind = iota // deterministic one-qubit unitary
	stepU2                      // deterministic two-qubit unitary
	stepPauli1                  // stochastic one-qubit depolarizing event
	stepPauli2                  // stochastic two-qubit depolarizing event
	stepDamp                    // T1/T2 damping over a time window
	stepMeasure                 // projective measurement into a classical bit
)

// matClass tags a unitary step with the kernel that applies it. Classes
// are detected once, at fusion time, instead of re-inspecting matrices on
// every trial. The zero value matGeneral is always safe.
type matClass uint8

const (
	matGeneral matClass = iota // dense kernel
	matDiag                    // diagonal matrix (RZ, ZZ, CZ products)
	matAnti                    // anti-diagonal 1Q matrix (X-like)
	matPerm                    // 2Q permutation-with-phases (CX-like)
)

// step is one schedule entry; qubit indices are *local* (compacted).
type step struct {
	kind  stepKind
	class matClass
	m2    circuit.Matrix2
	m4    circuit.Matrix4
	d4    [4]complex128 // diagonal of m4 when kind==stepU2 and class==matDiag
	perm  statevec.Perm4
	q0    int
	q1    int
	p     float64 // depolarizing probability for stepPauli*
	ampK  []circuit.Matrix2
	phK   []circuit.Matrix2
	cbit  int
	phys  int // physical qubit, for readout handling of measurements
}

// program is a compiled, noise-annotated schedule for one executable.
type program struct {
	nLocal    int
	numClbits int
	steps     []step
	measPhys  []int // classical bit -> physical qubit (-1 if unwritten)

	// prefix is the dominant-path threshold tape + checkpoints of the
	// prefix-sharing engine (prefix.go), built at most once per compiled
	// program on first use and shared read-only by every stripe.
	prefixOnce sync.Once
	prefix     *prefixPlan

	// stab is the Clifford analysis of the stabilizer engine (stab.go),
	// built at most once per compiled program on first use.
	stabOnce sync.Once
	stab     *stabAnalysis
}

// compile lowers the executable onto the machine: SWAPs become CX
// triples, coherent errors are folded into the gate unitaries, stochastic
// and damping events are inserted per the device calibration, and qubit
// indices are compacted to the touched subset.
func (m *Machine) compile(exe *circuit.Circuit) (*program, error) {
	if err := exe.Validate(); err != nil {
		return nil, err
	}
	if exe.NumQubits > m.cal.Topo.Qubits {
		return nil, fmt.Errorf("backend: executable uses %d qubits, device has %d", exe.NumQubits, m.cal.Topo.Qubits)
	}
	lowered := exe.LowerSwaps()
	// The statevector width limit is enforced at engine-selection time
	// (selectStab), not here: fully-Clifford schedules run on the
	// stabilizer tableau at any device width. Classical bits stay capped
	// by the histogram key width.
	if lowered.NumClbits > bitstr.MaxBits {
		return nil, fmt.Errorf("backend: %d classical bits exceed histogram limit %d", lowered.NumClbits, bitstr.MaxBits)
	}
	active := lowered.UsedQubits()
	local := make(map[int]int, len(active))
	for i, q := range active {
		local[q] = i
	}
	activeSet := make(map[int]bool, len(active))
	for _, q := range active {
		activeSet[q] = true
	}

	p := &program{nLocal: len(active), numClbits: lowered.NumClbits}
	p.measPhys = make([]int, lowered.NumClbits)
	for i := range p.measPhys {
		p.measPhys[i] = -1
	}

	cal := m.cal
	clock := make(map[int]float64, len(active)) // ns per physical qubit
	measured := make(map[int]bool)

	idleTo := func(q int, until float64) {
		dt := until - clock[q]
		if dt <= 0 {
			return
		}
		p.addDamp(cal, local[q], q, dt)
		// Idle coherent phase drift, scaled by elapsed time.
		if cal.CohZ[q] != 0 {
			angle := cal.CohZ[q] * dt / cal.Gate1QTimeNs
			p.steps = append(p.steps, step{kind: stepU1, m2: noise.RZMatrix(angle), q0: local[q]})
		}
		clock[q] = until
	}

	for i, op := range lowered.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			qs := op.Qubits
			if len(qs) == 0 {
				qs = active
			}
			var maxT float64
			for _, q := range qs {
				if activeSet[q] && clock[q] > maxT {
					maxT = clock[q]
				}
			}
			// A barrier makes its qubits wait for the slowest one, and the
			// wait is real time during which they decohere.
			for _, q := range qs {
				if activeSet[q] {
					idleTo(q, maxT)
				}
			}
			continue

		case op.Kind == circuit.Measure:
			q := op.Qubits[0]
			if measured[q] {
				return nil, fmt.Errorf("backend: op %d measures qubit %d twice", i, q)
			}
			// All measurements start together at the latest clock so far:
			// hardware reads the whole register out at the end of the
			// shot, and earlier-finished qubits idle (and decohere) until
			// readout begins.
			var maxT float64
			for _, a := range active {
				if clock[a] > maxT {
					maxT = clock[a]
				}
			}
			idleTo(q, maxT)
			// Decoherence during the measurement window itself.
			p.addDamp(cal, local[q], q, cal.MeasTimeNs)
			clock[q] += cal.MeasTimeNs
			p.steps = append(p.steps, step{kind: stepMeasure, q0: local[q], cbit: op.Cbit, phys: q})
			p.measPhys[op.Cbit] = q
			measured[q] = true

		case op.Kind.IsTwoQubit():
			a, b := op.Qubits[0], op.Qubits[1]
			if measured[a] || measured[b] {
				return nil, fmt.Errorf("backend: op %d acts on a measured qubit", i)
			}
			if !cal.Topo.HasEdge(a, b) {
				return nil, fmt.Errorf("backend: op %d (%v %d %d) violates the coupling map", i, op.Kind, a, b)
			}
			e := device.NewEdge(a, b)
			start := clock[a]
			if clock[b] > start {
				start = clock[b]
			}
			idleTo(a, start)
			idleTo(b, start)
			// Fold systematic errors into the gate unitary:
			// (RY_a ⊗ RY_b) · ZZ(over-rotation) · GATE.
			m4 := circuit.Matrix2Q(op.Kind)
			m4 = noise.Mul4(noise.ZZMatrix(cal.CXCohZZ[e]), m4)
			m4 = noise.Mul4(noise.Kron(noise.RYMatrix(cal.CohY[a]), noise.RYMatrix(cal.CohY[b])), m4)
			p.steps = append(p.steps, step{kind: stepU2, m4: m4, q0: local[a], q1: local[b]})
			if cal.CXErr[e] > 0 {
				p.steps = append(p.steps, step{kind: stepPauli2, p: cal.CXErr[e], q0: local[a], q1: local[b]})
			}
			// Crosstalk: every coupling adjacent to the firing link gets a
			// ZZ kick. Active spectators get the full two-qubit unitary;
			// untouched spectators sit in |0>, where ZZ reduces to a Z
			// rotation on the active endpoint.
			for _, x := range [2]int{a, b} {
				for _, c := range cal.Topo.Neighbors(x) {
					if c == a || c == b {
						continue
					}
					xe := device.NewEdge(x, c)
					theta := cal.CrossZZ[xe]
					if theta == 0 {
						continue
					}
					if activeSet[c] {
						p.steps = append(p.steps, step{kind: stepU2, m4: noise.ZZMatrix(theta), q0: local[x], q1: local[c]})
					} else {
						p.steps = append(p.steps, step{kind: stepU1, m2: noise.RZMatrix(2 * theta), q0: local[x]})
					}
				}
			}
			p.addDamp(cal, local[a], a, cal.Gate2QTimeNs)
			p.addDamp(cal, local[b], b, cal.Gate2QTimeNs)
			clock[a] = start + cal.Gate2QTimeNs
			clock[b] = start + cal.Gate2QTimeNs

		default: // one-qubit unitary
			q := op.Qubits[0]
			if measured[q] {
				return nil, fmt.Errorf("backend: op %d acts on a measured qubit", i)
			}
			m2 := circuit.Matrix1Q(op.Kind, op.Params)
			if op.Kind != circuit.I && cal.CohY[q] != 0 {
				m2 = noise.RYMatrix(cal.CohY[q]).Mul(m2)
			}
			p.steps = append(p.steps, step{kind: stepU1, m2: m2, q0: local[q]})
			if op.Kind != circuit.I && cal.SQErr[q] > 0 {
				p.steps = append(p.steps, step{kind: stepPauli1, p: cal.SQErr[q], q0: local[q]})
			}
			p.addDamp(cal, local[q], q, cal.Gate1QTimeNs)
			clock[q] += cal.Gate1QTimeNs
		}
	}
	return p, nil
}

// addDamp appends a damping step for physical qubit q over dt nanoseconds
// (T1/T2 are in microseconds) unless it would be a no-op.
func (p *program) addDamp(cal *device.Calibration, lq, q int, dt float64) {
	gA, gP := noise.DampingParams(dt, cal.T1us[q]*1000, cal.T2us[q]*1000)
	if gA == 0 && gP == 0 {
		return
	}
	s := step{kind: stepDamp, q0: lq}
	if gA > 0 {
		s.ampK = noise.AmplitudeDampingKraus(gA)
	}
	if gP > 0 {
		s.phK = noise.PhaseDampingKraus(gP)
	}
	p.steps = append(p.steps, s)
}

// parallelThreshold is the trial count above which Run fans trials out
// across CPU cores. Below it the goroutine overhead is not worth paying.
const parallelThreshold = 256

// Run executes the physical circuit for the given number of trials and
// returns the outcome histogram. The RNG makes the run exactly
// reproducible: every trial uses an independent stream derived from its
// index, so the histogram is identical whether trials run serially or
// across cores, and whether the compiled program came from the cache or
// a fresh compile.
// When EnableRunCache is on, identical (circuit, trials, RNG state)
// invocations return one shared immutable histogram; the reproducibility
// contract makes the cached and fresh results bit-identical.
func (m *Machine) Run(exe *circuit.Circuit, trials int, r *rng.RNG) (*dist.Counts, error) {
	if trials < 0 {
		return nil, fmt.Errorf("backend: negative trial count")
	}
	if m.runs != nil {
		e := m.runs.Get(runKey(exe, trials, r), func() *runEntry {
			counts, err := m.runFresh(exe, trials, r)
			return &runEntry{counts: counts, err: err}
		})
		return e.counts, e.err
	}
	return m.runFresh(exe, trials, r)
}

// runFresh is the uncached Run body: compile (through the program cache)
// and simulate.
func (m *Machine) runFresh(exe *circuit.Circuit, trials int, r *rng.RNG) (*dist.Counts, error) {
	prog, err := m.getProgram(exe)
	if err != nil {
		return nil, err
	}
	sp, err := m.selectStab(prog)
	if err != nil {
		return nil, err
	}
	return m.runProgram(prog, sp, trials, r, nil), nil
}

// runProgram executes a compiled program for the given number of trials.
// A non-nil cancel flag makes the trial loops stop early once it flips
// true (the RunCtx path); the partial histogram is then discarded by the
// caller, so the flag never affects a result that is actually returned.
func (m *Machine) runProgram(prog *program, sp *stabPlan, trials int, r *rng.RNG, cancel *atomic.Bool) *dist.Counts {
	if sp == nil && batchedReplay {
		// Prefix-planned programs run the batched replay engine: walk
		// every trial first, then replay divergent suffixes in shared
		// batches (sched.go). Legacy machines (plan == nil) and
		// stabilizer programs keep the striped loops below.
		if plan := m.planFor(prog); plan != nil {
			return m.runBatched(prog, plan, trials, r, cancel)
		}
	}
	stripe := func(start, stride int) *dist.Counts {
		if sp != nil {
			return m.runStabStripe(prog, sp, start, stride, trials, r, cancel)
		}
		// planFor is once-guarded, so calling it per stripe builds at
		// most one plan.
		return m.runStripe(prog, m.planFor(prog), start, stride, trials, r, cancel)
	}
	workers := runtime.GOMAXPROCS(0)
	if trials < parallelThreshold || workers < 2 {
		pool.Acquire()
		defer pool.Release()
		return stripe(0, 1)
	}
	// Static striping: worker w owns trials w, w+workers, w+2*workers, ...
	// Each worker fills a private histogram; merging integer counts is
	// commutative, so the result is bit-identical to the serial path.
	// Workers gate through the process-wide compute-token pool so trial
	// striping composes with member- and experiment-level fan-out.
	partial := make([]*dist.Counts, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool.Acquire()
			defer pool.Release()
			partial[w] = stripe(w, workers)
		}(w)
	}
	wg.Wait()
	counts := dist.NewCounts(prog.numClbits)
	for _, p := range partial {
		counts.Merge(p)
	}
	return counts
}

// runStripe executes trials start, start+stride, ... reusing one
// statevector and one classical-bit scratch across all of them. The
// scratch statevector comes from the process-wide buffer pool, so
// stripes across runs and workers recycle a handful of buffers. With a
// non-nil plan, trials go through the prefix-sharing engine; the plan's
// checkpoints are shared read-only across all stripes. A non-nil cancel
// flag is polled once per trial — a few nanoseconds against a trial's
// microseconds — and abandons the stripe when set.
func (m *Machine) runStripe(prog *program, plan *prefixPlan, start, stride, trials int, r *rng.RNG, cancel *atomic.Bool) *dist.Counts {
	counts := dist.NewCounts(prog.numClbits)
	scratch := statevec.GetState(prog.nLocal)
	defer statevec.PutState(scratch)
	trueBits := make([]int, prog.numClbits)
	if plan == nil {
		for t := start; t < trials; t += stride {
			if cancel != nil && cancel.Load() {
				break
			}
			counts.Observe(m.runTrajectory(prog, scratch, trueBits, r.DeriveN("trial", t)))
		}
		return counts
	}
	var tally engineTally
	for t := start; t < trials; t += stride {
		if cancel != nil && cancel.Load() {
			break
		}
		counts.Observe(m.runTrialShared(prog, plan, scratch, trueBits, r, t, &tally))
	}
	tally.flush()
	return counts
}

// RunDist is Run followed by histogram normalization.
func (m *Machine) RunDist(exe *circuit.Circuit, trials int, r *rng.RNG) (*dist.Dist, error) {
	c, err := m.Run(exe, trials, r)
	if err != nil {
		return nil, err
	}
	return c.Dist(), nil
}

// runTrajectory executes one trial. s is a statevector of prog.nLocal
// qubits and trueBits scratch of size numClbits; both are reset here so
// callers reuse one allocation across trials.
func (m *Machine) runTrajectory(prog *program, s *statevec.State, trueBits []int, r *rng.RNG) bitstr.BitString {
	s.Reset()
	for i := range trueBits {
		trueBits[i] = 0
	}
	return m.resumeTrajectory(prog, s, trueBits, r, 0)
}

// resumeTrajectory runs the trajectory loop from schedule step `from` to
// the end, then applies readout. Callers position s, trueBits, and r at
// step `from` first: runTrajectory starts from the reset state with a
// fresh trial stream, the prefix-sharing engine from a restored
// checkpoint with the stream skipped to the checkpoint's draw index.
func (m *Machine) resumeTrajectory(prog *program, s *statevec.State, trueBits []int, r *rng.RNG, from int) bitstr.BitString {
	for i := from; i < len(prog.steps); i++ {
		st := &prog.steps[i]
		switch st.kind {
		case stepU1, stepU2:
			applyUnitaryStep(s, st)
		case stepPauli1:
			if k := noise.SamplePauli1Q(st.p, r); k != 0 {
				s.Apply1Q(noise.Pauli1Q[k], st.q0)
			}
		case stepPauli2:
			ka, kb := noise.SamplePauli2Q(st.p, r)
			if ka != 0 {
				s.Apply1Q(noise.Pauli1Q[ka], st.q0)
			}
			if kb != 0 {
				s.Apply1Q(noise.Pauli1Q[kb], st.q1)
			}
		case stepDamp:
			if st.ampK != nil {
				s.ApplyKraus1Q(st.ampK, st.q0, r)
			}
			if st.phK != nil {
				s.ApplyKraus1Q(st.phK, st.q0, r)
			}
		case stepMeasure:
			trueBits[st.cbit] = s.MeasureQubit(st.q0, r)
		}
	}
	return m.applyReadout(prog, trueBits, r)
}

// applyUnitaryStep dispatches a deterministic unitary step to its fused
// kernel class. It is shared by the legacy trial loop, the prefix
// engine's replay path, and the dominant-path builder, so all three
// evolve states through identical kernels.
func applyUnitaryStep(s *statevec.State, st *step) {
	switch st.kind {
	case stepU1:
		switch st.class {
		case matDiag:
			s.Apply1QDiag(st.m2[0][0], st.m2[1][1], st.q0)
		case matAnti:
			s.Apply1QAntiDiag(st.m2[0][1], st.m2[1][0], st.q0)
		default:
			s.Apply1Q(st.m2, st.q0)
		}
	case stepU2:
		switch st.class {
		case matDiag:
			s.Apply2QDiag(st.d4, st.q0, st.q1)
		case matPerm:
			s.Apply2QPerm(st.perm, st.q0, st.q1)
		default:
			s.Apply2Q(st.m4, st.q0, st.q1)
		}
	}
}

// applyReadout converts true measured bits into read-out bits by applying
// biased, pairwise-correlated classical flips.
func (m *Machine) applyReadout(prog *program, trueBits []int, r *rng.RNG) bitstr.BitString {
	out := bitstr.Zeros(prog.numClbits)
	for cb, q := range prog.measPhys {
		if q < 0 {
			continue
		}
		flip := r.Bernoulli(noise.ReadoutFlipProb(m.cal, q, trueBits[cb], m.neighbourOne(prog, q, trueBits)))
		bit := trueBits[cb]
		if flip {
			bit ^= 1
		}
		if bit == 1 {
			out = out.WithBit(cb, true)
		}
	}
	return out
}

// neighbourOne reports whether any coupled, measured neighbour of physical
// qubit q has true bit 1 in this trial.
func (m *Machine) neighbourOne(prog *program, q int, trueBits []int) bool {
	for cb, p := range prog.measPhys {
		if p < 0 || p == q {
			continue
		}
		if trueBits[cb] == 1 && m.cal.Topo.HasEdge(q, p) {
			return true
		}
	}
	return false
}

// ExactDist computes the exact noisy output distribution of the
// executable through the density-matrix engine (no shot noise). The
// executable must only measure at the end and touch at most
// density.MaxQubits qubits.
func (m *Machine) ExactDist(exe *circuit.Circuit) (*dist.Dist, error) {
	prog, err := m.getProgram(exe)
	if err != nil {
		return nil, err
	}
	return m.exactFromProgram(prog)
}

// exactFromProgram evolves a compiled program through the density engine.
func (m *Machine) exactFromProgram(prog *program) (*dist.Dist, error) {
	if prog.nLocal > density.MaxQubits {
		return nil, fmt.Errorf("backend: %d active qubits exceed density engine limit %d", prog.nLocal, density.MaxQubits)
	}
	rho := density.New(prog.nLocal)
	// localMeasured[lq] = cbit or -1.
	localMeasured := make([]int, prog.nLocal)
	for i := range localMeasured {
		localMeasured[i] = -1
	}
	for i := range prog.steps {
		st := &prog.steps[i]
		switch st.kind {
		case stepU1:
			if st.class == matDiag {
				rho.Apply1QDiag(st.m2[0][0], st.m2[1][1], st.q0)
			} else {
				rho.Apply1Q(st.m2, st.q0)
			}
		case stepU2:
			if st.class == matDiag {
				rho.Apply2QDiag(st.d4, st.q0, st.q1)
			} else {
				rho.Apply2Q(st.m4, st.q0, st.q1)
			}
		case stepPauli1:
			rho.ApplyKraus1Q(noise.DepolarizingKraus1Q(st.p), st.q0)
		case stepPauli2:
			rho.ApplyKraus2Q(noise.DepolarizingKraus2Q(st.p), st.q0, st.q1)
		case stepDamp:
			if st.ampK != nil {
				rho.ApplyKraus1Q(st.ampK, st.q0)
			}
			if st.phK != nil {
				rho.ApplyKraus1Q(st.phK, st.q0)
			}
		case stepMeasure:
			localMeasured[st.q0] = st.cbit
		}
	}
	// Convert the diagonal into a distribution over classical bits, then
	// push it through the correlated readout-error channel exactly.
	out := dist.New(prog.numClbits)
	diag := rho.Diagonal()
	trueBits := make([]int, prog.numClbits)
	sp := newReadoutSpreader(prog)
	for b, pb := range diag {
		if pb <= 0 {
			continue
		}
		for i := range trueBits {
			trueBits[i] = 0
		}
		for lq, cb := range localMeasured {
			if cb >= 0 && b>>uint(lq)&1 == 1 {
				trueBits[cb] = 1
			}
		}
		m.spreadReadout(sp, prog, trueBits, pb, out)
	}
	return out, nil
}

// readoutSpreader holds the preallocated scratch spreadReadout needs:
// the measured classical bits with their per-truth flip probabilities,
// and the doubling expansion buffer over partial read outcomes. One
// spreader serves every basis state of an ExactDist call, so the
// per-state cost is pure arithmetic.
type readoutSpreader struct {
	cbs   []int     // measured classical bits, ascending
	flips []float64 // flip probability per entry, refilled per truth
	buf   []readPartial
}

type readPartial struct {
	bits uint64
	p    float64
}

func newReadoutSpreader(prog *program) *readoutSpreader {
	sp := &readoutSpreader{cbs: make([]int, 0, len(prog.measPhys))}
	for cb, q := range prog.measPhys {
		if q >= 0 {
			sp.cbs = append(sp.cbs, cb)
		}
	}
	sp.flips = make([]float64, len(sp.cbs))
	sp.buf = make([]readPartial, 1<<uint(len(sp.cbs)))
	return sp
}

// spreadReadout distributes probability mass pb of the true outcome over
// all possible read outcomes under independent-given-truth flips. The
// expansion is iterative: the buffer of partial outcomes doubles once per
// measured bit, replacing the recursive closure this used to allocate
// per basis state.
func (m *Machine) spreadReadout(sp *readoutSpreader, prog *program, trueBits []int, pb float64, out *dist.Dist) {
	for i, cb := range sp.cbs {
		q := prog.measPhys[cb]
		sp.flips[i] = noise.ReadoutFlipProb(m.cal, q, trueBits[cb], m.neighbourOne(prog, q, trueBits))
	}
	sp.buf[0] = readPartial{bits: 0, p: pb}
	n := 1
	for i, cb := range sp.cbs {
		flip := sp.flips[i]
		tb := uint64(trueBits[cb])
		for j := 0; j < n; j++ {
			cur := sp.buf[j]
			sp.buf[j] = readPartial{bits: cur.bits | (tb << uint(cb)), p: cur.p * (1 - flip)}
			sp.buf[n+j] = readPartial{bits: cur.bits | ((tb ^ 1) << uint(cb)), p: cur.p * flip}
		}
		n <<= 1
	}
	for _, rp := range sp.buf[:n] {
		if rp.p != 0 {
			out.Add(bitstr.New(rp.bits, prog.numClbits), rp.p)
		}
	}
}
