package backend

import (
	"sync/atomic"

	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/noise"
	"edm/internal/rng"
	"edm/internal/statevec"
)

// Batched divergent-suffix replay. The sequential prefix engine replays
// every divergent trial's suffix alone: restore the checkpoint into a
// scratch statevector, walk the remaining schedule, draw that trial's
// stochastic branches. Divergences cluster — most divergent trials fall
// off the dominant path at the same high-probability noise sites — so
// the per-trial replay re-applies the same deterministic gate runs to
// the same intermediate states over and over.
//
// The batched engine replays a whole bucket of trials breadth-first
// instead. A replayUnit is a set of trials that diverged under the same
// checkpoint. Its trials start as one group sharing one lane of a
// statevec.Batch (the restored checkpoint state). Deterministic steps
// apply once across every live lane through the flat batch kernels;
// stochastic steps draw each trial's branch from its own derived
// stream, then partition each group by branch: the most populated
// branch keeps the group's lane, minority branches get lanes cloned
// from the still-unmutated lane, and each sub-group continues as an
// independent group. Every amplitude still sees the exact FP op
// sequence of a lane-by-lane replay and every trial draws exactly the
// uniforms the sequential path draws, so Counts stay byte-identical to
// the legacy loop (pinned by the identity tests).

// batchedReplay gates the batched replay scheduler inside runProgram.
// It exists for the batched-vs-sequential identity tests and as an
// escape hatch; the batched path is the default.
var batchedReplay = true

// maxBatchBytes bounds one unit's batch storage (B·16·2^n bytes for B
// lanes of n qubits, DESIGN.md §15).
const maxBatchBytes = 32 << 20

// maxLanesFor returns the lane capacity for a replay unit on n local
// qubits: as many lanes as fit in maxBatchBytes, clamped to [4, 128].
// The scheduler also fragments buckets into units of at most this many
// trials, so a unit can never need more lanes than it has (each lane
// carries at least one trial) and the deferral path in partitionStoch
// stays a safety net rather than a steady-state cost.
func maxLanesFor(n int) int {
	lanes := maxBatchBytes / (16 << uint(n))
	if lanes > 128 {
		lanes = 128
	}
	if lanes < 4 {
		lanes = 4
	}
	return lanes
}

// replayUnit is one schedulable piece of divergent-suffix work: the
// checkpoint to restore and the sorted trial indices to replay from it.
// Units never carry positioned RNG streams — processUnit re-derives
// each trial's stream from the run stream and skips it to the
// checkpoint's draw index, so a unit deferred and reprocessed later
// redraws the same branches.
type replayUnit struct {
	ck  *checkpoint
	ids []int
}

// laneTrial is one trial inside a unit: its trial index and its private
// stream, positioned mid-suffix. rng.RNG is a value type, so the
// partition engine moves trials between groups by copying.
type laneTrial struct {
	id int
	r  rng.RNG
}

// rGroup is a contiguous run work[start:end] of trials whose replayed
// histories are still identical: they share lane `lane` of the unit's
// batch and the classical bits recorded so far.
type rGroup struct {
	start, end int
	lane       int
	bits       []int
}

// unitState is the double-buffered working set of one processUnit call.
type unitState struct {
	work   []laneTrial // current trial order, grouped contiguously
	swap   []laneTrial // next order, rebuilt by each partition
	branch []int       // branch drawn per work index, scratch
	groups []rGroup
	gnext  []rGroup
}

// stochOp adapts one stochastic sub-step to the partition engine. prep
// computes the state-dependent values once per group from its lane
// (branch probabilities, P(1)); draw consumes exactly the uniforms the
// sequential path consumes and returns the branch id; apply mutates a
// lane (and the group's bits) the way the sequential path would for
// that branch.
type stochOp struct {
	prep  func(lane *statevec.State)
	draw  func(r *rng.RNG) int
	apply func(lane *statevec.State, bits []int, branch int)
}

// batchTally accumulates batched-replay counters inside one worker so
// the unit loop touches no atomics; the scheduler flushes it once.
type batchTally struct {
	units, trials, lanes, clones, deferred, steals int64
}

func (t *batchTally) flush() {
	if t.units != 0 {
		engineStats.batchUnits.Add(t.units)
	}
	if t.trials != 0 {
		engineStats.batchTrials.Add(t.trials)
	}
	if t.lanes != 0 {
		engineStats.batchLanes.Add(t.lanes)
	}
	if t.clones != 0 {
		engineStats.batchClones.Add(t.clones)
	}
	if t.deferred != 0 {
		engineStats.batchDeferred.Add(t.deferred)
	}
	if t.steals != 0 {
		engineStats.unitSteals.Add(t.steals)
	}
	*t = batchTally{}
}

// applyUnitaryStepBatch is applyUnitaryStep across every live lane of a
// batch: the same matClass dispatch onto the batched flat kernels.
func applyUnitaryStepBatch(b *statevec.Batch, st *step) {
	switch st.kind {
	case stepU1:
		switch st.class {
		case matDiag:
			b.Apply1QDiagBatch(st.m2[0][0], st.m2[1][1], st.q0)
		case matAnti:
			b.Apply1QAntiDiagBatch(st.m2[0][1], st.m2[1][0], st.q0)
		default:
			b.Apply1QBatch(st.m2, st.q0)
		}
	case stepU2:
		switch st.class {
		case matDiag:
			b.Apply2QDiagBatch(st.d4, st.q0, st.q1)
		case matPerm:
			b.Apply2QPermBatch(st.perm, st.q0, st.q1)
		default:
			b.Apply2QBatch(st.m4, st.q0, st.q1)
		}
	}
}

// partitionStoch advances every group through one stochastic sub-step:
// draw each trial's branch from its own stream, split groups whose
// trials disagree, clone lanes for minority branches, and rebuild the
// work array so groups stay contiguous. Branch ids must fit [0, 16).
//
// Ordering matters twice. Clones are taken before any branch's operator
// is applied, so every sub-group's lane snapshots the pre-step state.
// And the keeper branch (the most populated; ties to the smallest id)
// reuses the group's lane, so a group that does not split does no state
// copying at all.
//
// When the batch has no free lane for a minority branch, that branch's
// trials are deferred: appended to *defers as a fresh unit on the same
// checkpoint, to be replayed from scratch later. The keeper branch
// never defers, so every unit retires at least one trial per pass and
// deferral terminates.
func partitionStoch(b *statevec.Batch, us *unitState, op stochOp, ck *checkpoint, defers *[]replayUnit, tally *batchTally) {
	us.gnext = us.gnext[:0]
	out := us.swap[:0]
	for gi := range us.groups {
		g := &us.groups[gi]
		lane := b.Lane(g.lane)
		if op.prep != nil {
			op.prep(lane)
		}
		uniform := true
		first := -1
		for i := g.start; i < g.end; i++ {
			k := op.draw(&us.work[i].r)
			us.branch[i] = k
			if first < 0 {
				first = k
			} else if k != first {
				uniform = false
			}
		}
		if uniform {
			// Whole group took one branch: keep the lane, no reorder.
			ns := len(out)
			out = append(out, us.work[g.start:g.end]...)
			op.apply(lane, g.bits, first)
			us.gnext = append(us.gnext, rGroup{start: ns, end: len(out), lane: g.lane, bits: g.bits})
			continue
		}
		var cnt [16]int
		for i := g.start; i < g.end; i++ {
			cnt[us.branch[i]]++
		}
		keep, kc := 0, 0
		for k, c := range cnt {
			if c > kc {
				keep, kc = k, c
			}
		}
		// Two passes: assign lanes and gather sub-groups first, apply
		// after — clones must snapshot the lane before the keeper's
		// operator mutates it.
		type subGroup struct {
			g      rGroup
			branch int
		}
		var subs [16]subGroup
		nsubs := 0
		for k, c := range cnt {
			if c == 0 {
				continue
			}
			laneIdx := g.lane
			bits := g.bits
			if k != keep {
				if b.Live() >= b.Cap() {
					// Lane budget exhausted: replay this branch's trials
					// from the checkpoint in a continuation unit.
					du := replayUnit{ck: ck, ids: make([]int, 0, c)}
					for i := g.start; i < g.end; i++ {
						if us.branch[i] == k {
							du.ids = append(du.ids, us.work[i].id)
						}
					}
					*defers = append(*defers, du)
					tally.deferred += int64(c)
					continue
				}
				laneIdx = b.CloneLane(g.lane)
				bits = append([]int(nil), g.bits...)
				tally.clones++
			}
			ns := len(out)
			for i := g.start; i < g.end; i++ {
				if us.branch[i] == k {
					out = append(out, us.work[i])
				}
			}
			subs[nsubs] = subGroup{
				g:      rGroup{start: ns, end: len(out), lane: laneIdx, bits: bits},
				branch: k,
			}
			nsubs++
		}
		for i := 0; i < nsubs; i++ {
			op.apply(b.Lane(subs[i].g.lane), subs[i].g.bits, subs[i].branch)
			us.gnext = append(us.gnext, subs[i].g)
		}
	}
	us.work, us.swap = out, us.work[:0]
	us.groups, us.gnext = us.gnext, us.groups
}

// processUnit replays one unit's trials from its checkpoint to readout,
// observing each trial's outcome into counts. Overflowing sub-groups
// are appended to *defers as continuation units. A cancelled run
// returns early; the caller discards partial counts.
func (m *Machine) processUnit(prog *program, u replayUnit, base *rng.RNG, counts *dist.Counts, defers *[]replayUnit, tally *batchTally, maxLanes int, cancel *atomic.Bool) {
	ck := u.ck
	lanes := len(u.ids)
	if lanes > maxLanes {
		lanes = maxLanes
	}
	b := statevec.GetBatch(prog.nLocal, lanes)
	defer b.Release()

	us := &unitState{
		work:   make([]laneTrial, 0, len(u.ids)),
		swap:   make([]laneTrial, 0, len(u.ids)),
		branch: make([]int, len(u.ids)),
		groups: make([]rGroup, 0, 4),
		gnext:  make([]rGroup, 0, 4),
	}
	for _, t := range u.ids {
		rr := base.DeriveN("trial", t)
		rr.Skip(ck.tapeIdx)
		us.work = append(us.work, laneTrial{id: t, r: *rr})
	}
	lane0 := b.PushLane(ck.state) // nil state restores |0...0>
	bits := make([]int, prog.numClbits)
	if ck.state != nil {
		copy(bits, ck.bits)
	}
	us.groups = append(us.groups, rGroup{start: 0, end: len(us.work), lane: lane0, bits: bits})

	var probs [2]float64
	for si := ck.stepIdx; si < len(prog.steps); si++ {
		if cancel != nil && cancel.Load() {
			return
		}
		st := &prog.steps[si]
		switch st.kind {
		case stepU1, stepU2:
			applyUnitaryStepBatch(b, st)
		case stepPauli1:
			partitionStoch(b, us, stochOp{
				draw: func(r *rng.RNG) int { return noise.SamplePauli1Q(st.p, r) },
				apply: func(lane *statevec.State, _ []int, k int) {
					if k != 0 {
						lane.Apply1Q(noise.Pauli1Q[k], st.q0)
					}
				},
			}, ck, defers, tally)
		case stepPauli2:
			partitionStoch(b, us, stochOp{
				draw: func(r *rng.RNG) int {
					ka, kb := noise.SamplePauli2Q(st.p, r)
					return ka | kb<<2
				},
				apply: func(lane *statevec.State, _ []int, k int) {
					if ka := k & 3; ka != 0 {
						lane.Apply1Q(noise.Pauli1Q[ka], st.q0)
					}
					if kb := k >> 2; kb != 0 {
						lane.Apply1Q(noise.Pauli1Q[kb], st.q1)
					}
				},
			}, ck, defers, tally)
		case stepDamp:
			// Plan existence guarantees both Kraus sets have exactly two
			// operators (buildPrefixPlan falls back otherwise), so each
			// channel is one two-way stochastic sub-step with the same
			// draw sequence as State.ApplyKraus1Q.
			for _, ks := range [2][]circuit.Matrix2{st.ampK, st.phK} {
				if ks == nil {
					continue
				}
				ks := ks
				partitionStoch(b, us, stochOp{
					prep: func(lane *statevec.State) { lane.KrausBranchProbs1Q(ks, st.q0, probs[:]) },
					draw: func(r *rng.RNG) int { return r.Choose(probs[:]) },
					apply: func(lane *statevec.State, _ []int, k int) {
						lane.ApplyKrausBranch1Q(ks, st.q0, k, probs[k])
					},
				}, ck, defers, tally)
			}
		case stepMeasure:
			var p1 float64
			partitionStoch(b, us, stochOp{
				prep: func(lane *statevec.State) { p1 = lane.ProbabilityOne(st.q0) },
				draw: func(r *rng.RNG) int {
					if r.Float64() < p1 {
						return 1
					}
					return 0
				},
				apply: func(lane *statevec.State, bits []int, k int) {
					lane.Project(st.q0, k)
					bits[st.cbit] = k
				},
			}, ck, defers, tally)
		}
	}
	for gi := range us.groups {
		g := &us.groups[gi]
		for i := g.start; i < g.end; i++ {
			counts.Observe(m.applyReadout(prog, g.bits, &us.work[i].r))
		}
	}
	tally.units++
	tally.trials += int64(len(us.work))
	tally.lanes += int64(b.Live())
}
