package backend

import (
	"sync"

	"edm/internal/circuit"
)

// progCacheLimit bounds the number of compiled programs kept per machine.
// Experiment campaigns cycle through a handful of executables per round
// (K ensemble members x a few policies), so a small bound captures all
// reuse while keeping worst-case memory trivial.
const progCacheLimit = 64

// progEntry is one cached compile+fuse result, with enough of the source
// circuit's shape to reject a (vanishingly unlikely) fingerprint
// collision.
type progEntry struct {
	prog      *program
	numQubits int
	numClbits int
	numOps    int
}

// progCache is a concurrency-safe, FIFO-bounded map from circuit
// fingerprints to compiled programs. Programs are immutable after
// compilation, so cached values are shared freely across goroutines.
type progCache struct {
	mu        sync.Mutex
	entries   map[uint64]progEntry
	order     []uint64 // insertion order, for FIFO eviction
	hits      uint64
	misses    uint64
	evictions uint64
}

// CacheStats is a snapshot of the compiled-program cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// CacheStats returns the machine's compiled-program cache counters.
func (m *Machine) CacheStats() CacheStats {
	c := &m.progs
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// getProgram returns the compiled, fused program for the executable,
// reusing a cached result when the circuit fingerprint matches.
// Compilation runs outside the lock; two goroutines racing on the same
// new circuit may both compile, and the second insert wins — harmless,
// since compilation is deterministic.
func (m *Machine) getProgram(exe *circuit.Circuit) (*program, error) {
	fp := exe.Fingerprint()
	c := &m.progs
	c.mu.Lock()
	if e, ok := c.entries[fp]; ok &&
		e.numQubits == exe.NumQubits && e.numClbits == exe.NumClbits && e.numOps == len(exe.Ops) {
		c.hits++
		c.mu.Unlock()
		return e.prog, nil
	}
	c.misses++
	c.mu.Unlock()

	raw, err := m.compile(exe)
	if err != nil {
		return nil, err
	}
	prog := fuseProgram(raw)

	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[uint64]progEntry, progCacheLimit)
	}
	if _, exists := c.entries[fp]; !exists {
		c.order = append(c.order, fp)
	}
	c.entries[fp] = progEntry{prog: prog, numQubits: exe.NumQubits, numClbits: exe.NumClbits, numOps: len(exe.Ops)}
	for len(c.entries) > progCacheLimit {
		oldest := c.order[0]
		c.order = c.order[1:]
		if oldest != fp {
			delete(c.entries, oldest)
			c.evictions++
		} else {
			// Never evict the entry just inserted; rotate it to the back.
			c.order = append(c.order, oldest)
		}
	}
	c.mu.Unlock()
	return prog, nil
}
