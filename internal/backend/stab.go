package backend

// Stabilizer fast path: fully-Clifford compiled programs run on an
// Aaronson–Gottesman tableau (internal/stabilizer) instead of the
// statevector, in O(gates · n²/64) per trial with no 2^n allocation —
// which is what makes >24-qubit (and >64-qubit heavy-hex) devices
// simulable at all.
//
// The analysis walks the fused schedule once per program and converts
// every step it can into a tableau operation:
//
//   - stepU1/stepU2 unitaries are recognized *numerically*: the images
//     U X U†, U Z U† (and the four two-qubit generators) are computed
//     from the fused matrix and matched against signed Paulis
//     i^p X^x Z^z. Name-based recognition would not survive fusion,
//     which multiplies gate runs into anonymous composites.
//   - stepPauli1/stepPauli2 are stochastic Pauli injections — exactly
//     what a tableau absorbs as a phase flip per anticommuting row.
//   - stepMeasure maps to the tableau measurement, whose draw protocol
//     mirrors statevec.MeasureQubit (one uniform, outcome 1 iff u < P1).
//   - stepDamp is never Clifford: amplitude damping is not a Pauli
//     channel. Its presence (any finite T1/T2 in the calibration) stops
//     the analysis.
//
// The walk records the maximal Clifford prefix length; only when the
// prefix covers the whole schedule does the program get a stabilizer
// plan. Otherwise the machine falls back to the tape-tree statevector
// engine for the entire program (counted in StabFallbacks) — partial
// tableau-to-statevector handoff would require materializing the
// stabilizer state, which defeats the purpose.
//
// Byte-identity with the statevector engines holds by construction: a
// stabilizer trial draws the same uniforms in the same order
// (SamplePauli1Q/2Q per noise step, one uniform per measurement, one
// readout Bernoulli per measured bit), and the measurement comparison
// u < P1 agrees wherever the statevector's P1 rounds to the tableau's
// exact {0, ½, 1}. The deterministic prefix — the leading run of
// draw-free unitary steps — is applied once into a snapshot tableau
// that every trial copies from, mirroring the prefix-sharing engine's
// checkpoint trick at a fraction of the memory.

import (
	"fmt"
	"math/cmplx"
	"sync/atomic"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/noise"
	"edm/internal/rng"
	"edm/internal/stabilizer"
	"edm/internal/statevec"
)

// recognizeTol bounds the per-entry deviation between a conjugation
// image and its matched signed Pauli. Clifford products are exact up to
// rounding (~1e-15 per multiply); the nearest non-Clifford gate in the
// gate set (T) sits ~0.38 away, so the window is enormous on both sides.
const recognizeTol = 1e-9

// stabStep is one tableau-executable schedule entry. kind reuses the
// program's stepKind values; exactly one of lut1/lut2 is set for
// unitary steps.
type stabStep struct {
	kind stepKind
	lut1 *stabilizer.LUT1
	lut2 *stabilizer.LUT2
	q0   int
	q1   int
	p    float64 // depolarizing probability for stepPauli*
	cbit int
}

// stabPlan is the per-program artifact of a successful Clifford
// analysis: the converted schedule plus the deterministic-prefix
// snapshot trials start from.
type stabPlan struct {
	steps []stabStep
	// snap is the tableau after the leading snapSteps draw-free unitary
	// steps; every trial CopyFroms it instead of replaying them.
	snap      *stabilizer.Tableau
	snapSteps int
}

// stabAnalysis caches the Clifford analysis of one compiled program.
type stabAnalysis struct {
	plan      *stabPlan // non-nil iff every step converted
	prefixLen int       // leading Clifford-convertible steps
}

// stabFor returns the program's cached Clifford analysis, running it on
// first use. The analysis is engine-independent; whether its plan is
// *used* is the engine's call (selectStab).
func (m *Machine) stabFor(prog *program) *stabAnalysis {
	prog.stabOnce.Do(func() {
		prog.stab = analyzeStab(prog)
		engineStats.stabPrefixSteps.Add(int64(prog.stab.prefixLen))
		if prog.stab.plan != nil {
			engineStats.stabPrograms.Add(1)
			storeMax(&engineStats.stabMaxWords, int64(prog.stab.plan.snap.Words()))
		} else {
			engineStats.stabFallbacks.Add(1)
		}
	})
	return prog.stab
}

// storeMax raises a towards v (monotone atomic max).
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// selectStab resolves which engine executes the program and returns the
// stabilizer plan to use (nil means the statevector path). It errors
// when the selected engine cannot run the program at all: a strict
// EngineStabilizer on a non-Clifford schedule, or a statevector path on
// a device subset wider than the amplitude simulator.
func (m *Machine) selectStab(prog *program) (*stabPlan, error) {
	switch m.engine {
	case EngineStabilizer:
		a := m.stabFor(prog)
		if a.plan == nil {
			return nil, fmt.Errorf("backend: engine=stabilizer but schedule step %d is not Clifford (prefix %d of %d steps)",
				a.prefixLen, a.prefixLen, len(prog.steps))
		}
		return a.plan, nil
	case EnginePrefixSharing:
		if a := m.stabFor(prog); a.plan != nil {
			return a.plan, nil
		}
	}
	// Statevector path (legacy, pinned, or Clifford fallback).
	if prog.nLocal > statevec.MaxQubits {
		return nil, fmt.Errorf("backend: %d active qubits exceed simulator limit %d (non-Clifford schedule cannot use the stabilizer engine)",
			prog.nLocal, statevec.MaxQubits)
	}
	return nil, nil
}

// analyzeStab converts the fused schedule into tableau steps, stopping
// at the first non-Clifford step.
func analyzeStab(prog *program) *stabAnalysis {
	a := &stabAnalysis{}
	steps := make([]stabStep, 0, len(prog.steps))
	for i := range prog.steps {
		st := &prog.steps[i]
		var ss stabStep
		switch st.kind {
		case stepU1:
			l, ok := recognize1Q(st.m2)
			if !ok {
				a.prefixLen = i
				return a
			}
			ss = stabStep{kind: stepU1, lut1: l, q0: st.q0}
		case stepU2:
			l, ok := recognize2Q(st.m4)
			if !ok {
				a.prefixLen = i
				return a
			}
			ss = stabStep{kind: stepU2, lut2: l, q0: st.q0, q1: st.q1}
		case stepPauli1:
			ss = stabStep{kind: stepPauli1, q0: st.q0, p: st.p}
		case stepPauli2:
			ss = stabStep{kind: stepPauli2, q0: st.q0, q1: st.q1, p: st.p}
		case stepMeasure:
			ss = stabStep{kind: stepMeasure, q0: st.q0, cbit: st.cbit}
		default: // stepDamp: amplitude/phase damping is not a Pauli channel
			a.prefixLen = i
			return a
		}
		steps = append(steps, ss)
	}
	a.prefixLen = len(prog.steps)
	plan := &stabPlan{steps: steps, snap: stabilizer.New(prog.nLocal)}
	for _, ss := range steps {
		if ss.kind == stepU1 {
			plan.snap.Apply1(ss.q0, ss.lut1)
		} else if ss.kind == stepU2 {
			plan.snap.Apply2(ss.q0, ss.q1, ss.lut2)
		} else {
			break
		}
		plan.snapSteps++
	}
	a.plan = plan
	return a
}

// runStabStripe executes trials start, start+stride, ... on the tableau,
// reusing one tableau and one classical-bit scratch across all of them.
// It is the stabilizer twin of runStripe and honors the same striping
// and cancellation contracts.
func (m *Machine) runStabStripe(prog *program, sp *stabPlan, start, stride, trials int, r *rng.RNG, cancel *atomic.Bool) *dist.Counts {
	counts := dist.NewCounts(prog.numClbits)
	tab := stabilizer.New(prog.nLocal)
	trueBits := make([]int, prog.numClbits)
	var tally engineTally
	for t := start; t < trials; t += stride {
		if cancel != nil && cancel.Load() {
			break
		}
		counts.Observe(m.runStabTrial(prog, sp, tab, trueBits, r.DeriveN("trial", t)))
		tally.stab++
	}
	tally.flush()
	return counts
}

// runStabTrial executes one trial on the tableau. The draw sequence is
// step-for-step the one resumeTrajectory performs, so a trial's RNG
// stream position is identical on both engines at every step boundary.
func (m *Machine) runStabTrial(prog *program, sp *stabPlan, tab *stabilizer.Tableau, trueBits []int, rt *rng.RNG) bitstr.BitString {
	tab.CopyFrom(sp.snap)
	for i := range trueBits {
		trueBits[i] = 0
	}
	for i := sp.snapSteps; i < len(sp.steps); i++ {
		st := &sp.steps[i]
		switch st.kind {
		case stepU1:
			tab.Apply1(st.q0, st.lut1)
		case stepU2:
			tab.Apply2(st.q0, st.q1, st.lut2)
		case stepPauli1:
			if k := noise.SamplePauli1Q(st.p, rt); k != 0 {
				tab.ApplyPauli(st.q0, k)
			}
		case stepPauli2:
			ka, kb := noise.SamplePauli2Q(st.p, rt)
			if ka != 0 {
				tab.ApplyPauli(st.q0, ka)
			}
			if kb != 0 {
				tab.ApplyPauli(st.q1, kb)
			}
		case stepMeasure:
			trueBits[st.cbit] = tab.MeasureQubit(st.q0, rt)
		}
	}
	return m.applyReadout(prog, trueBits, rt)
}

// ---- numeric Clifford recognition ----

var (
	pauliX2 = circuit.Matrix2{{0, 1}, {1, 0}}
	pauliZ2 = circuit.Matrix2{{1, 0}, {0, -1}}
)

// dagger2 returns the conjugate transpose of m.
func dagger2(m circuit.Matrix2) circuit.Matrix2 {
	var d circuit.Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			d[i][j] = cmplx.Conj(m[j][i])
		}
	}
	return d
}

// dagger4 returns the conjugate transpose of m.
func dagger4(m circuit.Matrix4) circuit.Matrix4 {
	var d circuit.Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d[i][j] = cmplx.Conj(m[j][i])
		}
	}
	return d
}

// phaseOf matches v against i^p for p in 0..3 within recognizeTol.
func phaseOf(v complex128) (uint8, bool) {
	for p, w := range [4]complex128{1, 1i, -1, -1i} {
		if cmplx.Abs(v-w) < recognizeTol {
			return uint8(p), true
		}
	}
	return 0, false
}

// matchPauli1 matches a 2x2 matrix against i^p X^x Z^z: column j maps to
// row j^x with value i^p (-1)^(z·j).
func matchPauli1(m circuit.Matrix2) (stabilizer.Pauli, bool) {
	x := uint8(0)
	if cmplx.Abs(m[1][0]) > 0.5 {
		x = 1
	}
	p, ok := phaseOf(m[x][0])
	if !ok {
		return stabilizer.Pauli{}, false
	}
	z := uint8(0)
	if real(m[1^x][1]/m[x][0]) < 0 {
		z = 1
	}
	want := stabilizer.Pauli{X: x, Z: z, Phase: p}
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			var exp complex128
			if i == j^int(x) {
				exp = [4]complex128{1, 1i, -1, -1i}[p]
				if z == 1 && j == 1 {
					exp = -exp
				}
			}
			if !(cmplx.Abs(m[i][j]-exp) < recognizeTol) {
				return stabilizer.Pauli{}, false
			}
		}
	}
	return want, true
}

// matchPauli2 matches a 4x4 matrix (basis index = q0 + 2*q1, slot a =
// bit 0) against i^p X_a^xa Z_a^za X_b^xb Z_b^zb: column j maps to row
// j^(xa+2xb) with value i^p (-1)^(za·j_a + zb·j_b).
func matchPauli2(m circuit.Matrix4) (stabilizer.Pauli, bool) {
	xmask := -1
	for k := 0; k < 4; k++ {
		if cmplx.Abs(m[k][0]) > 0.5 {
			xmask = k
			break
		}
	}
	if xmask < 0 {
		return stabilizer.Pauli{}, false
	}
	p, ok := phaseOf(m[xmask][0])
	if !ok {
		return stabilizer.Pauli{}, false
	}
	za, zb := uint8(0), uint8(0)
	if real(m[1^xmask][1]/m[xmask][0]) < 0 {
		za = 1
	}
	if real(m[2^xmask][2]/m[xmask][0]) < 0 {
		zb = 1
	}
	want := stabilizer.Pauli{X: uint8(xmask), Z: za | zb<<1, Phase: p}
	base := [4]complex128{1, 1i, -1, -1i}[p]
	for j := 0; j < 4; j++ {
		sign := complex128(1)
		if za == 1 && j&1 == 1 {
			sign = -sign
		}
		if zb == 1 && j>>1&1 == 1 {
			sign = -sign
		}
		for i := 0; i < 4; i++ {
			var exp complex128
			if i == j^xmask {
				exp = base * sign
			}
			if !(cmplx.Abs(m[i][j]-exp) < recognizeTol) {
				return stabilizer.Pauli{}, false
			}
		}
	}
	return want, true
}

// unitary2 rejects matrices that are not unitary within tolerance —
// conjugation by a non-unitary would not preserve Pauli algebra, and a
// fused product should always be unitary unless something upstream
// went wrong.
func unitary2(m circuit.Matrix2) bool {
	d := dagger2(m)
	prod := m.Mul(d)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var exp complex128
			if i == j {
				exp = 1
			}
			if !(cmplx.Abs(prod[i][j]-exp) < recognizeTol) {
				return false
			}
		}
	}
	return true
}

// recognize1Q recognizes a single-qubit Clifford from its fused matrix
// by matching the conjugation images of X and Z against signed Paulis.
func recognize1Q(m circuit.Matrix2) (*stabilizer.LUT1, bool) {
	if !unitary2(m) {
		return nil, false
	}
	d := dagger2(m)
	imgX, okX := matchPauli1(m.Mul(pauliX2).Mul(d))
	imgZ, okZ := matchPauli1(m.Mul(pauliZ2).Mul(d))
	if !okX || !okZ || !imgX.Hermitian() || !imgZ.Hermitian() {
		return nil, false
	}
	return stabilizer.NewLUT1(imgX, imgZ), true
}

// pauliGen4 builds the 4x4 matrix of X^x Z^z per slot (slot a = bit 0 of
// the basis index and of x/z).
func pauliGen4(x, z uint8) circuit.Matrix4 {
	var m circuit.Matrix4
	for j := 0; j < 4; j++ {
		sign := complex128(1)
		if z&1 == 1 && j&1 == 1 {
			sign = -sign
		}
		if z>>1&1 == 1 && j>>1&1 == 1 {
			sign = -sign
		}
		m[j^int(x)][j] = sign
	}
	return m
}

// mul4 is a plain 4x4 complex matrix product (kept local so the
// recognizer has no dependency on the noise package's fused helpers).
func mul4(a, b circuit.Matrix4) circuit.Matrix4 {
	var c circuit.Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s complex128
			for k := 0; k < 4; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}

// unitary4 is unitary2 for 4x4 matrices.
func unitary4(m circuit.Matrix4) bool {
	prod := mul4(m, dagger4(m))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var exp complex128
			if i == j {
				exp = 1
			}
			if !(cmplx.Abs(prod[i][j]-exp) < recognizeTol) {
				return false
			}
		}
	}
	return true
}

// recognize2Q recognizes a two-qubit Clifford from its fused matrix by
// matching the conjugation images of X_a, Z_a, X_b, Z_b.
func recognize2Q(m circuit.Matrix4) (*stabilizer.LUT2, bool) {
	if !unitary4(m) {
		return nil, false
	}
	d := dagger4(m)
	var imgs [4]stabilizer.Pauli
	gens := [4]circuit.Matrix4{
		pauliGen4(1, 0), // X_a
		pauliGen4(0, 1), // Z_a
		pauliGen4(2, 0), // X_b
		pauliGen4(0, 2), // Z_b
	}
	for i, g := range gens {
		img, ok := matchPauli2(mul4(mul4(m, g), d))
		if !ok || !img.Hermitian() {
			return nil, false
		}
		imgs[i] = img
	}
	return stabilizer.NewLUT2(imgs[0], imgs[1], imgs[2], imgs[3]), true
}
