package backend

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"edm/internal/rng"
	"edm/internal/statevec"
)

// TestTrajectoryBenchReport regenerates BENCH_trajectory.json (via
// scripts/bench_trajectory.sh): the tape-tree engine versus the frozen
// legacy trajectory loop, per-trial, on the representative executables
// of BENCH_kernels.json. Keeping the measurement in Go lets the report
// assert Counts byte-equality between the engines in the same process
// that times them, and lets it observe the tree walk through the test
// hook for the per-leaf hit rates. It skips unless
// EDM_BENCH_TRAJECTORY_OUT names the output file.
func TestTrajectoryBenchReport(t *testing.T) {
	out := os.Getenv("EDM_BENCH_TRAJECTORY_OUT")
	if out == "" {
		t.Skip("set EDM_BENCH_TRAJECTORY_OUT to write the trajectory benchmark report")
	}

	type row struct {
		Case          string    `json:"case"`
		Trials        int       `json:"trials"`
		LegacyTrialsS float64   `json:"legacy_trials_per_s"`
		PrefixTrialsS float64   `json:"prefix_trials_per_s"`
		Speedup       float64   `json:"speedup"`
		TapeEntries   int       `json:"tape_entries"`
		TreeLeaves    int       `json:"tree_leaves"`
		TreeDepth     int       `json:"tree_depth"`
		LeafHitRates  []float64 `json:"leaf_hit_rates"`
		DivergentRate float64   `json:"divergent_rate"`
		Checkpoints   int       `json:"checkpoints"`
		CkptBytes     int64     `json:"checkpoint_bytes"`
		Identical     bool      `json:"counts_identical"`
	}
	report := struct {
		Date       string `json:"date"`
		Go         string `json:"go"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Note       string `json:"note"`
		Headline   string `json:"headline"`
		Rows       []row  `json:"rows"`
	}{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "per-trial trajectory execution, tape-tree engine (DESIGN.md section 10) vs " +
			"the frozen legacy full-replay loop (Machine.SetTrajectoryEngine(EngineLegacy)); " +
			"leaf_hit_rates is the fraction of trials resolving on each dominant path with " +
			"zero state work, divergent_rate the fraction replaying a suffix; " +
			"checkpoint_bytes is the engine's resident memory overhead per compiled program",
	}

	cases := []struct {
		nq, trials int
	}{
		{6, 20000},
		{10, 4000},
		{14, 800},
	}
	for _, tc := range cases {
		m := noisyMachine(7)
		prog, err := m.getProgram(benchCircuit(tc.nq))
		if err != nil {
			t.Fatal(err)
		}
		plan := m.planFor(prog)
		if plan == nil {
			t.Fatal("no prefix plan")
		}
		scratch := statevec.NewState(prog.nLocal)
		trueBits := make([]int, prog.numClbits)
		root := rng.New(11)
		var tally engineTally

		// Warm both paths, pin byte-identity, and tally the tree walk:
		// which leaf each trial lands on, or divergence.
		leafHits := make(map[int]int)
		divergent := 0
		testHookPrefix = func(_, node, div int, _ *rng.RNG) {
			if div < 0 {
				leafHits[node]++
			} else {
				divergent++
			}
		}
		identical := true
		const accounting = 2000
		for trial := 0; trial < accounting; trial++ {
			a := m.runTrajectory(prog, scratch, trueBits, root.DeriveN("trial", trial))
			b := m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
			if a != b {
				identical = false
			}
		}
		testHookPrefix = nil

		start := time.Now()
		for trial := 0; trial < tc.trials; trial++ {
			m.runTrajectory(prog, scratch, trueBits, root.DeriveN("trial", trial))
		}
		legacyS := float64(tc.trials) / time.Since(start).Seconds()

		start = time.Now()
		for trial := 0; trial < tc.trials; trial++ {
			m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
		}
		prefixS := float64(tc.trials) / time.Since(start).Seconds()

		if !identical {
			t.Errorf("q%d: engines disagree on outcome bits", tc.nq)
		}
		entries, ckpts := 0, 0
		for _, n := range plan.nodes {
			entries += len(n.tape)
			ckpts += len(n.ckpts)
		}
		rates := make([]float64, 0, len(plan.leaves))
		for _, leaf := range plan.leaves {
			rates = append(rates, float64(leafHits[leaf.id])/accounting)
		}
		report.Rows = append(report.Rows, row{
			Case:          fmt.Sprintf("RunTrajectory/q%d", tc.nq),
			Trials:        tc.trials,
			LegacyTrialsS: legacyS,
			PrefixTrialsS: prefixS,
			Speedup:       prefixS / legacyS,
			TapeEntries:   entries,
			TreeLeaves:    len(plan.leaves),
			TreeDepth:     plan.maxDepth,
			LeafHitRates:  rates,
			DivergentRate: float64(divergent) / accounting,
			Checkpoints:   ckpts,
			CkptBytes:     plan.stateBytes,
			Identical:     identical,
		})
	}

	head := report.Rows[len(report.Rows)-1]
	report.Headline = fmt.Sprintf("RunTrajectory/q14: %.2fx trials/s vs frozen legacy loop (%.0f vs %.0f)",
		head.Speedup, head.PrefixTrialsS, head.LegacyTrialsS)
	if head.Speedup < 1.5 {
		t.Errorf("headline speedup %.2fx below the 1.5x acceptance bar", head.Speedup)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", report.Headline)
}
