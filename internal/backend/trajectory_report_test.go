package backend

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"edm/internal/dist"
	"edm/internal/rng"
	"edm/internal/statevec"
)

// TestTrajectoryBenchReport regenerates BENCH_trajectory.json (via
// scripts/bench_trajectory.sh): the batched replay engine and the
// sequential tape-tree engine versus the frozen legacy trajectory loop,
// on the representative executables of BENCH_kernels.json. Keeping the
// measurement in Go lets the report assert Counts byte-equality between
// the engines in the same process that times them, and lets it observe
// the tree walk through the test hook for the per-leaf hit rates. It
// skips unless EDM_BENCH_TRAJECTORY_OUT names the output file.
func TestTrajectoryBenchReport(t *testing.T) {
	out := os.Getenv("EDM_BENCH_TRAJECTORY_OUT")
	if out == "" {
		t.Skip("set EDM_BENCH_TRAJECTORY_OUT to write the trajectory benchmark report")
	}

	type row struct {
		Case           string    `json:"case"`
		Trials         int       `json:"trials"`
		LegacyTrialsS  float64   `json:"legacy_trials_per_s"`
		PrefixTrialsS  float64   `json:"prefix_trials_per_s"`
		BatchedTrialsS float64   `json:"batched_trials_per_s"`
		Speedup        float64   `json:"speedup"`
		SpeedupSeq     float64   `json:"speedup_sequential"`
		TapeEntries    int       `json:"tape_entries"`
		TreeLeaves     int       `json:"tree_leaves"`
		TreeDepth      int       `json:"tree_depth"`
		LeafHitRates   []float64 `json:"leaf_hit_rates"`
		DivergentRate  float64   `json:"divergent_rate"`
		Checkpoints    int       `json:"checkpoints"`
		CkptBytes      int64     `json:"checkpoint_bytes"`
		Buckets        int64     `json:"batch_buckets"`
		Units          int64     `json:"batch_units"`
		MeanBatch      float64   `json:"mean_batch_size"`
		LaneClones     int64     `json:"batch_lane_clones"`
		Deferred       int64     `json:"batch_deferred_trials"`
		Steals         int64     `json:"unit_steals"`
		Identical      bool      `json:"counts_identical"`
	}
	report := struct {
		Date       string `json:"date"`
		Go         string `json:"go"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Note       string `json:"note"`
		Headline   string `json:"headline"`
		Rows       []row  `json:"rows"`
	}{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "per-trial trajectory execution: batched divergent-suffix replay (DESIGN.md " +
			"section 15) and the sequential tape-tree engine (section 10) vs the frozen " +
			"legacy full-replay loop (Machine.SetTrajectoryEngine(EngineLegacy)); the three " +
			"engines are timed in interleaved rounds so shared-machine load lands on all of " +
			"them; speedup is batched vs legacy, speedup_sequential the old per-trial " +
			"tape-tree path vs legacy; counts_identical asserts the batched Counts equal " +
			"the legacy Counts bit for bit; mean_batch_size is divergent trials per replay " +
			"unit, batch_lane_clones the lane copies taken at stochastic group splits; " +
			"checkpoint_bytes is the engine's resident memory overhead per compiled program",
	}

	cases := []struct {
		nq, trials int
	}{
		{6, 20000},
		{10, 4000},
		{14, 800},
	}
	for _, tc := range cases {
		m := noisyMachine(7)
		prog, err := m.getProgram(benchCircuit(tc.nq))
		if err != nil {
			t.Fatal(err)
		}
		plan := m.planFor(prog)
		if plan == nil {
			t.Fatal("no prefix plan")
		}
		scratch := statevec.NewState(prog.nLocal)
		trueBits := make([]int, prog.numClbits)
		root := rng.New(11)
		var tally engineTally

		// Warm both per-trial paths, pin per-trial byte-identity, and
		// tally the tree walk: which leaf each trial lands on, or
		// divergence.
		leafHits := make(map[int]int)
		divergent := 0
		testHookPrefix = func(_, node, div int, _ *rng.RNG) {
			if div < 0 {
				leafHits[node]++
			} else {
				divergent++
			}
		}
		identical := true
		const accounting = 2000
		for trial := 0; trial < accounting; trial++ {
			a := m.runTrajectory(prog, scratch, trueBits, root.DeriveN("trial", trial))
			b := m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
			if a != b {
				identical = false
			}
		}
		testHookPrefix = nil

		// Time the three engines in interleaved rounds so a load spike on
		// a shared machine lands on all of them instead of skewing one:
		// each round runs the full trial set through legacy, sequential
		// tape-tree, then batched, and the throughputs are computed from
		// the summed round times.
		const rounds = 3
		var legacyT, prefixT, batchedT time.Duration
		legacyCounts := dist.NewCounts(prog.numClbits)
		var batchedCounts *dist.Counts
		before := EngineStatsSnapshot()
		for round := 0; round < rounds; round++ {
			start := time.Now()
			for trial := 0; trial < tc.trials; trial++ {
				out := m.runTrajectory(prog, scratch, trueBits, root.DeriveN("trial", trial))
				if round == 0 {
					legacyCounts.Observe(out)
				}
			}
			legacyT += time.Since(start)

			start = time.Now()
			for trial := 0; trial < tc.trials; trial++ {
				m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
			}
			prefixT += time.Since(start)

			// Batched engine, end to end through the scheduler (walk
			// phase + bucketed replay + work stealing), same streams.
			start = time.Now()
			batchedCounts = m.runBatched(prog, plan, tc.trials, root, nil)
			batchedT += time.Since(start)
		}
		legacyS := float64(rounds*tc.trials) / legacyT.Seconds()
		prefixS := float64(rounds*tc.trials) / prefixT.Seconds()
		batchedS := float64(rounds*tc.trials) / batchedT.Seconds()
		after := EngineStatsSnapshot()

		if !identical {
			t.Errorf("q%d: engines disagree on per-trial outcome bits", tc.nq)
		}
		if !countsEqual(legacyCounts, batchedCounts) {
			identical = false
			t.Errorf("q%d: batched Counts differ from legacy Counts", tc.nq)
		}
		entries, ckpts := 0, 0
		for _, n := range plan.nodes {
			entries += len(n.tape)
			ckpts += len(n.ckpts)
		}
		rates := make([]float64, 0, len(plan.leaves))
		for _, leaf := range plan.leaves {
			rates = append(rates, float64(leafHits[leaf.id])/accounting)
		}
		// The counter deltas cover all timing rounds; report per-run
		// occupancy (every round does identical work).
		units := (after.BatchUnits - before.BatchUnits) / rounds
		batchTrials := (after.BatchTrials - before.BatchTrials) / rounds
		meanBatch := 0.0
		if units > 0 {
			meanBatch = float64(batchTrials) / float64(units)
		}
		report.Rows = append(report.Rows, row{
			Case:           fmt.Sprintf("RunTrajectory/q%d", tc.nq),
			Trials:         tc.trials,
			LegacyTrialsS:  legacyS,
			PrefixTrialsS:  prefixS,
			BatchedTrialsS: batchedS,
			Speedup:        batchedS / legacyS,
			SpeedupSeq:     prefixS / legacyS,
			TapeEntries:    entries,
			TreeLeaves:     len(plan.leaves),
			TreeDepth:      plan.maxDepth,
			LeafHitRates:   rates,
			DivergentRate:  float64(divergent) / accounting,
			Checkpoints:    ckpts,
			CkptBytes:      plan.stateBytes,
			Buckets:        (after.BatchBuckets - before.BatchBuckets) / rounds,
			Units:          units,
			MeanBatch:      meanBatch,
			LaneClones:     (after.BatchLaneClones - before.BatchLaneClones) / rounds,
			Deferred:       (after.BatchDeferredTrials - before.BatchDeferredTrials) / rounds,
			Steals:         (after.UnitSteals - before.UnitSteals) / rounds,
			Identical:      identical,
		})
	}

	head := report.Rows[len(report.Rows)-1]
	report.Headline = fmt.Sprintf("RunTrajectory/q14: %.2fx trials/s vs frozen legacy loop (batched %.0f vs %.0f; sequential tape-tree %.0f)",
		head.Speedup, head.BatchedTrialsS, head.LegacyTrialsS, head.PrefixTrialsS)
	if head.Speedup < 1.5 {
		t.Errorf("headline speedup %.2fx below the 1.5x acceptance bar", head.Speedup)
	}
	// The interleaved rounds average shared-machine load across engines;
	// the 5% tolerance absorbs what interleaving cannot.
	if head.BatchedTrialsS < 0.95*head.PrefixTrialsS {
		t.Errorf("batched engine (%.0f trials/s) slower than the sequential tape-tree path (%.0f trials/s) on q14",
			head.BatchedTrialsS, head.PrefixTrialsS)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", report.Headline)
}
