package backend

import (
	"reflect"
	"testing"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/memo"
	"edm/internal/rng"
)

// TestRunCacheBitIdentical checks the run cache's core contract: a
// cached machine returns histograms bit-identical to a plain machine for
// the same (circuit, trials, RNG state), and a repeat call is a hit
// serving the same shared value.
func TestRunCacheBitIdentical(t *testing.T) {
	plain := noisyMachine(31)
	cached := noisyMachine(31)
	cached.EnableRunCache()
	c := bell(t)
	want, err := plain.Run(c, 600, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Run(c, 600, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached run differs from plain run")
	}
	again, err := cached.Run(c, 600, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("repeat run was re-simulated instead of served from the cache")
	}
	st := cached.RunCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("run cache stats = %+v", st)
	}
	if plain.RunCacheStats() != (memo.Stats{}) {
		t.Fatal("plain machine reports run cache activity")
	}
}

// TestRunCacheKeySensitivity checks that the key distinguishes trial
// counts and RNG states: changing either re-simulates.
func TestRunCacheKeySensitivity(t *testing.T) {
	m := noisyMachine(33)
	m.EnableRunCache()
	c := bell(t)
	if _, err := m.Run(c, 500, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(c, 501, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(c, 500, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	// Same seed but advanced state must also miss.
	r := rng.New(1)
	r.Uint64()
	if _, err := m.Run(c, 500, r); err != nil {
		t.Fatal(err)
	}
	st := m.RunCacheStats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("run cache stats = %+v (want 4 distinct misses)", st)
	}
}

// TestRunCacheDoesNotAdvanceCaller pins the purity property the cache
// rests on: Run never advances the caller's generator, hit or miss, so
// memoizing by RNG state cannot change any downstream stream.
func TestRunCacheDoesNotAdvanceCaller(t *testing.T) {
	m := noisyMachine(35)
	m.EnableRunCache()
	c := bell(t)
	r := rng.New(77)
	before := r.State()
	if _, err := m.Run(c, 400, r); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := m.Run(c, 400, r); err != nil { // hit
		t.Fatal(err)
	}
	if r.State() != before {
		t.Fatal("Run advanced the caller's RNG")
	}
}

// TestRunCacheCachesErrors checks deterministic rejections are memoized
// rather than recompiled.
func TestRunCacheCachesErrors(t *testing.T) {
	m := idealMachine(device.Linear(3))
	m.EnableRunCache()
	bad := circuit.New(3, 3)
	bad.CX(0, 2).MeasureAll() // violates the linear coupling map
	_, err1 := m.Run(bad, 100, rng.New(1))
	_, err2 := m.Run(bad, 100, rng.New(1))
	if err1 == nil || err2 == nil {
		t.Fatal("coupling violation not rejected")
	}
	st := m.RunCacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("run cache stats = %+v (want cached error hit)", st)
	}
}
