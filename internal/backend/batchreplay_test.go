package backend

import (
	"testing"

	"edm/internal/device"
	"edm/internal/rng"
)

// TestBatchedReplayByteIdentityWorkloads is the acceptance gate of the
// batched replay engine against its sequential ancestor: for every
// workload, the Counts produced by the batched scheduler (walk phase +
// bucketed suffix replay + work stealing) must be byte-identical to the
// sequential prefix-sharing stripes, on both the serial path
// (trials < parallelThreshold) and the parallel path. Together with
// TestPrefixEngineByteIdentityWorkloads (legacy vs default engine, and
// the default engine is the batched path) this pins
// legacy == sequential prefix == batched for every workload. ci.sh
// re-runs it under -race at GOMAXPROCS=1 and at full width.
func TestBatchedReplayByteIdentityWorkloads(t *testing.T) {
	defer func(prev bool) { batchedReplay = prev }(batchedReplay)
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	for name, exe := range exes {
		for _, trials := range []int{100, 1000} { // serial and parallel
			batchedReplay = false
			seq := New(cal)
			want, err := seq.Run(exe.Circuit, trials, rng.New(42))
			if err != nil {
				t.Fatalf("%s sequential run: %v", name, err)
			}
			batchedReplay = true
			bat := New(cal)
			got, err := bat.Run(exe.Circuit, trials, rng.New(42))
			if err != nil {
				t.Fatalf("%s batched run: %v", name, err)
			}
			if !countsEqual(want, got) {
				t.Errorf("%s trials=%d: batched counts differ from sequential replay", name, trials)
			}
		}
	}
}

// TestBatchedReplayStats pins the occupancy accounting: every divergent
// trial is replayed through exactly one retiring unit (deferred trials
// are re-counted only when their continuation completes), units and
// buckets are formed whenever divergences exist, and lane usage is at
// least one per unit.
func TestBatchedReplayStats(t *testing.T) {
	defer func(prev bool) { batchedReplay = prev }(batchedReplay)
	batchedReplay = true
	ResetEngineStats()
	m := noisyMachine(7)
	exe := benchCircuit(10)
	const trials = 4000
	if _, err := m.Run(exe, trials, rng.New(99)); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := EngineStatsSnapshot()
	if s.FullDominantTrials+s.DivergentTrials != trials {
		t.Fatalf("walk accounting: %d dominant + %d divergent != %d trials",
			s.FullDominantTrials, s.DivergentTrials, trials)
	}
	if s.DivergentTrials == 0 {
		t.Fatalf("workload produced no divergent trials; stats test needs a noisier case")
	}
	if s.BatchTrials != s.DivergentTrials {
		t.Errorf("BatchTrials = %d, want %d (every divergent trial retires through one unit)",
			s.BatchTrials, s.DivergentTrials)
	}
	if s.BatchBuckets == 0 || s.BatchUnits < s.BatchBuckets {
		t.Errorf("bucket/unit accounting: buckets=%d units=%d", s.BatchBuckets, s.BatchUnits)
	}
	if s.BatchLanes < s.BatchUnits {
		t.Errorf("lane accounting: lanes=%d < units=%d", s.BatchLanes, s.BatchUnits)
	}
	if s.BatchUnits > 0 && s.BatchTrials/s.BatchUnits < 1 {
		t.Errorf("mean batch size below 1: trials=%d units=%d", s.BatchTrials, s.BatchUnits)
	}
}

func TestMaxLanesFor(t *testing.T) {
	for n := 0; n <= 30; n++ {
		lanes := maxLanesFor(n)
		if lanes < 4 || lanes > 128 {
			t.Fatalf("maxLanesFor(%d) = %d outside [4, 128]", n, lanes)
		}
	}
	if got := maxLanesFor(14); got != 128 {
		t.Errorf("maxLanesFor(14) = %d, want 128", got)
	}
	if got := maxLanesFor(24); got != 4 {
		t.Errorf("maxLanesFor(24) = %d, want 4 (memory-bound clamp)", got)
	}
}
