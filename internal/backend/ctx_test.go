package backend

import (
	"context"
	"errors"
	"testing"
	"time"

	"edm/internal/rng"
)

// TestRunCtxBitIdenticalToRun pins the determinism contract over the
// context-threaded path: with a live (cancellable but never cancelled)
// context, RunCtx must return byte-identical histograms to Run, both
// with and without the run cache.
func TestRunCtxBitIdenticalToRun(t *testing.T) {
	c := bell(t)
	for _, cached := range []bool{false, true} {
		m := noisyMachine(11)
		if cached {
			m.EnableRunCache()
		}
		want, err := m.Run(c, 600, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		got, err := m.RunCtx(ctx, c, 600, rng.New(3))
		cancel()
		if err != nil {
			t.Fatalf("cached=%v: RunCtx: %v", cached, err)
		}
		if !got.Dist().Equal(want.Dist(), 0) {
			t.Fatalf("cached=%v: RunCtx differs from Run", cached)
		}
		if got.Total() != want.Total() {
			t.Fatalf("cached=%v: totals %d vs %d", cached, got.Total(), want.Total())
		}
	}
}

// TestRunCtxCancelledUncached: mid-run cancellation on a cache-less
// machine must abort the trial loops and surface ctx.Err() — never a
// panic, never a truncated histogram.
func TestRunCtxCancelledUncached(t *testing.T) {
	m := noisyMachine(12)
	c := bell(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunCtx(ctx, c, 1<<20, rng.New(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx err = %v, want Canceled", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := m.RunCtx(ctx2, c, 1<<22, rng.New(5))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline RunCtx err = %v, want DeadlineExceeded", err)
	}
	// 2^22 trials would take far longer than a second; cancellation must
	// cut the run short instead of letting it finish.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled run still took %v", d)
	}
}

// TestRunCtxCancelledCachedDetaches: with the run cache, a cancelled
// waiter detaches while the detached build completes and serves the
// next identical request from cache.
func TestRunCtxCancelledCachedDetaches(t *testing.T) {
	m := noisyMachine(13)
	m.EnableRunCache()
	c := bell(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := m.RunCtx(ctx, c, 1<<19, rng.New(6))
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if err == nil {
		// The machine beat the deadline; nothing to detach from.
		t.Skip("run finished before the deadline fired")
	}
	// The orphaned simulation finishes and lands in the cache; an
	// identical request must be served from it, identical to a fresh run.
	counts, err := m.RunCtx(context.Background(), c, 1<<19, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	fresh := noisyMachine(13)
	want, err := fresh.Run(c, 1<<19, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !counts.Dist().Equal(want.Dist(), 0) {
		t.Fatal("cached post-detach result differs from a fresh run")
	}
}
