package backend

import (
	"context"
	"fmt"
	"sync/atomic"

	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/rng"
)

// RunCtx is Run with request cancellation, the serving-path entry point.
// The result is bit-identical to Run whenever ctx does not expire — the
// cancel flag only ever truncates work whose partial histogram is then
// discarded — so the per-(circuit, seed) determinism contract survives
// the HTTP layer unchanged.
//
// Cancellation semantics depend on the run cache:
//
//   - Without the cache, the trial loops poll a flag armed by ctx and
//     the call returns ctx.Err() promptly, having wasted only the
//     trials already simulated.
//   - With the cache (the serving configuration), the simulation runs
//     detached through the cache's singleflight — identical jobs from
//     other clients are waiting on the same entry, and the finished
//     histogram stays warm for the next request — while this caller
//     detaches with ctx.Err() as soon as its context expires.
//
// A nil or never-cancellable ctx makes RunCtx exactly Run.
func (m *Machine) RunCtx(ctx context.Context, exe *circuit.Circuit, trials int, r *rng.RNG) (*dist.Counts, error) {
	if ctx == nil || ctx.Done() == nil {
		return m.Run(exe, trials, r)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if trials < 0 {
		return nil, fmt.Errorf("backend: negative trial count")
	}
	if m.runs != nil {
		e, err := m.runs.GetCtx(ctx, runKey(exe, trials, r), func() *runEntry {
			counts, err := m.runFresh(exe, trials, r)
			return &runEntry{counts: counts, err: err}
		})
		if err != nil {
			return nil, err
		}
		return e.counts, e.err
	}
	return m.runFreshCtx(ctx, exe, trials, r)
}

// runFreshCtx is runFresh with a cancellation flag threaded into the
// trial stripes. The flag is armed by ctx and polled per trial, so a
// cancelled run abandons its remaining trials within one trial's
// latency per worker.
func (m *Machine) runFreshCtx(ctx context.Context, exe *circuit.Circuit, trials int, r *rng.RNG) (*dist.Counts, error) {
	prog, err := m.getProgram(exe)
	if err != nil {
		return nil, err
	}
	sp, err := m.selectStab(prog)
	if err != nil {
		return nil, err
	}
	var cancel atomic.Bool
	stop := context.AfterFunc(ctx, func() { cancel.Store(true) })
	defer stop()
	counts := m.runProgram(prog, sp, trials, r, &cancel)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return counts, nil
}
