package backend

import (
	"reflect"
	"testing"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/statevec"
	"edm/internal/workloads"
)

// physicalWorkloads compiles every paper workload onto the Melbourne
// device, returning the physical executables the byte-identity tests
// run on both engines.
func physicalWorkloads(t testing.TB) map[string]*mapper.Executable {
	t.Helper()
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	comp := mapper.NewCompiler(cal)
	out := make(map[string]*mapper.Executable)
	for _, w := range workloads.All() {
		exe, err := comp.Compile(w.Circuit)
		if err != nil {
			t.Fatalf("compile %s: %v", w.Name, err)
		}
		out[w.Name] = exe
	}
	return out
}

func countsEqual(a, b *dist.Counts) bool {
	return a.N() == b.N() && a.Total() == b.Total() &&
		reflect.DeepEqual(a.Sorted(), b.Sorted())
}

// TestPrefixEngineByteIdentityWorkloads is the acceptance gate of the
// prefix-sharing engine: for every workload in internal/workloads, the
// Counts it produces must be byte-identical to the legacy trajectory
// loop's, on both the serial path (trials < parallelThreshold) and the
// striped parallel path. ci.sh re-runs it under -race at GOMAXPROCS=1
// and at full width.
func TestPrefixEngineByteIdentityWorkloads(t *testing.T) {
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	for name, exe := range exes {
		for _, trials := range []int{100, 1000} { // serial and parallel
			legacy := New(cal)
			legacy.SetTrajectoryEngine(EngineLegacy)
			prefix := New(cal)
			want, err := legacy.Run(exe.Circuit, trials, rng.New(42))
			if err != nil {
				t.Fatalf("%s legacy run: %v", name, err)
			}
			got, err := prefix.Run(exe.Circuit, trials, rng.New(42))
			if err != nil {
				t.Fatalf("%s prefix run: %v", name, err)
			}
			if !countsEqual(want, got) {
				t.Errorf("%s (%d trials): prefix-sharing Counts differ from legacy", name, trials)
			}
		}
	}
}

// TestPrefixEngineByteIdentityCached pins the interaction with the PR 4
// run cache: the prefix engine sits below it (same key), so a cached
// prefix machine must serve histograms byte-identical to an uncached
// legacy machine.
func TestPrefixEngineByteIdentityCached(t *testing.T) {
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	exe := exes["bv-6"].Circuit
	legacy := New(cal)
	legacy.SetTrajectoryEngine(EngineLegacy)
	cached := New(cal)
	cached.EnableRunCache()
	want, err := legacy.Run(exe, 600, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	first, err := cached.Run(exe, 600, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	again, err := cached.Run(exe, 600, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !countsEqual(want, first) {
		t.Error("cached prefix Counts differ from uncached legacy")
	}
	if first != again {
		t.Error("run cache missed on an identical (circuit, trials, stream) key")
	}
	if s := cached.RunCacheStats(); s.Hits != 1 {
		t.Errorf("run cache hits = %d, want 1", s.Hits)
	}
}

// countingStream is the counting RNG wrapper of the draw-order contract
// test: it exposes how many Uint64 draws a computation consumed from a
// derived trial stream, via state deltas (every draw advances the
// SplitMix64 state by the fixed increment, so the count is exact even
// through Intn's rejection loop).
type countingStream struct {
	r    *rng.RNG
	base uint64
}

func newCountingStream(root *rng.RNG, t int) *countingStream {
	r := root.DeriveN("trial", t)
	return &countingStream{r: r, base: r.State()}
}

func (c *countingStream) draws() uint64 { return rng.DrawCount(c.base, c.r.State()) }

// pathDraws returns the number of stochastic draws a trial consumes
// scanning from the root through node's tape segment: one per tape
// entry on the path, plus one per fork crossed to reach node.
func pathDraws(n *treeNode) uint64 {
	var d uint64
	for node := n; node != nil; node = node.parent {
		d += uint64(len(node.tape))
		if node.parent != nil {
			d++ // the fork draw that selected this node
		}
	}
	return d
}

// TestPrefixDrawOrderContract proves the new engine consumes each
// trial's stream in exactly the same order and count as runTrajectory:
// for every trial of every workload, the legacy loop and the prefix
// engine must land the trial stream on the same final state (equal
// total draw counts from the same derivation base) and produce the same
// outcome bits. It also checks the engine's internal accounting — a
// trial that diverged at path draw index i consumed exactly i+1 scan
// draws — and that the suite exercises fully dominant trials on the
// root leaf, dominant trials on forked leaves, and divergent trials.
func TestPrefixDrawOrderContract(t *testing.T) {
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	m := New(cal)

	sawDominant, sawForkedDominant, sawDivergent := false, false, false
	var hookNode, hookDiv int
	var hookFinal *rng.RNG
	testHookPrefix = func(_, node, div int, final *rng.RNG) {
		hookNode = node
		hookDiv = div
		hookFinal = final
	}
	defer func() { testHookPrefix = nil }()

	// The paper workloads plus a GHZ chain, whose first measurement is an
	// exact 50/50 branch point — the canonical fork.
	circuits := map[string]*circuit.Circuit{"ghz-chain": benchCircuit(6)}
	for name, exe := range exes {
		circuits[name] = exe.Circuit
	}

	const trials = 300
	for name, exe := range circuits {
		prog, err := m.getProgram(exe)
		if err != nil {
			t.Fatal(err)
		}
		plan := m.planFor(prog)
		if plan == nil {
			t.Fatalf("%s: no prefix plan", name)
		}
		sLegacy := statevec.NewState(prog.nLocal)
		sPrefix := statevec.NewState(prog.nLocal)
		bitsLegacy := make([]int, prog.numClbits)
		bitsPrefix := make([]int, prog.numClbits)
		root := rng.New(99)
		var tally engineTally
		for trial := 0; trial < trials; trial++ {
			legacyStream := newCountingStream(root, trial)
			want := m.runTrajectory(prog, sLegacy, bitsLegacy, legacyStream.r)

			hookFinal = nil
			got := m.runTrialShared(prog, plan, sPrefix, bitsPrefix, root, trial, &tally)
			if hookFinal == nil {
				t.Fatalf("%s trial %d: hook not invoked", name, trial)
			}
			prefixStream := &countingStream{r: hookFinal, base: root.DeriveN("trial", trial).State()}

			if want != got {
				t.Fatalf("%s trial %d: outcome differs (legacy %v, prefix %v)", name, trial, want, got)
			}
			if legacyStream.draws() != prefixStream.draws() {
				t.Fatalf("%s trial %d: draw count differs (legacy %d, prefix %d)",
					name, trial, legacyStream.draws(), prefixStream.draws())
			}
			if legacyStream.r.State() != prefixStream.r.State() {
				t.Fatalf("%s trial %d: final stream state differs", name, trial)
			}
			if hookNode < 0 || hookNode >= len(plan.nodes) {
				t.Fatalf("%s trial %d: hook node id %d out of range", name, trial, hookNode)
			}
			node := plan.nodes[hookNode]
			if hookDiv < 0 {
				if !node.isLeaf() {
					t.Fatalf("%s trial %d: dominant trial ended on internal node %d", name, trial, hookNode)
				}
				sawDominant = true
				if node.depth > 0 {
					sawForkedDominant = true
				}
				// A fully dominant trial consumes one draw per tape entry on
				// its path, one per fork crossed, plus one readout draw per
				// measured bit — nothing else.
				wantDraws := pathDraws(node)
				for _, q := range prog.measPhys {
					if q >= 0 {
						wantDraws++
					}
				}
				if prefixStream.draws() != wantDraws {
					t.Fatalf("%s trial %d: dominant trial drew %d, want %d",
						name, trial, prefixStream.draws(), wantDraws)
				}
			} else {
				sawDivergent = true
				if uint64(hookDiv) >= pathDraws(node) {
					t.Fatalf("%s trial %d: divergence index %d past node %d's path draws",
						name, trial, hookDiv, hookNode)
				}
			}
		}
	}
	if !sawDominant || !sawForkedDominant || !sawDivergent {
		t.Fatalf("contract test lacks coverage: dominant=%v forked=%v divergent=%v",
			sawDominant, sawForkedDominant, sawDivergent)
	}
}

// pathNodes returns the root-to-leaf node sequence of a leaf.
func pathNodes(leaf *treeNode) []*treeNode {
	var rev []*treeNode
	for n := leaf; n != nil; n = n.parent {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TestPrefixPlanShape sanity-checks the built tape tree: node ids index
// plan.nodes, internal nodes fork into two children while leaves carry
// path bits, per-path checkpoints are strictly ordered with draw
// indices that count exactly the path draws of earlier steps, tapes are
// ordered by schedule step, and checkpointBefore returns the tightest
// on-path checkpoint. The GHZ bench circuit measures an equal
// superposition, so the plan must actually fork.
func TestPrefixPlanShape(t *testing.T) {
	m := noisyMachine(7)
	prog, err := m.getProgram(benchCircuit(14))
	if err != nil {
		t.Fatal(err)
	}
	plan := m.planFor(prog)
	if plan == nil {
		t.Fatal("no plan")
	}
	if got := m.planFor(prog); got != plan {
		t.Fatal("planFor rebuilt the plan")
	}
	if len(plan.leaves) < 2 || plan.maxDepth < 1 {
		t.Fatalf("GHZ plan did not fork: %d leaves, depth %d", len(plan.leaves), plan.maxDepth)
	}
	if len(plan.leaves) > maxTreeLeaves {
		t.Fatalf("%d leaves exceed the budget %d", len(plan.leaves), maxTreeLeaves)
	}
	if plan.root != plan.nodes[0] {
		t.Fatal("nodes[0] is not the root")
	}
	if ck0 := &plan.root.ckpts[0]; len(plan.root.ckpts) == 0 ||
		ck0.stepIdx != 0 || ck0.tapeIdx != 0 || ck0.state != nil {
		t.Fatal("root lacks the initial zero checkpoint")
	}

	// Global structure: ids index plan.nodes, internal nodes have both
	// children with eligible fork ops, leaves have domBits.
	leaves := 0
	var stateCkpts int64
	for i, n := range plan.nodes {
		if n.id != i {
			t.Fatalf("node %d has id %d", i, n.id)
		}
		if n.isLeaf() {
			leaves++
			if len(n.domBits) != prog.numClbits {
				t.Fatalf("leaf %d: domBits length %d, want %d", n.id, len(n.domBits), prog.numClbits)
			}
			if n.children[1] != nil {
				t.Fatalf("leaf %d has a lone child", n.id)
			}
		} else {
			if n.children[1] == nil || n.domBits != nil {
				t.Fatalf("internal node %d malformed", n.id)
			}
			if op := n.fork.op; op == tapeBern {
				t.Fatalf("node %d forks on a Bernoulli entry", n.id)
			}
			if n.children[0].parent != n || n.children[1].parent != n {
				t.Fatalf("node %d children have wrong parent", n.id)
			}
			if n.children[0].depth != n.depth+1 {
				t.Fatalf("node %d child depth %d, want %d", n.id, n.children[0].depth, n.depth+1)
			}
		}
		for j := range n.ckpts {
			if n.ckpts[j].state != nil {
				stateCkpts++
			}
		}
	}
	if leaves != len(plan.leaves) {
		t.Fatalf("plan.leaves has %d entries, tree has %d leaves", len(plan.leaves), leaves)
	}
	if plan.stateBytes != stateCkpts*(16<<uint(prog.nLocal)) {
		t.Fatalf("stateBytes = %d, inconsistent with %d state checkpoints", plan.stateBytes, stateCkpts)
	}

	// Per-path structure. A path's draw sequence is each node's tape
	// followed by its fork draw; checkpoints must be step-ascending along
	// the path with tapeIdx equal to the path draws of earlier steps.
	for _, leaf := range plan.leaves {
		path := pathNodes(leaf)
		type draw struct{ step int }
		var draws []draw
		var ckpts []checkpoint
		for _, n := range path {
			for _, e := range n.tape {
				draws = append(draws, draw{int(e.step)})
			}
			ckpts = append(ckpts, n.ckpts...)
			if !n.isLeaf() {
				draws = append(draws, draw{int(n.fork.step)})
			}
		}
		for i := 1; i < len(draws); i++ {
			if draws[i].step < draws[i-1].step {
				t.Fatalf("leaf %d: path draws not ordered by schedule step", leaf.id)
			}
		}
		for i := 1; i < len(ckpts); i++ {
			prev, cur := &ckpts[i-1], &ckpts[i]
			if cur.stepIdx <= prev.stepIdx || cur.tapeIdx < prev.tapeIdx {
				t.Fatalf("leaf %d: checkpoints out of order: %d -> %d", leaf.id, prev.stepIdx, cur.stepIdx)
			}
			if cur.state == nil || cur.state.N() != prog.nLocal || len(cur.bits) != prog.numClbits {
				t.Fatalf("leaf %d: checkpoint at step %d malformed", leaf.id, cur.stepIdx)
			}
			n := 0
			for _, d := range draws {
				if d.step < cur.stepIdx {
					n++
				}
			}
			if n != cur.tapeIdx {
				t.Fatalf("leaf %d checkpoint at step %d: tapeIdx %d, want %d",
					leaf.id, cur.stepIdx, cur.tapeIdx, n)
			}
		}
		// checkpointBefore from any node on the path returns the tightest
		// on-path checkpoint for every draw step of that node's segment.
		for _, n := range path {
			for _, e := range n.tape {
				ck := n.checkpointBefore(int(e.step))
				if ck.stepIdx > int(e.step) {
					t.Fatalf("checkpointBefore(%d) returned later step %d", e.step, ck.stepIdx)
				}
				for i := range ckpts {
					c := &ckpts[i]
					if c.stepIdx > ck.stepIdx && c.stepIdx <= int(e.step) {
						// Only on-path checkpoints up to n count.
						onPath := false
						for _, pn := range path {
							if pn == n {
								break
							}
							for j := range pn.ckpts {
								if &pn.ckpts[j] == c {
									onPath = true
								}
							}
						}
						for j := range n.ckpts {
							if &n.ckpts[j] == c {
								onPath = true
							}
						}
						if onPath {
							t.Fatalf("checkpointBefore(%d) not tightest (%d vs %d)", e.step, ck.stepIdx, c.stepIdx)
						}
					}
				}
			}
		}
	}
}

// TestTrialAllocsSteadyState pins the backend's steady-state allocation
// contract from PR 1: about one allocation per trial (the derived trial
// stream) on the legacy path, and at most two on the prefix-sharing
// path (divergent trials derive a second stream to skip to their
// checkpoint). Regressions here mean a scratch buffer leaked back into
// the hot loop.
func TestTrialAllocsSteadyState(t *testing.T) {
	m := noisyMachine(7)
	prog, err := m.getProgram(benchCircuit(10))
	if err != nil {
		t.Fatal(err)
	}
	plan := m.planFor(prog)
	scratch := statevec.NewState(prog.nLocal)
	trueBits := make([]int, prog.numClbits)
	root := rng.New(11)
	const trials = 200

	legacyBody := func() {
		for trial := 0; trial < trials; trial++ {
			m.runTrajectory(prog, scratch, trueBits, root.DeriveN("trial", trial))
		}
	}
	var tally engineTally
	prefixBody := func() {
		for trial := 0; trial < trials; trial++ {
			m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
		}
	}
	legacyBody() // warm up scratch pools and lazily built state
	prefixBody()

	if per := testing.AllocsPerRun(10, legacyBody) / trials; per > 1.1 {
		t.Errorf("legacy path: %.2f allocs/trial, want ~1", per)
	}
	if per := testing.AllocsPerRun(10, prefixBody) / trials; per > 2.1 {
		t.Errorf("prefix path: %.2f allocs/trial, want <= 2", per)
	}
}
