package backend

import (
	"reflect"
	"testing"

	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/statevec"
	"edm/internal/workloads"
)

// physicalWorkloads compiles every paper workload onto the Melbourne
// device, returning the physical executables the byte-identity tests
// run on both engines.
func physicalWorkloads(t testing.TB) map[string]*mapper.Executable {
	t.Helper()
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	comp := mapper.NewCompiler(cal)
	out := make(map[string]*mapper.Executable)
	for _, w := range workloads.All() {
		exe, err := comp.Compile(w.Circuit)
		if err != nil {
			t.Fatalf("compile %s: %v", w.Name, err)
		}
		out[w.Name] = exe
	}
	return out
}

func countsEqual(a, b *dist.Counts) bool {
	return a.N() == b.N() && a.Total() == b.Total() &&
		reflect.DeepEqual(a.Sorted(), b.Sorted())
}

// TestPrefixEngineByteIdentityWorkloads is the acceptance gate of the
// prefix-sharing engine: for every workload in internal/workloads, the
// Counts it produces must be byte-identical to the legacy trajectory
// loop's, on both the serial path (trials < parallelThreshold) and the
// striped parallel path. ci.sh re-runs it under -race at GOMAXPROCS=1
// and at full width.
func TestPrefixEngineByteIdentityWorkloads(t *testing.T) {
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	for name, exe := range exes {
		for _, trials := range []int{100, 1000} { // serial and parallel
			legacy := New(cal)
			legacy.SetTrajectoryEngine(EngineLegacy)
			prefix := New(cal)
			want, err := legacy.Run(exe.Circuit, trials, rng.New(42))
			if err != nil {
				t.Fatalf("%s legacy run: %v", name, err)
			}
			got, err := prefix.Run(exe.Circuit, trials, rng.New(42))
			if err != nil {
				t.Fatalf("%s prefix run: %v", name, err)
			}
			if !countsEqual(want, got) {
				t.Errorf("%s (%d trials): prefix-sharing Counts differ from legacy", name, trials)
			}
		}
	}
}

// TestPrefixEngineByteIdentityCached pins the interaction with the PR 4
// run cache: the prefix engine sits below it (same key), so a cached
// prefix machine must serve histograms byte-identical to an uncached
// legacy machine.
func TestPrefixEngineByteIdentityCached(t *testing.T) {
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	exe := exes["bv-6"].Circuit
	legacy := New(cal)
	legacy.SetTrajectoryEngine(EngineLegacy)
	cached := New(cal)
	cached.EnableRunCache()
	want, err := legacy.Run(exe, 600, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	first, err := cached.Run(exe, 600, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	again, err := cached.Run(exe, 600, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !countsEqual(want, first) {
		t.Error("cached prefix Counts differ from uncached legacy")
	}
	if first != again {
		t.Error("run cache missed on an identical (circuit, trials, stream) key")
	}
	if s := cached.RunCacheStats(); s.Hits != 1 {
		t.Errorf("run cache hits = %d, want 1", s.Hits)
	}
}

// countingStream is the counting RNG wrapper of the draw-order contract
// test: it exposes how many Uint64 draws a computation consumed from a
// derived trial stream, via state deltas (every draw advances the
// SplitMix64 state by the fixed increment, so the count is exact even
// through Intn's rejection loop).
type countingStream struct {
	r    *rng.RNG
	base uint64
}

func newCountingStream(root *rng.RNG, t int) *countingStream {
	r := root.DeriveN("trial", t)
	return &countingStream{r: r, base: r.State()}
}

func (c *countingStream) draws() uint64 { return rng.DrawCount(c.base, c.r.State()) }

// TestPrefixDrawOrderContract proves the new engine consumes each
// trial's stream in exactly the same order and count as runTrajectory:
// for every trial of every workload, the legacy loop and the prefix
// engine must land the trial stream on the same final state (equal
// total draw counts from the same derivation base) and produce the same
// outcome bits. It also checks the engine's internal accounting — a
// trial that diverged at tape index i consumed exactly i+1 scan draws —
// and that the suite exercises fully dominant trials, divergent trials,
// and checkpoint restores.
func TestPrefixDrawOrderContract(t *testing.T) {
	exes := physicalWorkloads(t)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	m := New(cal)

	sawDominant, sawDivergent := false, false
	var hookDiv int
	var hookFinal *rng.RNG
	testHookPrefix = func(_, div int, final *rng.RNG) {
		hookDiv = div
		hookFinal = final
	}
	defer func() { testHookPrefix = nil }()

	const trials = 300
	for name, exe := range exes {
		prog, err := m.getProgram(exe.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		plan := m.planFor(prog)
		if plan == nil {
			t.Fatalf("%s: no prefix plan", name)
		}
		sLegacy := statevec.NewState(prog.nLocal)
		sPrefix := statevec.NewState(prog.nLocal)
		bitsLegacy := make([]int, prog.numClbits)
		bitsPrefix := make([]int, prog.numClbits)
		root := rng.New(99)
		for trial := 0; trial < trials; trial++ {
			legacyStream := newCountingStream(root, trial)
			want := m.runTrajectory(prog, sLegacy, bitsLegacy, legacyStream.r)

			hookFinal = nil
			got := m.runTrialShared(prog, plan, sPrefix, bitsPrefix, root, trial)
			if hookFinal == nil {
				t.Fatalf("%s trial %d: hook not invoked", name, trial)
			}
			prefixStream := &countingStream{r: hookFinal, base: root.DeriveN("trial", trial).State()}

			if want != got {
				t.Fatalf("%s trial %d: outcome differs (legacy %v, prefix %v)", name, trial, want, got)
			}
			if legacyStream.draws() != prefixStream.draws() {
				t.Fatalf("%s trial %d: draw count differs (legacy %d, prefix %d)",
					name, trial, legacyStream.draws(), prefixStream.draws())
			}
			if legacyStream.r.State() != prefixStream.r.State() {
				t.Fatalf("%s trial %d: final stream state differs", name, trial)
			}
			if hookDiv < 0 {
				sawDominant = true
				// A fully dominant trial consumes one draw per tape entry
				// plus one readout draw per measured bit — nothing else.
				wantDraws := uint64(len(plan.tape))
				for _, q := range prog.measPhys {
					if q >= 0 {
						wantDraws++
					}
				}
				if prefixStream.draws() != wantDraws {
					t.Fatalf("%s trial %d: dominant trial drew %d, want %d",
						name, trial, prefixStream.draws(), wantDraws)
				}
			} else {
				sawDivergent = true
				if hookDiv >= len(plan.tape) {
					t.Fatalf("%s trial %d: divergence index %d out of tape", name, trial, hookDiv)
				}
			}
		}
	}
	if !sawDominant || !sawDivergent {
		t.Fatalf("contract test lacks coverage: dominant=%v divergent=%v", sawDominant, sawDivergent)
	}
}

// TestPrefixPlanShape sanity-checks the built plan: checkpoints are
// strictly ordered with consistent tape indices, the tape is ordered by
// schedule step with one entry per stochastic draw, and checkpointBefore
// returns the tightest checkpoint.
func TestPrefixPlanShape(t *testing.T) {
	m := noisyMachine(7)
	prog, err := m.getProgram(benchCircuit(14))
	if err != nil {
		t.Fatal(err)
	}
	plan := m.planFor(prog)
	if plan == nil {
		t.Fatal("no plan")
	}
	if len(plan.tape) == 0 {
		t.Fatal("empty threshold tape for a noisy program")
	}
	if got := m.planFor(prog); got != plan {
		t.Fatal("planFor rebuilt the plan")
	}
	if plan.ckpts[0].stepIdx != 0 || plan.ckpts[0].tapeIdx != 0 || plan.ckpts[0].state != nil {
		t.Fatalf("initial checkpoint malformed: %+v", plan.ckpts[0])
	}
	for i := 1; i < len(plan.ckpts); i++ {
		prev, cur := &plan.ckpts[i-1], &plan.ckpts[i]
		if cur.stepIdx <= prev.stepIdx || cur.tapeIdx < prev.tapeIdx {
			t.Fatalf("checkpoints out of order at %d: %+v -> %+v", i, prev, cur)
		}
		if cur.state == nil || cur.state.N() != prog.nLocal || len(cur.bits) != prog.numClbits {
			t.Fatalf("checkpoint %d snapshot malformed", i)
		}
		// tapeIdx must count exactly the entries belonging to earlier steps.
		n := 0
		for _, e := range plan.tape {
			if int(e.step) < cur.stepIdx {
				n++
			}
		}
		if n != cur.tapeIdx {
			t.Fatalf("checkpoint %d: tapeIdx %d, want %d", i, cur.tapeIdx, n)
		}
	}
	for i := 1; i < len(plan.tape); i++ {
		if plan.tape[i].step < plan.tape[i-1].step {
			t.Fatal("tape not ordered by schedule step")
		}
	}
	if plan.stateBytes != int64(len(plan.ckpts)-1)*(16<<uint(prog.nLocal)) {
		t.Fatalf("stateBytes = %d, inconsistent with %d checkpoints", plan.stateBytes, len(plan.ckpts))
	}
	for _, e := range plan.tape {
		ck := plan.checkpointBefore(int(e.step))
		if ck.stepIdx > int(e.step) {
			t.Fatalf("checkpointBefore(%d) returned later step %d", e.step, ck.stepIdx)
		}
		// No other checkpoint sits strictly between ck and the step.
		for i := range plan.ckpts {
			c := &plan.ckpts[i]
			if c.stepIdx > ck.stepIdx && c.stepIdx <= int(e.step) {
				t.Fatalf("checkpointBefore(%d) not tightest (%d vs %d)", e.step, ck.stepIdx, c.stepIdx)
			}
		}
	}
	if len(plan.domBits) != prog.numClbits {
		t.Fatalf("domBits length %d, want %d", len(plan.domBits), prog.numClbits)
	}
}

// TestTrialAllocsSteadyState pins the backend's steady-state allocation
// contract from PR 1: about one allocation per trial (the derived trial
// stream) on the legacy path, and at most two on the prefix-sharing
// path (divergent trials derive a second stream to skip to their
// checkpoint). Regressions here mean a scratch buffer leaked back into
// the hot loop.
func TestTrialAllocsSteadyState(t *testing.T) {
	m := noisyMachine(7)
	prog, err := m.getProgram(benchCircuit(10))
	if err != nil {
		t.Fatal(err)
	}
	plan := m.planFor(prog)
	scratch := statevec.NewState(prog.nLocal)
	trueBits := make([]int, prog.numClbits)
	root := rng.New(11)
	const trials = 200

	legacyBody := func() {
		for trial := 0; trial < trials; trial++ {
			m.runTrajectory(prog, scratch, trueBits, root.DeriveN("trial", trial))
		}
	}
	prefixBody := func() {
		for trial := 0; trial < trials; trial++ {
			m.runTrialShared(prog, plan, scratch, trueBits, root, trial)
		}
	}
	legacyBody() // warm up scratch pools and lazily built state
	prefixBody()

	if per := testing.AllocsPerRun(10, legacyBody) / trials; per > 1.1 {
		t.Errorf("legacy path: %.2f allocs/trial, want ~1", per)
	}
	if per := testing.AllocsPerRun(10, prefixBody) / trials; per > 2.1 {
		t.Errorf("prefix path: %.2f allocs/trial, want <= 2", per)
	}
}
