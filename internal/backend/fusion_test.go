package backend

import (
	"math"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/rng"
)

// randomPathCircuit builds a random physical circuit on the melbourne path
// 0-1-2-3: a mix of one-qubit gates (diagonal, anti-diagonal, and dense)
// and two-qubit gates on coupled pairs, measured in full. It exercises
// every fusion rule: runs of 1Q gates, 1Q folds into adjacent 2Q, and
// near-identity cancellations (e.g. adjacent H H pairs).
func randomPathCircuit(r *rng.RNG) *circuit.Circuit {
	const active = 4
	c := circuit.New(14, active)
	oneQ := []func(q int){
		func(q int) { c.H(q) },
		func(q int) { c.T(q) },
		func(q int) { c.S(q) },
		func(q int) { c.X(q) },
		func(q int) { c.Z(q) },
		func(q int) { c.RZ(q, r.Float64()*6) },
		func(q int) { c.U3(q, r.Float64()*3, r.Float64()*6, r.Float64()*6) },
	}
	depth := 8 + r.Intn(16)
	for i := 0; i < depth; i++ {
		switch r.Intn(4) {
		case 0, 1:
			oneQ[r.Intn(len(oneQ))](r.Intn(active))
		case 2:
			q := r.Intn(active - 1)
			c.CX(q, q+1)
		case 3:
			q := r.Intn(active - 1)
			c.CZ(q, q+1)
		}
	}
	for q := 0; q < active; q++ {
		c.Measure(q, q)
	}
	return c
}

// TestFusionEquivalenceExact is the fusion correctness property: for
// random circuits, the exact output distribution of the fused program
// matches the unfused one to within numerical noise (the issue's 1e-9
// total-variation budget; fusion is mathematically exact, so only
// floating-point rounding separates the two).
func TestFusionEquivalenceExact(t *testing.T) {
	m := noisyMachine(23)
	r := rng.New(101)
	for trial := 0; trial < 25; trial++ {
		c := randomPathCircuit(r.DeriveN("circuit", trial))
		raw, err := m.compile(c)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		fused := fuseProgram(raw)
		if len(fused.steps) > len(raw.steps) {
			t.Fatalf("trial %d: fusion grew the program: %d -> %d steps",
				trial, len(raw.steps), len(fused.steps))
		}
		want, err := m.exactFromProgram(raw)
		if err != nil {
			t.Fatalf("trial %d: exact raw: %v", trial, err)
		}
		got, err := m.exactFromProgram(fused)
		if err != nil {
			t.Fatalf("trial %d: exact fused: %v", trial, err)
		}
		if tv := want.TV(got); tv > 1e-9 {
			t.Fatalf("trial %d: fused distribution diverged: TV=%g", trial, tv)
		}
	}
}

// TestFusionEquivalenceRun checks the determinism contract end to end:
// trajectory sampling over the raw and the fused program with the same
// seed yields the same histogram. Fusion only moves deterministic
// unitaries across steps acting on disjoint qubits, which cannot change
// any branch probability, so the RNG draw sequence — and hence every
// sampled outcome — is preserved (up to ~1e-16 threshold perturbations
// that no finite trial count observes).
func TestFusionEquivalenceRun(t *testing.T) {
	m := noisyMachine(29)
	r := rng.New(131)
	for trial := 0; trial < 5; trial++ {
		c := randomPathCircuit(r.DeriveN("circuit", trial))
		raw, err := m.compile(c)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		fused := fuseProgram(raw)
		const trials = 2000
		want := m.runProgram(raw, nil, trials, rng.New(uint64(500+trial)), nil)
		got := m.runProgram(fused, nil, trials, rng.New(uint64(500+trial)), nil)
		if want.Total() != got.Total() {
			t.Fatalf("trial %d: totals differ: %d vs %d", trial, want.Total(), got.Total())
		}
		for v := uint64(0); v < uint64(1)<<uint(raw.numClbits); v++ {
			b := bitstr.New(v, raw.numClbits)
			if want.Count(b) != got.Count(b) {
				t.Fatalf("trial %d: histogram differs at %v: raw=%d fused=%d",
					trial, b, want.Count(b), got.Count(b))
			}
		}
	}
}

// TestFusionDropsIdentity checks that gate sequences multiplying to the
// identity (up to global phase) vanish from the fused program. The ideal
// profile still carries a vanishing-but-nonzero damping rate (T1 = 1e9 us)
// whose steps consume randomness and clobber fusion windows, so the test
// pushes T1/T2 to infinity for a genuinely noiseless machine.
func TestFusionDropsIdentity(t *testing.T) {
	cal := device.Generate(device.Linear(2), device.IdealProfile(), rng.New(1))
	for i := range cal.T1us {
		cal.T1us[i] = math.Inf(1)
		cal.T2us[i] = math.Inf(1)
	}
	m := New(cal)
	c := circuit.New(2, 1)
	c.H(0).H(0).T(0).Tdg(0).Measure(0, 0)
	raw, err := m.compile(c)
	if err != nil {
		t.Fatal(err)
	}
	fused := fuseProgram(raw)
	for _, st := range fused.steps {
		if st.kind == stepU1 || st.kind == stepU2 {
			t.Fatalf("identity sequence survived fusion: %d unitary steps remain", len(fused.steps))
		}
	}
}
