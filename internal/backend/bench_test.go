package backend

import (
	"fmt"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
	"edm/internal/statevec"
)

// benchPath is a long simple path through the melbourne coupling graph.
// Qubits 0 and 7 are the only degree-1 vertices and 9 hangs off 5, so the
// path below plus the final (5,9) link activates all 14 device qubits.
var benchPath = []int{0, 1, 13, 12, 2, 3, 11, 10, 4, 5, 6, 8, 7}

// benchCircuit returns a GHZ-style chain entangling the first `active`
// qubits of benchPath (plus qubit 9 when active >= 14), measured in full.
// It is the representative executable of BENCH_kernels.json: every CX
// drags in depolarizing, damping, and crosstalk steps, so the compiled
// schedule exercises all kernel classes.
func benchCircuit(active int) *circuit.Circuit {
	if active < 2 || active > 14 {
		panic("benchCircuit: active out of range")
	}
	chain := active
	if chain > len(benchPath) {
		chain = len(benchPath)
	}
	c := circuit.New(14, active)
	c.H(benchPath[0])
	for i := 0; i+1 < chain; i++ {
		c.CX(benchPath[i], benchPath[i+1])
	}
	if active >= 14 {
		c.CX(5, 9)
	}
	cb := 0
	for i := 0; i < chain; i++ {
		c.Measure(benchPath[i], cb)
		cb++
	}
	if active >= 14 {
		c.Measure(9, cb)
	}
	return c
}

// BenchmarkRunTrajectory measures single-trial trajectory execution for
// representative executables of increasing width. The 14-qubit case is
// the BENCH_kernels.json headline number.
func BenchmarkRunTrajectory(b *testing.B) {
	for _, nq := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("q%d", nq), func(b *testing.B) {
			m := noisyMachine(7)
			prog, err := m.getProgram(benchCircuit(nq))
			if err != nil {
				b.Fatal(err)
			}
			scratch := statevec.NewState(prog.nLocal)
			trueBits := make([]int, prog.numClbits)
			r := rng.New(11)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.runTrajectory(prog, scratch, trueBits, r.DeriveN("trial", i))
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkTrajectoryEngine measures per-trial execution of the legacy
// full-replay loop against the prefix-sharing engine on the same
// compiled programs. legacy/q14 vs prefix/q14 is the BENCH_trajectory.json
// headline pair; the prefix sub-benchmarks also report the threshold-tape
// length and checkpoint memory overhead.
func BenchmarkTrajectoryEngine(b *testing.B) {
	for _, nq := range []int{6, 10, 14} {
		m := noisyMachine(7)
		prog, err := m.getProgram(benchCircuit(nq))
		if err != nil {
			b.Fatal(err)
		}
		scratch := statevec.NewState(prog.nLocal)
		trueBits := make([]int, prog.numClbits)
		b.Run(fmt.Sprintf("legacy/q%d", nq), func(b *testing.B) {
			r := rng.New(11)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.runTrajectory(prog, scratch, trueBits, r.DeriveN("trial", i))
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
		b.Run(fmt.Sprintf("prefix/q%d", nq), func(b *testing.B) {
			plan := m.planFor(prog)
			if plan == nil {
				b.Fatal("no prefix plan")
			}
			r := rng.New(11)
			var tally engineTally
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.runTrialShared(prog, plan, scratch, trueBits, r, i, &tally)
			}
			b.StopTimer()
			entries := 0
			for _, n := range plan.nodes {
				entries += len(n.tape)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
			b.ReportMetric(float64(entries), "tape-entries")
			b.ReportMetric(float64(len(plan.leaves)), "leaves")
			b.ReportMetric(float64(plan.stateBytes)/1024, "ckpt-KiB")
		})
	}
}

// BenchmarkRunParallel measures the striped multi-worker Run path
// (trial count above parallelThreshold) end to end, including compile.
// The engine is pinned so the frozen baseline keeps measuring
// statevector work regardless of how the auto engine routes Clifford
// schedules.
func BenchmarkRunParallel(b *testing.B) {
	m := noisyMachine(7)
	m.SetTrajectoryEngine(EngineStatevector)
	exe := benchCircuit(10)
	const trials = 2048
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(exe, trials, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*trials/b.Elapsed().Seconds(), "trials/s")
}
