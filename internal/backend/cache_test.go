package backend

import (
	"fmt"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
)

func TestProgramCacheReuse(t *testing.T) {
	m := noisyMachine(7)
	c := bell(t)
	if _, err := m.Run(c, 50, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	st := m.CacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first run: %+v, want 1 miss, 0 hits, 1 entry", st)
	}
	// A semantically identical circuit built separately hits the cache...
	c2 := bell(t)
	c2.Name = "same circuit, different name"
	if _, err := m.Run(c2, 50, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	st = m.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after identical rerun: %+v, want 1 hit, 1 miss", st)
	}
	// ...and a different circuit does not.
	c3 := circuit.New(2, 2)
	c3.H(0).CX(0, 1).X(0).MeasureAll()
	if _, err := m.Run(c3, 50, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	st = m.CacheStats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after distinct circuit: %+v, want 1 hit, 2 misses, 2 entries", st)
	}
}

func TestProgramCacheDeterminism(t *testing.T) {
	// Cached-program runs must be bit-identical to fresh-compile runs.
	c := bell(t)
	fresh := noisyMachine(7)
	want, err := fresh.Run(c, 500, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cached := noisyMachine(7)
	if _, err := cached.Run(c, 500, rng.New(1)); err != nil { // warm the cache
		t.Fatal(err)
	}
	got, err := cached.Run(c, 500, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if cached.CacheStats().Hits == 0 {
		t.Fatal("second run did not hit the cache")
	}
	for _, e := range want.Sorted() {
		if got.Count(e.Value) != e.Count {
			t.Fatalf("cached run diverged at %v: %d vs %d", e.Value, got.Count(e.Value), e.Count)
		}
	}
}

func TestProgramCacheEviction(t *testing.T) {
	m := noisyMachine(7)
	const extra = 5
	for i := 0; i < progCacheLimit+extra; i++ {
		c := circuit.New(2, 2)
		c.H(0).RZ(0, float64(i)*0.01).CX(0, 1).MeasureAll()
		if _, err := m.Run(c, 10, rng.New(uint64(i))); err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
	}
	st := m.CacheStats()
	if st.Entries > progCacheLimit {
		t.Fatalf("cache grew past its bound: %+v", st)
	}
	if st.Evictions != extra {
		t.Fatalf("evictions = %d, want %d (%+v)", st.Evictions, extra, st)
	}
	if st.Misses != progCacheLimit+extra {
		t.Fatalf("misses = %d, want %d", st.Misses, progCacheLimit+extra)
	}
}

func TestProgramCacheConcurrent(t *testing.T) {
	// Hammer the cache from many goroutines across a small circuit set;
	// run with -race to check the locking discipline.
	m := noisyMachine(7)
	circuits := make([]*circuit.Circuit, 4)
	for i := range circuits {
		c := circuit.New(2, 2)
		c.H(0).RZ(0, float64(i)*0.1).CX(0, 1).MeasureAll()
		circuits[i] = c
	}
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 8; i++ {
				if _, err := m.Run(circuits[(g+i)%len(circuits)], 20, rng.New(uint64(g*100+i))); err != nil {
					errs <- fmt.Errorf("goroutine %d run %d: %w", g, i, err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := m.CacheStats()
	if st.Entries != len(circuits) {
		t.Fatalf("entries = %d, want %d (%+v)", st.Entries, len(circuits), st)
	}
	if st.Hits == 0 {
		t.Fatalf("no cache hits across 128 runs: %+v", st)
	}
}
