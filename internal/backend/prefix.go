package backend

// Prefix-sharing trajectory engine with a tape tree.
//
// At the device's error rates most Monte-Carlo trials follow the same
// branch at every stochastic step for a long prefix of the schedule —
// the depolarizing events overwhelmingly sample "no error", the damping
// channels overwhelmingly sample their no-jump operator. Along such a
// shared prefix the statevector is bit-identical across trials, which
// means every state-dependent branch probability (Kraus weights,
// measurement probabilities) is bit-identical too. So the schedule is
// executed once along its *dominant path* — every stochastic step takes
// a fixed preferred branch — recording, per stochastic draw, the exact
// floating-point comparison the live code would perform (the threshold
// tape) plus copy-on-write statevector checkpoints every few steps.
//
// One dominant path is not enough when the schedule contains genuinely
// random branch points: a measurement of an equal superposition sends
// half of all trials off the tape, and each of them pays a suffix
// replay. The engine therefore grows a small *tree* of dominant paths:
// when the dominant-path builder meets a stochastic comparison whose
// minority branch still carries probability >= forkMinProb — only
// measurements and two-operator Kraus selections qualify, the two
// branch kinds that consume exactly one uniform either way — it forks
// the tape and continues building both branches, until maxTreeLeaves
// paths exist. Each tree node owns the tape segment between its
// parent's fork and its own (or its leaf end), its own checkpoints, and
// — on leaves — the classical bits of the full path. A trial burns its
// uniforms against the tape, selects a child at each fork with the very
// comparison the live code would perform, and resolves with zero state
// work if it reaches a leaf; only trials diverging from *every* path in
// the tree replay a suffix.
//
// Soundness (byte-identity with runTrajectory, DESIGN.md section 10):
//
//   - Thresholds are recorded as the operands of the live comparison
//     and re-evaluated with the same operations ((u < p) for Bernoulli
//     draws, (u*total - w0 < 0) for two-branch Kraus selection via
//     rng.Choose, (u < p1) for measurements), so a tape scan and a live
//     trial branch identically on every uniform. Fork entries reuse the
//     same comparisons; they merely route to a child instead of ending
//     the scan.
//   - Every stochastic step consumes exactly one uniform when it takes
//     a recorded branch, and a fork consumes exactly one uniform on
//     *either* branch (measurements and two-operator Choose draw one
//     Float64 regardless of outcome), so the draw index along any
//     root-to-leaf path equals the trial stream's draw index; a
//     checkpoint at path draw index k is restored by deriving the trial
//     stream afresh and Skip(k)-ing it. Pauli error branches draw extra
//     uniforms (the error-kind draw), which is why tapeBern entries
//     never fork — their minority branch would break the accounting
//     (and is never near-50/50 at calibrated error rates anyway).
//   - Replay from a checkpoint re-executes the remaining schedule with
//     the live code path: the steps between the checkpoint and the
//     divergent draw re-sample their recorded branches (same state,
//     same uniforms, same comparisons — including any forks the trial
//     followed), and the divergent step itself consumes whatever extra
//     draws its branch needs, exactly as the legacy loop would.
//
// The engine therefore changes only how trials are scheduled, never
// what they compute.

import (
	"sort"
	"sync/atomic"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/rng"
	"edm/internal/statevec"
)

// tapeOp discriminates threshold-tape entries; each entry corresponds
// to exactly one uniform drawn from the trial stream.
type tapeOp uint8

const (
	// tapeBern is a depolarizing-event Bernoulli draw whose recorded
	// branch is "no error": a trial follows iff !(u < a), a = p.
	tapeBern tapeOp = iota
	// tapeChoose0 / tapeChoose1 are a two-operator Kraus selection via
	// rng.Choose with recorded branch 0 / 1: Choose returns 0 iff
	// u*b - a < 0, with a = probs[0] and b = probs[0]+probs[1] summed in
	// Choose's order.
	tapeChoose0
	tapeChoose1
	// tapeMeas0 / tapeMeas1 are a measurement with recorded outcome
	// 0 / 1: MeasureQubit observes 1 iff u < a, a = P(1).
	tapeMeas0
	tapeMeas1
)

// tapeEntry is one recorded stochastic draw of a dominant path.
type tapeEntry struct {
	a, b float64
	step int32 // schedule step this draw belongs to
	op   tapeOp
}

// follows reports whether a trial whose next uniform is u takes this
// entry's recorded branch. The comparisons replicate the live code's
// float operations exactly; see the tapeOp constants.
func (e *tapeEntry) follows(u float64) bool {
	switch e.op {
	case tapeBern:
		return !(u < e.a)
	case tapeChoose0:
		return e.choosesZero(u)
	case tapeChoose1:
		return !e.choosesZero(u)
	case tapeMeas1:
		return u < e.a
	default: // tapeMeas0
		return !(u < e.a)
	}
}

// choosesZero replicates rng.Choose's two-weight branch test, statement
// for statement (so an FMA-fusing compiler treats both identically):
// with x := u*total, Choose returns 0 iff x - w0 < 0.
func (e *tapeEntry) choosesZero(u float64) bool {
	x := u * e.b
	x -= e.a
	return x < 0
}

// branch returns the child index a trial whose fork uniform is u
// follows: the measurement outcome, or the rng.Choose branch. Only
// tapeMeas* and tapeChoose* entries fork.
func (e *tapeEntry) branch(u float64) int {
	switch e.op {
	case tapeChoose0, tapeChoose1:
		if e.choosesZero(u) {
			return 0
		}
		return 1
	default: // tapeMeas0, tapeMeas1
		if u < e.a {
			return 1
		}
		return 0
	}
}

// checkpoint is a copy-on-write snapshot of a dominant path: the
// state and classical bits *before* executing schedule step stepIdx,
// with tapeIdx stochastic draws (tape entries plus fork draws) consumed
// along the path so far. Checkpoints are built once per program and
// only ever read afterwards — trials restore by copying into their
// private scratch.
type checkpoint struct {
	stepIdx int
	tapeIdx int
	state   *statevec.State // nil for the initial |0...0> checkpoint
	bits    []int
}

// treeNode is one dominant-path segment of the tape tree. The root
// segment starts at schedule step 0; every other segment starts right
// after its parent's fork. Internal nodes end in a fork (children set),
// leaves carry the classical bits of their full root-to-leaf path.
type treeNode struct {
	id       int
	depth    int // forks above this segment
	parent   *treeNode
	tape     []tapeEntry
	ckpts    []checkpoint // ascending stepIdx, path-global tapeIdx
	fork     tapeEntry    // valid iff children[0] != nil
	children [2]*treeNode // indexed by tapeEntry.branch outcome
	domBits  []int        // leaf only: bits after the full path
	// prob is the path probability of reaching this node along recorded
	// branches, as estimated by the builder; reporting only.
	prob float64
}

// isLeaf reports whether the node ends a dominant path.
func (n *treeNode) isLeaf() bool { return n.children[0] == nil }

// checkpointBefore returns the latest checkpoint on the root-to-n path
// whose stepIdx is at or before the given schedule step. The root's
// initial checkpoint (stepIdx 0) guarantees a hit.
func (n *treeNode) checkpointBefore(step int) *checkpoint {
	for node := n; node != nil; node = node.parent {
		ck := node.ckpts
		i := sort.Search(len(ck), func(j int) bool { return ck[j].stepIdx > step })
		if i > 0 {
			return &ck[i-1]
		}
	}
	panic("backend: no checkpoint at or before step") // root ckpt 0 prevents this
}

// prefixPlan is the per-program artifact of the dominant-path build: a
// tape tree whose nodes share the threshold-tape and checkpoint
// machinery of the single-path engine.
type prefixPlan struct {
	root     *treeNode
	nodes    []*treeNode // all nodes, depth-first creation order; nodes[0] == root
	leaves   []*treeNode // leaf nodes, depth-first order
	maxDepth int
	// stateBytes is the checkpoint memory footprint (amplitude buffers
	// only), reported by benchmarks as the engine's space overhead.
	stateBytes int64
}

// Tree and checkpoint budgets. A fork adds a dominant path for a
// minority branch: trials whose first divergence lands on a forked site
// keep walking the tape at zero state cost, and when they diverge again
// later they replay from one of the new path's own checkpoints — so
// every fork shifts replay suffixes toward the tail of the schedule.
// forkMinProb is deliberately small (a fraction of a typical calibrated
// damping or measurement minority) so the depth-first build spends the
// leaf budget on the earliest qualifying sites, where the suffix saving
// is largest; Pauli entries still never fork (their error branch draws
// an extra uniform, breaking the draw-index accounting). Checkpoint
// memory is bounded twice over: the worst case is
// maxTreeLeaves * (maxCheckpoints+1) * 16*2^n bytes, and
// planStateBudget caps the actual footprint — forks stop at half the
// budget (reserving room for the paths already committed) and
// checkpoint snapshots stop at the full budget, degrading replay
// granularity instead of exhausting memory on wide states.
const (
	maxCheckpoints       = 24
	minCheckpointSpacing = 12
	maxTreeLeaves        = 96
	forkMinProb          = 0.003
	planStateBudget      = 256 << 20
)

func checkpointSpacing(nSteps int) int {
	sp := (nSteps + maxCheckpoints - 1) / maxCheckpoints
	if sp < minCheckpointSpacing {
		sp = minCheckpointSpacing
	}
	return sp
}

// Engine counters, surfaced through EngineStatsSnapshot (cmd/edm
// -cachestats). Plan-level counters cost nothing per trial; trial-level
// counters are accumulated per stripe and flushed once (runStripe).
var engineStats struct {
	plansBuilt    atomic.Int64
	planFallbacks atomic.Int64
	treeLeaves    atomic.Int64
	fullDominant  atomic.Int64
	divergent     atomic.Int64

	// Stabilizer engine counters (stab.go).
	stabPrograms    atomic.Int64
	stabFallbacks   atomic.Int64
	stabPrefixSteps atomic.Int64
	stabMaxWords    atomic.Int64
	stabTrials      atomic.Int64

	// Batched replay counters (batchreplay.go / sched.go).
	batchBuckets  atomic.Int64
	batchUnits    atomic.Int64
	batchTrials   atomic.Int64
	batchLanes    atomic.Int64
	batchClones   atomic.Int64
	batchDeferred atomic.Int64
	unitSteals    atomic.Int64
}

// EngineStats is a snapshot of the trajectory engine's counters.
type EngineStats struct {
	// PlansBuilt / PlanFallbacks count prefix plans built vs programs
	// that fell back to the legacy loop (a Kraus set the tape cannot
	// model). A nonzero fallback count flags that campaigns are silently
	// running without prefix sharing.
	PlansBuilt    int64
	PlanFallbacks int64
	// TreeLeaves is the total number of dominant paths across built
	// plans (1 per plan when no fork criterion fired).
	TreeLeaves int64
	// FullDominantTrials resolved on a leaf with zero state work;
	// DivergentTrials replayed a suffix from a checkpoint.
	FullDominantTrials int64
	DivergentTrials    int64

	// StabPrograms / StabFallbacks count analyzed programs whose whole
	// schedule converted to tableau operations vs those with a
	// non-Clifford step (which run on the statevector engine instead).
	StabPrograms  int64
	StabFallbacks int64
	// StabPrefixSteps is the total Clifford prefix length across
	// analyzed programs (equal to the schedule length for converted
	// programs); StabMaxWords is the widest tableau row, in 64-bit
	// words, any stabilizer plan used.
	StabPrefixSteps int64
	StabMaxWords    int64
	// StabTrials counts trials executed on the tableau.
	StabTrials int64

	// Batched-replay occupancy. BatchBuckets counts distinct
	// (checkpoint) buckets the scheduler formed; BatchUnits counts the
	// replay units processed (buckets after fragmentation plus deferred
	// continuations); BatchTrials counts divergent trials replayed
	// through the batched path, so BatchTrials/BatchUnits is the mean
	// batch size. BatchLanes is the total live-lane high-water across
	// units, BatchLaneClones counts lane copies taken when a group split
	// at a stochastic step, and BatchDeferredTrials counts trials pushed
	// to a continuation unit because their unit ran out of lanes.
	BatchBuckets        int64
	BatchUnits          int64
	BatchTrials         int64
	BatchLanes          int64
	BatchLaneClones     int64
	BatchDeferredTrials int64
	// UnitSteals counts replay units migrated between workers by the
	// work-stealing scheduler.
	UnitSteals int64
}

// EngineStatsSnapshot returns the process-wide trajectory engine
// counters.
func EngineStatsSnapshot() EngineStats {
	return EngineStats{
		PlansBuilt:         engineStats.plansBuilt.Load(),
		PlanFallbacks:      engineStats.planFallbacks.Load(),
		TreeLeaves:         engineStats.treeLeaves.Load(),
		FullDominantTrials: engineStats.fullDominant.Load(),
		DivergentTrials:    engineStats.divergent.Load(),
		StabPrograms:       engineStats.stabPrograms.Load(),
		StabFallbacks:      engineStats.stabFallbacks.Load(),
		StabPrefixSteps:    engineStats.stabPrefixSteps.Load(),
		StabMaxWords:       engineStats.stabMaxWords.Load(),
		StabTrials:         engineStats.stabTrials.Load(),

		BatchBuckets:        engineStats.batchBuckets.Load(),
		BatchUnits:          engineStats.batchUnits.Load(),
		BatchTrials:         engineStats.batchTrials.Load(),
		BatchLanes:          engineStats.batchLanes.Load(),
		BatchLaneClones:     engineStats.batchClones.Load(),
		BatchDeferredTrials: engineStats.batchDeferred.Load(),
		UnitSteals:          engineStats.unitSteals.Load(),
	}
}

// ResetEngineStats zeroes the engine counters (tests and benchmarks).
func ResetEngineStats() {
	engineStats.plansBuilt.Store(0)
	engineStats.planFallbacks.Store(0)
	engineStats.treeLeaves.Store(0)
	engineStats.fullDominant.Store(0)
	engineStats.divergent.Store(0)
	engineStats.stabPrograms.Store(0)
	engineStats.stabFallbacks.Store(0)
	engineStats.stabPrefixSteps.Store(0)
	engineStats.stabMaxWords.Store(0)
	engineStats.stabTrials.Store(0)
	engineStats.batchBuckets.Store(0)
	engineStats.batchUnits.Store(0)
	engineStats.batchTrials.Store(0)
	engineStats.batchLanes.Store(0)
	engineStats.batchClones.Store(0)
	engineStats.batchDeferred.Store(0)
	engineStats.unitSteals.Store(0)
}

// engineTally accumulates per-trial counters inside one stripe so the
// hot loop touches no atomics; runStripe flushes it once.
type engineTally struct {
	full int64
	div  int64
	stab int64
}

func (t *engineTally) flush() {
	if t.full != 0 {
		engineStats.fullDominant.Add(t.full)
	}
	if t.div != 0 {
		engineStats.divergent.Add(t.div)
	}
	if t.stab != 0 {
		engineStats.stabTrials.Add(t.stab)
	}
	t.full, t.div, t.stab = 0, 0, 0
}

// planFor returns the program's prefix plan, building it on first use.
// It returns nil when the machine runs the legacy engine.
func (m *Machine) planFor(prog *program) *prefixPlan {
	if m.engine == EngineLegacy {
		return nil
	}
	prog.prefixOnce.Do(func() { prog.prefix = buildPrefixPlan(prog) })
	return prog.prefix
}

// treeBuilder carries the shared state of the depth-first dominant-path
// build: the leaf budget, checkpoint spacing, and the schedule position
// of the first measurement (which gets an extra snapshot so the common
// "gates stayed dominant, a measurement diverged" replay is bounded by
// the measurement block).
type treeBuilder struct {
	prog      *program
	plan      *prefixPlan
	spacing   int
	firstMeas int
	leaves    int
}

func (b *treeBuilder) newNode(parent *treeNode) *treeNode {
	n := &treeNode{id: len(b.plan.nodes), parent: parent, prob: 1}
	if parent != nil {
		n.depth = parent.depth + 1
	}
	if n.depth > b.plan.maxDepth {
		b.plan.maxDepth = n.depth
	}
	b.plan.nodes = append(b.plan.nodes, n)
	return n
}

// lastCkptOnPath returns the most recent checkpoint on the root-to-node
// path, or nil before the initial checkpoint exists.
func lastCkptOnPath(node *treeNode) *checkpoint {
	for n := node; n != nil; n = n.parent {
		if len(n.ckpts) > 0 {
			return &n.ckpts[len(n.ckpts)-1]
		}
	}
	return nil
}

// canFork reports whether the build may open another dominant path:
// the leaf budget has room and checkpoint memory is below half the
// plan budget (the committed paths still snapshot as they build).
func (b *treeBuilder) canFork() bool {
	return b.leaves < maxTreeLeaves && b.plan.stateBytes < planStateBudget/2
}

// snapshot records a checkpoint of the current path state before
// schedule step stepIdx with tapeIdx path draws consumed, skipping
// duplicates at the same step. Once the plan's checkpoint memory
// reaches planStateBudget no further snapshots are taken — replay
// restores from an ancestor checkpoint instead (lastCkptOnPath /
// checkpointBefore already walk up the tree), trading replay
// granularity for a bounded footprint.
func (b *treeBuilder) snapshot(node *treeNode, s *statevec.State, bits []int, stepIdx, tapeIdx int) {
	if last := lastCkptOnPath(node); last != nil && last.stepIdx == stepIdx {
		return
	}
	if b.plan.stateBytes >= planStateBudget {
		return
	}
	node.ckpts = append(node.ckpts, checkpoint{
		stepIdx: stepIdx,
		tapeIdx: tapeIdx,
		state:   s.Clone(),
		bits:    append([]int(nil), bits...),
	})
	b.plan.stateBytes += int64(16) << uint(b.prog.nLocal)
}

// buildPrefixPlan builds the tape tree: the dominant path is executed
// once per segment — unitary steps evolve the state through the shared
// kernels, stochastic steps record their threshold and apply their
// preferred branch — and near-50/50 comparisons fork the build while
// the leaf budget lasts. It returns nil if the schedule contains a
// stochastic step the tape cannot model (a Kraus set that is not two
// operators — nothing the noise model emits), which falls the machine
// back to the legacy loop.
func buildPrefixPlan(prog *program) *prefixPlan {
	for i := range prog.steps {
		st := &prog.steps[i]
		if st.kind == stepDamp &&
			((st.ampK != nil && len(st.ampK) != 2) || (st.phK != nil && len(st.phK) != 2)) {
			engineStats.planFallbacks.Add(1)
			return nil
		}
	}
	plan := &prefixPlan{}
	b := &treeBuilder{
		prog:      prog,
		plan:      plan,
		spacing:   checkpointSpacing(len(prog.steps)),
		firstMeas: -1,
		leaves:    1,
	}
	for i := range prog.steps {
		if prog.steps[i].kind == stepMeasure {
			b.firstMeas = i
			break
		}
	}
	root := b.newNode(nil)
	root.ckpts = append(root.ckpts, checkpoint{stepIdx: 0, tapeIdx: 0})
	plan.root = root
	s := statevec.GetState(prog.nLocal)
	defer statevec.PutState(s)
	bits := make([]int, prog.numClbits)
	b.build(root, s, bits, 0, 0, 0)
	for _, n := range plan.nodes {
		if n.isLeaf() {
			plan.leaves = append(plan.leaves, n)
		}
	}
	engineStats.plansBuilt.Add(1)
	engineStats.treeLeaves.Add(int64(len(plan.leaves)))
	return plan
}

// Sub-step positions for resuming a schedule step after a fork: a damp
// step samples its amplitude channel then its dephasing channel, and a
// fork at either leaves the rest of the step to the children.
const (
	subStart  = 0 // execute the whole step
	subAfterA = 1 // amplitude Kraus done (damp) / measurement done
	subAfterP = 2 // both damp channels done
)

// build executes the dominant path of node's segment from schedule
// position (startStep, startSub) with tapeIdx path draws consumed. s
// and bits are the running path state; build either completes the
// schedule (node becomes a leaf) or forks and recurses into both
// children, cloning the state once for the minority branch.
func (b *treeBuilder) build(node *treeNode, s *statevec.State, bits []int, startStep, startSub, tapeIdx int) {
	prog := b.prog
	for i := startStep; i < len(prog.steps); i++ {
		st := &prog.steps[i]
		sub := subStart
		if i == startStep {
			sub = startSub
		}
		if i == b.firstMeas && sub == subStart {
			b.snapshot(node, s, bits, i, tapeIdx)
		}
		switch st.kind {
		case stepU1, stepU2:
			applyUnitaryStep(s, st)
		case stepPauli1, stepPauli2:
			// Preferred branch: no error. This is the maximum-probability
			// branch whenever p < 1/2, which holds for every calibrated
			// error rate; it is also the only branch with a fixed draw
			// count (one uniform), which is what keeps path draw index ==
			// trial draw index — and why Pauli entries never fork.
			if st.p > 0 {
				node.tape = append(node.tape, tapeEntry{op: tapeBern, a: st.p, step: int32(i)})
				tapeIdx++
			}
		case stepDamp:
			if st.ampK != nil && sub < subAfterA {
				if b.emitKraus(node, s, bits, st.ampK, st.q0, i, subAfterA, &tapeIdx) {
					return
				}
			}
			if st.phK != nil && sub < subAfterP {
				if b.emitKraus(node, s, bits, st.phK, st.q0, i, subAfterP, &tapeIdx) {
					return
				}
			}
		case stepMeasure:
			if sub == subStart {
				if b.emitMeasure(node, s, bits, st, i, &tapeIdx) {
					return
				}
			}
		}
		if (i+1)%b.spacing == 0 && i+1 < len(prog.steps) {
			b.snapshot(node, s, bits, i+1, tapeIdx)
		}
	}
	node.domBits = append([]int(nil), bits...)
}

// fork turns node into an internal node at the given entry and builds
// both children from schedule position (stepIdx, nextSub): apply is
// called with the branch index and the branch's state to take the
// branch's state update. The dominant branch continues in place; the
// minority branch gets a one-off clone.
func (b *treeBuilder) fork(node *treeNode, s *statevec.State, bits []int, entry tapeEntry,
	dom int, pDom float64, stepIdx, nextSub, tapeIdx int,
	apply func(branch int, bs *statevec.State, bb []int)) {
	node.fork = entry
	b.leaves++
	other := s.Clone()
	otherBits := append([]int(nil), bits...)
	cd := b.newNode(node)
	cd.prob = node.prob * pDom
	node.children[dom] = cd
	apply(dom, s, bits)
	b.build(cd, s, bits, stepIdx, nextSub, tapeIdx)
	co := b.newNode(node)
	co.prob = node.prob * (1 - pDom)
	node.children[1-dom] = co
	apply(1-dom, other, otherBits)
	b.build(co, other, otherBits, stepIdx, nextSub, tapeIdx)
}

// emitKraus records one two-operator Kraus selection on the dominant
// path: branch probabilities are computed exactly as a live
// ApplyKraus1Q would on this state, the higher-probability branch is
// recorded and applied (pre-scaled, through the same kernels). It
// returns true if the selection forked (the children own the rest of
// the schedule).
func (b *treeBuilder) emitKraus(node *treeNode, s *statevec.State, bits []int,
	ks []circuit.Matrix2, q, stepIdx, nextSub int, tapeIdx *int) bool {
	var probs [2]float64
	s.KrausBranchProbs1Q(ks, q, probs[:])
	// total replicates rng.Choose's summation order.
	total := probs[0] + probs[1]
	dom := 0
	op := tapeChoose0
	if probs[1] > probs[0] {
		dom = 1
		op = tapeChoose1
	}
	entry := tapeEntry{op: op, a: probs[0], b: total, step: int32(stepIdx)}
	if minor := probs[1-dom] / total; minor >= forkMinProb && b.canFork() {
		*tapeIdx++
		b.fork(node, s, bits, entry, dom, probs[dom]/total, stepIdx, nextSub, *tapeIdx,
			func(branch int, bs *statevec.State, _ []int) {
				bs.ApplyKrausBranch1Q(ks, q, branch, probs[branch])
			})
		return true
	}
	node.tape = append(node.tape, entry)
	*tapeIdx++
	s.ApplyKrausBranch1Q(ks, q, dom, probs[dom])
	return false
}

// emitMeasure records one measurement on the dominant path, forking
// when the outcome is near-50/50 (the canonical genuinely random branch
// point: measuring an equal superposition). It returns true if the
// measurement forked.
func (b *treeBuilder) emitMeasure(node *treeNode, s *statevec.State, bits []int,
	st *step, stepIdx int, tapeIdx *int) bool {
	p1 := s.ProbabilityOne(st.q0)
	dom := 0
	op := tapeMeas0
	if p1 >= 0.5 {
		dom = 1
		op = tapeMeas1
	}
	entry := tapeEntry{op: op, a: p1, step: int32(stepIdx)}
	minor := p1
	if dom == 1 {
		minor = 1 - p1
	}
	if minor >= forkMinProb && b.canFork() {
		pDom := p1
		if dom == 0 {
			pDom = 1 - p1
		}
		*tapeIdx++
		b.fork(node, s, bits, entry, dom, pDom, stepIdx, subAfterA, *tapeIdx,
			func(branch int, bs *statevec.State, bb []int) {
				bs.Project(st.q0, branch)
				bb[st.cbit] = branch
			})
		return true
	}
	node.tape = append(node.tape, entry)
	*tapeIdx++
	s.Project(st.q0, dom)
	bits[st.cbit] = dom
	return false
}

// testHookPrefix, when set by a test, observes each trial's tape-tree
// walk: the node where the walk ended (a leaf for fully dominant
// trials), the path draw index of the first divergent draw or -1 for a
// fully dominant trial, and the trial stream after its last draw, which
// the draw-order contract test compares against the legacy loop's
// stream. Production runs leave it nil.
var testHookPrefix func(trial, nodeID, divergedAt int, final *rng.RNG)

// walkTape burns a trial stream's uniforms against the tape tree: every
// tape entry consumes one uniform and is re-evaluated with the live
// comparison, every fork consumes one uniform and selects a child. It
// returns the node where the walk ended, the schedule step of the first
// divergent draw (-1 for a fully dominant trial — the node is then a
// leaf and rt is positioned exactly before the readout draws), and the
// path draw index of the divergent draw (-1 when dominant). It is the
// state-free front half of both the sequential trial path
// (runTrialShared) and the batched replay scheduler's walk phase.
func walkTape(plan *prefixPlan, rt *rng.RNG) (node *treeNode, divStep, divPos int) {
	node = plan.root
	pos := 0 // path draw index
	for {
		tape := node.tape
		for i := range tape {
			if !tape[i].follows(rt.Float64()) {
				return node, int(tape[i].step), pos + i
			}
		}
		pos += len(tape)
		if node.isLeaf() {
			return node, -1, -1
		}
		// Fork: one uniform selects the child with the live comparison.
		node = node.children[node.fork.branch(rt.Float64())]
		pos++
	}
}

// runTrialShared executes one trial through the prefix-sharing engine.
// It must produce exactly the bits runTrajectory would produce for
// r.DeriveN("trial", t) — the byte-identity tests enforce this across
// every workload.
func (m *Machine) runTrialShared(prog *program, plan *prefixPlan, scratch *statevec.State, trueBits []int, r *rng.RNG, t int, tally *engineTally) bitstr.BitString {
	rt := r.DeriveN("trial", t)
	node, divStep, divPos := walkTape(plan, rt)
	if divStep < 0 {
		// Fully dominant: the trial shares this leaf's final state, so
		// only its readout draws are private. rt has consumed exactly as
		// many uniforms as a live trajectory consumes before readout on
		// this path.
		copy(trueBits, node.domBits)
		out := m.applyReadout(prog, trueBits, rt)
		tally.full++
		if testHookPrefix != nil {
			testHookPrefix(t, node.id, -1, rt)
		}
		return out
	}
	// Divergent from every path through this node: restore the nearest
	// checkpoint on the followed path at or before the divergent step and
	// replay the suffix through the legacy loop with a fresh stream
	// skipped to the checkpoint's draw index.
	ck := node.checkpointBefore(divStep)
	rr := r.DeriveN("trial", t)
	rr.Skip(ck.tapeIdx)
	if ck.state == nil {
		scratch.Reset()
		for i := range trueBits {
			trueBits[i] = 0
		}
	} else {
		scratch.CopyFrom(ck.state)
		copy(trueBits, ck.bits)
	}
	out := m.resumeTrajectory(prog, scratch, trueBits, rr, ck.stepIdx)
	tally.div++
	if testHookPrefix != nil {
		testHookPrefix(t, node.id, divPos, rr)
	}
	return out
}
