package backend

// Prefix-sharing trajectory engine.
//
// At the device's error rates most Monte-Carlo trials follow the same
// branch at every stochastic step for a long prefix of the schedule —
// the depolarizing events overwhelmingly sample "no error", the damping
// channels overwhelmingly sample their no-jump operator. Along such a
// shared prefix the statevector is bit-identical across trials, which
// means every state-dependent branch probability (Kraus weights,
// measurement probabilities) is bit-identical too. So the schedule is
// executed once along its *dominant path* — every stochastic step takes
// a fixed preferred branch — recording, per stochastic draw, the exact
// floating-point comparison the live code would perform (the threshold
// tape) plus copy-on-write statevector checkpoints every few steps.
//
// A trial then needs no linear algebra while it agrees with the
// dominant path: it burns its private stream's uniforms against the
// tape — pure float comparisons — until the first divergent draw,
// restores the nearest checkpoint at or before the divergent step, and
// simulates only the suffix through the unchanged legacy step loop.
// Trials whose whole stochastic schedule stays dominant collapse to the
// shared final outcome bits plus their per-trial readout draws.
//
// Soundness (byte-identity with runTrajectory, DESIGN.md section 10):
//
//   - Thresholds are recorded as the operands of the live comparison
//     and re-evaluated with the same operations ((u < p) for Bernoulli
//     draws, (u*total - w0 < 0) for two-branch Kraus selection via
//     rng.Choose, (u < p1) for measurements), so a tape scan and a live
//     trial branch identically on every uniform.
//   - Every stochastic step consumes exactly one uniform when it takes
//     a recorded branch (Bernoulli, two-operator Choose, and
//     MeasureQubit each draw one Float64), so the tape index equals the
//     trial stream's draw index; a checkpoint at tape index k is
//     restored by deriving the trial stream afresh and Skip(k)-ing it.
//   - Replay from a checkpoint re-executes the remaining schedule with
//     the live code path: the steps between the checkpoint and the
//     divergent draw re-sample their recorded branches (same state,
//     same uniforms, same comparisons), and the divergent step itself
//     consumes whatever extra draws its branch needs (e.g. the Pauli
//     kind draw), exactly as the legacy loop would.
//
// The engine therefore changes only how trials are scheduled, never
// what they compute.

import (
	"sort"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/rng"
	"edm/internal/statevec"
)

// tapeOp discriminates threshold-tape entries; each entry corresponds
// to exactly one uniform drawn from the trial stream.
type tapeOp uint8

const (
	// tapeBern is a depolarizing-event Bernoulli draw whose recorded
	// branch is "no error": a trial follows iff !(u < a), a = p.
	tapeBern tapeOp = iota
	// tapeChoose0 / tapeChoose1 are a two-operator Kraus selection via
	// rng.Choose with recorded branch 0 / 1: Choose returns 0 iff
	// u*b - a < 0, with a = probs[0] and b = probs[0]+probs[1] summed in
	// Choose's order.
	tapeChoose0
	tapeChoose1
	// tapeMeas0 / tapeMeas1 are a measurement with recorded outcome
	// 0 / 1: MeasureQubit observes 1 iff u < a, a = P(1).
	tapeMeas0
	tapeMeas1
)

// tapeEntry is one recorded stochastic draw of the dominant path.
type tapeEntry struct {
	a, b float64
	step int32 // schedule step this draw belongs to
	op   tapeOp
}

// follows reports whether a trial whose next uniform is u takes this
// entry's recorded branch. The comparisons replicate the live code's
// float operations exactly; see the tapeOp constants.
func (e *tapeEntry) follows(u float64) bool {
	switch e.op {
	case tapeBern:
		return !(u < e.a)
	case tapeChoose0:
		return e.choosesZero(u)
	case tapeChoose1:
		return !e.choosesZero(u)
	case tapeMeas1:
		return u < e.a
	default: // tapeMeas0
		return !(u < e.a)
	}
}

// choosesZero replicates rng.Choose's two-weight branch test, statement
// for statement (so an FMA-fusing compiler treats both identically):
// with x := u*total, Choose returns 0 iff x - w0 < 0.
func (e *tapeEntry) choosesZero(u float64) bool {
	x := u * e.b
	x -= e.a
	return x < 0
}

// checkpoint is a copy-on-write snapshot of the dominant path: the
// state and classical bits *before* executing schedule step stepIdx,
// with tapeIdx stochastic draws consumed so far. Checkpoints are built
// once per program and only ever read afterwards — trials restore by
// copying into their private scratch.
type checkpoint struct {
	stepIdx int
	tapeIdx int
	state   *statevec.State // nil for the initial |0...0> checkpoint
	bits    []int
}

// prefixPlan is the per-program artifact of the dominant-path run.
type prefixPlan struct {
	tape    []tapeEntry
	ckpts   []checkpoint // ascending stepIdx; ckpts[0] is the initial state
	domBits []int        // classical bits after the full dominant path
	// stateBytes is the checkpoint memory footprint (amplitude buffers
	// only), reported by benchmarks as the engine's space overhead.
	stateBytes int64
}

// Checkpoint spacing. More checkpoints shorten the replayed suffix of a
// diverging trial (expected extra work ~ spacing/2 steps) but cost
// 16*2^n bytes each, so the count is bounded and the spacing floored:
// at the paper's error rates most trials replay nothing at all, making
// checkpoint memory — not replay time — the binding constraint. An
// extra checkpoint right before the first measurement bounds the replay
// of the common "gates stayed dominant, a measurement draw diverged"
// trial to the measurement block.
const (
	maxCheckpoints       = 12
	minCheckpointSpacing = 24
)

func checkpointSpacing(nSteps int) int {
	sp := (nSteps + maxCheckpoints - 1) / maxCheckpoints
	if sp < minCheckpointSpacing {
		sp = minCheckpointSpacing
	}
	return sp
}

// planFor returns the program's prefix plan, building it on first use.
// It returns nil when the machine runs the legacy engine.
func (m *Machine) planFor(prog *program) *prefixPlan {
	if m.engine == EngineLegacy {
		return nil
	}
	prog.prefixOnce.Do(func() { prog.prefix = buildPrefixPlan(prog) })
	return prog.prefix
}

// buildPrefixPlan executes the dominant path once: unitary steps evolve
// the state through the shared kernels, stochastic steps record their
// threshold and apply their preferred branch. It returns nil if the
// schedule contains a stochastic step the tape cannot model (a Kraus
// set that is not two operators — nothing the noise model emits), which
// falls the machine back to the legacy loop.
func buildPrefixPlan(prog *program) *prefixPlan {
	for i := range prog.steps {
		st := &prog.steps[i]
		if st.kind == stepDamp &&
			((st.ampK != nil && len(st.ampK) != 2) || (st.phK != nil && len(st.phK) != 2)) {
			return nil
		}
	}
	plan := &prefixPlan{
		ckpts: []checkpoint{{stepIdx: 0, tapeIdx: 0}},
	}
	s := statevec.GetState(prog.nLocal)
	defer statevec.PutState(s)
	bits := make([]int, prog.numClbits)
	spacing := checkpointSpacing(len(prog.steps))
	snapshot := func(next int) {
		last := &plan.ckpts[len(plan.ckpts)-1]
		if last.stepIdx == next {
			return
		}
		plan.ckpts = append(plan.ckpts, checkpoint{
			stepIdx: next,
			tapeIdx: len(plan.tape),
			state:   s.Clone(),
			bits:    append([]int(nil), bits...),
		})
		plan.stateBytes += int64(16) << uint(prog.nLocal)
	}
	measSeen := false
	for i := range prog.steps {
		st := &prog.steps[i]
		if st.kind == stepMeasure && !measSeen {
			measSeen = true
			snapshot(i)
		}
		switch st.kind {
		case stepU1, stepU2:
			applyUnitaryStep(s, st)
		case stepPauli1, stepPauli2:
			// Preferred branch: no error. This is the maximum-probability
			// branch whenever p < 1/2, which holds for every calibrated
			// error rate; it is also the only branch with a fixed draw
			// count (one uniform), which is what keeps tape index == draw
			// index.
			if st.p > 0 {
				plan.tape = append(plan.tape, tapeEntry{op: tapeBern, a: st.p, step: int32(i)})
			}
		case stepDamp:
			if st.ampK != nil {
				emitKraus(plan, s, st.ampK, st.q0, i)
			}
			if st.phK != nil {
				emitKraus(plan, s, st.phK, st.q0, i)
			}
		case stepMeasure:
			p1 := s.ProbabilityOne(st.q0)
			dom := 0
			op := tapeMeas0
			if p1 >= 0.5 {
				dom = 1
				op = tapeMeas1
			}
			plan.tape = append(plan.tape, tapeEntry{op: op, a: p1, step: int32(i)})
			s.Project(st.q0, dom)
			bits[st.cbit] = dom
		}
		if (i+1)%spacing == 0 && i+1 < len(prog.steps) {
			snapshot(i + 1)
		}
	}
	plan.domBits = bits
	return plan
}

// emitKraus records one two-operator Kraus selection on the dominant
// path: branch probabilities are computed exactly as a live
// ApplyKraus1Q would on this state, the higher-probability branch is
// recorded and applied (pre-scaled, through the same kernels).
func emitKraus(plan *prefixPlan, s *statevec.State, ks []circuit.Matrix2, q, stepIdx int) {
	var probs [2]float64
	s.KrausBranchProbs1Q(ks, q, probs[:])
	// total replicates rng.Choose's summation order.
	total := probs[0] + probs[1]
	dom := 0
	op := tapeChoose0
	if probs[1] > probs[0] {
		dom = 1
		op = tapeChoose1
	}
	plan.tape = append(plan.tape, tapeEntry{op: op, a: probs[0], b: total, step: int32(stepIdx)})
	s.ApplyKrausBranch1Q(ks, q, dom, probs[dom])
}

// checkpointBefore returns the latest checkpoint whose stepIdx is at or
// before the given schedule step. The initial checkpoint (stepIdx 0)
// guarantees a hit.
func (p *prefixPlan) checkpointBefore(step int) *checkpoint {
	i := sort.Search(len(p.ckpts), func(i int) bool { return p.ckpts[i].stepIdx > step })
	return &p.ckpts[i-1]
}

// testHookPrefix, when set by a test, observes each trial's divergence
// point — the tape index of the first divergent draw, or -1 for a fully
// dominant trial — and the trial stream after its last draw, which the
// draw-order contract test compares against the legacy loop's stream.
// Production runs leave it nil.
var testHookPrefix func(trial, divergedAt int, final *rng.RNG)

// runTrialShared executes one trial through the prefix-sharing engine.
// It must produce exactly the bits runTrajectory would produce for
// r.DeriveN("trial", t) — the byte-identity tests enforce this across
// every workload.
func (m *Machine) runTrialShared(prog *program, plan *prefixPlan, scratch *statevec.State, trueBits []int, r *rng.RNG, t int) bitstr.BitString {
	rt := r.DeriveN("trial", t)
	tape := plan.tape
	div := -1
	for i := range tape {
		if !tape[i].follows(rt.Float64()) {
			div = i
			break
		}
	}
	if div < 0 {
		// Fully dominant: the trial shares the dominant final state, so
		// only its readout draws are private. rt has consumed exactly
		// len(tape) uniforms — the same count a live trajectory consumes
		// before readout on this path.
		copy(trueBits, plan.domBits)
		out := m.applyReadout(prog, trueBits, rt)
		if testHookPrefix != nil {
			testHookPrefix(t, div, rt)
		}
		return out
	}
	// Divergent: restore the nearest checkpoint at or before the
	// divergent step and replay the suffix through the legacy loop with
	// a fresh stream skipped to the checkpoint's draw index.
	ck := plan.checkpointBefore(int(tape[div].step))
	rr := r.DeriveN("trial", t)
	rr.Skip(ck.tapeIdx)
	if ck.state == nil {
		scratch.Reset()
		for i := range trueBits {
			trueBits[i] = 0
		}
	} else {
		scratch.CopyFrom(ck.state)
		copy(trueBits, ck.bits)
	}
	out := m.resumeTrajectory(prog, scratch, trueBits, rr, ck.stepIdx)
	if testHookPrefix != nil {
		testHookPrefix(t, div, rr)
	}
	return out
}
