package backend

import (
	"strings"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/rng"
)

// cliffordMachine builds a machine on a Linear(n) device with the
// Clifford-clean heavy-hex noise profile: stochastic Pauli and readout
// errors only, no damping and no coherent terms, so every compiled
// schedule is fully Clifford.
func cliffordMachine(n int, seed uint64) *Machine {
	return New(device.Generate(device.Linear(n), device.HeavyHexProfile(), rng.New(seed)))
}

// randomCliffordChain builds a physical circuit on a Linear(n) device
// out of Clifford gates only, ending in a full measurement.
func randomCliffordChain(n int, r *rng.RNG) *circuit.Circuit {
	c := circuit.New(n, n)
	oneQ := []func(q int){
		func(q int) { c.H(q) },
		func(q int) { c.S(q) },
		func(q int) { c.Sdg(q) },
		func(q int) { c.X(q) },
		func(q int) { c.Y(q) },
		func(q int) { c.Z(q) },
	}
	depth := 12 + r.Intn(20)
	for i := 0; i < depth; i++ {
		switch r.Intn(4) {
		case 0, 1:
			oneQ[r.Intn(len(oneQ))](r.Intn(n))
		default:
			if n < 2 {
				oneQ[r.Intn(len(oneQ))](0)
				continue
			}
			q := r.Intn(n - 1)
			if r.Intn(2) == 0 {
				c.CX(q, q+1)
			} else {
				c.CZ(q, q+1)
			}
		}
	}
	c.MeasureAll()
	return c
}

// assertSameCounts fails unless the two histograms are byte-identical.
func assertSameCounts(t *testing.T, label string, nbits int, want, got interface {
	Total() int
	Count(bitstr.BitString) int
}) {
	t.Helper()
	if want.Total() != got.Total() {
		t.Fatalf("%s: totals differ: %d vs %d", label, want.Total(), got.Total())
	}
	for v := uint64(0); v < uint64(1)<<uint(nbits); v++ {
		b := bitstr.New(v, nbits)
		if want.Count(b) != got.Count(b) {
			t.Fatalf("%s: histogram differs at %v: %d vs %d", label, b, want.Count(b), got.Count(b))
		}
	}
}

// TestStabilizerByteIdentity is the acceptance property: on random
// Clifford(+Pauli noise) circuits the default engine (which routes
// fully-Clifford schedules to the tableau) produces histograms
// byte-identical to both statevector engines, at serial and striped
// trial counts. Run with -race and GOMAXPROCS=1 in CI.
func TestStabilizerByteIdentity(t *testing.T) {
	ResetEngineStats()
	r := rng.New(977)
	for n := 2; n <= 12; n++ {
		c := randomCliffordChain(n, r.DeriveN("circuit", n))
		// Three machines over the same calibration so program caches
		// don't alias engines.
		auto := cliffordMachine(n, uint64(n))
		sv := cliffordMachine(n, uint64(n))
		sv.SetTrajectoryEngine(EngineStatevector)
		legacy := cliffordMachine(n, uint64(n))
		legacy.SetTrajectoryEngine(EngineLegacy)
		strict := cliffordMachine(n, uint64(n))
		strict.SetTrajectoryEngine(EngineStabilizer)
		for _, trials := range []int{97, 600} { // below and above parallelThreshold
			seed := uint64(1000*n + trials)
			want, err := sv.Run(c, trials, rng.New(seed))
			if err != nil {
				t.Fatalf("n=%d statevector: %v", n, err)
			}
			got, err := auto.Run(c, trials, rng.New(seed))
			if err != nil {
				t.Fatalf("n=%d auto: %v", n, err)
			}
			assertSameCounts(t, "auto vs statevector", n, want, got)
			leg, err := legacy.Run(c, trials, rng.New(seed))
			if err != nil {
				t.Fatalf("n=%d legacy: %v", n, err)
			}
			assertSameCounts(t, "legacy vs statevector", n, want, leg)
			str, err := strict.Run(c, trials, rng.New(seed))
			if err != nil {
				t.Fatalf("n=%d strict: %v", n, err)
			}
			assertSameCounts(t, "strict vs statevector", n, want, str)
		}
	}
	s := EngineStatsSnapshot()
	if s.StabPrograms == 0 || s.StabTrials == 0 {
		t.Fatalf("stabilizer engine never engaged: %+v", s)
	}
	if s.StabFallbacks != 0 {
		t.Fatalf("unexpected stabilizer fallbacks on Clifford-clean circuits: %+v", s)
	}
}

// TestStabilizerStrictRejectsNonClifford pins the EngineStabilizer
// contract: a Melbourne-profile schedule (finite T1/T2 produce damping
// steps) must error, not silently fall back.
func TestStabilizerStrictRejectsNonClifford(t *testing.T) {
	m := noisyMachine(53)
	m.SetTrajectoryEngine(EngineStabilizer)
	if _, err := m.Run(bell(t), 10, rng.New(1)); err == nil || !strings.Contains(err.Error(), "not Clifford") {
		t.Fatalf("strict stabilizer on damped schedule: err = %v, want non-Clifford error", err)
	}
}

// ghzOnTopo builds a GHZ-style state over every qubit of a coupling
// map: H on qubit 0, then a CX along each BFS spanning-tree edge, then
// measurement of the first `measured` qubits in BFS order (the
// histogram key caps at bitstr.MaxBits classical bits). It panics on a
// disconnected topology — all shipped devices are connected.
func ghzOnTopo(topo *device.Topology, measured int) *circuit.Circuit {
	c := circuit.New(topo.Qubits, measured)
	visited := make([]bool, topo.Qubits)
	queue := []int{0}
	visited[0] = true
	order := []int{}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		order = append(order, q)
		for _, nb := range topo.Neighbors(q) {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(order) != topo.Qubits {
		panic("ghzOnTopo: disconnected topology")
	}
	// The BFS order is not a coupling path, so entangle along tree
	// edges: each qubit gets a CX from an already-visited neighbor.
	c.H(0)
	done := make([]bool, topo.Qubits)
	done[0] = true
	for _, q := range order[1:] {
		prev := -1
		for _, nb := range topo.Neighbors(q) {
			if done[nb] {
				prev = nb
				break
			}
		}
		if prev < 0 {
			panic("ghzOnTopo: no entangled neighbor")
		}
		c.CX(prev, q)
		done[q] = true
	}
	for i := 0; i < measured; i++ {
		c.Measure(order[i], i)
	}
	return c
}

// TestStabilizerWideDevice runs a 127-qubit heavy-hex GHZ-style chain
// end to end — far beyond the statevector width limit — and checks that
// the statevector-pinned engine refuses the same program.
func TestStabilizerWideDevice(t *testing.T) {
	topo := device.HeavyHexEagle127()
	cal := device.Generate(topo, device.HeavyHexProfile(), rng.New(7))
	m := New(cal)
	c := ghzOnTopo(topo, 48)

	counts, err := m.Run(c, 400, rng.New(12))
	if err != nil {
		t.Fatalf("127-qubit stabilizer run: %v", err)
	}
	if counts.Total() != 400 {
		t.Fatalf("dropped trials: %d of 400", counts.Total())
	}

	pinned := New(cal)
	pinned.SetTrajectoryEngine(EngineStatevector)
	if _, err := pinned.Run(c, 10, rng.New(12)); err == nil || !strings.Contains(err.Error(), "exceed simulator limit") {
		t.Fatalf("statevector-pinned on 127 qubits: err = %v, want width error", err)
	}
}

// TestStabilizerSnapshotPrefix checks the deterministic-prefix
// snapshot: a circuit whose leading steps are draw-free unitaries must
// produce the same counts as a machine whose analysis starts cold, and
// the plan must actually absorb the prefix.
func TestStabilizerSnapshotPrefix(t *testing.T) {
	m := cliffordMachine(4, 3)
	c := circuit.New(4, 4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	prog, err := m.getProgram(c)
	if err != nil {
		t.Fatal(err)
	}
	a := m.stabFor(prog)
	if a.plan == nil {
		t.Fatalf("Clifford-clean program not converted (prefix %d of %d)", a.prefixLen, len(prog.steps))
	}
	if a.plan.snapSteps == 0 {
		t.Fatal("deterministic prefix snapshot absorbed no steps")
	}
	// Identity against the statevector engine on the same calibration.
	sv := cliffordMachine(4, 3)
	sv.SetTrajectoryEngine(EngineStatevector)
	want, err := sv.Run(c, 500, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(c, 500, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounts(t, "snapshot vs statevector", 4, want, got)
}

// TestCompileRejectsTooManyClbits: the histogram key is a uint64, so a
// program measuring more than bitstr.MaxBits classical bits must be
// rejected at compile time (bitstr.New would panic mid-trial).
func TestCompileRejectsTooManyClbits(t *testing.T) {
	topo := device.HeavyHexEagle127()
	m := New(device.Generate(topo, device.HeavyHexProfile(), rng.New(2)))
	c := circuit.New(topo.Qubits, bitstr.MaxBits+1)
	for q := 0; q <= bitstr.MaxBits; q++ {
		c.H(q)
	}
	for q := 0; q <= bitstr.MaxBits; q++ {
		c.Measure(q, q)
	}
	if _, err := m.Run(c, 10, rng.New(3)); err == nil || !strings.Contains(err.Error(), "classical bits") {
		t.Fatalf("compile with %d clbits: err = %v, want classical-bit limit error", bitstr.MaxBits+1, err)
	}
}
