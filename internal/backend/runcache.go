package backend

import (
	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/memo"
	"edm/internal/rng"
)

// Run is a pure function of (runtime calibration, circuit, trials, RNG
// state): every trial samples from r.DeriveN("trial", t), derivation
// never advances the parent generator, and the returned histogram is
// immutable. That makes whole runs memoizable — the experiment campaign
// re-executes identical (executable, trials, stream) triples whenever
// two figures visit the same round and policy (Fig9 and Fig11 share
// every baseline and plain-EDM run), and at campaign scale trajectory
// simulation is ~99% of wall time, dwarfing the compile caches.
//
// The cache is opt-in: a plain Machine always simulates, so benchmarks
// keep measuring kernel work. The experiment Round cache enables it on
// the machines it memoizes.

// runCacheCap bounds the per-machine run cache. One campaign figure
// touches (workloads × policies × member runs) distinct histograms per
// round-machine; 512 keeps every Quick() and Default() figure fully
// resident with room to spare, and even full eviction only costs
// re-simulation.
const runCacheCap = 512

// runEntry is one memoized Run outcome. Errors (compile rejections) are
// deterministic for a given circuit, so they are cached alongside
// results.
type runEntry struct {
	counts *dist.Counts
	err    error
}

// EnableRunCache attaches a trial-run cache to the machine: subsequent
// Run/RunDist calls with an identical (circuit fingerprint, trial count,
// RNG state) return the cached histogram, and concurrent misses on one
// key share a single simulation. Callers must treat returned counts as
// immutable — they already must, since Run may serve them from the
// compiled-program cache path concurrently.
//
// Call it before the machine is shared across goroutines (the experiment
// Round cache does so at construction); it is not safe to race with Run.
func (m *Machine) EnableRunCache() {
	m.runs = memo.New[*runEntry](runCacheCap)
}

// RunCacheStats snapshots the trial-run cache counters. The zero Stats
// is returned when the cache is not enabled.
func (m *Machine) RunCacheStats() memo.Stats {
	if m.runs == nil {
		return memo.Stats{}
	}
	return m.runs.Stats()
}

// runKey fingerprints one Run invocation.
func runKey(exe *circuit.Circuit, trials int, r *rng.RNG) uint64 {
	h := memo.Mix(memo.Seed(), exe.Fingerprint())
	h = memo.Mix(h, uint64(trials))
	return memo.Mix(h, r.State())
}
