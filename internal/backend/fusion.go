package backend

import (
	"edm/internal/circuit"
	"edm/internal/noise"
	"edm/internal/statevec"
)

// identityTol is the threshold below which a fused unitary counts as the
// identity (up to global phase) and is dropped. It is far below the 1e-9
// total-variation budget the fusion-equivalence tests enforce, even after
// thousands of steps.
const identityTol = 1e-13

// fuseProgram returns a copy of p with deterministic unitary steps fused:
//
//   - runs of 1Q unitaries on the same qubit collapse into one Matrix2,
//   - a lone 1Q unitary folds into the nearest 2Q unitary on the same
//     qubit (before or after it) via a Kronecker lift,
//   - identity-within-epsilon steps are dropped,
//   - every surviving unitary is classified (diagonal / anti-diagonal /
//     permutation) so the per-trial kernels dispatch on a tag instead of
//     re-inspecting matrices.
//
// Only stepU1/stepU2 entries are touched. The stochastic steps
// (stepPauli*, stepDamp, stepMeasure) keep their count, order, and
// parameters, so the trajectory path draws exactly the same random
// variates in the same order as the unfused schedule; fused matrices are
// algebraically equal to the step products they replace, with unitaries
// commuted only across steps acting on disjoint qubits.
func fuseProgram(p *program) *program {
	out := &program{
		nLocal:    p.nLocal,
		numClbits: p.numClbits,
		measPhys:  p.measPhys,
		steps:     make([]step, 0, len(p.steps)),
	}
	// pend[q]: index in out.steps of a 1Q unitary on q that can absorb
	// later unitaries on q; -1 if none. lastU2[q]: index of a 2Q unitary
	// touching q with no later step touching q; -1 if none. Both are
	// invalidated the moment a randomness-consuming step touches q,
	// which is what keeps the commutes exact: every step a unitary is
	// moved across acts on disjoint qubits.
	pend := make([]int, p.nLocal)
	lastU2 := make([]int, p.nLocal)
	for i := range pend {
		pend[i] = -1
		lastU2[i] = -1
	}
	dropped := make([]bool, 0, len(p.steps))
	emit := func(s step) int {
		out.steps = append(out.steps, s)
		dropped = append(dropped, false)
		return len(out.steps) - 1
	}
	clobber := func(q int) {
		pend[q] = -1
		lastU2[q] = -1
	}

	for _, s := range p.steps {
		switch s.kind {
		case stepU1:
			q := s.q0
			if j := pend[q]; j >= 0 {
				// Later unitary composes on the left: net = s.m2 * old.
				out.steps[j].m2 = s.m2.Mul(out.steps[j].m2)
				continue
			}
			if j := lastU2[q]; j >= 0 {
				// Fold after the 2Q gate: net = lift(s.m2) * m4.
				out.steps[j].m4 = noise.Mul4(lift1Q(s.m2, q, out.steps[j]), out.steps[j].m4)
				continue
			}
			pend[q] = emit(s)
		case stepU2:
			for _, q := range [2]int{s.q0, s.q1} {
				if j := pend[q]; j >= 0 {
					// Pending unitary runs first: net = m4 * lift(pend).
					s.m4 = noise.Mul4(s.m4, lift1Q(out.steps[j].m2, q, s))
					dropped[j] = true
					pend[q] = -1
				}
			}
			j := emit(s)
			lastU2[s.q0] = j
			lastU2[s.q1] = j
		case stepPauli2:
			clobber(s.q0)
			clobber(s.q1)
			emit(s)
		case stepPauli1, stepDamp, stepMeasure:
			clobber(s.q0)
			emit(s)
		default:
			emit(s)
		}
	}

	// Compact: remove folded-away steps and near-identity unitaries, then
	// tag the survivors with their kernel class.
	kept := out.steps[:0]
	for i, s := range out.steps {
		if dropped[i] {
			continue
		}
		if s.kind == stepU1 && s.m2.NearIdentity(identityTol) {
			continue
		}
		if s.kind == stepU2 && s.m4.NearIdentity(identityTol) {
			continue
		}
		classify(&s)
		kept = append(kept, s)
	}
	out.steps = kept
	return out
}

// lift1Q embeds a one-qubit unitary on local qubit q into the 4x4 basis
// of the two-qubit step st (low bit = st.q0).
func lift1Q(m circuit.Matrix2, q int, st step) circuit.Matrix4 {
	id := circuit.Matrix2{{1, 0}, {0, 1}}
	if q == st.q0 {
		return noise.Kron(m, id)
	}
	return noise.Kron(id, m)
}

// classify tags a unitary step with its kernel class so runTrajectory and
// ExactDist dispatch without re-inspecting the matrix per trial.
func classify(s *step) {
	switch s.kind {
	case stepU1:
		switch {
		case s.m2.IsDiagonal():
			s.class = matDiag
		case s.m2.IsAntiDiagonal():
			s.class = matAnti
		default:
			s.class = matGeneral
		}
	case stepU2:
		if d, ok := s.m4.DiagonalOf(); ok {
			s.class = matDiag
			s.d4 = d
			return
		}
		if p, ok := statevec.ClassifyPerm4(s.m4); ok {
			s.class = matPerm
			s.perm = p
			return
		}
		s.class = matGeneral
	}
}
