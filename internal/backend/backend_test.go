package backend

import (
	"math"
	"runtime"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/rng"
	"edm/internal/statevec"
)

func idealMachine(topo *device.Topology) *Machine {
	return New(device.Generate(topo, device.IdealProfile(), rng.New(1)))
}

func noisyMachine(seed uint64) *Machine {
	return New(device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(seed)))
}

func bell(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := circuit.New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	return c
}

func TestIdealMachineMatchesIdealSimulator(t *testing.T) {
	m := idealMachine(device.Linear(3))
	c := circuit.New(3, 3)
	c.H(0).CX(0, 1).CX(1, 2).MeasureAll()
	counts, err := m.Run(c, 40000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	got := counts.Dist()
	want, err := statevec.IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if tv := got.TV(want); tv > 0.01 {
		t.Fatalf("ideal machine deviates from ideal simulator: TV = %v", tv)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := noisyMachine(7)
	c := bell(t)
	a, err := m.Run(c, 500, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(c, 500, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Dist().Equal(b.Dist(), 0) {
		t.Fatal("same seed produced different histograms")
	}
	c2, err := m.Run(c, 500, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.Dist().Equal(c2.Dist(), 0) {
		t.Fatal("different seeds produced identical histograms (suspicious)")
	}
}

func TestNoisyMachineDegradesOutput(t *testing.T) {
	m := noisyMachine(3)
	c := circuit.New(14, 6)
	// GHZ-like chain on qubits 0..5 then measure: deep enough to suffer.
	c.H(0)
	for q := 0; q+1 < 6; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < 6; q++ {
		c.Measure(q, q)
	}
	d, err := m.RunDist(c, 4000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p00 := d.P(bitstr.Zeros(6))
	p11 := d.P(bitstr.Ones(6))
	if p00+p11 > 0.95 {
		t.Fatalf("noise missing: P(00..)+P(11..) = %v", p00+p11)
	}
	if p00+p11 < 0.05 {
		t.Fatalf("noise implausibly strong: %v", p00+p11)
	}
	// The readout bias (1 read as 0) should depress the all-ones branch.
	if p11 >= p00 {
		t.Logf("note: p11=%v >= p00=%v (bias usually depresses p11)", p11, p00)
	}
}

func TestCouplingViolationRejected(t *testing.T) {
	m := idealMachine(device.Linear(3))
	c := circuit.New(3, 3)
	c.CX(0, 2).MeasureAll()
	if _, err := m.Run(c, 10, rng.New(1)); err == nil {
		t.Fatal("coupling violation accepted")
	}
}

func TestOversizedCircuitRejected(t *testing.T) {
	m := idealMachine(device.Linear(2))
	if _, err := m.Run(circuit.New(5, 5).MeasureAll(), 1, rng.New(1)); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestGateAfterMeasureRejected(t *testing.T) {
	m := idealMachine(device.Linear(2))
	c := circuit.New(2, 2)
	c.Measure(0, 0).X(0)
	if _, err := m.Run(c, 1, rng.New(1)); err == nil {
		t.Fatal("gate after measurement accepted")
	}
	c2 := circuit.New(2, 2)
	c2.Measure(0, 0).Measure(0, 1)
	if _, err := m.Run(c2, 1, rng.New(1)); err == nil {
		t.Fatal("double measurement accepted")
	}
}

func TestNegativeTrialsRejected(t *testing.T) {
	m := idealMachine(device.Linear(2))
	if _, err := m.Run(bell(t), -1, rng.New(1)); err == nil {
		t.Fatal("negative trials accepted")
	}
}

func TestInvalidCalibrationPanics(t *testing.T) {
	cal := device.Generate(device.Linear(2), device.IdealProfile(), rng.New(1))
	cal.SQErr = cal.SQErr[:1]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(cal)
}

// TestTrajectoriesMatchExact is the central validation of the noisy
// backend: the Monte-Carlo trajectory path and the exact density-matrix
// path must agree on the full output distribution.
func TestTrajectoriesMatchExact(t *testing.T) {
	m := noisyMachine(11)
	// Use melbourne qubits 0-1-2 (a path) with a phase-sensitive circuit.
	c := circuit.New(14, 2)
	c.H(0).CX(0, 1).T(1).H(1).CX(1, 2).Measure(0, 0).Measure(1, 1)
	exact, err := m.ExactDist(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.RunDist(c, 60000, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if tv := got.TV(exact); tv > 0.015 {
		t.Fatalf("trajectory vs exact TV = %v\ntraj:  %v\nexact: %v", tv, got, exact)
	}
}

func TestExactDistNormalized(t *testing.T) {
	m := noisyMachine(13)
	c := circuit.New(14, 3)
	c.H(0).CX(0, 1).CX(1, 2).Measure(0, 0).Measure(1, 1).Measure(2, 2)
	d, err := m.ExactDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Fatalf("exact dist mass = %v", d.Sum())
	}
}

// TestSystematicErrorsAreRepeatable: two independent runs of the same
// executable on the same machine produce *similar* distributions (low KL),
// because the coherent part of the noise is identical — the correlated-
// error phenomenon of paper Figure 4(a).
func TestSystematicErrorsAreRepeatable(t *testing.T) {
	m := noisyMachine(17)
	c := circuit.New(14, 3)
	c.H(0).CX(0, 1).CX(1, 2).T(2).H(2).Measure(0, 0).Measure(1, 1).Measure(2, 2)
	d1, err := m.RunDist(c, 8000, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.RunDist(c, 8000, rng.New(200))
	if err != nil {
		t.Fatal(err)
	}
	if kl := d1.SymKL(d2); kl > 0.05 {
		t.Fatalf("same-mapping runs diverge: SymKL = %v", kl)
	}
}

// TestDifferentMappingsDiverge: the same logical circuit placed on
// different physical qubits produces *different* output distributions —
// the diversity EDM exploits (paper Figure 4(b)).
func TestDifferentMappingsDiverge(t *testing.T) {
	m := noisyMachine(19)
	logical := circuit.New(3, 3)
	logical.H(0).CX(0, 1).CX(1, 2).T(2).H(2).MeasureAll()

	// Two placements on disjoint melbourne paths: (0,1,2) and (7,8,9).
	e1 := logical.Remap([]int{0, 1, 2}, 14)
	e2 := logical.Remap([]int{7, 8, 9}, 14)
	d1, err := m.RunDist(e1, 8000, rng.New(300))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.RunDist(e2, 8000, rng.New(400))
	if err != nil {
		t.Fatal(err)
	}
	klSame, err := sameMappingKL(m, e1)
	if err != nil {
		t.Fatal(err)
	}
	klDiff := d1.SymKL(d2)
	if klDiff < 2*klSame {
		t.Fatalf("mapping diversity too weak: diff-KL %v vs same-KL %v", klDiff, klSame)
	}
}

func sameMappingKL(m *Machine, exe *circuit.Circuit) (float64, error) {
	a, err := m.RunDist(exe, 8000, rng.New(500))
	if err != nil {
		return 0, err
	}
	b, err := m.RunDist(exe, 8000, rng.New(600))
	if err != nil {
		return 0, err
	}
	return a.SymKL(b), nil
}

// TestReadoutBiasVisible: prepare |1> and read; the biased flip rate
// P(read 0|1) must exceed P(read 1|0) measured from preparing |0>.
func TestReadoutBiasVisible(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(23))
	m := New(cal)
	prep1 := circuit.New(14, 1)
	prep1.X(0).Measure(0, 0)
	prep0 := circuit.New(14, 1)
	prep0.ID(0).Measure(0, 0)
	d1, err := m.RunDist(prep1, 30000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d0, err := m.RunDist(prep0, 30000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	flip10 := d1.P(bitstr.MustParse("0")) // read 0 although prepared 1
	flip01 := d0.P(bitstr.MustParse("1"))
	// Compare against calibration ground truth within sampling slack; the
	// X gate itself adds a little extra error to flip10.
	if flip10 < cal.Meas10[0]*0.7 {
		t.Fatalf("P(0|1) = %v far below calibration %v", flip10, cal.Meas10[0])
	}
	if flip01 > cal.Meas01[0]*1.5+0.02 {
		t.Fatalf("P(1|0) = %v far above calibration %v", flip01, cal.Meas01[0])
	}
	if flip10 <= flip01 {
		t.Fatalf("readout bias missing: P(0|1)=%v <= P(1|0)=%v (cal: %v vs %v)",
			flip10, flip01, cal.Meas10[0], cal.Meas01[0])
	}
}

// TestCorrelatedReadout: with a strong readout correlation, a qubit's
// error rate rises when its measured neighbour is 1.
func TestCorrelatedReadout(t *testing.T) {
	cal := device.Generate(device.Linear(2), device.IdealProfile(), rng.New(1))
	cal.Meas01 = []float64{0.1, 0}
	cal.ReadoutCorr = 1.0 // doubles the flip probability
	m := New(cal)

	neighbour0 := circuit.New(2, 2)
	neighbour0.MeasureAll() // both |0>
	neighbour1 := circuit.New(2, 2)
	neighbour1.X(1).MeasureAll() // neighbour reads 1

	d0, err := m.RunDist(neighbour0, 40000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := m.RunDist(neighbour1, 40000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	rate0 := d0.P(bitstr.MustParse("10")) // q0 misread as 1, q1 = 0
	rate1 := d1.P(bitstr.MustParse("11")) // q0 misread as 1, q1 = 1
	if math.Abs(rate0-0.1) > 0.01 {
		t.Fatalf("baseline flip rate = %v, want ~0.1", rate0)
	}
	if math.Abs(rate1-0.2) > 0.01 {
		t.Fatalf("correlated flip rate = %v, want ~0.2", rate1)
	}
}

// TestSpectatorCrosstalkFolded: a CX whose neighbourhood contains an
// untouched spectator must still run (the ZZ kick folds into a local
// phase) and produce a normalized distribution.
func TestSpectatorCrosstalkFolded(t *testing.T) {
	m := noisyMachine(29)
	c := circuit.New(14, 2)
	// Qubits 1,2 are coupled; both have several other neighbours (0, 13,
	// 3, 12) that stay untouched.
	c.H(1).CX(1, 2).Measure(1, 0).Measure(2, 1)
	d, err := m.RunDist(c, 2000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Fatalf("mass = %v", d.Sum())
	}
}

// TestCrosstalkAffectsActiveNeighbours: with only crosstalk enabled, a
// Ramsey-style circuit on a qubit adjacent to a firing CX shows phase
// corruption relative to a far-away CX.
func TestCrosstalkAffectsActiveNeighbours(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.IdealProfile(), rng.New(1))
	for e := range cal.CrossZZ {
		cal.CrossZZ[e] = 0.6
	}
	m := New(cal)
	// Ramsey on qubit 2 while CX fires on its neighbours (1,13)... use edge (1,13).
	near := circuit.New(14, 1)
	near.H(2).X(1).CX(1, 13).CX(1, 13).H(2).Measure(2, 0)
	far := circuit.New(14, 1)
	far.H(2).X(7).CX(7, 8).CX(7, 8).H(2).Measure(2, 0)
	dNear, err := m.RunDist(near, 8000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := m.RunDist(far, 8000, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pNear := dNear.P(bitstr.MustParse("1"))
	pFar := dFar.P(bitstr.MustParse("1"))
	if pFar > 0.02 {
		t.Fatalf("far CX corrupted Ramsey qubit: P(1) = %v", pFar)
	}
	if pNear < 0.05 {
		t.Fatalf("adjacent CX crosstalk invisible: P(1) = %v", pNear)
	}
}

// TestBarrierIdleDecoherence: idling behind a barrier must cost T1 decay.
func TestBarrierIdleDecoherence(t *testing.T) {
	cal := device.Generate(device.Linear(2), device.IdealProfile(), rng.New(1))
	cal.T1us = []float64{1, 1} // very short T1: 1000ns
	cal.T2us = []float64{2, 2}
	m := New(cal)
	// Qubit 0 in |1>; qubit 1 executes 30 gates (3000 ns) while a barrier
	// pins qubit 0 behind them; ~95% decay expected.
	c := circuit.New(2, 1)
	c.X(0)
	for i := 0; i < 30; i++ {
		c.X(1)
	}
	c.Barrier()
	c.Measure(0, 0)
	d, err := m.RunDist(c, 20000, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	p1 := d.P(bitstr.MustParse("1"))
	if p1 > 0.3 {
		t.Fatalf("idle decoherence missing: P(1) = %v", p1)
	}
}

func TestMergedCountsAcrossMappings(t *testing.T) {
	// Sanity for the EDM workflow: counts from two mappings merge into a
	// single histogram over the same classical register.
	m := noisyMachine(31)
	logical := circuit.New(2, 2)
	logical.H(0).CX(0, 1).MeasureAll()
	e1 := logical.Remap([]int{0, 1}, 14)
	e2 := logical.Remap([]int{8, 9}, 14)
	c1, err := m.Run(e1, 1000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Run(e2, 1000, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	c1.Merge(c2)
	if c1.Total() != 2000 {
		t.Fatalf("merged total = %d", c1.Total())
	}
	_ = dist.Merge([]*dist.Dist{c1.Dist()})
}

// TestParallelMatchesSerial: the striped parallel execution path must be
// bit-identical to the serial path, because every trial derives its RNG
// stream from its index alone.
func TestParallelMatchesSerial(t *testing.T) {
	m := noisyMachine(41)
	c := circuit.New(14, 3)
	c.H(0).CX(0, 1).CX(1, 2).T(2).H(2).Measure(0, 0).Measure(1, 1).Measure(2, 2)

	old := runtime.GOMAXPROCS(1)
	serial, err := m.Run(c, 3000, rng.New(77))
	if err != nil {
		runtime.GOMAXPROCS(old)
		t.Fatal(err)
	}
	// Force several workers even on a single-core machine so the striped
	// path genuinely executes.
	runtime.GOMAXPROCS(4)
	parallel, err := m.Run(c, 3000, rng.New(77))
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Total() != parallel.Total() {
		t.Fatalf("totals differ: %d vs %d", serial.Total(), parallel.Total())
	}
	if !serial.Dist().Equal(parallel.Dist(), 0) {
		t.Fatal("parallel execution changed the histogram")
	}
}
