package backend

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/stabilizer"
	"edm/internal/statevec"
)

// deepCliffordChain builds a dense Clifford circuit on a Linear(n)
// device: `layers` rounds of single-qubit Cliffords followed by a CX
// brick, ending in a full measurement. Deeper than the property-test
// circuits on purpose — the benchmark should measure sustained gate
// throughput, not per-trial setup.
func deepCliffordChain(n, layers int, r *rng.RNG) *circuit.Circuit {
	c := circuit.New(n, n)
	oneQ := []func(q int){
		func(q int) { c.H(q) },
		func(q int) { c.S(q) },
		func(q int) { c.X(q) },
		func(q int) { c.Z(q) },
	}
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			oneQ[r.Intn(len(oneQ))](q)
		}
		for q := l % 2; q+1 < n; q += 2 {
			c.CX(q, q+1)
		}
	}
	c.MeasureAll()
	return c
}

// TestStabilizerBenchReport regenerates BENCH_stabilizer.json (via
// scripts/bench_stabilizer.sh): per-trial throughput of the tableau
// engine against the tape-tree statevector engine on Clifford-clean
// schedules, plus tableau-only throughput on the heavy-hex devices no
// statevector in this process could represent. Keeping the measurement
// in Go lets the report assert outcome byte-identity between the
// engines in the same process that times them, and enforce the >= 10x
// q12 acceptance bar. It skips unless EDM_BENCH_STABILIZER_OUT names
// the output file.
func TestStabilizerBenchReport(t *testing.T) {
	out := os.Getenv("EDM_BENCH_STABILIZER_OUT")
	if out == "" {
		t.Skip("set EDM_BENCH_STABILIZER_OUT to write the stabilizer benchmark report")
	}

	type row struct {
		Case            string  `json:"case"`
		Qubits          int     `json:"qubits"`
		Steps           int     `json:"schedule_steps"`
		Trials          int     `json:"trials"`
		StatevecTrialsS float64 `json:"statevec_trials_per_s,omitempty"`
		StabTrialsS     float64 `json:"stab_trials_per_s"`
		Speedup         float64 `json:"speedup,omitempty"`
		Words           int     `json:"tableau_words"`
		SnapSteps       int     `json:"snapshot_steps"`
		Identical       bool    `json:"counts_identical"`
	}
	report := struct {
		Date       string `json:"date"`
		Go         string `json:"go"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Note       string `json:"note"`
		Headline   string `json:"headline"`
		Rows       []row  `json:"rows"`
	}{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "per-trial execution of fully-Clifford compiled schedules: Aaronson-Gottesman " +
			"tableau engine (DESIGN.md section 13) vs the tape-tree statevector engine " +
			"(EngineStatevector) on the same programs; heavy-hex rows are tableau-only " +
			"because the devices exceed the statevector width limit",
	}

	// Head-to-head cases: both engines run the same compiled program.
	for _, tc := range []struct {
		nq, layers, trials int
	}{
		{8, 40, 30000},
		{12, 40, 12000},
	} {
		m := cliffordMachine(tc.nq, uint64(tc.nq))
		c := deepCliffordChain(tc.nq, tc.layers, rng.New(uint64(100+tc.nq)))
		prog, err := m.getProgram(c)
		if err != nil {
			t.Fatal(err)
		}
		sp := m.stabFor(prog).plan
		if sp == nil {
			t.Fatalf("q%d: Clifford-clean schedule not converted", tc.nq)
		}
		plan := m.planFor(prog)
		if plan == nil {
			t.Fatalf("q%d: no tape-tree plan", tc.nq)
		}
		scratch := statevec.NewState(prog.nLocal)
		tab := stabilizer.New(prog.nLocal)
		trueBits := make([]int, prog.numClbits)
		root := rng.New(11)
		var tally engineTally

		identical := true
		const accounting = 2000
		for trial := 0; trial < accounting; trial++ {
			a := m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
			b := m.runStabTrial(prog, sp, tab, trueBits, root.DeriveN("trial", trial))
			if a != b {
				identical = false
			}
		}
		if !identical {
			t.Errorf("q%d: engines disagree on outcome bits", tc.nq)
		}

		start := time.Now()
		for trial := 0; trial < tc.trials; trial++ {
			m.runTrialShared(prog, plan, scratch, trueBits, root, trial, &tally)
		}
		svS := float64(tc.trials) / time.Since(start).Seconds()

		start = time.Now()
		for trial := 0; trial < tc.trials; trial++ {
			m.runStabTrial(prog, sp, tab, trueBits, root.DeriveN("trial", trial))
		}
		stS := float64(tc.trials) / time.Since(start).Seconds()

		report.Rows = append(report.Rows, row{
			Case:            fmt.Sprintf("clifford/q%d", tc.nq),
			Qubits:          tc.nq,
			Steps:           len(sp.steps),
			Trials:          tc.trials,
			StatevecTrialsS: svS,
			StabTrialsS:     stS,
			Speedup:         stS / svS,
			Words:           (prog.nLocal + 63) / 64,
			SnapSteps:       sp.snapSteps,
			Identical:       identical,
		})
	}

	// Tableau-only cases: heavy-hex GHZ over the full device, beyond the
	// statevector width limit.
	for _, tc := range []struct {
		name   string
		topo   *device.Topology
		trials int
	}{
		{"falcon27", device.HeavyHexFalcon27(), 20000},
		{"eagle127", device.HeavyHexEagle127(), 4000},
	} {
		cal := device.Generate(tc.topo, device.HeavyHexProfile(), rng.New(7))
		m := New(cal)
		measured := tc.topo.Qubits
		if measured > 48 {
			measured = 48
		}
		c := ghzOnTopo(tc.topo, measured)
		prog, err := m.getProgram(c)
		if err != nil {
			t.Fatal(err)
		}
		sp := m.stabFor(prog).plan
		if sp == nil {
			t.Fatalf("%s: heavy-hex GHZ not converted", tc.name)
		}
		tab := stabilizer.New(prog.nLocal)
		trueBits := make([]int, prog.numClbits)
		root := rng.New(11)

		start := time.Now()
		for trial := 0; trial < tc.trials; trial++ {
			m.runStabTrial(prog, sp, tab, trueBits, root.DeriveN("trial", trial))
		}
		stS := float64(tc.trials) / time.Since(start).Seconds()

		report.Rows = append(report.Rows, row{
			Case:        "heavyhex/" + tc.name,
			Qubits:      prog.nLocal,
			Steps:       len(sp.steps),
			Trials:      tc.trials,
			StabTrialsS: stS,
			Words:       (prog.nLocal + 63) / 64,
			SnapSteps:   sp.snapSteps,
			Identical:   true,
		})
	}

	var head *row
	for i := range report.Rows {
		if report.Rows[i].Case == "clifford/q12" {
			head = &report.Rows[i]
		}
	}
	report.Headline = fmt.Sprintf("clifford/q12: %.1fx trials/s vs tape-tree statevector (%.0f vs %.0f)",
		head.Speedup, head.StabTrialsS, head.StatevecTrialsS)
	if head.Speedup < 10 {
		t.Errorf("headline speedup %.1fx below the 10x acceptance bar", head.Speedup)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", report.Headline)
}
