package backend

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"edm/internal/dist"
	"edm/internal/pool"
	"edm/internal/rng"
)

// Two-phase scheduler for the batched replay engine.
//
// Phase A (walk): workers claim chunks of the trial range from an
// atomic cursor and burn each trial's stream against the tape tree.
// Fully dominant trials finish right there — readout draws against the
// leaf's bits, observed into the worker's private histogram. Divergent
// trials are cheap to classify (no state work) and are recorded as
// (trial, checkpoint) pairs.
//
// Between phases the coordinator buckets divergent trials by their
// restart checkpoint — checkpoints are interned per plan, so pointer
// identity keys (tree path, tightest checkpoint, tape segment) at once
// — sorts each bucket's trials, and fragments big buckets into units no
// larger than the unit lane budget (maxLanesFor).
//
// Phase B (replay): units are dealt round-robin to per-worker deques.
// A worker pops from its own deque; an empty worker steals the front
// half of the first non-empty victim's deque in one batch. Units that
// overflow their lane budget push continuation units onto the owner's
// deque. An outstanding-unit counter drives termination.
//
// Determinism: every trial draws from its own derived stream positioned
// exactly where the sequential engine would position it, and the final
// histogram is a merge of integer counts, which is commutative — so
// Counts are byte-identical to the legacy loop at any GOMAXPROCS and
// any steal interleaving.
//
// Workers gate through the process-wide compute-token pool within each
// phase and hold no token across the inter-phase barrier, so concurrent
// Runs cannot deadlock on tokens.

// divTrial records one divergent trial found in phase A.
type divTrial struct {
	t  int
	ck *checkpoint
}

// unitDeque is one worker's queue of replay units. A mutex (not a
// lock-free deque) is enough: pops and steals are per-unit, and a unit
// amortizes hundreds of gate applications.
type unitDeque struct {
	mu    sync.Mutex
	units []replayUnit
}

func (d *unitDeque) push(us ...replayUnit) {
	d.mu.Lock()
	d.units = append(d.units, us...)
	d.mu.Unlock()
}

func (d *unitDeque) pop() (replayUnit, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.units)
	if n == 0 {
		return replayUnit{}, false
	}
	u := d.units[n-1]
	d.units[n-1] = replayUnit{}
	d.units = d.units[:n-1]
	return u, true
}

// stealHalf appends the front ceil(n/2) units of the deque to buf and
// removes them. The front is the victim's oldest work — the opposite
// end from its own pops, so contention on hot units is minimal.
func (d *unitDeque) stealHalf(buf []replayUnit) []replayUnit {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.units)
	if n == 0 {
		return buf
	}
	k := (n + 1) / 2
	buf = append(buf, d.units[:k]...)
	rem := copy(d.units, d.units[k:])
	for i := rem; i < n; i++ {
		d.units[i] = replayUnit{}
	}
	d.units = d.units[:rem]
	return buf
}

// runBatched runs `trials` trials of prog through the batched replay
// engine. Counts are byte-identical to the sequential engines.
func (m *Machine) runBatched(prog *program, plan *prefixPlan, trials int, r *rng.RNG, cancel *atomic.Bool) *dist.Counts {
	workers := runtime.GOMAXPROCS(0)
	if trials < parallelThreshold || workers < 2 {
		workers = 1
	}

	// Phase A: tape-tree walks, dominant trials completed inline.
	partial := make([]*dist.Counts, workers)
	divLists := make([][]divTrial, workers)
	var cursor atomic.Int64
	const chunk = 256
	var wg sync.WaitGroup
	phaseA := func(w int) {
		defer wg.Done()
		pool.Acquire()
		defer pool.Release()
		counts := dist.NewCounts(prog.numClbits)
		trueBits := make([]int, prog.numClbits)
		var tally engineTally
		var divs []divTrial
		for {
			if cancel != nil && cancel.Load() {
				break
			}
			start := int(cursor.Add(chunk)) - chunk
			if start >= trials {
				break
			}
			end := start + chunk
			if end > trials {
				end = trials
			}
			for t := start; t < end; t++ {
				rt := r.DeriveN("trial", t)
				node, divStep, _ := walkTape(plan, rt)
				if divStep < 0 {
					copy(trueBits, node.domBits)
					counts.Observe(m.applyReadout(prog, trueBits, rt))
					tally.full++
				} else {
					divs = append(divs, divTrial{t: t, ck: node.checkpointBefore(divStep)})
					tally.div++
				}
			}
		}
		tally.flush()
		partial[w] = counts
		divLists[w] = divs
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go phaseA(w)
	}
	wg.Wait()

	// Bucket by checkpoint and fragment into units of at most the lane
	// budget, so no unit can run out of lanes however its groups split.
	maxLanes := maxLanesFor(prog.nLocal)
	buckets := make(map[*checkpoint][]int)
	for _, divs := range divLists {
		for _, d := range divs {
			buckets[d.ck] = append(buckets[d.ck], d.t)
		}
	}
	var units []replayUnit
	for ck, ids := range buckets {
		sort.Ints(ids)
		for len(ids) > maxLanes {
			units = append(units, replayUnit{ck: ck, ids: ids[:maxLanes:maxLanes]})
			ids = ids[maxLanes:]
		}
		units = append(units, replayUnit{ck: ck, ids: ids})
	}
	if len(buckets) > 0 {
		engineStats.batchBuckets.Add(int64(len(buckets)))
	}
	// Map order is random; deal units in a fixed order so the schedule
	// (though not the result — counts merge commutatively) is stable.
	sort.Slice(units, func(i, j int) bool { return units[i].ids[0] < units[j].ids[0] })

	merge := func() *dist.Counts {
		counts := dist.NewCounts(prog.numClbits)
		for _, p := range partial {
			counts.Merge(p)
		}
		return counts
	}
	if len(units) == 0 {
		return merge()
	}

	// Phase B: batched suffix replay with work stealing.
	dq := make([]unitDeque, workers)
	for i, u := range units {
		dq[i%workers].units = append(dq[i%workers].units, u)
	}
	var outstanding atomic.Int64
	outstanding.Store(int64(len(units)))
	phaseB := func(w int) {
		defer wg.Done()
		pool.Acquire()
		defer pool.Release()
		counts := partial[w] // merge replay outcomes into the walk histogram
		var tally batchTally
		var stolen []replayUnit
		var defers []replayUnit
		for {
			if cancel != nil && cancel.Load() {
				break
			}
			u, ok := dq[w].pop()
			if !ok {
				stolen = stolen[:0]
				for v := 0; v < workers && len(stolen) == 0; v++ {
					if v != w {
						stolen = dq[v].stealHalf(stolen)
					}
				}
				if len(stolen) == 0 {
					if outstanding.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				tally.steals += int64(len(stolen))
				dq[w].push(stolen...)
				continue
			}
			defers = defers[:0]
			m.processUnit(prog, u, r, counts, &defers, &tally, maxLanes, cancel)
			if len(defers) > 0 {
				// Increment before the matching decrement so outstanding
				// never dips to zero while continuations exist.
				outstanding.Add(int64(len(defers)))
				dq[w].push(defers...)
			}
			outstanding.Add(-1)
		}
		tally.flush()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go phaseB(w)
	}
	wg.Wait()
	return merge()
}
