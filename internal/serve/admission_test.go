package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// admit tries Acquire on a background goroutine and returns a channel
// delivering its result.
func admit(a *Admission, ctx context.Context, tenant string) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- a.Acquire(ctx, tenant) }()
	return ch
}

func TestAdmissionCapacity(t *testing.T) {
	a, err := NewAdmission(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	blocked := admit(a, ctx, "a")
	select {
	case err := <-blocked:
		t.Fatalf("third acquire got through a 2-slot controller: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release()
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Admitted != 3 || s.InFlight != 2 || s.Queued != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a, err := NewAdmission(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	queued := admit(a, ctx, "a")
	time.Sleep(10 * time.Millisecond) // let the waiter enqueue
	if err := a.Acquire(ctx, "b"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue acquire err = %v, want ErrQueueFull", err)
	}
	if s := a.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	a.Release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a, err := NewAdmission(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := admit(a, ctx, "b")
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want Canceled", err)
	}
	// The abandoned waiter must not absorb the released slot.
	a.Release()
	if err := a.Acquire(context.Background(), "c"); err != nil {
		t.Fatalf("slot leaked to a cancelled waiter: %v", err)
	}
	a.Release()
	if s := a.Stats(); s.Cancelled != 1 || s.InFlight != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestAdmissionRoundRobinFairness: with tenant a flooding the queue,
// tenant b's lone job is admitted on the second release, not after all of
// a's backlog.
func TestAdmissionRoundRobinFairness(t *testing.T) {
	a, err := NewAdmission(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan string, 8)
	enqueue := func(tenant string) {
		go func() {
			if err := a.Acquire(ctx, tenant); err != nil {
				t.Errorf("acquire %s: %v", tenant, err)
				return
			}
			admitted <- tenant
		}()
	}
	// Enqueue deterministically: a1, a2, a3, then b.
	queued := 0
	for _, tenant := range []string{"a", "a", "a", "b"} {
		enqueue(tenant)
		queued++
		for {
			time.Sleep(time.Millisecond)
			if s := a.Stats(); s.Queued == queued {
				break
			}
		}
	}
	// Each Release hands the slot to exactly one waiter, so reading one
	// admission per release observes the rotation synchronously.
	var order []string
	for i := 0; i < queued; i++ {
		a.Release()
		order = append(order, <-admitted)
	}
	a.Release()
	// Rotation: a's head first (a was queued first), then b, then a's rest.
	want := []string{"a", "b", "a", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
	if s := a.Stats(); s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNewAdmissionValidation(t *testing.T) {
	if _, err := NewAdmission(0, 4); err == nil {
		t.Fatal("capacity 0 must error")
	}
	if _, err := NewAdmission(2, -1); err == nil {
		t.Fatal("negative queue must error")
	}
}
