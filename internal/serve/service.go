package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/memo"
	"edm/internal/rng"
)

// Config fixes a service instance's device, determinism anchor and
// resource bounds. The zero value is unusable; start from DefaultConfig.
type Config struct {
	// Device names the target device (see device.ByName): melbourne
	// (default), tokyo, falcon27 or eagle127. The heavy-hex devices run
	// Clifford-clean calibrations, so wide jobs route to the stabilizer
	// engine instead of a statevector the process could never allocate.
	Device string
	// CalSeed anchors the calibration stream. Window i's compile-time
	// calibration and drifted runtime truth derive from it exactly as
	// experiment.Setup derives a round: root = rng.New(CalSeed),
	// cal = Generate(topo, profile, root.DeriveN("calibration", i)),
	// runtime = cal.Drift(Drift, root.DeriveN("drift", i)). Job results
	// are therefore pure functions of (CalSeed, Drift, window, job).
	CalSeed uint64
	// Drift scales how far the runtime calibration wanders from the
	// compile-time data within a window.
	Drift float64
	// Window is the initial calibration window index.
	Window int
	// Tol is the relative tolerance handed to mapper.Tracking on window
	// advances; 0 keeps RecompileChecked exact regardless.
	Tol float64

	// Shards and ShardCap size the job-result tier.
	Shards   int
	ShardCap int
	// TTL bounds how long a cached job result may serve before the next
	// request recomputes it in place; 0 disables time-based expiry.
	TTL time.Duration

	// MaxConcurrent and MaxQueue bound admission.
	MaxConcurrent int
	MaxQueue      int
	// JobTimeout caps one job's wall-clock time; 0 disables.
	JobTimeout time.Duration
}

// DefaultConfig matches the batch campaign's anchors (seed 2019, drift
// 0.2, IBMQ-14) with serving-scale resource bounds.
func DefaultConfig() Config {
	return Config{
		CalSeed:       2019,
		Drift:         0.2,
		Shards:        8,
		ShardCap:      256,
		TTL:           10 * time.Minute,
		MaxConcurrent: 4,
		MaxQueue:      64,
		JobTimeout:    2 * time.Minute,
	}
}

// Service executes jobs against one tracked device. It owns three reuse
// layers: the job-result Tier (whole jobs), the Tracking compiler's
// generation-tagged candidate pools (one compile per circuit fingerprint
// per calibration generation, upgraded incrementally across windows), and
// the window machine's trial-run cache. All three deduplicate via memo's
// singleflight, so any number of concurrent duplicate jobs cost one
// compile and one simulation.
type Service struct {
	cfg Config

	// mu orders window advances against job compiles: RunJob's compile
	// section holds it shared, Advance holds it exclusively
	// (mapper.Tracking forbids Advance racing TopK).
	mu     sync.RWMutex
	track  *mapper.Tracking
	mach   *backend.Machine
	window int

	tier *Tier
	adm  *Admission

	// life is cancelled by Close; detached builds run under it so a
	// dying service stops orphaned work, while request contexts only
	// detach waiters.
	life context.Context
	stop context.CancelFunc

	// now is the TTL clock, swappable in tests.
	now func() time.Time
}

// NewService builds a service at cfg.Window. Configuration errors (shard
// sizes, admission bounds) return as errors.
func NewService(cfg Config) (*Service, error) {
	tier, err := NewTier(cfg.Shards, cfg.ShardCap)
	if err != nil {
		return nil, err
	}
	adm, err := NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue)
	if err != nil {
		return nil, err
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("serve: window %d must be non-negative", cfg.Window)
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("serve: ttl %v must be non-negative", cfg.TTL)
	}
	if _, _, err := device.ByName(cfg.Device); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cal, runtimeCal := windowCals(cfg, cfg.Window)
	life, stop := context.WithCancel(context.Background())
	s := &Service{
		cfg:    cfg,
		track:  mapper.NewTracking(cal, mapper.RecompileChecked),
		mach:   newWindowMachine(runtimeCal),
		window: cfg.Window,
		tier:   tier,
		adm:    adm,
		life:   life,
		stop:   stop,
		now:    time.Now,
	}
	return s, nil
}

// windowCals materializes window i's compile-time calibration and its
// drifted runtime truth, exactly as the batch campaign does per round.
// cfg.Device must already be validated (NewService checks it); an
// unknown name here is a programming error, not user input.
func windowCals(cfg Config, i int) (cal, runtimeCal *device.Calibration) {
	topo, prof, err := device.ByName(cfg.Device)
	if err != nil {
		panic(err)
	}
	root := rng.New(cfg.CalSeed)
	cal = device.Generate(topo, prof, root.DeriveN("calibration", i))
	runtimeCal = cal.Drift(cfg.Drift, root.DeriveN("drift", i))
	return cal, runtimeCal
}

// newWindowMachine builds the execution machine for a window's runtime
// calibration, with whole-run memoization on.
func newWindowMachine(runtimeCal *device.Calibration) *backend.Machine {
	m := backend.New(runtimeCal)
	m.EnableRunCache()
	return m
}

// Close stops the service: detached builds see a cancelled context and
// fail fast instead of simulating for nobody.
func (s *Service) Close() { s.stop() }

// DeviceName returns the canonical name of the configured device
// ("melbourne" for the empty default).
func (s *Service) DeviceName() string {
	if s.cfg.Device == "" {
		return "melbourne"
	}
	return s.cfg.Device
}

// Window returns the current calibration window index.
func (s *Service) Window() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.window
}

// Advance moves the service to the next calibration window: the tracked
// compiler diffs the new calibration and upgrades its cached pools
// incrementally (reused/rescored/rerouted, not flushed), the machine is
// rebuilt on the drifted runtime truth, and the result tier's generation
// tag moves so cached jobs recompute in place on next access. It blocks
// until in-flight compiles finish and returns the new window index.
func (s *Service) Advance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window++
	cal, runtimeCal := windowCals(s.cfg, s.window)
	s.track.Advance(cal, s.cfg.Tol)
	s.mach = newWindowMachine(runtimeCal)
	return s.window
}

// genTag is the result tier's generation: the compiler generation (bumped
// by Advance) mixed with the TTL epoch. memo.GetGenCtx replaces an entry
// whose tag is stale in place, so both drift and expiry cost one rebuild
// of the touched entry and nothing else.
func (s *Service) genTag() uint64 {
	s.mu.RLock()
	gen := s.track.Generation()
	s.mu.RUnlock()
	h := memo.Mix(memo.Seed(), gen)
	if s.cfg.TTL > 0 {
		h = memo.Mix(h, uint64(s.now().UnixNano()/int64(s.cfg.TTL)))
	}
	return h
}

// RunJob validates and executes one job. Malformed specs and unparsable
// circuits return ErrBadJob; a ctx that expires while an identical job is
// still building detaches with ctx.Err() and leaves the build to complete
// for whoever asks next. Admission is the caller's concern (the HTTP
// layer acquires before calling); RunJob itself only dedupes and runs.
func (s *Service) RunJob(ctx context.Context, spec *JobSpec) (*JobResult, error) {
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	circ, err := spec.buildCircuit()
	if err != nil {
		return nil, err
	}
	// Histogram keys are single machine words; a job that measures more
	// classical bits than bitstr can hold is a payload problem, caught
	// here so wide-device (127-qubit) inline circuits fail with a 4xx
	// instead of surfacing as an execution error.
	if circ.NumClbits > bitstr.MaxBits {
		return nil, badJob("circuit measures %d classical bits, histogram limit %d", circ.NumClbits, bitstr.MaxBits)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fp := circ.Fingerprint()
	out, err := s.tier.Do(ctx, spec.key(fp), s.genTag(), func() *jobOutcome {
		return s.execute(spec, circ, fp)
	})
	if err != nil {
		return nil, err
	}
	return out.res, out.err
}

// execute runs a job uncached under the service's lifetime context. It is
// always invoked from a detached tier build, so it must not touch the
// request context — the job it computes outlives any one requester.
func (s *Service) execute(spec *JobSpec, circ *circuit.Circuit, fp uint64) *jobOutcome {
	s.mu.RLock()
	track, mach, window := s.track, s.mach, s.window
	execs, err := track.TopKCtx(s.life, circ, spec.K)
	s.mu.RUnlock()
	if err != nil {
		// Compile failures describe the job (circuit too large for the
		// device, no isomorphic placement): deterministic, cacheable, 4xx.
		return &jobOutcome{err: badJob("compile: %v", err)}
	}
	runner := &core.Runner{Machine: mach}
	res, err := runner.RunExecutablesCtx(s.life, execs, spec.config(), rng.New(spec.Seed))
	if err != nil {
		return &jobOutcome{err: fmt.Errorf("serve: execute: %w", err)}
	}
	return &jobOutcome{res: newJobResult(spec, fp, window, res)}
}

// Metrics is the live counter snapshot behind /metrics and /cachestats.
// Engine is the process-wide trajectory-engine snapshot (stabilizer
// routing, prefix plans); in the single-service edmd process it reflects
// this service's machines.
type Metrics struct {
	Window    int                   `json:"window"`
	Device    string                `json:"device"`
	Admission AdmissionStats        `json:"admission"`
	Tier      memo.Stats            `json:"tier"`
	TierShard []memo.Stats          `json:"tier_shards,omitempty"`
	Pools     memo.Stats            `json:"compile_pools"`
	Recompile mapper.RecompileStats `json:"recompile"`
	Runs      memo.Stats            `json:"runs"`
	Engine    backend.EngineStats   `json:"engine"`
}

// Snapshot gathers the service's counters.
func (s *Service) Snapshot(withShards bool) Metrics {
	s.mu.RLock()
	window := s.window
	pools := s.track.PoolStats()
	rec := s.track.Stats()
	runs := s.mach.RunCacheStats()
	s.mu.RUnlock()
	m := Metrics{
		Window:    window,
		Device:    s.DeviceName(),
		Admission: s.adm.Stats(),
		Tier:      s.tier.Stats(),
		Pools:     pools,
		Recompile: rec,
		Runs:      runs,
		Engine:    backend.EngineStatsSnapshot(),
	}
	if withShards {
		m.TierShard = s.tier.ShardStats()
	}
	return m
}

// PoolStats exposes the compile-pool counters for tests asserting the
// one-compile-per-(fingerprint, generation) contract.
func (s *Service) PoolStats() memo.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.track.PoolStats()
}

// TierStats exposes the aggregated result-tier counters.
func (s *Service) TierStats() memo.Stats { return s.tier.Stats() }

// Admission exposes the admission controller for the HTTP layer.
func (s *Service) Admission() *Admission { return s.adm }
