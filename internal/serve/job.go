// Package serve is the fault-tolerant compile+run service behind cmd/edmd
// (DESIGN.md §12). It accepts circuit jobs — a named workload or an inline
// circuit, a trial budget, a seed and a merge policy — deduplicates them
// through the repository's fingerprint-keyed memoization layers, and
// returns merged EDM/WEDM distributions under the same determinism
// contract as the batch CLI: a job's result is a pure function of
// (service window, circuit fingerprint, policy, k, trials, seed), so the
// bytes served over HTTP are identical to the bytes `edm run` prints for
// the same job, and identical across cache hits, misses and restarts.
package serve

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"edm/internal/circuit"
	"edm/internal/core"
	"edm/internal/memo"
	"edm/internal/workloads"
)

// ErrBadJob marks errors caused by the job payload rather than the
// service: malformed specs, unparsable circuits, circuits the device
// cannot hold. The HTTP layer maps errors.Is(err, ErrBadJob) to a 4xx
// status; everything else is a 5xx. This is the boundary satellite 1 is
// about: user input must surface as an error value, never a panic.
var ErrBadJob = errors.New("bad job")

// badJob wraps err (or a formatted message) as an ErrBadJob.
func badJob(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadJob, fmt.Sprintf(format, args...))
}

// Job size limits. These bound what one request can cost before admission
// control even sees it; they are service protection, not physics.
const (
	// MaxTrials caps a single job's trial budget (64x the paper's 16384).
	MaxTrials = 1 << 20
	// MaxK caps the ensemble size.
	MaxK = 64
	// MaxCircuitBytes caps an inline circuit source.
	MaxCircuitBytes = 1 << 20
)

// JobSpec is the wire format of one job. Exactly one of Workload and
// Circuit must be set.
type JobSpec struct {
	// Workload names one of the paper's Table-1 benchmarks (bv-6,
	// qaoa-5, adder, ...).
	Workload string `json:"workload,omitempty"`
	// Circuit is an inline circuit in the repo text format (default) or
	// OpenQASM 2.0, per Format.
	Circuit string `json:"circuit,omitempty"`
	Format  string `json:"format,omitempty"` // "text" (default) or "qasm"
	// K is the ensemble size (default 4, the paper's). Ignored for the
	// "best" policy, which is always single-mapping.
	K int `json:"k,omitempty"`
	// Trials is the total trial budget, split across members. Required.
	Trials int `json:"trials"`
	// Seed is the job's RNG seed; same (window, job, seed) ⇒ same bytes.
	Seed uint64 `json:"seed"`
	// Policy selects the merge rule: "edm" (default), "wedm", or "best"
	// (the single-best-mapping baseline).
	Policy string `json:"policy,omitempty"`
	// UniformityFilter is core.Config.UniformityFilter (0 disables).
	UniformityFilter float64 `json:"uniformity_filter,omitempty"`
	// Tenant is the fairness bucket for admission control; empty means
	// the anonymous bucket.
	Tenant string `json:"tenant,omitempty"`
}

// policies maps the wire policy names to their merge weighting. "best" is
// handled separately (it pins K to 1).
var policies = map[string]core.Weighting{
	"edm":  core.WeightUniform,
	"wedm": core.WeightDivergence,
	"best": core.WeightUniform,
}

// normalize fills the spec's defaults in place.
func (s *JobSpec) normalize() {
	if s.Policy == "" {
		s.Policy = "edm"
	}
	if s.Format == "" {
		s.Format = "text"
	}
	if s.K == 0 {
		s.K = 4
	}
	if s.Policy == "best" {
		s.K = 1
	}
}

// Validate checks the normalized spec and returns an ErrBadJob describing
// the first problem found, or nil.
func (s *JobSpec) Validate() error {
	if (s.Workload == "") == (s.Circuit == "") {
		return badJob("exactly one of workload and circuit must be set")
	}
	if len(s.Circuit) > MaxCircuitBytes {
		return badJob("inline circuit is %d bytes, limit %d", len(s.Circuit), MaxCircuitBytes)
	}
	if s.Format != "text" && s.Format != "qasm" {
		return badJob("unknown circuit format %q (want text or qasm)", s.Format)
	}
	if _, ok := policies[s.Policy]; !ok {
		return badJob("unknown policy %q (want edm, wedm or best)", s.Policy)
	}
	if s.K < 1 || s.K > MaxK {
		return badJob("ensemble size %d out of range [1, %d]", s.K, MaxK)
	}
	if s.Trials < s.K {
		return badJob("%d trials cannot cover %d members", s.Trials, s.K)
	}
	if s.Trials > MaxTrials {
		return badJob("%d trials over the per-job limit %d", s.Trials, MaxTrials)
	}
	if s.UniformityFilter < 0 || math.IsNaN(s.UniformityFilter) || math.IsInf(s.UniformityFilter, 0) {
		return badJob("uniformity filter %v must be a finite non-negative number", s.UniformityFilter)
	}
	return nil
}

// buildCircuit resolves the spec to a logical circuit. Parse and lookup
// failures are ErrBadJob: they describe the payload, not the service.
func (s *JobSpec) buildCircuit() (*circuit.Circuit, error) {
	if s.Workload != "" {
		w, ok := workloads.ByName(s.Workload)
		if !ok {
			names := make([]string, 0, 9)
			for _, x := range workloads.All() {
				names = append(names, x.Name)
			}
			return nil, badJob("unknown workload %q (have %s)", s.Workload, strings.Join(names, ", "))
		}
		return w.Circuit, nil
	}
	var (
		c   *circuit.Circuit
		err error
	)
	if s.Format == "qasm" {
		c, err = circuit.ParseQASM(s.Circuit)
	} else {
		c, err = circuit.ParseText(s.Circuit)
	}
	if err != nil {
		return nil, badJob("parse circuit: %v", err)
	}
	return c, nil
}

// config translates the spec into the core ensemble configuration.
func (s *JobSpec) config() core.Config {
	return core.Config{
		K:                s.K,
		Trials:           s.Trials,
		Weighting:        policies[s.Policy],
		UniformityFilter: s.UniformityFilter,
	}
}

// key fingerprints everything the result depends on besides the service
// window: the circuit and every result-affecting spec field. Tenant and
// transport details deliberately stay out — two tenants posting the same
// job share one compile and one simulation.
func (s *JobSpec) key(fp uint64) uint64 {
	h := memo.Mix(memo.Seed(), fp)
	h = memo.Mix(h, uint64(s.K))
	h = memo.Mix(h, uint64(s.Trials))
	h = memo.Mix(h, s.Seed)
	h = memo.Mix(h, uint64(policyCode(s.Policy)))
	h = memo.Mix(h, math.Float64bits(s.UniformityFilter))
	return h
}

// policyCode gives each policy a stable small integer for key mixing.
func policyCode(p string) int {
	switch p {
	case "edm":
		return 0
	case "wedm":
		return 1
	case "best":
		return 2
	default:
		return -1
	}
}

// Outcome is one merged-distribution entry on the wire.
type Outcome struct {
	Outcome string  `json:"outcome"`
	P       float64 `json:"p"`
}

// MemberInfo summarizes one ensemble member on the wire.
type MemberInfo struct {
	ESP       float64 `json:"esp"`
	Weight    float64 `json:"weight"`
	Discarded bool    `json:"discarded,omitempty"`
}

// JobResult is the wire format of a completed job. Merged is sorted by
// decreasing probability with ties broken by outcome value — the same
// deterministic order dist.Sorted gives the paper's figures.
type JobResult struct {
	Workload    string       `json:"workload,omitempty"`
	Fingerprint string       `json:"fingerprint"`
	Window      int          `json:"window"`
	Policy      string       `json:"policy"`
	K           int          `json:"k"`
	Trials      int          `json:"trials"`
	Seed        uint64       `json:"seed"`
	Merged      []Outcome    `json:"merged"`
	Members     []MemberInfo `json:"members"`
}

// newJobResult flattens a core result into the wire shape.
func newJobResult(spec *JobSpec, fp uint64, window int, res *core.Result) *JobResult {
	jr := &JobResult{
		Workload:    spec.Workload,
		Fingerprint: fmt.Sprintf("%016x", fp),
		Window:      window,
		Policy:      spec.Policy,
		K:           spec.K,
		Trials:      spec.Trials,
		Seed:        spec.Seed,
	}
	for _, o := range res.Merged.Sorted() {
		jr.Merged = append(jr.Merged, Outcome{Outcome: o.Value.String(), P: o.P})
	}
	for i := range res.Members {
		m := &res.Members[i]
		jr.Members = append(jr.Members, MemberInfo{
			ESP:       m.Exec.ESP,
			Weight:    m.Weight,
			Discarded: m.Discarded,
		})
	}
	return jr
}

// Text renders the merged distribution in the canonical text format both
// `edm run` and the server's format=text responses emit: one
// "outcome probability" line per non-zero outcome, probabilities printed
// with strconv's shortest round-trip formatting so equality of results
// implies equality of bytes.
func (r *JobResult) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s window=%d policy=%s k=%d trials=%d seed=%d\n",
		r.name(), r.Window, r.Policy, r.K, r.Trials, r.Seed)
	for _, o := range r.Merged {
		sb.WriteString(o.Outcome)
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(o.P, 'g', -1, 64))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// name labels the result for the text header.
func (r *JobResult) name() string {
	if r.Workload != "" {
		return r.Workload
	}
	return "circuit:" + r.Fingerprint
}

// MostLikely returns the top outcome, or false for an empty distribution.
func (r *JobResult) MostLikely() (Outcome, bool) {
	if len(r.Merged) == 0 {
		return Outcome{}, false
	}
	return r.Merged[0], true
}
