package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	svc := mustService(t, testConfig())
	srv := NewServer(svc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

const jobBody = `{"workload":"bv-6","k":2,"trials":512,"seed":7,"policy":"wedm"}`

func TestServerJobJSON(t *testing.T) {
	_, ts := testServer(t)
	resp, body := post(t, ts.URL+"/v1/jobs", jobBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res JobResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if res.Workload != "bv-6" || res.Policy != "wedm" || res.K != 2 || len(res.Merged) == 0 {
		t.Fatalf("result = %+v", res)
	}
	var total float64
	for _, o := range res.Merged {
		total += o.P
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("merged distribution sums to %v", total)
	}
}

// TestServerJobTextMatchesRunJob: the format=text bytes equal what the
// service (and therefore `edm run`, which is the same code path) emits.
func TestServerJobTextMatchesRunJob(t *testing.T) {
	srv, ts := testServer(t)
	resp, body := post(t, ts.URL+"/v1/jobs?format=text", jobBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	want, err := srv.svc.RunJob(nil, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if body != want.Text() {
		t.Fatalf("served text differs from RunJob text:\n%q\nvs\n%q", body, want.Text())
	}
}

// TestServerMalformedPayloads: every malformed request is a 4xx response,
// never a dropped connection or a dead process.
func TestServerMalformedPayloads(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `@#!$%`, http.StatusBadRequest},
		{"wrong type", `[1,2,3]`, http.StatusBadRequest},
		{"unknown field", `{"workload":"bv-6","trials":100,"bogus":1}`, http.StatusBadRequest},
		{"no source", `{"trials":100}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope","trials":100}`, http.StatusBadRequest},
		{"bad circuit", `{"circuit":"qubits banana","trials":100}`, http.StatusBadRequest},
		{"too wide", `{"circuit":"qubits 20\ncbits 1\nh 0\nmeasure 0 -> 0\n","trials":100}`, http.StatusBadRequest},
		{"zero trials", `{"workload":"bv-6"}`, http.StatusBadRequest},
		{"bad policy", `{"workload":"bv-6","trials":100,"policy":"magic"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, body)
		}
	}
	// And the server is still alive afterwards.
	resp, _ := post(t, ts.URL+"/v1/jobs", jobBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after malformed payloads: %d", resp.StatusCode)
	}
}

func TestServerMethodsAndHealth(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, b)
	}
}

func TestServerAdvanceAndMetrics(t *testing.T) {
	_, ts := testServer(t)
	if resp, body := post(t, ts.URL+"/v1/jobs", jobBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("job: %d %s", resp.StatusCode, body)
	}
	resp, body := post(t, ts.URL+"/v1/advance", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: %d %s", resp.StatusCode, body)
	}
	var adv map[string]int
	if err := json.Unmarshal([]byte(body), &adv); err != nil || adv["window"] != 1 {
		t.Fatalf("advance body %q", body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		"edmd_window 1",
		"edmd_admission_admitted_total 1",
		"edmd_job_cache_misses_total 1",
		"edmd_compile_pool_misses_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cresp, err := http.Get(ts.URL + "/cachestats")
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	var m Metrics
	if err := json.Unmarshal(cb, &m); err != nil {
		t.Fatalf("cachestats decode: %v\n%s", err, cb)
	}
	if m.Window != 1 || len(m.TierShard) == 0 {
		t.Fatalf("cachestats = %+v", m)
	}
}

func TestServerQueueFull(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent, cfg.MaxQueue = 1, 0
	svc := mustService(t, cfg)
	// Saturate the only slot directly, then hit the endpoint.
	if err := svc.Admission().Acquire(nil, "hog"); err != nil {
		t.Fatal(err)
	}
	defer svc.Admission().Release()
	ts := httptest.NewServer(NewServer(svc).Handler())
	defer ts.Close()
	resp, body := post(t, ts.URL+"/v1/jobs", jobBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server = %d (%s), want 429", resp.StatusCode, body)
	}
}
