package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// maxBodyBytes bounds a request body: the largest legal inline circuit
// plus generous head-room for the rest of the spec.
const maxBodyBytes = MaxCircuitBytes + 64*1024

// Server is the HTTP front of a Service.
//
//	POST /v1/jobs      run a job (JSON JobSpec in, JSON JobResult out;
//	                   ?format=text returns the canonical text bytes)
//	POST /v1/advance   move to the next calibration window
//	GET  /healthz      liveness
//	GET  /metrics      plain-text counters
//	GET  /cachestats   JSON counters, per-shard included
//
// Malformed payloads are 400s, a full admission queue is 429, a job that
// outlives its deadline is 504, and a draining server turns new jobs away
// with 503 — the process itself never dies on input.
type Server struct {
	svc *Service
	// draining flips when shutdown starts; new jobs bounce with 503
	// while in-flight ones finish.
	draining atomic.Bool
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// ErrorLog receives request-level failures; nil discards them.
	ErrorLog io.Writer
}

// NewServer fronts svc.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, DrainTimeout: 30 * time.Second}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/advance", s.handleAdvance)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/cachestats", s.handleCacheStats)
	return mux
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// logf records a request-level failure.
func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		fmt.Fprintf(s.ErrorLog, "edmd: "+format+"\n", args...)
	}
}

// handleJobs is the job endpoint: decode, validate, admit, run, encode.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		errorJSON(w, http.StatusMethodNotAllowed, "POST a JobSpec to this endpoint")
		return
	}
	if s.draining.Load() {
		errorJSON(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	spec := new(JobSpec)
	if err := dec.Decode(spec); err != nil {
		errorJSON(w, http.StatusBadRequest, "decode job: %v", err)
		return
	}
	// Cheap validation before a queue slot is spent on the job.
	spec.normalize()
	if err := spec.Validate(); err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx := r.Context()
	if s.svc.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.svc.cfg.JobTimeout)
		defer cancel()
	}
	if err := s.svc.Admission().Acquire(ctx, spec.Tenant); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			errorJSON(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			errorJSON(w, http.StatusGatewayTimeout, "timed out waiting for admission")
		default: // client went away while queued
			s.logf("job abandoned in admission queue: %v", err)
		}
		return
	}
	defer s.svc.Admission().Release()

	res, err := s.svc.RunJob(ctx, spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrBadJob):
			errorJSON(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			errorJSON(w, http.StatusGatewayTimeout, "job exceeded its deadline")
		case errors.Is(err, context.Canceled):
			s.logf("job cancelled by client")
		default:
			s.logf("job failed: %v", err)
			errorJSON(w, http.StatusInternalServerError, "internal error")
		}
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, res.Text())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(res); err != nil {
		s.logf("encode result: %v", err)
	}
}

// handleAdvance moves the service one calibration window forward.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		errorJSON(w, http.StatusMethodNotAllowed, "POST to advance the window")
		return
	}
	window := s.svc.Advance()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{"window": window})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

// handleMetrics emits the counters in plain-text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.svc.Snapshot(false)
	var sb strings.Builder
	put := func(name string, v uint64) { fmt.Fprintf(&sb, "edmd_%s %d\n", name, v) }
	put("window", uint64(m.Window))
	put("admission_capacity", uint64(m.Admission.Capacity))
	put("admission_in_flight", uint64(m.Admission.InFlight))
	put("admission_queued", uint64(m.Admission.Queued))
	put("admission_admitted_total", m.Admission.Admitted)
	put("admission_rejected_total", m.Admission.Rejected)
	put("admission_cancelled_total", m.Admission.Cancelled)
	put("job_cache_hits_total", m.Tier.Hits)
	put("job_cache_misses_total", m.Tier.Misses)
	put("job_cache_waits_total", m.Tier.Waits)
	put("job_cache_evictions_total", m.Tier.Evictions)
	put("job_cache_entries", uint64(m.Tier.Entries))
	put("compile_pool_hits_total", m.Pools.Hits)
	put("compile_pool_misses_total", m.Pools.Misses)
	put("compile_pool_waits_total", m.Pools.Waits)
	put("run_cache_hits_total", m.Runs.Hits)
	put("run_cache_misses_total", m.Runs.Misses)
	put("recompile_pools_total", m.Recompile.Pools)
	put("recompile_full_rebuilds_total", m.Recompile.FullRebuilds)
	put("recompile_candidates_reused_total", m.Recompile.Reused)
	put("recompile_candidates_rescored_total", m.Recompile.Rescored)
	put("recompile_candidates_rerouted_total", m.Recompile.Rerouted)
	put("engine_stab_programs_total", uint64(m.Engine.StabPrograms))
	put("engine_stab_fallbacks_total", uint64(m.Engine.StabFallbacks))
	put("engine_stab_prefix_steps_total", uint64(m.Engine.StabPrefixSteps))
	put("engine_stab_trials_total", uint64(m.Engine.StabTrials))
	put("engine_stab_max_words", uint64(m.Engine.StabMaxWords))
	put("engine_trials_dominant_total", uint64(m.Engine.FullDominantTrials))
	put("engine_trials_divergent_total", uint64(m.Engine.DivergentTrials))
	put("engine_batch_buckets_total", uint64(m.Engine.BatchBuckets))
	put("engine_batch_units_total", uint64(m.Engine.BatchUnits))
	put("engine_batch_trials_total", uint64(m.Engine.BatchTrials))
	put("engine_batch_lane_clones_total", uint64(m.Engine.BatchLaneClones))
	put("engine_batch_deferred_trials_total", uint64(m.Engine.BatchDeferredTrials))
	put("engine_unit_steals_total", uint64(m.Engine.UnitSteals))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, sb.String())
}

// handleCacheStats emits the full JSON snapshot, per-shard included.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.svc.Snapshot(true))
}

// ListenAndServe serves on addr until ctx is cancelled or a SIGTERM /
// SIGINT arrives, then drains: the listener closes, queued and running
// jobs get DrainTimeout to finish, and only then does the service shut
// down. ready (optional) receives the bound address once listening —
// how callers and the CI smoke test learn the port behind ":0".
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		s.svc.Close()
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), s.DrainTimeout)
	defer cancel()
	err = hs.Shutdown(dctx)
	s.svc.Close()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}
