package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Admission.Acquire when the wait queue is at
// capacity; the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("serve: admission queue full")

// Admission bounds how many jobs execute at once and queues the overflow
// with per-tenant round-robin fairness: released slots are handed to the
// longest-waiting job of the next tenant in rotation, so one tenant
// flooding the queue delays its own jobs, not everyone's. A slot released
// with waiters present transfers directly — it never returns to the free
// pool for a newcomer to steal ahead of the queue.
type Admission struct {
	mu       sync.Mutex
	free     int // slots not held by an admitted job
	capacity int
	maxQueue int // queued waiters across all tenants
	queued   int
	waiters  map[string][]chan struct{}
	order    []string // tenants with waiters, in rotation order
	next     int      // rotation cursor into order

	admitted  uint64
	rejected  uint64
	cancelled uint64
}

// AdmissionStats is a snapshot of the controller's counters.
type AdmissionStats struct {
	Capacity  int    // concurrent-job limit
	InFlight  int    // slots currently held
	Queued    int    // waiters currently queued
	Admitted  uint64 // jobs granted a slot
	Rejected  uint64 // jobs bounced on a full queue
	Cancelled uint64 // waiters that gave up before a slot arrived
}

// NewAdmission builds a controller admitting up to capacity concurrent
// jobs and queueing up to maxQueue more.
func NewAdmission(capacity, maxQueue int) (*Admission, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("serve: admission capacity %d must be positive", capacity)
	}
	if maxQueue < 0 {
		return nil, fmt.Errorf("serve: admission queue depth %d must be non-negative", maxQueue)
	}
	return &Admission{
		free:     capacity,
		capacity: capacity,
		maxQueue: maxQueue,
		waiters:  make(map[string][]chan struct{}),
	}, nil
}

// Acquire takes a slot for tenant, waiting in the tenant's queue when the
// service is saturated. It returns nil when a slot is held (the caller
// must Release it), ErrQueueFull when the queue is at capacity, or
// ctx.Err() when the caller gave up first. A free slot is only taken
// directly when nobody is queued, so arrival order cannot starve waiters.
func (a *Admission) Acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	if a.free > 0 && a.queued == 0 {
		a.free--
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.maxQueue {
		a.rejected++
		a.mu.Unlock()
		return fmt.Errorf("%w (tenant %q, %d queued)", ErrQueueFull, tenant, a.queued)
	}
	ch := make(chan struct{})
	if len(a.waiters[tenant]) == 0 {
		a.order = append(a.order, tenant)
	}
	a.waiters[tenant] = append(a.waiters[tenant], ch)
	a.queued++
	a.mu.Unlock()

	if ctx == nil {
		<-ch
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.removeWaiter(tenant, ch) {
			a.queued--
			a.cancelled++
			a.mu.Unlock()
			return ctx.Err()
		}
		a.mu.Unlock()
		// The slot was handed over in the race window between ctx firing
		// and the lock; give it back rather than leak it.
		a.Release()
		return ctx.Err()
	}
}

// removeWaiter drops ch from tenant's queue; false means it was already
// dequeued (a handoff won the race).
func (a *Admission) removeWaiter(tenant string, ch chan struct{}) bool {
	q := a.waiters[tenant]
	for i := range q {
		if q[i] == ch {
			a.waiters[tenant] = append(q[:i:i], q[i+1:]...)
			return true
		}
	}
	return false
}

// Release returns a slot. With waiters queued it transfers directly to
// the head waiter of the next tenant in rotation; otherwise it rejoins
// the free pool.
func (a *Admission) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.order) > 0 {
		if a.next >= len(a.order) {
			a.next = 0
		}
		tenant := a.order[a.next]
		q := a.waiters[tenant]
		if len(q) == 0 {
			// Tenant drained (or its waiters cancelled): drop it from the
			// rotation and look at the next one from the same position.
			delete(a.waiters, tenant)
			a.order = append(a.order[:a.next:a.next], a.order[a.next+1:]...)
			continue
		}
		a.waiters[tenant] = q[1:]
		a.queued--
		a.admitted++
		a.next++
		close(q[0]) // slot transfers; free is unchanged
		return
	}
	a.next = 0
	a.free++
}

// Stats snapshots the counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Capacity:  a.capacity,
		InFlight:  a.capacity - a.free,
		Queued:    a.queued,
		Admitted:  a.admitted,
		Rejected:  a.rejected,
		Cancelled: a.cancelled,
	}
}
