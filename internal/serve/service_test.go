package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"edm/internal/backend"
	"edm/internal/core"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// testConfig is a small, fast service: tiny tier, no TTL, no timeout.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards, cfg.ShardCap = 2, 32
	cfg.MaxConcurrent, cfg.MaxQueue = 2, 8
	cfg.TTL, cfg.JobTimeout = 0, 0
	return cfg
}

func testSpec() *JobSpec {
	return &JobSpec{Workload: "bv-6", K: 2, Trials: 512, Seed: 7, Policy: "wedm"}
}

func mustService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestRunJobMatchesLibraryPipeline pins the determinism contract over the
// service: the served distribution is bit-identical to running the same
// (calibration window, circuit, policy, seed) through the library
// directly, with no caches in between.
func TestRunJobMatchesLibraryPipeline(t *testing.T) {
	cfg := testConfig()
	svc := mustService(t, cfg)
	spec := testSpec()
	got, err := svc.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	cal, runtimeCal := windowCals(cfg, cfg.Window)
	comp := mapper.CachedCompiler(cal)
	mach := backend.New(runtimeCal)
	runner := core.NewRunner(comp, mach)
	w, _ := workloads.ByName("bv-6")
	res, err := runner.Run(w.Circuit, core.Config{K: 2, Trials: 512, Weighting: core.WeightDivergence}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := res.Merged.Sorted()
	if len(got.Merged) != len(want) {
		t.Fatalf("outcome counts differ: %d vs %d", len(got.Merged), len(want))
	}
	for i, o := range want {
		if got.Merged[i].Outcome != o.Value.String() || got.Merged[i].P != o.P {
			t.Fatalf("outcome %d: served (%s, %v) vs library (%s, %v)",
				i, got.Merged[i].Outcome, got.Merged[i].P, o.Value, o.P)
		}
	}
}

// TestRunJobDeterministicAcrossInstances: two independent services (cold
// caches each) serve byte-identical text for the same job — the property
// that makes the CLI-vs-server smoke diff meaningful.
func TestRunJobDeterministicAcrossInstances(t *testing.T) {
	spec := testSpec()
	a := mustService(t, testConfig())
	ra, err := a.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b := mustService(t, testConfig())
	rb, err := b.RunJob(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Text() != rb.Text() {
		t.Fatalf("text differs across instances:\n%s\nvs\n%s", ra.Text(), rb.Text())
	}
	// And a cache hit returns the same bytes as the miss that built it.
	rc, err := a.RunJob(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rc.Text() != ra.Text() {
		t.Fatal("cache hit served different bytes than the original build")
	}
}

// TestConcurrentDuplicateJobsCompileOnce is the tentpole acceptance test:
// N concurrent identical jobs cost exactly one compile (one candidate
// pool build per (circuit fingerprint, generation)) and one tier build.
func TestConcurrentDuplicateJobsCompileOnce(t *testing.T) {
	svc := mustService(t, testConfig())
	const n = 8
	results := make([]*JobResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.RunJob(context.Background(), testSpec())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if results[i].Text() != results[0].Text() {
			t.Fatalf("job %d served different bytes", i)
		}
	}
	if s := svc.PoolStats(); s.Misses != 1 {
		t.Fatalf("compile pool misses = %d, want exactly 1", s.Misses)
	}
	if s := svc.TierStats(); s.Misses != 1 || s.Hits+s.Waits != n-1 {
		t.Fatalf("tier stats = %+v, want 1 miss and %d hits+waits", s, n-1)
	}
}

// TestRunJobBadSpecs: every malformed payload returns ErrBadJob; nothing
// panics the process.
func TestRunJobBadSpecs(t *testing.T) {
	svc := mustService(t, testConfig())
	cases := []struct {
		name string
		spec *JobSpec
	}{
		{"no source", &JobSpec{Trials: 100}},
		{"two sources", &JobSpec{Workload: "bv-6", Circuit: "qubits 1\n", Trials: 100}},
		{"unknown workload", &JobSpec{Workload: "nope", Trials: 100}},
		{"zero trials", &JobSpec{Workload: "bv-6"}},
		{"trials under k", &JobSpec{Workload: "bv-6", K: 8, Trials: 4}},
		{"trials over cap", &JobSpec{Workload: "bv-6", Trials: MaxTrials + 1}},
		{"negative k", &JobSpec{Workload: "bv-6", K: -1, Trials: 100}},
		{"huge k", &JobSpec{Workload: "bv-6", K: MaxK + 1, Trials: 1 << 19}},
		{"bad policy", &JobSpec{Workload: "bv-6", Trials: 100, Policy: "magic"}},
		{"bad format", &JobSpec{Circuit: "qubits 1\n", Format: "binary", Trials: 100}},
		{"negative uniformity", &JobSpec{Workload: "bv-6", Trials: 100, UniformityFilter: -1}},
		{"garbage circuit", &JobSpec{Circuit: "qubits two\nxyzzy", Trials: 100}},
		{"garbage qasm", &JobSpec{Circuit: "OPENQASM 9;", Format: "qasm", Trials: 100}},
		{"circuit too wide", &JobSpec{Circuit: "qubits 20\ncbits 1\nh 0\nmeasure 0 -> 0\n", Trials: 100}},
	}
	for _, tc := range cases {
		if _, err := svc.RunJob(context.Background(), tc.spec); !errors.Is(err, ErrBadJob) {
			t.Errorf("%s: err = %v, want ErrBadJob", tc.name, err)
		}
	}
}

// TestRunJobCancelledWaiterDetaches: a request whose deadline fires while
// the job builds detaches with ctx.Err(); the detached build completes
// and serves the next request from cache.
func TestRunJobCancelledWaiterDetaches(t *testing.T) {
	svc := mustService(t, testConfig())
	spec := &JobSpec{Workload: "qaoa-6", K: 2, Trials: 1 << 17, Seed: 9}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := svc.RunJob(ctx, spec)
	if err == nil {
		t.Skip("job finished inside 1ms; nothing to detach from")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	res, err := svc.RunJob(context.Background(), &JobSpec{Workload: "qaoa-6", K: 2, Trials: 1 << 17, Seed: 9})
	if err != nil {
		t.Fatalf("post-detach job: %v", err)
	}
	if len(res.Merged) == 0 {
		t.Fatal("post-detach job served an empty distribution")
	}
}

// TestAdvanceRecomputesInPlace: advancing the window re-executes cached
// jobs under the new calibration without flushing the tier, and the
// compiler upgrades its pool instead of starting over.
func TestAdvanceRecomputesInPlace(t *testing.T) {
	svc := mustService(t, testConfig())
	r0, err := svc.RunJob(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r0.Window != 0 {
		t.Fatalf("window = %d, want 0", r0.Window)
	}
	if w := svc.Advance(); w != 1 {
		t.Fatalf("Advance = %d, want 1", w)
	}
	r1, err := svc.RunJob(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Window != 1 {
		t.Fatalf("post-advance window = %d, want 1", r1.Window)
	}
	ts := svc.TierStats()
	if ts.Misses != 2 || ts.Entries != 1 {
		t.Fatalf("tier stats = %+v, want 2 misses and 1 live entry (in-place upgrade)", ts)
	}
	ps := svc.PoolStats()
	if ps.Misses != 2 {
		t.Fatalf("pool misses = %d, want 2 (one per generation)", ps.Misses)
	}
	m := svc.Snapshot(true)
	if m.Recompile.Pools != 1 {
		t.Fatalf("recompile pools = %d, want 1 (upgrade, not rebuild-from-nothing)", m.Recompile.Pools)
	}
	if len(m.TierShard) != svc.tier.Shards() {
		t.Fatalf("snapshot shard count %d", len(m.TierShard))
	}
}

// TestTTLExpiryRecomputes: with a TTL configured, a cached job recomputes
// once the fake clock crosses the epoch — and serves identical bytes,
// because results are pure functions of the job.
func TestTTLExpiryRecomputes(t *testing.T) {
	cfg := testConfig()
	cfg.TTL = time.Minute
	svc := mustService(t, cfg)
	now := time.Unix(0, 0)
	svc.now = func() time.Time { return now }

	r0, err := svc.RunJob(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second) // same epoch: a hit
	if _, err := svc.RunJob(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if s := svc.TierStats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("pre-expiry stats = %+v", s)
	}
	now = now.Add(2 * time.Minute) // next epoch: recompute in place
	r2, err := svc.RunJob(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s := svc.TierStats(); s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("post-expiry stats = %+v", s)
	}
	if r2.Text() != r0.Text() {
		t.Fatal("recomputed job served different bytes")
	}
}

func TestNewServiceValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 0
	if _, err := NewService(cfg); err == nil {
		t.Fatal("zero shards must error")
	}
	cfg = testConfig()
	cfg.MaxConcurrent = 0
	if _, err := NewService(cfg); err == nil {
		t.Fatal("zero concurrency must error")
	}
	cfg = testConfig()
	cfg.Window = -1
	if _, err := NewService(cfg); err == nil {
		t.Fatal("negative window must error")
	}
	cfg = testConfig()
	cfg.TTL = -time.Second
	if _, err := NewService(cfg); err == nil {
		t.Fatal("negative ttl must error")
	}
}
