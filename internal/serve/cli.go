package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Command is one shared subcommand. cmd/edmd dispatches exclusively over
// this table and cmd/edm consults it before its experiment registry, so
// the two binaries cannot drift: `edm run ...` and `edmd run ...` are the
// same code path, which is what makes the CLI-vs-server byte-identity
// contract checkable with cmp(1).
type Command struct {
	Name string
	Desc string
	// Run executes the subcommand and returns the process exit code:
	// 0 on success, 1 on execution failure, 2 on usage errors.
	Run func(args []string, stdout, stderr io.Writer) int
}

// Commands returns the shared subcommand table.
func Commands() []Command {
	return []Command{
		{Name: "run", Desc: "execute one job locally and print the canonical text result", Run: RunCLI},
		{Name: "serve", Desc: "start the edmd compile+run server", Run: ServeCLI},
	}
}

// Lookup finds a shared subcommand by name.
func Lookup(name string) (Command, bool) {
	for _, c := range Commands() {
		if c.Name == name {
			return c, true
		}
	}
	return Command{}, false
}

// jobFlags registers the job-shaping flags shared by run and serve.
func jobFlags(fs *flag.FlagSet, cfg *Config) {
	fs.StringVar(&cfg.Device, "device", cfg.Device, "target device: melbourne (default), tokyo, falcon27 or eagle127")
	fs.Uint64Var(&cfg.CalSeed, "calseed", cfg.CalSeed, "calibration stream seed")
	fs.Float64Var(&cfg.Drift, "drift", cfg.Drift, "calibration drift between compile and run time")
	fs.IntVar(&cfg.Window, "window", cfg.Window, "calibration window index")
	fs.Float64Var(&cfg.Tol, "tol", cfg.Tol, "recompile tolerance on window advances")
}

// RunCLI executes one job locally through the same Service code the
// server uses and prints the canonical text bytes.
func RunCLI(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := DefaultConfig()
	jobFlags(fs, &cfg)
	var (
		workload   = fs.String("workload", "", "named workload (bv-6, qaoa-5, adder, ...)")
		circPath   = fs.String("circuit", "", "circuit file to run instead of a workload (- for stdin)")
		format     = fs.String("format", "text", "inline circuit format: text or qasm")
		k          = fs.Int("k", 4, "ensemble size")
		trials     = fs.Int("trials", 16384, "total trial budget")
		seed       = fs.Uint64("seed", 2019, "job seed")
		policy     = fs.String("policy", "edm", "merge policy: edm, wedm or best")
		uniformity = fs.Float64("uniformity", 0, "uniformity filter factor (0 disables)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: run [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "run: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	spec := &JobSpec{
		Workload:         *workload,
		Format:           *format,
		K:                *k,
		Trials:           *trials,
		Seed:             *seed,
		Policy:           *policy,
		UniformityFilter: *uniformity,
	}
	if *circPath != "" {
		src, err := readSource(*circPath)
		if err != nil {
			fmt.Fprintf(stderr, "run: %v\n", err)
			return 1
		}
		spec.Circuit = src
	}
	// A one-shot service: minimal tier, no queueing pressure.
	cfg.Shards, cfg.ShardCap = 1, 8
	cfg.MaxConcurrent, cfg.MaxQueue = 1, 0
	cfg.JobTimeout, cfg.TTL = 0, 0
	svc, err := NewService(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "run: %v\n", err)
		return 1
	}
	defer svc.Close()
	res, err := svc.RunJob(context.Background(), spec)
	if err != nil {
		fmt.Fprintf(stderr, "run: %v\n", err)
		return usageExit(err)
	}
	_, _ = io.WriteString(stdout, res.Text())
	return 0
}

// usageExit maps a job error to its exit code: payload problems are usage
// errors (2), everything else is a runtime failure (1).
func usageExit(err error) int {
	if errors.Is(err, ErrBadJob) {
		return 2
	}
	return 1
}

// readSource loads a circuit source from a file or stdin ("-").
func readSource(path string) (string, error) {
	var (
		b   []byte
		err error
	)
	if path == "-" {
		b, err = io.ReadAll(io.LimitReader(os.Stdin, MaxCircuitBytes+1))
	} else {
		b, err = os.ReadFile(path)
	}
	if err != nil {
		return "", err
	}
	if len(b) > MaxCircuitBytes {
		return "", fmt.Errorf("circuit source over the %d byte limit", MaxCircuitBytes)
	}
	return string(b), nil
}

// ServeCLI starts the HTTP server and blocks until shutdown.
func ServeCLI(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := DefaultConfig()
	jobFlags(fs, &cfg)
	addr := fs.String("addr", "127.0.0.1:7119", "listen address (port 0 picks a free port)")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	fs.IntVar(&cfg.Shards, "shards", cfg.Shards, "result cache shards")
	fs.IntVar(&cfg.ShardCap, "shard-cap", cfg.ShardCap, "result cache entries per shard")
	fs.DurationVar(&cfg.TTL, "ttl", cfg.TTL, "result time-to-live (0 disables expiry)")
	fs.IntVar(&cfg.MaxConcurrent, "max-concurrent", cfg.MaxConcurrent, "concurrent job limit")
	fs.IntVar(&cfg.MaxQueue, "max-queue", cfg.MaxQueue, "admission queue depth")
	fs.DurationVar(&cfg.JobTimeout, "timeout", cfg.JobTimeout, "per-job wall-clock limit (0 disables)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: serve [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "serve: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	svc, err := NewService(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 2
	}
	srv := NewServer(svc)
	srv.DrainTimeout = *drain
	srv.ErrorLog = stderr

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(context.Background(), *addr, ready) }()
	select {
	case bound := <-ready:
		fmt.Fprintf(stdout, "edmd listening on %s (device %s, window %d)\n", bound, svc.DeviceName(), cfg.Window)
	case err := <-done:
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	if err := <-done; err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	return 0
}
