package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewTierValidation(t *testing.T) {
	if _, err := NewTier(0, 8); err == nil {
		t.Fatal("zero shards must error")
	}
	if _, err := NewTier(4, 0); err == nil {
		t.Fatal("zero per-shard capacity must error")
	}
	tier, err := NewTier(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Shards() != 4 {
		t.Fatalf("3 shards rounded to %d, want 4", tier.Shards())
	}
}

func TestTierSingleflightAcrossShards(t *testing.T) {
	tier, err := NewTier(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	const workers = 16
	var wg sync.WaitGroup
	results := make([]*jobOutcome, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := tier.Do(context.Background(), 0xfeed, 1, func() *jobOutcome {
				builds.Add(1)
				return &jobOutcome{res: &JobResult{Seed: 7}}
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for %d concurrent duplicates, want 1", n, workers)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatal("duplicate callers received different outcome pointers")
		}
	}
	s := tier.Stats()
	if s.Misses != 1 || s.Hits+s.Waits != workers-1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestTierGenerationReplacesInPlace: a new generation tag recomputes only
// the requested entry; other entries survive untouched.
func TestTierGenerationReplacesInPlace(t *testing.T) {
	tier, err := NewTier(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	build := func(seed uint64) func() *jobOutcome {
		return func() *jobOutcome { return &jobOutcome{res: &JobResult{Seed: seed}} }
	}
	if _, err := tier.Do(ctx, 1, 100, build(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Do(ctx, 2, 100, build(2)); err != nil {
		t.Fatal(err)
	}
	// Key 1 expires (new gen); key 2 is untouched.
	out, err := tier.Do(ctx, 1, 101, build(11))
	if err != nil {
		t.Fatal(err)
	}
	if out.res.Seed != 11 {
		t.Fatalf("stale generation served: seed %d", out.res.Seed)
	}
	out2, err := tier.Do(ctx, 2, 100, build(22))
	if err != nil {
		t.Fatal(err)
	}
	if out2.res.Seed != 2 {
		t.Fatal("unrelated entry was flushed by another key's generation bump")
	}
	s := tier.Stats()
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (in-place replacement)", s.Entries)
	}
}

func TestTierShardSpread(t *testing.T) {
	tier, err := NewTier(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := uint64(0); i < 64; i++ {
		key := i << 48 // drive the shard-selection bits directly
		if _, err := tier.Do(ctx, key, 0, func() *jobOutcome { return &jobOutcome{} }); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range tier.ShardStats() {
		if s.Entries == 0 {
			t.Fatalf("shard %d never used: %+v", i, tier.ShardStats())
		}
	}
}
