package serve

import (
	"context"
	"fmt"
	"math/bits"

	"edm/internal/memo"
)

// Tier is the service's job-result cache: a power-of-two array of
// independently locked memo shards, each TTL- and size-bounded. Sharding
// keeps the result tier's lock off the hot path under concurrent load —
// jobs hashing to different shards never contend — while each shard keeps
// memo's singleflight guarantee, so concurrent duplicate jobs still share
// exactly one execution.
//
// Expiry is not a sweeper: the service folds its TTL epoch and
// calibration generation into the memo generation tag (see
// Service.genTag), so an expired or drifted entry is upgraded in place by
// the next request for it — one rebuild, same ring slot, no flush of its
// shard — and until someone asks, it costs nothing.
type Tier struct {
	shards []*memo.Cache[*jobOutcome]
	ctrs   []*memo.Counters
	mask   uint64
}

// jobOutcome is what a shard stores: a completed job or its deterministic
// failure. Errors are cached too — a circuit the device cannot hold fails
// identically every time, and caching the failure keeps a misbehaving
// client from re-running the compile that proves it.
type jobOutcome struct {
	res *JobResult
	err error
}

// NewTier builds a tier of shardCount shards (rounded up to a power of
// two) holding at most perShard entries each. Both come from service
// configuration, so failures are errors, not panics.
func NewTier(shardCount, perShard int) (*Tier, error) {
	if shardCount <= 0 {
		return nil, fmt.Errorf("serve: shard count %d must be positive", shardCount)
	}
	if shardCount > 1<<16 {
		return nil, fmt.Errorf("serve: shard count %d over limit %d", shardCount, 1<<16)
	}
	n := 1 << bits.Len(uint(shardCount-1)) // next power of two
	t := &Tier{
		shards: make([]*memo.Cache[*jobOutcome], n),
		ctrs:   make([]*memo.Counters, n),
		mask:   uint64(n - 1),
	}
	for i := range t.shards {
		ctr := &memo.Counters{}
		c, err := memo.NewChecked[*jobOutcome](perShard, ctr)
		if err != nil {
			return nil, err
		}
		t.shards[i], t.ctrs[i] = c, ctr
	}
	return t, nil
}

// Shards returns the shard count.
func (t *Tier) Shards() int { return len(t.shards) }

// shard picks the shard for a key. Keys are FNV-1a mixes, so the high
// bits are used for shard selection and the full key stays the map key —
// the low bits alone would correlate with the last Mix word.
func (t *Tier) shard(key uint64) *memo.Cache[*jobOutcome] {
	return t.shards[(key>>48)&t.mask]
}

// Do serves key at generation gen through its shard with the detached
// singleflight semantics of memo.GetGenCtx: concurrent duplicates share
// one build, a caller whose ctx expires detaches with ctx.Err(), and the
// build itself always completes and publishes.
func (t *Tier) Do(ctx context.Context, key, gen uint64, build func() *jobOutcome) (*jobOutcome, error) {
	return t.shard(key).GetGenCtx(ctx, key, gen, build, nil)
}

// ShardStats snapshots every shard's counters in shard order.
func (t *Tier) ShardStats() []memo.Stats {
	out := make([]memo.Stats, len(t.ctrs))
	for i, c := range t.ctrs {
		out[i] = c.Stats()
	}
	return out
}

// Stats aggregates the shard counters into one line.
func (t *Tier) Stats() memo.Stats {
	var agg memo.Stats
	for _, s := range t.ShardStats() {
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Waits += s.Waits
		agg.Evictions += s.Evictions
		agg.Entries += s.Entries
	}
	return agg
}
