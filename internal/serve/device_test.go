package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"edm/internal/backend"
	"edm/internal/bitstr"
)

func TestNewServiceUnknownDevice(t *testing.T) {
	cfg := testConfig()
	cfg.Device = "osprey433"
	if _, err := NewService(cfg); err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("err = %v, want unknown-device error", err)
	}
}

// TestWideDeviceJobUsesStabilizer runs a Clifford workload on the
// 127-qubit heavy-hex Eagle — a device no statevector in this process
// could represent — and checks the job both succeeds and was actually
// served by the tableau engine. Advancing the window exercises the
// multi-word calibration diff and incremental recompile at full width.
func TestWideDeviceJobUsesStabilizer(t *testing.T) {
	cfg := testConfig()
	cfg.Device = "eagle127"
	svc := mustService(t, cfg)
	if got := svc.DeviceName(); got != "eagle127" {
		t.Fatalf("DeviceName = %q", got)
	}
	spec := &JobSpec{Workload: "greycode-24", K: 2, Trials: 512, Seed: 7}
	backend.ResetEngineStats()
	res, err := svc.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := res.MostLikely()
	if !ok || top.Outcome != "101010101010101010101010" {
		t.Fatalf("most likely = %+v, want the alternating golden output", top)
	}
	st := backend.EngineStatsSnapshot()
	if st.StabTrials == 0 || st.StabPrograms == 0 {
		t.Fatalf("engine stats %+v: wide Clifford job did not run on the tableau", st)
	}
	if st.StabFallbacks != 0 {
		t.Fatalf("engine stats %+v: unexpected statevector fallbacks", st)
	}
	if m := svc.Snapshot(false); m.Device != "eagle127" || m.Engine.StabTrials == 0 {
		t.Fatalf("snapshot = %+v, want device and engine counters surfaced", m)
	}

	if w := svc.Advance(); w != 1 {
		t.Fatalf("Advance = %d", w)
	}
	res1, err := svc.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatalf("post-advance job: %v", err)
	}
	if res1.Window != 1 {
		t.Fatalf("post-advance window = %d", res1.Window)
	}
}

// TestRunJobRejectsTooManyClbits: a circuit measuring more classical
// bits than one histogram word holds is a payload error (4xx), caught
// before any compile or simulation starts.
func TestRunJobRejectsTooManyClbits(t *testing.T) {
	svc := mustService(t, testConfig())
	n := bitstr.MaxBits + 1
	var sb strings.Builder
	fmt.Fprintf(&sb, "qubits %d\ncbits %d\n", n, n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&sb, "measure %d -> %d\n", q, q)
	}
	spec := &JobSpec{Circuit: sb.String(), Trials: 100}
	_, err := svc.RunJob(context.Background(), spec)
	if !errors.Is(err, ErrBadJob) || !strings.Contains(err.Error(), "classical bits") {
		t.Fatalf("err = %v, want ErrBadJob about classical bits", err)
	}
}
