package device

import "math"

// Fingerprint returns a 64-bit FNV-1a hash over every field of the
// calibration that affects compilation: topology shape, all stochastic and
// coherent error rates, and gate timings. Two calibrations with the same
// fingerprint compile identically, so the mapper can cache one Compiler
// (whose construction runs all-pairs reliability Dijkstra) per calibration
// window instead of rebuilding it for every workload in an experiment
// sweep. Edge maps are hashed in the topology's deterministic Edges()
// order, so the fingerprint is stable across processes.
func (c *Calibration) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mixF := func(f float64) { mix(math.Float64bits(f)) }
	mixS := func(s []float64) {
		mix(uint64(len(s)))
		for _, f := range s {
			mixF(f)
		}
	}
	mix(uint64(c.Topo.Qubits))
	edges := c.Topo.Edges()
	mix(uint64(len(edges)))
	for _, e := range edges {
		mix(uint64(e.A)<<32 | uint64(uint32(e.B)))
	}
	mixS(c.SQErr)
	mixS(c.Meas01)
	mixS(c.Meas10)
	mixS(c.T1us)
	mixS(c.T2us)
	mixS(c.CohY)
	mixS(c.CohZ)
	for _, e := range edges {
		mixF(c.CXErr[e])
		mixF(c.CXCohZZ[e])
		mixF(c.CrossZZ[e])
	}
	mixF(c.ReadoutCorr)
	mixF(c.Gate1QTimeNs)
	mixF(c.Gate2QTimeNs)
	mixF(c.MeasTimeNs)
	return h
}
