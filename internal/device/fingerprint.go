package device

import "math"

// Fingerprint returns a 64-bit FNV-1a hash over every field of the
// calibration that affects compilation: topology shape, all stochastic and
// coherent error rates, and gate timings. Two calibrations with the same
// fingerprint compile identically, so the mapper can cache one Compiler
// (whose construction runs all-pairs reliability Dijkstra) per calibration
// window instead of rebuilding it for every workload in an experiment
// sweep. Edge maps are hashed in the topology's deterministic Edges()
// order, so the fingerprint is stable across processes.
func (c *Calibration) Fingerprint() uint64 {
	h := uint64(fpOffset)
	mix := func(x uint64) { h = fpMix(h, x) }
	mixF := func(f float64) { mix(math.Float64bits(f)) }
	mixS := func(s []float64) {
		mix(uint64(len(s)))
		for _, f := range s {
			mixF(f)
		}
	}
	mix(uint64(c.Topo.Qubits))
	edges := c.Topo.Edges()
	mix(uint64(len(edges)))
	for _, e := range edges {
		mix(uint64(e.A)<<32 | uint64(uint32(e.B)))
	}
	mixS(c.SQErr)
	mixS(c.Meas01)
	mixS(c.Meas10)
	mixS(c.T1us)
	mixS(c.T2us)
	mixS(c.CohY)
	mixS(c.CohZ)
	for _, e := range edges {
		mixF(c.CXErr[e])
		mixF(c.CXCohZZ[e])
		mixF(c.CrossZZ[e])
	}
	mixF(c.ReadoutCorr)
	mixF(c.Gate1QTimeNs)
	mixF(c.Gate2QTimeNs)
	mixF(c.MeasTimeNs)
	return h
}

// FNV-1a 64-bit constants shared by the device fingerprints.
const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

func fpMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fpPrime
		x >>= 8
	}
	return h
}

// Fingerprint hashes the topology's structure: qubit count and the
// deterministic edge list. The Name is excluded — two topologies that
// couple identically fingerprint identically.
func (t *Topology) Fingerprint() uint64 {
	h := fpMix(fpOffset, uint64(t.Qubits))
	edges := t.Edges()
	h = fpMix(h, uint64(len(edges)))
	for _, e := range edges {
		h = fpMix(h, uint64(e.A)<<32|uint64(uint32(e.B)))
	}
	return h
}

// Fingerprint hashes every generation parameter of the profile, so a
// (seed, topology, profile) triple that fingerprints equal generates a
// bit-identical calibration. The experiment layer keys its Round cache
// on it.
func (p Profile) Fingerprint() uint64 {
	h := fpOffset
	mixF := func(f float64) { h = fpMix(h, math.Float64bits(f)) }
	mixF(p.SQErrMean)
	mixF(p.SQErrSpread)
	mixF(p.CXErrMean)
	mixF(p.CXErrSpread)
	mixF(p.Meas01Mean)
	mixF(p.Meas01Spread)
	mixF(p.Meas10Mean)
	mixF(p.Meas10Spread)
	mixF(p.T1MeanUs)
	mixF(p.T1Spread)
	mixF(p.T2MeanUs)
	mixF(p.T2Spread)
	mixF(p.CohYMax)
	mixF(p.CohZMax)
	mixF(p.CXCohMax)
	mixF(p.CrossMax)
	mixF(p.ReadoutCorr)
	h = fpMix(h, uint64(int64(p.BadQubits)))
	mixF(p.BadFactor)
	mixF(p.Gate1QNs)
	mixF(p.Gate2QNs)
	mixF(p.MeasNs)
	return h
}
