package device

import (
	"math"
	"testing"

	"edm/internal/rng"
)

func checkHeavyHex(t *testing.T, topo *Topology, wantQubits, wantEdges int) {
	t.Helper()
	if topo.Qubits != wantQubits {
		t.Fatalf("%s: %d qubits, want %d", topo.Name, topo.Qubits, wantQubits)
	}
	edges := topo.Edges()
	if len(edges) != wantEdges {
		t.Fatalf("%s: %d edges, want %d", topo.Name, len(edges), wantEdges)
	}
	deg := make([]int, topo.Qubits)
	seen := map[Edge]bool{}
	for _, e := range edges {
		if e.A < 0 || e.B >= topo.Qubits || e.A >= e.B {
			t.Fatalf("%s: malformed edge %v", topo.Name, e)
		}
		if seen[e] {
			t.Fatalf("%s: duplicate edge %v", topo.Name, e)
		}
		seen[e] = true
		deg[e.A]++
		deg[e.B]++
	}
	for q, d := range deg {
		if d < 1 || d > 3 {
			t.Fatalf("%s: qubit %d has degree %d, heavy-hex requires 1..3", topo.Name, q, d)
		}
	}
	for q := 1; q < topo.Qubits; q++ {
		if topo.Distance(0, q) < 0 {
			t.Fatalf("%s: qubit %d disconnected from qubit 0", topo.Name, q)
		}
	}
}

func TestHeavyHexFalcon27(t *testing.T) {
	checkHeavyHex(t, HeavyHexFalcon27(), 27, 28)
}

func TestHeavyHexEagle127(t *testing.T) {
	checkHeavyHex(t, HeavyHexEagle127(), 127, 144)
}

// TestHeavyHexProfileCliffordClean pins the property the stabilizer
// engine depends on: a heavy-hex calibration has no coherent terms and
// no finite damping, before *and after* drift.
func TestHeavyHexProfileCliffordClean(t *testing.T) {
	topo := HeavyHexEagle127()
	cal := Generate(topo, HeavyHexProfile(), rng.New(41))
	if err := cal.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	check := func(c *Calibration, stage string) {
		t.Helper()
		for q := 0; q < topo.Qubits; q++ {
			if c.CohY[q] != 0 || c.CohZ[q] != 0 {
				t.Fatalf("%s: coherent term on qubit %d: CohY=%v CohZ=%v", stage, q, c.CohY[q], c.CohZ[q])
			}
			if !math.IsInf(c.T1us[q], 1) || !math.IsInf(c.T2us[q], 1) {
				t.Fatalf("%s: finite coherence time on qubit %d: T1=%v T2=%v", stage, q, c.T1us[q], c.T2us[q])
			}
			if c.SQErr[q] < 0 || c.Meas01[q] <= 0 || c.Meas10[q] <= 0 {
				t.Fatalf("%s: stochastic rates missing on qubit %d", stage, q)
			}
		}
		for _, e := range topo.Edges() {
			if c.CXCohZZ[e] != 0 || c.CrossZZ[e] != 0 {
				t.Fatalf("%s: coherent term on edge %v", stage, e)
			}
			if c.CXErr[e] <= 0 {
				t.Fatalf("%s: zero CXErr on edge %v", stage, e)
			}
		}
	}
	check(cal, "generated")
	check(cal.Drift(0.2, rng.New(42)), "drifted")
	check(cal.DriftLocal(5, 5, 0.5, 0.01, rng.New(43)), "locally drifted")
}

// TestDriftGatingPreservesNonzeroFields guards the other side of the
// zero-gating: on a device whose coherent fields are all nonzero
// (Melbourne's magnitude floor guarantees it), drift must still move
// every coherent field, with the same draws as before the gating.
func TestDriftGatingPreservesNonzeroFields(t *testing.T) {
	cal := Generate(Melbourne(), MelbourneProfile(), rng.New(5))
	drifted := cal.Drift(0.3, rng.New(6))
	for q := range cal.CohY {
		if cal.CohY[q] == 0 || cal.CohZ[q] == 0 {
			t.Fatalf("melbourne coherent field zero on qubit %d (floor broken)", q)
		}
		if drifted.CohY[q] == cal.CohY[q] || drifted.CohZ[q] == cal.CohZ[q] {
			t.Fatalf("drift left coherent field unchanged on qubit %d", q)
		}
	}
	for _, e := range cal.Topo.Edges() {
		if drifted.CXCohZZ[e] == cal.CXCohZZ[e] || drifted.CrossZZ[e] == cal.CrossZZ[e] {
			t.Fatalf("drift left coherent field unchanged on edge %v", e)
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		name   string
		qubits int
	}{
		{"", 14}, {"melbourne", 14}, {"tokyo", 20}, {"falcon27", 27}, {"eagle127", 127},
	}
	for _, c := range cases {
		topo, prof, err := ByName(c.name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", c.name, err)
		}
		if topo.Qubits != c.qubits {
			t.Fatalf("ByName(%q): %d qubits, want %d", c.name, topo.Qubits, c.qubits)
		}
		if prof.Gate2QNs <= 0 {
			t.Fatalf("ByName(%q): empty profile", c.name)
		}
	}
	if _, _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
}

// TestDiffTooWideGoesGlobal: a device wider than the inline diff masks
// must produce a Global (full-invalidation) diff, never a truncated one.
func TestDiffTooWideGoesGlobal(t *testing.T) {
	topo := Linear(200)
	cal := Generate(topo, MelbourneProfile(), rng.New(8))
	mod := cal.Clone()
	mod.SQErr[199] *= 2
	d := Diff(cal, mod, 1e-3)
	if !d.Global || !d.Full() {
		t.Fatalf("diff on 200-qubit device not Global: %+v", d.Stats)
	}
}
