package device

import (
	"math"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
)

func timingCal(t *testing.T) *Calibration {
	t.Helper()
	cal := Generate(Linear(4), IdealProfile(), rng.New(1))
	cal.Gate1QTimeNs = 100
	cal.Gate2QTimeNs = 300
	cal.MeasTimeNs = 1000
	return cal
}

func TestTimingSequential(t *testing.T) {
	cal := timingCal(t)
	c := circuit.New(4, 1)
	c.H(0).H(0).CX(0, 1).Measure(0, 0)
	rep, err := Timing(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	// 100 + 100 + 300 gates, then measurement at the global max (500) for
	// 1000ns: makespan 1500.
	if math.Abs(rep.TotalNs-1500) > 1e-9 {
		t.Fatalf("TotalNs = %v", rep.TotalNs)
	}
	if rep.Ops != 4 {
		t.Fatalf("Ops = %d", rep.Ops)
	}
	if math.Abs(rep.BusyNs[0]-(100+100+300+1000)) > 1e-9 {
		t.Fatalf("BusyNs[0] = %v", rep.BusyNs[0])
	}
	if rep.IdleNs[0] != 0 {
		t.Fatalf("IdleNs[0] = %v", rep.IdleNs[0])
	}
	// Qubit 1: first touched at t=200 by the CX (ends 500); never measured,
	// so its window closes at 500 with no idle inside it.
	if rep.IdleNs[1] != 0 {
		t.Fatalf("IdleNs[1] = %v", rep.IdleNs[1])
	}
}

func TestTimingIdleFromSync(t *testing.T) {
	cal := timingCal(t)
	c := circuit.New(4, 0)
	// Qubit 1 waits for qubit 0's two gates before the CX.
	c.H(0).H(0).H(1).CX(0, 1)
	rep, err := Timing(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	// Qubit 1: H at [0,100), waits until 200, CX [200,500): idle 100.
	if math.Abs(rep.IdleNs[1]-100) > 1e-9 {
		t.Fatalf("IdleNs[1] = %v", rep.IdleNs[1])
	}
	q, ns := rep.MaxIdle()
	if q != 1 || math.Abs(ns-100) > 1e-9 {
		t.Fatalf("MaxIdle = %d, %v", q, ns)
	}
}

func TestTimingBarrierSync(t *testing.T) {
	cal := timingCal(t)
	a := circuit.New(2, 0)
	a.H(0).Barrier().H(1)
	rep, err := Timing(a, cal)
	if err != nil {
		t.Fatal(err)
	}
	// H(1) cannot start before 100 because of the barrier.
	if math.Abs(rep.TotalNs-200) > 1e-9 {
		t.Fatalf("TotalNs = %v", rep.TotalNs)
	}
}

func TestTimingSwapLowered(t *testing.T) {
	cal := timingCal(t)
	c := circuit.New(2, 0)
	c.SWAP(0, 1)
	rep, err := Timing(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TotalNs-900) > 1e-9 { // 3 CX * 300ns
		t.Fatalf("TotalNs = %v", rep.TotalNs)
	}
	if rep.Ops != 3 {
		t.Fatalf("Ops = %d", rep.Ops)
	}
}

func TestTimingMeasurementsAligned(t *testing.T) {
	cal := timingCal(t)
	c := circuit.New(3, 3)
	c.H(0).H(0).H(1).MeasureAll()
	rep, err := Timing(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	// Latest gate ends at 200; all three measurements run [200, 1200)...
	// except later measure statements see earlier measurement clocks; the
	// backend schedules each at the current global max, so measure of q0
	// at 200, then q1 and q2 at 1200 and 2200? No: measures of q1/q2 start
	// at the *global* max including q0's ongoing readout. The policy is
	// conservative; what must hold is the makespan >= 1200 and every
	// measured qubit accrues exactly one MeasTimeNs of busy readout.
	if rep.TotalNs < 1200 {
		t.Fatalf("TotalNs = %v", rep.TotalNs)
	}
	for q := 0; q < 3; q++ {
		if rep.BusyNs[q] < 1000 {
			t.Fatalf("BusyNs[%d] = %v", q, rep.BusyNs[q])
		}
	}
}

func TestTimingErrors(t *testing.T) {
	cal := timingCal(t)
	bad := circuit.New(4, 0)
	bad.CX(0, 2) // not coupled on a line
	if _, err := Timing(bad, cal); err == nil {
		t.Fatal("coupling violation accepted")
	}
	double := circuit.New(2, 2)
	double.Measure(0, 0).Measure(0, 1)
	if _, err := Timing(double, cal); err == nil {
		t.Fatal("double measurement accepted")
	}
	if _, err := Timing(circuit.New(9, 0), cal); err == nil {
		t.Fatal("oversized circuit accepted")
	}
	invalid := circuit.New(2, 0)
	invalid.Ops = append(invalid.Ops, circuit.Op{Kind: circuit.CX, Qubits: []int{0}, Cbit: -1})
	if _, err := Timing(invalid, cal); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

func TestTimingUntouchedQubitHasNoWindow(t *testing.T) {
	cal := timingCal(t)
	c := circuit.New(4, 0)
	c.H(0)
	rep, err := Timing(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BusyNs[3] != 0 || rep.IdleNs[3] != 0 {
		t.Fatal("untouched qubit accrued time")
	}
	if q, _ := rep.MaxIdle(); q != -1 {
		t.Fatalf("MaxIdle qubit = %d on an idle-free circuit", q)
	}
}
