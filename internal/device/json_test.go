package device

import (
	"strings"
	"testing"

	"edm/internal/rng"
)

func TestJSONRoundTrip(t *testing.T) {
	cal := Generate(Melbourne(), MelbourneProfile(), rng.New(42))
	data, err := cal.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topo.Name != cal.Topo.Name || got.Topo.Qubits != cal.Topo.Qubits {
		t.Fatal("topology header changed")
	}
	if len(got.Topo.Edges()) != len(cal.Topo.Edges()) {
		t.Fatal("edge count changed")
	}
	for q := 0; q < cal.Topo.Qubits; q++ {
		if got.SQErr[q] != cal.SQErr[q] || got.Meas10[q] != cal.Meas10[q] ||
			got.T1us[q] != cal.T1us[q] || got.CohY[q] != cal.CohY[q] {
			t.Fatalf("per-qubit data changed at %d", q)
		}
	}
	for _, e := range cal.Topo.Edges() {
		if got.CXErr[e] != cal.CXErr[e] || got.CXCohZZ[e] != cal.CXCohZZ[e] ||
			got.CrossZZ[e] != cal.CrossZZ[e] {
			t.Fatalf("link data changed at %v", e)
		}
	}
	if got.ReadoutCorr != cal.ReadoutCorr || got.MeasTimeNs != cal.MeasTimeNs {
		t.Fatal("scalar fields changed")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cal := Generate(Linear(3), MelbourneProfile(), rng.New(1))
	cal.SQErr = cal.SQErr[:1]
	if _, err := cal.EncodeJSON(); err == nil {
		t.Fatal("invalid calibration encoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{}`,
		`{"topology":{"name":"x","qubits":0}}`,
		`{"topology":{"name":"x","qubits":2,"edges":[[0,5]]}}`,
		`{"topology":{"name":"x","qubits":2,"edges":[[0,0]]}}`,
	}
	for _, src := range cases {
		if _, err := DecodeJSON([]byte(src)); err == nil {
			t.Errorf("DecodeJSON(%q) succeeded", src)
		}
	}
	// Structurally fine but fails calibration validation (missing link data
	// arrays).
	ok := `{"topology":{"name":"x","qubits":2,"edges":[[0,1]]},
	  "sq_err":[0,0],"meas01":[0,0],"meas10":[0,0],
	  "t1_us":[1,1],"t2_us":[1,1],"coh_y":[0,0],"coh_z":[0,0],
	  "links":[],"gate_1q_ns":1,"gate_2q_ns":1,"meas_ns":1}`
	if _, err := DecodeJSON([]byte(ok)); err == nil {
		t.Error("missing link data accepted")
	}
}

func TestDecodeHandWrittenProfile(t *testing.T) {
	src := `{
	  "topology": {"name": "toy-2q", "qubits": 2, "edges": [[0, 1]]},
	  "sq_err": [0.001, 0.002],
	  "meas01": [0.02, 0.03],
	  "meas10": [0.05, 0.06],
	  "t1_us": [50, 45],
	  "t2_us": [30, 25],
	  "coh_y": [0.1, -0.1],
	  "coh_z": [0.05, 0.05],
	  "links": [{"a": 0, "b": 1, "cx_err": 0.03, "cx_coh_zz": 0.2, "cross_zz": 0.05}],
	  "readout_corr": 0.3,
	  "gate_1q_ns": 100,
	  "gate_2q_ns": 350,
	  "meas_ns": 1000
	}`
	cal, err := DecodeJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if cal.CXErr[NewEdge(0, 1)] != 0.03 {
		t.Fatalf("link data wrong: %v", cal.CXErr)
	}
	if cal.Topo.Name != "toy-2q" {
		t.Fatal("name lost")
	}
}

func TestJSONIsReadable(t *testing.T) {
	cal := Generate(Linear(2), MelbourneProfile(), rng.New(2))
	data, err := cal.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"topology"`, `"cx_err"`, `"t1_us"`, `"meas_ns"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}
