package device

import (
	"math"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
)

func TestMelbourneTopology(t *testing.T) {
	m := Melbourne()
	if m.Qubits != 14 {
		t.Fatalf("qubits = %d", m.Qubits)
	}
	if got := len(m.Edges()); got != 18 {
		t.Fatalf("edges = %d, want 18", got)
	}
	if !m.Graph().IsConnected() {
		t.Fatal("melbourne not connected")
	}
	// Spot-check the published coupling map.
	for _, e := range [][2]int{{0, 1}, {1, 13}, {4, 10}, {6, 8}, {12, 13}} {
		if !m.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if m.HasEdge(0, 13) || m.HasEdge(6, 7) {
		t.Error("phantom edge present")
	}
}

func TestFactories(t *testing.T) {
	if l := Linear(5); l.Qubits != 5 || len(l.Edges()) != 4 {
		t.Fatal("Linear wrong")
	}
	if r := Ring(6); len(r.Edges()) != 6 || !r.HasEdge(0, 5) {
		t.Fatal("Ring wrong")
	}
	g := Grid(2, 3)
	if g.Qubits != 6 || len(g.Edges()) != 7 {
		t.Fatalf("Grid edges = %d", len(g.Edges()))
	}
	mustPanic(t, func() { Ring(2) })
	mustPanic(t, func() { Grid(0, 3) })
}

func TestDistance(t *testing.T) {
	l := Linear(5)
	if d := l.Distance(0, 4); d != 4 {
		t.Fatalf("Distance = %d", d)
	}
	if d := l.Distance(2, 2); d != 0 {
		t.Fatalf("self Distance = %d", d)
	}
}

func TestNewEdgeNormalizes(t *testing.T) {
	if e := NewEdge(5, 2); e.A != 2 || e.B != 5 {
		t.Fatalf("edge = %v", e)
	}
	mustPanic(t, func() { NewEdge(3, 3) })
}

func TestGenerateValid(t *testing.T) {
	topo := Melbourne()
	cal := Generate(topo, MelbourneProfile(), rng.New(42))
	if err := cal.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Determinism.
	cal2 := Generate(topo, MelbourneProfile(), rng.New(42))
	for q := 0; q < topo.Qubits; q++ {
		if cal.SQErr[q] != cal2.SQErr[q] || cal.Meas10[q] != cal2.Meas10[q] {
			t.Fatal("Generate not deterministic")
		}
	}
	// Different seeds differ.
	cal3 := Generate(topo, MelbourneProfile(), rng.New(43))
	same := 0
	for q := 0; q < topo.Qubits; q++ {
		if cal.SQErr[q] == cal3.SQErr[q] {
			same++
		}
	}
	if same == topo.Qubits {
		t.Fatal("different seeds produced identical calibrations")
	}
}

func TestGenerateMagnitudes(t *testing.T) {
	// Averaged over many draws, rates should sit near the profile means
	// reported in the paper for IBMQ-14.
	topo := Melbourne()
	p := MelbourneProfile()
	var sq, cx, meas float64
	var nq, ne int
	for seed := 0; seed < 30; seed++ {
		cal := Generate(topo, p, rng.New(uint64(seed)))
		for q := 0; q < topo.Qubits; q++ {
			sq += cal.SQErr[q]
			meas += cal.MeasErrAvg(q)
			nq++
		}
		for _, e := range topo.Edges() {
			cx += cal.CXErr[e]
			ne++
		}
	}
	sqAvg, cxAvg, measAvg := sq/float64(nq), cx/float64(ne), meas/float64(nq)
	if sqAvg < 0.0005 || sqAvg > 0.003 {
		t.Errorf("1q error average %v not near 0.1%%", sqAvg)
	}
	if cxAvg < 0.02 || cxAvg > 0.09 {
		t.Errorf("CX error average %v not near 4%%", cxAvg)
	}
	if measAvg < 0.04 || measAvg > 0.16 {
		t.Errorf("readout error average %v not near 8%%", measAvg)
	}
}

func TestGenerateVariation(t *testing.T) {
	// The paper reports up to 20x variation in link reliability; our draws
	// must show large (>=4x) spread within a single calibration.
	cal := Generate(Melbourne(), MelbourneProfile(), rng.New(7))
	min, max := math.Inf(1), 0.0
	for _, v := range cal.CXErr {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min < 4 {
		t.Errorf("CX error spread %vx too small", max/min)
	}
}

func TestGenerateReadoutBias(t *testing.T) {
	// Meas10 (reading 1 as 0) should on average exceed Meas01, the
	// state-dependent bias from the companion paper.
	var m01, m10 float64
	for seed := 0; seed < 20; seed++ {
		cal := Generate(Melbourne(), MelbourneProfile(), rng.New(uint64(seed)))
		for q := 0; q < 14; q++ {
			m01 += cal.Meas01[q]
			m10 += cal.Meas10[q]
		}
	}
	if m10 <= m01 {
		t.Errorf("readout bias missing: m10=%v m01=%v", m10, m01)
	}
}

func TestGenerateT2Bound(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		cal := Generate(Melbourne(), MelbourneProfile(), rng.New(uint64(seed)))
		for q := 0; q < 14; q++ {
			if cal.T2us[q] > 2*cal.T1us[q]+1e-9 {
				t.Fatalf("T2 > 2*T1 on qubit %d", q)
			}
		}
	}
}

func TestIdealProfileIsQuiet(t *testing.T) {
	cal := Generate(Melbourne(), IdealProfile(), rng.New(1))
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 14; q++ {
		if cal.SQErr[q] != 0 || cal.Meas01[q] != 0 || cal.CohY[q] != 0 {
			t.Fatal("ideal profile has noise")
		}
	}
	for _, e := range cal.Topo.Edges() {
		if cal.CXErr[e] != 0 || cal.CXCohZZ[e] != 0 {
			t.Fatal("ideal profile has link noise")
		}
	}
}

func TestDrift(t *testing.T) {
	cal := Generate(Melbourne(), MelbourneProfile(), rng.New(5))
	d := cal.Drift(0.3, rng.New(6))
	if err := d.Validate(); err != nil {
		t.Fatalf("drifted calibration invalid: %v", err)
	}
	// Drift changes values but keeps them in the same ballpark.
	changed := 0
	for q := 0; q < 14; q++ {
		if d.SQErr[q] != cal.SQErr[q] {
			changed++
		}
		ratio := d.Meas10[q] / cal.Meas10[q]
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("drift ratio %v too extreme", ratio)
		}
	}
	if changed == 0 {
		t.Fatal("Drift changed nothing")
	}
	// Original untouched.
	cal2 := Generate(Melbourne(), MelbourneProfile(), rng.New(5))
	for q := 0; q < 14; q++ {
		if cal.SQErr[q] != cal2.SQErr[q] {
			t.Fatal("Drift mutated the source calibration")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	cal := Generate(Melbourne(), MelbourneProfile(), rng.New(9))
	c := cal.Clone()
	c.SQErr[0] = 0.9
	c.CXErr[NewEdge(0, 1)] = 0.9
	if cal.SQErr[0] == 0.9 || cal.CXErr[NewEdge(0, 1)] == 0.9 {
		t.Fatal("Clone shares storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := Generate(Melbourne(), MelbourneProfile(), rng.New(11))
	cases := []func(c *Calibration){
		func(c *Calibration) { c.SQErr = c.SQErr[:3] },
		func(c *Calibration) { c.Meas01[2] = 1.5 },
		func(c *Calibration) { c.T1us[0] = 0 },
		func(c *Calibration) { delete(c.CXErr, NewEdge(0, 1)) },
		func(c *Calibration) { c.CXErr[NewEdge(0, 1)] = -0.1 },
		func(c *Calibration) { delete(c.CrossZZ, NewEdge(0, 1)) },
		func(c *Calibration) { c.Gate1QTimeNs = 0 },
	}
	for i, corrupt := range cases {
		c := good.Clone()
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: corruption not caught", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good calibration invalid: %v", err)
	}
}

func TestESP(t *testing.T) {
	topo := Linear(3)
	cal := Generate(topo, IdealProfile(), rng.New(1))
	cal.SQErr = []float64{0.1, 0, 0}
	cal.Meas01 = []float64{0.2, 0.2, 0}
	cal.Meas10 = []float64{0.2, 0.2, 0}
	cal.CXErr[NewEdge(0, 1)] = 0.5

	c := circuit.New(3, 3)
	c.H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	got := MustESP(c, cal)
	want := (1 - 0.1) * (1 - 0.5) * (1 - 0.2) * (1 - 0.2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ESP = %v, want %v", got, want)
	}
}

func TestESPSwapCountsAsThreeCX(t *testing.T) {
	topo := Linear(2)
	cal := Generate(topo, IdealProfile(), rng.New(1))
	cal.CXErr[NewEdge(0, 1)] = 0.1
	c := circuit.New(2, 0)
	c.SWAP(0, 1)
	got := MustESP(c, cal)
	want := math.Pow(0.9, 3)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SWAP ESP = %v, want %v", got, want)
	}
}

func TestESPRejectsCouplingViolation(t *testing.T) {
	topo := Linear(3)
	cal := Generate(topo, IdealProfile(), rng.New(1))
	c := circuit.New(3, 0)
	c.CX(0, 2) // not coupled on a line
	if _, err := ESP(c, cal); err == nil {
		t.Fatal("coupling violation accepted")
	}
	mustPanic(t, func() { MustESP(c, cal) })
}

func TestESPRejectsOversizedCircuit(t *testing.T) {
	cal := Generate(Linear(2), IdealProfile(), rng.New(1))
	if _, err := ESP(circuit.New(5, 0), cal); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestESPIgnoresBarrierAndID(t *testing.T) {
	cal := Generate(Linear(2), MelbourneProfile(), rng.New(2))
	c := circuit.New(2, 0)
	c.Barrier().ID(0).ID(1)
	if got := MustESP(c, cal); got != 1 {
		t.Fatalf("ESP = %v, want 1", got)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestTokyoTopology(t *testing.T) {
	tk := Tokyo()
	if tk.Qubits != 20 {
		t.Fatalf("qubits = %d", tk.Qubits)
	}
	if got := len(tk.Edges()); got != 43 {
		t.Fatalf("edges = %d, want 43", got)
	}
	if !tk.Graph().IsConnected() {
		t.Fatal("tokyo not connected")
	}
	for _, e := range [][2]int{{0, 1}, {4, 9}, {1, 7}, {14, 18}, {10, 15}} {
		if !tk.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if tk.HasEdge(0, 6) || tk.HasEdge(9, 13) {
		t.Error("phantom diagonal present")
	}
	// A richer machine: calibrations generate and EDM pools exist.
	cal := Generate(tk, MelbourneProfile(), rng.New(1))
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
}
