package device

import (
	"errors"
	"fmt"
	"math"
)

// ErrDeviceTooWide is returned by APIs whose representation still
// assumes a bounded device width when handed a larger device. Callers
// must surface it rather than silently truncating: a mask that drops
// qubit 192+ would corrupt layouts, diffs and footprints invisibly.
var ErrDeviceTooWide = errors.New("device: device wider than the supported mask width")

// HeavyHexFalcon27 returns the 27-qubit heavy-hexagon coupling graph of
// IBM's Falcon processors (ibmq_montreal, ibm_cairo, ...): hexagon
// cells sharing edges, with qubits on both the vertices and the edge
// midpoints, so no qubit couples to more than three neighbours. The
// edge list is the published coupling map.
func HeavyHexFalcon27() *Topology {
	edges := []Edge{
		{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8},
		{6, 7}, {7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14},
		{12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19},
		{17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
		{23, 24}, {24, 25}, {25, 26},
	}
	return NewTopology("heavy-hex-falcon-27", 27, edges)
}

// HeavyHexEagle127 returns the 127-qubit heavy-hexagon lattice of IBM's
// Eagle processors (ibm_washington coupling map): seven long rows of
// 14-15 qubits joined by columns of four connector qubits, connector
// positions alternating by two sites between successive gaps. 127
// qubits, 144 edges, maximum degree 3.
func HeavyHexEagle127() *Topology {
	rowStart := [7]int{0, 18, 37, 56, 75, 94, 113}
	rowLen := [7]int{14, 15, 15, 15, 15, 15, 14}
	connStart := [6]int{14, 33, 52, 71, 90, 109}

	var edges []Edge
	for r := 0; r < 7; r++ {
		for i := 0; i+1 < rowLen[r]; i++ {
			edges = append(edges, Edge{rowStart[r] + i, rowStart[r] + i + 1})
		}
	}
	posA := [4]int{0, 4, 8, 12}
	posB := [4]int{2, 6, 10, 14}
	for gap := 0; gap < 6; gap++ {
		pos := posA
		if gap%2 == 1 {
			pos = posB
		}
		for k := 0; k < 4; k++ {
			conn := connStart[gap] + k
			upper := rowStart[gap] + pos[k]
			lower := rowStart[gap+1] + pos[k]
			if gap+1 == 6 {
				// The bottom row is one site shorter and shifted, so
				// its attachment points sit one position earlier.
				lower--
			}
			edges = append(edges, NewEdge(upper, conn), NewEdge(conn, lower))
		}
	}
	return NewTopology("heavy-hex-eagle-127", 127, edges)
}

// HeavyHexProfile returns generation parameters for the heavy-hex
// devices. Stochastic rates are tighter than Melbourne's, matching the
// generational improvement of Falcon/Eagle hardware, but the profile's
// defining property is that it is *Clifford-clean*: every coherent
// (unitary) noise term is zero and T1/T2 are infinite, so the only
// error channels are Pauli (depolarizing) gate noise and readout flips
// — all of which the stabilizer tableau engine models exactly. That is
// what lets 127-qubit workloads execute at all: any coherent angle or
// finite damping would inject non-Clifford steps and force the
// statevector fallback, which cannot exist past 64 qubits.
//
// T1/T2 must be math.Inf, not merely huge: a finite T1 yields
// 1-exp(-dt/T1) strictly greater than zero and the compiler would emit
// (non-Clifford) damping steps for every gate window.
func HeavyHexProfile() Profile {
	return Profile{
		SQErrMean: 0.0005, SQErrSpread: 0.5,
		CXErrMean: 0.012, CXErrSpread: 0.6,
		Meas01Mean: 0.01, Meas01Spread: 0.8,
		Meas10Mean: 0.02, Meas10Spread: 0.8,
		T1MeanUs: math.Inf(1), T2MeanUs: math.Inf(1),
		ReadoutCorr: 0.25,
		BadQubits:   4,
		BadFactor:   3.0,
		Gate1QNs:    35,
		Gate2QNs:    300,
		MeasNs:      700,
	}
}

// ByName resolves a device name to its topology and calibration
// profile. The empty name means the default Melbourne device, keeping
// existing serve configurations valid.
func ByName(name string) (*Topology, Profile, error) {
	switch name {
	case "", "melbourne":
		return Melbourne(), MelbourneProfile(), nil
	case "tokyo":
		return Tokyo(), MelbourneProfile(), nil
	case "falcon27":
		return HeavyHexFalcon27(), HeavyHexProfile(), nil
	case "eagle127":
		return HeavyHexEagle127(), HeavyHexProfile(), nil
	}
	return nil, Profile{}, fmt.Errorf("device: unknown device %q (have melbourne, tokyo, falcon27, eagle127)", name)
}
