package device

import (
	"fmt"
	"math"

	"edm/internal/bitset"
)

// diff.go implements calibration diffing for drift-aware incremental
// recompilation (DESIGN.md §11). The whole-calibration Fingerprint tells
// the mapper *that* a calibration changed; the per-qubit and per-edge
// sub-fingerprints and CalDiff tell it *where*, so the Top-K candidate
// pool can be invalidated per footprint instead of wholesale. The
// variability-aware characterization line (PAPERS.md: "A Case for
// Variability-Aware Policies...") reports exactly this structure on real
// hardware: error rates move per qubit and per link between calibration
// cycles, not globally.

// QubitFingerprint hashes every per-qubit calibration field of qubit q
// (stochastic rates, coherence times and coherent angles). Any bit
// change in any of those fields — and nothing else — changes the result.
func (c *Calibration) QubitFingerprint(q int) uint64 {
	h := fpMix(fpOffset, uint64(int64(q)))
	for _, f := range [...]float64{
		c.SQErr[q], c.Meas01[q], c.Meas10[q],
		c.T1us[q], c.T2us[q], c.CohY[q], c.CohZ[q],
	} {
		h = fpMix(h, math.Float64bits(f))
	}
	return h
}

// EdgeFingerprint hashes every per-link calibration field of edge e.
// Any bit change in any of those fields — and nothing else — changes
// the result.
func (c *Calibration) EdgeFingerprint(e Edge) uint64 {
	h := fpMix(fpOffset, uint64(e.A)<<32|uint64(uint32(e.B)))
	h = fpMix(h, math.Float64bits(c.CXErr[e]))
	h = fpMix(h, math.Float64bits(c.CXCohZZ[e]))
	h = fpMix(h, math.Float64bits(c.CrossZZ[e]))
	return h
}

// DiffStats summarizes a calibration diff for logging: element counts,
// how many moved at all (any bit), how many moved beyond the tolerance,
// and the largest relative delta seen on each axis.
type DiffStats struct {
	Qubits, Edges               int // device totals
	TouchedQubits, TouchedEdges int // any-bit changes
	ChangedQubits, ChangedEdges int // changes beyond the tolerance
	MaxRelQubit, MaxRelEdge     float64
	Global                      bool // topology or global-field change
}

// String renders the one-line log form.
func (s DiffStats) String() string {
	if s.Global {
		return "diff: global change (topology or device-wide field)"
	}
	return fmt.Sprintf("diff: qubits %d/%d touched (%d beyond tol, max rel %.2e), edges %d/%d touched (%d beyond tol, max rel %.2e)",
		s.TouchedQubits, s.Qubits, s.ChangedQubits, s.MaxRelQubit,
		s.TouchedEdges, s.Edges, s.ChangedEdges, s.MaxRelEdge)
}

// CalDiff is the element-wise difference between two calibrations of the
// same device, the input to the mapper's incremental recompilation path.
// Qubit masks hold qubit indices; edge masks hold edge indices (the
// position of the edge in Topo.Edges() order). The masks are inline
// multi-word bitsets, so a CalDiff is a flat value with no heap
// footprint; devices wider than bitset.Cap (qubits or edges) degrade
// to a Global diff — explicitly conservative, never silently truncated.
//
// Two granularities coexist: the Any masks flag every element whose
// sub-fingerprint moved at all (any bit — the exactness test: untouched
// elements contribute bit-identical ESP factors), while Qubits/Edges
// flag only moves whose relative delta exceeds Tol (the structural
// test: routing and placement decisions are re-verified only where the
// device moved materially). Tol = 0 makes the two identical, so every
// bit change counts — degenerating to today's full invalidation.
type CalDiff struct {
	Tol    float64
	Global bool // topology, gate-time, ReadoutCorr or device-width change: no reuse possible

	Qubits    bitset.Set // beyond-tol changed qubits
	Edges     bitset.Set // beyond-tol changed edges, Topo.Edges() order
	QubitsAny bitset.Set // any-bit changed qubits
	EdgesAny  bitset.Set // any-bit changed edges

	Stats DiffStats
}

// Full reports whether the diff admits no incremental reuse at all:
// a global change, or any change under zero tolerance.
func (d CalDiff) Full() bool {
	return d.Global || (d.Tol <= 0 && d.Stats.TouchedQubits+d.Stats.TouchedEdges > 0)
}

func (d CalDiff) QubitChanged(q int) bool { return d.Qubits.Has(q) }
func (d CalDiff) QubitTouched(q int) bool { return d.QubitsAny.Has(q) }
func (d CalDiff) EdgeChanged(i int) bool  { return d.Edges.Has(i) }
func (d CalDiff) EdgeTouched(i int) bool  { return d.EdgesAny.Has(i) }

// relDelta is the symmetric relative difference |a-b| / max(|a|,|b|);
// zero when the values are equal (including both zero).
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// Diff compares two calibrations of the same device under a relative
// tolerance. A change of topology, gate times or readout correlation —
// anything without a per-element footprint — marks the diff Global.
// With tol = 0 every bit change counts as beyond-tolerance.
func Diff(old, new *Calibration, tol float64) CalDiff {
	d := CalDiff{Tol: tol}
	if old.Topo.Fingerprint() != new.Topo.Fingerprint() ||
		math.Float64bits(old.ReadoutCorr) != math.Float64bits(new.ReadoutCorr) ||
		math.Float64bits(old.Gate1QTimeNs) != math.Float64bits(new.Gate1QTimeNs) ||
		math.Float64bits(old.Gate2QTimeNs) != math.Float64bits(new.Gate2QTimeNs) ||
		math.Float64bits(old.MeasTimeNs) != math.Float64bits(new.MeasTimeNs) {
		d.Global = true
		d.Stats.Global = true
		return d
	}
	n := new.Topo.Qubits
	edges := new.Topo.Edges()
	if n > bitset.Cap || len(edges) > bitset.Cap {
		// Wider than the inline masks can index: fall back to a Global
		// diff (full invalidation) rather than dropping high elements.
		d.Global = true
		d.Stats.Global = true
		return d
	}
	d.Stats.Qubits, d.Stats.Edges = n, len(edges)

	for q := 0; q < n; q++ {
		touched := false
		maxRel := 0.0
		for _, p := range [...][2]float64{
			{old.SQErr[q], new.SQErr[q]}, {old.Meas01[q], new.Meas01[q]},
			{old.Meas10[q], new.Meas10[q]}, {old.T1us[q], new.T1us[q]},
			{old.T2us[q], new.T2us[q]}, {old.CohY[q], new.CohY[q]},
			{old.CohZ[q], new.CohZ[q]},
		} {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				touched = true
				maxRel = math.Max(maxRel, relDelta(p[0], p[1]))
			}
		}
		if !touched {
			continue
		}
		d.QubitsAny.Add(q)
		d.Stats.TouchedQubits++
		d.Stats.MaxRelQubit = math.Max(d.Stats.MaxRelQubit, maxRel)
		if tol <= 0 || maxRel > tol {
			d.Qubits.Add(q)
			d.Stats.ChangedQubits++
		}
	}
	for i, e := range edges {
		touched := false
		maxRel := 0.0
		for _, p := range [...][2]float64{
			{old.CXErr[e], new.CXErr[e]},
			{old.CXCohZZ[e], new.CXCohZZ[e]},
			{old.CrossZZ[e], new.CrossZZ[e]},
		} {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				touched = true
				maxRel = math.Max(maxRel, relDelta(p[0], p[1]))
			}
		}
		if !touched {
			continue
		}
		d.EdgesAny.Add(i)
		d.Stats.TouchedEdges++
		d.Stats.MaxRelEdge = math.Max(d.Stats.MaxRelEdge, maxRel)
		if tol <= 0 || maxRel > tol {
			d.Edges.Add(i)
			d.Stats.ChangedEdges++
		}
	}
	return d
}

// DiffStats is the logging summary of Diff(c, next, tol).
func (c *Calibration) DiffStats(next *Calibration, tol float64) DiffStats {
	return Diff(c, next, tol).Stats
}
