package device

import (
	"fmt"

	"edm/internal/circuit"
)

// ESP computes the Estimated Success Probability of a *physical* circuit
// (one whose qubit indices are device qubits) under the calibration, per
// paper Section 2.4:
//
//	ESP = prod gate success rates * prod measurement success rates
//
// One-qubit gates use the qubit's gate error, two-qubit gates the link's
// CX error (a SWAP counts as three CX), and measurements the symmetrized
// readout error. It returns an error if a two-qubit gate acts on a pair
// of qubits that the topology does not couple — ESP is only defined for
// executables that respect the machine's connectivity.
func ESP(c *circuit.Circuit, cal *Calibration) (float64, error) {
	if c.NumQubits > cal.Topo.Qubits {
		return 0, fmt.Errorf("device: circuit uses %d qubits, device has %d", c.NumQubits, cal.Topo.Qubits)
	}
	esp := 1.0
	for i, op := range c.Ops {
		switch {
		case op.Kind == circuit.Barrier || op.Kind == circuit.I:
			// no cost
		case op.Kind == circuit.Measure:
			esp *= 1 - cal.MeasErrAvg(op.Qubits[0])
		case op.Kind.IsTwoQubit():
			a, b := op.Qubits[0], op.Qubits[1]
			if !cal.Topo.HasEdge(a, b) {
				return 0, fmt.Errorf("device: op %d (%v %d %d) violates coupling map", i, op.Kind, a, b)
			}
			s := 1 - cal.CXErr[NewEdge(a, b)]
			if op.Kind == circuit.SWAP {
				esp *= s * s * s
			} else {
				esp *= s
			}
		default:
			esp *= 1 - cal.SQErr[op.Qubits[0]]
		}
	}
	return esp, nil
}

// MustESP is ESP that panics on a connectivity violation; for circuits
// already validated by the compiler.
func MustESP(c *circuit.Circuit, cal *Calibration) float64 {
	v, err := ESP(c, cal)
	if err != nil {
		panic(err)
	}
	return v
}
