package device

import (
	"encoding/json"
	"fmt"
)

// This file implements a stable JSON encoding for topologies and
// calibrations, so device profiles can be captured from one run (or
// hand-written for a real machine's published calibration data) and
// replayed in another. Edge-keyed maps are encoded as arrays of records
// because JSON object keys must be strings.

// calibrationJSON is the wire form of a Calibration.
type calibrationJSON struct {
	Topology     topologyJSON `json:"topology"`
	SQErr        []float64    `json:"sq_err"`
	Meas01       []float64    `json:"meas01"`
	Meas10       []float64    `json:"meas10"`
	T1us         []float64    `json:"t1_us"`
	T2us         []float64    `json:"t2_us"`
	CohY         []float64    `json:"coh_y"`
	CohZ         []float64    `json:"coh_z"`
	Links        []linkJSON   `json:"links"`
	ReadoutCorr  float64      `json:"readout_corr"`
	Gate1QTimeNs float64      `json:"gate_1q_ns"`
	Gate2QTimeNs float64      `json:"gate_2q_ns"`
	MeasTimeNs   float64      `json:"meas_ns"`
}

type topologyJSON struct {
	Name   string   `json:"name"`
	Qubits int      `json:"qubits"`
	Edges  [][2]int `json:"edges"`
}

type linkJSON struct {
	A       int     `json:"a"`
	B2      int     `json:"b"`
	CXErr   float64 `json:"cx_err"`
	CXCohZZ float64 `json:"cx_coh_zz"`
	CrossZZ float64 `json:"cross_zz"`
}

// EncodeJSON serializes the calibration (including its topology) as
// indented JSON.
func (c *Calibration) EncodeJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("device: refusing to encode invalid calibration: %w", err)
	}
	edges := c.Topo.Edges()
	w := calibrationJSON{
		Topology: topologyJSON{
			Name:   c.Topo.Name,
			Qubits: c.Topo.Qubits,
		},
		SQErr: c.SQErr, Meas01: c.Meas01, Meas10: c.Meas10,
		T1us: c.T1us, T2us: c.T2us, CohY: c.CohY, CohZ: c.CohZ,
		ReadoutCorr:  c.ReadoutCorr,
		Gate1QTimeNs: c.Gate1QTimeNs,
		Gate2QTimeNs: c.Gate2QTimeNs,
		MeasTimeNs:   c.MeasTimeNs,
	}
	for _, e := range edges {
		w.Topology.Edges = append(w.Topology.Edges, [2]int{e.A, e.B})
		w.Links = append(w.Links, linkJSON{
			A: e.A, B2: e.B,
			CXErr:   c.CXErr[e],
			CXCohZZ: c.CXCohZZ[e],
			CrossZZ: c.CrossZZ[e],
		})
	}
	return json.MarshalIndent(w, "", "  ")
}

// DecodeJSON parses a calibration previously produced by EncodeJSON (or
// hand-written in the same schema) and validates it.
func DecodeJSON(data []byte) (*Calibration, error) {
	var w calibrationJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	if w.Topology.Qubits <= 0 {
		return nil, fmt.Errorf("device: topology has %d qubits", w.Topology.Qubits)
	}
	edges := make([]Edge, 0, len(w.Topology.Edges))
	for _, e := range w.Topology.Edges {
		if e[0] < 0 || e[0] >= w.Topology.Qubits || e[1] < 0 || e[1] >= w.Topology.Qubits || e[0] == e[1] {
			return nil, fmt.Errorf("device: invalid edge %v", e)
		}
		edges = append(edges, NewEdge(e[0], e[1]))
	}
	topo := NewTopology(w.Topology.Name, w.Topology.Qubits, edges)
	c := &Calibration{
		Topo:  topo,
		SQErr: w.SQErr, Meas01: w.Meas01, Meas10: w.Meas10,
		T1us: w.T1us, T2us: w.T2us, CohY: w.CohY, CohZ: w.CohZ,
		CXErr:        make(map[Edge]float64, len(w.Links)),
		CXCohZZ:      make(map[Edge]float64, len(w.Links)),
		CrossZZ:      make(map[Edge]float64, len(w.Links)),
		ReadoutCorr:  w.ReadoutCorr,
		Gate1QTimeNs: w.Gate1QTimeNs,
		Gate2QTimeNs: w.Gate2QTimeNs,
		MeasTimeNs:   w.MeasTimeNs,
	}
	for _, l := range w.Links {
		if l.A < 0 || l.A >= topo.Qubits || l.B2 < 0 || l.B2 >= topo.Qubits || l.A == l.B2 {
			return nil, fmt.Errorf("device: invalid link record (%d,%d)", l.A, l.B2)
		}
		e := NewEdge(l.A, l.B2)
		c.CXErr[e] = l.CXErr
		c.CXCohZZ[e] = l.CXCohZZ
		c.CrossZZ[e] = l.CrossZZ
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
