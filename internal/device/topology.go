// Package device models the NISQ machine: its qubit-coupling topology and
// its calibration (per-qubit and per-link error rates). It stands in for
// the paper's ibmq-16-melbourne hardware. The calibration generator draws
// rates whose magnitudes and variability match what the paper reports for
// that machine (Sections 2.1, 2.4 and footnote 3), and a drift model
// perturbs them between rounds the way real calibration data moves between
// calibration cycles (Section 5.3).
package device

import (
	"fmt"
	"sort"

	"edm/internal/graph"
)

// Edge is an undirected qubit link, normalized so A < B.
type Edge struct {
	A, B int
}

// NewEdge returns the normalized edge for the pair.
func NewEdge(a, b int) Edge {
	if a == b {
		panic(fmt.Sprintf("device: self-edge at %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Topology is a named qubit-coupling graph.
type Topology struct {
	Name   string
	Qubits int
	g      *graph.Graph
}

// NewTopology builds a topology from an explicit edge list.
func NewTopology(name string, qubits int, edges []Edge) *Topology {
	g := graph.New(qubits)
	for _, e := range edges {
		g.AddEdge(e.A, e.B)
	}
	return &Topology{Name: name, Qubits: qubits, g: g}
}

// Graph returns the underlying coupling graph (shared; do not mutate).
func (t *Topology) Graph() *graph.Graph { return t.g }

// Edges returns the coupling edges in deterministic order.
func (t *Topology) Edges() []Edge {
	raw := t.g.Edges()
	out := make([]Edge, len(raw))
	for i, e := range raw {
		out[i] = Edge{A: e[0], B: e[1]}
	}
	return out
}

// HasEdge reports whether qubits a and b are coupled.
func (t *Topology) HasEdge(a, b int) bool { return t.g.HasEdge(a, b) }

// Neighbors returns the qubits coupled to q.
func (t *Topology) Neighbors(q int) []int { return t.g.Neighbors(q) }

// Distance returns the coupling-graph hop distance between two qubits, or
// -1 if they are disconnected.
func (t *Topology) Distance(a, b int) int {
	return t.g.BFSDistances(a)[b]
}

// Melbourne returns the 14-qubit coupling graph of ibmq-16-melbourne, the
// machine used for every hardware experiment in the paper (referred to
// there as IBMQ-14). The ladder layout is the published coupling map.
func Melbourne() *Topology {
	edges := []Edge{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, // top row
		{7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, // bottom row
		{1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9}, {6, 8}, // rungs
	}
	return NewTopology("ibmq-16-melbourne", 14, edges)
}

// Tokyo returns the 20-qubit coupling graph of ibmq-20-tokyo, the class
// of "IBM's 20-Qubit Machines" the paper's related work compiles for
// (Nishio et al.). It is a 4x5 lattice with diagonal couplings inside
// alternating unit squares.
func Tokyo() *Topology {
	edges := []Edge{
		// Rows.
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
		// Columns.
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
		{5, 10}, {6, 11}, {7, 12}, {8, 13}, {9, 14},
		{10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
		// Diagonals of the published map.
		{1, 7}, {2, 6}, {3, 9}, {4, 8},
		{5, 11}, {6, 10}, {7, 13}, {8, 12},
		{11, 17}, {12, 16}, {13, 19}, {14, 18},
	}
	return NewTopology("ibmq-20-tokyo", 20, edges)
}

// Linear returns a 1-D chain of n qubits.
func Linear(n int) *Topology {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return NewTopology(fmt.Sprintf("linear-%d", n), n, edges)
}

// Ring returns a cycle of n qubits.
func Ring(n int) *Topology {
	if n < 3 {
		panic("device: ring needs at least 3 qubits")
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, NewEdge(i, (i+1)%n))
	}
	return NewTopology(fmt.Sprintf("ring-%d", n), n, edges)
}

// Grid returns a rows x cols lattice.
func Grid(rows, cols int) *Topology {
	if rows < 1 || cols < 1 {
		panic("device: grid needs positive dimensions")
	}
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return NewTopology(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols, edges)
}

// SortEdges orders edges deterministically.
func SortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].A != es[j].A {
			return es[i].A < es[j].A
		}
		return es[i].B < es[j].B
	})
}
