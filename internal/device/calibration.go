package device

import (
	"fmt"
	"math"
	"sort"

	"edm/internal/rng"
)

// Calibration holds the error-characterization data for a device, the
// analogue of the data IBM publishes after every calibration cycle and
// exposes through the qiskit API (paper Section 2.4). Stochastic rates are
// probabilities; coherent terms are systematic rotation angles in radians.
// The coherent terms are what make errors *correlated* in the paper's
// sense: they are fixed properties of a physical qubit or link within a
// calibration window, so every trial executed on the same hardware makes
// the same systematic mistake.
type Calibration struct {
	Topo *Topology

	// Per-qubit stochastic rates.
	SQErr  []float64 // depolarizing error probability per one-qubit gate
	Meas01 []float64 // readout error P(read 1 | prepared 0)
	Meas10 []float64 // readout error P(read 0 | prepared 1); biased larger
	T1us   []float64 // amplitude-damping time constant, microseconds
	T2us   []float64 // dephasing time constant, microseconds

	// Per-qubit coherent (systematic) errors.
	CohY []float64 // over-rotation about Y applied with every gate on the qubit
	CohZ []float64 // phase drift about Z accumulated per idle window

	// Per-link rates.
	CXErr   map[Edge]float64 // depolarizing error probability per CX
	CXCohZZ map[Edge]float64 // systematic ZZ over-rotation applied with every CX
	CrossZZ map[Edge]float64 // spectator ZZ kick on this link when an adjacent CX fires

	// ReadoutCorr is the pairwise readout correlation: when a coupled
	// neighbour reads out 1, a qubit's own flip probabilities are scaled by
	// (1 + ReadoutCorr). Models the correlated SPAM errors reported by Sun
	// and Geller and cited in paper Section 2.6.
	ReadoutCorr float64

	// Gate durations, nanoseconds, used to convert T1/T2 into per-window
	// damping probabilities.
	Gate1QTimeNs float64
	Gate2QTimeNs float64
	MeasTimeNs   float64
}

// Validate checks structural consistency with the topology.
func (c *Calibration) Validate() error {
	n := c.Topo.Qubits
	perQubit := map[string][]float64{
		"SQErr": c.SQErr, "Meas01": c.Meas01, "Meas10": c.Meas10,
		"T1us": c.T1us, "T2us": c.T2us, "CohY": c.CohY, "CohZ": c.CohZ,
	}
	for name, v := range perQubit {
		if len(v) != n {
			return fmt.Errorf("device: %s has %d entries for %d qubits", name, len(v), n)
		}
	}
	for name, vals := range map[string][]float64{"SQErr": c.SQErr, "Meas01": c.Meas01, "Meas10": c.Meas10} {
		for q, p := range vals {
			if p < 0 || p > 1 {
				return fmt.Errorf("device: %s[%d] = %v out of [0,1]", name, q, p)
			}
		}
	}
	for q := 0; q < n; q++ {
		if c.T1us[q] <= 0 || c.T2us[q] <= 0 {
			return fmt.Errorf("device: non-positive coherence time on qubit %d", q)
		}
	}
	for _, e := range c.Topo.Edges() {
		p, ok := c.CXErr[e]
		if !ok {
			return fmt.Errorf("device: missing CXErr for edge %v", e)
		}
		if p < 0 || p > 1 {
			return fmt.Errorf("device: CXErr[%v] = %v out of [0,1]", e, p)
		}
		if _, ok := c.CXCohZZ[e]; !ok {
			return fmt.Errorf("device: missing CXCohZZ for edge %v", e)
		}
		if _, ok := c.CrossZZ[e]; !ok {
			return fmt.Errorf("device: missing CrossZZ for edge %v", e)
		}
	}
	if c.Gate1QTimeNs <= 0 || c.Gate2QTimeNs <= 0 || c.MeasTimeNs <= 0 {
		return fmt.Errorf("device: non-positive gate times")
	}
	return nil
}

// MeasErrAvg returns the symmetrized readout error of qubit q, the figure
// ESP uses.
func (c *Calibration) MeasErrAvg(q int) float64 {
	return (c.Meas01[q] + c.Meas10[q]) / 2
}

// Clone returns a deep copy.
func (c *Calibration) Clone() *Calibration {
	out := *c
	out.SQErr = append([]float64(nil), c.SQErr...)
	out.Meas01 = append([]float64(nil), c.Meas01...)
	out.Meas10 = append([]float64(nil), c.Meas10...)
	out.T1us = append([]float64(nil), c.T1us...)
	out.T2us = append([]float64(nil), c.T2us...)
	out.CohY = append([]float64(nil), c.CohY...)
	out.CohZ = append([]float64(nil), c.CohZ...)
	out.CXErr = cloneEdgeMap(c.CXErr)
	out.CXCohZZ = cloneEdgeMap(c.CXCohZZ)
	out.CrossZZ = cloneEdgeMap(c.CrossZZ)
	return &out
}

func cloneEdgeMap(m map[Edge]float64) map[Edge]float64 {
	out := make(map[Edge]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Profile parameterizes calibration generation. Rates are drawn
// log-normally around the mean (Spread is the sigma of the underlying
// normal, so Spread 1.0 yields roughly a 7x ratio between the 10th and
// 90th percentile — matching the up-to-20x link variation the paper
// reports); coherent angles are drawn uniformly in [-Max, Max].
type Profile struct {
	SQErrMean, SQErrSpread   float64
	CXErrMean, CXErrSpread   float64
	Meas01Mean, Meas01Spread float64
	Meas10Mean, Meas10Spread float64
	T1MeanUs, T1Spread       float64
	T2MeanUs, T2Spread       float64
	CohYMax                  float64
	CohZMax                  float64
	CXCohMax                 float64
	CrossMax                 float64
	ReadoutCorr              float64
	// BadQubits marks this many qubits (chosen pseudo-randomly) as
	// outliers whose readout error is scaled by BadFactor — melbourne's
	// Q11/Q12 with readout errors up to 30% (paper footnote 3).
	BadQubits int
	BadFactor float64
	Gate1QNs  float64
	Gate2QNs  float64
	MeasNs    float64
}

// MelbourneProfile returns generation parameters modelled on the error
// characteristics the paper reports for IBMQ-14: ~0.1% one-qubit gate
// error, few-percent CX error with large link-to-link variation, several
// percent readout error with a state-dependent bias and up-to-30%
// outliers, and T1 of about 50 microseconds / T2 of about 30
// microseconds. Relative to the raw hardware numbers, some incoherent
// means are set slightly lower and the coherent (systematic) terms
// correspondingly stronger: what the reproduction must preserve is the
// paper's error *structure* — comparable overall failure rates dominated
// by repeatable, mapping-specific mistakes — and the paper itself shows
// (Section 4.4) that matching only the incoherent magnitudes, as IID
// simulators do, fails to reproduce the machine's inference behaviour.
// DESIGN.md records the calibration choices.
func MelbourneProfile() Profile {
	return Profile{
		SQErrMean: 0.001, SQErrSpread: 0.6,
		CXErrMean: 0.025, CXErrSpread: 0.6,
		Meas01Mean: 0.03, Meas01Spread: 0.9,
		Meas10Mean: 0.06, Meas10Spread: 0.9,
		T1MeanUs: 50, T1Spread: 0.3,
		T2MeanUs: 30, T2Spread: 0.3,
		CohYMax:     0.30,
		CohZMax:     0.20,
		CXCohMax:    0.50,
		CrossMax:    0.20,
		ReadoutCorr: 0.35,
		BadQubits:   2,
		BadFactor:   3.0,
		Gate1QNs:    100,
		Gate2QNs:    350,
		MeasNs:      1000,
	}
}

// IdealProfile returns a noiseless profile (useful for validating that the
// noisy pipeline reduces to the ideal simulator when all rates vanish).
func IdealProfile() Profile {
	return Profile{
		T1MeanUs: 1e9, T2MeanUs: 1e9,
		Gate1QNs: 100, Gate2QNs: 350, MeasNs: 1000,
	}
}

// Generate draws a calibration for the topology from the profile. The
// result is deterministic in the RNG state, so a single seed reproduces an
// entire experimental campaign.
func Generate(topo *Topology, p Profile, r *rng.RNG) *Calibration {
	n := topo.Qubits
	c := &Calibration{
		Topo:         topo,
		SQErr:        make([]float64, n),
		Meas01:       make([]float64, n),
		Meas10:       make([]float64, n),
		T1us:         make([]float64, n),
		T2us:         make([]float64, n),
		CohY:         make([]float64, n),
		CohZ:         make([]float64, n),
		CXErr:        make(map[Edge]float64),
		CXCohZZ:      make(map[Edge]float64),
		CrossZZ:      make(map[Edge]float64),
		ReadoutCorr:  p.ReadoutCorr,
		Gate1QTimeNs: p.Gate1QNs,
		Gate2QTimeNs: p.Gate2QNs,
		MeasTimeNs:   p.MeasNs,
	}
	qr := r.Derive("qubits")
	for q := 0; q < n; q++ {
		// A per-qubit quality factor couples the qubit's error metrics:
		// a badly fabricated or poorly tuned qubit has elevated gate
		// error, readout error AND systematic miscalibration, and reduced
		// coherence. This coupling is what gives the compile-time ESP
		// (which sees only the stochastic rates) its good-but-imperfect
		// correlation with run-time success (paper Figure 8): the
		// coherent component tracks the stochastic one without being
		// visible to ESP.
		fq := math.Exp(p.SQErrSpread * qr.Norm())
		c.SQErr[q] = clamp(p.SQErrMean*fq*jitter(qr, p.SQErrSpread), 0, 0.25)
		c.Meas01[q] = clamp(p.Meas01Mean*fq*jitter(qr, p.Meas01Spread), 0, 0.45)
		c.Meas10[q] = clamp(p.Meas10Mean*fq*jitter(qr, p.Meas10Spread), 0, 0.45)
		c.T1us[q] = p.T1MeanUs * math.Exp(p.T1Spread*qr.Norm()) / math.Sqrt(fq)
		c.T2us[q] = p.T2MeanUs * math.Exp(p.T2Spread*qr.Norm()) / math.Sqrt(fq)
		// T2 <= 2*T1 physically.
		if c.T2us[q] > 2*c.T1us[q] {
			c.T2us[q] = 2 * c.T1us[q]
		}
		// Coherent magnitude couples only mildly (square root) to the
		// quality factor: systematic miscalibration afflicts good and bad
		// qubits alike, merely trending worse on bad ones. A strong
		// coupling would hand the ESP champion near-clean systematics,
		// letting it dominate every diverse alternative at run time — the
		// opposite of the comparable-quality, dissimilar-mistake members
		// the paper measures.
		mag := math.Sqrt(math.Min(fq, 2.5))
		c.CohY[q] = signedFloored(qr, p.CohYMax) * mag
		c.CohZ[q] = signedFloored(qr, p.CohZMax) * mag
	}
	// Outlier readout qubits.
	if p.BadQubits > 0 && p.BadFactor > 0 {
		perm := r.Derive("bad").Perm(n)
		for i := 0; i < p.BadQubits && i < n; i++ {
			q := perm[i]
			c.Meas01[q] = clamp(c.Meas01[q]*p.BadFactor, 0, 0.45)
			c.Meas10[q] = clamp(c.Meas10[q]*p.BadFactor, 0, 0.45)
		}
	}
	er := r.Derive("edges")
	for _, e := range topo.Edges() {
		// Per-link quality factor, coupling the link's stochastic CX
		// error to its systematic ZZ miscalibration for the same reason
		// as the per-qubit factor above.
		ge := math.Exp(p.CXErrSpread * er.Norm())
		c.CXErr[e] = clamp(p.CXErrMean*ge*jitter(er, p.CXErrSpread), 0, 0.4)
		c.CXCohZZ[e] = signedFloored(er, p.CXCohMax) * math.Sqrt(math.Min(ge, 2.5))
		c.CrossZZ[e] = signedFloored(er, p.CrossMax)
	}
	return c
}

// jitter returns an independent multiplicative wobble (half the metric's
// own spread) so coupled metrics are correlated, not identical.
func jitter(r *rng.RNG, spread float64) float64 {
	return math.Exp(spread / 2 * r.Norm())
}

// lognormal draws mean * exp(spread * N(0,1)), clamped to (0, max].
func lognormal(r *rng.RNG, mean, spread, max float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := mean * math.Exp(spread*r.Norm())
	if v > max {
		v = max
	}
	return v
}

func uniformSigned(r *rng.RNG, max float64) float64 {
	if max <= 0 {
		return 0
	}
	return (2*r.Float64() - 1) * max
}

// signedFloored draws a systematic miscalibration angle: random sign,
// magnitude uniform in [max/2, max]. The floor matters twice over: with
// magnitudes uniform around zero some qubits would be accidentally well
// calibrated and the mappings landing on them nearly error-free, and with
// a wide magnitude range ESP-comparable mappings would differ wildly in
// run-time quality. The regime the paper observed is instead that every
// mapping makes comparably strong but *differently directed* systematic
// mistakes (its Figure 6 members span well under 2x in IST).
func signedFloored(r *rng.RNG, max float64) float64 {
	if max <= 0 {
		return 0
	}
	mag := max * (0.5 + 0.5*r.Float64())
	if r.Bernoulli(0.5) {
		return -mag
	}
	return mag
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Drift returns a perturbed copy of the calibration, modelling the
// temporal variation between the data the compiler saw and the machine's
// behaviour at run time (paper Section 5.3: "the behavior of the devices
// can change unpredictably at runtime"). Stochastic rates are scaled by
// exp(f*N(0,1)); coherent angles receive additive noise of the same
// relative scale.
func (c *Calibration) Drift(f float64, r *rng.RNG) *Calibration {
	out := c.Clone()
	qr := r.Derive("qubit-drift")
	for q := range out.SQErr {
		out.SQErr[q] = clamp(out.SQErr[q]*math.Exp(f*qr.Norm()), 0, 0.25)
		out.Meas01[q] = clamp(out.Meas01[q]*math.Exp(f*qr.Norm()), 0, 0.45)
		out.Meas10[q] = clamp(out.Meas10[q]*math.Exp(f*qr.Norm()), 0, 0.45)
		out.T1us[q] *= math.Exp(f * qr.Norm() / 2)
		out.T2us[q] *= math.Exp(f * qr.Norm() / 2)
		if out.T2us[q] > 2*out.T1us[q] {
			out.T2us[q] = 2 * out.T1us[q]
		}
		// Coherent terms drift additively, but only where the base
		// calibration has any: a field generated at exactly zero (a
		// Clifford-clean profile like HeavyHexProfile) must stay zero or
		// drift would silently reintroduce non-Clifford physics. The
		// Norm() is drawn unconditionally so the RNG stream — and with
		// it every existing seeded campaign — is unchanged.
		if d := f * 0.05 * qr.Norm(); out.CohY[q] != 0 {
			out.CohY[q] += d
		}
		if d := f * 0.04 * qr.Norm(); out.CohZ[q] != 0 {
			out.CohZ[q] += d
		}
	}
	er := r.Derive("edge-drift")
	for _, e := range sortedEdges(out.CXErr) {
		out.CXErr[e] = clamp(out.CXErr[e]*math.Exp(f*er.Norm()), 0, 0.4)
	}
	for _, e := range sortedEdges(out.CXCohZZ) {
		if d := f * 0.08 * er.Norm(); out.CXCohZZ[e] != 0 {
			out.CXCohZZ[e] += d
		}
	}
	for _, e := range sortedEdges(out.CrossZZ) {
		if d := f * 0.02 * er.Norm(); out.CrossZZ[e] != 0 {
			out.CrossZZ[e] += d
		}
	}
	return out
}

// DriftLocal returns a perturbed copy modelling the *localized* drift a
// real device shows between calibration cycles ("A Case for
// Variability-Aware Policies...", PAPERS.md): a handful of elements move
// a lot while the rest barely move. hitQ qubits and hitE links (chosen
// pseudo-randomly from the RNG) drift strongly with relative scale
// `scale` using the same update shapes and clamps as Drift; every other
// element receives only a device-wide wobble of relative scale `jitter`.
// jitter = 0 leaves unhit elements bit-identical, which is what gives
// incremental recompilation (DESIGN.md §11) a sparse CalDiff to exploit;
// a small positive jitter exercises the tolerance ladder instead.
func (c *Calibration) DriftLocal(hitQ, hitE int, scale, jitter float64, r *rng.RNG) *Calibration {
	out := c.Clone()
	n := len(out.SQErr)
	hitQubit := make([]bool, n)
	perm := r.Derive("hit-qubits").Perm(n)
	for i := 0; i < hitQ && i < n; i++ {
		hitQubit[perm[i]] = true
	}
	edges := c.Topo.Edges()
	hitEdge := make([]bool, len(edges))
	eperm := r.Derive("hit-edges").Perm(len(edges))
	for i := 0; i < hitE && i < len(edges); i++ {
		hitEdge[eperm[i]] = true
	}
	qr := r.Derive("qubit-drift")
	for q := 0; q < n; q++ {
		f := jitter
		if hitQubit[q] {
			f = scale
		}
		if f == 0 {
			continue
		}
		out.SQErr[q] = clamp(out.SQErr[q]*math.Exp(f*qr.Norm()), 0, 0.25)
		out.Meas01[q] = clamp(out.Meas01[q]*math.Exp(f*qr.Norm()), 0, 0.45)
		out.Meas10[q] = clamp(out.Meas10[q]*math.Exp(f*qr.Norm()), 0, 0.45)
		out.T1us[q] *= math.Exp(f * qr.Norm() / 2)
		out.T2us[q] *= math.Exp(f * qr.Norm() / 2)
		if out.T2us[q] > 2*out.T1us[q] {
			out.T2us[q] = 2 * out.T1us[q]
		}
		// Same zero-field gating as Drift: draw, then apply only to
		// fields the base calibration actually has.
		if d := f * 0.05 * qr.Norm(); out.CohY[q] != 0 {
			out.CohY[q] += d
		}
		if d := f * 0.04 * qr.Norm(); out.CohZ[q] != 0 {
			out.CohZ[q] += d
		}
	}
	er := r.Derive("edge-drift")
	for i, e := range edges {
		f := jitter
		if hitEdge[i] {
			f = scale
		}
		if f == 0 {
			continue
		}
		out.CXErr[e] = clamp(out.CXErr[e]*math.Exp(f*er.Norm()), 0, 0.4)
		if d := f * 0.08 * er.Norm(); out.CXCohZZ[e] != 0 {
			out.CXCohZZ[e] += d
		}
		if d := f * 0.02 * er.Norm(); out.CrossZZ[e] != 0 {
			out.CrossZZ[e] += d
		}
	}
	return out
}

// sortedEdges returns the map's keys in (A, B) order. Drift consumes RNG
// draws while walking these maps, and Go randomizes map iteration order
// per process, so an unsorted walk would assign different drift to
// different edges on every run and break seed reproducibility.
func sortedEdges(m map[Edge]float64) []Edge {
	out := make([]Edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
