package device

import (
	"math"
	"testing"

	"edm/internal/rng"
)

func testCal(t *testing.T) *Calibration {
	t.Helper()
	return Generate(Melbourne(), MelbourneProfile(), rng.New(7))
}

// Each per-qubit field must flip exactly its own qubit's sub-fingerprint:
// no other qubit fingerprint, no edge fingerprint, and the whole-cal
// fingerprint must change too.
func TestQubitFingerprintFieldSensitivity(t *testing.T) {
	cal := testCal(t)
	n := cal.Topo.Qubits
	edges := cal.Topo.Edges()
	fields := map[string]func(c *Calibration, q int){
		"SQErr":  func(c *Calibration, q int) { c.SQErr[q] *= 1.0000001 },
		"Meas01": func(c *Calibration, q int) { c.Meas01[q] *= 1.0000001 },
		"Meas10": func(c *Calibration, q int) { c.Meas10[q] *= 1.0000001 },
		"T1us":   func(c *Calibration, q int) { c.T1us[q] *= 1.0000001 },
		"T2us":   func(c *Calibration, q int) { c.T2us[q] *= 1.0000001 },
		"CohY":   func(c *Calibration, q int) { c.CohY[q] += 1e-9 },
		"CohZ":   func(c *Calibration, q int) { c.CohZ[q] += 1e-9 },
	}
	for name, mutate := range fields {
		for _, q := range []int{0, n / 2, n - 1} {
			mod := cal.Clone()
			mutate(mod, q)
			if mod.QubitFingerprint(q) == cal.QubitFingerprint(q) {
				t.Errorf("%s[%d]: qubit sub-fingerprint did not change", name, q)
			}
			for p := 0; p < n; p++ {
				if p != q && mod.QubitFingerprint(p) != cal.QubitFingerprint(p) {
					t.Errorf("%s[%d]: qubit %d sub-fingerprint changed", name, q, p)
				}
			}
			for _, e := range edges {
				if mod.EdgeFingerprint(e) != cal.EdgeFingerprint(e) {
					t.Errorf("%s[%d]: edge %v sub-fingerprint changed", name, q, e)
				}
			}
			if mod.Fingerprint() == cal.Fingerprint() {
				t.Errorf("%s[%d]: whole-calibration fingerprint did not change", name, q)
			}
		}
	}
}

func TestEdgeFingerprintFieldSensitivity(t *testing.T) {
	cal := testCal(t)
	n := cal.Topo.Qubits
	edges := cal.Topo.Edges()
	fields := map[string]func(c *Calibration, e Edge){
		"CXErr":   func(c *Calibration, e Edge) { c.CXErr[e] *= 1.0000001 },
		"CXCohZZ": func(c *Calibration, e Edge) { c.CXCohZZ[e] += 1e-9 },
		"CrossZZ": func(c *Calibration, e Edge) { c.CrossZZ[e] += 1e-9 },
	}
	for name, mutate := range fields {
		for _, ei := range []int{0, len(edges) / 2, len(edges) - 1} {
			e := edges[ei]
			mod := cal.Clone()
			mutate(mod, e)
			if mod.EdgeFingerprint(e) == cal.EdgeFingerprint(e) {
				t.Errorf("%s[%v]: edge sub-fingerprint did not change", name, e)
			}
			for _, o := range edges {
				if o != e && mod.EdgeFingerprint(o) != cal.EdgeFingerprint(o) {
					t.Errorf("%s[%v]: edge %v sub-fingerprint changed", name, e, o)
				}
			}
			for q := 0; q < n; q++ {
				if mod.QubitFingerprint(q) != cal.QubitFingerprint(q) {
					t.Errorf("%s[%v]: qubit %d sub-fingerprint changed", name, e, q)
				}
			}
			if mod.Fingerprint() == cal.Fingerprint() {
				t.Errorf("%s[%v]: whole-calibration fingerprint did not change", name, e)
			}
		}
	}
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	cal := testCal(t)
	d := Diff(cal, cal.Clone(), 0)
	if d.Global || d.Full() {
		t.Fatalf("diff of identical calibrations is global/full: %+v", d.Stats)
	}
	s := d.Stats
	if s.TouchedQubits != 0 || s.TouchedEdges != 0 || s.ChangedQubits != 0 || s.ChangedEdges != 0 {
		t.Fatalf("diff of identical calibrations non-empty: %+v", s)
	}
	if s.Qubits != cal.Topo.Qubits || s.Edges != len(cal.Topo.Edges()) {
		t.Fatalf("diff totals wrong: %+v", s)
	}
}

func TestDiffToleranceLadder(t *testing.T) {
	cal := testCal(t)
	mod := cal.Clone()
	// A sub-tolerance wobble on qubit 3, a large move on qubit 5.
	mod.SQErr[3] *= 1 + 1e-6
	mod.Meas01[5] *= 1.5

	d := Diff(cal, mod, 1e-3)
	if d.Full() {
		t.Fatalf("tol=1e-3 diff reported full")
	}
	if d.Stats.TouchedQubits != 2 || !d.QubitTouched(3) || !d.QubitTouched(5) {
		t.Fatalf("touched mask wrong: %+v", d.Stats)
	}
	if d.Stats.ChangedQubits != 1 || d.QubitChanged(3) || !d.QubitChanged(5) {
		t.Fatalf("beyond-tol mask wrong: %+v", d.Stats)
	}
	if d.Stats.MaxRelQubit < 0.3 {
		t.Fatalf("MaxRelQubit = %v, want ~0.33", d.Stats.MaxRelQubit)
	}

	// tol = 0: every bit change is beyond tolerance and the diff is full.
	d0 := Diff(cal, mod, 0)
	if d0.Stats.ChangedQubits != 2 || !d0.QubitChanged(3) || !d0.QubitChanged(5) {
		t.Fatalf("tol=0 beyond-tol mask wrong: %+v", d0.Stats)
	}
	if !d0.Full() {
		t.Fatalf("tol=0 diff with changes must be full")
	}
}

func TestDiffEdgeTolerance(t *testing.T) {
	cal := testCal(t)
	edges := cal.Topo.Edges()
	mod := cal.Clone()
	mod.CXErr[edges[2]] *= 1 + 1e-7
	mod.CXCohZZ[edges[4]] += 0.3

	d := Diff(cal, mod, 1e-3)
	if d.Stats.TouchedEdges != 2 || !d.EdgeTouched(2) || !d.EdgeTouched(4) {
		t.Fatalf("touched edge mask wrong: %+v", d.Stats)
	}
	if d.Stats.ChangedEdges != 1 || d.EdgeChanged(2) || !d.EdgeChanged(4) {
		t.Fatalf("beyond-tol edge mask wrong: %+v", d.Stats)
	}
	if d.Stats.TouchedQubits != 0 {
		t.Fatalf("edge-only change touched qubits: %+v", d.Stats)
	}
}

func TestDiffGlobalChanges(t *testing.T) {
	cal := testCal(t)
	mod := cal.Clone()
	mod.Gate2QTimeNs += 1
	if d := Diff(cal, mod, 1e-3); !d.Global || !d.Full() {
		t.Fatalf("gate-time change not global")
	}
	mod = cal.Clone()
	mod.ReadoutCorr += 0.01
	if d := Diff(cal, mod, 1e-3); !d.Global {
		t.Fatalf("ReadoutCorr change not global")
	}
	other := Generate(Tokyo(), MelbourneProfile(), rng.New(7))
	if d := Diff(cal, other, 1e-3); !d.Global {
		t.Fatalf("topology change not global")
	}
}

func TestDiffStatsSummary(t *testing.T) {
	cal := testCal(t)
	mod := cal.Clone()
	mod.T1us[1] *= 2
	s := cal.DiffStats(mod, 1e-3)
	if s.TouchedQubits != 1 || s.ChangedQubits != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.MaxRelQubit-0.5) > 1e-12 {
		t.Fatalf("MaxRelQubit = %v, want 0.5", s.MaxRelQubit)
	}
	if s.String() == "" {
		t.Fatalf("empty summary string")
	}
}

func TestDriftLocalSparseAndDeterministic(t *testing.T) {
	cal := testCal(t)
	a := cal.DriftLocal(2, 3, 0.4, 0, rng.New(11))
	b := cal.DriftLocal(2, 3, 0.4, 0, rng.New(11))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("DriftLocal not deterministic in the seed")
	}
	if c := cal.DriftLocal(2, 3, 0.4, 0, rng.New(12)); c.Fingerprint() == a.Fingerprint() {
		t.Fatalf("DriftLocal ignores the seed")
	}
	// With jitter 0 exactly the hit elements move, bit-identically nothing
	// else: the diff's any-bit masks count precisely hitQ and hitE.
	d := Diff(cal, a, 0)
	if d.Stats.TouchedQubits != 2 {
		t.Fatalf("TouchedQubits = %d, want 2", d.Stats.TouchedQubits)
	}
	if d.Stats.TouchedEdges != 3 {
		t.Fatalf("TouchedEdges = %d, want 3", d.Stats.TouchedEdges)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("drifted calibration invalid: %v", err)
	}
}

func TestDriftLocalJitterStaysUnderTolerance(t *testing.T) {
	cal := testCal(t)
	// Strong hits plus a tiny device-wide jitter: at a loose tolerance only
	// the hits are beyond-tol, while everything is touched at any-bit level.
	a := cal.DriftLocal(2, 2, 0.5, 1e-5, rng.New(3))
	d := Diff(cal, a, 1e-2)
	if d.Stats.TouchedQubits != cal.Topo.Qubits {
		t.Fatalf("jitter should touch every qubit: %+v", d.Stats)
	}
	if d.Stats.ChangedQubits > 4 || d.Stats.ChangedQubits == 0 {
		t.Fatalf("beyond-tol qubits = %d, want the ~2 hit qubits", d.Stats.ChangedQubits)
	}
	if d.Stats.ChangedEdges > 4 || d.Stats.ChangedEdges == 0 {
		t.Fatalf("beyond-tol edges = %d, want the ~2 hit edges", d.Stats.ChangedEdges)
	}
}
