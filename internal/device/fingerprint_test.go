package device

import (
	"testing"

	"edm/internal/rng"
)

func TestFingerprintStableAndSensitive(t *testing.T) {
	cal := Generate(Melbourne(), MelbourneProfile(), rng.New(7))
	f1 := cal.Fingerprint()
	if f2 := cal.Fingerprint(); f2 != f1 {
		t.Fatalf("fingerprint not stable: %x vs %x", f1, f2)
	}
	if f2 := cal.Clone().Fingerprint(); f2 != f1 {
		t.Fatalf("clone fingerprint differs: %x vs %x", f1, f2)
	}

	other := Generate(Melbourne(), MelbourneProfile(), rng.New(8))
	if other.Fingerprint() == f1 {
		t.Fatal("different calibrations share a fingerprint")
	}

	mutated := cal.Clone()
	mutated.SQErr[3] += 1e-9
	if mutated.Fingerprint() == f1 {
		t.Fatal("per-qubit rate change did not alter fingerprint")
	}

	mutated = cal.Clone()
	e := cal.Topo.Edges()[0]
	mutated.CXErr[e] += 1e-9
	if mutated.Fingerprint() == f1 {
		t.Fatal("per-link rate change did not alter fingerprint")
	}

	drifted := cal.Drift(0.2, rng.New(9))
	if drifted.Fingerprint() == f1 {
		t.Fatal("drifted calibration shares a fingerprint")
	}
}

func TestTopologyAndProfileFingerprints(t *testing.T) {
	if Melbourne().Fingerprint() != Melbourne().Fingerprint() {
		t.Fatal("topology fingerprint unstable")
	}
	if Melbourne().Fingerprint() == Linear(14).Fingerprint() {
		t.Fatal("distinct topologies collided")
	}
	// Name is excluded: same structure, same fingerprint.
	a := NewTopology("a", 3, []Edge{{0, 1}, {1, 2}})
	b := NewTopology("b", 3, []Edge{{0, 1}, {1, 2}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("renamed topology changed fingerprint")
	}
	p := MelbourneProfile()
	if p.Fingerprint() != MelbourneProfile().Fingerprint() {
		t.Fatal("profile fingerprint unstable")
	}
	q := p
	q.CXErrMean *= 1.001
	if q.Fingerprint() == p.Fingerprint() {
		t.Fatal("profile fingerprint insensitive to CXErrMean")
	}
	if IdealProfile().Fingerprint() == p.Fingerprint() {
		t.Fatal("ideal and melbourne profiles collided")
	}
}
