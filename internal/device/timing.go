package device

import (
	"fmt"

	"edm/internal/circuit"
)

// TimingReport describes when a physical circuit's operations execute on
// the device, under the same as-soon-as-possible scheduling policy the
// backend uses to charge decoherence: one-qubit gates take Gate1QTimeNs,
// two-qubit gates Gate2QTimeNs (a SWAP is three CX), barriers synchronize
// their qubits, and all measurements start together at the latest gate
// end and take MeasTimeNs. Idle time is where T1/T2 exposure comes from,
// so this report tells a user *why* a deep mapping loses fidelity.
type TimingReport struct {
	// TotalNs is the makespan: start of the shot to the end of the last
	// measurement.
	TotalNs float64
	// BusyNs[q] is the time qubit q spends inside gates or measurement.
	BusyNs []float64
	// IdleNs[q] is the time qubit q spends waiting between its first
	// operation and the end of its last (the decoherence-relevant window).
	IdleNs []float64
	// Ops counts scheduled operations (barriers excluded, SWAPs lowered).
	Ops int
}

// MaxIdle returns the largest per-qubit idle time and its qubit (-1 if
// the circuit touches nothing).
func (r TimingReport) MaxIdle() (qubit int, ns float64) {
	qubit = -1
	for q, v := range r.IdleNs {
		if v > ns {
			qubit, ns = q, v
		}
	}
	return qubit, ns
}

// Timing schedules the physical circuit against the calibration's gate
// durations and returns the report. The circuit must respect the coupling
// map (two-qubit gates on coupled pairs) and measure each qubit at most
// once, the same contract the backend enforces.
func Timing(c *circuit.Circuit, cal *Calibration) (TimingReport, error) {
	if err := c.Validate(); err != nil {
		return TimingReport{}, err
	}
	if c.NumQubits > cal.Topo.Qubits {
		return TimingReport{}, fmt.Errorf("device: circuit uses %d qubits, device has %d", c.NumQubits, cal.Topo.Qubits)
	}
	lowered := c.LowerSwaps()
	rep := TimingReport{
		BusyNs: make([]float64, c.NumQubits),
		IdleNs: make([]float64, c.NumQubits),
	}
	clock := make([]float64, c.NumQubits)
	first := make([]float64, c.NumQubits)
	touched := make([]bool, c.NumQubits)
	measured := make(map[int]bool)

	start := func(qs []int) float64 {
		var t float64
		for _, q := range qs {
			if clock[q] > t {
				t = clock[q]
			}
		}
		return t
	}
	mark := func(q int, at float64) {
		if !touched[q] {
			touched[q] = true
			first[q] = at
		}
	}

	for i, op := range lowered.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			qs := op.Qubits
			if len(qs) == 0 {
				qs = allQubitsUpTo(c.NumQubits)
			}
			t := start(qs)
			for _, q := range qs {
				clock[q] = t
			}
		case op.Kind == circuit.Measure:
			q := op.Qubits[0]
			if measured[q] {
				return TimingReport{}, fmt.Errorf("device: op %d measures qubit %d twice", i, q)
			}
			measured[q] = true
			// Measurement starts at the global latest clock, as in the
			// backend: the whole register reads out at the end.
			var t float64
			for _, v := range clock {
				if v > t {
					t = v
				}
			}
			mark(q, t)
			clock[q] = t + cal.MeasTimeNs
			rep.BusyNs[q] += cal.MeasTimeNs
			rep.Ops++
		case op.Kind.IsTwoQubit():
			a, b := op.Qubits[0], op.Qubits[1]
			if !cal.Topo.HasEdge(a, b) {
				return TimingReport{}, fmt.Errorf("device: op %d violates the coupling map", i)
			}
			t := start(op.Qubits)
			mark(a, t)
			mark(b, t)
			clock[a] = t + cal.Gate2QTimeNs
			clock[b] = clock[a]
			rep.BusyNs[a] += cal.Gate2QTimeNs
			rep.BusyNs[b] += cal.Gate2QTimeNs
			rep.Ops++
		default:
			q := op.Qubits[0]
			t := clock[q]
			mark(q, t)
			clock[q] = t + cal.Gate1QTimeNs
			rep.BusyNs[q] += cal.Gate1QTimeNs
			rep.Ops++
		}
	}
	for _, v := range clock {
		if v > rep.TotalNs {
			rep.TotalNs = v
		}
	}
	for q := 0; q < c.NumQubits; q++ {
		if !touched[q] {
			continue
		}
		span := clock[q] - first[q]
		rep.IdleNs[q] = span - rep.BusyNs[q]
	}
	return rep, nil
}

func allQubitsUpTo(n int) []int {
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	return qs
}
