package stats

import (
	"strings"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/dist"
	"edm/internal/rng"
)

func logFor(t *testing.T, probs map[string]float64, trials int, seed uint64) *dist.Counts {
	t.Helper()
	d := dist.MustFromMap(probs)
	return dist.Sample(d, trials, rng.New(seed))
}

func TestISTIntervalContainsPoint(t *testing.T) {
	correct := bitstr.MustParse("00")
	counts := logFor(t, map[string]float64{"00": 0.4, "01": 0.3, "10": 0.2, "11": 0.1}, 4000, 1)
	iv := ISTInterval(counts, correct, 200, 0.95, rng.New(2))
	if !iv.Contains(iv.Point) {
		t.Fatalf("interval %v does not contain its point", iv)
	}
	if iv.Lo > iv.Hi {
		t.Fatalf("inverted interval: %v", iv)
	}
}

// TestCoverageRate: across many independent logs, the 95% interval should
// cover the true IST most of the time. Percentile bootstrap of a ratio
// statistic under-covers slightly, so the bar is set at 80%.
func TestCoverageRate(t *testing.T) {
	correct := bitstr.MustParse("00")
	probs := map[string]float64{"00": 0.4, "01": 0.3, "10": 0.2, "11": 0.1}
	trueIST := 0.4 / 0.3
	covered := 0
	const reps = 40
	for i := 0; i < reps; i++ {
		counts := logFor(t, probs, 4000, uint64(100+i))
		iv := ISTInterval(counts, correct, 150, 0.95, rng.New(uint64(500+i)))
		if iv.Contains(trueIST) {
			covered++
		}
	}
	if rate := float64(covered) / reps; rate < 0.8 {
		t.Fatalf("coverage rate = %v, want >= 0.8", rate)
	}
}

func TestIntervalNarrowsWithTrials(t *testing.T) {
	correct := bitstr.MustParse("00")
	probs := map[string]float64{"00": 0.4, "01": 0.3, "10": 0.2, "11": 0.1}
	small := ISTInterval(logFor(t, probs, 500, 3), correct, 200, 0.95, rng.New(4))
	big := ISTInterval(logFor(t, probs, 50000, 5), correct, 200, 0.95, rng.New(6))
	if (big.Hi - big.Lo) >= (small.Hi - small.Lo) {
		t.Fatalf("interval did not narrow: small %v vs big %v", small, big)
	}
}

func TestDeterministic(t *testing.T) {
	correct := bitstr.MustParse("0")
	counts := logFor(t, map[string]float64{"0": 0.7, "1": 0.3}, 1000, 7)
	a := ISTInterval(counts, correct, 100, 0.9, rng.New(8))
	b := ISTInterval(counts, correct, 100, 0.9, rng.New(8))
	if a != b {
		t.Fatalf("bootstrap not deterministic: %v vs %v", a, b)
	}
}

func TestPSTInterval(t *testing.T) {
	correct := bitstr.MustParse("0")
	counts := logFor(t, map[string]float64{"0": 0.7, "1": 0.3}, 10000, 9)
	iv := PSTInterval(counts, correct, 300, 0.95, rng.New(10))
	if !iv.Contains(0.7) {
		t.Fatalf("PST interval %v misses 0.7", iv)
	}
	if iv.Hi-iv.Lo > 0.05 {
		t.Fatalf("PST interval too wide at 10k trials: %v", iv)
	}
}

func TestInferenceDecision(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{Interval{Lo: 1.1, Hi: 1.5}, "yes"},
		{Interval{Lo: 0.4, Hi: 0.9}, "no"},
		{Interval{Lo: 0.9, Hi: 1.2}, "uncertain"},
	}
	for _, tc := range cases {
		if got := InferenceDecision(tc.iv); got != tc.want {
			t.Errorf("InferenceDecision(%v) = %q, want %q", tc.iv, got, tc.want)
		}
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Point: 1.2345, Lo: 1.1, Hi: 1.4, Confidence: 0.95}
	s := iv.String()
	if !strings.Contains(s, "1.2345") || !strings.Contains(s, "95%") {
		t.Fatalf("String = %q", s)
	}
}

func TestBootstrapGuards(t *testing.T) {
	correct := bitstr.MustParse("0")
	counts := logFor(t, map[string]float64{"0": 1}, 10, 1)
	mustPanic(t, func() { ISTInterval(dist.NewCounts(1), correct, 10, 0.9, rng.New(1)) })
	mustPanic(t, func() { ISTInterval(counts, correct, 1, 0.9, rng.New(1)) })
	mustPanic(t, func() { ISTInterval(counts, correct, 10, 1.5, rng.New(1)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
