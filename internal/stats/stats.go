// Package stats provides bootstrap confidence intervals for the NISQ
// inference metrics. The paper reports medians over ten rounds; a library
// user deciding whether an IST of 1.1 really clears 1 needs an interval,
// not a point estimate, and the output log (a histogram of trials) is
// exactly the right object to resample.
package stats

import (
	"fmt"
	"sort"

	"edm/internal/bitstr"
	"edm/internal/dist"
	"edm/internal/rng"
)

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point      float64
	Lo, Hi     float64
	Confidence float64
}

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// String renders the interval compactly.
func (iv Interval) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]@%.0f%%", iv.Point, iv.Lo, iv.Hi, iv.Confidence*100)
}

// Bootstrap computes a percentile bootstrap interval for an arbitrary
// statistic of the output distribution: the observed histogram is
// resampled with replacement `resamples` times and the statistic's
// empirical quantiles bound the interval. Resampling is deterministic in
// the RNG.
func Bootstrap(counts *dist.Counts, statistic func(*dist.Dist) float64,
	resamples int, confidence float64, r *rng.RNG) Interval {
	if counts.Total() == 0 {
		panic("stats: bootstrap of an empty histogram")
	}
	if resamples < 2 {
		panic("stats: need at least 2 resamples")
	}
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0,1)")
	}
	empirical := counts.Dist()
	point := statistic(empirical)
	values := make([]float64, resamples)
	for i := 0; i < resamples; i++ {
		res := dist.Sample(empirical, counts.Total(), r.DeriveN("resample", i))
		values[i] = statistic(res.Dist())
	}
	sort.Float64s(values)
	alpha := (1 - confidence) / 2
	lo := values[clampIndex(int(alpha*float64(resamples)), resamples)]
	hi := values[clampIndex(int((1-alpha)*float64(resamples)), resamples)]
	return Interval{Point: point, Lo: lo, Hi: hi, Confidence: confidence}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ISTInterval bootstraps the Inference Strength of the given output log.
func ISTInterval(counts *dist.Counts, correct bitstr.BitString, resamples int, confidence float64, r *rng.RNG) Interval {
	return Bootstrap(counts, func(d *dist.Dist) float64 { return d.IST(correct) },
		resamples, confidence, r)
}

// PSTInterval bootstraps the success probability of the given output log.
func PSTInterval(counts *dist.Counts, correct bitstr.BitString, resamples int, confidence float64, r *rng.RNG) Interval {
	return Bootstrap(counts, func(d *dist.Dist) float64 { return d.PST(correct) },
		resamples, confidence, r)
}

// InferenceDecision summarizes whether the log supports inferring the
// correct answer: "yes" when the whole interval clears IST 1, "no" when
// it sits entirely below, "uncertain" otherwise.
func InferenceDecision(iv Interval) string {
	switch {
	case iv.Lo > 1:
		return "yes"
	case iv.Hi < 1:
		return "no"
	default:
		return "uncertain"
	}
}
