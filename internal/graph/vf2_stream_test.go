package graph

import (
	"reflect"
	"runtime"
	"testing"

	"edm/internal/rng"
)

// TestParallelMatchesSerialRandom cross-checks the streaming serial
// enumerator and the work-splitting parallel driver against each other
// (exact sequence equality) and against the brute-force oracle (set
// equality) on randomized pattern/target pairs.
func TestParallelMatchesSerialRandom(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	r := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		pn := 2 + int(r.Uint64()%4)  // 2..5 pattern vertices
		tn := pn + int(r.Uint64()%4) // up to 3 extra target vertices
		p := randomGraph(pn, 0.55, r)
		g := randomGraph(tn, 0.65, r)

		serial := Monomorphisms(p, g, 0)
		par := MonomorphismsParallel(p, g, 0)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("trial %d: parallel order differs from serial\nserial: %v\nparallel: %v", trial, serial, par)
		}

		brute := BruteForceMonomorphisms(p, g)
		ss := append([][]int(nil), serial...)
		SortMappings(ss)
		SortMappings(brute)
		if !reflect.DeepEqual(ss, brute) {
			t.Fatalf("trial %d: streaming result set differs from brute force (%d vs %d)", trial, len(ss), len(brute))
		}

		// The limit must truncate the same deterministic prefix in both.
		if len(serial) > 1 {
			lim := 1 + int(r.Uint64()%uint64(len(serial)))
			a := Monomorphisms(p, g, lim)
			b := MonomorphismsParallel(p, g, lim)
			if !reflect.DeepEqual(a, serial[:lim]) {
				t.Fatalf("trial %d: serial limit %d is not a prefix", trial, lim)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d: parallel limit %d differs from serial", trial, lim)
			}
		}
	}
}

// TestHooksAssignPrune checks that Assign returning false prunes the
// subtree without a matching Unassign, and that accepted assignments are
// always unwound in LIFO order.
func TestHooksAssignPrune(t *testing.T) {
	p := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})

	// Forbid any assignment onto target vertex 3; the surviving
	// monomorphisms are exactly those avoiding vertex 3.
	var emitted [][]int
	var depthStack []int
	s := NewMonoSearch(p, g)
	r := s.NewRunner(Hooks{
		Assign: func(depth, pv, tv int) bool {
			if tv == 3 {
				return false
			}
			depthStack = append(depthStack, depth)
			return true
		},
		Unassign: func(depth, pv, tv int) {
			if len(depthStack) == 0 || depthStack[len(depthStack)-1] != depth {
				t.Fatalf("unassign depth %d does not match stack %v", depth, depthStack)
			}
			depthStack = depthStack[:len(depthStack)-1]
		},
		Emit: func(m []int) bool {
			emitted = append(emitted, append([]int(nil), m...))
			return false
		},
	})
	r.Run()
	if len(depthStack) != 0 {
		t.Fatalf("assign/unassign not balanced: %v", depthStack)
	}

	var want [][]int
	for _, m := range Monomorphisms(p, g, 0) {
		ok := true
		for _, tv := range m {
			if tv == 3 {
				ok = false
			}
		}
		if ok {
			want = append(want, m)
		}
	}
	if !reflect.DeepEqual(emitted, want) {
		t.Fatalf("pruned enumeration = %v, want %v", emitted, want)
	}
}

// TestEmitStopsEnumeration checks early termination through Emit.
func TestEmitStopsEnumeration(t *testing.T) {
	p := FromEdges(2, [][2]int{{0, 1}})
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	count := 0
	r := NewMonoSearch(p, g).NewRunner(Hooks{Emit: func(m []int) bool {
		count++
		return count >= 2
	}})
	if !r.Run() {
		t.Fatal("Run did not report stop")
	}
	if count != 2 {
		t.Fatalf("emit called %d times, want 2", count)
	}
}

func benchGraphs() (*Graph, *Graph) {
	// Line of 6 qubits into a 14-vertex melbourne-like ladder.
	p := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	edges := [][2]int{}
	for i := 0; i < 6; i++ {
		edges = append(edges, [2]int{i, i + 1})
		edges = append(edges, [2]int{i + 7, i + 8})
		edges = append(edges, [2]int{i, i + 7})
	}
	edges = append(edges, [2]int{6, 13})
	g := FromEdges(14, edges)
	return p, g
}

func BenchmarkMonomorphisms(b *testing.B) {
	p, g := benchGraphs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Monomorphisms(p, g, 0)
	}
}

func BenchmarkMonomorphismsStreaming(b *testing.B) {
	// The streaming enumerator with a no-copy Emit: the cost of search
	// alone, without materializing results.
	p, g := benchGraphs()
	s := NewMonoSearch(p, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r := s.NewRunner(Hooks{Emit: func(m []int) bool { n++; return false }})
		r.Run()
	}
}

func BenchmarkMonomorphismsParallel(b *testing.B) {
	p, g := benchGraphs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MonomorphismsParallel(p, g, 0)
	}
}
