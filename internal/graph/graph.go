// Package graph provides the small undirected-graph toolkit the mapping
// compiler needs: adjacency queries, BFS shortest paths, connectivity, and
// VF2-style subgraph isomorphism enumeration (the algorithm the paper uses
// to find alternative placements of a program's interaction graph on the
// device coupling graph, citing Cordella et al.).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..n-1. Self-loops and
// multi-edges are not allowed.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an edgeless graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// FromEdges builds a graph with n vertices and the given undirected edges.
func FromEdges(n int, edges [][2]int) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge (a, b). Adding an existing edge is a
// no-op; self-loops panic.
func (g *Graph) AddEdge(a, b int) {
	g.check(a)
	g.check(b)
	if a == b {
		panic(fmt.Sprintf("graph: self-loop at %d", a))
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	g.check(a)
	g.check(b)
	return g.adj[a][b]
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbours of v.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges (a < b) in deterministic order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for a := 0; a < g.n; a++ {
		for b := range g.adj[a] {
			if a < b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for a := 0; a < g.n; a++ {
		for b := range g.adj[a] {
			c.adj[a][b] = true
		}
	}
	return c
}

// BFSDistances returns the hop distance from src to every vertex, with -1
// for unreachable vertices.
func (g *Graph) BFSDistances(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst inclusive, or nil
// if unreachable. Ties are broken toward smaller vertex ids so results are
// deterministic.
func (g *Graph) ShortestPath(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			break
		}
		for _, u := range g.Neighbors(v) {
			if prev[u] == -1 {
				prev[u] = v
				queue = append(queue, u)
			}
		}
	}
	if prev[dst] == -1 {
		return nil
	}
	var path []int
	for v := dst; v != src; v = prev[v] {
		path = append(path, v)
	}
	path = append(path, src)
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// IsConnected reports whether the graph is connected (true for the empty
// and single-vertex graphs).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	d := g.BFSDistances(0)
	for _, v := range d {
		if v == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as sorted vertex lists, in
// ascending order of their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var out [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := []int{v}
		seen[v] = true
		for i := 0; i < len(comp); i++ {
			for _, u := range g.Neighbors(comp[i]) {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// InducedConnected reports whether the subgraph induced by the given
// vertex set is connected.
func (g *Graph) InducedConnected(vertices []int) bool {
	if len(vertices) <= 1 {
		return true
	}
	in := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		g.check(v)
		in[v] = true
	}
	seen := map[int]bool{vertices[0]: true}
	queue := []int{vertices[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if in[u] && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return len(seen) == len(vertices)
}
