package graph

import (
	"testing"

	"edm/internal/rng"
)

func TestBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate is a no-op
	if g.N() != 4 || g.NumEdges() != 2 {
		t.Fatalf("N=%d edges=%d", g.N(), g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("Degree wrong")
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors = %v", nb)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := FromEdges(5, [][2]int{{3, 1}, {0, 4}, {2, 0}})
	e := g.Edges()
	want := [][2]int{{0, 2}, {0, 4}, {1, 3}}
	if len(e) != len(want) {
		t.Fatalf("Edges = %v", e)
	}
	for i := range e {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func TestPanics(t *testing.T) {
	g := New(3)
	mustPanic(t, func() { g.AddEdge(0, 0) })
	mustPanic(t, func() { g.AddEdge(0, 3) })
	mustPanic(t, func() { g.HasEdge(-1, 0) })
	mustPanic(t, func() { New(-1) })
}

func TestBFSDistances(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4.
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v", d)
		}
	}
}

func TestShortestPath(t *testing.T) {
	// Ring of 6: two equal paths 0..3; deterministic tie-break.
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	p := g.ShortestPath(0, 3)
	if len(p) != 4 {
		t.Fatalf("path = %v", p)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path not connected: %v", p)
		}
	}
	if got := g.ShortestPath(2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("self path = %v", got)
	}
	iso := FromEdges(3, [][2]int{{0, 1}})
	if p := iso.ShortestPath(0, 2); p != nil {
		t.Fatalf("unreachable path = %v", p)
	}
}

func TestConnectivity(t *testing.T) {
	if !FromEdges(3, [][2]int{{0, 1}, {1, 2}}).IsConnected() {
		t.Fatal("path not connected")
	}
	if FromEdges(3, [][2]int{{0, 1}}).IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !New(1).IsConnected() || !New(0).IsConnected() {
		t.Fatal("trivial graphs not connected")
	}
}

func TestInducedConnected(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if !g.InducedConnected([]int{0, 1, 2}) {
		t.Fatal("induced path not connected")
	}
	if g.InducedConnected([]int{0, 1, 3}) {
		t.Fatal("split set reported connected")
	}
	if !g.InducedConnected([]int{5}) || !g.InducedConnected(nil) {
		t.Fatal("trivial sets not connected")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("Clone shares storage")
	}
}

func TestMonomorphismsPathInPath(t *testing.T) {
	// Path of 2 vertices into path of 3: 0-1, 1-0, 1-2, 2-1 = 4 maps.
	p := FromEdges(2, [][2]int{{0, 1}})
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	ms := Monomorphisms(p, g, 0)
	if len(ms) != 4 {
		t.Fatalf("got %d maps: %v", len(ms), ms)
	}
}

func TestMonomorphismsTriangle(t *testing.T) {
	tri := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	square := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if ms := Monomorphisms(tri, square, 0); len(ms) != 0 {
		t.Fatalf("triangle found in square: %v", ms)
	}
	k4 := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	// Triangle in K4: 4 choose 3 subsets * 3! orders = 24.
	if ms := Monomorphisms(tri, k4, 0); len(ms) != 24 {
		t.Fatalf("triangle in K4: %d maps", len(ms))
	}
}

func TestMonomorphismsValid(t *testing.T) {
	p := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	g := randomGraph(8, 0.5, rng.New(3))
	for _, m := range Monomorphisms(p, g, 0) {
		seen := map[int]bool{}
		for _, tv := range m {
			if seen[tv] {
				t.Fatalf("non-injective map %v", m)
			}
			seen[tv] = true
		}
		for _, e := range p.Edges() {
			if !g.HasEdge(m[e[0]], m[e[1]]) {
				t.Fatalf("map %v misses edge %v", m, e)
			}
		}
	}
}

func TestMonomorphismsAgainstBruteForce(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		rr := r.DeriveN("t", trial)
		p := randomGraph(2+rr.Intn(3), 0.6, rr)
		g := randomGraph(4+rr.Intn(3), 0.5, rr)
		got := Monomorphisms(p, g, 0)
		want := BruteForceMonomorphisms(p, g)
		if len(got) != len(want) {
			t.Fatalf("trial %d: VF2 found %d, brute force %d", trial, len(got), len(want))
		}
		SortMappings(got)
		SortMappings(want)
		for i := range got {
			for k := range got[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("trial %d: mapping mismatch at %d", trial, i)
				}
			}
		}
	}
}

func TestMonomorphismsLimit(t *testing.T) {
	p := FromEdges(2, [][2]int{{0, 1}})
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ms := Monomorphisms(p, g, 3)
	if len(ms) != 3 {
		t.Fatalf("limit ignored: %d", len(ms))
	}
	if CountMonomorphisms(p, g, 0) != 8 {
		t.Fatalf("full count = %d", CountMonomorphisms(p, g, 0))
	}
}

func TestMonomorphismsEdgeCases(t *testing.T) {
	empty := New(0)
	g := FromEdges(3, [][2]int{{0, 1}})
	if ms := Monomorphisms(empty, g, 0); len(ms) != 1 || len(ms[0]) != 0 {
		t.Fatalf("empty pattern: %v", ms)
	}
	big := New(5)
	if ms := Monomorphisms(big, FromEdges(2, nil), 0); ms != nil {
		t.Fatalf("oversized pattern matched: %v", ms)
	}
	// Pattern with isolated vertices still enumerates correctly.
	iso := New(2) // two isolated vertices into a 3-vertex target: 3*2 = 6
	if n := CountMonomorphisms(iso, New(3), 0); n != 6 {
		t.Fatalf("isolated pattern count = %d", n)
	}
}

func randomGraph(n int, p float64, r *rng.RNG) *Graph {
	g := New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if r.Bernoulli(p) {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestComponents(t *testing.T) {
	// {0,1,2} path, {3,4} link, {5} isolated.
	g := FromEdges(6, [][2]int{{1, 0}, {1, 2}, {4, 3}})
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if len(comps) != len(want) {
		t.Fatalf("got %d components, want %d: %v", len(comps), len(want), comps)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
	if got := New(0).Components(); len(got) != 0 {
		t.Fatalf("empty graph has %d components", len(got))
	}
	if got := FromEdges(3, [][2]int{{0, 1}, {1, 2}}).Components(); len(got) != 1 {
		t.Fatalf("connected graph split into %d components", len(got))
	}
}
