package graph

import "sort"

// This file implements subgraph-monomorphism enumeration in the style of
// VF2 (Cordella, Foggia, Sansone, Vento, 2004): a depth-first state-space
// search that extends a partial vertex mapping one pair at a time, pruned
// by local feasibility rules. EDM uses it to transfer the compiler's
// initial mapping onto every structurally equivalent set of physical
// qubits (paper Section 5.2).
//
// A monomorphism maps every pattern edge onto a target edge but allows the
// image to contain extra edges; that is the right notion for qubit
// mapping, where unused couplings on the device are harmless.

// Monomorphisms enumerates injective maps m (len = pattern.N()) such that
// every edge (u, v) of pattern has (m[u], m[v]) as an edge of target. The
// enumeration stops after limit results (limit <= 0 means unlimited).
// Results are returned in a deterministic order.
func Monomorphisms(pattern, target *Graph, limit int) [][]int {
	if pattern.N() == 0 {
		return [][]int{{}}
	}
	if pattern.N() > target.N() {
		return nil
	}
	s := &vf2state{
		p:     pattern,
		g:     target,
		order: matchOrder(pattern),
		pMap:  make([]int, pattern.N()),
		gUsed: make([]bool, target.N()),
		limit: limit,
	}
	for i := range s.pMap {
		s.pMap[i] = -1
	}
	s.search(0)
	return s.results
}

// CountMonomorphisms returns the number of monomorphisms, up to limit.
func CountMonomorphisms(pattern, target *Graph, limit int) int {
	return len(Monomorphisms(pattern, target, limit))
}

type vf2state struct {
	p, g    *Graph
	order   []int // pattern vertices in matching order
	pMap    []int // pattern vertex -> target vertex or -1
	gUsed   []bool
	results [][]int
	limit   int
}

// matchOrder picks a connectivity-aware ordering of the pattern vertices:
// start at a highest-degree vertex, then repeatedly take the unvisited
// vertex with the most already-ordered neighbours (ties by degree then
// id). Connected-first ordering makes the neighbour-consistency pruning
// bite as early as possible.
func matchOrder(p *Graph) []int {
	n := p.N()
	ordered := make([]int, 0, n)
	placed := make([]bool, n)
	for len(ordered) < n {
		best := -1
		bestScore := [3]int{-1, -1, 0}
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			conn := 0
			for _, u := range p.Neighbors(v) {
				if placed[u] {
					conn++
				}
			}
			score := [3]int{conn, p.Degree(v), -v}
			if best == -1 || scoreLess(bestScore, score) {
				best = v
				bestScore = score
			}
		}
		placed[best] = true
		ordered = append(ordered, best)
	}
	return ordered
}

func scoreLess(a, b [3]int) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (s *vf2state) search(depth int) bool {
	if depth == len(s.order) {
		s.results = append(s.results, append([]int(nil), s.pMap...))
		return s.limit > 0 && len(s.results) >= s.limit
	}
	v := s.order[depth]
	for _, cand := range s.candidates(v) {
		if !s.feasible(v, cand) {
			continue
		}
		s.pMap[v] = cand
		s.gUsed[cand] = true
		done := s.search(depth + 1)
		s.pMap[v] = -1
		s.gUsed[cand] = false
		if done {
			return true
		}
	}
	return false
}

// candidates returns the target vertices worth trying for pattern vertex
// v: if v has an already-mapped neighbour, only the unused neighbours of
// that neighbour's image (the VF2 frontier rule); otherwise every unused
// vertex.
func (s *vf2state) candidates(v int) []int {
	for _, u := range s.p.Neighbors(v) {
		if t := s.pMap[u]; t >= 0 {
			nbrs := s.g.Neighbors(t)
			out := make([]int, 0, len(nbrs))
			for _, c := range nbrs {
				if !s.gUsed[c] {
					out = append(out, c)
				}
			}
			return out
		}
	}
	out := make([]int, 0, s.g.N())
	for c := 0; c < s.g.N(); c++ {
		if !s.gUsed[c] {
			out = append(out, c)
		}
	}
	return out
}

// feasible checks the monomorphism consistency rules for mapping pattern
// vertex v onto target vertex c: every mapped pattern neighbour of v must
// be a target neighbour of c, and c must have enough spare degree for the
// unmapped pattern neighbours (a look-ahead prune).
func (s *vf2state) feasible(v, c int) bool {
	if s.g.Degree(c) < s.p.Degree(v) {
		return false
	}
	unmapped := 0
	for _, u := range s.p.Neighbors(v) {
		if t := s.pMap[u]; t >= 0 {
			if !s.g.HasEdge(t, c) {
				return false
			}
		} else {
			unmapped++
		}
	}
	free := 0
	for _, w := range s.g.Neighbors(c) {
		if !s.gUsed[w] {
			free++
		}
	}
	return free >= unmapped
}

// BruteForceMonomorphisms enumerates monomorphisms by trying every
// injective assignment. Exponential; exists only as a test oracle for the
// VF2 implementation.
func BruteForceMonomorphisms(pattern, target *Graph) [][]int {
	var results [][]int
	n := pattern.N()
	if n == 0 {
		return [][]int{{}}
	}
	used := make([]bool, target.N())
	mapping := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			results = append(results, append([]int(nil), mapping...))
			return
		}
		for c := 0; c < target.N(); c++ {
			if used[c] {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if pattern.HasEdge(u, v) && !target.HasEdge(mapping[u], c) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = c
			used[c] = true
			rec(v + 1)
			used[c] = false
		}
	}
	rec(0)
	return results
}

// SortMappings orders a slice of mappings lexicographically, for
// comparisons in tests.
func SortMappings(ms [][]int) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
