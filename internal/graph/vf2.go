package graph

import (
	"sort"
	"sync"

	"edm/internal/pool"
)

// This file implements subgraph-monomorphism enumeration in the style of
// VF2 (Cordella, Foggia, Sansone, Vento, 2004): a depth-first state-space
// search that extends a partial vertex mapping one pair at a time, pruned
// by local feasibility rules. EDM uses it to transfer the compiler's
// initial mapping onto every structurally equivalent set of physical
// qubits (paper Section 5.2).
//
// A monomorphism maps every pattern edge onto a target edge but allows the
// image to contain extra edges; that is the right notion for qubit
// mapping, where unused couplings on the device are harmless.
//
// The enumerator is streaming: results are delivered through an Emit
// callback as the search finds them, and optional Assign/Unassign hooks
// expose every tentative extension of the partial mapping, which lets
// callers maintain incremental cost state and prune whole subtrees
// (branch-and-bound) without the enumerator knowing anything about their
// scoring function. A work-splitting parallel driver shards the search on
// the first match level and merges shard outputs in first-candidate
// order, so the emitted sequence is identical to the serial search.

// EmitFunc receives each complete mapping (pattern vertex -> target
// vertex). The slice is reused by the search; callers that retain a
// mapping must copy it. Returning true stops the enumeration.
type EmitFunc func(m []int) (stop bool)

// Hooks customizes a monomorphism search. All fields are optional except
// Emit (a search without Emit is only useful for its Assign side effects,
// which is allowed but unusual).
type Hooks struct {
	// Emit is called for every complete monomorphism.
	Emit EmitFunc
	// Assign is called after pattern vertex pv passes the feasibility
	// rules for target vertex tv at the given depth (the position of pv in
	// Order). Returning false prunes the subtree rooted at this
	// assignment; Unassign is NOT called for a pruned assignment.
	Assign func(depth, pv, tv int) bool
	// Unassign is called when the assignment made at depth is undone on
	// backtrack (only for assignments Assign accepted, or every
	// assignment if Assign is nil).
	Unassign func(depth, pv, tv int)
}

// MonoSearch holds the immutable, shareable part of a monomorphism
// search: the two graphs, flattened adjacency, and the connectivity-aware
// match order. One MonoSearch may drive many concurrent runners.
type MonoSearch struct {
	p, g  *Graph
	order []int   // pattern vertices in matching order
	pAdj  [][]int // pattern adjacency, sorted
	gAdj  [][]int // target adjacency, sorted
}

// NewMonoSearch prepares a search for monomorphisms of pattern into
// target.
func NewMonoSearch(pattern, target *Graph) *MonoSearch {
	s := &MonoSearch{
		p:     pattern,
		g:     target,
		order: matchOrder(pattern),
		pAdj:  make([][]int, pattern.N()),
		gAdj:  make([][]int, target.N()),
	}
	for v := 0; v < pattern.N(); v++ {
		s.pAdj[v] = pattern.Neighbors(v)
	}
	for v := 0; v < target.N(); v++ {
		s.gAdj[v] = target.Neighbors(v)
	}
	return s
}

// Order returns the pattern vertices in matching order. The depth passed
// to Assign/Unassign indexes this slice.
func (s *MonoSearch) Order() []int { return s.order }

// NewRunner creates a mutable search state for this pattern/target pair.
// Runners are cheap; create one per goroutine — a runner must not be
// shared concurrently.
func (s *MonoSearch) NewRunner(h Hooks) *MonoRunner {
	r := &MonoRunner{s: s, h: h, pMap: make([]int, s.p.N()), gUsed: make([]bool, s.g.N())}
	for i := range r.pMap {
		r.pMap[i] = -1
	}
	return r
}

// MonoRunner is the mutable state of one depth-first enumeration.
type MonoRunner struct {
	s     *MonoSearch
	h     Hooks
	pMap  []int
	gUsed []bool
}

// Run enumerates every monomorphism in deterministic order (first-level
// candidates ascending, then depth-first). It returns true if Emit
// stopped the search. An empty pattern emits one empty mapping.
func (r *MonoRunner) Run() bool {
	if r.s.p.N() == 0 {
		return r.h.Emit != nil && r.h.Emit(nil)
	}
	if r.s.p.N() > r.s.g.N() {
		return false
	}
	for c := 0; c < r.s.g.N(); c++ {
		if r.try(0, r.s.order[0], c) {
			return true
		}
	}
	return false
}

// RunFrom enumerates the subtree in which the first match-order vertex is
// mapped to first. Sweeping first over 0..target.N()-1 and concatenating
// the outputs reproduces Run's sequence exactly — this is the unit of
// work the parallel driver shards.
func (r *MonoRunner) RunFrom(first int) bool {
	if r.s.p.N() == 0 || r.s.p.N() > r.s.g.N() {
		return false
	}
	return r.try(0, r.s.order[0], first)
}

func (r *MonoRunner) search(depth int) bool {
	if depth == len(r.s.order) {
		return r.h.Emit != nil && r.h.Emit(r.pMap)
	}
	v := r.s.order[depth]
	// VF2 frontier rule: if v has an already-mapped neighbour, only the
	// unused neighbours of that neighbour's image are candidates;
	// otherwise every unused target vertex is.
	anchor := -1
	for _, u := range r.s.pAdj[v] {
		if t := r.pMap[u]; t >= 0 {
			anchor = t
			break
		}
	}
	if anchor >= 0 {
		for _, c := range r.s.gAdj[anchor] {
			if !r.gUsed[c] && r.try(depth, v, c) {
				return true
			}
		}
		return false
	}
	for c := 0; c < r.s.g.N(); c++ {
		if !r.gUsed[c] && r.try(depth, v, c) {
			return true
		}
	}
	return false
}

// try extends the mapping with v -> c if feasible and recurses. It
// returns true only when Emit stopped the search.
func (r *MonoRunner) try(depth, v, c int) bool {
	if r.gUsed[c] || !r.feasible(v, c) {
		return false
	}
	r.pMap[v] = c
	r.gUsed[c] = true
	if r.h.Assign != nil && !r.h.Assign(depth, v, c) {
		r.pMap[v] = -1
		r.gUsed[c] = false
		return false
	}
	stop := r.search(depth + 1)
	if r.h.Unassign != nil {
		r.h.Unassign(depth, v, c)
	}
	r.pMap[v] = -1
	r.gUsed[c] = false
	return stop
}

// feasible checks the monomorphism consistency rules for mapping pattern
// vertex v onto target vertex c: every mapped pattern neighbour of v must
// be a target neighbour of c, and c must have enough spare degree for the
// unmapped pattern neighbours (a look-ahead prune).
func (r *MonoRunner) feasible(v, c int) bool {
	if r.s.g.Degree(c) < r.s.p.Degree(v) {
		return false
	}
	unmapped := 0
	for _, u := range r.s.pAdj[v] {
		if t := r.pMap[u]; t >= 0 {
			if !r.s.g.HasEdge(t, c) {
				return false
			}
		} else {
			unmapped++
		}
	}
	free := 0
	for _, w := range r.s.gAdj[c] {
		if !r.gUsed[w] {
			free++
		}
	}
	return free >= unmapped
}

// Monomorphisms enumerates injective maps m (len = pattern.N()) such that
// every edge (u, v) of pattern has (m[u], m[v]) as an edge of target. The
// enumeration stops after limit results (limit <= 0 means unlimited).
// Results are returned in a deterministic order.
func Monomorphisms(pattern, target *Graph, limit int) [][]int {
	if pattern.N() == 0 {
		return [][]int{{}}
	}
	if pattern.N() > target.N() {
		return nil
	}
	var out [][]int
	r := NewMonoSearch(pattern, target).NewRunner(Hooks{Emit: func(m []int) bool {
		out = append(out, append([]int(nil), m...))
		return limit > 0 && len(out) >= limit
	}})
	r.Run()
	return out
}

// MonomorphismsParallel is Monomorphisms with the search sharded on the
// first match level across compute-pool workers. The output — order
// included — is bit-identical to Monomorphisms for any worker count: each
// first-level candidate's subtree is enumerated depth-first as in the
// serial search, every shard honours the limit independently, and shards
// are concatenated in ascending first-candidate order before the limit is
// applied to the merged sequence.
func MonomorphismsParallel(pattern, target *Graph, limit int) [][]int {
	if pattern.N() == 0 {
		return [][]int{{}}
	}
	if pattern.N() > target.N() {
		return nil
	}
	n := target.N()
	workers := pool.Workers(n)
	if workers < 2 {
		return Monomorphisms(pattern, target, limit)
	}
	s := NewMonoSearch(pattern, target)
	shards := make([][][]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool.Acquire()
			defer pool.Release()
			for first := w; first < n; first += workers {
				var res [][]int
				r := s.NewRunner(Hooks{Emit: func(m []int) bool {
					res = append(res, append([]int(nil), m...))
					return limit > 0 && len(res) >= limit
				}})
				r.RunFrom(first)
				shards[first] = res
			}
		}(w)
	}
	wg.Wait()
	var out [][]int
	for _, res := range shards {
		out = append(out, res...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	return out
}

// CountMonomorphisms returns the number of monomorphisms, up to limit.
func CountMonomorphisms(pattern, target *Graph, limit int) int {
	return len(Monomorphisms(pattern, target, limit))
}

// matchOrder picks a connectivity-aware ordering of the pattern vertices:
// start at a highest-degree vertex, then repeatedly take the unvisited
// vertex with the most already-ordered neighbours (ties by degree then
// id). Connected-first ordering makes the neighbour-consistency pruning
// bite as early as possible.
func matchOrder(p *Graph) []int {
	n := p.N()
	ordered := make([]int, 0, n)
	placed := make([]bool, n)
	for len(ordered) < n {
		best := -1
		bestScore := [3]int{-1, -1, 0}
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			conn := 0
			for _, u := range p.Neighbors(v) {
				if placed[u] {
					conn++
				}
			}
			score := [3]int{conn, p.Degree(v), -v}
			if best == -1 || scoreLess(bestScore, score) {
				best = v
				bestScore = score
			}
		}
		placed[best] = true
		ordered = append(ordered, best)
	}
	return ordered
}

func scoreLess(a, b [3]int) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BruteForceMonomorphisms enumerates monomorphisms by trying every
// injective assignment. Exponential; exists only as a test oracle for the
// VF2 implementation.
func BruteForceMonomorphisms(pattern, target *Graph) [][]int {
	var results [][]int
	n := pattern.N()
	if n == 0 {
		return [][]int{{}}
	}
	used := make([]bool, target.N())
	mapping := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			results = append(results, append([]int(nil), mapping...))
			return
		}
		for c := 0; c < target.N(); c++ {
			if used[c] {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if pattern.HasEdge(u, v) && !target.HasEdge(mapping[u], c) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = c
			used[c] = true
			rec(v + 1)
			used[c] = false
		}
	}
	rec(0)
	return results
}

// SortMappings orders a slice of mappings lexicographically, for
// comparisons in tests.
func SortMappings(ms [][]int) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
