package stabilizer

import (
	"math/bits"

	"edm/internal/rng"
)

// Tableau is the stabilizer-group representation of an n-qubit state.
// Rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers, row 2n is
// measurement scratch. Row r's X (Z) half occupies words
// x[r*words : (r+1)*words], qubit q at word q>>6 bit q&63; p[r] is the
// normal-form phase mod 4 (row = i^p X^x Z^z).
type Tableau struct {
	n     int
	words int
	x, z  []uint64
	p     []uint8
}

// New returns a tableau initialized to |0…0⟩: destabilizer i = X_i,
// stabilizer i = Z_i, all phases 0.
func New(n int) *Tableau {
	if n < 1 {
		panic("stabilizer: tableau needs at least one qubit")
	}
	w := (n + 63) / 64
	t := &Tableau{
		n:     n,
		words: w,
		x:     make([]uint64, (2*n+1)*w),
		z:     make([]uint64, (2*n+1)*w),
		p:     make([]uint8, 2*n+1),
	}
	t.Reset()
	return t
}

// N returns the qubit count.
func (t *Tableau) N() int { return t.n }

// Words returns the packed row width in 64-bit words.
func (t *Tableau) Words() int { return t.words }

// Reset reinitializes the tableau to |0…0⟩.
func (t *Tableau) Reset() {
	for i := range t.x {
		t.x[i] = 0
		t.z[i] = 0
	}
	for i := range t.p {
		t.p[i] = 0
	}
	for i := 0; i < t.n; i++ {
		t.x[i*t.words+(i>>6)] |= 1 << uint(i&63)
		t.z[(i+t.n)*t.words+(i>>6)] |= 1 << uint(i&63)
	}
}

// CopyFrom overwrites t with src. Both tableaus must have the same
// qubit count.
func (t *Tableau) CopyFrom(src *Tableau) {
	if t.n != src.n {
		panic("stabilizer: CopyFrom size mismatch")
	}
	copy(t.x, src.x)
	copy(t.z, src.z)
	copy(t.p, src.p)
}

// Clone returns an independent copy of t.
func (t *Tableau) Clone() *Tableau {
	c := New(t.n)
	c.CopyFrom(t)
	return c
}

// rowMult multiplies row h by row i in place (row_h ← row_h · row_i).
// In normal form the phase picks up i^2 for every Z factor of row_h
// crossing an X factor of row_i, so only the parity of
// popcount(z_h & x_i) — taken before the XOR — matters.
func (t *Tableau) rowMult(h, i int) {
	w := t.words
	xh := t.x[h*w : h*w+w : h*w+w]
	zh := t.z[h*w : h*w+w : h*w+w]
	xi := t.x[i*w : i*w+w : i*w+w]
	zi := t.z[i*w : i*w+w : i*w+w]
	cnt := 0
	for k := 0; k < w; k++ {
		cnt += bits.OnesCount64(zh[k] & xi[k])
	}
	t.p[h] = (t.p[h] + t.p[i] + uint8(cnt&1)<<1) & 3
	for k := 0; k < w; k++ {
		xh[k] ^= xi[k]
		zh[k] ^= zi[k]
	}
}

func (t *Tableau) zeroRow(r int) {
	w := t.words
	for k := r * w; k < (r+1)*w; k++ {
		t.x[k] = 0
		t.z[k] = 0
	}
	t.p[r] = 0
}

func (t *Tableau) copyRow(dst, src int) {
	w := t.words
	copy(t.x[dst*w:(dst+1)*w], t.x[src*w:(src+1)*w])
	copy(t.z[dst*w:(dst+1)*w], t.z[src*w:(src+1)*w])
	t.p[dst] = t.p[src]
}

// Apply1 conjugates every tableau row by the single-qubit Clifford
// described by l, acting on qubit q.
func (t *Tableau) Apply1(q int, l *LUT1) {
	wq, bq := q>>6, uint(q&63)
	w := t.words
	for r := 0; r < 2*t.n; r++ {
		i := r*w + wq
		xa := t.x[i] >> bq & 1
		za := t.z[i] >> bq & 1
		k := za<<1 | xa
		t.x[i] = t.x[i]&^(1<<bq) | l.x[k]<<bq
		t.z[i] = t.z[i]&^(1<<bq) | l.z[k]<<bq
		t.p[r] = (t.p[r] + l.d[k]) & 3
	}
}

// Apply2 conjugates every tableau row by the two-qubit Clifford
// described by l, acting on qubits (a, b) in the LUT's slot order.
func (t *Tableau) Apply2(a, b int, l *LUT2) {
	wa, ba := a>>6, uint(a&63)
	wb, bb := b>>6, uint(b&63)
	w := t.words
	for r := 0; r < 2*t.n; r++ {
		ia := r*w + wa
		ib := r*w + wb
		xa := t.x[ia] >> ba & 1
		za := t.z[ia] >> ba & 1
		xb := t.x[ib] >> bb & 1
		zb := t.z[ib] >> bb & 1
		k := zb<<3 | xb<<2 | za<<1 | xa
		t.x[ia] = t.x[ia]&^(1<<ba) | l.xa[k]<<ba
		t.z[ia] = t.z[ia]&^(1<<ba) | l.za[k]<<ba
		t.x[ib] = t.x[ib]&^(1<<bb) | l.xb[k]<<bb
		t.z[ib] = t.z[ib]&^(1<<bb) | l.zb[k]<<bb
		t.p[r] = (t.p[r] + l.d[k]) & 3
	}
}

// ApplyPauliX applies an X error on qubit q: stabilizers anticommuting
// with X_q (z-bit set) flip sign. Adding 2 mod 4 is an XOR.
func (t *Tableau) ApplyPauliX(q int) {
	wq, bq := q>>6, uint(q&63)
	w := t.words
	for r := 0; r < 2*t.n; r++ {
		t.p[r] ^= uint8(t.z[r*w+wq]>>bq&1) << 1
	}
}

// ApplyPauliZ applies a Z error on qubit q: rows with the x-bit set
// flip sign.
func (t *Tableau) ApplyPauliZ(q int) {
	wq, bq := q>>6, uint(q&63)
	w := t.words
	for r := 0; r < 2*t.n; r++ {
		t.p[r] ^= uint8(t.x[r*w+wq]>>bq&1) << 1
	}
}

// ApplyPauliY applies a Y error on qubit q: rows with exactly one of
// the x/z bits set anticommute with Y and flip sign.
func (t *Tableau) ApplyPauliY(q int) {
	wq, bq := q>>6, uint(q&63)
	w := t.words
	for r := 0; r < 2*t.n; r++ {
		t.p[r] ^= uint8((t.x[r*w+wq]^t.z[r*w+wq])>>bq&1) << 1
	}
}

// ApplyPauli applies error k on qubit q using the noise package's
// Pauli index convention (0=I, 1=X, 2=Y, 3=Z).
func (t *Tableau) ApplyPauli(q, k int) {
	switch k {
	case 1:
		t.ApplyPauliX(q)
	case 2:
		t.ApplyPauliY(q)
	case 3:
		t.ApplyPauliZ(q)
	}
}

// MeasureQubit measures qubit q in the computational basis, collapsing
// the state, and returns the outcome bit.
//
// The draw protocol mirrors statevec.MeasureQubit exactly — one
// uniform per measurement, outcome 1 iff u < P(1) — so a trial's RNG
// stream position after a measurement is identical on both engines,
// and the outcomes agree wherever the statevector's P(1) rounds to the
// tableau's exact {0, ½, 1}.
func (t *Tableau) MeasureQubit(q int, r *rng.RNG) int {
	n, w := t.n, t.words
	wq, bq := q>>6, uint(q&63)
	pivot := -1
	for i := n; i < 2*n; i++ {
		if t.x[i*w+wq]>>bq&1 != 0 {
			pivot = i
			break
		}
	}
	if pivot >= 0 {
		// Random outcome: some stabilizer anticommutes with Z_q, so
		// P(1) is exactly ½. Collapse per CHP: fold the pivot row into
		// every other row that anticommutes with Z_q, demote the pivot
		// to the destabilizer slot, and install ±Z_q as the stabilizer.
		outcome := 0
		if r.Float64() < 0.5 {
			outcome = 1
		}
		for i := 0; i < 2*n; i++ {
			if i != pivot && t.x[i*w+wq]>>bq&1 != 0 {
				t.rowMult(i, pivot)
			}
		}
		t.copyRow(pivot-n, pivot)
		t.zeroRow(pivot)
		t.z[pivot*w+wq] |= 1 << bq
		t.p[pivot] = uint8(outcome) << 1
		return outcome
	}
	// Deterministic outcome: Z_q is in the stabilizer group. The product
	// of the stabilizers flagged by destabilizer x-bits equals ±Z_q;
	// its phase (0 or 2, X half is empty so the row is Hermitian with
	// no Y factors) encodes the outcome. The multiplied rows commute
	// pairwise, so the accumulation order cannot change the phase.
	s := 2 * n
	t.zeroRow(s)
	for i := 0; i < n; i++ {
		if t.x[i*w+wq]>>bq&1 != 0 {
			t.rowMult(s, i+n)
		}
	}
	outcome := int(t.p[s] >> 1)
	// Burn the same uniform the statevector engine draws: u < 1.0 is
	// always true and u < 0.0 always false, so the outcome is
	// unchanged but the stream position matches.
	if r.Float64() < float64(outcome) {
		return 1
	}
	return 0
}

// ProbabilityOne returns P(measuring 1) on qubit q without collapsing:
// exactly 0.5 if any stabilizer anticommutes with Z_q, else exactly 0
// or 1. Used by identity tests against the statevector engine.
func (t *Tableau) ProbabilityOne(q int) float64 {
	n, w := t.n, t.words
	wq, bq := q>>6, uint(q&63)
	for i := n; i < 2*n; i++ {
		if t.x[i*w+wq]>>bq&1 != 0 {
			return 0.5
		}
	}
	s := 2 * n
	t.zeroRow(s)
	for i := 0; i < n; i++ {
		if t.x[i*w+wq]>>bq&1 != 0 {
			t.rowMult(s, i+n)
		}
	}
	return float64(t.p[s] >> 1)
}
