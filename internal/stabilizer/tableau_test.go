package stabilizer

import (
	"math"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
	"edm/internal/statevec"
)

func TestPauliMulAlgebra(t *testing.T) {
	x := Pauli{X: 1}
	z := Pauli{Z: 1}
	y := Pauli{X: 1, Z: 1, Phase: 1} // Y = i·XZ
	// XZ is already normal form with no phase; ZX = -XZ.
	if got := Mul(x, z); got != (Pauli{X: 1, Z: 1}) {
		t.Fatalf("X·Z = %+v", got)
	}
	if got := Mul(z, x); got != (Pauli{X: 1, Z: 1, Phase: 2}) {
		t.Fatalf("Z·X = %+v", got)
	}
	// Pauli involutions square to identity.
	for _, p := range []Pauli{x, z, y} {
		if got := Mul(p, p); got != (Pauli{}) {
			t.Fatalf("%+v squared = %+v", p, got)
		}
	}
	// XY = iZ, YX = -iZ.
	if got := Mul(x, y); got != (Pauli{Z: 1, Phase: 1}) {
		t.Fatalf("X·Y = %+v", got)
	}
	if got := Mul(y, x); got != (Pauli{Z: 1, Phase: 3}) {
		t.Fatalf("Y·X = %+v", got)
	}
	if !y.Hermitian() || !x.Hermitian() {
		t.Fatal("X/Y not Hermitian")
	}
}

func TestPauliHermitian(t *testing.T) {
	// XZ has one Y-like overlap bit and phase 0: (XZ)† = Z X = −XZ, so it
	// is *not* Hermitian; i·XZ = Y is.
	if (Pauli{X: 1, Z: 1, Phase: 0}).Hermitian() {
		t.Fatal("XZ reported Hermitian")
	}
	if !(Pauli{X: 1, Z: 1, Phase: 1}).Hermitian() {
		t.Fatal("Y reported non-Hermitian")
	}
	if !(Pauli{X: 1, Z: 0, Phase: 2}).Hermitian() {
		t.Fatal("-X reported non-Hermitian")
	}
	if (Pauli{X: 1, Z: 0, Phase: 1}).Hermitian() {
		t.Fatal("iX reported Hermitian")
	}
}

func TestDeterministicMeasurements(t *testing.T) {
	r := rng.New(1)
	tb := New(3)
	if got := tb.MeasureQubit(0, r); got != 0 {
		t.Fatalf("|000> measured %d", got)
	}
	tb.Apply1(1, LUTX)
	if got := tb.MeasureQubit(1, r); got != 1 {
		t.Fatalf("X|0> measured %d", got)
	}
	// H then H is identity.
	tb.Apply1(2, LUTH)
	tb.Apply1(2, LUTH)
	if p := tb.ProbabilityOne(2); p != 0 {
		t.Fatalf("HH|0> P(1) = %v", p)
	}
	// HZH = X.
	tb.Apply1(2, LUTH)
	tb.Apply1(2, LUTZ)
	tb.Apply1(2, LUTH)
	if got := tb.MeasureQubit(2, r); got != 1 {
		t.Fatalf("HZH|0> measured %d", got)
	}
}

func TestBellCorrelation(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		r := rng.New(seed)
		tb := New(2)
		tb.Apply1(0, LUTH)
		tb.Apply2(0, 1, LUTCX)
		if p := tb.ProbabilityOne(0); p != 0.5 {
			t.Fatalf("Bell P(1) on qubit 0 = %v", p)
		}
		o0 := tb.MeasureQubit(0, r)
		if p := tb.ProbabilityOne(1); p != float64(o0) {
			t.Fatalf("after measuring %d, qubit 1 P(1) = %v", o0, p)
		}
		if o1 := tb.MeasureQubit(1, r); o1 != o0 {
			t.Fatalf("Bell outcomes differ: %d vs %d", o0, o1)
		}
	}
}

func TestPauliErrorPhases(t *testing.T) {
	r := rng.New(7)
	tb := New(1)
	tb.ApplyPauliX(0)
	if got := tb.MeasureQubit(0, r); got != 1 {
		t.Fatalf("X error on |0>: measured %d", got)
	}
	tb2 := New(1)
	tb2.ApplyPauliZ(0) // Z|0> = |0>
	if got := tb2.MeasureQubit(0, r); got != 0 {
		t.Fatalf("Z error on |0>: measured %d", got)
	}
	tb3 := New(1)
	tb3.ApplyPauliY(0) // Y|0> = i|1>
	if got := tb3.MeasureQubit(0, r); got != 1 {
		t.Fatalf("Y error on |0>: measured %d", got)
	}
}

// cliffordGate pairs a tableau action with the equivalent statevector
// matrix so random-circuit tests can drive both representations.
type cliffordGate struct {
	name  string
	arity int
	lut1  *LUT1
	lut2  *LUT2
	m2    circuit.Matrix2
	m4    circuit.Matrix4
}

func gateSet() []cliffordGate {
	return []cliffordGate{
		{name: "h", arity: 1, lut1: LUTH, m2: circuit.Matrix1Q(circuit.H, nil)},
		{name: "s", arity: 1, lut1: LUTS, m2: circuit.Matrix1Q(circuit.S, nil)},
		{name: "sdg", arity: 1, lut1: LUTSdg, m2: circuit.Matrix1Q(circuit.Sdg, nil)},
		{name: "x", arity: 1, lut1: LUTX, m2: circuit.Matrix1Q(circuit.X, nil)},
		{name: "y", arity: 1, lut1: LUTY, m2: circuit.Matrix1Q(circuit.Y, nil)},
		{name: "z", arity: 1, lut1: LUTZ, m2: circuit.Matrix1Q(circuit.Z, nil)},
		{name: "cx", arity: 2, lut2: LUTCX, m4: circuit.Matrix2Q(circuit.CX)},
		{name: "cz", arity: 2, lut2: LUTCZ, m4: circuit.Matrix2Q(circuit.CZ)},
	}
}

// TestRandomCliffordVsStatevec drives random Clifford circuits with
// interleaved Pauli errors and mid-circuit measurements through both
// the tableau and the dense statevector, on identical RNG streams, and
// requires identical outcomes and matching probabilities throughout.
func TestRandomCliffordVsStatevec(t *testing.T) {
	gates := gateSet()
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 25; trial++ {
			seed := uint64(n*1000 + trial)
			gen := rng.New(seed).Derive("gen")
			rt := rng.New(seed).Derive("draws")
			rs := rng.New(seed).Derive("draws")
			tb := New(n)
			sv := statevec.NewState(n)
			steps := 8 + 4*n
			for s := 0; s < steps; s++ {
				switch gen.Intn(4) {
				case 0, 1: // gate
					g := gates[gen.Intn(len(gates))]
					if g.arity == 2 && n < 2 {
						continue
					}
					if g.arity == 1 {
						q := gen.Intn(n)
						tb.Apply1(q, g.lut1)
						sv.Apply1Q(g.m2, q)
					} else {
						a := gen.Intn(n)
						b := gen.Intn(n - 1)
						if b >= a {
							b++
						}
						tb.Apply2(a, b, g.lut2)
						sv.Apply2Q(g.m4, a, b)
					}
				case 2: // Pauli error
					q := gen.Intn(n)
					k := 1 + gen.Intn(3)
					tb.ApplyPauli(q, k)
					pm := [4]circuit.Kind{circuit.I, circuit.X, circuit.Y, circuit.Z}
					sv.Apply1Q(circuit.Matrix1Q(pm[k], nil), q)
				case 3: // measurement
					q := gen.Intn(n)
					pt := tb.ProbabilityOne(q)
					ps := sv.ProbabilityOne(q)
					if math.Abs(pt-ps) > 1e-9 {
						t.Fatalf("n=%d trial=%d step=%d: P(1) tableau %v vs statevec %v", n, trial, s, pt, ps)
					}
					ot := tb.MeasureQubit(q, rt)
					os := sv.MeasureQubit(q, rs)
					if ot != os {
						t.Fatalf("n=%d trial=%d step=%d: outcome tableau %d vs statevec %d", n, trial, s, ot, os)
					}
				}
			}
			// Final full measurement sweep.
			for q := 0; q < n; q++ {
				ot := tb.MeasureQubit(q, rt)
				os := sv.MeasureQubit(q, rs)
				if ot != os {
					t.Fatalf("n=%d trial=%d final q=%d: tableau %d vs statevec %d", n, trial, q, ot, os)
				}
			}
			if rt.State() != rs.State() {
				t.Fatalf("n=%d trial=%d: RNG streams diverged", n, trial)
			}
		}
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	tb := New(70) // multi-word
	tb.Apply1(0, LUTH)
	tb.Apply2(0, 69, LUTCX)
	if tb.Words() != 2 {
		t.Fatalf("Words = %d, want 2", tb.Words())
	}
	snap := tb.Clone()
	r1 := rng.New(3)
	r2 := rng.New(3)
	o1a := tb.MeasureQubit(0, r1)
	o1b := tb.MeasureQubit(69, r1)
	tb.CopyFrom(snap)
	o2a := tb.MeasureQubit(0, r2)
	o2b := tb.MeasureQubit(69, r2)
	if o1a != o2a || o1b != o2b {
		t.Fatalf("replay after CopyFrom differs: (%d,%d) vs (%d,%d)", o1a, o1b, o2a, o2b)
	}
	if o1a != o1b {
		t.Fatalf("multi-word Bell pair decorrelated: %d vs %d", o1a, o1b)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	tb := New(4)
	tb.Apply1(2, LUTX)
	tb.Apply1(1, LUTH)
	tb.Reset()
	fresh := New(4)
	r1, r2 := rng.New(9), rng.New(9)
	for q := 0; q < 4; q++ {
		if a, b := tb.MeasureQubit(q, r1), fresh.MeasureQubit(q, r2); a != b || a != 0 {
			t.Fatalf("Reset state measured %d on qubit %d", a, q)
		}
	}
}
