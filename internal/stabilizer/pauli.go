// Package stabilizer implements an Aaronson–Gottesman-style tableau
// simulator for Clifford circuits (arXiv:quant-ph/0406196).
//
// A Tableau tracks the stabilizer group of an n-qubit state as 2n+1
// Pauli rows (n destabilizers, n stabilizers, one scratch row), each
// packed into (n+63)/64 uint64 words per X/Z half plus a phase mod 4.
// Rows are kept in *normal form*: row = i^p · X^x · Z^z, with all X
// factors to the left of all Z factors. This differs from CHP's
// sign-bit/Y-count convention but makes the row product a single
// word-parallel XOR plus a popcount-parity phase fix, and lets gate
// conjugation be driven by small lookup tables built from Pauli images
// rather than hard-coded per-gate rules — which is what the backend
// needs, since its fused composite gates are recognized numerically,
// not by name.
//
// Everything here is exact integer arithmetic: no floating point except
// the one uniform drawn per measurement, which mirrors the statevector
// engine's draw so counts stay byte-identical wherever both engines run.
package stabilizer

import (
	"fmt"
	"math/bits"
)

// Pauli is a Pauli operator on up to 8 qubit slots in normal form
// i^Phase · X^X · Z^Z. Bit k of X/Z is slot k's X/Z exponent.
type Pauli struct {
	X, Z  uint8
	Phase uint8 // mod 4
}

// Mul returns the normal-form product a·b. Commuting X factors of b
// left across Z factors of a contributes i^2 per crossing pair, hence
// the popcount-parity term.
func Mul(a, b Pauli) Pauli {
	return Pauli{
		X:     a.X ^ b.X,
		Z:     a.Z ^ b.Z,
		Phase: (a.Phase + b.Phase + uint8(bits.OnesCount8(a.Z&b.X)&1)<<1) & 3,
	}
}

// Hermitian reports whether the operator is Hermitian (a valid
// conjugation image of a Hermitian Pauli): each Y factor is i·XZ, so
// the normal-form phase parity must equal the Y count parity.
func (p Pauli) Hermitian() bool {
	return (p.Phase^uint8(bits.OnesCount8(p.X&p.Z)))&1 == 0
}

// LUT1 drives single-qubit Clifford conjugation: entry k = za<<1|xa
// holds the image bits and phase delta for the row factor X^xa Z^za on
// the gate's qubit. Image bits are stored as 0/1 uint64s so Apply1 can
// splice them into packed rows without conversions.
type LUT1 struct {
	x, z [4]uint64
	d    [4]uint8
}

// NewLUT1 builds the table from the gate's conjugation images of X and
// Z on its qubit. Images must be single-slot (bit 0 only) Hermitian
// Paulis; anything else is a programmer error in the recognizer.
func NewLUT1(imgX, imgZ Pauli) *LUT1 {
	for _, img := range []Pauli{imgX, imgZ} {
		if img.X > 1 || img.Z > 1 || !img.Hermitian() {
			panic(fmt.Sprintf("stabilizer: invalid 1Q image %+v", img))
		}
	}
	var l LUT1
	for xa := uint8(0); xa < 2; xa++ {
		for za := uint8(0); za < 2; za++ {
			img := Pauli{}
			if xa == 1 {
				img = Mul(img, imgX)
			}
			if za == 1 {
				img = Mul(img, imgZ)
			}
			k := za<<1 | xa
			l.x[k] = uint64(img.X & 1)
			l.z[k] = uint64(img.Z & 1)
			l.d[k] = img.Phase
		}
	}
	return &l
}

// LUT2 drives two-qubit Clifford conjugation: entry
// k = zb<<3|xb<<2|za<<1|xa holds the image bits on qubits (a,b) and the
// phase delta for the row factor X_a^xa Z_a^za X_b^xb Z_b^zb.
type LUT2 struct {
	xa, za, xb, zb [16]uint64
	d              [16]uint8
}

// NewLUT2 builds the table from the gate's conjugation images of
// X_a, Z_a, X_b, Z_b (slot a = bit 0, slot b = bit 1). The input row
// factor X_a^xa Z_a^za X_b^xb Z_b^zb carries no phase of its own
// (factors on distinct qubits commute exactly), so each entry is the
// ordered image product.
func NewLUT2(imgXA, imgZA, imgXB, imgZB Pauli) *LUT2 {
	for _, img := range []Pauli{imgXA, imgZA, imgXB, imgZB} {
		if img.X > 3 || img.Z > 3 || !img.Hermitian() {
			panic(fmt.Sprintf("stabilizer: invalid 2Q image %+v", img))
		}
	}
	var l LUT2
	for k := uint8(0); k < 16; k++ {
		xa, za := k&1, k>>1&1
		xb, zb := k>>2&1, k>>3&1
		img := Pauli{}
		if xa == 1 {
			img = Mul(img, imgXA)
		}
		if za == 1 {
			img = Mul(img, imgZA)
		}
		if xb == 1 {
			img = Mul(img, imgXB)
		}
		if zb == 1 {
			img = Mul(img, imgZB)
		}
		l.xa[k] = uint64(img.X & 1)
		l.za[k] = uint64(img.Z & 1)
		l.xb[k] = uint64(img.X >> 1 & 1)
		l.zb[k] = uint64(img.Z >> 1 & 1)
		l.d[k] = img.Phase
	}
	return &l
}

// Named gate images, used by package tests and as recognizer
// cross-checks. Slot a = bit 0, slot b = bit 1.
var (
	// LUTH: H maps X→Z, Z→X.
	LUTH = NewLUT1(Pauli{X: 0, Z: 1}, Pauli{X: 1, Z: 0})
	// LUTS: S maps X→Y = i·XZ, Z→Z.
	LUTS = NewLUT1(Pauli{X: 1, Z: 1, Phase: 1}, Pauli{X: 0, Z: 1})
	// LUTSdg: S† maps X→−Y = i³·XZ, Z→Z.
	LUTSdg = NewLUT1(Pauli{X: 1, Z: 1, Phase: 3}, Pauli{X: 0, Z: 1})
	// LUTX: X maps X→X, Z→−Z.
	LUTX = NewLUT1(Pauli{X: 1, Z: 0}, Pauli{X: 0, Z: 1, Phase: 2})
	// LUTY: Y maps X→−X, Z→−Z.
	LUTY = NewLUT1(Pauli{X: 1, Z: 0, Phase: 2}, Pauli{X: 0, Z: 1, Phase: 2})
	// LUTZ: Z maps X→−X, Z→Z.
	LUTZ = NewLUT1(Pauli{X: 1, Z: 0, Phase: 2}, Pauli{X: 0, Z: 1})
	// LUTCX: CX (control a, target b) maps X_a→X_aX_b, Z_a→Z_a,
	// X_b→X_b, Z_b→Z_aZ_b.
	LUTCX = NewLUT2(Pauli{X: 3, Z: 0}, Pauli{X: 0, Z: 1}, Pauli{X: 2, Z: 0}, Pauli{X: 0, Z: 3})
	// LUTCZ: CZ maps X_a→X_aZ_b, Z_a→Z_a, X_b→Z_aX_b, Z_b→Z_b.
	LUTCZ = NewLUT2(Pauli{X: 1, Z: 2}, Pauli{X: 0, Z: 1}, Pauli{X: 2, Z: 1}, Pauli{X: 0, Z: 2})
)
