package mitigate

import (
	"math"
	"testing"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/statevec"
	"edm/internal/workloads"
)

func TestInvertExactChannel(t *testing.T) {
	// Push a known distribution through a known confusion channel
	// analytically, then invert: the original must come back exactly.
	truth := dist.MustFromMap(map[string]float64{"00": 0.5, "10": 0.2, "01": 0.2, "11": 0.1})
	chans := []QubitChannel{{E01: 0.04, E10: 0.12}, {E01: 0.02, E10: 0.08}}
	observed := applyChannel(truth, chans)
	got, err := Invert(observed, chans)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(truth, 1e-9) {
		t.Fatalf("inversion did not recover the truth:\n%v\nvs\n%v", got, truth)
	}
}

// applyChannel pushes d through per-bit confusion channels (the forward
// direction, written independently of the code under test).
func applyChannel(d *dist.Dist, chans []QubitChannel) *dist.Dist {
	m := d.N()
	out := dist.New(m)
	size := uint64(1) << uint(m)
	for obs := uint64(0); obs < size; obs++ {
		var p float64
		for truth := uint64(0); truth < size; truth++ {
			pt := d.PV(truth)
			if pt == 0 {
				continue
			}
			w := pt
			for b := 0; b < m; b++ {
				tb := truth >> uint(b) & 1
				ob := obs >> uint(b) & 1
				switch {
				case tb == 0 && ob == 0:
					w *= 1 - chans[b].E01
				case tb == 0 && ob == 1:
					w *= chans[b].E01
				case tb == 1 && ob == 0:
					w *= chans[b].E10
				default:
					w *= 1 - chans[b].E10
				}
			}
			p += w
		}
		if p > 0 {
			out.Add(bitstr.New(obs, m), p)
		}
	}
	return out
}

func TestInvertRecoversOnReadoutOnlyMachine(t *testing.T) {
	// A machine whose only noise is readout error: mitigation should
	// recover the ideal distribution within sampling noise.
	cal := device.Generate(device.Linear(3), device.IdealProfile(), rng.New(1))
	cal.Meas01 = []float64{0.05, 0.03, 0.08}
	cal.Meas10 = []float64{0.12, 0.10, 0.15}
	m := backend.New(cal)
	c := circuit.New(3, 3)
	c.H(0).CX(0, 1).CX(1, 2).MeasureAll()
	counts, err := m.Run(c, 60000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	chans, err := ChannelsFor(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	mitigated, err := InvertCounts(counts, chans)
	if err != nil {
		t.Fatal(err)
	}
	want, err := statevec.IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if tv := mitigated.TV(want); tv > 0.02 {
		t.Fatalf("mitigated TV from ideal = %v", tv)
	}
	// And it must beat the unmitigated distribution.
	if raw := counts.Dist().TV(want); raw <= mitigated.TV(want) {
		t.Fatalf("mitigation did not help: raw %v vs mitigated %v", raw, mitigated.TV(want))
	}
}

func TestInvertRemovesReadoutLayer(t *testing.T) {
	// On the full melbourne noise model, mitigation cannot touch the gate
	// and coherence errors; its contract is narrower: the mitigated
	// distribution must be closer to the *readout-error-free* output than
	// the raw one is. That reference comes from the exact engine with the
	// same calibration minus its readout rates.
	w := workloads.BV("1011") // small footprint keeps the exact engine fast
	wins, rounds := 0, 5
	for round := 0; round < rounds; round++ {
		cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(uint64(300+round)))
		comp := mapper.NewCompiler(cal)
		exe, err := comp.Compile(w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		m := backend.New(cal) // no drift: calibration matches machine
		counts, err := m.Run(exe.Circuit, 16384, rng.New(uint64(400+round)))
		if err != nil {
			t.Fatal(err)
		}
		chans, err := ChannelsFor(exe.Circuit, cal)
		if err != nil {
			t.Fatal(err)
		}
		mitigated, err := InvertCounts(counts, chans)
		if err != nil {
			t.Fatal(err)
		}
		clean := cal.Clone()
		for q := 0; q < clean.Topo.Qubits; q++ {
			clean.Meas01[q], clean.Meas10[q] = 0, 0
		}
		clean.ReadoutCorr = 0
		ref, err := backend.New(clean).ExactDist(exe.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if mitigated.TV(ref) < counts.Dist().TV(ref) {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("mitigation moved toward the readout-free reference in only %d/%d rounds", wins, rounds)
	}
}

func TestChannelsFor(t *testing.T) {
	cal := device.Generate(device.Linear(3), device.MelbourneProfile(), rng.New(5))
	c := circuit.New(3, 2)
	c.Measure(2, 0) // bit 0 <- qubit 2; bit 1 unwritten
	chans, err := ChannelsFor(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	if chans[0].E01 != cal.Meas01[2] || chans[0].E10 != cal.Meas10[2] {
		t.Fatal("channel rates wrong")
	}
	if chans[1].E01 != 0 || chans[1].E10 != 0 {
		t.Fatal("unwritten bit should have a perfect channel")
	}
	if _, err := ChannelsFor(circuit.New(9, 1), cal); err == nil {
		t.Fatal("oversized executable accepted")
	}
}

func TestInvertGuards(t *testing.T) {
	d := dist.MustFromMap(map[string]float64{"0": 1})
	if _, err := Invert(d, nil); err == nil {
		t.Fatal("channel count mismatch accepted")
	}
	// Non-invertible channel: e01 + e10 = 1.
	if _, err := Invert(d, []QubitChannel{{E01: 0.5, E10: 0.5}}); err == nil {
		t.Fatal("singular channel accepted")
	}
}

func TestInvertClampsNegatives(t *testing.T) {
	// Sampling noise can push inversion negative; results must stay a
	// valid distribution.
	d := dist.MustFromMap(map[string]float64{"0": 0.97, "1": 0.03})
	got, err := Invert(d, []QubitChannel{{E01: 0.05, E10: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Sum()-1) > 1e-9 {
		t.Fatalf("mass = %v", got.Sum())
	}
	for _, o := range got.Sorted() {
		if o.P < 0 {
			t.Fatalf("negative probability %v", o.P)
		}
	}
}
