// Package mitigate implements measurement-error mitigation by confusion-
// matrix inversion, the standard post-processing counterpart to the
// paper's hardware-level techniques: every measured qubit's readout is a
// known binary asymmetric channel (P(1|0) = Meas01, P(0|1) = Meas10 from
// the calibration), and because the backend's readout errors are
// independent given the true state, the full confusion matrix factorizes
// per qubit and can be inverted qubit-by-qubit in O(m * 2^m).
//
// Inversion sharpens the distribution EDM merges: it raises P(correct)
// where ensembling lowers P(strongest wrong), so the two compose. It is
// only as good as the calibration — with drifted readout rates the
// inverse is approximate — and it can produce small negative
// pseudo-probabilities, which are clamped and renormalized as usual.
//
// The correlated component of readout noise (the ReadoutCorr neighbour
// coupling) deliberately stays unmodelled here: real mitigation uses
// tensored calibration exactly like this, and the residual correlated
// part is the kind of mistake that remains for EDM to diversify away.
package mitigate

import (
	"fmt"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/dist"
)

// QubitChannel is a per-qubit binary readout channel.
type QubitChannel struct {
	// E01 is P(read 1 | true 0); E10 is P(read 0 | true 1).
	E01, E10 float64
}

// invertible reports whether the channel's 2x2 confusion matrix has a
// usable inverse (determinant bounded away from zero).
func (q QubitChannel) invertible() bool {
	det := 1 - q.E01 - q.E10
	return det > 1e-6 || det < -1e-6
}

// ChannelsFor extracts the readout channels of the qubits that write each
// classical bit of the executable, using the calibration's rates. The
// returned slice is indexed by classical bit; bits never written get a
// perfect channel.
func ChannelsFor(exe *circuit.Circuit, cal *device.Calibration) ([]QubitChannel, error) {
	if exe.NumQubits > cal.Topo.Qubits {
		return nil, fmt.Errorf("mitigate: executable uses %d qubits, device has %d", exe.NumQubits, cal.Topo.Qubits)
	}
	chans := make([]QubitChannel, exe.NumClbits)
	for cb, q := range exe.MeasuredBits() {
		if q < 0 {
			continue
		}
		chans[cb] = QubitChannel{E01: cal.Meas01[q], E10: cal.Meas10[q]}
	}
	return chans, nil
}

// Invert applies the tensored inverse confusion matrix to the measured
// distribution: bit by bit, the observed probability vector is multiplied
// by the inverse of [[1-E01, E10], [E01, 1-E10]]. Negative entries from
// sampling noise are clamped to zero and the result renormalized.
func Invert(d *dist.Dist, chans []QubitChannel) (*dist.Dist, error) {
	m := d.N()
	if len(chans) != m {
		return nil, fmt.Errorf("mitigate: %d channels for %d bits", len(chans), m)
	}
	// Dense vector over the outcome space (m <= 20 or so in practice; the
	// paper's workloads have m <= 8).
	if m > 20 {
		return nil, fmt.Errorf("mitigate: %d bits is too wide for dense inversion", m)
	}
	size := 1 << uint(m)
	vec := make([]float64, size)
	for _, o := range d.Sorted() {
		vec[o.Value.Uint64()] = o.P
	}
	for bit := 0; bit < m; bit++ {
		ch := chans[bit]
		if ch.E01 == 0 && ch.E10 == 0 {
			continue
		}
		if !ch.invertible() {
			return nil, fmt.Errorf("mitigate: bit %d channel (%.3f, %.3f) is not invertible", bit, ch.E01, ch.E10)
		}
		// Confusion matrix C = [[1-e01, e10],[e01, 1-e10]] maps true ->
		// observed; apply C^{-1} on this bit's axis.
		det := 1 - ch.E01 - ch.E10
		i00 := (1 - ch.E10) / det
		i01 := -ch.E10 / det
		i10 := -ch.E01 / det
		i11 := (1 - ch.E01) / det
		stride := 1 << uint(bit)
		for base := 0; base < size; base++ {
			if base&stride != 0 {
				continue
			}
			p0 := vec[base]
			p1 := vec[base|stride]
			vec[base] = i00*p0 + i01*p1
			vec[base|stride] = i10*p0 + i11*p1
		}
	}
	out := dist.New(m)
	var total float64
	for v, p := range vec {
		if p > 0 {
			total += p
			out.Add(bitstr.New(uint64(v), m), p)
		}
	}
	if total <= 0 {
		return nil, fmt.Errorf("mitigate: inversion annihilated the distribution")
	}
	return out.Scale(1 / total), nil
}

// InvertCounts is Invert applied to a raw output log.
func InvertCounts(c *dist.Counts, chans []QubitChannel) (*dist.Dist, error) {
	return Invert(c.Dist(), chans)
}
