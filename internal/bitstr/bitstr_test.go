package bitstr

import (
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "110011", "1101011", "00000000", "11111111", "101010"}
	for _, s := range cases {
		b, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := b.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		if b.Len() != len(s) {
			t.Errorf("Parse(%q).Len() = %d", s, b.Len())
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"012", "abc", "1 0"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestBitOrderConvention(t *testing.T) {
	// Bit 0 is the leftmost character.
	b := MustParse("100")
	if !b.Bit(0) || b.Bit(1) || b.Bit(2) {
		t.Fatalf("bit order wrong: %v", b)
	}
	if b.Uint64() != 1 {
		t.Fatalf("Uint64 = %d, want 1", b.Uint64())
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic(t, func() { New(4, 2) })  // value too wide
	mustPanic(t, func() { New(0, -1) }) // negative width
	mustPanic(t, func() { New(0, 64) }) // too wide
	_ = New(3, 2)                       // fits
}

func TestWithBitFlip(t *testing.T) {
	b := Zeros(4)
	b = b.WithBit(2, true)
	if b.String() != "0010" {
		t.Fatalf("WithBit: %v", b)
	}
	b = b.Flip(2).Flip(0)
	if b.String() != "1000" {
		t.Fatalf("Flip: %v", b)
	}
}

func TestInvert(t *testing.T) {
	b := MustParse("1010")
	if got := b.Invert().String(); got != "0101" {
		t.Fatalf("Invert = %q", got)
	}
	if !Zeros(5).Invert().Equal(Ones(5)) {
		t.Fatal("Invert(zeros) != ones")
	}
	var empty BitString
	if !empty.Invert().Equal(empty) {
		t.Fatal("Invert of empty changed it")
	}
}

func TestWeightDistance(t *testing.T) {
	a := MustParse("1101")
	if a.Weight() != 3 {
		t.Fatalf("Weight = %d", a.Weight())
	}
	b := MustParse("1011")
	if d := a.Distance(b); d != 2 {
		t.Fatalf("Distance = %d", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self Distance = %d", d)
	}
}

func TestDistanceWidthMismatchPanics(t *testing.T) {
	mustPanic(t, func() { MustParse("101").Distance(MustParse("10")) })
}

func TestOnesZeros(t *testing.T) {
	if Ones(6).String() != "111111" {
		t.Fatal("Ones wrong")
	}
	if Zeros(6).String() != "000000" {
		t.Fatal("Zeros wrong")
	}
	if Ones(0).Len() != 0 {
		t.Fatal("Ones(0) not empty")
	}
}

func TestEnumerate(t *testing.T) {
	all := Enumerate(3)
	if len(all) != 8 {
		t.Fatalf("Enumerate(3) len = %d", len(all))
	}
	seen := map[uint64]bool{}
	for i, b := range all {
		if b.Len() != 3 {
			t.Fatalf("width %d", b.Len())
		}
		if b.Uint64() != uint64(i) {
			t.Fatalf("order: index %d has value %d", i, b.Uint64())
		}
		seen[b.Uint64()] = true
	}
	if len(seen) != 8 {
		t.Fatal("duplicates in Enumerate")
	}
}

func TestEnumeratePanicsWhenHuge(t *testing.T) {
	mustPanic(t, func() { Enumerate(21) })
}

// Property: invert is an involution and distance to the inverse equals width.
func TestInvertProperties(t *testing.T) {
	if err := quick.Check(func(v uint16, wRaw uint8) bool {
		n := int(wRaw%16) + 1
		b := New(uint64(v)&((1<<uint(n))-1), n)
		inv := b.Invert()
		return inv.Invert().Equal(b) && b.Distance(inv) == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weight(a^b) == distance(a,b); weight(a) + weight(invert(a)) == n.
func TestWeightProperties(t *testing.T) {
	if err := quick.Check(func(x, y uint16, wRaw uint8) bool {
		n := int(wRaw%16) + 1
		mask := uint64(1)<<uint(n) - 1
		a := New(uint64(x)&mask, n)
		b := New(uint64(y)&mask, n)
		if a.Weight()+a.Invert().Weight() != n {
			return false
		}
		return New(a.Uint64()^b.Uint64(), n).Weight() == a.Distance(b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
