// Package bitstr represents measurement outcomes of an n-qubit program as
// fixed-width bit strings.
//
// Convention: bit i of the packed word corresponds to program qubit i (or,
// after mapping, to classical bit i of the result register). The textual
// form prints bit 0 as the leftmost character, so the string reads in qubit
// order — the same order the paper uses when it writes keys such as
// "110011" for BV-6.
package bitstr

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxBits is the widest outcome this package supports. All workloads in the
// paper use at most 8 measured bits; the melbourne device has 14 qubits.
const MaxBits = 63

// BitString is an immutable n-bit outcome. The zero value is the empty
// (0-bit) string.
type BitString struct {
	bits uint64
	n    int
}

// New returns an n-bit string whose bit pattern is the low n bits of v.
// It panics if n is out of range or v has bits set above position n-1.
func New(v uint64, n int) BitString {
	if n < 0 || n > MaxBits {
		panic(fmt.Sprintf("bitstr: width %d out of range", n))
	}
	if n < 64 && v>>uint(n) != 0 {
		panic(fmt.Sprintf("bitstr: value %#x does not fit in %d bits", v, n))
	}
	return BitString{bits: v, n: n}
}

// Parse converts a textual bit string such as "110011" (bit 0 leftmost)
// into a BitString.
func Parse(s string) (BitString, error) {
	if len(s) > MaxBits {
		return BitString{}, fmt.Errorf("bitstr: string %q longer than %d bits", s, MaxBits)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v |= 1 << uint(i)
		default:
			return BitString{}, fmt.Errorf("bitstr: invalid character %q in %q", s[i], s)
		}
	}
	return BitString{bits: v, n: len(s)}, nil
}

// MustParse is Parse that panics on error; for literals in tests and
// workload definitions.
func MustParse(s string) BitString {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Zeros returns the all-zero string of width n.
func Zeros(n int) BitString { return New(0, n) }

// Ones returns the all-one string of width n.
func Ones(n int) BitString {
	if n == 0 {
		return BitString{}
	}
	return New((uint64(1)<<uint(n))-1, n)
}

// Len returns the width in bits.
func (b BitString) Len() int { return b.n }

// Uint64 returns the packed bit pattern (bit i = qubit i).
func (b BitString) Uint64() uint64 { return b.bits }

// Bit reports whether bit i is set. It panics if i is out of range.
func (b BitString) Bit(i int) bool {
	b.check(i)
	return b.bits>>uint(i)&1 == 1
}

// WithBit returns a copy with bit i set to v.
func (b BitString) WithBit(i int, v bool) BitString {
	b.check(i)
	if v {
		b.bits |= 1 << uint(i)
	} else {
		b.bits &^= 1 << uint(i)
	}
	return b
}

// Flip returns a copy with bit i inverted.
func (b BitString) Flip(i int) BitString {
	b.check(i)
	b.bits ^= 1 << uint(i)
	return b
}

// Invert returns the bitwise complement (every bit flipped), the transform
// used by the Invert-and-Measure discussion in the paper's related work.
func (b BitString) Invert() BitString {
	if b.n == 0 {
		return b
	}
	mask := (uint64(1) << uint(b.n)) - 1
	b.bits = ^b.bits & mask
	return b
}

// Weight returns the Hamming weight (number of set bits).
func (b BitString) Weight() int { return bits.OnesCount64(b.bits) }

// Distance returns the Hamming distance to other. It panics if the widths
// differ.
func (b BitString) Distance(other BitString) int {
	if b.n != other.n {
		panic(fmt.Sprintf("bitstr: width mismatch %d vs %d", b.n, other.n))
	}
	return bits.OnesCount64(b.bits ^ other.bits)
}

// Equal reports whether the two strings have the same width and bits.
func (b BitString) Equal(other BitString) bool {
	return b.n == other.n && b.bits == other.bits
}

// String renders the outcome with bit 0 leftmost, e.g. New(0b011, 3) is
// "110".
func (b BitString) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (b BitString) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstr: bit index %d out of range for width %d", i, b.n))
	}
}

// Enumerate returns all 2^n outcomes of width n in increasing numeric
// order. It panics if n is large enough to make that unreasonable (> 20).
func Enumerate(n int) []BitString {
	if n < 0 || n > 20 {
		panic(fmt.Sprintf("bitstr: cannot enumerate width %d", n))
	}
	out := make([]BitString, 1<<uint(n))
	for v := range out {
		out[v] = BitString{bits: uint64(v), n: n}
	}
	return out
}
