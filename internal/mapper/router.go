package mapper

// router.go is the SABRE-style bidirectional reliability-aware router
// (Li, Ding & Xie, ASPLOS'19, adapted to the reliability metric of the
// noise-adaptive-compilation line: Murali et al. / Tannu & Qureshi,
// ASPLOS'19). It replaces the one-operand SWAP walk as the routing engine
// behind route(), so Compile, CompileWithLayout, TopK, singleBest and
// alternativePlacements all go through it.
//
// Three pieces compose:
//
//   - sabrePass routes one direction: when the next two-qubit gate sits on
//     uncoupled physical qubits, it scores every SWAP on a link adjacent to
//     either operand by the link's own error cost plus the
//     reliability-weighted distance of the front gate and a decaying window
//     of upcoming two-qubit gates, and applies the cheapest.
//   - converge runs the bidirectional iteration: route forward, route the
//     inverse of the program's unitary part (circuit.Inverse) from the
//     resulting final layout, and feed the backward pass's final layout in
//     as the next initial layout, until a fixed point (or the iteration
//     cap). Routing the reverse program pulls qubits toward where the
//     *whole* circuit wants them, not just its first gates.
//   - route/routePinned keep the legacy greedy walk as a safety net: every
//     variant is dry-run and scored, and only the best — highest ESP, then
//     fewest SWAPs, then greedy-first — is materialized into a circuit, so
//     the router can only improve on the frozen greedy baseline.
//
// Passes are dry: they score ESP incrementally from the compiler's dense
// success tables in the exact op order of the circuit they would build
// (bit-identical to device.ESP on that circuit, pinned by
// TestRouteESPMatchesDevice) and record their SWAP decisions as a log.
// Only the winning variant is materialized, by replaying its log with no
// scoring or search at all.
//
// Determinism contract: swap candidates are scored in a fixed order
// (neighbors of operand 0 ascending, then neighbors of operand 1
// ascending) and a challenger must beat the incumbent by a relative
// bbEps-style margin, so float rounding can never flip a near-tie and
// every pass is bit-identical across runs and GOMAXPROCS settings. The
// routers themselves are serial; the parallel sweeps above them (TopK
// shards, alternative-placement seeds, experiment cells) inherit
// bit-identical results, enforced by the -race determinism tests.

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"edm/internal/circuit"
)

const (
	// lookaheadWindow is the number of upcoming two-qubit gates the swap
	// cost looks at beyond the front gate.
	lookaheadWindow = 12
	// lookaheadDecay discounts each successive window gate: nearer gates
	// dominate, so the router does not sacrifice the front gate to distant
	// structure.
	lookaheadDecay = 0.7
	// lookaheadWeight scales the whole window term relative to the front
	// gate, which always has weight 1.
	lookaheadWeight = 0.5
	// sabreMaxIters caps the forward/backward iterations of converge. The
	// Table 1 workloads reach a fixed point in one or two rounds.
	sabreMaxIters = 4
	// stallLimit is the number of consecutive swaps that may leave the
	// front gate's path cost non-decreasing before the router forces a
	// cheapest-path step toward the partner, guaranteeing termination.
	stallLimit = 2
)

// routeProg is a circuit preprocessed for routing: its ops plus the
// two-qubit gate sequence the lookahead window slides over, and a
// lazily-built inverse program for the bidirectional iteration. Building
// it once lets many layouts of the same program (the alternative-placement
// sweep, the converge iterations) share all the per-program work.
type routeProg struct {
	src    *circuit.Circuit
	ops    []circuit.Op
	pairs  [][2]int // two-qubit gates' logical operands, in op order
	pairAt []int    // op index -> position in pairs (two-qubit ops only)
	used   []int    // logical qubits touched by non-Barrier ops, ascending
	nclb   int
	name   string

	invOnce sync.Once
	inv     *routeProg // inverse of the unitary part; nil if unavailable
}

func progOf(logical *circuit.Circuit) *routeProg {
	p := &routeProg{src: logical, ops: logical.Ops, nclb: logical.NumClbits, name: logical.Name}
	p.pairAt = make([]int, len(logical.Ops))
	n2q := 0
	for _, op := range logical.Ops {
		if op.Kind.IsTwoQubit() {
			n2q++
		}
	}
	p.pairs = make([][2]int, 0, n2q)
	usedb := make([]bool, logical.NumQubits)
	for i, op := range logical.Ops {
		if op.Kind.IsTwoQubit() {
			p.pairAt[i] = len(p.pairs)
			p.pairs = append(p.pairs, [2]int{op.Qubits[0], op.Qubits[1]})
		}
		if op.Kind == circuit.Barrier {
			continue
		}
		for _, q := range op.Qubits {
			usedb[q] = true
		}
	}
	for q, u := range usedb {
		if u {
			p.used = append(p.used, q)
		}
	}
	return p
}

// inverse returns the routeProg of the inverse of the program's unitary
// part, building it on first use (concurrency-safe: parallel seed routing
// shares one prog). Nil when the circuit has no invertible form.
func (p *routeProg) inverse() *routeProg {
	p.invOnce.Do(func() {
		if inv, err := p.src.UnitaryPart().Inverse(); err == nil {
			p.inv = progOf(inv)
		}
	})
	return p.inv
}

// coupled reports whether physical qubits a and b share a coupling-graph
// edge. cxCost is finite exactly on edges (costOf caps at 50), making this
// a dense-array lookup on the router's hottest predicate.
func (c *Compiler) coupled(a, b int) bool {
	return !math.IsInf(c.cxCost[a][b], 1)
}

// zeroSwap reports whether every two-qubit gate is already coupled under
// the layout, i.e. routing from it inserts no SWAPs at all (embedded
// placements). Both routers behave identically there.
func (c *Compiler) zeroSwap(prog *routeProg, layout []int) bool {
	for _, pr := range prog.pairs {
		if !c.coupled(layout[pr[0]], layout[pr[1]]) {
			return false
		}
	}
	return true
}

// swapRec is one recorded routing decision: insert SWAP(u, v) immediately
// before emitting op. The log fully determines the routed circuit, so
// materialization is a decision-free replay.
type swapRec struct {
	op   int
	u, v int
}

// passResult summarizes a dry routing pass: the final layout it reaches,
// its SWAP log, and the ESP of the circuit it would build.
type passResult struct {
	final []int
	rec   []swapRec
	esp   float64
}

func (r passResult) swaps() int { return len(r.rec) }

// betterPass reports whether a strictly improves on b: higher ESP by a
// relative bbEps margin, or (within the margin) fewer SWAPs. The margin
// keeps the choice deterministic under float rounding; preferring fewer
// swaps on an ESP tie shortens the executable at no reliability cost.
func betterPass(a, b passResult) bool {
	if a.esp > b.esp*(1+bbEps) {
		return true
	}
	return a.esp >= b.esp*(1-bbEps) && a.swaps() < b.swaps()
}

// route inserts SWAPs so every two-qubit gate acts on coupled qubits. The
// given layout is treated as a seed: the bidirectional pass may converge
// to a different (better) initial layout, and the executable's
// InitialLayout reports whichever layout was actually used. Callers that
// must pin the initial layout use routePinned instead.
func (c *Compiler) route(logical *circuit.Circuit, layout []int) (*Executable, error) {
	return c.routeFrom(progOf(logical), layout)
}

// routeFrom is route over a preprocessed program, letting sweeps that
// route the same program from many layouts share the routeProg (and its
// lazily-built inverse).
func (c *Compiler) routeFrom(prog *routeProg, layout []int) (*Executable, error) {
	bestLayout, best, err := c.routeDry(prog, layout)
	if err != nil {
		return nil, err
	}
	return c.replay(prog, bestLayout, best), nil
}

// routeDry is the route() orchestration without materialization: it
// dry-runs the greedy baseline, the SABRE lookahead pass and the
// bidirectional converge iteration, and returns the winning initial
// layout with its pass result. Callers that may discard the result (the
// alternative-placement sweep keeps at most k of its outputs) replay the
// log only for the survivors.
func (c *Compiler) routeDry(prog *routeProg, layout []int) ([]int, passResult, error) {
	if c.zeroSwap(prog, layout) {
		res, err := c.greedyPass(prog, layout)
		if err != nil {
			return nil, passResult{}, err
		}
		return layout, res, nil
	}
	grd, gerr := c.greedyPass(prog, layout)
	sab, serr := c.sabrePass(prog, layout)
	if gerr != nil && serr != nil {
		return nil, passResult{}, gerr
	}
	// Preference order on ties: greedy (baseline continuity), then the
	// pinned SABRE pass, then the bidirectional layout.
	bestLayout, best := layout, grd
	if gerr != nil || (serr == nil && betterPass(sab, grd)) {
		best = sab
	}
	if serr == nil {
		if improved, res, ok := c.converge(prog, layout, sab); ok && !sameInts(improved, layout) && betterPass(res, best) {
			bestLayout, best = improved, res
		}
	}
	return bestLayout, best, nil
}

// altPlacement is a routed-but-unmaterialized placement: the winning dry
// pass plus everything ensemble selection needs (ESP, initial layout,
// used-qubit set). The circuit is only built — by replaying the SWAP log —
// for the placements that survive selection.
type altPlacement struct {
	c      *Compiler
	prog   *routeProg
	layout []int
	res    passResult
}

func (a *altPlacement) exe() *Executable { return a.c.replay(a.prog, a.layout, a.res) }

// usedMask is the physical-qubit set of the circuit replay would build,
// derived from the dry pass alone: the initial positions of every logical
// qubit the program touches, plus every recorded SWAP endpoint. Any qubit
// an emitted op lands on is either an operand's initial position or was
// reached through a recorded SWAP; conversely every initial position and
// SWAP endpoint appears in some emitted op. So the set equals UsedQubits()
// of the materialized circuit.
func (a *altPlacement) usedMask(devN int) qmask {
	_ = devN // width is fixed by the qmask type; kept for call-site symmetry
	var set qmask
	for _, q := range a.prog.used {
		set.Add(a.layout[q])
	}
	for _, r := range a.res.rec {
		set.Add(r.u)
		set.Add(r.v)
	}
	return set
}

// routePinned routes from exactly the given initial layout: the SABRE
// lookahead pass and the legacy greedy walk are both dry-run, and the
// higher-ESP routing is materialized (greedy on ties, keeping continuity
// with the frozen baseline). The result's InitialLayout always equals
// layout — this is the CompileWithLayout contract.
func (c *Compiler) routePinned(logical *circuit.Circuit, layout []int) (*Executable, error) {
	prog := progOf(logical)
	grd, gerr := c.greedyPass(prog, layout)
	sab, serr := c.sabrePass(prog, layout)
	switch {
	case gerr != nil && serr != nil:
		return nil, gerr
	case gerr != nil:
		return c.replay(prog, layout, sab), nil
	case serr != nil:
		return c.replay(prog, layout, grd), nil
	}
	if betterPass(sab, grd) {
		return c.replay(prog, layout, sab), nil
	}
	return c.replay(prog, layout, grd), nil
}

// routeGreedy materializes the frozen greedy-walk routing from the given
// layout; it is the baseline the SABRE router is benchmarked against
// (scripts/bench_router.sh).
func (c *Compiler) routeGreedy(logical *circuit.Circuit, layout []int) (*Executable, error) {
	prog := progOf(logical)
	res, err := c.greedyPass(prog, layout)
	if err != nil {
		return nil, err
	}
	return c.replay(prog, layout, res), nil
}

// routeFixed materializes one SABRE forward pass from the given layout.
func (c *Compiler) routeFixed(logical *circuit.Circuit, layout []int) (*Executable, error) {
	prog := progOf(logical)
	res, err := c.sabrePass(prog, layout)
	if err != nil {
		return nil, err
	}
	return c.replay(prog, layout, res), nil
}

// replay materializes a dry pass result: it rebuilds the physical circuit
// by applying the recorded SWAP log, with no routing decisions left to
// make. The replayed ESP is the same product over the same factors in the
// same order as the dry pass (and as device.ESP on the result).
func (c *Compiler) replay(prog *routeProg, layout []int, res passResult) *Executable {
	phys := circuit.New(c.devN, prog.nclb)
	phys.Name = prog.name
	phys.Ops = make([]circuit.Op, 0, len(prog.ops)+len(res.rec))
	st := c.newPassState(layout, phys)
	nq := 2 * len(res.rec)
	for _, op := range prog.ops {
		nq += len(op.Qubits)
	}
	st.qbuf = make([]int, nq)
	k := 0
	for i, op := range prog.ops {
		for k < len(res.rec) && res.rec[k].op == i {
			st.swap(i, res.rec[k].u, res.rec[k].v)
			k++
		}
		switch {
		case op.Kind == circuit.Barrier:
			st.barrier(op)
		case op.Kind == circuit.Measure:
			st.measure(op)
		case op.Kind.IsTwoQubit():
			st.gate2(op)
		default:
			// Validated by the dry pass that produced the log.
			st.gate1(op, i)
		}
	}
	return &Executable{
		Circuit:       phys,
		InitialLayout: append([]int(nil), layout...),
		FinalLayout:   st.l2p,
		ESP:           st.esp,
		Swaps:         st.swaps,
	}
}

// converge is the bidirectional layout iteration: forward pass from the
// current layout, backward pass (the inverse of the unitary part) from the
// forward pass's final layout, and the backward final layout becomes the
// next candidate initial layout. A fixed point means routing the program
// from that layout deposits the qubits exactly where routing it in
// reverse wants to start — the SABRE convergence criterion. fwd is the
// already-computed forward pass from seed, so iteration zero reuses it.
// Returns the converged (or last) layout with its forward-pass result; ok
// is false when the circuit has no usable inverse or a pass fails, in
// which case the caller keeps the seed.
func (c *Compiler) converge(prog *routeProg, seed []int, fwd passResult) ([]int, passResult, bool) {
	invProg := prog.inverse()
	if invProg == nil {
		return nil, passResult{}, false
	}
	cur, curRes := seed, fwd
	for iter := 0; iter < sabreMaxIters; iter++ {
		back, err := c.sabrePass(invProg, curRes.final)
		if err != nil {
			return nil, passResult{}, false
		}
		if sameInts(back.final, cur) {
			return cur, curRes, true
		}
		res, err := c.sabrePass(prog, back.final)
		if err != nil {
			return nil, passResult{}, false
		}
		if !betterPass(res, curRes) {
			// The refined layout routes no better: an oscillating seed.
			// Keep the best layout seen instead of iterating to the cap.
			return cur, curRes, true
		}
		cur, curRes = back.final, res
	}
	return cur, curRes, true
}

// sabrePass dry-routes the program once from the given initial layout with
// the lookahead heuristic, returning the final layout, the SWAP log, and
// the ESP of the circuit the log would build.
func (c *Compiler) sabrePass(prog *routeProg, layout []int) (passResult, error) {
	st := c.newPassState(layout, nil)
	for i, op := range prog.ops {
		switch {
		case op.Kind == circuit.Barrier:
		case op.Kind == circuit.Measure:
			st.measure(op)
		case op.Kind.IsTwoQubit():
			la, lb := op.Qubits[0], op.Qubits[1]
			stall := 0
			for guard := 0; !c.coupled(st.l2p[la], st.l2p[lb]); guard++ {
				pa, pb := st.l2p[la], st.l2p[lb]
				if c.pathNext[pa][pb] == -1 {
					return passResult{}, fmt.Errorf("mapper: op %d: no route between physical qubits %d and %d", i, pa, pb)
				}
				if guard > 6*c.devN {
					// Unreachable with the stall guard below; a hard stop
					// beats an infinite loop if the heuristic ever cycles.
					return passResult{}, fmt.Errorf("mapper: op %d: router failed to converge", i)
				}
				var su, sv int
				if stall >= stallLimit {
					// Force progress: step operand 0 along the cheapest
					// path, which strictly reduces the front path cost.
					su, sv = pa, c.pathNext[pa][pb]
				} else {
					su, sv = c.bestSwap(st, prog.pairs, prog.pairAt[i], pa, pb)
				}
				before := c.pathCost[pa][pb]
				st.swap(i, su, sv)
				if c.pathCost[st.l2p[la]][st.l2p[lb]] < before {
					stall = 0
				} else {
					stall++
				}
			}
			st.gate2(op)
		default:
			if err := st.gate1(op, i); err != nil {
				return passResult{}, err
			}
		}
	}
	return passResult{final: st.l2p, rec: st.rec, esp: st.esp}, nil
}

// greedyPass is the frozen pre-SABRE router: walk operand 0 of each
// uncoupled two-qubit gate along the reliability-cheapest path until the
// pair is coupled. Kept as the baseline the lookahead router must beat,
// and as the router for zero-swap layouts (where the two are identical).
// The walk steps the pathNext chain in place — the same hop sequence
// pathBetween materializes — so it allocates nothing per gate.
func (c *Compiler) greedyPass(prog *routeProg, layout []int) (passResult, error) {
	st := c.newPassState(layout, nil)
	for i, op := range prog.ops {
		switch {
		case op.Kind == circuit.Barrier:
		case op.Kind == circuit.Measure:
			st.measure(op)
		case op.Kind.IsTwoQubit():
			pa, pb := st.l2p[op.Qubits[0]], st.l2p[op.Qubits[1]]
			// A gate on coupled qubits always executes directly: a detour
			// would cost three CX per hop against one direct CX, so even a
			// noisy direct link wins.
			if !c.coupled(pa, pb) {
				if c.pathNext[pa][pb] == -1 {
					return passResult{}, fmt.Errorf("mapper: op %d: no route between physical qubits %d and %d", i, pa, pb)
				}
				for u := pa; ; {
					v := c.pathNext[u][pb]
					if v == pb {
						break
					}
					st.swap(i, u, v)
					u = v
				}
			}
			st.gate2(op)
		default:
			if err := st.gate1(op, i); err != nil {
				return passResult{}, err
			}
		}
	}
	return passResult{final: st.l2p, rec: st.rec, esp: st.esp}, nil
}

// passState is the shared mutable state of one routing pass: the evolving
// layout, the incrementally scored ESP, the SWAP log, and (during replay)
// the physical circuit under construction. The ESP factors and their
// multiplication order replicate device.ESP on the materialized circuit
// exactly, so dry passes are directly comparable to (and interchangeable
// with) scored executables.
type passState struct {
	c     *Compiler
	l2p   []int
	p2l   []int
	rec   []swapRec
	phys  *circuit.Circuit
	qbuf  []int    // replay-only arena for the emitted ops' Qubits slices
	touch []uint16 // bestSwap scratch: per-qubit window bitmask, kept zeroed
	swaps int
	esp   float64
}

// takeQ carves an n-slot Qubits slice out of the replay arena (sized
// exactly upfront; the fallback allocation never triggers in practice).
func (st *passState) takeQ(n int) []int {
	if len(st.qbuf) < n {
		return make([]int, n)
	}
	s := st.qbuf[:n:n]
	st.qbuf = st.qbuf[n:]
	return s
}

func (c *Compiler) newPassState(layout []int, phys *circuit.Circuit) *passState {
	st := &passState{c: c, l2p: append([]int(nil), layout...), phys: phys, esp: 1}
	st.p2l = make([]int, c.devN)
	for i := range st.p2l {
		st.p2l[i] = -1
	}
	for lq, p := range st.l2p {
		st.p2l[p] = lq
	}
	return st
}

// swap applies SWAP(a, b) before op i: it updates the layout, scores the
// three CX the SWAP decomposes into, and either logs the decision (dry
// pass) or emits the gate (replay).
func (st *passState) swap(i, a, b int) {
	if st.phys != nil {
		qs := st.takeQ(2)
		qs[0], qs[1] = a, b
		st.phys.Ops = append(st.phys.Ops, circuit.Op{Kind: circuit.SWAP, Qubits: qs, Cbit: -1})
	} else {
		if st.rec == nil {
			st.rec = make([]swapRec, 0, 16)
		}
		st.rec = append(st.rec, swapRec{op: i, u: a, v: b})
	}
	la, lb := st.p2l[a], st.p2l[b]
	st.p2l[a], st.p2l[b] = lb, la
	if la >= 0 {
		st.l2p[la] = b
	}
	if lb >= 0 {
		st.l2p[lb] = a
	}
	s := st.c.cxSucc[a][b]
	st.esp *= s * s * s
	st.swaps++
}

func (st *passState) barrier(op circuit.Op) {
	if st.phys == nil {
		return
	}
	qs := st.takeQ(len(op.Qubits))
	for j, q := range op.Qubits {
		qs[j] = st.l2p[q]
	}
	st.phys.Ops = append(st.phys.Ops, circuit.Op{Kind: circuit.Barrier, Qubits: qs, Cbit: -1})
}

func (st *passState) measure(op circuit.Op) {
	st.esp *= st.c.measSucc[st.l2p[op.Qubits[0]]]
	if st.phys != nil {
		qs := st.takeQ(1)
		qs[0] = st.l2p[op.Qubits[0]]
		st.phys.Ops = append(st.phys.Ops, circuit.Op{Kind: circuit.Measure, Qubits: qs, Cbit: op.Cbit})
	}
}

// gate2 appends a (now coupled) two-qubit gate.
func (st *passState) gate2(op circuit.Op) {
	pa, pb := st.l2p[op.Qubits[0]], st.l2p[op.Qubits[1]]
	s := st.c.cxSucc[pa][pb]
	if op.Kind == circuit.SWAP {
		st.esp *= s * s * s
	} else {
		st.esp *= s
	}
	if st.phys != nil {
		nop := op // Params shared with the logical op; Remap/Clone copy on write paths
		qs := st.takeQ(2)
		qs[0], qs[1] = pa, pb
		nop.Qubits = qs
		st.phys.Ops = append(st.phys.Ops, nop)
	}
}

// gate1 appends a single-qubit gate. Any future multi-qubit kind that
// slips past IsTwoQubit must fail loudly here: the old remap-operand-0
// fallback would silently corrupt it.
func (st *passState) gate1(op circuit.Op, i int) error {
	if len(op.Qubits) != 1 {
		return fmt.Errorf("mapper: op %d: unroutable op kind %v with %d operands", i, op.Kind, len(op.Qubits))
	}
	if op.Kind != circuit.I {
		st.esp *= st.c.sqSucc[st.l2p[op.Qubits[0]]]
	}
	if st.phys != nil {
		nop := op // Params shared with the logical op
		qs := st.takeQ(1)
		qs[0] = st.l2p[op.Qubits[0]]
		nop.Qubits = qs
		st.phys.Ops = append(st.phys.Ops, nop)
	}
	return nil
}

// bestSwap scores every SWAP on a link adjacent to either operand of the
// front gate and returns the cheapest. The cost of swapping (u, v) is the
// swap's own error cost (three CX on that link) plus the post-swap
// interaction cost of the front gate plus a decaying window over upcoming
// two-qubit gates. Candidates are visited in fixed order and a challenger
// must win by a relative margin, so ties always resolve to the earliest
// candidate.
func (c *Compiler) bestSwap(st *passState, pairs [][2]int, gi, pa, pb int) (int, int) {
	l2p := st.l2p
	// Fall back to the cheapest-path step if every candidate scores +Inf
	// (possible when a window gate spans disconnected components).
	bestU, bestV := pa, c.pathNext[pa][pb]
	bestCost := math.Inf(1)
	end := gi + 1 + lookaheadWindow
	if end > len(pairs) {
		end = len(pairs)
	}
	// Precompute the window once per swap decision: each candidate swap
	// touches only two physical qubits, so per-candidate scoring adjusts
	// the gates whose operands moved instead of rescoring the whole window.
	// touch[q] is the bitmask of window entries with an operand on physical
	// qubit q (pass-local scratch; only the entries set here are reset
	// before returning). Gates whose operands span disconnected components
	// score +Inf under every candidate (a swap never crosses components)
	// and are dropped.
	if st.touch == nil {
		st.touch = make([]uint16, c.devN)
	}
	touch := st.touch
	var (
		wq     [lookaheadWindow][2]int
		wterm  [lookaheadWindow]float64
		wgt    [lookaheadWindow]float64
		nw     int
		winSum float64
	)
	w := lookaheadWeight
	for j := gi + 1; j < end; j++ {
		qa, qb := l2p[pairs[j][0]], l2p[pairs[j][1]]
		if t := c.iCost[qa][qb]; !math.IsInf(t, 1) {
			wq[nw] = [2]int{qa, qb}
			wterm[nw] = t
			wgt[nw] = w
			winSum += w * t
			touch[qa] |= 1 << uint(nw)
			touch[qb] |= 1 << uint(nw)
			nw++
		}
		w *= lookaheadDecay
	}
	consider := func(u, v int) {
		fa, fb := swapPos(pa, u, v), swapPos(pb, u, v)
		cost := 3*c.cxCost[u][v] + c.iCost[fa][fb] + winSum
		// Adjusted entries are visited in ascending window index, matching
		// the order the window was summed in, so the float arithmetic is
		// bit-identical however the mask is populated.
		for m := touch[u] | touch[v]; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(m)
			qa, qb := wq[i][0], wq[i][1]
			cost += wgt[i] * (c.iCost[swapPos(qa, u, v)][swapPos(qb, u, v)] - wterm[i])
		}
		if cost+bbEps*(1+cost) < bestCost {
			bestCost, bestU, bestV = cost, u, v
		}
	}
	for _, v := range c.adj[pa] {
		consider(pa, v)
	}
	for _, v := range c.adj[pb] {
		consider(pb, v)
	}
	for i := 0; i < nw; i++ {
		touch[wq[i][0]], touch[wq[i][1]] = 0, 0
	}
	return bestU, bestV
}

// swapPos is p's position after swapping physical qubits u and v.
func swapPos(p, u, v int) int {
	switch p {
	case u:
		return v
	case v:
		return u
	}
	return p
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
