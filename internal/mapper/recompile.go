package mapper

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/memo"
	"edm/internal/pool"
)

// recompile.go is the drift-aware incremental recompilation path
// (DESIGN.md §11). A Tracking compiler follows a device across
// calibration cycles; on each cycle it diffs the new calibration against
// the old one (device.Diff) and upgrades every cached candidate pool
// through a fallback ladder instead of rebuilding it:
//
//	reused    — candidate footprint disjoint from the any-bit diff: even
//	            the ESP is bit-identical, zero work;
//	rescored  — footprint touched only within tolerance (or an exact
//	            structural check passed): routing and layout kept, ESP
//	            recomputed by the O(gates) incremental scorer;
//	rerouted  — footprint moved beyond tolerance or a re-route check
//	            found a different routing: placed/routed from scratch;
//	full      — global calibration change, tol = 0 with any change, or a
//	            base-structure check failure: the whole pool rebuilds.
//
// Routing is globally calibration-dependent — the SABRE pass's
// reliability weights read path costs through arbitrary qubits — so
// footprint locality alone cannot guarantee a candidate's routing is
// still what a fresh compile would produce. RecompileChecked therefore
// re-verifies every calibration-dependent decision with cheap dry-run
// re-route checks (no materialization), which makes the upgraded pool
// provably bit-identical to a full rebuild; RecompileFast trusts the
// tolerance and skips the checks for structurally-untouched candidates.

// RecompileMode selects how aggressively Tracking reuses cached pools.
type RecompileMode int

const (
	// RecompileChecked re-verifies every calibration-dependent routing
	// decision (placement seed, base routing, alternative-placement
	// sweep) with dry-run re-route checks, so the incremental pool is
	// bit-identical to a full rebuild. The default.
	RecompileChecked RecompileMode = iota
	// RecompileFast trusts the footprint intersection: candidates whose
	// qubits and links moved only within tolerance keep their routing
	// unverified, and the alternative-placement seed sweep is not re-run.
	// Faster, approximate — the drifting campaign's cross-check mode
	// reports the routed-ESP delta it costs.
	RecompileFast
	// RecompileOff disables reuse: every generation rebuilds every pool
	// from scratch. The full-recompilation baseline benchmarks compare
	// against.
	RecompileOff
)

// RecompileStats counts incremental-recompilation outcomes, per candidate
// (Reused/Rescored/Rerouted/Dropped partition every candidate processed)
// and per pool (Pools/FullRebuilds).
type RecompileStats struct {
	Pools        uint64 // pool upgrades attempted
	FullRebuilds uint64 // upgrades that fell back to a full rebuild
	Reused       uint64 // footprint untouched: ESP reused bit-identically
	Rescored     uint64 // structure kept, ESP recomputed incrementally
	Rerouted     uint64 // re-placed/re-routed from scratch
	CheckFailed  uint64 // re-route checks that found changed routing
	Dropped      uint64 // candidates discarded by full rebuilds
}

// Processed is the number of previous-pool candidates accounted for.
func (s RecompileStats) Processed() uint64 {
	return s.Reused + s.Rescored + s.Rerouted + s.Dropped
}

// Survival is the fraction of processed candidates that kept their
// structure (reused or re-scored); 1 when nothing was processed.
func (s RecompileStats) Survival() float64 {
	p := s.Processed()
	if p == 0 {
		return 1
	}
	return float64(s.Reused+s.Rescored) / float64(p)
}

// Sub returns the counter deltas since an earlier snapshot.
func (s RecompileStats) Sub(prev RecompileStats) RecompileStats {
	return RecompileStats{
		Pools:        s.Pools - prev.Pools,
		FullRebuilds: s.FullRebuilds - prev.FullRebuilds,
		Reused:       s.Reused - prev.Reused,
		Rescored:     s.Rescored - prev.Rescored,
		Rerouted:     s.Rerouted - prev.Rerouted,
		CheckFailed:  s.CheckFailed - prev.CheckFailed,
		Dropped:      s.Dropped - prev.Dropped,
	}
}

// recompileCtr is the atomic counterpart of RecompileStats.
type recompileCtr struct {
	pools, fullRebuilds, reused, rescored, rerouted, checkFailed, dropped atomic.Uint64
}

func (c *recompileCtr) add(s RecompileStats) {
	c.pools.Add(s.Pools)
	c.fullRebuilds.Add(s.FullRebuilds)
	c.reused.Add(s.Reused)
	c.rescored.Add(s.Rescored)
	c.rerouted.Add(s.Rerouted)
	c.checkFailed.Add(s.CheckFailed)
	c.dropped.Add(s.Dropped)
}

func (c *recompileCtr) snapshot() RecompileStats {
	return RecompileStats{
		Pools:        c.pools.Load(),
		FullRebuilds: c.fullRebuilds.Load(),
		Reused:       c.reused.Load(),
		Rescored:     c.rescored.Load(),
		Rerouted:     c.rerouted.Load(),
		CheckFailed:  c.checkFailed.Load(),
		Dropped:      c.dropped.Load(),
	}
}

// globalRecompileCtr aggregates across every Tracking instance for the
// cmd/edm -cachestats report.
var globalRecompileCtr recompileCtr

// RecompileStatsSnapshot returns the process-wide incremental
// recompilation counters, aggregated across every Tracking compiler.
func RecompileStatsSnapshot() RecompileStats { return globalRecompileCtr.snapshot() }

// trackHist bounds how many past calibrations a Tracking retains for
// diffing. A cached pool last touched more than trackHist generations
// ago has no retained calibration to diff against and rebuilds fully.
const trackHist = 32

type trackCal struct {
	gen uint64
	cal *device.Calibration
}

// Tracking is a compiler handle that follows a drifting device across
// calibration cycles. Between cycles, Advance diffs the new calibration
// against the retained history; TopK then serves every k from
// generation-tagged candidate pools that upgrade incrementally through
// recompilePool instead of rebuilding. Pools live in a Tracking-private
// cache (generation tagging is per-Tracking state), but the heavy
// compiler tables are shared through CachedCompiler as usual.
//
// Within a generation all methods are safe for concurrent use; Advance
// must not be called concurrently with TopK or CrossCheck (the drifting
// campaign serializes cycles, which is the natural shape of tracking a
// device through calibration windows).
//
// For k = 1, Tracking serves the head of the recompiled pool rather than
// running the branch-and-bound single-best path. Both are the same
// argmax under the same deterministic tie-breaks — the B&B path prunes
// strictly, and member 0 of selectDiverse is always the pool head
// (pinned by TestTopKPrefixStability's member-0 k-invariance) — so the
// result is bit-identical; the initial generation pays the pool build
// even for k = 1 and amortizes it across the campaign's cycles and ks.
type Tracking struct {
	mode  RecompileMode
	cur   *Compiler
	gen   uint64
	tol   float64
	hist  []trackCal
	pools *memo.Cache[*poolEntry]
	ctr   recompileCtr
}

// NewTracking starts tracking at an initial calibration. The first
// generation's pools are plain builds; reuse begins with the first
// Advance.
func NewTracking(cal *device.Calibration, mode RecompileMode) *Tracking {
	return &Tracking{
		mode:  mode,
		cur:   CachedCompiler(cal),
		hist:  []trackCal{{gen: 0, cal: cal}},
		pools: memo.New[*poolEntry](ensembleCacheCap),
	}
}

// Compiler returns the compiler for the current generation's calibration.
func (t *Tracking) Compiler() *Compiler { return t.cur }

// Generation returns the current calibration generation (0-based,
// incremented by Advance).
func (t *Tracking) Generation() uint64 { return t.gen }

// Stats snapshots this Tracking's recompilation counters.
func (t *Tracking) Stats() RecompileStats { return t.ctr.snapshot() }

// Advance moves the tracked device to a new calibration under the given
// relative tolerance and returns the diff against the previous
// generation. Cached pools are not touched eagerly; each upgrades lazily
// (against the diff from whichever generation it was last built at) on
// its next TopK.
func (t *Tracking) Advance(cal *device.Calibration, tol float64) device.CalDiff {
	d := device.Diff(t.cur.Calibration(), cal, tol)
	t.cur = CachedCompiler(cal)
	t.gen++
	t.tol = tol
	t.hist = append(t.hist, trackCal{gen: t.gen, cal: cal})
	if len(t.hist) > trackHist {
		t.hist = t.hist[len(t.hist)-trackHist:]
	}
	return d
}

// diffFor returns the diff from the calibration at generation prevGen to
// the current one. When prevGen has aged out of the retained history the
// diff is reported Global, forcing a full rebuild.
func (t *Tracking) diffFor(prevGen uint64) device.CalDiff {
	for _, h := range t.hist {
		if h.gen == prevGen {
			return device.Diff(h.cal, t.cur.Calibration(), t.tol)
		}
	}
	return device.CalDiff{Tol: t.tol, Global: true, Stats: device.DiffStats{Global: true}}
}

// TopK is mapper.Compiler.TopK through the tracked, incrementally
// recompiled pools. Results are bit-identical to
// CachedCompiler(cal).TopK for the current calibration when the mode is
// RecompileChecked (or RecompileOff).
func (t *Tracking) TopK(logical *circuit.Circuit, k int) ([]*Executable, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mapper: k must be positive")
	}
	pe := t.poolFor(logical)
	if pe.err != nil {
		return nil, pe.err
	}
	return pe.topK(k)
}

// poolFor serves the circuit's pool at the current generation, building
// it fresh on first sight and upgrading it through recompilePool when a
// previous generation's pool is cached.
func (t *Tracking) poolFor(logical *circuit.Circuit) *poolEntry {
	c, gen := t.cur, t.gen
	return t.pools.GetGen(circuitKey(logical), gen,
		func() *poolEntry {
			pe := c.buildPool(logical)
			pe.gen = gen
			return pe
		},
		func(prev *poolEntry) *poolEntry {
			pe := c.recompilePool(logical, prev, t.diffFor(prev.gen), t.mode, &t.ctr)
			pe.gen = gen
			return pe
		},
	)
}

// CrossCheck rebuilds the circuit's pool from scratch at the current
// calibration and compares it against the tracked (incrementally
// recompiled) pool. identical means the same candidates in the same
// order with bit-identical ESPs, layouts and routing — the exactness
// RecompileChecked guarantees. maxESPDelta is the largest |ESP
// difference| across candidates matched by initial layout (plus 1 for
// any unmatched candidate's ESP, so structural divergence always
// registers): the routed-ESP gap RecompileFast trades for speed.
func (t *Tracking) CrossCheck(logical *circuit.Circuit) (identical bool, maxESPDelta float64, err error) {
	pe := t.poolFor(logical)
	fresh := t.cur.buildPool(logical)
	if pe.err != nil || fresh.err != nil {
		same := pe.err != nil && fresh.err != nil && pe.err.Error() == fresh.err.Error()
		e := pe.err
		if e == nil {
			e = fresh.err
		}
		return same, 0, e
	}
	identical = len(pe.cpool) == len(fresh.cpool)
	if identical {
		for i := range pe.cpool {
			if !candEqual(pe.cpool[i], fresh.cpool[i]) {
				identical = false
				break
			}
		}
	}
	if identical {
		return true, 0, nil
	}
	freshESP := make(map[uint64]float64, len(fresh.cpool))
	for _, cd := range fresh.cpool {
		freshESP[cd.lkey] = cd.esp
	}
	for _, cd := range pe.cpool {
		if esp, ok := freshESP[cd.lkey]; ok {
			maxESPDelta = math.Max(maxESPDelta, math.Abs(cd.esp-esp))
			delete(freshESP, cd.lkey)
		} else {
			maxESPDelta = math.Max(maxESPDelta, 1+cd.esp)
		}
	}
	for _, esp := range freshESP {
		maxESPDelta = math.Max(maxESPDelta, 1+esp)
	}
	return false, maxESPDelta, nil
}

// candEqual reports bit-identity of two pool candidates: same ESP bits,
// same initial layout, and the same routing decisions.
func candEqual(a, b *candidate) bool {
	if math.Float64bits(a.esp) != math.Float64bits(b.esp) || !sameInts(a.layout, b.layout) {
		return false
	}
	if (a.alt == nil) != (b.alt == nil) {
		return false
	}
	if a.alt != nil {
		return sameInts(a.alt.res.final, b.alt.res.final) && sameRecs(a.alt.res.rec, b.alt.res.rec)
	}
	return sameInts(a.mono, b.mono)
}

func sameRecs(a, b []swapRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scoreReplay recomputes the ESP of a dry-routed program under the
// receiver's calibration by replaying the ops and SWAP log through a dry
// pass state — the same factors in the same order as replay and
// device.ESP, without building a circuit.
func (c *Compiler) scoreReplay(prog *routeProg, layout []int, rec []swapRec) float64 {
	st := c.newPassState(layout, nil)
	k := 0
	for i, op := range prog.ops {
		for k < len(rec) && rec[k].op == i {
			st.swap(i, rec[k].u, rec[k].v)
			k++
		}
		switch {
		case op.Kind == circuit.Barrier:
		case op.Kind == circuit.Measure:
			st.measure(op)
		case op.Kind.IsTwoQubit():
			st.gate2(op)
		default:
			// Validated by the dry pass that produced the log.
			_ = st.gate1(op, i)
		}
	}
	return st.esp
}

// poolGroups indexes the immutable structure of a pool lineage's raw
// candidate list: dense group ids for the skey (qubit-set) and lkey
// (layout) equivalence classes, keyed by raw position. Candidate sets and
// layouts never change across generations — only ESPs move — so the
// index is computed once, on the lineage's first incremental upgrade, and
// shared by every later generation, turning the assembly's hash-map
// passes into dense boolean passes.
type poolGroups struct {
	setGid   []int32          // raw index -> set-group id
	layGid   []int32          // raw index -> layout-group id
	layByKey map[uint64]int32 // mono lkey -> layout-group id
	nSet     int
	nLay     int
	// layUnique reports that every mono layout is distinct. Then the
	// (esp desc, layout asc) comparator is a strict total order over the
	// raw list, so its sort has a unique result regardless of algorithm
	// or starting permutation — the upgrade can start from the previous
	// generation's nearly-sorted order and use an adaptive unstable sort
	// instead of a stable sort from enumeration order.
	layUnique bool
}

func computeGroups(raw []*candidate) *poolGroups {
	g := &poolGroups{
		setGid:    make([]int32, len(raw)),
		layGid:    make([]int32, len(raw)),
		layByKey:  make(map[uint64]int32, len(raw)),
		layUnique: true,
	}
	setIds := make(map[uint64]int32, len(raw))
	for i, cd := range raw {
		id, ok := setIds[cd.skey]
		if !ok {
			id = int32(len(setIds))
			setIds[cd.skey] = id
		}
		g.setGid[i] = id
		lid, ok := g.layByKey[cd.lkey]
		if !ok {
			lid = int32(len(g.layByKey))
			g.layByKey[cd.lkey] = lid
		} else {
			g.layUnique = false
		}
		g.layGid[i] = lid
	}
	g.nSet, g.nLay = len(setIds), len(g.layByKey)
	return g
}

// candLess is sortCandidates' comparator: ESP descending, then initial
// layout ascending. Strict (a total order) whenever the layouts involved
// are pairwise distinct.
func candLess(a, b *candidate) bool {
	if a.esp != b.esp {
		return a.esp > b.esp
	}
	return lexLess(a.layout, b.layout)
}

// touchPred builds the footprint-intersection predicate for a diff
// granularity: a candidate is touched if its physical qubit set contains
// a changed qubit, or both endpoints of a changed edge (the only way an
// edge's rates enter its ESP or routing). The edge test is conservative
// — a set containing both endpoints might never run a gate across that
// edge — so it can over-rescore but never under-rescore.
func touchPred(edges []device.Edge, qm, em qmask) func(set qmask) bool {
	var hit []device.Edge
	for i, e := range edges {
		if em.Has(i) {
			hit = append(hit, e)
		}
	}
	return func(set qmask) bool {
		if set.Intersects(qm) {
			return true
		}
		for _, e := range hit {
			if set.Has(e.A) && set.Has(e.B) {
				return true
			}
		}
		return false
	}
}

// recompilePool upgrades a previous generation's pool entry to the
// receiver's calibration under the given diff, counting outcomes into
// ctr and the process-wide aggregate.
//
// Exactness (RecompileChecked): the final pool is a pure function of
// (the mono candidate multiset in enumeration order, the alternative
// placements in sweep order, every candidate's ESP). The mono multiset
// depends only on the base executable's structure — usage graph and op
// list — which the base re-route check pins (same placement seed, same
// winning layout, same SWAP log ⇒ same circuit); the alternative sweep
// is re-run outright (it *is* the alt re-route check); and every ESP is
// either recomputed by the incremental scorer or reused only when the
// candidate's footprint is untouched at any-bit granularity, where
// score() provably reads only unchanged table entries. Replaying
// buildPool's exact assembly pipeline (sort, split-by-set, append alts,
// dedupe-by-layout, sort) on those inputs therefore reproduces a full
// rebuild bit for bit. Any check failure falls back to the full path.
//
// Tolerance semantics: the beyond-tol masks gate only *structural* reuse
// (placement and routing). ESPs are never trusted across sub-tolerance
// moves — a touched candidate is always re-scored — so tolerance trades
// routing optimality, not scoring accuracy.
func (c *Compiler) recompilePool(logical *circuit.Circuit, prev *poolEntry, d device.CalDiff, mode RecompileMode, ctr *recompileCtr) *poolEntry {
	var tally RecompileStats
	tally.Pools = 1
	defer func() {
		ctr.add(tally)
		globalRecompileCtr.add(tally)
	}()

	full := func() *poolEntry {
		tally.FullRebuilds++
		tally.Dropped += uint64(len(prev.cpool))
		return c.buildPool(logical)
	}
	if mode == RecompileOff || prev.err != nil || prev.rp == nil || d.Full() {
		return full()
	}

	edges := c.cal.Topo.Edges()
	touchedAny := touchPred(edges, d.QubitsAny, d.EdgesAny)
	touchedTol := touchPred(edges, d.Qubits, d.Edges)
	prog := prev.prog

	// Base-structure check. The mono candidate multiset is a pure function
	// of the base executable, so the base must be re-verified (checked
	// mode) or at least beyond-tol-untouched (fast mode) before any mono
	// candidate can be reused.
	var baseRes passResult
	if mode == RecompileChecked {
		seed, err := c.place(logical)
		if err != nil {
			return full()
		}
		if !sameInts(seed, prev.seed) {
			tally.CheckFailed++
			return full()
		}
		bl, res, err := c.routeDry(prog, seed)
		if err != nil {
			return full()
		}
		if !sameInts(bl, prev.baseLayout) || !sameRecs(res.rec, prev.baseRes.rec) {
			tally.CheckFailed++
			return full()
		}
		baseRes = res
	} else {
		var baseMask qmask
		for _, q := range prev.rp.used {
			baseMask.Add(q)
		}
		if touchedTol(baseMask) {
			bl, res, err := c.routeDry(prog, prev.seed)
			if err != nil {
				return full()
			}
			if !sameInts(bl, prev.baseLayout) || !sameRecs(res.rec, prev.baseRes.rec) {
				tally.CheckFailed++
				return full()
			}
			baseRes = res
		} else {
			baseRes = passResult{
				final: prev.baseRes.final,
				rec:   prev.baseRes.rec,
				esp:   c.scoreReplay(prog, prev.baseLayout, prev.baseRes.rec),
			}
		}
	}

	// Rebind the replacer to this compiler without re-running its setup:
	// the base structure is unchanged, so the usage graph, espOps, match
	// order and layout index all carry over. The enumeration-only fields
	// (search, opsAt, espSuffix) are left nil — a recompiled pool is never
	// enumerated again; its raw list upgrades the next generation too.
	prevBase := prev.rp.base
	base2 := &Executable{
		Circuit:       prevBase.Circuit,
		InitialLayout: prevBase.InitialLayout,
		FinalLayout:   prevBase.FinalLayout,
		ESP:           baseRes.esp,
		Swaps:         prevBase.Swaps,
	}
	rp2 := &replacer{
		c: c, base: base2,
		used: prev.rp.used, ops: prev.rp.ops,
		layoutIdx: prev.rp.layoutIdx, allUsed: prev.rp.allUsed,
	}

	// Mono candidates: shallow-copy each raw candidate into one slab
	// (layout, set and mono are immutable and shared), re-scoring exactly
	// the touched ones.
	raw := prev.raw
	slab := make([]candidate, len(raw))
	newRaw := make([]*candidate, len(raw))
	touched := make([]bool, len(raw))
	for i, cd := range raw {
		touched[i] = touchedAny(cd.set)
		if touched[i] {
			tally.Rescored++
		} else {
			tally.Reused++
		}
	}
	pool.Each(len(raw), func(i int) {
		slab[i] = *raw[i]
		if touched[i] {
			slab[i].esp = rp2.score(slab[i].mono)
		}
		newRaw[i] = &slab[i]
	})

	// Alternative placements.
	oldAlt := make(map[uint64]*candidate)
	for _, cd := range prev.cpool {
		if cd.alt != nil {
			oldAlt[cd.lkey] = cd
		}
	}
	var altCands, altSurvived []*candidate
	if mode == RecompileChecked {
		// Re-run the seed sweep — this is the alt re-route check. Alts that
		// come back with the same layout and SWAP log survived (their
		// executables can transfer); the rest were genuinely re-routed.
		alts2, _, err := c.alternativePlacements(prog)
		if err != nil {
			tally.FullRebuilds++
			tally.Dropped += uint64(len(prev.cpool))
			return &poolEntry{err: err}
		}
		altCands = make([]*candidate, len(alts2))
		altSurvived = make([]*candidate, len(alts2))
		for i, a := range alts2 {
			nc := candFromAlt(c.devN, a)
			altCands[i] = nc
			old := oldAlt[nc.lkey]
			if old != nil && sameInts(old.layout, nc.layout) &&
				sameInts(old.alt.res.final, a.res.final) && sameRecs(old.alt.res.rec, a.res.rec) {
				altSurvived[i] = old
				if touchedAny(nc.set) {
					tally.Rescored++
				} else {
					tally.Reused++
				}
			} else {
				tally.Rerouted++
				if old != nil {
					tally.CheckFailed++
				}
			}
		}
	} else {
		// Fast mode: keep the previous sweep's alts, re-routing only the
		// ones whose footprint moved beyond tolerance (from their own old
		// layout — the seed sweep is not re-run, which is part of the
		// approximation the cross-check mode measures).
		for _, old := range prev.cpool {
			if old.alt == nil {
				continue
			}
			if !touchedTol(old.set) {
				esp := old.esp
				if touchedAny(old.set) {
					esp = c.scoreReplay(prog, old.alt.layout, old.alt.res.rec)
					tally.Rescored++
				} else {
					tally.Reused++
				}
				a2 := &altPlacement{c: c, prog: prog, layout: old.alt.layout,
					res: passResult{final: old.alt.res.final, rec: old.alt.res.rec, esp: esp}}
				nc := candFromAlt(c.devN, a2)
				altCands = append(altCands, nc)
				altSurvived = append(altSurvived, old)
				continue
			}
			bl, res, err := c.routeDry(prog, old.alt.layout)
			if err != nil {
				return full()
			}
			tally.Rerouted++
			altCands = append(altCands, candFromAlt(c.devN, &altPlacement{c: c, prog: prog, layout: bl, res: res}))
			altSurvived = append(altSurvived, nil)
		}
	}

	// Replay buildPool's exact assembly on the upgraded candidates,
	// replacing its hash maps with dense passes over the lineage's group
	// index. The sorted order is materialized as a permutation of raw
	// indices, so newRaw itself stays in enumeration order and becomes the
	// new entry's raw without another copy.
	g := prev.groups
	if g == nil {
		g = computeGroups(raw)
	}
	idx := make([]int32, len(newRaw))
	if g.layUnique {
		// Strict total order: start from the previous generation's sorted
		// permutation (small ESP moves leave it nearly sorted, which the
		// adaptive sort exploits) — the unique result matches buildPool's
		// stable sort from enumeration order.
		if prev.order != nil {
			copy(idx, prev.order)
		} else {
			for i := range idx {
				idx[i] = int32(i)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return candLess(newRaw[idx[a]], newRaw[idx[b]]) })
	} else {
		// Duplicate layouts exist: ties must resolve by enumeration order,
		// exactly as sortCandidates' stable sort does.
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.SliceStable(idx, func(a, b int) bool { return candLess(newRaw[idx[a]], newRaw[idx[b]]) })
	}
	order := idx

	// Surviving alts, deduped: an alt sharing a layout with any mono is
	// dropped (every mono lkey precedes it through distinct ++ dupes in
	// buildPool's pipeline), and among same-layout alts the first in sweep
	// order wins, exactly as dedupeByLayout resolves them.
	altSeen := make(map[uint64]bool, len(altCands))
	keptAlts := make([]*candidate, 0, len(altCands))
	for _, nc := range altCands {
		if _, dup := g.layByKey[nc.lkey]; dup || altSeen[nc.lkey] {
			continue
		}
		altSeen[nc.lkey] = true
		keptAlts = append(keptAlts, nc)
	}

	var cpool []*candidate
	if g.layUnique {
		// Every mono layout is distinct, so dedupeByLayout keeps every mono
		// and the final pool is just the sorted monos merged with the sorted
		// surviving alts — the split-by-set reshuffle is undone by the final
		// sort, whose strict comparator makes the merge its unique result.
		sort.Slice(keptAlts, func(a, b int) bool { return candLess(keptAlts[a], keptAlts[b]) })
		cpool = make([]*candidate, 0, len(idx)+len(keptAlts))
		ai := 0
		for _, ri := range idx {
			for ai < len(keptAlts) && candLess(keptAlts[ai], newRaw[ri]) {
				cpool = append(cpool, keptAlts[ai])
				ai++
			}
			cpool = append(cpool, newRaw[ri])
		}
		cpool = append(cpool, keptAlts[ai:]...)
	} else {
		// Duplicate mono layouts: replay the full pipeline. splitBySet —
		// first candidate per distinct qubit set keeps pool priority,
		// same-set permutations follow — then dedupeByLayout over
		// distinct ++ dupes ++ alts, then the final sort (strict after
		// dedupe, so an unstable sort reproduces buildPool's stable result).
		seenSet := make([]bool, g.nSet)
		distinct := make([]int32, 0, len(idx))
		var dupes []int32
		for _, ri := range idx {
			if seenSet[g.setGid[ri]] {
				dupes = append(dupes, ri)
				continue
			}
			seenSet[g.setGid[ri]] = true
			distinct = append(distinct, ri)
		}
		seenLay := make([]bool, g.nLay)
		cpool = make([]*candidate, 0, len(idx)+len(keptAlts))
		for _, part := range [][]int32{distinct, dupes} {
			for _, ri := range part {
				if seenLay[g.layGid[ri]] {
					continue
				}
				seenLay[g.layGid[ri]] = true
				cpool = append(cpool, newRaw[ri])
			}
		}
		cpool = append(cpool, keptAlts...)
		sort.Slice(cpool, func(i, j int) bool { return candLess(cpool[i], cpool[j]) })
	}

	// Transfer materialized executables: a surviving candidate's circuit is
	// calibration-independent (same structure), so a shallow copy with the
	// new ESP serves the new pool without re-materializing.
	exes := make(map[*candidate]*Executable)
	prev.mu.Lock()
	for i, cd := range raw {
		if exe, ok := prev.exes[cd]; ok {
			e2 := *exe
			e2.ESP = newRaw[i].esp
			exes[newRaw[i]] = &e2
		}
	}
	for i, nc := range altCands {
		if old := altSurvived[i]; old != nil {
			if exe, ok := prev.exes[old]; ok {
				e2 := *exe
				e2.ESP = nc.esp
				exes[nc] = &e2
			}
		}
	}
	prev.mu.Unlock()

	return &poolEntry{
		rp: rp2, cpool: cpool, raw: newRaw, prog: prog,
		seed: prev.seed, baseLayout: prev.baseLayout, baseRes: baseRes,
		groups: g, order: order, exes: exes,
	}
}
