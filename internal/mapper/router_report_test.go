package mapper

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"edm/internal/workloads"
)

// TestRouterBenchReport regenerates BENCH_router.json: the SABRE-style
// bidirectional router versus the frozen greedy-walk baseline, on the
// Table 1 workloads under the benchmark calibration (benchCal). It is the
// engine behind scripts/bench_router.sh and skips unless
// EDM_BENCH_ROUTER_OUT names the output file.
//
// Acceptance bars recorded in the report:
//   - geo-mean routed-ESP ratio (router/greedy) >= 1, strictly better on
//     at least one SWAP-heavy workload (the hybrid route() guarantees
//     per-workload ratio >= 1 structurally; see
//     TestRouterNeverWorseThanGreedy);
//   - TopK(k=4) latency no worse than the PR 2 numbers recorded in
//     BENCH_compiler.json.
func TestRouterBenchReport(t *testing.T) {
	out := os.Getenv("EDM_BENCH_ROUTER_OUT")
	if out == "" {
		t.Skip("set EDM_BENCH_ROUTER_OUT=path to generate BENCH_router.json")
	}

	type side struct {
		Swaps   int     `json:"swaps"`
		ESP     float64 `json:"esp"`
		NsPerOp int64   `json:"compile_ns_per_op"`
	}
	type row struct {
		Name         string  `json:"name"`
		Greedy       side    `json:"greedy_baseline"`
		Router       side    `json:"router"`
		ESPRatio     float64 `json:"esp_ratio"`
		TopK4NsPerOp int64   `json:"topk4_ns_per_op"`
		TopK4PR2     int64   `json:"topk4_pr2_ns_per_op,omitempty"`
	}

	cal := benchCal()
	comp := NewCompiler(cal)
	pr2 := loadPR2TopK(t)

	var rows []row
	geoSum := 0.0
	var strictlyBetter []string
	for _, w := range workloads.All() {
		layout, err := comp.place(w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		grd, err := comp.routeGreedy(w.Circuit, layout)
		if err != nil {
			t.Fatalf("%s greedy: %v", w.Name, err)
		}
		rtd, err := comp.route(w.Circuit, append([]int(nil), layout...))
		if err != nil {
			t.Fatalf("%s route: %v", w.Name, err)
		}
		ratio := rtd.ESP / grd.ESP
		geoSum += math.Log(ratio)
		if ratio > 1+bbEps && rtd.Swaps > 0 {
			strictlyBetter = append(strictlyBetter, w.Name)
		}

		wl := w
		greedyNs := minBenchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, err := comp.place(wl.Circuit)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := comp.routeGreedy(wl.Circuit, l); err != nil {
					b.Fatal(err)
				}
			}
		})
		routerNs := minBenchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.Compile(wl.Circuit); err != nil {
					b.Fatal(err)
				}
			}
		})
		topkNs := minBenchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.TopK(wl.Circuit, 4); err != nil {
					b.Fatal(err)
				}
			}
		})

		rows = append(rows, row{
			Name:         w.Name,
			Greedy:       side{Swaps: grd.Swaps, ESP: grd.ESP, NsPerOp: greedyNs},
			Router:       side{Swaps: rtd.Swaps, ESP: rtd.ESP, NsPerOp: routerNs},
			ESPRatio:     ratio,
			TopK4NsPerOp: topkNs,
			TopK4PR2:     pr2[w.Name],
		})
		t.Logf("%-12s swaps %2d -> %2d  esp ratio %.4f  compile %7dns -> %7dns  topk4 %dns (pr2 %dns)",
			w.Name, grd.Swaps, rtd.Swaps, ratio, greedyNs, routerNs, topkNs, pr2[w.Name])
	}

	report := struct {
		Description string   `json:"description"`
		Benchmark   string   `json:"benchmark"`
		Date        string   `json:"date"`
		Calibration string   `json:"calibration"`
		Rows        []row    `json:"workloads"`
		GeoMeanESP  float64  `json:"geo_mean_esp_ratio"`
		Strictly    []string `json:"strictly_better_on"`
		Note        string   `json:"note"`
	}{
		Description: "SABRE-style bidirectional lookahead router vs frozen greedy-walk baseline (same placements)",
		Benchmark:   "EDM_BENCH_ROUTER_OUT=... go test -run TestRouterBenchReport ./internal/mapper (scripts/bench_router.sh)",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Calibration: "melbourne topology, MelbourneProfile, rng seed 2019 (benchCal)",
		Rows:        rows,
		GeoMeanESP:  math.Exp(geoSum / float64(len(rows))),
		Strictly:    strictlyBetter,
		Note:        "compile_ns_per_op is place+route end to end, min of 3 benchmark runs; topk4_pr2_ns_per_op is the after_ns_per_op recorded in BENCH_compiler.json (PR 2)",
	}
	if report.GeoMeanESP < 1-bbEps {
		t.Errorf("geo-mean ESP ratio %.6f < 1: router regressed below the greedy baseline", report.GeoMeanESP)
	}
	if len(strictlyBetter) == 0 {
		t.Error("router strictly better on no SWAP-heavy workload")
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (geo-mean esp ratio %.4f, strictly better on %v)", out, report.GeoMeanESP, strictlyBetter)
}

// minBenchNs runs the benchmark three times and returns the fastest
// ns/op: the box the reports are generated on is noisy, and minimum
// wall-clock is the standard robust estimator for latency comparisons.
func minBenchNs(f func(b *testing.B)) int64 {
	best := int64(math.MaxInt64)
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(f)
		if ns := r.NsPerOp(); ns < best {
			best = ns
		}
	}
	return best
}

// loadPR2TopK reads the TopK after-numbers from BENCH_compiler.json so
// the router report can show the wall-clock bar it is held to.
func loadPR2TopK(t *testing.T) map[string]int64 {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join("..", "..", "BENCH_compiler.json"))
	if err != nil {
		t.Logf("BENCH_compiler.json unavailable (%v); omitting PR2 columns", err)
		return nil
	}
	var doc struct {
		Entries []struct {
			Name    string `json:"name"`
			AfterNs int64  `json:"after_ns_per_op"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("BENCH_compiler.json: %v", err)
	}
	out := map[string]int64{}
	for _, e := range doc.Entries {
		var name string
		if _, err := fmt.Sscanf(e.Name, "TopK/%s", &name); err == nil {
			out[name] = e.AfterNs
		}
	}
	return out
}
