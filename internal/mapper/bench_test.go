package mapper

import (
	"testing"

	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// The benchmark bodies in this file are frozen: scripts/bench_compiler.sh
// compares their current timings against the baseline block recorded at
// the commit before the compilation-pipeline overhaul, so the measured
// work per iteration must not change.

func benchCal() *device.Calibration {
	return device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(2019))
}

// BenchmarkTopK measures the full candidate pipeline — compile, isomorphic
// enumeration, ESP ranking, diversity selection — at the paper's default
// ensemble size, once per Table 1 workload.
func BenchmarkTopK(b *testing.B) {
	cal := benchCal()
	for _, w := range workloads.All() {
		b.Run(w.Name, func(b *testing.B) {
			comp := NewCompiler(cal)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := comp.TopK(w.Circuit, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleBest measures TopK(k=1), the baseline policy the
// experiment campaign runs once per round and workload.
func BenchmarkSingleBest(b *testing.B) {
	cal := benchCal()
	w, _ := workloads.ByName("bv-6")
	comp := NewCompiler(cal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.TopK(w.Circuit, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewCompiler measures compiler construction (all-pairs
// reliability paths over the coupling graph).
func BenchmarkNewCompiler(b *testing.B) {
	cal := benchCal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCompiler(cal)
	}
}
