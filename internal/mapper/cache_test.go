package mapper

import (
	"reflect"
	"sync"
	"testing"

	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// TestTopKPrefixStability pins the selection-stability facts the
// ensemble cache is built on. The naive design — cache TopK(c, 6) and
// answer TopK(c, 4) from its ranked prefix — is WRONG for this pipeline:
// selectDiverse relaxes its ESP-slack/overlap ladder until it can fill
// k members, so the constraint level (and therefore members 1..k-1) is a
// function of k. The test asserts the two invariants that do hold and
// demonstrates the one that does not:
//
//  1. Member 0 (the paper's baseline mapping) is identical for every k.
//  2. On a cached compiler, each k returns exactly what an uncached
//     compiler returns for that k — the pool is shared, the selection
//     re-runs.
//  3. There exist workloads where TopK(c, 6)[:4] != TopK(c, 4), which is
//     why the cache shares the candidate pool rather than ranked
//     prefixes.
func TestTopKPrefixStability(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(1))
	fresh := NewCompiler(cal)
	cached := CachedCompiler(cal)
	prefixDiffers := false
	for _, w := range workloads.All() {
		byK := map[int][]*Executable{}
		for _, k := range []int{6, 4, 2, 1} {
			got, err := cached.TopK(w.Circuit, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", w.Name, k, err)
			}
			want, err := fresh.TopK(w.Circuit, k)
			if err != nil {
				t.Fatalf("%s k=%d (uncached): %v", w.Name, k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s k=%d: cached TopK differs from uncached", w.Name, k)
			}
			byK[k] = got
		}
		for _, k := range []int{6, 4, 2} {
			if !reflect.DeepEqual(byK[k][0], byK[1][0]) {
				t.Fatalf("%s: member 0 of k=%d differs from k=1 baseline", w.Name, k)
			}
		}
		if len(byK[6]) >= 4 && !reflect.DeepEqual(byK[6][:4], byK[4]) {
			prefixDiffers = true
		}
	}
	if !prefixDiffers {
		t.Fatal("every workload had TopK(6)[:4] == TopK(4); the pool-not-prefix cache design comment is stale")
	}
}

// TestTopKCachedBitIdenticalAcrossKOrder checks that the pool cache has
// no order dependence: asking for k in ascending order (baseline first,
// as RunPolicies does) and in descending order produces bit-identical
// ensembles, and repeated queries return the same shared executables.
func TestTopKCachedBitIdenticalAcrossKOrder(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(2))
	w, ok := workloads.ByName("fredkin")
	if !ok {
		t.Fatal("unknown workload")
	}
	asc := CachedCompiler(cal)
	ResetCompilerCache()
	desc := CachedCompiler(cal)
	if asc == desc {
		t.Fatal("ResetCompilerCache did not drop the compiler")
	}
	ascRes := map[int][]*Executable{}
	for _, k := range []int{1, 2, 4, 6} {
		exes, err := asc.TopK(w.Circuit, k)
		if err != nil {
			t.Fatal(err)
		}
		ascRes[k] = exes
	}
	for _, k := range []int{6, 4, 2, 1} {
		exes, err := desc.TopK(w.Circuit, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exes, ascRes[k]) {
			t.Fatalf("k=%d: descending-order query differs from ascending-order", k)
		}
	}
	// A repeat query is a pure cache hit sharing the same executables.
	again, err := asc.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != ascRes[4][i] {
			t.Fatalf("member %d: repeat query rematerialized instead of sharing", i)
		}
	}
}

// TestUncachedView checks the frozen-baseline escape hatch: Uncached
// returns a compiler that shares the tables but rebuilds every TopK
// call, producing equal values but distinct objects.
func TestUncachedView(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(3))
	cached := CachedCompiler(cal)
	raw := cached.Uncached()
	if raw.ens != nil {
		t.Fatal("Uncached view still has an ensemble cache")
	}
	if raw.cal != cached.cal || &raw.cxSucc[0] != &cached.cxSucc[0] {
		t.Fatal("Uncached view does not share the compiler tables")
	}
	w, ok := workloads.ByName("bv-6")
	if !ok {
		t.Fatal("unknown workload")
	}
	a, err := cached.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := raw.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Uncached TopK differs from cached")
	}
	if a[0] == b[0] {
		t.Fatal("Uncached TopK returned a cached executable")
	}
	// NewCompiler never attaches a cache; Uncached on it is the identity.
	plain := NewCompiler(cal)
	if plain.Uncached() != plain {
		t.Fatal("Uncached on an uncached compiler allocated a copy")
	}
}

// TestCompilerCacheEvictionReleases pins the satellite leak fix: pushing
// the compiler cache past capacity evicts FIFO entries (counted in the
// stats) and an evicted fingerprint is rebuilt on the next call.
func TestCompilerCacheEvictionReleases(t *testing.T) {
	ResetCompilerCache()
	base := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(40))
	first := CachedCompiler(base)
	before := CompilerCacheStats()
	r := rng.New(41)
	for i := 0; i < compilerCacheCap; i++ {
		CachedCompiler(base.Drift(0.2, r.DeriveN("evict", i)))
	}
	st := CompilerCacheStats()
	if st.Evictions <= before.Evictions {
		t.Fatalf("no evictions after %d inserts past capacity: %+v", compilerCacheCap, st)
	}
	if st.Entries > compilerCacheCap {
		t.Fatalf("cache holds %d entries, cap %d", st.Entries, compilerCacheCap)
	}
	if second := CachedCompiler(base); second == first {
		t.Fatal("evicted compiler was still served from the cache")
	}
}

// TestTopKCacheSingleflight checks that concurrent first queries for the
// same circuit build one pool and share one set of executables.
func TestTopKCacheSingleflight(t *testing.T) {
	ResetCompilerCache()
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(50))
	comp := CachedCompiler(cal)
	w, ok := workloads.ByName("qaoa-5")
	if !ok {
		t.Fatal("unknown workload")
	}
	const n = 4
	results := make([][]*Executable, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			exes, err := comp.TopK(w.Circuit, 4)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = exes
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("goroutine %d: ensemble size %d != %d", i, len(results[i]), len(results[0]))
		}
		for j := range results[i] {
			if results[i][j] != results[0][j] {
				t.Fatalf("goroutine %d member %d: got a distinct executable; pool not shared", i, j)
			}
		}
	}
	st := TopKCacheStats()
	if st.Misses == 0 {
		t.Fatalf("no Top-K cache misses recorded: %+v", st)
	}
}
