package mapper

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/statevec"
	"edm/internal/workloads"
)

// uniformCal builds a calibration with identical error rates everywhere,
// so every shortest-path tie is a true tie and only the deterministic
// tie-break decides the route.
func uniformCal(topo *device.Topology, cxErr float64) *device.Calibration {
	n := topo.Qubits
	fill := func(v float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	cal := &device.Calibration{
		Topo:         topo,
		SQErr:        fill(0.001),
		Meas01:       fill(0.02),
		Meas10:       fill(0.02),
		T1us:         fill(50),
		T2us:         fill(30),
		CohY:         fill(0),
		CohZ:         fill(0),
		CXErr:        map[device.Edge]float64{},
		CXCohZZ:      map[device.Edge]float64{},
		CrossZZ:      map[device.Edge]float64{},
		Gate1QTimeNs: 50,
		Gate2QTimeNs: 300,
		MeasTimeNs:   1000,
	}
	for _, e := range topo.Edges() {
		cal.CXErr[e] = cxErr
		cal.CXCohZZ[e] = 0
		cal.CrossZZ[e] = 0
	}
	return cal
}

// twoComponentTopology is a 5-qubit device whose coupling graph has two
// components: a 3-qubit path {0,1,2} and a 2-qubit link {3,4}.
func twoComponentTopology() *device.Topology {
	return device.NewTopology("twocomp-5", 5, []device.Edge{
		device.NewEdge(0, 1), device.NewEdge(1, 2), device.NewEdge(3, 4),
	})
}

// TestRouteUnroutableOpKind pins the router's behavior on an op kind it
// cannot route: a multi-operand kind that is neither a recognized
// two-qubit gate nor a single-qubit gate must surface an explicit error,
// not fall through to a silent remap of operand 0 (the old behavior,
// which corrupted the circuit).
func TestRouteUnroutableOpKind(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 3))
	qc := circuit.New(3, 3)
	qc.H(0)
	// A synthetic future gate kind with three operands, injected directly
	// into the op list the way a builder extension would.
	qc.Ops = append(qc.Ops, circuit.Op{Kind: circuit.Kind(97), Qubits: []int{0, 1, 2}, Cbit: -1})
	_, err := comp.route(qc, []int{0, 1, 2})
	if err == nil {
		t.Fatal("route accepted a 3-operand unknown op kind")
	}
	if !strings.Contains(err.Error(), "unroutable op kind") {
		t.Fatalf("error %q does not name the unroutable op kind", err)
	}
	if _, err := comp.routePinned(qc, []int{0, 1, 2}); err == nil {
		t.Fatal("routePinned accepted a 3-operand unknown op kind")
	}
}

// TestAlternativePlacementsSkippedSeeds routes a 3-qubit path program on a
// two-component device: seeds in the 2-qubit component can never place the
// program and must be reported as skipped, not silently dropped.
func TestAlternativePlacementsSkippedSeeds(t *testing.T) {
	comp := NewCompiler(uniformCal(twoComponentTopology(), 0.01))
	prog := pathQAOAish(3) // path interaction graph: fits {0,1,2} only
	alts, skipped, err := comp.alternativePlacements(progOf(prog))
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) == 0 {
		t.Fatal("no placements from the hosting component")
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (seeds 3 and 4 cannot host a 3-qubit path)", skipped)
	}
	for _, a := range alts {
		for lq, p := range a.layout {
			if p > 2 {
				t.Fatalf("logical qubit %d placed on %d, outside the hosting component", lq, p)
			}
		}
	}
}

// TestAlternativePlacementsAllFail asks for a 4-qubit connected program on
// the same device, which no component can host: the sweep must error
// rather than quietly return an empty pool.
func TestAlternativePlacementsAllFail(t *testing.T) {
	comp := NewCompiler(uniformCal(twoComponentTopology(), 0.01))
	_, skipped, err := comp.alternativePlacements(progOf(pathQAOAish(4)))
	if err == nil {
		t.Fatal("alternativePlacements succeeded with no component large enough")
	}
	if skipped != 5 {
		t.Fatalf("skipped = %d, want all 5 seeds", skipped)
	}
	msg := err.Error()
	if !strings.Contains(msg, "all 5 greedy seeds") || !strings.Contains(msg, "2 connected components") {
		t.Fatalf("error %q should report the seed count and component count", err)
	}
}

// TestDijkstraTieBreaksByQubitIndex pins the all-pairs tie-break on a ring
// with uniform link errors: between the two equal-cost arcs, the router
// must always take the one through lower qubit indices, in both
// directions. This is what makes parallel sweeps bit-identical — a
// map-ordered Dijkstra would flip these ties between runs.
func TestDijkstraTieBreaksByQubitIndex(t *testing.T) {
	comp := NewCompiler(uniformCal(device.Ring(6), 0.01))
	cases := []struct {
		src, dst int
		want     []int
	}{
		{0, 3, []int{0, 1, 2, 3}}, // not 0,5,4,3
		{3, 0, []int{3, 2, 1, 0}}, // not 3,4,5,0
		{0, 2, []int{0, 1, 2}},
		{1, 4, []int{1, 2, 3, 4}}, // not 1,0,5,4
	}
	for _, tc := range cases {
		got := comp.pathBetween(tc.src, tc.dst)
		if !sameInts(got, tc.want) {
			t.Errorf("pathBetween(%d,%d) = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}
	if comp.pathNext[0][3] != 1 {
		t.Errorf("pathNext[0][3] = %d, want 1", comp.pathNext[0][3])
	}

	comp4 := NewCompiler(uniformCal(device.Ring(4), 0.01))
	if got := comp4.pathBetween(0, 2); !sameInts(got, []int{0, 1, 2}) {
		t.Errorf("ring-4 pathBetween(0,2) = %v, want [0 1 2]", got)
	}
	if got := comp4.pathBetween(3, 1); !sameInts(got, []int{3, 0, 1}) {
		t.Errorf("ring-4 pathBetween(3,1) = %v, want [3 0 1]", got)
	}
}

// TestCompileWithLayoutPinsInitialLayout pins the CompileWithLayout
// contract: the caller's layout is the executable's InitialLayout even
// when it is deliberately bad and the bidirectional re-router would
// converge somewhere better.
func TestCompileWithLayoutPinsInitialLayout(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 7))
	logical := starCircuit(5) // 6 qubits, hub q5: needs swaps on melbourne
	// Spread the star across both rows so routing has real work to do.
	pinned := []int{0, 4, 13, 9, 6, 11}
	exe, err := comp.CompileWithLayout(logical, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(exe.InitialLayout, pinned) {
		t.Fatalf("InitialLayout = %v, want the pinned %v", exe.InitialLayout, pinned)
	}
	if exe.Swaps == 0 {
		t.Fatal("a spread-out star should need swaps")
	}
	// The pinned route must still be semantically correct.
	want, err := statevec.IdealDist(logical)
	if err != nil {
		t.Fatal(err)
	}
	got, err := statevec.IdealDist(exe.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("pinned-layout routing changed circuit semantics")
	}
	// And the free router is allowed to (and here does) pick another seat.
	free, err := comp.Compile(logical)
	if err != nil {
		t.Fatal(err)
	}
	if free.ESP < exe.ESP {
		t.Fatalf("free placement ESP %v worse than deliberately bad pinned layout %v", free.ESP, exe.ESP)
	}
}

// TestRouteESPMatchesDevice pins the dry-pass scoring contract the whole
// router design rests on: the incrementally-computed ESP of a dry pass
// must be bit-identical to device.ESP on the materialized circuit, for
// every Table 1 workload and every alternative placement.
func TestRouteESPMatchesDevice(t *testing.T) {
	cal := calFor(device.Melbourne(), 2019)
	comp := NewCompiler(cal)
	for _, w := range workloads.All() {
		exe, err := comp.Compile(w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if got := device.MustESP(exe.Circuit, cal); got != exe.ESP {
			t.Errorf("%s: inline ESP %v != device.ESP %v", w.Name, exe.ESP, got)
		}
		alts, _, err := comp.alternativePlacements(progOf(w.Circuit))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for i, a := range alts {
			exe := a.exe()
			if got := device.MustESP(exe.Circuit, cal); got != exe.ESP {
				t.Errorf("%s alt %d: inline ESP %v != device.ESP %v", w.Name, i, exe.ESP, got)
			}
			if exe.ESP != a.res.esp {
				t.Errorf("%s alt %d: replayed ESP %v != dry-pass ESP %v", w.Name, i, exe.ESP, a.res.esp)
			}
		}
	}
}

// TestRouterUsedMaskMatchesCircuit pins the dry-pass used-qubit
// derivation against UsedQubits() of the materialized circuit.
func TestRouterUsedMaskMatchesCircuit(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 2019))
	for _, w := range workloads.All() {
		alts, _, err := comp.alternativePlacements(progOf(w.Circuit))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for i, a := range alts {
			var want qmask
			for _, q := range a.exe().UsedQubits() {
				want.Add(q)
			}
			if got := a.usedMask(comp.devN); got != want {
				t.Errorf("%s alt %d: usedMask != circuit UsedQubits", w.Name, i)
			}
		}
	}
}

// TestRouterNeverWorseThanGreedy is the hybrid-routing guarantee behind
// the benchmark acceptance bar: for every workload, the shipped route()
// must score at least the frozen greedy baseline from the same layout.
func TestRouterNeverWorseThanGreedy(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 2019))
	for _, w := range workloads.All() {
		layout, err := comp.place(w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		grd, err := comp.routeGreedy(w.Circuit, layout)
		if err != nil {
			t.Fatalf("%s greedy: %v", w.Name, err)
		}
		got, err := comp.route(w.Circuit, append([]int(nil), layout...))
		if err != nil {
			t.Fatalf("%s route: %v", w.Name, err)
		}
		if got.ESP < grd.ESP*(1-bbEps) {
			t.Errorf("%s: route ESP %v below greedy baseline %v", w.Name, got.ESP, grd.ESP)
		}
	}
}

// TestRouteSemanticsPreserved checks the SABRE pass and the bidirectional
// converge against the simulator: whatever layout the router converges
// to, the routed circuit must compute the logical circuit's function.
func TestRouteSemanticsPreserved(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 2019))
	for _, w := range []string{"fredkin", "adder", "qaoa-5", "greycode-6"} {
		wl, ok := workloads.ByName(w)
		if !ok {
			t.Fatalf("workload %s missing", w)
		}
		exe, err := comp.Compile(wl.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		want, err := statevec.IdealDist(wl.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		got, err := statevec.IdealDist(exe.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%s: routed circuit changed semantics", w)
		}
	}
}

// TestRouterDeterministicAcrossWorkers routes every workload through the
// full parallel pipeline at 1 worker and at NumCPU workers and requires
// bit-identical executables: same layouts, same swap placements, same
// ESP bits.
func TestRouterDeterministicAcrossWorkers(t *testing.T) {
	run := func(procs int) []*Executable {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		comp := NewCompiler(calFor(device.Melbourne(), 2019))
		var out []*Executable
		for _, w := range workloads.All() {
			exes, err := comp.TopK(w.Circuit, 4)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			out = append(out, exes...)
		}
		return out
	}
	serial := run(1)
	procs := runtime.NumCPU()
	if procs < 4 {
		procs = 4 // exercise the parallel paths even on small CI boxes
	}
	parallel := run(procs)
	if len(serial) != len(parallel) {
		t.Fatalf("ensemble sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if math.Float64bits(a.ESP) != math.Float64bits(b.ESP) {
			t.Fatalf("member %d: ESP bits differ: %v vs %v", i, a.ESP, b.ESP)
		}
		if !sameInts(a.InitialLayout, b.InitialLayout) || !sameInts(a.FinalLayout, b.FinalLayout) {
			t.Fatalf("member %d: layouts differ", i)
		}
		if a.Swaps != b.Swaps || len(a.Circuit.Ops) != len(b.Circuit.Ops) {
			t.Fatalf("member %d: routing differs (%d vs %d swaps)", i, a.Swaps, b.Swaps)
		}
	}
}

// TestConvergeImprovesSomeWorkload guards against the bidirectional
// machinery silently never engaging: across the Table 1 workloads, at
// least one compile must route strictly better than a single pinned
// forward pass from the same initial placement.
func TestConvergeImprovesSomeWorkload(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 2019))
	improved := false
	for _, w := range workloads.All() {
		layout, err := comp.place(w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		pinned, err := comp.routePinned(w.Circuit, append([]int(nil), layout...))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		free, err := comp.route(w.Circuit, append([]int(nil), layout...))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if free.ESP > pinned.ESP*(1+bbEps) {
			improved = true
		}
	}
	if !improved {
		t.Skip("bidirectional pass found no strict improvement on this calibration (allowed, but worth noticing)")
	}
}
