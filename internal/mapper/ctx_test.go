package mapper

import (
	"context"
	"errors"
	"testing"

	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// TestTopKCtxBitIdenticalToTopK pins that the context-threaded compile
// path returns the same executables as TopK, on both the cached and
// uncached compiler, plain and Tracking.
func TestTopKCtxBitIdenticalToTopK(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(21))
	w := workloads.BV("110011")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cached := CachedCompiler(cal)
	want, err := cached.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.TopKCtx(ctx, w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("member counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("member %d: TopKCtx returned a different executable than TopK", i)
		}
	}

	tr := NewTracking(cal, RecompileChecked)
	wantTr, err := tr.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotTr, err := tr.TopKCtx(ctx, w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotTr {
		if gotTr[i] != wantTr[i] {
			t.Fatalf("tracking member %d differs", i)
		}
	}
	if s := tr.PoolStats(); s.Misses != 1 {
		t.Fatalf("tracking pool misses = %d, want exactly 1 build", s.Misses)
	}
}

// TestTopKCtxCancelled: an expired context surfaces as an error, not a
// panic, and does not poison the ensemble cache for later callers.
func TestTopKCtxCancelled(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(22))
	comp := CachedCompiler(cal)
	w := workloads.QAOA(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := comp.TopKCtx(ctx, w.Circuit, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TopKCtx err = %v, want Canceled", err)
	}
	// The cache must still serve the circuit afterwards.
	execs, err := comp.TopKCtx(context.Background(), w.Circuit, 4)
	if err != nil || len(execs) != 4 {
		t.Fatalf("post-cancel TopKCtx = %d execs, %v", len(execs), err)
	}

	tr := NewTracking(cal, RecompileChecked)
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := tr.TopKCtx(ctx2, w.Circuit, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Tracking.TopKCtx err = %v, want Canceled", err)
	}
	if _, err := tr.TopKCtx(context.Background(), w.Circuit, 2); err != nil {
		t.Fatalf("post-cancel Tracking.TopKCtx: %v", err)
	}
	if _, err := tr.TopKCtx(context.Background(), w.Circuit, 0); err == nil {
		t.Fatal("k=0 must error")
	}
}
