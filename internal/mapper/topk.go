package mapper

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"edm/internal/bitset"
	"edm/internal/circuit"
	"edm/internal/graph"
	"edm/internal/pool"
)

// This file is the ensemble-construction half of the compiler: the
// streaming candidate pipeline behind TopK and Placements.
//
// Earlier versions materialized a full Executable — a cloned circuit plus
// a device.ESP pass — for every isomorphic placement the VF2 enumeration
// produced (hundreds of thousands for the Table 1 workloads). The
// pipeline now keeps a lightweight candidate record per placement: the
// ESP is recomputed incrementally from per-gate tables as the search
// emits each mapping, qubit sets are bitmasks, layout identity is a
// 64-bit hash, and circuits are only cloned for the <= k placements that
// survive ranking, dedupe and diversity selection. Enumeration and
// scoring shard across the compute-token pool on the first VF2 match
// level and merge in first-candidate order, so results are bit-identical
// to a serial run.

// enumLimit caps the number of isomorphic placements enumerated; the
// 14-qubit devices of interest stay well under it.
const enumLimit = 100000

// ---------------------------------------------------------------------------
// Qubit-set bitmasks and hashed keys.

// qmask is a set of physical qubits as an inline fixed-width multi-word
// bitset. It replaced the map[int]bool sets and byte-string keys the
// selection stage used originally, and the single-uint64 footprint that
// capped devices at 64 qubits after that. Devices wider than bitset.Cap
// are rejected with device.ErrDeviceTooWide at the compiler's public
// entry points (widthErr) rather than silently truncating footprints.
type qmask = bitset.Set

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into the hash, FNV-1a style but a word at
// a time: each step xors the input and multiplies by the (odd, hence
// bijective) FNV prime, so any single-word difference always changes the
// hash and multi-word collisions are no more likely than random.
func fnvMix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	h ^= h >> 32
	return h
}

// hashInts fingerprints an int slice (layouts). Collisions between
// distinct layouts are possible in principle but need ~2^32 candidates to
// become likely; pools top out around enumLimit.
func hashInts(xs []int) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(len(xs)))
	for _, x := range xs {
		h = fnvMix(h, uint64(int64(x)))
	}
	return h
}

// maskHash fingerprints a qubit set with the same word mixing as the
// mapper's other integer keys.
func maskHash(m qmask) uint64 {
	h := uint64(fnvOffset)
	for _, w := range m {
		h = fnvMix(h, w)
	}
	return h
}

// ---------------------------------------------------------------------------
// Incremental ESP scoring.

const (
	opSQ = iota
	opMeas
	opCX
	opSWAP
)

// espOp is one ESP-relevant gate of the base executable with its qubits
// compacted to used-qubit indices, so a candidate's ESP is a function of
// the VF2 mapping alone.
type espOp struct {
	kind int8
	a, b int32
}

// atomicFloat is a monotone non-negative maximum shared by the pruned
// search workers.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

// raise lifts the value to at least v. Non-negative float64s compare like
// their bit patterns, so a plain integer CAS-max suffices.
func (a *atomicFloat) raise(v float64) {
	nb := math.Float64bits(v)
	for {
		ob := a.bits.Load()
		if math.Float64frombits(ob) >= v {
			return
		}
		if a.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// candidate is a placement in the TopK pool before materialization.
type candidate struct {
	esp    float64
	layout []int // logical -> physical, the initial layout
	lkey   uint64
	set    qmask
	skey   uint64
	mono   []int         // used[i] -> physical; nil for alternative placements
	alt    *altPlacement // dry-routed alternative placement, replayed on demand
}

// replacer drives isomorphic re-placements of one base executable: the
// VF2 search over its usage graph plus everything needed to score and
// label a mapping without touching the circuit.
type replacer struct {
	c    *Compiler
	base *Executable
	used []int
	ops  []espOp

	search *graph.MonoSearch
	// Branch-and-bound tables over the match order: opsAt[d] lists the
	// gates whose qubits are all assigned once depth d is, espSuffix[d] is
	// the best-case success factor of everything at depths >= d.
	opsAt     [][]espOp
	espSuffix []float64

	// layoutIdx[i] is the used-index of base.InitialLayout[i]; allUsed
	// says every layout qubit is a used qubit, enabling the alloc-light
	// layout construction (the identityExtend fallback covers programs
	// whose initial layout includes never-touched qubits).
	layoutIdx []int
	allUsed   bool
}

func (c *Compiler) newReplacer(base *Executable) *replacer {
	ug, used := usageGraph(base)
	rp := &replacer{c: c, base: base, used: used}
	idx := make(map[int]int, len(used))
	for i, q := range used {
		idx[q] = i
	}
	for _, op := range base.Circuit.Ops {
		switch {
		case op.Kind == circuit.Barrier || op.Kind == circuit.I:
		case op.Kind == circuit.Measure:
			rp.ops = append(rp.ops, espOp{opMeas, int32(idx[op.Qubits[0]]), 0})
		case op.Kind.IsTwoQubit():
			kind := int8(opCX)
			if op.Kind == circuit.SWAP {
				kind = opSWAP
			}
			rp.ops = append(rp.ops, espOp{kind, int32(idx[op.Qubits[0]]), int32(idx[op.Qubits[1]])})
		default:
			rp.ops = append(rp.ops, espOp{opSQ, int32(idx[op.Qubits[0]]), 0})
		}
	}
	rp.search = graph.NewMonoSearch(ug, c.g)
	order := rp.search.Order()
	pos := make([]int, len(order))
	for d, v := range order {
		pos[v] = d
	}
	rp.opsAt = make([][]espOp, len(order))
	for _, op := range rp.ops {
		d := pos[op.a]
		if op.kind == opCX || op.kind == opSWAP {
			if pb := pos[op.b]; pb > d {
				d = pb
			}
		}
		rp.opsAt[d] = append(rp.opsAt[d], op)
	}
	rp.espSuffix = make([]float64, len(order)+1)
	rp.espSuffix[len(order)] = 1
	for d := len(order) - 1; d >= 0; d-- {
		f := 1.0
		for _, op := range rp.opsAt[d] {
			switch op.kind {
			case opSQ:
				f *= c.maxSQSucc
			case opMeas:
				f *= c.maxMeasSucc
			case opCX:
				f *= c.maxCXSucc
			default:
				f *= c.maxCXSucc * c.maxCXSucc * c.maxCXSucc
			}
		}
		rp.espSuffix[d] = rp.espSuffix[d+1] * f
	}

	rp.layoutIdx = make([]int, len(base.InitialLayout))
	rp.allUsed = true
	for i, p := range base.InitialLayout {
		if j, ok := idx[p]; ok {
			rp.layoutIdx[i] = j
		} else {
			rp.layoutIdx[i] = -1
			rp.allUsed = false
		}
	}
	return rp
}

// score computes the ESP of the base executable relabeled by mono. The
// per-op factors and their multiplication order replicate device.ESP on
// the remapped circuit exactly, so the result is bit-identical to
// materializing the circuit and rescoring it.
func (rp *replacer) score(mono []int) float64 {
	c := rp.c
	esp := 1.0
	for _, op := range rp.ops {
		switch op.kind {
		case opSQ:
			esp *= c.sqSucc[mono[op.a]]
		case opMeas:
			esp *= c.measSucc[mono[op.a]]
		case opCX:
			esp *= c.cxSucc[mono[op.a]][mono[op.b]]
		default:
			s := c.cxSucc[mono[op.a]][mono[op.b]]
			esp *= s * s * s
		}
	}
	return esp
}

// layoutOf builds the candidate's initial layout (logical -> physical).
func (rp *replacer) layoutOf(mono []int) []int {
	out := make([]int, len(rp.base.InitialLayout))
	if rp.allUsed {
		for i, j := range rp.layoutIdx {
			out[i] = mono[j]
		}
		return out
	}
	vm := identityExtend(rp.used, mono, rp.c.devN)
	for i, p := range rp.base.InitialLayout {
		if p >= 0 {
			out[i] = vm[p]
		} else {
			out[i] = -1
		}
	}
	return out
}

func (rp *replacer) makeCandidate(mono []int) *candidate {
	m := append([]int(nil), mono...)
	var set qmask
	for _, q := range m {
		set.Add(q)
	}
	layout := rp.layoutOf(m)
	return &candidate{
		esp:    rp.score(m),
		layout: layout,
		lkey:   hashInts(layout),
		set:    set,
		skey:   maskHash(set),
		mono:   m,
	}
}

// runShard enumerates the subtree rooted at the given first-level VF2
// candidate. A non-nil thr enables ESP branch-and-bound: subtrees whose
// best-case completion falls below the shared threshold (minus the bbEps
// rounding margin) are discarded. The threshold only ever rises and
// pruning is strict, so every candidate that could win the deterministic
// (ESP desc, layout asc, emission order) ranking survives in every run,
// even though the exact survivor set depends on worker timing.
func (rp *replacer) runShard(first int, thr *atomicFloat) []*candidate {
	var out []*candidate
	h := graph.Hooks{Emit: func(m []int) bool {
		cd := rp.makeCandidate(m)
		if thr != nil {
			thr.raise(cd.esp)
		}
		out = append(out, cd)
		return len(out) >= enumLimit
	}}
	if thr != nil {
		stack := make([]float64, len(rp.search.Order())+1)
		stack[0] = 1
		mono := make([]int, len(rp.used))
		for i := range mono {
			mono[i] = -1
		}
		h.Assign = func(d, pv, tv int) bool {
			mono[pv] = tv
			p := stack[d]
			for _, op := range rp.opsAt[d] {
				switch op.kind {
				case opSQ:
					p *= rp.c.sqSucc[mono[op.a]]
				case opMeas:
					p *= rp.c.measSucc[mono[op.a]]
				case opCX:
					p *= rp.c.cxSucc[mono[op.a]][mono[op.b]]
				default:
					s := rp.c.cxSucc[mono[op.a]][mono[op.b]]
					p *= s * s * s
				}
			}
			stack[d+1] = p
			if p*rp.espSuffix[d+1] < thr.load()*(1-bbEps) {
				mono[pv] = -1
				return false
			}
			return true
		}
		h.Unassign = func(d, pv, tv int) { mono[pv] = -1 }
	}
	r := rp.search.NewRunner(h)
	r.RunFrom(first)
	return out
}

// enumerate runs the sharded search across the compute pool and merges
// shard outputs in ascending first-candidate order — the serial
// enumeration order — truncated to enumLimit.
func (rp *replacer) enumerate(thr *atomicFloat) []*candidate {
	n := rp.c.devN
	shards := make([][]*candidate, n)
	pool.Each(n, func(first int) {
		shards[first] = rp.runShard(first, thr)
	})
	var out []*candidate
	for _, s := range shards {
		out = append(out, s...)
		if len(out) >= enumLimit {
			out = out[:enumLimit]
			break
		}
	}
	return out
}

// materialize clones the base circuit under the candidate's relabeling
// (or replays the dry routing pass for alternative placements).
func (rp *replacer) materialize(cd *candidate) *Executable {
	if cd.alt != nil {
		return cd.alt.exe()
	}
	vm := identityExtend(rp.used, cd.mono, rp.c.devN)
	return &Executable{
		Circuit:       rp.base.Circuit.Remap(vm, rp.c.devN),
		InitialLayout: cd.layout,
		FinalLayout:   applyMap(rp.base.FinalLayout, vm),
		ESP:           cd.esp,
		Swaps:         rp.base.Swaps,
	}
}

func candFromAlt(devN int, a *altPlacement) *candidate {
	set := a.usedMask(devN)
	return &candidate{
		esp:    a.res.esp,
		layout: a.layout,
		lkey:   hashInts(a.layout),
		set:    set,
		skey:   maskHash(set),
		alt:    a,
	}
}

// sortCandidates stably orders by ESP descending, then initial layout
// ascending.
func sortCandidates(cs []*candidate) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].esp != cs[j].esp {
			return cs[i].esp > cs[j].esp
		}
		return lexLess(cs[i].layout, cs[j].layout)
	})
}

// splitBySet partitions a sorted candidate list into the best placement
// per physical qubit set (distinct) and the remaining same-set variants
// (dupes). Placements on *distinct physical qubit sets* come first in the
// pool: permutations of one qubit subset have identical ESP but make
// near-identical mistakes, which is exactly the correlation EDM exists to
// avoid.
func splitBySet(cs []*candidate) (distinct, dupes []*candidate) {
	seen := make(map[uint64]bool, len(cs))
	for _, cd := range cs {
		if seen[cd.skey] {
			dupes = append(dupes, cd)
			continue
		}
		seen[cd.skey] = true
		distinct = append(distinct, cd)
	}
	return distinct, dupes
}

// dedupeByLayout removes candidates whose initial layouts coincide,
// keeping the first (pool order is significance order).
func dedupeByLayout(cs []*candidate) []*candidate {
	seen := make(map[uint64]bool, len(cs))
	out := cs[:0:0]
	for _, cd := range cs {
		if seen[cd.lkey] {
			continue
		}
		seen[cd.lkey] = true
		out = append(out, cd)
	}
	return out
}

// TopK builds the ensemble of diverse mappings (paper Section 5.2).
//
// The candidate pool contains (a) every isomorphic transfer of the
// compiled baseline onto the coupling graph (VF2) and (b) independently
// re-compiled placements from every greedy seed — the paper's step 3
// re-compiles the program per initial mapping, which lets members differ
// not just in which physical qubits they use but in their routing
// geometry (and therefore in *which* systematic mistakes they make).
//
// Candidates are ranked by ESP and selected greedily under a diversity
// constraint: a candidate may share at most half of its qubits with every
// already-selected member (the paper reports its ensemble members shared
// only two or three qubits out of seven). The cap is relaxed one qubit at
// a time if the device cannot supply k members under it. Element 0 is
// always the single best mapping — the paper's baseline.
//
// The pipeline is deterministic: results are bit-identical across runs
// and worker counts. On a CachedCompiler the ranked candidate pool is
// built once per circuit fingerprint and shared across every k
// (selection re-runs per k, so each k's members match an uncached call
// exactly), and the returned executables are shared immutable values —
// callers must not mutate them.
func (c *Compiler) TopK(logical *circuit.Circuit, k int) ([]*Executable, error) {
	if err := c.widthErr(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("mapper: k must be positive")
	}
	if k == 1 {
		if c.ens != nil {
			be := c.ens.best.Get(circuitKey(logical), func() *bestEntry {
				exes, err := c.buildSingleBest(logical)
				return &bestEntry{exes: exes, err: err}
			})
			return be.exes, be.err
		}
		return c.buildSingleBest(logical)
	}
	if c.ens != nil {
		pe := c.ens.pools.Get(circuitKey(logical), func() *poolEntry {
			return c.buildPool(logical)
		})
		return pe.topK(k)
	}
	return c.buildPool(logical).topK(k)
}

// buildPool runs the full candidate pipeline for one circuit: compile,
// VF2 enumeration, greedy alternative placements, dedupe and ranking.
// The result is everything TopK needs for any k >= 2. Errors are carried
// in the entry so a cached failure replays deterministically. The
// compile stage is inlined (validate, place, dry-route, replay) so the
// entry can retain the intermediates incremental recompilation needs.
func (c *Compiler) buildPool(logical *circuit.Circuit) *poolEntry {
	if err := c.widthErr(); err != nil {
		return &poolEntry{err: err}
	}
	if err := logical.Validate(); err != nil {
		return &poolEntry{err: err}
	}
	if logical.NumQubits > c.devN {
		return &poolEntry{err: fmt.Errorf("mapper: program needs %d qubits, device has %d", logical.NumQubits, c.devN)}
	}
	seed, err := c.place(logical)
	if err != nil {
		return &poolEntry{err: err}
	}
	prog := progOf(logical)
	baseLayout, baseRes, err := c.routeDry(prog, seed)
	if err != nil {
		return &poolEntry{err: err}
	}
	base := c.replay(prog, baseLayout, baseRes)
	rp := c.newReplacer(base)
	cands := rp.enumerate(nil)
	if len(cands) == 0 {
		return &poolEntry{err: fmt.Errorf("mapper: no isomorphic placement found (internal error: the base placement itself should match)")}
	}
	raw := append([]*candidate(nil), cands...)
	sortCandidates(cands)
	distinct, dupes := splitBySet(cands)
	cpool := append(distinct, dupes...)
	alts, _, err := c.alternativePlacements(prog)
	if err != nil {
		return &poolEntry{err: err}
	}
	for _, a := range alts {
		cpool = append(cpool, candFromAlt(c.devN, a))
	}
	cpool = dedupeByLayout(cpool)
	sortCandidates(cpool)
	return &poolEntry{
		rp: rp, cpool: cpool, raw: raw, prog: prog,
		seed: seed, baseLayout: baseLayout, baseRes: baseRes,
		exes: make(map[*candidate]*Executable),
	}
}

// buildSingleBest is TopK for k = 1, the per-round baseline policy and
// the hottest compile path in the experiment campaign. Selecting one
// member is a pure argmax, so the isomorphic enumeration runs under ESP
// branch-and-bound: the threshold is seeded with the best re-compiled
// placement and rises as better transfers are found, discarding most of
// the search tree. Pruning is strict (ties survive), so the winner —
// including its deterministic tie-breaks — matches what the full pool
// would have produced. It stays a separate cache entry from the k >= 2
// pool: the pruned enumeration yields a different (smaller) candidate
// set, and serving k = 1 from the pool's head would couple the baseline
// result to whether an EDM policy ran first.
func (c *Compiler) buildSingleBest(logical *circuit.Circuit) ([]*Executable, error) {
	base, err := c.Compile(logical)
	if err != nil {
		return nil, err
	}
	alts, _, err := c.alternativePlacements(progOf(logical))
	if err != nil {
		return nil, err
	}
	var thr atomicFloat
	for _, a := range alts {
		thr.raise(a.res.esp)
	}
	rp := c.newReplacer(base)
	cands := rp.enumerate(&thr)
	sortCandidates(cands)
	distinct, dupes := splitBySet(cands)
	cpool := append(distinct, dupes...)
	for _, a := range alts {
		cpool = append(cpool, candFromAlt(c.devN, a))
	}
	if len(cpool) == 0 {
		return nil, fmt.Errorf("mapper: no isomorphic placement found (internal error: the base placement itself should match)")
	}
	cpool = dedupeByLayout(cpool)
	sortCandidates(cpool)
	sel := selectDiverse(cpool, 1)
	out := make([]*Executable, len(sel))
	for i, cd := range sel {
		out[i] = rp.materialize(cd)
	}
	return out, nil
}

// Placements compiles the program and returns every distinct-subset
// placement (one executable per physical qubit set, the best of its set)
// in descending ESP order. max > 0 truncates the list. Fig8-style
// analyses use this to sample mappings across the full reliability range.
func (c *Compiler) Placements(logical *circuit.Circuit, max int) ([]*Executable, error) {
	base, err := c.Compile(logical)
	if err != nil {
		return nil, err
	}
	rp := c.newReplacer(base)
	cands := rp.enumerate(nil)
	if len(cands) == 0 {
		return nil, fmt.Errorf("mapper: no isomorphic placement found (internal error: the base placement itself should match)")
	}
	sortCandidates(cands)
	distinct, _ := splitBySet(cands)
	if max > 0 && max < len(distinct) {
		distinct = distinct[:max]
	}
	out := make([]*Executable, len(distinct))
	for i, cd := range distinct {
		out[i] = rp.materialize(cd)
	}
	return out, nil
}

// alternativePlacements re-compiles the program from every greedy seed,
// yielding placements with genuinely different routing geometry. Distinct
// seeds frequently settle on the same greedy layout, so layouts are
// deduplicated before routing and each unique layout is routed once,
// concurrently across the compute pool; the output lists unique layouts in
// first-seed order — exactly what survived the downstream layout dedupe
// when every seed was routed independently.
//
// Impossible seeds (a seed qubit whose component cannot host the
// interacting core) are skipped, and the skip count is returned so
// callers can see how much of the device contributed nothing. When every
// seed fails — a disconnected coupling graph none of whose components fit
// the program — an error is returned instead of quietly degrading the
// TopK pool to embedding-only candidates.
func (c *Compiler) alternativePlacements(prog *routeProg) ([]*altPlacement, int, error) {
	logical := prog.src
	edges := logical.InteractionGraph()
	iw := interactionWeights(logical.NumQubits, edges)
	deg := make([]int, logical.NumQubits)
	for _, e := range edges {
		deg[e.A] += e.Count
		deg[e.B] += e.Count
	}
	measures := make([]int, logical.NumQubits)
	for _, op := range logical.Ops {
		if op.Kind == circuit.Measure {
			measures[op.Qubits[0]]++
		}
	}
	order := placeOrder(logical.NumQubits, edges, deg)

	layouts := make([][]int, c.devN)
	pool.Each(c.devN, func(seed int) {
		if layout, cost := c.placeFrom(order, iw, measures, seed, logical.NumQubits); layout != nil && !math.IsInf(cost, 1) {
			layouts[seed] = layout
		}
	})
	uniqIdx := make([]int, c.devN) // seed -> index into uniq, -1 if unplaceable
	idxOf := make(map[uint64]int)
	var uniq [][]int
	for seed, layout := range layouts {
		uniqIdx[seed] = -1
		if layout == nil {
			continue
		}
		k := hashInts(layout)
		j, ok := idxOf[k]
		if !ok {
			j = len(uniq)
			idxOf[k] = j
			uniq = append(uniq, layout)
		}
		uniqIdx[seed] = j
	}
	routed := make([]*altPlacement, len(uniq))
	pool.Each(len(uniq), func(i int) {
		if bl, res, err := c.routeDry(prog, uniq[i]); err == nil {
			routed[i] = &altPlacement{c: c, prog: prog, layout: bl, res: res}
		}
	})
	var out []*altPlacement
	routedSeeds := 0
	emitted := make([]bool, len(uniq))
	for seed := 0; seed < c.devN; seed++ {
		j := uniqIdx[seed]
		if j < 0 || routed[j] == nil {
			continue
		}
		routedSeeds++
		if !emitted[j] {
			emitted[j] = true
			out = append(out, routed[j])
		}
	}
	skipped := c.devN - routedSeeds
	if len(out) == 0 {
		return nil, skipped, fmt.Errorf(
			"mapper: alternative placements: all %d greedy seeds failed to place the %d-qubit program (coupling graph has %d connected components)",
			c.devN, logical.NumQubits, len(c.g.Components()))
	}
	return out, skipped, nil
}

// selectDiverse picks k members from the ESP-sorted pool under two
// constraints drawn from the paper: every member must stay within an ESP
// slack of the best mapping ("all the mappings used were within 10% of
// the ESP of best mapping", Section 3.2), and a new member may share at
// most maxShared qubits with every already-picked member (the paper's
// members shared only two or three qubits). The overlap cap starts at
// half the footprint and relaxes first; if still short, the ESP slack
// widens — mirroring Section 5.5's observation that the number of strong
// diverse placements on a small machine is inherently limited. The
// pool's best candidate is always member 0.
func selectDiverse(cpool []*candidate, k int) []*candidate {
	if len(cpool) == 0 {
		return nil
	}
	footprint := cpool[0].set.Count()
	bestESP := cpool[0].esp
	for _, slack := range []float64{0.15, 0.3, 0.5, 1.0} {
		minESP := bestESP * (1 - slack)
		for maxShared := footprint / 2; maxShared <= footprint; maxShared++ {
			picked := []*candidate{cpool[0]}
			for _, cand := range cpool[1:] {
				if len(picked) == k {
					break
				}
				if cand.esp < minESP {
					continue
				}
				ok := true
				for _, p := range picked {
					if cand.set.Overlap(p.set) > maxShared {
						ok = false
						break
					}
				}
				if ok {
					picked = append(picked, cand)
				}
			}
			if len(picked) == k {
				return picked
			}
			if slack == 1.0 && maxShared == footprint {
				return picked // entire pool exhausted
			}
		}
	}
	return []*candidate{cpool[0]}
}

// usageGraph returns the compacted graph of couplings the executable's
// two-qubit gates actually use, plus the compact-index -> physical-qubit
// slice.
func usageGraph(exe *Executable) (*graph.Graph, []int) {
	used := exe.UsedQubits()
	idx := make(map[int]int, len(used))
	for i, q := range used {
		idx[q] = i
	}
	g := graph.New(len(used))
	for _, op := range exe.Circuit.Ops {
		if op.Kind.IsTwoQubit() {
			g.AddEdge(idx[op.Qubits[0]], idx[op.Qubits[1]])
		}
	}
	return g, used
}

// identityExtend builds a full device-sized vertex map sending used[i] to
// mono[i] and filling the remaining physical qubits injectively.
func identityExtend(used []int, mono []int, devN int) []int {
	out := make([]int, devN)
	taken := make([]bool, devN)
	for i := range out {
		out[i] = -1
	}
	for i, q := range used {
		out[q] = mono[i]
		taken[mono[i]] = true
	}
	free := 0
	for q := 0; q < devN; q++ {
		if out[q] != -1 {
			continue
		}
		for taken[free] {
			free++
		}
		out[q] = free
		taken[free] = true
	}
	return out
}

func applyMap(layout, vertexMap []int) []int {
	out := make([]int, len(layout))
	for i, p := range layout {
		if p >= 0 {
			out[i] = vertexMap[p]
		} else {
			out[i] = -1
		}
	}
	return out
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
