// Package mapper is the variation-aware quantum compiler: it assigns
// program qubits to physical qubits and routes two-qubit gates with SWAP
// insertion, using the device calibration to prefer reliable qubits and
// links (the qubit-allocation baseline of paper Sections 2.3-2.4, in the
// family of the A*/reliability-heuristic mappers the paper builds on).
//
// It also implements step 2 of EDM: TopK builds a candidate pool from
// every isomorphic placement of the compiled baseline (VF2 over the
// coupling graph) plus independently re-compiled placements, ranks the
// pool by ESP, and selects the ensemble greedily under the paper's two
// member criteria — ESP within a slack of the best mapping (Section 3.2)
// and limited qubit overlap between members (Section 6.1). Quality
// relaxes last: the paper warns that buying diversity with lower-ESP
// mappings at compile time is risky.
package mapper

import (
	"fmt"
	"math"
	"sort"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/graph"
)

// Executable is a compiled physical circuit together with its mapping
// metadata.
type Executable struct {
	// Circuit is the physical circuit: qubit indices are device qubits and
	// every two-qubit gate respects the coupling map.
	Circuit *circuit.Circuit
	// InitialLayout maps logical qubit -> physical qubit at program start.
	InitialLayout []int
	// FinalLayout maps logical qubit -> physical qubit after all routing
	// SWAPs.
	FinalLayout []int
	// ESP is the Estimated Success Probability under the compile-time
	// calibration (paper Section 2.4).
	ESP float64
	// Swaps is the number of SWAP operations the router inserted.
	Swaps int
}

// UsedQubits returns the physical qubits the executable touches.
func (e *Executable) UsedQubits() []int { return e.Circuit.UsedQubits() }

// Compiler holds the compile-time calibration. Note that the machine's
// behaviour at run time may have drifted away from this data — the gap the
// paper discusses in Section 5.3.
type Compiler struct {
	cal *device.Calibration
	// edgeCost[e] = -log(1 - CXErr[e]); the additive routing metric.
	edgeCost map[device.Edge]float64
	// pathCost[a][b] = cheapest -log reliability of moving between a and b.
	pathCost [][]float64
	// pathNext[a][b] = next hop from a on the cheapest path to b.
	pathNext [][]int
}

// NewCompiler builds a compiler for the calibration, precomputing
// reliability-weighted all-pairs shortest paths over the coupling graph.
func NewCompiler(cal *device.Calibration) *Compiler {
	if err := cal.Validate(); err != nil {
		panic(fmt.Sprintf("mapper: invalid calibration: %v", err))
	}
	c := &Compiler{cal: cal, edgeCost: make(map[device.Edge]float64)}
	for _, e := range cal.Topo.Edges() {
		c.edgeCost[e] = costOf(cal.CXErr[e])
	}
	c.computeAllPairs()
	return c
}

// Calibration returns the compile-time calibration.
func (c *Compiler) Calibration() *device.Calibration { return c.cal }

// costOf converts an error probability into an additive cost. Errors of 1
// (or more) map to a large finite cost so the router still terminates.
func costOf(errRate float64) float64 {
	if errRate >= 1 {
		return 50
	}
	return -math.Log(1 - errRate)
}

// computeAllPairs runs Dijkstra from every vertex with SWAP-cost weights:
// traversing an edge costs three CX on that edge (a SWAP decomposes into
// three CX), so the metric is 3 * -log(1 - CXErr).
func (c *Compiler) computeAllPairs() {
	n := c.cal.Topo.Qubits
	g := c.cal.Topo.Graph()
	c.pathCost = make([][]float64, n)
	c.pathNext = make([][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]float64, n)
		prev := make([]int, n)
		done := make([]bool, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prev[i] = -1
		}
		dist[src] = 0
		for {
			u, best := -1, math.Inf(1)
			for v := 0; v < n; v++ {
				if !done[v] && dist[v] < best {
					u, best = v, dist[v]
				}
			}
			if u == -1 {
				break
			}
			done[u] = true
			for _, v := range g.Neighbors(u) {
				w := 3 * c.edgeCost[device.NewEdge(u, v)]
				if dist[u]+w < dist[v] {
					dist[v] = dist[u] + w
					prev[v] = u
				}
			}
		}
		c.pathCost[src] = dist
		// next hop: walk prev chains backwards.
		next := make([]int, n)
		for dst := 0; dst < n; dst++ {
			if dst == src || prev[dst] == -1 {
				next[dst] = -1
				continue
			}
			v := dst
			for prev[v] != src {
				v = prev[v]
			}
			next[dst] = v
		}
		c.pathNext[src] = next
	}
}

// pathBetween returns the cheapest path src..dst inclusive, or nil.
func (c *Compiler) pathBetween(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if c.pathNext[src][dst] == -1 {
		return nil
	}
	path := []int{src}
	for v := src; v != dst; {
		v = c.pathNext[v][dst]
		path = append(path, v)
	}
	return path
}

// Compile maps the logical circuit onto the device: variation-aware
// initial placement followed by reliability-aware SWAP routing. The
// returned executable acts on the full device register (NumQubits =
// device size) with the program's classical register unchanged, so output
// distributions from differently mapped executables are directly
// comparable.
func (c *Compiler) Compile(logical *circuit.Circuit) (*Executable, error) {
	if err := logical.Validate(); err != nil {
		return nil, err
	}
	if logical.NumQubits > c.cal.Topo.Qubits {
		return nil, fmt.Errorf("mapper: program needs %d qubits, device has %d", logical.NumQubits, c.cal.Topo.Qubits)
	}
	layout, err := c.place(logical)
	if err != nil {
		return nil, err
	}
	return c.route(logical, layout)
}

// CompileWithLayout routes the logical circuit from a caller-supplied
// initial layout (logical qubit -> physical qubit).
func (c *Compiler) CompileWithLayout(logical *circuit.Circuit, layout []int) (*Executable, error) {
	if err := logical.Validate(); err != nil {
		return nil, err
	}
	if len(layout) != logical.NumQubits {
		return nil, fmt.Errorf("mapper: layout has %d entries for %d qubits", len(layout), logical.NumQubits)
	}
	seen := map[int]bool{}
	for lq, p := range layout {
		if p < 0 || p >= c.cal.Topo.Qubits {
			return nil, fmt.Errorf("mapper: layout maps qubit %d to invalid physical qubit %d", lq, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("mapper: layout reuses physical qubit %d", p)
		}
		seen[p] = true
	}
	return c.route(logical, append([]int(nil), layout...))
}

// place chooses the initial layout. If the program's interaction graph
// embeds directly into the coupling graph, the best-ESP embedding is used
// and no SWAPs will ever be needed (the paper's observation that QAOA on
// path graphs maps optimally, Section 5.2); otherwise a greedy
// variation-aware placement minimizes expected routing cost.
func (c *Compiler) place(logical *circuit.Circuit) ([]int, error) {
	if layout := c.placeByEmbedding(logical); layout != nil {
		return layout, nil
	}
	return c.placeGreedy(logical)
}

// placeByEmbedding enumerates monomorphisms of the interaction graph into
// the coupling graph and returns the placement with the lowest total
// error cost, or nil if the interaction graph does not embed. Logical
// qubits with no two-qubit gates are assigned afterwards, preferring
// low-readout-error physical qubits.
func (c *Compiler) placeByEmbedding(logical *circuit.Circuit) []int {
	n := logical.NumQubits
	edges := logical.InteractionGraph()
	if len(edges) == 0 {
		return nil // nothing to embed; greedy handles measurement quality
	}
	// Compact the interacting logical qubits.
	interacting := map[int]bool{}
	for _, e := range edges {
		interacting[e.A] = true
		interacting[e.B] = true
	}
	compact := make([]int, 0, len(interacting))
	for q := 0; q < n; q++ {
		if interacting[q] {
			compact = append(compact, q)
		}
	}
	idx := make(map[int]int, len(compact))
	for i, q := range compact {
		idx[q] = i
	}
	pattern := graph.New(len(compact))
	weight := map[[2]int]int{}
	for _, e := range edges {
		pattern.AddEdge(idx[e.A], idx[e.B])
		weight[key2(idx[e.A], idx[e.B])] = e.Count
	}
	monos := graph.Monomorphisms(pattern, c.cal.Topo.Graph(), enumLimit)
	if len(monos) == 0 {
		return nil
	}
	measures := make([]int, n)
	for _, op := range logical.Ops {
		if op.Kind == circuit.Measure {
			measures[op.Qubits[0]]++
		}
	}
	bestCost := math.Inf(1)
	var best []int
	for _, m := range monos {
		cost := 0.0
		for e, w := range weight {
			cost += float64(w) * c.edgeCost[device.NewEdge(m[e[0]], m[e[1]])]
		}
		for i, q := range compact {
			cost += float64(measures[q]) * costOf(c.cal.MeasErrAvg(m[i]))
		}
		if cost < bestCost {
			bestCost = cost
			best = m
		}
	}
	layout := make([]int, n)
	used := make([]bool, c.cal.Topo.Qubits)
	for i := range layout {
		layout[i] = -1
	}
	for i, q := range compact {
		layout[q] = best[i]
		used[best[i]] = true
	}
	// Place non-interacting qubits on the best free readout qubits.
	for q := 0; q < n; q++ {
		if layout[q] != -1 {
			continue
		}
		bestP, bestM := -1, math.Inf(1)
		for p := 0; p < c.cal.Topo.Qubits; p++ {
			if used[p] {
				continue
			}
			mcost := costOf(c.cal.MeasErrAvg(p)) * float64(measures[q]+1)
			if mcost < bestM {
				bestM, bestP = mcost, p
			}
		}
		if bestP == -1 {
			return nil
		}
		layout[q] = bestP
		used[bestP] = true
	}
	return layout
}

// placeGreedy performs greedy variation-aware initial placement: logical
// qubits are ordered by interaction connectivity, and each is assigned to
// the free physical qubit minimizing routing cost to its already-placed
// partners plus a readout-quality term. Every physical seed is tried for
// the first qubit and the cheapest overall placement wins.
func (c *Compiler) placeGreedy(logical *circuit.Circuit) ([]int, error) {
	n := logical.NumQubits
	edges := logical.InteractionGraph()
	// Interaction counts and measure counts per logical qubit.
	icount := make(map[[2]int]int)
	deg := make([]int, n)
	for _, e := range edges {
		icount[[2]int{e.A, e.B}] = e.Count
		deg[e.A] += e.Count
		deg[e.B] += e.Count
	}
	measures := make([]int, n)
	for _, op := range logical.Ops {
		if op.Kind == circuit.Measure {
			measures[op.Qubits[0]]++
		}
	}
	order := placeOrder(n, edges, deg)

	bestCost := math.Inf(1)
	var bestLayout []int
	for seed := 0; seed < c.cal.Topo.Qubits; seed++ {
		layout, cost := c.placeFrom(order, icount, measures, seed, n)
		if layout != nil && cost < bestCost {
			bestCost = cost
			bestLayout = layout
		}
	}
	if bestLayout == nil {
		return nil, fmt.Errorf("mapper: placement failed (device too small or disconnected)")
	}
	return bestLayout, nil
}

// placeOrder returns logical qubits ordered for placement: descending
// weighted degree, then (for subsequent picks) most connectivity to the
// already-ordered prefix.
func placeOrder(n int, edges []circuit.InteractionEdge, deg []int) []int {
	adj := make([]map[int]int, n)
	for i := range adj {
		adj[i] = map[int]int{}
	}
	for _, e := range edges {
		adj[e.A][e.B] += e.Count
		adj[e.B][e.A] += e.Count
	}
	order := make([]int, 0, n)
	placed := make([]bool, n)
	for len(order) < n {
		best, bestConn, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			conn := 0
			for u, w := range adj[v] {
				if placed[u] {
					conn += w
				}
			}
			if conn > bestConn || (conn == bestConn && deg[v] > bestDeg) ||
				(conn == bestConn && deg[v] == bestDeg && (best == -1 || v < best)) {
				best, bestConn, bestDeg = v, conn, deg[v]
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

// placeFrom runs one greedy placement with the first ordered qubit pinned
// to the given physical seed. It returns (nil, inf) if placement is
// impossible.
func (c *Compiler) placeFrom(order []int, icount map[[2]int]int, measures []int, seed, n int) ([]int, float64) {
	layout := make([]int, n)
	for i := range layout {
		layout[i] = -1
	}
	used := make([]bool, c.cal.Topo.Qubits)
	total := 0.0
	for i, lq := range order {
		var bestP int = -1
		bestCost := math.Inf(1)
		for p := 0; p < c.cal.Topo.Qubits; p++ {
			if used[p] {
				continue
			}
			if i == 0 && p != seed {
				continue
			}
			cost := float64(measures[lq]) * costOf(c.cal.MeasErrAvg(p))
			for other, po := range layout {
				if po < 0 {
					continue
				}
				w := icount[key2(lq, other)]
				if w == 0 {
					continue
				}
				pc := c.pathCost[p][po]
				if math.IsInf(pc, 1) {
					cost = math.Inf(1)
					break
				}
				cost += float64(w) * pc
			}
			if cost < bestCost || (cost == bestCost && bestP >= 0 && p < bestP) {
				bestCost = cost
				bestP = p
			}
		}
		if bestP == -1 || math.IsInf(bestCost, 1) {
			return nil, math.Inf(1)
		}
		layout[lq] = bestP
		used[bestP] = true
		total += bestCost
	}
	return layout, total
}

func key2(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// route inserts SWAPs so every two-qubit gate acts on coupled qubits,
// moving qubits along the reliability-cheapest paths, then computes the
// executable's ESP.
func (c *Compiler) route(logical *circuit.Circuit, layout []int) (*Executable, error) {
	devN := c.cal.Topo.Qubits
	phys := circuit.New(devN, logical.NumClbits)
	phys.Name = logical.Name

	l2p := append([]int(nil), layout...)
	p2l := make([]int, devN)
	for i := range p2l {
		p2l[i] = -1
	}
	for lq, p := range l2p {
		p2l[p] = lq
	}
	swapTo := func(a, b int) { // swap physical qubits a, b
		phys.SWAP(a, b)
		la, lb := p2l[a], p2l[b]
		p2l[a], p2l[b] = lb, la
		if la >= 0 {
			l2p[la] = b
		}
		if lb >= 0 {
			l2p[lb] = a
		}
	}
	swaps := 0
	for i, op := range logical.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			qs := make([]int, len(op.Qubits))
			for j, q := range op.Qubits {
				qs[j] = l2p[q]
			}
			phys.Barrier(qs...)
		case op.Kind == circuit.Measure:
			phys.Measure(l2p[op.Qubits[0]], op.Cbit)
		case op.Kind.IsTwoQubit():
			pa, pb := l2p[op.Qubits[0]], l2p[op.Qubits[1]]
			// A gate on coupled qubits always executes directly: a detour
			// would cost three CX per hop against one direct CX, so even a
			// noisy direct link wins.
			if !c.cal.Topo.HasEdge(pa, pb) {
				path := c.pathBetween(pa, pb)
				if path == nil {
					return nil, fmt.Errorf("mapper: op %d: no route between physical qubits %d and %d", i, pa, pb)
				}
				// Walk operand 0 along the cheapest path until the pair
				// is coupled. (A lookahead router that also considered
				// moving operand 1 was evaluated and produced strictly
				// worse SWAP counts on the Table 1 workloads, so the
				// simple deterministic walk stays.)
				for len(path) > 2 {
					swapTo(path[0], path[1])
					swaps++
					path = path[1:]
				}
			}
			pa, pb = l2p[op.Qubits[0]], l2p[op.Qubits[1]]
			nop := op.Clone()
			nop.Qubits[0], nop.Qubits[1] = pa, pb
			phys.Ops = append(phys.Ops, nop)
		default:
			nop := op.Clone()
			nop.Qubits[0] = l2p[op.Qubits[0]]
			phys.Ops = append(phys.Ops, nop)
		}
	}
	esp, err := device.ESP(phys, c.cal)
	if err != nil {
		return nil, fmt.Errorf("mapper: routed circuit invalid: %w", err)
	}
	return &Executable{
		Circuit:       phys,
		InitialLayout: append([]int(nil), layout...),
		FinalLayout:   l2p,
		ESP:           esp,
		Swaps:         swaps,
	}, nil
}

// usageGraph returns the compacted graph of couplings the executable's
// two-qubit gates actually use, plus the compact-index -> physical-qubit
// slice.
func usageGraph(exe *Executable) (*graph.Graph, []int) {
	used := exe.UsedQubits()
	idx := make(map[int]int, len(used))
	for i, q := range used {
		idx[q] = i
	}
	g := graph.New(len(used))
	for _, op := range exe.Circuit.Ops {
		if op.Kind.IsTwoQubit() {
			g.AddEdge(idx[op.Qubits[0]], idx[op.Qubits[1]])
		}
	}
	return g, used
}

// enumLimit caps the number of isomorphic placements enumerated; the
// 14-qubit devices of interest stay well under it.
const enumLimit = 100000

// TopK builds the ensemble of diverse mappings (paper Section 5.2).
//
// The candidate pool contains (a) every isomorphic transfer of the
// compiled baseline onto the coupling graph (VF2) and (b) independently
// re-compiled placements from every greedy seed — the paper's step 3
// re-compiles the program per initial mapping, which lets members differ
// not just in which physical qubits they use but in their routing
// geometry (and therefore in *which* systematic mistakes they make).
//
// Candidates are ranked by ESP and selected greedily under a diversity
// constraint: a candidate may share at most half of its qubits with every
// already-selected member (the paper reports its ensemble members shared
// only two or three qubits out of seven). The cap is relaxed one qubit at
// a time if the device cannot supply k members under it. Element 0 is
// always the single best mapping — the paper's baseline.
func (c *Compiler) TopK(logical *circuit.Circuit, k int) ([]*Executable, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mapper: k must be positive")
	}
	base, err := c.Compile(logical)
	if err != nil {
		return nil, err
	}
	distinct, dupes, err := c.rankPlacements(base)
	if err != nil {
		return nil, err
	}
	pool := append(distinct, dupes...)
	pool = append(pool, c.alternativePlacements(logical)...)
	pool = dedupeByLayout(pool)
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].ESP != pool[j].ESP {
			return pool[i].ESP > pool[j].ESP
		}
		return lexLess(pool[i].InitialLayout, pool[j].InitialLayout)
	})
	return selectDiverse(pool, k), nil
}

// alternativePlacements re-compiles the program from every greedy seed,
// yielding placements with genuinely different routing geometry. Failures
// (impossible seeds) are skipped.
func (c *Compiler) alternativePlacements(logical *circuit.Circuit) []*Executable {
	edges := logical.InteractionGraph()
	icount := make(map[[2]int]int)
	deg := make([]int, logical.NumQubits)
	for _, e := range edges {
		icount[[2]int{e.A, e.B}] = e.Count
		deg[e.A] += e.Count
		deg[e.B] += e.Count
	}
	measures := make([]int, logical.NumQubits)
	for _, op := range logical.Ops {
		if op.Kind == circuit.Measure {
			measures[op.Qubits[0]]++
		}
	}
	order := placeOrder(logical.NumQubits, edges, deg)
	var out []*Executable
	for seed := 0; seed < c.cal.Topo.Qubits; seed++ {
		layout, cost := c.placeFrom(order, icount, measures, seed, logical.NumQubits)
		if layout == nil || math.IsInf(cost, 1) {
			continue
		}
		exe, err := c.route(logical, layout)
		if err != nil {
			continue
		}
		out = append(out, exe)
	}
	return out
}

// dedupeByLayout removes executables whose initial layouts coincide.
func dedupeByLayout(execs []*Executable) []*Executable {
	seen := map[string]bool{}
	out := execs[:0:0]
	for _, e := range execs {
		key := layoutKey(e.InitialLayout)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

func layoutKey(layout []int) string {
	b := make([]byte, len(layout))
	for i, q := range layout {
		b[i] = byte(q + 1)
	}
	return string(b)
}

// selectDiverse picks k members from the ESP-sorted pool under two
// constraints drawn from the paper: every member must stay within an ESP
// slack of the best mapping ("all the mappings used were within 10% of
// the ESP of best mapping", Section 3.2), and a new member may share at
// most maxShared qubits with every already-picked member (the paper's
// members shared only two or three qubits). The overlap cap starts at
// half the footprint and relaxes first; if still short, the ESP slack
// widens — mirroring Section 5.5's observation that the number of strong
// diverse placements on a small machine is inherently limited. The
// pool's best candidate is always member 0.
func selectDiverse(pool []*Executable, k int) []*Executable {
	if len(pool) == 0 {
		return nil
	}
	footprint := len(pool[0].UsedQubits())
	bestESP := pool[0].ESP
	for _, slack := range []float64{0.15, 0.3, 0.5, 1.0} {
		minESP := bestESP * (1 - slack)
		for maxShared := footprint / 2; maxShared <= footprint; maxShared++ {
			picked := []*Executable{pool[0]}
			sets := []map[int]bool{qubitSet(pool[0])}
			for _, cand := range pool[1:] {
				if len(picked) == k {
					break
				}
				if cand.ESP < minESP {
					continue
				}
				cs := qubitSet(cand)
				ok := true
				for _, s := range sets {
					if overlap(cs, s) > maxShared {
						ok = false
						break
					}
				}
				if ok {
					picked = append(picked, cand)
					sets = append(sets, cs)
				}
			}
			if len(picked) == k {
				return picked
			}
			if slack == 1.0 && maxShared == footprint {
				return picked // entire pool exhausted
			}
		}
	}
	return []*Executable{pool[0]}
}

func qubitSet(e *Executable) map[int]bool {
	s := map[int]bool{}
	for _, q := range e.UsedQubits() {
		s[q] = true
	}
	return s
}

func overlap(a, b map[int]bool) int {
	n := 0
	for q := range a {
		if b[q] {
			n++
		}
	}
	return n
}

// Placements compiles the program and returns every distinct-subset
// placement (one executable per physical qubit set, the best of its set)
// in descending ESP order. max > 0 truncates the list. Fig8-style
// analyses use this to sample mappings across the full reliability range.
func (c *Compiler) Placements(logical *circuit.Circuit, max int) ([]*Executable, error) {
	base, err := c.Compile(logical)
	if err != nil {
		return nil, err
	}
	distinct, _, err := c.rankPlacements(base)
	if err != nil {
		return nil, err
	}
	if max > 0 && max < len(distinct) {
		distinct = distinct[:max]
	}
	return distinct, nil
}

// rankPlacements enumerates all isomorphic re-placements of the base
// executable, ESP-sorted, split into the best executable per physical
// qubit set (distinct) and the remaining same-subset variants (dupes).
func (c *Compiler) rankPlacements(base *Executable) (distinct, dupes []*Executable, err error) {
	ug, used := usageGraph(base)
	monos := graph.Monomorphisms(ug, c.cal.Topo.Graph(), enumLimit)
	if len(monos) == 0 {
		return nil, nil, fmt.Errorf("mapper: no isomorphic placement found (internal error: the base placement itself should match)")
	}
	execs := make([]*Executable, 0, len(monos))
	devN := c.cal.Topo.Qubits
	for _, m := range monos {
		// vertexMap: physical qubit in base -> physical qubit in new
		// placement. Untouched qubits map arbitrarily but injectively.
		vertexMap := identityExtend(used, m, devN)
		nc := base.Circuit.Remap(vertexMap, devN)
		esp, err := device.ESP(nc, c.cal)
		if err != nil {
			return nil, nil, fmt.Errorf("mapper: transferred mapping invalid: %w", err)
		}
		execs = append(execs, &Executable{
			Circuit:       nc,
			InitialLayout: applyMap(base.InitialLayout, vertexMap),
			FinalLayout:   applyMap(base.FinalLayout, vertexMap),
			ESP:           esp,
			Swaps:         base.Swaps,
		})
	}
	sort.SliceStable(execs, func(i, j int) bool {
		if execs[i].ESP != execs[j].ESP {
			return execs[i].ESP > execs[j].ESP
		}
		return lexLess(execs[i].InitialLayout, execs[j].InitialLayout)
	})
	// Prefer placements on *distinct physical qubit sets*: permutations of
	// one qubit subset have identical ESP but make near-identical
	// mistakes, which is exactly the correlation EDM exists to avoid.
	seenSet := map[string]bool{}
	for _, e := range execs {
		key := qubitSetKey(e)
		if seenSet[key] {
			dupes = append(dupes, e)
			continue
		}
		seenSet[key] = true
		distinct = append(distinct, e)
	}
	return distinct, dupes, nil
}

// qubitSetKey fingerprints the physical qubits an executable touches.
func qubitSetKey(e *Executable) string {
	used := e.UsedQubits()
	b := make([]byte, len(used))
	for i, q := range used {
		b[i] = byte(q)
	}
	return string(b)
}

// identityExtend builds a full device-sized vertex map sending used[i] to
// mono[i] and filling the remaining physical qubits injectively.
func identityExtend(used []int, mono []int, devN int) []int {
	out := make([]int, devN)
	taken := make([]bool, devN)
	for i := range out {
		out[i] = -1
	}
	for i, q := range used {
		out[q] = mono[i]
		taken[mono[i]] = true
	}
	free := 0
	for q := 0; q < devN; q++ {
		if out[q] != -1 {
			continue
		}
		for taken[free] {
			free++
		}
		out[q] = free
		taken[free] = true
	}
	return out
}

func applyMap(layout, vertexMap []int) []int {
	out := make([]int, len(layout))
	for i, p := range layout {
		if p >= 0 {
			out[i] = vertexMap[p]
		} else {
			out[i] = -1
		}
	}
	return out
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
