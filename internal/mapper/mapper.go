// Package mapper is the variation-aware quantum compiler: it assigns
// program qubits to physical qubits and routes two-qubit gates with SWAP
// insertion, using the device calibration to prefer reliable qubits and
// links (the qubit-allocation baseline of paper Sections 2.3-2.4, in the
// family of the A*/reliability-heuristic mappers the paper builds on).
//
// It also implements step 2 of EDM: TopK builds a candidate pool from
// every isomorphic placement of the compiled baseline (VF2 over the
// coupling graph) plus independently re-compiled placements, ranks the
// pool by ESP, and selects the ensemble greedily under the paper's two
// member criteria — ESP within a slack of the best mapping (Section 3.2)
// and limited qubit overlap between members (Section 6.1). Quality
// relaxes last: the paper warns that buying diversity with lower-ESP
// mappings at compile time is risky.
//
// The candidate pipeline is streaming: placements are scored as the VF2
// search emits them (topk.go), sharded across the compute-token pool, and
// only the selected ensemble members are materialized into circuits.
package mapper

import (
	"fmt"
	"math"

	"edm/internal/bitset"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/graph"
)

// Executable is a compiled physical circuit together with its mapping
// metadata.
type Executable struct {
	// Circuit is the physical circuit: qubit indices are device qubits and
	// every two-qubit gate respects the coupling map.
	Circuit *circuit.Circuit
	// InitialLayout maps logical qubit -> physical qubit at program start.
	InitialLayout []int
	// FinalLayout maps logical qubit -> physical qubit after all routing
	// SWAPs.
	FinalLayout []int
	// ESP is the Estimated Success Probability under the compile-time
	// calibration (paper Section 2.4).
	ESP float64
	// Swaps is the number of SWAP operations the router inserted.
	Swaps int
}

// UsedQubits returns the physical qubits the executable touches.
func (e *Executable) UsedQubits() []int { return e.Circuit.UsedQubits() }

// Compiler holds the compile-time calibration. Note that the machine's
// behaviour at run time may have drifted away from this data — the gap the
// paper discusses in Section 5.3. A Compiler is immutable after
// construction and safe for concurrent use.
type Compiler struct {
	cal  *device.Calibration
	g    *graph.Graph // coupling graph (shared with the topology)
	devN int

	// Dense per-qubit and per-link tables, indexed by physical qubit.
	// Dense lookups replace the map[Edge]float64 of earlier versions: the
	// candidate pipeline reads them millions of times per TopK call.
	sqSucc   []float64   // 1 - SQErr[q]
	measSucc []float64   // 1 - MeasErrAvg(q)
	measCost []float64   // costOf(MeasErrAvg(q))
	cxSucc   [][]float64 // 1 - CXErr on coupled pairs, 0 elsewhere
	cxCost   [][]float64 // costOf(CXErr) on coupled pairs, +Inf elsewhere

	// Device-wide extrema, the ingredients of branch-and-bound bounds: no
	// completion of a partial placement can beat the best per-op factor.
	maxSQSucc   float64
	maxMeasSucc float64
	maxCXSucc   float64
	minMeasCost float64
	minEdgeCost float64

	// pathCost[a][b] = cheapest -log reliability of moving between a and b.
	pathCost [][]float64
	// pathNext[a][b] = next hop from a on the cheapest path to b.
	pathNext [][]int
	// iCost[a][b] = cxCost[a][b] on coupled pairs, else pathCost[a][b]: the
	// router's interaction-distance metric as one fused lookup (router.go
	// reads it in the innermost swap-scoring loop).
	iCost [][]float64
	// adj[q] is the sorted neighbor list of q, cached once so the router's
	// swap-candidate scans allocate nothing.
	adj [][]int

	// ens memoizes TopK ensembles per circuit fingerprint. nil on
	// compilers built with NewCompiler (every call recomputes, the
	// behaviour the frozen benchmarks measure); CachedCompiler attaches
	// one. See cache.go.
	ens *ensembleCache
}

// NewCompiler builds a compiler for the calibration, precomputing
// reliability-weighted all-pairs shortest paths over the coupling graph.
// The calibration must not be mutated afterwards.
func NewCompiler(cal *device.Calibration) *Compiler {
	if err := cal.Validate(); err != nil {
		panic(fmt.Sprintf("mapper: invalid calibration: %v", err))
	}
	n := cal.Topo.Qubits
	c := &Compiler{
		cal:      cal,
		g:        cal.Topo.Graph(),
		devN:     n,
		sqSucc:   make([]float64, n),
		measSucc: make([]float64, n),
		measCost: make([]float64, n),
		cxSucc:   make([][]float64, n),
		cxCost:   make([][]float64, n),
	}
	c.maxSQSucc, c.maxMeasSucc, c.minMeasCost = 0, 0, math.Inf(1)
	for q := 0; q < n; q++ {
		c.sqSucc[q] = 1 - cal.SQErr[q]
		c.measSucc[q] = 1 - cal.MeasErrAvg(q)
		c.measCost[q] = costOf(cal.MeasErrAvg(q))
		c.maxSQSucc = math.Max(c.maxSQSucc, c.sqSucc[q])
		c.maxMeasSucc = math.Max(c.maxMeasSucc, c.measSucc[q])
		c.minMeasCost = math.Min(c.minMeasCost, c.measCost[q])
		c.cxSucc[q] = make([]float64, n)
		c.cxCost[q] = make([]float64, n)
		for p := 0; p < n; p++ {
			c.cxCost[q][p] = math.Inf(1)
		}
	}
	c.maxCXSucc, c.minEdgeCost = 0, math.Inf(1)
	for _, e := range cal.Topo.Edges() {
		s := 1 - cal.CXErr[e]
		w := costOf(cal.CXErr[e])
		c.cxSucc[e.A][e.B], c.cxSucc[e.B][e.A] = s, s
		c.cxCost[e.A][e.B], c.cxCost[e.B][e.A] = w, w
		c.maxCXSucc = math.Max(c.maxCXSucc, s)
		c.minEdgeCost = math.Min(c.minEdgeCost, w)
	}
	c.adj = make([][]int, n)
	for q := 0; q < n; q++ {
		c.adj[q] = c.g.Neighbors(q)
	}
	c.computeAllPairs()
	c.iCost = make([][]float64, n)
	for a := 0; a < n; a++ {
		c.iCost[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			if w := c.cxCost[a][b]; !math.IsInf(w, 1) {
				c.iCost[a][b] = w
			} else {
				c.iCost[a][b] = c.pathCost[a][b]
			}
		}
	}
	return c
}

// Calibration returns the compile-time calibration.
func (c *Compiler) Calibration() *device.Calibration { return c.cal }

// costOf converts an error probability into an additive cost. Errors of 1
// (or more) map to a large finite cost so the router still terminates.
func costOf(errRate float64) float64 {
	if errRate >= 1 {
		return 50
	}
	return -math.Log(1 - errRate)
}

// pqItem is a pending (distance, vertex) pair in the Dijkstra heap.
type pqItem struct {
	d float64
	v int
}

// pqLess orders the heap by distance, ties by vertex id — the same
// extraction order as a linear scan that picks the lowest-index minimum,
// so the computed next-hop chains are identical to the O(n^2) scan this
// replaced.
func pqLess(a, b pqItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.v < b.v
}

type pqueue []pqItem

func (pq *pqueue) push(it pqItem) {
	*pq = append(*pq, it)
	i := len(*pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pqLess((*pq)[i], (*pq)[p]) {
			break
		}
		(*pq)[i], (*pq)[p] = (*pq)[p], (*pq)[i]
		i = p
	}
}

func (pq *pqueue) pop() pqItem {
	q := *pq
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && pqLess(q[l], q[m]) {
			m = l
		}
		if r < len(q) && pqLess(q[r], q[m]) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*pq = q
	return top
}

// computeAllPairs runs heap-based Dijkstra from every vertex with
// SWAP-cost weights: traversing an edge costs three CX on that edge (a
// SWAP decomposes into three CX), so the metric is 3 * -log(1 - CXErr).
func (c *Compiler) computeAllPairs() {
	n := c.devN
	c.pathCost = make([][]float64, n)
	c.pathNext = make([][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]float64, n)
		prev := make([]int, n)
		done := make([]bool, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prev[i] = -1
		}
		dist[src] = 0
		pq := make(pqueue, 0, n)
		pq.push(pqItem{0, src})
		for len(pq) > 0 {
			it := pq.pop()
			u := it.v
			if done[u] || it.d > dist[u] {
				continue
			}
			done[u] = true
			for _, v := range c.g.Neighbors(u) {
				w := 3 * c.cxCost[u][v]
				if dist[u]+w < dist[v] {
					dist[v] = dist[u] + w
					prev[v] = u
					pq.push(pqItem{dist[v], v})
				}
			}
		}
		c.pathCost[src] = dist
		// next hop: walk prev chains backwards.
		next := make([]int, n)
		for dst := 0; dst < n; dst++ {
			if dst == src || prev[dst] == -1 {
				next[dst] = -1
				continue
			}
			v := dst
			for prev[v] != src {
				v = prev[v]
			}
			next[dst] = v
		}
		c.pathNext[src] = next
	}
}

// pathBetween returns the cheapest path src..dst inclusive, or nil.
func (c *Compiler) pathBetween(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if c.pathNext[src][dst] == -1 {
		return nil
	}
	path := []int{src}
	for v := src; v != dst; {
		v = c.pathNext[v][dst]
		path = append(path, v)
	}
	return path
}

// widthErr rejects devices wider than the inline qmask footprints can
// index. Every public compile entry checks it, so a too-wide device is
// an explicit error — never a silently truncated footprint mask.
func (c *Compiler) widthErr() error {
	if c.devN > bitset.Cap {
		return fmt.Errorf("mapper: %d-qubit device exceeds the %d-qubit footprint width: %w",
			c.devN, bitset.Cap, device.ErrDeviceTooWide)
	}
	return nil
}

// Compile maps the logical circuit onto the device: variation-aware
// initial placement followed by reliability-aware SWAP routing. The
// returned executable acts on the full device register (NumQubits =
// device size) with the program's classical register unchanged, so output
// distributions from differently mapped executables are directly
// comparable.
func (c *Compiler) Compile(logical *circuit.Circuit) (*Executable, error) {
	if err := c.widthErr(); err != nil {
		return nil, err
	}
	if err := logical.Validate(); err != nil {
		return nil, err
	}
	if logical.NumQubits > c.devN {
		return nil, fmt.Errorf("mapper: program needs %d qubits, device has %d", logical.NumQubits, c.devN)
	}
	layout, err := c.place(logical)
	if err != nil {
		return nil, err
	}
	return c.route(logical, layout)
}

// CompileWithLayout routes the logical circuit from a caller-supplied
// initial layout (logical qubit -> physical qubit). The pinned layout is
// honored exactly: the returned executable's InitialLayout equals layout
// even when the bidirectional re-router would prefer a different seat, so
// callers coordinating layouts across programs (or reproducing a published
// mapping) get what they asked for. Routing still uses the lookahead
// router for the SWAPs themselves.
func (c *Compiler) CompileWithLayout(logical *circuit.Circuit, layout []int) (*Executable, error) {
	if err := c.widthErr(); err != nil {
		return nil, err
	}
	if err := logical.Validate(); err != nil {
		return nil, err
	}
	if len(layout) != logical.NumQubits {
		return nil, fmt.Errorf("mapper: layout has %d entries for %d qubits", len(layout), logical.NumQubits)
	}
	seen := make([]bool, c.devN)
	for lq, p := range layout {
		if p < 0 || p >= c.devN {
			return nil, fmt.Errorf("mapper: layout maps qubit %d to invalid physical qubit %d", lq, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("mapper: layout reuses physical qubit %d", p)
		}
		seen[p] = true
	}
	return c.routePinned(logical, append([]int(nil), layout...))
}

// place chooses the initial layout. If the program's interaction graph
// embeds directly into the coupling graph, the best-ESP embedding is used
// and no SWAPs will ever be needed (the paper's observation that QAOA on
// path graphs maps optimally, Section 5.2); otherwise a greedy
// variation-aware placement minimizes expected routing cost.
func (c *Compiler) place(logical *circuit.Circuit) ([]int, error) {
	if layout := c.placeByEmbedding(logical); layout != nil {
		return layout, nil
	}
	return c.placeGreedy(logical)
}

// bbEps is the relative safety margin applied to branch-and-bound
// thresholds. Bound products and incremental sums accumulate factors in a
// different order than the final scoring pass, so the two can disagree by
// a few ulps; the margin makes pruning strictly conservative — a subtree
// whose bound ties the incumbent within the margin is still explored, so
// pruning never changes which candidate wins a deterministic tie-break.
const bbEps = 1e-9

// placeByEmbedding searches the monomorphisms of the interaction graph
// into the coupling graph for the placement with the lowest total error
// cost, or returns nil if the interaction graph does not embed. The
// search is branch-and-bound: a partial assignment is abandoned as soon
// as its accumulated cost plus a best-case bound on the unassigned
// remainder exceeds the incumbent. Costs accumulate in a fixed order
// (match-order depth, then interaction-edge order), so the chosen
// placement is deterministic — unlike the earlier implementation, which
// summed edge costs in map-iteration order and could flip near-ties
// between runs. Logical qubits with no two-qubit gates are assigned
// afterwards, preferring low-readout-error physical qubits.
func (c *Compiler) placeByEmbedding(logical *circuit.Circuit) []int {
	n := logical.NumQubits
	edges := logical.InteractionGraph()
	if len(edges) == 0 {
		return nil // nothing to embed; greedy handles measurement quality
	}
	// Compact the interacting logical qubits.
	interacting := make([]bool, n)
	for _, e := range edges {
		interacting[e.A] = true
		interacting[e.B] = true
	}
	idx := make([]int, n)
	var compact []int
	for q := 0; q < n; q++ {
		idx[q] = -1
		if interacting[q] {
			idx[q] = len(compact)
			compact = append(compact, q)
		}
	}
	pattern := graph.New(len(compact))
	for _, e := range edges {
		pattern.AddEdge(idx[e.A], idx[e.B])
	}
	measures := make([]int, n)
	for _, op := range logical.Ops {
		if op.Kind == circuit.Measure {
			measures[op.Qubits[0]]++
		}
	}

	search := graph.NewMonoSearch(pattern, c.g)
	order := search.Order()
	depth := len(order)
	pos := make([]int, len(compact))
	for d, v := range order {
		pos[v] = d
	}
	// Bucket each weighted interaction edge at the depth where its second
	// endpoint is assigned; bucket order follows the deterministic
	// InteractionGraph edge order.
	type wedge struct{ a, b, w int }
	edgesAt := make([][]wedge, depth)
	wsumAt := make([]float64, depth)
	for _, e := range edges {
		i, j := idx[e.A], idx[e.B]
		d := pos[i]
		if pos[j] > d {
			d = pos[j]
		}
		edgesAt[d] = append(edgesAt[d], wedge{i, j, e.Count})
		wsumAt[d] += float64(e.Count)
	}
	measAt := make([]float64, depth)
	for d, v := range order {
		measAt[d] = float64(measures[compact[v]])
	}
	// suffixMin[d] lower-bounds the cost contributed by depths >= d: every
	// edge at least pays the best link, every measurement the best readout.
	suffixMin := make([]float64, depth+1)
	for d := depth - 1; d >= 0; d-- {
		suffixMin[d] = suffixMin[d+1] + wsumAt[d]*c.minEdgeCost + measAt[d]*c.minMeasCost
	}

	stack := make([]float64, depth+1)
	mono := make([]int, len(compact))
	for i := range mono {
		mono[i] = -1
	}
	bestCost := math.Inf(1)
	var best []int
	emitted := 0
	r := search.NewRunner(graph.Hooks{
		Assign: func(d, pv, tv int) bool {
			mono[pv] = tv
			cost := stack[d] + measAt[d]*c.measCost[tv]
			for _, we := range edgesAt[d] {
				cost += float64(we.w) * c.cxCost[mono[we.a]][mono[we.b]]
			}
			stack[d+1] = cost
			if cost+suffixMin[d+1] > bestCost*(1+bbEps) {
				mono[pv] = -1
				return false
			}
			return true
		},
		Unassign: func(d, pv, tv int) { mono[pv] = -1 },
		Emit: func(m []int) bool {
			if cost := stack[depth]; cost < bestCost {
				bestCost = cost
				best = append(best[:0], m...)
			}
			emitted++
			return emitted >= enumLimit
		},
	})
	r.Run()
	if best == nil {
		return nil
	}

	layout := make([]int, n)
	used := make([]bool, c.devN)
	for i := range layout {
		layout[i] = -1
	}
	for i, q := range compact {
		layout[q] = best[i]
		used[best[i]] = true
	}
	// Place non-interacting qubits on the best free readout qubits.
	for q := 0; q < n; q++ {
		if layout[q] != -1 {
			continue
		}
		bestP, bestM := -1, math.Inf(1)
		for p := 0; p < c.devN; p++ {
			if used[p] {
				continue
			}
			mcost := c.measCost[p] * float64(measures[q]+1)
			if mcost < bestM {
				bestM, bestP = mcost, p
			}
		}
		if bestP == -1 {
			return nil
		}
		layout[q] = bestP
		used[bestP] = true
	}
	return layout
}

// placeGreedy performs greedy variation-aware initial placement: logical
// qubits are ordered by interaction connectivity, and each is assigned to
// the free physical qubit minimizing routing cost to its already-placed
// partners plus a readout-quality term. Every physical seed is tried for
// the first qubit and the cheapest overall placement wins.
func (c *Compiler) placeGreedy(logical *circuit.Circuit) ([]int, error) {
	n := logical.NumQubits
	edges := logical.InteractionGraph()
	// Interaction counts and measure counts per logical qubit.
	iw := interactionWeights(n, edges)
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.A] += e.Count
		deg[e.B] += e.Count
	}
	measures := make([]int, n)
	for _, op := range logical.Ops {
		if op.Kind == circuit.Measure {
			measures[op.Qubits[0]]++
		}
	}
	order := placeOrder(n, edges, deg)

	bestCost := math.Inf(1)
	var bestLayout []int
	for seed := 0; seed < c.devN; seed++ {
		layout, cost := c.placeFrom(order, iw, measures, seed, n)
		if layout != nil && cost < bestCost {
			bestCost = cost
			bestLayout = layout
		}
	}
	if bestLayout == nil {
		return nil, fmt.Errorf("mapper: placement failed (device too small or disconnected)")
	}
	return bestLayout, nil
}

// placeOrder returns logical qubits ordered for placement: descending
// weighted degree, then (for subsequent picks) most connectivity to the
// already-ordered prefix.
func placeOrder(n int, edges []circuit.InteractionEdge, deg []int) []int {
	adj := make([]map[int]int, n)
	for i := range adj {
		adj[i] = map[int]int{}
	}
	for _, e := range edges {
		adj[e.A][e.B] += e.Count
		adj[e.B][e.A] += e.Count
	}
	order := make([]int, 0, n)
	placed := make([]bool, n)
	for len(order) < n {
		best, bestConn, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			conn := 0
			for u, w := range adj[v] {
				if placed[u] {
					conn += w
				}
			}
			if conn > bestConn || (conn == bestConn && deg[v] > bestDeg) ||
				(conn == bestConn && deg[v] == bestDeg && (best == -1 || v < best)) {
				best, bestConn, bestDeg = v, conn, deg[v]
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

// interactionWeights folds the interaction edges into a dense symmetric
// n x n matrix: placeFrom reads pair weights in its innermost loop, where
// the map lookups this replaced dominated placement time.
func interactionWeights(n int, edges []circuit.InteractionEdge) [][]int {
	buf := make([]int, n*n)
	iw := make([][]int, n)
	for i := range iw {
		iw[i] = buf[i*n : (i+1)*n]
	}
	for _, e := range edges {
		iw[e.A][e.B] += e.Count
		iw[e.B][e.A] += e.Count
	}
	return iw
}

// placeFrom runs one greedy placement with the first ordered qubit pinned
// to the given physical seed. It returns (nil, inf) if placement is
// impossible.
func (c *Compiler) placeFrom(order []int, iw [][]int, measures []int, seed, n int) ([]int, float64) {
	layout := make([]int, n)
	for i := range layout {
		layout[i] = -1
	}
	used := make([]bool, c.devN)
	total := 0.0
	for i, lq := range order {
		var bestP int = -1
		bestCost := math.Inf(1)
		for p := 0; p < c.devN; p++ {
			if used[p] {
				continue
			}
			if i == 0 && p != seed {
				continue
			}
			cost := float64(measures[lq]) * c.measCost[p]
			for other, po := range layout {
				if po < 0 {
					continue
				}
				w := iw[lq][other]
				if w == 0 {
					continue
				}
				pc := c.pathCost[p][po]
				if math.IsInf(pc, 1) {
					cost = math.Inf(1)
					break
				}
				cost += float64(w) * pc
			}
			if cost < bestCost || (cost == bestCost && bestP >= 0 && p < bestP) {
				bestCost = cost
				bestP = p
			}
		}
		if bestP == -1 || math.IsInf(bestCost, 1) {
			return nil, math.Inf(1)
		}
		layout[lq] = bestP
		used[bestP] = true
		total += bestCost
	}
	return layout, total
}

// Routing lives in router.go: route/routePinned orchestrate the
// SABRE-style lookahead router against the frozen greedy-walk baseline
// (greedyPass) and materialize whichever variant scores the higher ESP.
