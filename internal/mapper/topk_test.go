package mapper

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"edm/internal/bitset"
	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// TestScorerMatchesDeviceESP pins the incremental scorer's contract: the
// ESP computed from the per-gate tables for a relabeled placement must be
// bit-identical to materializing the circuit and running device.ESP on
// it, because candidate ranking and tie-breaking compare these floats
// exactly.
func TestScorerMatchesDeviceESP(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(11))
	comp := NewCompiler(cal)
	for _, name := range []string{"qaoa-6", "fredkin", "bv-6"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatal("unknown workload")
		}
		base, err := comp.Compile(w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		rp := comp.newReplacer(base)
		cands := rp.enumerate(nil)
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", name)
		}
		if len(cands) > 200 {
			cands = cands[:200]
		}
		for i, cd := range cands {
			exe := rp.materialize(cd)
			got := device.MustESP(exe.Circuit, cal)
			if got != cd.esp {
				t.Fatalf("%s: candidate %d scorer ESP %v != device.ESP %v", name, i, cd.esp, got)
			}
			if !reflect.DeepEqual(exe.InitialLayout, cd.layout) {
				t.Fatalf("%s: candidate %d layout mismatch", name, i)
			}
		}
	}
}

// TestTopKDeterministicAcrossWorkers checks the pipeline's determinism
// contract: TopK results are bit-identical between a serial run
// (GOMAXPROCS=1) and parallel runs, and across repeated parallel runs.
// Run under -race this also exercises the sharded enumeration and the
// shared branch-and-bound threshold for data races.
func TestTopKDeterministicAcrossWorkers(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(3))
	comp := NewCompiler(cal)
	for _, name := range []string{"qaoa-6", "adder", "bv-6"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatal("unknown workload")
		}
		for _, k := range []int{1, 4} {
			old := runtime.GOMAXPROCS(1)
			serial, err := comp.TopK(w.Circuit, k)
			runtime.GOMAXPROCS(4)
			par1, err1 := comp.TopK(w.Circuit, k)
			par2, err2 := comp.TopK(w.Circuit, k)
			runtime.GOMAXPROCS(old)
			if err != nil || err1 != nil || err2 != nil {
				t.Fatalf("%s k=%d: errors %v %v %v", name, k, err, err1, err2)
			}
			if !reflect.DeepEqual(serial, par1) {
				t.Fatalf("%s k=%d: parallel result differs from serial", name, k)
			}
			if !reflect.DeepEqual(par1, par2) {
				t.Fatalf("%s k=%d: parallel runs disagree with each other", name, k)
			}
		}
	}
}

// TestSingleBestMatchesFullPool checks that the branch-and-bound k=1 path
// returns exactly the candidate the unpruned pool ranks first: member 0
// of TopK(k=2) is selected from the full pool by the same (ESP, layout)
// order, so the two must coincide.
func TestSingleBestMatchesFullPool(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(5))
	comp := NewCompiler(cal)
	for _, name := range []string{"greycode-6", "qaoa-5", "decode24", "bv-6"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatal("unknown workload")
		}
		one, err := comp.TopK(w.Circuit, 1)
		if err != nil {
			t.Fatal(err)
		}
		two, err := comp.TopK(w.Circuit, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(one) != 1 {
			t.Fatalf("%s: k=1 returned %d members", name, len(one))
		}
		if !reflect.DeepEqual(one[0], two[0]) {
			t.Fatalf("%s: pruned k=1 best (ESP %v, layout %v) differs from full-pool best (ESP %v, layout %v)",
				name, one[0].ESP, one[0].InitialLayout, two[0].ESP, two[0].InitialLayout)
		}
	}
}

// TestPlacementsParallelDeterminism covers the Placements entry point the
// Fig8 analysis uses.
func TestPlacementsParallelDeterminism(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(13))
	comp := NewCompiler(cal)
	w, ok := workloads.ByName("qaoa-6")
	if !ok {
		t.Fatal("unknown workload")
	}
	old := runtime.GOMAXPROCS(1)
	serial, err := comp.Placements(w.Circuit, 16)
	runtime.GOMAXPROCS(4)
	par, perr := comp.Placements(w.Circuit, 16)
	runtime.GOMAXPROCS(old)
	if err != nil || perr != nil {
		t.Fatalf("errors: %v %v", err, perr)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel Placements differ from serial")
	}
}

// TestCachedCompiler checks fingerprint-keyed memoization.
func TestCachedCompiler(t *testing.T) {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(21))
	a := CachedCompiler(cal)
	b := CachedCompiler(cal)
	if a != b {
		t.Fatal("same calibration produced two compilers")
	}
	if c := CachedCompiler(cal.Clone()); c != a {
		t.Fatal("identical clone missed the cache")
	}
	drifted := cal.Drift(0.2, rng.New(22))
	d := CachedCompiler(drifted)
	if d == a {
		t.Fatal("drifted calibration hit the stale cache entry")
	}
	if e := CachedCompiler(drifted); e != d {
		t.Fatal("drifted calibration was not cached")
	}
}

// TestTooWideDeviceRejected: compiling for a device wider than the
// footprint masks must fail loudly with ErrDeviceTooWide, never truncate
// qubit indices into the mask.
func TestTooWideDeviceRejected(t *testing.T) {
	comp := NewCompiler(calFor(device.Linear(bitset.Cap+8), 11))
	w := workloads.All()[0]
	if _, err := comp.Compile(w.Circuit); !errors.Is(err, device.ErrDeviceTooWide) {
		t.Fatalf("Compile on %d-qubit device: err = %v, want ErrDeviceTooWide", bitset.Cap+8, err)
	}
	if _, err := comp.TopK(w.Circuit, 4); !errors.Is(err, device.ErrDeviceTooWide) {
		t.Fatalf("TopK on wide device: err = %v, want ErrDeviceTooWide", err)
	}
}

// TestMaskOps sanity-checks the bitmask set type against the obvious
// reference.
func TestMaskOps(t *testing.T) {
	var a, b qmask
	for _, q := range []int{0, 5, 63, 64, 77, 129} {
		a.Add(q)
	}
	for _, q := range []int{5, 63, 100, 129} {
		b.Add(q)
	}
	if a.Count() != 6 || b.Count() != 4 {
		t.Fatalf("counts: %d %d", a.Count(), b.Count())
	}
	if got := a.Overlap(b); got != 3 {
		t.Fatalf("overlap = %d, want 3", got)
	}
	if maskHash(a) == maskHash(b) {
		t.Fatal("distinct masks share a hash")
	}
}
