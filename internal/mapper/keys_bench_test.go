package mapper

import (
	"testing"
)

// Micro-benchmarks contrasting the allocation-heavy string keys and
// map[int]bool qubit sets the candidate pipeline used before against the
// hashed integer keys and bitmask sets that replaced them. The legacy
// implementations live here, verbatim, as the comparison baseline.

func legacyLayoutKey(layout []int) string {
	b := make([]byte, len(layout))
	for i, q := range layout {
		b[i] = byte(q + 1)
	}
	return string(b)
}

func legacyQubitSet(used []int) map[int]bool {
	s := map[int]bool{}
	for _, q := range used {
		s[q] = true
	}
	return s
}

func legacyOverlap(a, b map[int]bool) int {
	n := 0
	for q := range a {
		if b[q] {
			n++
		}
	}
	return n
}

func benchLayouts() [][]int {
	layouts := make([][]int, 64)
	for i := range layouts {
		l := make([]int, 7)
		for j := range l {
			l[j] = (i*7 + j*3) % 14
		}
		layouts[i] = l
	}
	return layouts
}

func BenchmarkLayoutKeyString(b *testing.B) {
	layouts := benchLayouts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seen := map[string]bool{}
		for _, l := range layouts {
			seen[legacyLayoutKey(l)] = true
		}
	}
}

func BenchmarkLayoutKeyHash(b *testing.B) {
	layouts := benchLayouts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seen := map[uint64]bool{}
		for _, l := range layouts {
			seen[hashInts(l)] = true
		}
	}
}

func BenchmarkQubitSetMap(b *testing.B) {
	layouts := benchLayouts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sets := make([]map[int]bool, len(layouts))
		for j, l := range layouts {
			sets[j] = legacyQubitSet(l)
		}
		n := 0
		for j := 1; j < len(sets); j++ {
			n += legacyOverlap(sets[0], sets[j])
		}
	}
}

func BenchmarkQubitSetMask(b *testing.B) {
	layouts := benchLayouts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sets := make([]qmask, len(layouts))
		for j, l := range layouts {
			var m qmask
			for _, q := range l {
				m.Add(q)
			}
			sets[j] = m
		}
		n := 0
		for j := 1; j < len(sets); j++ {
			n += sets[0].Overlap(sets[j])
		}
	}
}
