package mapper

import (
	"reflect"
	"testing"

	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// driftWorkloads is the Fig. 13 drifting-campaign set; small enough to
// track across many cycles in a unit test.
func driftWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	var ws []workloads.Workload
	for _, name := range []string{"qaoa-6", "bv-6", "greycode-6"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestTrackingCheckedIdentity is the exactness pin for the tentpole:
// across drifting calibration cycles, a RecompileChecked Tracking serves
// ensembles bit-identical (as values) to a full rebuild at the current
// calibration, for every k including the k = 1 branch-and-bound path,
// while actually reusing work (the counters prove candidates survived).
func TestTrackingCheckedIdentity(t *testing.T) {
	ws := driftWorkloads(t)
	root := rng.New(71)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), root.Derive("cal"))
	tr := NewTracking(cal, RecompileChecked)
	for cycle := 0; cycle < 4; cycle++ {
		if cycle > 0 {
			cal = cal.DriftLocal(2, 2, 0.4, 2e-3, root.DeriveN("cycle", cycle))
			d := tr.Advance(cal, 1e-3)
			if d.Full() {
				t.Fatalf("cycle %d: local drift reported as full-invalidation diff: %+v", cycle, d.Stats)
			}
		}
		fresh := tr.Compiler().Uncached()
		for _, w := range ws {
			for _, k := range []int{1, 2, 4} {
				got, err := tr.TopK(w.Circuit, k)
				if err != nil {
					t.Fatalf("cycle %d %s k=%d: %v", cycle, w.Name, k, err)
				}
				want, err := fresh.TopK(w.Circuit, k)
				if err != nil {
					t.Fatalf("cycle %d %s k=%d (fresh): %v", cycle, w.Name, k, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cycle %d %s k=%d: tracked ensemble differs from full rebuild", cycle, w.Name, k)
				}
			}
			identical, delta, err := tr.CrossCheck(w.Circuit)
			if err != nil {
				t.Fatalf("cycle %d %s: cross-check: %v", cycle, w.Name, err)
			}
			if !identical {
				t.Fatalf("cycle %d %s: incremental pool not identical to full rebuild (max ESP delta %g)", cycle, w.Name, delta)
			}
		}
	}
	s := tr.Stats()
	if s.Pools == 0 {
		t.Fatal("no pool upgrades recorded across 3 advances")
	}
	if s.Reused+s.Rescored == 0 {
		t.Fatalf("no candidates survived any upgrade; incremental path never engaged: %+v", s)
	}
	if got := s.Reused + s.Rescored + s.Rerouted + s.Dropped; got != s.Processed() {
		t.Fatalf("Processed() = %d, parts sum to %d", s.Processed(), got)
	}
	if sv := s.Survival(); sv < 0 || sv > 1 {
		t.Fatalf("Survival() = %g out of range", sv)
	}
}

// TestTrackingTolZeroDegenerates pins the tol = 0 contract: any bit of
// drift makes the diff Full, so every upgrade is a full rebuild — exactly
// today's fingerprint-keyed full-invalidation behavior.
func TestTrackingTolZeroDegenerates(t *testing.T) {
	ws := driftWorkloads(t)
	root := rng.New(72)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), root.Derive("cal"))
	tr := NewTracking(cal, RecompileChecked)
	for _, w := range ws {
		if _, err := tr.TopK(w.Circuit, 4); err != nil {
			t.Fatal(err)
		}
	}
	cal = cal.DriftLocal(2, 2, 0.4, 2e-3, root.Derive("drift"))
	d := tr.Advance(cal, 0)
	if !d.Full() {
		t.Fatalf("tol=0 diff of drifted calibration is not Full: %+v", d.Stats)
	}
	fresh := tr.Compiler().Uncached()
	for _, w := range ws {
		got, err := tr.TopK(w.Circuit, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.TopK(w.Circuit, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: tol=0 tracked ensemble differs from full rebuild", w.Name)
		}
	}
	s := tr.Stats()
	if s.Pools != uint64(len(ws)) || s.FullRebuilds != s.Pools {
		t.Fatalf("tol=0 must rebuild every pool: %+v", s)
	}
	if s.Reused+s.Rescored+s.Rerouted != 0 {
		t.Fatalf("tol=0 reused candidate structure: %+v", s)
	}
	if s.Dropped == 0 {
		t.Fatalf("full rebuilds dropped no candidates: %+v", s)
	}
}

// TestTrackingSkippedGenerations checks the history-window diff: a pool
// requested at generation 0 and next requested at generation 3 upgrades
// against the direct gen-0 → gen-3 diff and stays exact.
func TestTrackingSkippedGenerations(t *testing.T) {
	w, ok := workloads.ByName("qaoa-6")
	if !ok {
		t.Fatal("unknown workload")
	}
	root := rng.New(73)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), root.Derive("cal"))
	tr := NewTracking(cal, RecompileChecked)
	if _, err := tr.TopK(w.Circuit, 4); err != nil {
		t.Fatal(err)
	}
	for cycle := 1; cycle <= 3; cycle++ {
		cal = cal.DriftLocal(2, 2, 0.4, 2e-3, root.DeriveN("cycle", cycle))
		tr.Advance(cal, 1e-3)
	}
	identical, delta, err := tr.CrossCheck(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Fatalf("pool upgraded across 3 skipped generations diverged (max ESP delta %g)", delta)
	}
	if s := tr.Stats(); s.Pools != 1 {
		t.Fatalf("want exactly one (coalesced) upgrade, got %+v", s)
	}
}

// TestTrackingHistoryAgeOut checks the retention bound: a pool whose last
// generation has aged out of the trackHist window gets a Global diff and
// rebuilds fully rather than diffing against a forgotten calibration.
func TestTrackingHistoryAgeOut(t *testing.T) {
	w, ok := workloads.ByName("bv-6")
	if !ok {
		t.Fatal("unknown workload")
	}
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(74))
	tr := NewTracking(cal, RecompileChecked)
	if _, err := tr.TopK(w.Circuit, 2); err != nil {
		t.Fatal(err)
	}
	// Advance past the window without touching the pool. The calibration
	// never changes, so each advance is cheap and the only reason to
	// rebuild is the lost history.
	for i := 0; i < trackHist; i++ {
		tr.Advance(cal, 1e-3)
	}
	if d := tr.diffFor(0); !d.Global {
		t.Fatalf("generation 0 still diffable after %d advances; want Global fallback", trackHist)
	}
	if _, err := tr.TopK(w.Circuit, 2); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Pools != 1 || s.FullRebuilds != 1 {
		t.Fatalf("aged-out pool must rebuild fully: %+v", s)
	}
}

// TestTrackingRecompileOff checks the baseline mode: correct results,
// zero structural reuse.
func TestTrackingRecompileOff(t *testing.T) {
	w, ok := workloads.ByName("greycode-6")
	if !ok {
		t.Fatal("unknown workload")
	}
	root := rng.New(75)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), root.Derive("cal"))
	tr := NewTracking(cal, RecompileOff)
	if _, err := tr.TopK(w.Circuit, 4); err != nil {
		t.Fatal(err)
	}
	cal = cal.DriftLocal(2, 2, 0.4, 2e-3, root.Derive("drift"))
	tr.Advance(cal, 1e-3)
	got, err := tr.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Compiler().Uncached().TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RecompileOff tracked ensemble differs from full rebuild")
	}
	s := tr.Stats()
	if s.FullRebuilds != s.Pools || s.Reused+s.Rescored+s.Rerouted != 0 {
		t.Fatalf("RecompileOff reused work: %+v", s)
	}
}

// TestTrackingFastMode sanity-checks the approximate mode: pools stay
// usable and under sub-tolerance jitter (nothing beyond tol) the fast
// path keeps all structure and only re-scores. The pool is NOT asserted
// identical to a full rebuild — routing ties can flip between
// ESP-equivalent symmetric layouts under any jitter, which is exactly
// the check RecompileFast skips — but the cross-check's routed-ESP
// delta, the quantity the mode trades for speed, must stay negligible.
func TestTrackingFastMode(t *testing.T) {
	ws := driftWorkloads(t)
	root := rng.New(76)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), root.Derive("cal"))
	tr := NewTracking(cal, RecompileFast)
	for cycle := 0; cycle < 3; cycle++ {
		if cycle > 0 {
			// Jitter only, well under tolerance: no qubit or edge moves
			// beyond tol, so fast mode keeps all structure and re-scores.
			cal = cal.DriftLocal(0, 0, 0, 1e-5, root.DeriveN("cycle", cycle))
			d := tr.Advance(cal, 1e-2)
			if d.Stats.ChangedQubits+d.Stats.ChangedEdges != 0 {
				t.Fatalf("cycle %d: sub-tolerance jitter crossed tolerance: %+v", cycle, d.Stats)
			}
		}
		for _, w := range ws {
			exes, err := tr.TopK(w.Circuit, 4)
			if err != nil {
				t.Fatalf("cycle %d %s: %v", cycle, w.Name, err)
			}
			for i, e := range exes {
				if e.ESP <= 0 || e.ESP > 1 {
					t.Fatalf("cycle %d %s member %d: ESP %g out of range", cycle, w.Name, i, e.ESP)
				}
			}
			_, delta, err := tr.CrossCheck(w.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			if delta > 1e-9 {
				t.Fatalf("cycle %d %s: fast mode routed-ESP delta %g under sub-tolerance jitter", cycle, w.Name, delta)
			}
		}
	}
	s := tr.Stats()
	if s.Rerouted != 0 || s.FullRebuilds != 0 {
		t.Fatalf("sub-tolerance fast upgrades re-routed or rebuilt: %+v", s)
	}
	if s.Rescored == 0 {
		t.Fatalf("jitter touched nothing? %+v", s)
	}
}

// TestTrackingExecutableTransfer checks that executables materialized in
// one generation are transferred (not rebuilt) across an upgrade whose
// checks pass, with the new generation's ESP patched in.
func TestTrackingExecutableTransfer(t *testing.T) {
	w, ok := workloads.ByName("bv-6")
	if !ok {
		t.Fatal("unknown workload")
	}
	root := rng.New(77)
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), root.Derive("cal"))
	tr := NewTracking(cal, RecompileChecked)
	before, err := tr.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	cal = cal.DriftLocal(1, 1, 0.3, 1e-4, root.Derive("drift"))
	tr.Advance(cal, 1e-3)
	after, err := tr.TopK(w.Circuit, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.Stats(); s.FullRebuilds != 0 {
		t.Fatalf("upgrade fell back to a full rebuild; transfer not exercised: %+v", s)
	}
	shared := 0
	for _, a := range after {
		for _, b := range before {
			if a.Circuit == b.Circuit && sameInts(a.InitialLayout, b.InitialLayout) {
				shared++
				break
			}
		}
	}
	if shared == 0 {
		t.Fatal("no materialized circuit survived a local-drift upgrade")
	}
}
