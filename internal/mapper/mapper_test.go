package mapper

import (
	"fmt"
	"math"
	"testing"

	"edm/internal/backend"
	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/rng"
	"edm/internal/statevec"
)

func calFor(topo *device.Topology, seed uint64) *device.Calibration {
	return device.Generate(topo, device.MelbourneProfile(), rng.New(seed))
}

func idealCal(topo *device.Topology) *device.Calibration {
	return device.Generate(topo, device.IdealProfile(), rng.New(1))
}

func bellCircuit() *circuit.Circuit {
	c := circuit.New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	return c
}

// starCircuit builds a BV-like star: qubit n interacts with all others.
func starCircuit(n int) *circuit.Circuit {
	c := circuit.New(n+1, n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		c.CX(q, n)
	}
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// pathQAOAish builds a circuit whose interaction graph is a path of n.
func pathQAOAish(n int) *circuit.Circuit {
	c := circuit.New(n, n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	return c
}

func TestCompileBellNoSwaps(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 3))
	exe, err := comp.Compile(bellCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if exe.Swaps != 0 {
		t.Fatalf("Bell needed %d swaps", exe.Swaps)
	}
	if exe.ESP <= 0 || exe.ESP > 1 {
		t.Fatalf("ESP = %v", exe.ESP)
	}
	if exe.Circuit.NumQubits != 14 {
		t.Fatalf("physical register = %d", exe.Circuit.NumQubits)
	}
}

func TestCompilePreservesSemantics(t *testing.T) {
	// The routed physical circuit must compute the same function as the
	// logical circuit: identical ideal output distributions.
	comp := NewCompiler(calFor(device.Melbourne(), 5))
	r := rng.New(11)
	for trial := 0; trial < 12; trial++ {
		rr := r.DeriveN("t", trial)
		logical := randomLogical(4, 14, rr)
		exe, err := comp.Compile(logical)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := statevec.IdealDist(logical)
		if err != nil {
			t.Fatal(err)
		}
		got, err := statevec.IdealDist(exe.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: semantics changed\nlogical: %v\nphysical: %v\nswaps=%d",
				trial, want, got, exe.Swaps)
		}
	}
}

func randomLogical(n, ops int, r *rng.RNG) *circuit.Circuit {
	c := circuit.New(n, n)
	for i := 0; i < ops; i++ {
		switch r.Intn(3) {
		case 0:
			c.H(r.Intn(n))
		case 1:
			c.U3(r.Intn(n), r.Float64()*3, r.Float64()*6, r.Float64()*6)
		default:
			a := r.Intn(n)
			b := (a + 1 + r.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	c.MeasureAll()
	return c
}

func TestCompileStarNeedsSwaps(t *testing.T) {
	// BV-6's interaction graph is a 6-arm star; melbourne's max degree is
	// 3, so routing must insert SWAPs.
	comp := NewCompiler(calFor(device.Melbourne(), 7))
	exe, err := comp.Compile(starCircuit(6))
	if err != nil {
		t.Fatal(err)
	}
	if exe.Swaps == 0 {
		t.Fatal("star of degree 6 compiled with zero swaps on melbourne")
	}
	// Semantics preserved despite routing.
	want, _ := statevec.IdealDist(starCircuit(6))
	got, err := statevec.IdealDist(exe.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("routed star changed semantics")
	}
}

func TestCompilePathEmbedsWithoutSwaps(t *testing.T) {
	// Path interaction graphs embed in melbourne: the paper notes QAOA on
	// path graphs needs no SWAPs.
	for _, n := range []int{5, 6, 7} {
		comp := NewCompiler(calFor(device.Melbourne(), 9))
		exe, err := comp.Compile(pathQAOAish(n))
		if err != nil {
			t.Fatal(err)
		}
		if exe.Swaps != 0 {
			t.Fatalf("path-%d needed %d swaps", n, exe.Swaps)
		}
	}
}

func TestVariationAwarePlacementAvoidsBadLink(t *testing.T) {
	// Linear 4-qubit device; make link (1,2) terrible. A Bell pair should
	// compile onto one of the good links.
	topo := device.Linear(4)
	cal := idealCal(topo)
	cal.CXErr[device.NewEdge(1, 2)] = 0.5
	cal.CXErr[device.NewEdge(0, 1)] = 0.01
	cal.CXErr[device.NewEdge(2, 3)] = 0.02
	comp := NewCompiler(cal)
	exe, err := comp.Compile(bellCircuit())
	if err != nil {
		t.Fatal(err)
	}
	used := exe.UsedQubits()
	if len(used) != 2 {
		t.Fatalf("used = %v", used)
	}
	if used[0] == 1 && used[1] == 2 {
		t.Fatal("placement chose the bad link")
	}
	if used[0] != 0 || used[1] != 1 {
		t.Fatalf("placement should pick the best link (0,1), got %v", used)
	}
}

func TestVariationAwarePlacementAvoidsBadReadout(t *testing.T) {
	topo := device.Linear(4)
	cal := idealCal(topo)
	for q := 0; q < 4; q++ {
		cal.Meas01[q] = 0.01
		cal.Meas10[q] = 0.01
	}
	cal.Meas01[0], cal.Meas10[0] = 0.4, 0.4 // terrible readout on qubit 0
	comp := NewCompiler(cal)
	// Single-qubit program: prepare and measure.
	c := circuit.New(1, 1)
	c.X(0).Measure(0, 0)
	exe, err := comp.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if used := exe.UsedQubits(); used[0] == 0 {
		t.Fatalf("placement chose the bad-readout qubit: %v", used)
	}
}

func TestCompileWithLayout(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 13))
	exe, err := comp.CompileWithLayout(bellCircuit(), []int{8, 9})
	if err != nil {
		t.Fatal(err)
	}
	used := exe.UsedQubits()
	if used[0] != 8 || used[1] != 9 {
		t.Fatalf("layout ignored: %v", used)
	}
	if _, err := comp.CompileWithLayout(bellCircuit(), []int{1}); err == nil {
		t.Fatal("short layout accepted")
	}
	if _, err := comp.CompileWithLayout(bellCircuit(), []int{1, 1}); err == nil {
		t.Fatal("duplicate layout accepted")
	}
	if _, err := comp.CompileWithLayout(bellCircuit(), []int{1, 99}); err == nil {
		t.Fatal("out-of-range layout accepted")
	}
}

func TestCompileRejectsOversized(t *testing.T) {
	comp := NewCompiler(calFor(device.Linear(3), 1))
	if _, err := comp.Compile(pathQAOAish(5)); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestTopKProperties(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 17))
	execs, err := comp.TopK(pathQAOAish(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 8 {
		t.Fatalf("got %d executables", len(execs))
	}
	seen := map[string]bool{}
	for i, e := range execs {
		// Descending ESP.
		if i > 0 && e.ESP > execs[i-1].ESP+1e-12 {
			t.Fatalf("ESP not descending at %d: %v > %v", i, e.ESP, execs[i-1].ESP)
		}
		// Valid on device.
		if _, err := device.ESP(e.Circuit, comp.Calibration()); err != nil {
			t.Fatalf("executable %d invalid: %v", i, err)
		}
		// Distinct placements.
		key := ""
		for _, q := range e.UsedQubits() {
			key += string(rune('a' + q))
		}
		key += "|"
		for _, q := range e.InitialLayout {
			key += string(rune('a' + q))
		}
		if seen[key] {
			t.Fatalf("duplicate placement at %d", i)
		}
		seen[key] = true
		// Semantics identical to the logical program.
		want, _ := statevec.IdealDist(pathQAOAish(5))
		got, err := statevec.IdealDist(e.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("executable %d changed semantics", i)
		}
	}
}

func TestTopKFirstIsBest(t *testing.T) {
	// Element 0 must have the maximum ESP over all enumerated placements —
	// the paper's "estimated best mapping at compile time".
	comp := NewCompiler(calFor(device.Melbourne(), 19))
	execs, err := comp.TopK(pathQAOAish(6), 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range execs {
		if e.ESP > execs[0].ESP+1e-12 {
			t.Fatalf("element %d beats element 0", i)
		}
	}
	// And it should beat (or match) the plain Compile result, since
	// Compile's embedding minimizes the same cost.
	base, err := comp.Compile(pathQAOAish(6))
	if err != nil {
		t.Fatal(err)
	}
	if base.ESP > execs[0].ESP+1e-9 {
		t.Fatalf("Compile (%v) beat TopK[0] (%v)", base.ESP, execs[0].ESP)
	}
	if math.Abs(base.ESP-execs[0].ESP) > 1e-9 {
		t.Logf("note: TopK[0] ESP %v > Compile ESP %v", execs[0].ESP, base.ESP)
	}
}

func TestTopKStarWorkload(t *testing.T) {
	// Star workloads (BV) go through the greedy+routing path; TopK must
	// still produce k distinct, semantics-preserving executables.
	comp := NewCompiler(calFor(device.Melbourne(), 23))
	execs, err := comp.TopK(starCircuit(6), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 4 {
		t.Fatalf("got %d executables", len(execs))
	}
	want, _ := statevec.IdealDist(starCircuit(6))
	for i, e := range execs {
		got, err := statevec.IdealDist(e.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("executable %d changed semantics", i)
		}
		// Members may be VF2 transfers of the base (same swap count) or
		// independently re-routed alternative placements (their own swap
		// count), so swap counts can differ across members; each member's
		// recorded count must match its own circuit.
		nswap := 0
		for _, op := range e.Circuit.Ops {
			if op.Kind == circuit.SWAP {
				nswap++
			}
		}
		if e.Swaps != nswap {
			t.Fatalf("executable %d records %d swaps, circuit has %d", i, e.Swaps, nswap)
		}
	}
}

func TestTopKRunsOnBackend(t *testing.T) {
	// End-to-end: top-2 mappings of a Bell pair run on the noisy machine
	// and both produce Bell-dominated output.
	cal := calFor(device.Melbourne(), 29)
	comp := NewCompiler(cal)
	execs, err := comp.TopK(bellCircuit(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m := backend.New(cal)
	for i, e := range execs {
		d, err := m.RunDist(e.Circuit, 4000, rng.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		pBell := d.PV(0) + d.PV(3)
		if pBell < 0.6 {
			t.Fatalf("mapping %d: P(bell outcomes) = %v", i, pBell)
		}
	}
}

func TestTopKValidation(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 31))
	if _, err := comp.TopK(bellCircuit(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestNewCompilerPanicsOnBadCalibration(t *testing.T) {
	cal := idealCal(device.Linear(2))
	cal.SQErr = nil
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCompiler(cal)
}

func TestPlacementUsesReliableQubitsForMeasurement(t *testing.T) {
	// Melbourne profile marks two qubits as readout outliers; the compiled
	// mapping for a small program should avoid them.
	cal := calFor(device.Melbourne(), 37)
	// Find the two worst readout qubits.
	worst1, worst2 := -1, -1
	for q := 0; q < 14; q++ {
		if worst1 == -1 || cal.MeasErrAvg(q) > cal.MeasErrAvg(worst1) {
			worst2 = worst1
			worst1 = q
		} else if worst2 == -1 || cal.MeasErrAvg(q) > cal.MeasErrAvg(worst2) {
			worst2 = q
		}
	}
	comp := NewCompiler(cal)
	exe, err := comp.Compile(pathQAOAish(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range exe.UsedQubits() {
		if q == worst1 {
			t.Fatalf("mapping used worst readout qubit %d (err %v)", q, cal.MeasErrAvg(q))
		}
	}
	_ = worst2
}

func TestPlacements(t *testing.T) {
	comp := NewCompiler(calFor(device.Melbourne(), 43))
	all, err := comp.Placements(pathQAOAish(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 8 {
		t.Fatalf("only %d distinct placements", len(all))
	}
	// Descending ESP, distinct qubit sets.
	seen := map[string]bool{}
	for i, e := range all {
		if i > 0 && e.ESP > all[i-1].ESP+1e-12 {
			t.Fatalf("ESP not descending at %d", i)
		}
		key := fmt.Sprint(e.UsedQubits())
		if seen[key] {
			t.Fatalf("duplicate qubit set at %d", i)
		}
		seen[key] = true
	}
	// Truncation works.
	few, err := comp.Placements(pathQAOAish(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 3 {
		t.Fatalf("truncated to %d", len(few))
	}
	// Errors propagate.
	if _, err := comp.Placements(circuit.New(99, 0), 0); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestTopKDiversityConstraint(t *testing.T) {
	// With footprint f, members should share at most ~f/2 qubits unless
	// the device forces more overlap; on melbourne with a 5-qubit path,
	// disjoint placements exist, so the cap must hold for at least one
	// pair.
	comp := NewCompiler(calFor(device.Melbourne(), 47))
	execs, err := comp.TopK(pathQAOAish(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 4 {
		t.Fatalf("got %d members", len(execs))
	}
	// On a realistic calibration the cap may legitimately relax (quality
	// first, Section 6.1): members must merely not duplicate the
	// baseline's full qubit set.
	foot := len(execs[0].UsedQubits())
	for i := 1; i < len(execs); i++ {
		if got := overlapCount(execs[0], execs[i]); got >= foot {
			t.Fatalf("member %d reuses the baseline's full qubit set", i)
		}
	}

	// With uniform quality every placement is ESP-tied, so the overlap cap
	// of footprint/2 must actually bind.
	uniform := idealCal(device.Melbourne())
	for q := 0; q < 14; q++ {
		uniform.Meas01[q], uniform.Meas10[q] = 0.02, 0.05
		uniform.SQErr[q] = 0.001
	}
	for _, e := range uniform.Topo.Edges() {
		uniform.CXErr[e] = 0.03
	}
	execs2, err := NewCompiler(uniform).TopK(pathQAOAish(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(execs2); i++ {
		for j := 0; j < i; j++ {
			if got := overlapCount(execs2[j], execs2[i]); got > foot/2 {
				t.Fatalf("uniform-quality members %d,%d share %d of %d qubits", j, i, got, foot)
			}
		}
	}
}

func overlapCount(a, b *Executable) int {
	set := map[int]bool{}
	for _, q := range a.UsedQubits() {
		set[q] = true
	}
	n := 0
	for _, q := range b.UsedQubits() {
		if set[q] {
			n++
		}
	}
	return n
}

func TestCostOfExtremes(t *testing.T) {
	if costOf(1) != 50 || costOf(2) != 50 {
		t.Fatal("saturating cost wrong")
	}
	if costOf(0) != 0 {
		t.Fatal("zero-error cost wrong")
	}
}
