package mapper

import (
	"context"
	"fmt"

	"edm/internal/circuit"
	"edm/internal/memo"
)

// TopKCtx is TopK with request cancellation, the serving-path entry
// point. On a compiler with an ensemble cache the candidate-pool build
// runs detached through the cache's singleflight — a cancelled client
// detaches with ctx.Err() while the pool completes and stays warm for
// the concurrent and future requests that keyed the same (circuit
// fingerprint) — so exactly one compile runs per fingerprint no matter
// how many clients race or abandon it. Results are bit-identical to
// TopK whenever ctx does not expire. A nil or never-cancellable ctx
// makes TopKCtx exactly TopK.
func (c *Compiler) TopKCtx(ctx context.Context, logical *circuit.Circuit, k int) ([]*Executable, error) {
	if ctx == nil || ctx.Done() == nil || c.ens == nil {
		return c.TopK(logical, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("mapper: k must be positive")
	}
	if k == 1 {
		be, err := c.ens.best.GetCtx(ctx, circuitKey(logical), func() *bestEntry {
			exes, err := c.buildSingleBest(logical)
			return &bestEntry{exes: exes, err: err}
		})
		if err != nil {
			return nil, err
		}
		return be.exes, be.err
	}
	pe, err := c.ens.pools.GetCtx(ctx, circuitKey(logical), func() *poolEntry {
		return c.buildPool(logical)
	})
	if err != nil {
		return nil, err
	}
	return pe.topK(k)
}

// TopKCtx is Tracking.TopK with request cancellation: pool builds and
// incremental upgrades run detached through the generation-tagged cache
// while cancelled callers detach, preserving the one-build-per-(circuit
// fingerprint, calibration generation) invariant the serving layer
// advertises. A nil or never-cancellable ctx makes it exactly TopK.
func (t *Tracking) TopKCtx(ctx context.Context, logical *circuit.Circuit, k int) ([]*Executable, error) {
	if ctx == nil || ctx.Done() == nil {
		return t.TopK(logical, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("mapper: k must be positive")
	}
	c, gen := t.cur, t.gen
	pe, err := t.pools.GetGenCtx(ctx, circuitKey(logical), gen,
		func() *poolEntry {
			pe := c.buildPool(logical)
			pe.gen = gen
			return pe
		},
		func(prev *poolEntry) *poolEntry {
			pe := c.recompilePool(logical, prev, t.diffFor(prev.gen), t.mode, &t.ctr)
			pe.gen = gen
			return pe
		},
	)
	if err != nil {
		return nil, err
	}
	if pe.err != nil {
		return nil, pe.err
	}
	return pe.topK(k)
}

// PoolStats snapshots this Tracking's generation-tagged pool cache
// counters. One miss per (circuit fingerprint, generation) is the
// serving layer's one-compile invariant; the serving metrics endpoint
// exposes these numbers.
func (t *Tracking) PoolStats() memo.Stats { return t.pools.Stats() }
