package mapper

import (
	"sync"

	"edm/internal/device"
)

// Compiler construction runs all-pairs reliability Dijkstra and builds
// the dense gate tables, and the experiment campaign constructs a
// compiler for the same calibration once per (workload, round, policy)
// cell. CachedCompiler memoizes compilers by calibration fingerprint so
// that work happens once per calibration window.

// cacheCap bounds the cache FIFO. An experiment sweep touches one
// calibration per round; 32 covers every campaign in the repository with
// room for concurrent sweeps.
const cacheCap = 32

var compilerCache struct {
	mu  sync.Mutex
	fps []uint64
	cs  []*Compiler
}

// CachedCompiler returns a compiler for the calibration, reusing a
// previously built one when the calibration fingerprint matches
// (device.Calibration.Fingerprint hashes every field that affects
// compilation). The calibration must not be mutated after the call —
// the same contract as NewCompiler, made durable by the cache. Compilers
// are immutable, so a cached instance is safe to share across goroutines.
func CachedCompiler(cal *device.Calibration) *Compiler {
	fp := cal.Fingerprint()
	compilerCache.mu.Lock()
	for i, f := range compilerCache.fps {
		if f == fp {
			c := compilerCache.cs[i]
			compilerCache.mu.Unlock()
			return c
		}
	}
	compilerCache.mu.Unlock()

	// Build outside the lock: construction is the expensive part, and a
	// rare duplicate build is cheaper than serializing every miss.
	c := NewCompiler(cal)

	compilerCache.mu.Lock()
	defer compilerCache.mu.Unlock()
	for i, f := range compilerCache.fps {
		if f == fp {
			return compilerCache.cs[i] // lost the race; share the winner
		}
	}
	if len(compilerCache.fps) >= cacheCap {
		compilerCache.fps = compilerCache.fps[1:]
		compilerCache.cs = compilerCache.cs[1:]
	}
	compilerCache.fps = append(compilerCache.fps, fp)
	compilerCache.cs = append(compilerCache.cs, c)
	return c
}
