package mapper

import (
	"sync"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/memo"
)

// Compiler construction runs all-pairs reliability Dijkstra and builds
// the dense gate tables, and the experiment campaign constructs a
// compiler for the same calibration once per (workload, round, policy)
// cell. CachedCompiler memoizes compilers by calibration fingerprint so
// that work happens once per calibration window, and attaches a
// per-compiler ensemble cache so the TopK candidate pool for each
// circuit is built once and shared by every k the campaign asks for.

// compilerCacheCap bounds the compiler cache. An experiment sweep
// touches one calibration per round; 32 covers every campaign in the
// repository with room for concurrent sweeps.
const compilerCacheCap = 32

// ensembleCacheCap bounds each compiler's per-circuit pool and
// single-best caches. The campaign's workload suite has 9 circuits.
const ensembleCacheCap = 16

var (
	compilerCtr   memo.Counters
	compilerCache = memo.NewShared[*Compiler](compilerCacheCap, &compilerCtr)

	// topkCtr aggregates across every compiler's ensemble caches, so the
	// campaign reports one Top-K line no matter how many calibrations it
	// touched.
	topkCtr memo.Counters
)

// ensembleCache memoizes TopK work per circuit fingerprint: pools holds
// the ranked candidate pool shared by every k >= 2 (selection is re-run
// per k; see DESIGN.md §9 on why ranked prefixes cannot be served
// directly), best holds the k = 1 branch-and-bound result, which runs a
// pruned enumeration the pool path does not.
type ensembleCache struct {
	pools *memo.Cache[*poolEntry]
	best  *memo.Cache[*bestEntry]
}

func newEnsembleCache() *ensembleCache {
	return &ensembleCache{
		pools: memo.NewShared[*poolEntry](ensembleCacheCap, &topkCtr),
		best:  memo.NewShared[*bestEntry](ensembleCacheCap, &topkCtr),
	}
}

// poolEntry is one circuit's ranked candidate pool plus a memo of the
// executables materialized from it. Everything but exes is immutable
// after the build; exes grows under mu as different k values select
// overlapping candidates.
//
// raw, prog, seed, baseLayout and baseRes retain the build's
// intermediates for incremental recompilation (recompile.go). raw is the
// mono candidate list in *enumeration order*, before any sort or dedupe:
// re-ranking under a new calibration must replay the exact
// sort/split/dedupe pipeline on the full multiset, because dedupeByLayout
// keeps whichever same-layout candidate ranks first — a choice that can
// flip when ESPs move — and sortCandidates' stable ties are broken by
// pre-sort order. raw shares candidate pointers with cpool, so the extra
// memory is only the dropped duplicates.
type poolEntry struct {
	rp    *replacer
	cpool []*candidate
	err   error

	gen        uint64 // calibration generation (Tracking pools only)
	raw        []*candidate
	prog       *routeProg
	seed       []int // place() output the base routing started from
	baseLayout []int // routeDry's winning initial layout
	baseRes    passResult
	// groups indexes the immutable skey/lkey structure of raw and order
	// is this generation's sorted permutation of it; both are computed by
	// the first incremental upgrade and carried down the lineage so later
	// upgrades replace the assembly's hash maps with dense passes and
	// start the sort from a nearly-sorted permutation (recompile.go).
	groups *poolGroups
	order  []int32

	mu   sync.Mutex
	exes map[*candidate]*Executable
}

// topK selects k members from the cached pool and materializes them,
// reusing executables already materialized for another k. Selection
// order and tie-breaks are identical to an uncached TopK call.
func (pe *poolEntry) topK(k int) ([]*Executable, error) {
	if pe.err != nil {
		return nil, pe.err
	}
	sel := selectDiverse(pe.cpool, k)
	out := make([]*Executable, len(sel))
	for i, cd := range sel {
		out[i] = pe.materialize(cd)
	}
	return out, nil
}

func (pe *poolEntry) materialize(cd *candidate) *Executable {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if exe, ok := pe.exes[cd]; ok {
		return exe
	}
	exe := pe.rp.materialize(cd)
	pe.exes[cd] = exe
	return exe
}

// bestEntry is one circuit's memoized k = 1 result.
type bestEntry struct {
	exes []*Executable
	err  error
}

// CachedCompiler returns a compiler for the calibration, reusing a
// previously built one when the calibration fingerprint matches
// (device.Calibration.Fingerprint hashes every field that affects
// compilation). Concurrent callers that miss on the same fingerprint
// share a single construction. The calibration must not be mutated after
// the call — the same contract as NewCompiler, made durable by the
// cache. Compilers are immutable, so a cached instance is safe to share
// across goroutines.
//
// Unlike NewCompiler, the returned compiler also memoizes TopK ensembles
// per circuit fingerprint (see DESIGN.md §9); call Uncached for a view
// without that layer.
func CachedCompiler(cal *device.Calibration) *Compiler {
	return compilerCache.Get(cal.Fingerprint(), func() *Compiler {
		c := NewCompiler(cal)
		c.ens = newEnsembleCache()
		return c
	})
}

// Uncached returns a view of the compiler with ensemble caching
// disabled: every TopK call re-enumerates and re-materializes from
// scratch, replicating the cost structure of a compiler built with
// NewCompiler. The view shares the receiver's immutable tables, so it is
// free to construct and safe to use concurrently with the original.
func (c *Compiler) Uncached() *Compiler {
	if c.ens == nil {
		return c
	}
	cc := *c
	cc.ens = nil
	return &cc
}

// circuitKey is the ensemble-cache key: the circuit's semantic
// fingerprint (registers, ordered ops, exact parameter bits).
func circuitKey(logical *circuit.Circuit) uint64 {
	return logical.Fingerprint()
}

// CompilerCacheStats snapshots the CachedCompiler cache counters.
func CompilerCacheStats() memo.Stats { return compilerCtr.Stats() }

// TopKCacheStats snapshots the ensemble (Top-K pool + single-best)
// cache counters, aggregated across every cached compiler.
func TopKCacheStats() memo.Stats { return topkCtr.Stats() }

// ResetCompilerCache drops every cached compiler — and with them their
// ensemble caches. Tests and benchmarks use it to measure cold paths.
func ResetCompilerCache() {
	compilerCache.Each(func(_ uint64, c *Compiler) {
		if c.ens != nil {
			c.ens.pools.Reset()
			c.ens.best.Reset()
		}
	})
	compilerCache.Reset()
}
