package circuit

import (
	"math/cmplx"
	"testing"

	"edm/internal/rng"
)

func TestInverseOfEveryUnitaryKind(t *testing.T) {
	// A circuit touching every unitary kind composed with its inverse must
	// be the identity matrix on the full register (up to global phase we
	// verify via matrix products per op).
	cases := []struct {
		k      Kind
		params []float64
	}{
		{I, nil}, {X, nil}, {Y, nil}, {Z, nil}, {H, nil}, {S, nil}, {Sdg, nil},
		{T, nil}, {Tdg, nil}, {RX, []float64{0.7}}, {RY, []float64{1.3}},
		{RZ, []float64{-2.1}}, {U1, []float64{0.9}}, {U2, []float64{0.4, 1.1}},
		{U3, []float64{0.6, 1.7, 2.8}},
	}
	for _, tc := range cases {
		op := Op{Kind: tc.k, Qubits: []int{0}, Params: tc.params, Cbit: -1}
		inv, err := inverseOp(op)
		if err != nil {
			t.Fatalf("%v: %v", tc.k, err)
		}
		m := Matrix1Q(tc.k, tc.params)
		mi := Matrix1Q(inv.Kind, inv.Params)
		prod := mi.Mul(m)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(prod[i][j]-want) > 1e-12 {
					t.Fatalf("%v: inverse wrong at (%d,%d): %v", tc.k, i, j, prod[i][j])
				}
			}
		}
	}
}

func TestInverseUndoesRandomCircuit(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		rr := r.DeriveN("t", trial)
		c := New(4, 0)
		for i := 0; i < 25; i++ {
			switch rr.Intn(5) {
			case 0:
				c.H(rr.Intn(4))
			case 1:
				c.U3(rr.Intn(4), rr.Float64()*3, rr.Float64()*6, rr.Float64()*6)
			case 2:
				c.U2(rr.Intn(4), rr.Float64()*6, rr.Float64()*6)
			case 3:
				a := rr.Intn(4)
				b := (a + 1 + rr.Intn(3)) % 4
				c.CX(a, b)
			default:
				a := rr.Intn(4)
				b := (a + 1 + rr.Intn(3)) % 4
				c.SWAP(a, b)
			}
		}
		inv, err := c.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		echo := New(4, 0)
		echo.Append(c).Append(inv)
		amp := propagate(echo)
		if p := real(amp[0])*real(amp[0]) + imag(amp[0])*imag(amp[0]); p < 1-1e-9 {
			t.Fatalf("trial %d: echo did not return to |0000>: P = %v", trial, p)
		}
	}
}

// propagate is a minimal statevector propagator local to this test
// (package statevec imports circuit, so the full engine cannot be used
// here without an import cycle).
func propagate(c *Circuit) []complex128 {
	amp := make([]complex128, 1<<uint(c.NumQubits))
	amp[0] = 1
	for _, op := range c.Ops {
		switch {
		case op.Kind == Barrier:
		case op.Kind.IsTwoQubit():
			m := Matrix2Q(op.Kind)
			b0 := 1 << uint(op.Qubits[0])
			b1 := 1 << uint(op.Qubits[1])
			for base := 0; base < len(amp); base++ {
				if base&b0 != 0 || base&b1 != 0 {
					continue
				}
				idx := [4]int{base, base | b0, base | b1, base | b0 | b1}
				var in [4]complex128
				for k := 0; k < 4; k++ {
					in[k] = amp[idx[k]]
				}
				for r := 0; r < 4; r++ {
					amp[idx[r]] = m[r][0]*in[0] + m[r][1]*in[1] + m[r][2]*in[2] + m[r][3]*in[3]
				}
			}
		default:
			m := Matrix1Q(op.Kind, op.Params)
			bit := 1 << uint(op.Qubits[0])
			for base := 0; base < len(amp); base++ {
				if base&bit != 0 {
					continue
				}
				a0, a1 := amp[base], amp[base|bit]
				amp[base] = m[0][0]*a0 + m[0][1]*a1
				amp[base|bit] = m[1][0]*a0 + m[1][1]*a1
			}
		}
	}
	return amp
}

func TestInverseRejectsMeasurement(t *testing.T) {
	c := New(1, 1)
	c.H(0).Measure(0, 0)
	if _, err := c.Inverse(); err == nil {
		t.Fatal("measurement inverted")
	}
}

func TestInverseKeepsBarriers(t *testing.T) {
	c := New(2, 0)
	c.H(0).Barrier().CX(0, 1)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Ops[1].Kind != Barrier {
		t.Fatalf("barrier lost: %v", inv.Ops)
	}
	if inv.Ops[0].Kind != CX || inv.Ops[2].Kind != H {
		t.Fatalf("order not reversed: %v", inv.Ops)
	}
	if inv.Name != "" && c.Name == "" {
		t.Fatalf("name invented: %q", inv.Name)
	}
}

func TestUnitaryPartStripsMeasurements(t *testing.T) {
	c := New(3, 3)
	c.H(0).CX(0, 1).Measure(0, 0).Barrier().T(2).Measure(1, 1)
	u := c.UnitaryPart()
	for i, op := range u.Ops {
		if op.Kind == Measure {
			t.Fatalf("op %d is still a measurement", i)
		}
	}
	wantKinds := []Kind{H, CX, Barrier, T}
	if len(u.Ops) != len(wantKinds) {
		t.Fatalf("got %d ops, want %d", len(u.Ops), len(wantKinds))
	}
	for i, k := range wantKinds {
		if u.Ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v", i, u.Ops[i].Kind, k)
		}
	}
	// The unitary part of any measured circuit must invert cleanly — that
	// is the property the bidirectional router relies on.
	if _, err := u.Inverse(); err != nil {
		t.Fatalf("UnitaryPart not invertible: %v", err)
	}
	// It must also be a copy: mutating it cannot corrupt the original.
	u.Ops[0].Kind = X
	if c.Ops[0].Kind != H {
		t.Fatal("UnitaryPart aliases the source ops")
	}
}
