package circuit

import (
	"fmt"
	"math"
)

// Inverse returns the circuit implementing the inverse unitary: the
// operations reversed, each replaced by its dagger. Barriers are kept in
// place (mirrored); measurements have no inverse and cause an error.
// Echo-style experiments (run C then C⁻¹ and check the register returned
// to |0...0>) are the standard way to expose coherent errors, which is
// why a noise-focused library wants this.
func (c *Circuit) Inverse() (*Circuit, error) {
	out := New(c.NumQubits, c.NumClbits)
	if c.Name != "" {
		out.Name = c.Name + "-dg"
	}
	for i := len(c.Ops) - 1; i >= 0; i-- {
		op := c.Ops[i]
		inv, err := inverseOp(op)
		if err != nil {
			return nil, fmt.Errorf("circuit: op %d: %w", i, err)
		}
		out.Ops = append(out.Ops, inv)
	}
	return out, nil
}

// UnitaryPart returns a copy of the circuit with every measurement
// removed; barriers and unitary gates are kept in order. The result is
// invertible, which is what the bidirectional router needs: it routes the
// inverse of the compute part of a program to refine the initial layout,
// and measurements neither move qubits nor have a dagger.
func (c *Circuit) UnitaryPart() *Circuit {
	out := New(c.NumQubits, c.NumClbits)
	out.Name = c.Name
	for _, op := range c.Ops {
		if op.Kind == Measure {
			continue
		}
		out.Ops = append(out.Ops, op.Clone())
	}
	return out
}

// inverseOp returns the dagger of a single operation.
func inverseOp(op Op) (Op, error) {
	inv := op.Clone()
	switch op.Kind {
	case I, X, Y, Z, H, CX, CZ, SWAP, Barrier:
		// self-inverse (barrier is an ordering fence either way)
	case S:
		inv.Kind = Sdg
	case Sdg:
		inv.Kind = S
	case T:
		inv.Kind = Tdg
	case Tdg:
		inv.Kind = T
	case RX, RY, RZ, U1:
		inv.Params = []float64{-op.Params[0]}
	case U2:
		// U2(phi, lambda) = U3(pi/2, phi, lambda); its dagger is
		// U3(-pi/2, -lambda, -phi), which U2's fixed theta cannot express.
		inv.Kind = U3
		inv.Params = []float64{-math.Pi / 2, -op.Params[1], -op.Params[0]}
	case U3:
		inv.Params = []float64{-op.Params[0], -op.Params[2], -op.Params[1]}
	case Measure:
		return Op{}, fmt.Errorf("measurement has no inverse")
	default:
		return Op{}, fmt.Errorf("unknown kind %v", op.Kind)
	}
	return inv, nil
}
