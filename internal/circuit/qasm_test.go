package circuit

import (
	"strings"
	"testing"
)

func TestQASMOutput(t *testing.T) {
	c := New(3, 2)
	c.Name = "demo"
	c.H(0).RZ(1, 0.5).U3(2, 0.1, 0.2, 0.3).CX(0, 1).SWAP(1, 2).
		Barrier().Barrier(0, 2).Measure(0, 0).Measure(2, 1)
	q := c.QASM()
	want := []string{
		"OPENQASM 2.0;",
		`include "qelib1.inc";`,
		"// circuit: demo",
		"qreg q[3];",
		"creg c[2];",
		"h q[0];",
		"rz(0.5) q[1];",
		"u3(0.1,0.2,0.3) q[2];",
		"cx q[0],q[1];",
		"swap q[1],q[2];",
		"barrier q;",
		"barrier q[0],q[2];",
		"measure q[0] -> c[0];",
		"measure q[2] -> c[1];",
	}
	for _, w := range want {
		if !strings.Contains(q, w) {
			t.Errorf("QASM missing %q:\n%s", w, q)
		}
	}
	// Lines in program order.
	if strings.Index(q, "h q[0]") > strings.Index(q, "cx q[0]") {
		t.Error("QASM op order wrong")
	}
}

func TestQASMNoClassicalRegister(t *testing.T) {
	c := New(1, 0)
	c.X(0)
	q := c.QASM()
	if strings.Contains(q, "creg") {
		t.Errorf("empty classical register emitted:\n%s", q)
	}
}

func FuzzParseText(f *testing.F) {
	seeds := []string{
		"qubits 2\ncbits 2\nh 0\ncx 0 1\nmeasure 0 -> 0\n",
		"circuit x\nqubits 3\nswap 0 2\nbarrier\n",
		"qubits 1\nrz(0.5) 0\n",
		"qubits 2\nu3(1,2,3) 1\n# comment\n",
		"qubits 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseText(src)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		// Anything accepted must be valid and round-trip stably.
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseText accepted invalid circuit: %v", err)
		}
		text := c.Text()
		c2, err := ParseText(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if c2.Text() != text {
			t.Fatalf("round trip unstable:\n%q\nvs\n%q", c2.Text(), text)
		}
	})
}
