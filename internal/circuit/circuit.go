package circuit

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Op is one operation in a circuit.
type Op struct {
	Kind   Kind
	Qubits []int     // operand qubits; for CX, Qubits[0] is the control
	Params []float64 // rotation parameters, if any
	Cbit   int       // classical destination for Measure; -1 otherwise
}

// NewOp builds a validated Op. Most callers use the Circuit builder
// methods instead.
func NewOp(k Kind, qubits []int, params []float64, cbit int) Op {
	return Op{Kind: k, Qubits: qubits, Params: params, Cbit: cbit}
}

// Clone returns a deep copy of the op.
func (o Op) Clone() Op {
	c := o
	c.Qubits = append([]int(nil), o.Qubits...)
	c.Params = append([]float64(nil), o.Params...)
	return c
}

// Circuit is an ordered quantum program over NumQubits qubits and
// NumClbits classical bits.
type Circuit struct {
	NumQubits int
	NumClbits int
	Ops       []Op
	Name      string

	// fp caches the semantic fingerprint (fingerprint.go). The builder
	// API only ever appends ops, so a cached hash is valid exactly while
	// len(Ops) is unchanged; the pointer makes concurrent Fingerprint
	// calls on a shared circuit race-free. Clone and composite literals
	// leave it nil, which just means "not computed yet".
	fp atomic.Pointer[fpCache]
}

// fpCache pairs a fingerprint with the op count it was computed at.
type fpCache struct {
	nOps int
	hash uint64
}

// New returns an empty circuit with the given register sizes.
func New(numQubits, numClbits int) *Circuit {
	if numQubits < 0 || numClbits < 0 {
		panic("circuit: negative register size")
	}
	return &Circuit{NumQubits: numQubits, NumClbits: numClbits}
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NumQubits: c.NumQubits, NumClbits: c.NumClbits, Name: c.Name}
	out.Ops = make([]Op, len(c.Ops))
	for i, op := range c.Ops {
		out.Ops[i] = op.Clone()
	}
	return out
}

func (c *Circuit) checkQubit(q int) {
	if q < 0 || q >= c.NumQubits {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
	}
}

func (c *Circuit) checkCbit(b int) {
	if b < 0 || b >= c.NumClbits {
		panic(fmt.Sprintf("circuit: classical bit %d out of range [0,%d)", b, c.NumClbits))
	}
}

func (c *Circuit) add1q(k Kind, q int, params ...float64) *Circuit {
	c.checkQubit(q)
	if len(params) != k.NumParams() {
		panic(fmt.Sprintf("circuit: %v expects %d params, got %d", k, k.NumParams(), len(params)))
	}
	c.Ops = append(c.Ops, Op{Kind: k, Qubits: []int{q}, Params: params, Cbit: -1})
	return c
}

func (c *Circuit) add2q(k Kind, a, b int) *Circuit {
	c.checkQubit(a)
	c.checkQubit(b)
	if a == b {
		panic(fmt.Sprintf("circuit: %v with identical operands %d", k, a))
	}
	c.Ops = append(c.Ops, Op{Kind: k, Qubits: []int{a, b}, Cbit: -1})
	return c
}

// The builder methods append a gate and return the circuit for chaining.

// ID appends an identity gate (an explicit idle slot).
func (c *Circuit) ID(q int) *Circuit { return c.add1q(I, q) }

// X appends a Pauli-X gate.
func (c *Circuit) X(q int) *Circuit { return c.add1q(X, q) }

// Y appends a Pauli-Y gate.
func (c *Circuit) Y(q int) *Circuit { return c.add1q(Y, q) }

// Z appends a Pauli-Z gate.
func (c *Circuit) Z(q int) *Circuit { return c.add1q(Z, q) }

// H appends a Hadamard gate.
func (c *Circuit) H(q int) *Circuit { return c.add1q(H, q) }

// S appends a phase gate S.
func (c *Circuit) S(q int) *Circuit { return c.add1q(S, q) }

// Sdg appends the inverse phase gate.
func (c *Circuit) Sdg(q int) *Circuit { return c.add1q(Sdg, q) }

// T appends a T gate.
func (c *Circuit) T(q int) *Circuit { return c.add1q(T, q) }

// Tdg appends the inverse T gate.
func (c *Circuit) Tdg(q int) *Circuit { return c.add1q(Tdg, q) }

// RX appends a rotation about X by theta.
func (c *Circuit) RX(q int, theta float64) *Circuit { return c.add1q(RX, q, theta) }

// RY appends a rotation about Y by theta.
func (c *Circuit) RY(q int, theta float64) *Circuit { return c.add1q(RY, q, theta) }

// RZ appends a rotation about Z by theta.
func (c *Circuit) RZ(q int, theta float64) *Circuit { return c.add1q(RZ, q, theta) }

// U1 appends the IBM U1 (phase) gate.
func (c *Circuit) U1(q int, lambda float64) *Circuit { return c.add1q(U1, q, lambda) }

// U2 appends the IBM U2 gate.
func (c *Circuit) U2(q int, phi, lambda float64) *Circuit { return c.add1q(U2, q, phi, lambda) }

// U3 appends the IBM U3 gate.
func (c *Circuit) U3(q int, theta, phi, lambda float64) *Circuit {
	return c.add1q(U3, q, theta, phi, lambda)
}

// CX appends a controlled-NOT with the given control and target.
func (c *Circuit) CX(control, target int) *Circuit { return c.add2q(CX, control, target) }

// CZ appends a controlled-Z.
func (c *Circuit) CZ(a, b int) *Circuit { return c.add2q(CZ, a, b) }

// SWAP appends a SWAP gate.
func (c *Circuit) SWAP(a, b int) *Circuit { return c.add2q(SWAP, a, b) }

// Measure appends a measurement of qubit q into classical bit b.
func (c *Circuit) Measure(q, b int) *Circuit {
	c.checkQubit(q)
	c.checkCbit(b)
	c.Ops = append(c.Ops, Op{Kind: Measure, Qubits: []int{q}, Cbit: b})
	return c
}

// MeasureAll measures qubit i into classical bit i for all i. It panics if
// the classical register is smaller than the quantum register.
func (c *Circuit) MeasureAll() *Circuit {
	if c.NumClbits < c.NumQubits {
		panic("circuit: MeasureAll needs NumClbits >= NumQubits")
	}
	for q := 0; q < c.NumQubits; q++ {
		c.Measure(q, q)
	}
	return c
}

// Barrier appends a scheduling fence over the given qubits (all qubits if
// none are given).
func (c *Circuit) Barrier(qubits ...int) *Circuit {
	for _, q := range qubits {
		c.checkQubit(q)
	}
	c.Ops = append(c.Ops, Op{Kind: Barrier, Qubits: append([]int(nil), qubits...), Cbit: -1})
	return c
}

// Append adds all operations of other to c. The registers of other must fit
// within c.
func (c *Circuit) Append(other *Circuit) *Circuit {
	if other.NumQubits > c.NumQubits || other.NumClbits > c.NumClbits {
		panic("circuit: Append source larger than destination")
	}
	for _, op := range other.Ops {
		c.Ops = append(c.Ops, op.Clone())
	}
	return c
}

// Validate checks every operation against the register sizes and returns
// the first problem found, or nil. Circuits built exclusively through the
// builder methods are always valid; Validate exists for parsed or
// hand-assembled circuits.
func (c *Circuit) Validate() error {
	if c.NumQubits < 0 || c.NumClbits < 0 {
		return fmt.Errorf("circuit: negative register size")
	}
	for i, op := range c.Ops {
		if op.Kind < 0 || op.Kind >= numKinds {
			return fmt.Errorf("circuit: op %d has invalid kind %d", i, int(op.Kind))
		}
		if a := op.Kind.Arity(); a >= 0 && len(op.Qubits) != a {
			return fmt.Errorf("circuit: op %d (%v) has %d operands, want %d", i, op.Kind, len(op.Qubits), a)
		}
		seen := map[int]bool{}
		for _, q := range op.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit: op %d (%v) qubit %d out of range", i, op.Kind, q)
			}
			if seen[q] {
				return fmt.Errorf("circuit: op %d (%v) repeats qubit %d", i, op.Kind, q)
			}
			seen[q] = true
		}
		if len(op.Params) != op.Kind.NumParams() {
			return fmt.Errorf("circuit: op %d (%v) has %d params, want %d", i, op.Kind, len(op.Params), op.Kind.NumParams())
		}
		if op.Kind == Measure {
			if op.Cbit < 0 || op.Cbit >= c.NumClbits {
				return fmt.Errorf("circuit: op %d measures into invalid bit %d", i, op.Cbit)
			}
		}
	}
	return nil
}

// Stats summarizes operation counts the way the paper's Table 1 does.
type Stats struct {
	SG    int // one-qubit gates
	CX    int // two-qubit gates, with each SWAP counted as 3 CX
	M     int // measurements
	Swaps int // raw SWAP ops before lowering
}

// Stats returns operation counts. Identity gates and barriers are not
// counted (they exist for scheduling only).
func (c *Circuit) Stats() Stats {
	var s Stats
	for _, op := range c.Ops {
		switch {
		case op.Kind == Measure:
			s.M++
		case op.Kind == SWAP:
			s.Swaps++
			s.CX += 3
		case op.Kind.IsTwoQubit():
			s.CX++
		case op.Kind == Barrier || op.Kind == I:
			// not counted
		default:
			s.SG++
		}
	}
	return s
}

// Depth returns the circuit depth: the length of the longest chain of
// dependent operations, scheduling each op as soon as all its qubits are
// free. Barriers synchronize their qubits but contribute no depth.
func (c *Circuit) Depth() int {
	avail := make([]int, c.NumQubits)
	maxDepth := 0
	for _, op := range c.Ops {
		qs := op.Qubits
		if op.Kind == Barrier && len(qs) == 0 {
			qs = allQubits(c.NumQubits)
		}
		start := 0
		for _, q := range qs {
			if avail[q] > start {
				start = avail[q]
			}
		}
		end := start
		if op.Kind != Barrier {
			end = start + 1
		}
		for _, q := range qs {
			avail[q] = end
		}
		if end > maxDepth {
			maxDepth = end
		}
	}
	return maxDepth
}

func allQubits(n int) []int {
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	return qs
}

// UsedQubits returns the sorted set of qubits touched by any non-barrier
// operation.
func (c *Circuit) UsedQubits() []int {
	used := map[int]bool{}
	for _, op := range c.Ops {
		if op.Kind == Barrier {
			continue
		}
		for _, q := range op.Qubits {
			used[q] = true
		}
	}
	out := make([]int, 0, len(used))
	for q := range used {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// InteractionEdge is an undirected qubit pair that shares at least one
// two-qubit gate, with the number of such gates.
type InteractionEdge struct {
	A, B  int // A < B
	Count int
}

// InteractionGraph returns the circuit's two-qubit interaction edges in a
// deterministic order. The mapping compiler places this graph onto the
// device coupling graph.
func (c *Circuit) InteractionGraph() []InteractionEdge {
	counts := map[[2]int]int{}
	for _, op := range c.Ops {
		if !op.Kind.IsTwoQubit() {
			continue
		}
		a, b := op.Qubits[0], op.Qubits[1]
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	out := make([]InteractionEdge, 0, len(counts))
	for k, n := range counts {
		out = append(out, InteractionEdge{A: k[0], B: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Remap returns a copy of the circuit with every qubit q replaced by
// layout[q], acting on a register of numQubits qubits. Classical bits are
// unchanged: measurement results stay in program order, which is what lets
// differently mapped executables produce comparable output distributions.
// layout must be injective and cover every used qubit.
func (c *Circuit) Remap(layout []int, numQubits int) *Circuit {
	if len(layout) < c.NumQubits {
		panic(fmt.Sprintf("circuit: layout has %d entries for %d qubits", len(layout), c.NumQubits))
	}
	seen := map[int]bool{}
	for q := 0; q < c.NumQubits; q++ {
		p := layout[q]
		if p < 0 || p >= numQubits {
			panic(fmt.Sprintf("circuit: layout maps qubit %d to invalid physical qubit %d", q, p))
		}
		if seen[p] {
			panic(fmt.Sprintf("circuit: layout maps two qubits to physical qubit %d", p))
		}
		seen[p] = true
	}
	out := New(numQubits, c.NumClbits)
	out.Name = c.Name
	out.Ops = make([]Op, len(c.Ops))
	for i, op := range c.Ops {
		n := op.Clone()
		for j, q := range n.Qubits {
			n.Qubits[j] = layout[q]
		}
		out.Ops[i] = n
	}
	return out
}

// LowerSwaps returns a copy with every SWAP replaced by three CX gates,
// the decomposition actually executed on CX-native hardware.
func (c *Circuit) LowerSwaps() *Circuit {
	out := New(c.NumQubits, c.NumClbits)
	out.Name = c.Name
	for _, op := range c.Ops {
		if op.Kind != SWAP {
			out.Ops = append(out.Ops, op.Clone())
			continue
		}
		a, b := op.Qubits[0], op.Qubits[1]
		out.CX(a, b).CX(b, a).CX(a, b)
	}
	return out
}

// MeasuredBits returns, for each classical bit, the qubit whose final
// measurement writes it, or -1 if the bit is never written. A later
// measurement of the same classical bit overrides an earlier one.
func (c *Circuit) MeasuredBits() []int {
	out := make([]int, c.NumClbits)
	for i := range out {
		out[i] = -1
	}
	for _, op := range c.Ops {
		if op.Kind == Measure {
			out[op.Cbit] = op.Qubits[0]
		}
	}
	return out
}
