package circuit

import (
	"fmt"
	"strconv"
	"strings"
)

// QASM renders the circuit as OpenQASM 2.0, the interchange format of the
// IBM toolchain the paper's experiments went through. Barriers map to
// QASM barriers; the identity gate maps to `id`. The output targets the
// standard `qelib1.inc` gate set, which contains every gate this IR
// defines.
func (c *Circuit) QASM() string {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\n")
	sb.WriteString("include \"qelib1.inc\";\n")
	if c.Name != "" {
		fmt.Fprintf(&sb, "// circuit: %s\n", c.Name)
	}
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.NumQubits)
	if c.NumClbits > 0 {
		fmt.Fprintf(&sb, "creg c[%d];\n", c.NumClbits)
	}
	for _, op := range c.Ops {
		switch op.Kind {
		case Measure:
			fmt.Fprintf(&sb, "measure q[%d] -> c[%d];\n", op.Qubits[0], op.Cbit)
		case Barrier:
			if len(op.Qubits) == 0 {
				sb.WriteString("barrier q;\n")
				continue
			}
			parts := make([]string, len(op.Qubits))
			for i, q := range op.Qubits {
				parts[i] = fmt.Sprintf("q[%d]", q)
			}
			fmt.Fprintf(&sb, "barrier %s;\n", strings.Join(parts, ","))
		default:
			sb.WriteString(op.Kind.String())
			if len(op.Params) > 0 {
				sb.WriteByte('(')
				for i, p := range op.Params {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
				}
				sb.WriteByte(')')
			}
			sb.WriteByte(' ')
			parts := make([]string, len(op.Qubits))
			for i, q := range op.Qubits {
				parts[i] = fmt.Sprintf("q[%d]", q)
			}
			sb.WriteString(strings.Join(parts, ","))
			sb.WriteString(";\n")
		}
	}
	return sb.String()
}
