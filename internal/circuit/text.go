package circuit

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// This file implements a small textual circuit format used by the CLI for
// dumping compiled executables and by tests for golden comparisons. It is a
// deliberately tiny QASM-like dialect:
//
//	# comment
//	circuit bv-6
//	qubits 7
//	cbits 6
//	h 0
//	rz(0.5) 2
//	u3(0.1,0.2,0.3) 1
//	cx 0 1
//	swap 2 3
//	measure 4 -> 4
//	barrier
//	barrier 0 1

// Text renders the circuit in the textual format.
func (c *Circuit) Text() string {
	var sb strings.Builder
	if c.Name != "" {
		fmt.Fprintf(&sb, "circuit %s\n", c.Name)
	}
	fmt.Fprintf(&sb, "qubits %d\n", c.NumQubits)
	fmt.Fprintf(&sb, "cbits %d\n", c.NumClbits)
	for _, op := range c.Ops {
		switch op.Kind {
		case Measure:
			fmt.Fprintf(&sb, "measure %d -> %d\n", op.Qubits[0], op.Cbit)
		case Barrier:
			sb.WriteString("barrier")
			for _, q := range op.Qubits {
				fmt.Fprintf(&sb, " %d", q)
			}
			sb.WriteByte('\n')
		default:
			sb.WriteString(op.Kind.String())
			if len(op.Params) > 0 {
				sb.WriteByte('(')
				for i, p := range op.Params {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
				}
				sb.WriteByte(')')
			}
			for _, q := range op.Qubits {
				fmt.Fprintf(&sb, " %d", q)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// ParseText parses the textual circuit format produced by Text.
func ParseText(src string) (*Circuit, error) {
	sc := bufio.NewScanner(strings.NewReader(src))
	c := New(0, 0)
	lineNo := 0
	sawQubits := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		head := fields[0]
		switch head {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: circuit needs one name", lineNo)
			}
			c.Name = fields[1]
			continue
		case "qubits":
			n, err := parseRegSize(fields, lineNo)
			if err != nil {
				return nil, err
			}
			c.NumQubits = n
			sawQubits = true
			continue
		case "cbits":
			n, err := parseRegSize(fields, lineNo)
			if err != nil {
				return nil, err
			}
			c.NumClbits = n
			continue
		case "measure":
			// measure q -> b
			if len(fields) != 4 || fields[2] != "->" {
				return nil, fmt.Errorf("line %d: measure syntax is 'measure q -> b'", lineNo)
			}
			q, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad qubit %q", lineNo, fields[1])
			}
			b, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad classical bit %q", lineNo, fields[3])
			}
			c.Ops = append(c.Ops, Op{Kind: Measure, Qubits: []int{q}, Cbit: b})
			continue
		case "barrier":
			qs := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				q, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad qubit %q", lineNo, f)
				}
				qs = append(qs, q)
			}
			c.Ops = append(c.Ops, Op{Kind: Barrier, Qubits: qs, Cbit: -1})
			continue
		}
		// Gate line: name or name(p1,p2,...).
		name := head
		var params []float64
		if i := strings.IndexByte(head, '('); i >= 0 {
			if !strings.HasSuffix(head, ")") {
				return nil, fmt.Errorf("line %d: unterminated parameter list", lineNo)
			}
			name = head[:i]
			for _, ps := range strings.Split(head[i+1:len(head)-1], ",") {
				ps = strings.TrimSpace(ps)
				if ps == "" {
					continue
				}
				p, err := strconv.ParseFloat(ps, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad parameter %q", lineNo, ps)
				}
				params = append(params, p)
			}
		}
		kind, ok := KindFromName(name)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown gate %q", lineNo, name)
		}
		qs := make([]int, 0, len(fields)-1)
		for _, f := range fields[1:] {
			q, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad qubit %q", lineNo, f)
			}
			qs = append(qs, q)
		}
		c.Ops = append(c.Ops, Op{Kind: kind, Qubits: qs, Params: params, Cbit: -1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawQubits {
		return nil, fmt.Errorf("circuit: missing 'qubits' declaration")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseRegSize(fields []string, lineNo int) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("line %d: %s needs one integer", lineNo, fields[0])
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("line %d: bad register size %q", lineNo, fields[1])
	}
	return n, nil
}
