package circuit

import "math"

// FNV-1a 64-bit constants, inlined so fingerprinting allocates nothing.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// Fingerprint returns a canonical 64-bit hash of the circuit's semantic
// content: register sizes and the ordered operation list (kind, operand
// qubits, classical bit, exact parameter bits). The Name field is
// excluded — two circuits that execute identically fingerprint
// identically regardless of labelling. The backend keys its compiled-
// program cache on this value, so the hash must change whenever anything
// that affects compilation changes.
//
// The hash is cached on the circuit and recomputed only when the op
// count has changed since it was taken: the package's only mutators
// append ops, so an unchanged length means an unchanged circuit. Every
// cache layer keyed on the fingerprint (compiled programs, ensemble
// compilations, run memoization, campaign rounds) hits this on its hot
// path, and rehashing a thousand-op circuit per lookup was the dominant
// cost of a cold campaign round.
func (c *Circuit) Fingerprint() uint64 {
	if fp := c.fp.Load(); fp != nil && fp.nOps == len(c.Ops) {
		return fp.hash
	}
	h := c.fingerprint()
	c.fp.Store(&fpCache{nOps: len(c.Ops), hash: h})
	return h
}

func (c *Circuit) fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(c.NumQubits))
	h = fnvUint64(h, uint64(c.NumClbits))
	for _, op := range c.Ops {
		h = fnvUint64(h, uint64(op.Kind))
		h = fnvUint64(h, uint64(len(op.Qubits)))
		for _, q := range op.Qubits {
			h = fnvUint64(h, uint64(q))
		}
		// Cbit is -1 for non-measure ops; the uint64 conversion is still
		// deterministic and collision-free per op position.
		h = fnvUint64(h, uint64(int64(op.Cbit)))
		h = fnvUint64(h, uint64(len(op.Params)))
		for _, p := range op.Params {
			h = fnvUint64(h, math.Float64bits(p))
		}
	}
	return h
}
