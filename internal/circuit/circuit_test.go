package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestBuilderAndValidate(t *testing.T) {
	c := New(3, 3)
	c.H(0).CX(0, 1).RZ(2, 0.5).SWAP(1, 2).Measure(0, 0).Barrier().MeasureAll()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(c.Ops) != 9 {
		t.Fatalf("ops = %d", len(c.Ops))
	}
}

func TestBuilderPanics(t *testing.T) {
	c := New(2, 2)
	mustPanic(t, func() { c.H(2) })
	mustPanic(t, func() { c.CX(0, 0) })
	mustPanic(t, func() { c.CX(0, 5) })
	mustPanic(t, func() { c.Measure(0, 7) })
	mustPanic(t, func() { New(1, 0).MeasureAll() })
	mustPanic(t, func() { New(-1, 0) })
}

func TestStatsTable1Style(t *testing.T) {
	// A circuit with 3 one-qubit gates, 2 CX, 1 SWAP (=3 CX), 2 measures.
	c := New(3, 3)
	c.H(0).X(1).RZ(2, 1.0).CX(0, 1).CZ(1, 2).SWAP(0, 2).Measure(0, 0).Measure(1, 1)
	s := c.Stats()
	if s.SG != 3 || s.CX != 5 || s.M != 2 || s.Swaps != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestStatsIgnoresBarriersAndID(t *testing.T) {
	c := New(2, 2)
	c.Barrier().ID(0).Barrier(0, 1)
	s := c.Stats()
	if s.SG != 0 || s.CX != 0 || s.M != 0 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestDepth(t *testing.T) {
	c := New(3, 3)
	// Layer 1: H(0), H(1); layer 2: CX(0,1); layer 3: CX(1,2); layer 4: M.
	c.H(0).H(1).CX(0, 1).CX(1, 2).Measure(2, 2)
	if d := c.Depth(); d != 4 {
		t.Fatalf("Depth = %d, want 4", d)
	}
	// Parallel gates share a layer.
	p := New(4, 0)
	p.H(0).H(1).H(2).H(3)
	if d := p.Depth(); d != 1 {
		t.Fatalf("parallel Depth = %d, want 1", d)
	}
	if d := New(2, 0).Depth(); d != 0 {
		t.Fatalf("empty Depth = %d", d)
	}
}

func TestDepthBarrierSynchronizes(t *testing.T) {
	a := New(2, 0)
	a.H(0).H(1) // both in layer 1 without barrier between
	b := New(2, 0)
	b.H(0).Barrier().H(1) // barrier forces H(1) after H(0)
	if a.Depth() != 1 || b.Depth() != 2 {
		t.Fatalf("barrier depth: a=%d b=%d", a.Depth(), b.Depth())
	}
}

func TestInteractionGraph(t *testing.T) {
	c := New(4, 0)
	c.CX(0, 1).CX(1, 0).CZ(2, 3).CX(0, 1).H(2)
	edges := c.InteractionGraph()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0].A != 0 || edges[0].B != 1 || edges[0].Count != 3 {
		t.Fatalf("edge[0] = %+v", edges[0])
	}
	if edges[1].A != 2 || edges[1].B != 3 || edges[1].Count != 1 {
		t.Fatalf("edge[1] = %+v", edges[1])
	}
}

func TestRemap(t *testing.T) {
	c := New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	m := c.Remap([]int{5, 3}, 14)
	if m.NumQubits != 14 || m.NumClbits != 2 {
		t.Fatalf("registers: %d/%d", m.NumQubits, m.NumClbits)
	}
	if m.Ops[0].Qubits[0] != 5 {
		t.Fatalf("H went to %d", m.Ops[0].Qubits[0])
	}
	if m.Ops[1].Qubits[0] != 5 || m.Ops[1].Qubits[1] != 3 {
		t.Fatalf("CX went to %v", m.Ops[1].Qubits)
	}
	// Classical bits unchanged: measure of logical 1 (physical 3) writes bit 1.
	if m.Ops[3].Qubits[0] != 3 || m.Ops[3].Cbit != 1 {
		t.Fatalf("measure op = %+v", m.Ops[3])
	}
	// Original untouched.
	if c.Ops[0].Qubits[0] != 0 {
		t.Fatal("Remap mutated the source circuit")
	}
}

func TestRemapPanics(t *testing.T) {
	c := New(2, 2)
	c.CX(0, 1)
	mustPanic(t, func() { c.Remap([]int{0}, 14) })     // too short
	mustPanic(t, func() { c.Remap([]int{0, 0}, 14) })  // not injective
	mustPanic(t, func() { c.Remap([]int{0, 99}, 14) }) // out of range
	mustPanic(t, func() { c.Remap([]int{0, -1}, 14) }) // negative
}

func TestLowerSwaps(t *testing.T) {
	c := New(3, 0)
	c.SWAP(0, 2).H(1)
	l := c.LowerSwaps()
	if len(l.Ops) != 4 {
		t.Fatalf("lowered ops = %d", len(l.Ops))
	}
	if l.Ops[0].Kind != CX || l.Ops[1].Kind != CX || l.Ops[2].Kind != CX {
		t.Fatalf("lowering wrong: %v %v %v", l.Ops[0].Kind, l.Ops[1].Kind, l.Ops[2].Kind)
	}
	if l.Ops[0].Qubits[0] != 0 || l.Ops[1].Qubits[0] != 2 || l.Ops[2].Qubits[0] != 0 {
		t.Fatal("CX-CX-CX pattern must alternate direction")
	}
	if s := l.Stats(); s.Swaps != 0 || s.CX != 3 {
		t.Fatalf("lowered stats = %+v", s)
	}
}

func TestUsedQubits(t *testing.T) {
	c := New(6, 6)
	c.H(4).CX(1, 4).Measure(4, 0).Barrier()
	got := c.UsedQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("UsedQubits = %v", got)
	}
}

func TestMeasuredBits(t *testing.T) {
	c := New(3, 3)
	c.Measure(2, 0).Measure(0, 2)
	mb := c.MeasuredBits()
	if mb[0] != 2 || mb[1] != -1 || mb[2] != 0 {
		t.Fatalf("MeasuredBits = %v", mb)
	}
	// Later measurement overrides.
	c.Measure(1, 0)
	if c.MeasuredBits()[0] != 1 {
		t.Fatal("override not applied")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(2, 2)
	c.RX(0, 0.7).CX(0, 1)
	cl := c.Clone()
	cl.Ops[0].Params[0] = 9
	cl.Ops[1].Qubits[0] = 1
	cl.Ops[1].Qubits[1] = 0
	if c.Ops[0].Params[0] != 0.7 || c.Ops[1].Qubits[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestAppend(t *testing.T) {
	a := New(3, 3)
	a.H(0)
	b := New(2, 1)
	b.CX(0, 1).Measure(0, 0)
	a.Append(b)
	if len(a.Ops) != 3 {
		t.Fatalf("Append ops = %d", len(a.Ops))
	}
	mustPanic(t, func() { New(1, 0).Append(New(2, 0)) })
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []Op{
		{Kind: Kind(99), Qubits: []int{0}, Cbit: -1},
		{Kind: CX, Qubits: []int{0}, Cbit: -1},
		{Kind: H, Qubits: []int{5}, Cbit: -1},
		{Kind: CX, Qubits: []int{0, 0}, Cbit: -1},
		{Kind: RZ, Qubits: []int{0}, Cbit: -1}, // missing param
		{Kind: Measure, Qubits: []int{0}, Cbit: 9},
	}
	for i, op := range cases {
		c := New(2, 2)
		c.Ops = append(c.Ops, op)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: corruption not caught", i)
		}
	}
}

func TestMatrixUnitarity(t *testing.T) {
	oneQ := []struct {
		k      Kind
		params []float64
	}{
		{I, nil}, {X, nil}, {Y, nil}, {Z, nil}, {H, nil}, {S, nil}, {Sdg, nil},
		{T, nil}, {Tdg, nil}, {RX, []float64{0.3}}, {RY, []float64{1.1}},
		{RZ, []float64{2.2}}, {U1, []float64{0.4}}, {U2, []float64{0.1, 0.2}},
		{U3, []float64{0.5, 1.5, 2.5}},
	}
	for _, tc := range oneQ {
		m := Matrix1Q(tc.k, tc.params)
		if !m.IsUnitary(1e-12) {
			t.Errorf("%v is not unitary", tc.k)
		}
	}
	for _, k := range []Kind{CX, CZ, SWAP} {
		if !Matrix2Q(k).IsUnitary(1e-12) {
			t.Errorf("%v is not unitary", k)
		}
	}
}

func TestMatrixIdentities(t *testing.T) {
	// HZH = X
	h := Matrix1Q(H, nil)
	z := Matrix1Q(Z, nil)
	x := Matrix1Q(X, nil)
	hzh := h.Mul(z).Mul(h)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if d := hzh[i][j] - x[i][j]; math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
				t.Fatalf("HZH != X at (%d,%d): %v vs %v", i, j, hzh[i][j], x[i][j])
			}
		}
	}
	// S*S = Z
	s := Matrix1Q(S, nil)
	ss := s.Mul(s)
	if ss != z {
		t.Fatalf("SS != Z: %v", ss)
	}
	// U3(pi/2, 0, pi) == H up to rounding.
	u := Matrix1Q(U3, []float64{math.Pi / 2, 0, math.Pi})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			d := u[i][j] - h[i][j]
			if math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
				t.Fatalf("U3(pi/2,0,pi) != H at (%d,%d)", i, j)
			}
		}
	}
	// RZ(theta) equals U1(theta) up to global phase exp(-i theta/2).
	theta := 0.77
	rz := Matrix1Q(RZ, []float64{theta})
	u1 := Matrix1Q(U1, []float64{theta})
	phase := rz[0][0] // exp(-i theta/2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			d := rz[i][j] - phase*u1[i][j]
			if math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
				t.Fatalf("RZ != phase*U1 at (%d,%d)", i, j)
			}
		}
	}
}

func TestKindMeta(t *testing.T) {
	if CX.Arity() != 2 || H.Arity() != 1 || Barrier.Arity() != -1 {
		t.Fatal("Arity wrong")
	}
	if U3.NumParams() != 3 || U2.NumParams() != 2 || RZ.NumParams() != 1 || H.NumParams() != 0 {
		t.Fatal("NumParams wrong")
	}
	if Measure.IsUnitary() || Barrier.IsUnitary() || !H.IsUnitary() {
		t.Fatal("IsUnitary wrong")
	}
	if !SWAP.IsTwoQubit() || H.IsTwoQubit() {
		t.Fatal("IsTwoQubit wrong")
	}
	if k, ok := KindFromName("cx"); !ok || k != CX {
		t.Fatal("KindFromName wrong")
	}
	if _, ok := KindFromName("nope"); ok {
		t.Fatal("KindFromName accepted garbage")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("out-of-range Kind String wrong")
	}
}

func TestMatrix1QPanics(t *testing.T) {
	mustPanic(t, func() { Matrix1Q(CX, nil) })
	mustPanic(t, func() { Matrix1Q(RZ, nil) })
	mustPanic(t, func() { Matrix2Q(H) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
