package circuit

import "testing"

func fpBell() *Circuit {
	c := New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	return c
}

func TestFingerprintStable(t *testing.T) {
	a, b := fpBell(), fpBell()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical circuits produced different fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
}

func TestFingerprintIgnoresName(t *testing.T) {
	a, b := fpBell(), fpBell()
	b.Name = "some label"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on the display name")
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	base := fpBell()
	variants := map[string]*Circuit{}

	c := New(3, 2) // more qubits
	c.H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	variants["qubit count"] = c

	c = New(2, 2) // different gate kind
	c.H(0).CZ(0, 1).MeasureAll()
	variants["gate kind"] = c

	c = New(2, 2) // different operand order
	c.H(0).CX(1, 0).MeasureAll()
	variants["operand order"] = c

	c = New(2, 2) // different classical wiring
	c.H(0).CX(0, 1).Measure(0, 1).Measure(1, 0)
	variants["clbit wiring"] = c

	c = New(2, 2) // extra parameterized gate
	c.H(0).CX(0, 1).RZ(0, 0.5).MeasureAll()
	variants["extra op"] = c

	for name, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %q collides with the base circuit", name)
		}
	}

	p1, p2 := New(1, 1), New(1, 1)
	p1.RZ(0, 0.5).Measure(0, 0)
	p2.RZ(0, 0.5000001).Measure(0, 0)
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Error("fingerprint ignores gate parameters")
	}
}

// TestFingerprintCacheInvalidation pins the cache contract: the hash is
// cached per op count, so a repeat call is a cache hit, appending ops
// recomputes, and the recomputed value equals an uncached circuit's.
func TestFingerprintCacheInvalidation(t *testing.T) {
	c := fpBell()
	before := c.Fingerprint()
	if got := c.Fingerprint(); got != before {
		t.Fatal("cached fingerprint differs from first computation")
	}
	c.RZ(0, 0.25)
	after := c.Fingerprint()
	if after == before {
		t.Fatal("fingerprint not recomputed after appending an op")
	}
	fresh := New(2, 2)
	fresh.H(0).CX(0, 1).MeasureAll()
	fresh.RZ(0, 0.25)
	if fresh.Fingerprint() != after {
		t.Fatal("cached-then-extended circuit disagrees with a fresh build")
	}
	if c.Clone().Fingerprint() != after {
		t.Fatal("clone fingerprint differs from the original")
	}
}
