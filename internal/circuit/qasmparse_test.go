package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestParseQASMRoundTrip(t *testing.T) {
	c := New(4, 3)
	c.Name = "demo"
	c.H(0).X(1).RZ(2, 0.5).U3(3, 0.1, 0.2, 0.3).CX(0, 1).CZ(1, 2).SWAP(2, 3).
		Barrier().Barrier(0, 2).Measure(0, 0).Measure(3, 2)
	parsed, err := ParseQASM(c.QASM())
	if err != nil {
		t.Fatalf("ParseQASM: %v\n%s", err, c.QASM())
	}
	if parsed.Name != "demo" {
		t.Errorf("name = %q", parsed.Name)
	}
	if parsed.NumQubits != 4 || parsed.NumClbits != 3 {
		t.Fatalf("registers %d/%d", parsed.NumQubits, parsed.NumClbits)
	}
	if len(parsed.Ops) != len(c.Ops) {
		t.Fatalf("ops %d, want %d", len(parsed.Ops), len(c.Ops))
	}
	for i := range c.Ops {
		if parsed.Ops[i].Kind != c.Ops[i].Kind {
			t.Fatalf("op %d kind %v, want %v", i, parsed.Ops[i].Kind, c.Ops[i].Kind)
		}
	}
	// Second round trip is stable.
	again, err := ParseQASM(parsed.QASM())
	if err != nil {
		t.Fatal(err)
	}
	if again.QASM() != parsed.QASM() {
		t.Fatal("QASM round trip unstable")
	}
}

func TestParseQASMPiIdioms(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(pi) q[0];
rx(pi/2) q[0];
ry(-pi/4) q[0];
u1(2*pi) q[0];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi, math.Pi / 2, -math.Pi / 4, 2 * math.Pi}
	for i, w := range want {
		if got := c.Ops[i].Params[0]; math.Abs(got-w) > 1e-12 {
			t.Errorf("op %d param = %v, want %v", i, got, w)
		}
	}
}

func TestParseQASMCustomRegisterNames(t *testing.T) {
	src := `OPENQASM 2.0;
qreg data[2];
creg out[2];
h data[0];
cx data[0],data[1];
measure data[1] -> out[0];
barrier data;
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || c.NumClbits != 2 || len(c.Ops) != 4 {
		t.Fatalf("parsed wrong: %d/%d ops %d", c.NumQubits, c.NumClbits, len(c.Ops))
	}
	if c.Ops[3].Kind != Barrier || len(c.Ops[3].Qubits) != 0 {
		t.Fatalf("whole-register barrier wrong: %+v", c.Ops[3])
	}
}

func TestParseQASMErrors(t *testing.T) {
	cases := []string{
		"",                                    // no version
		"OPENQASM 2.0;",                       // no qreg
		"OPENQASM 2.0; qreg q[2]; qreg r[2];", // two qregs
		"OPENQASM 2.0; qreg q[2]; creg c[1]; creg d[1];",            // two cregs
		"OPENQASM 2.0; qreg q[2]; frob q[0];",                       // unknown gate
		"OPENQASM 2.0; qreg q[2]; h r[0];",                          // unknown register
		"OPENQASM 2.0; qreg q[2]; h q[5];",                          // out of range
		"OPENQASM 2.0; qreg q[2]; rz(x) q[0];",                      // bad param
		"OPENQASM 2.0; qreg q[2]; cx q[0],q[0];",                    // repeated operand
		"OPENQASM 2.0; qreg q[2]; creg c[1]; measure q[0] to c[0];", // bad arrow
		"OPENQASM 2.0; qreg q[-1];",                                 // bad size
		"OPENQASM 2.0; qreg q[2]; h;",                               // missing operand (statement malformed)
	}
	for _, src := range cases {
		if _, err := ParseQASM(src); err == nil {
			t.Errorf("ParseQASM(%q) succeeded", src)
		}
	}
}

func TestParseQASMWorkloadInterop(t *testing.T) {
	// A hand-written IBM-style program computes the same distribution
	// after import as the natively built equivalent.
	src := `// Bell pair, qiskit style
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	imported, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	native := New(2, 2)
	native.H(0).CX(0, 1).MeasureAll()
	a := propagate(stripMeasures(imported))
	b := propagate(stripMeasures(native))
	for i := range a {
		if d := a[i] - b[i]; math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
			t.Fatalf("amplitude %d differs", i)
		}
	}
	if !strings.Contains(imported.QASM(), "cx q[0],q[1];") {
		t.Fatal("re-export wrong")
	}
}

func stripMeasures(c *Circuit) *Circuit {
	out := New(c.NumQubits, 0)
	for _, op := range c.Ops {
		if op.Kind == Measure || op.Kind == Barrier {
			continue
		}
		out.Ops = append(out.Ops, op.Clone())
	}
	return out
}
