package circuit

import (
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	c := New(4, 3)
	c.Name = "demo"
	c.H(0).RZ(1, 0.5).U3(2, 0.1, 0.2, 0.3).CX(0, 1).SWAP(2, 3).
		Barrier().Barrier(0, 2).Measure(0, 0).Measure(3, 2)
	text := c.Text()
	parsed, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	if parsed.Name != "demo" || parsed.NumQubits != 4 || parsed.NumClbits != 3 {
		t.Fatalf("header: %q %d %d", parsed.Name, parsed.NumQubits, parsed.NumClbits)
	}
	if len(parsed.Ops) != len(c.Ops) {
		t.Fatalf("ops = %d, want %d", len(parsed.Ops), len(c.Ops))
	}
	if parsed.Text() != text {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", parsed.Text(), text)
	}
}

func TestParseComments(t *testing.T) {
	src := `
# a comment
circuit test
qubits 2
cbits 2

h 0
# another
cx 0 1
measure 1 -> 1
`
	c, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ops) != 3 {
		t.Fatalf("ops = %d", len(c.Ops))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"h 0",                               // missing qubits decl
		"qubits 2\nfrob 0",                  // unknown gate
		"qubits 2\nrz(x) 0",                 // bad param
		"qubits 2\nrz(0.5 0",                // unterminated params
		"qubits 2\nh zero",                  // bad operand
		"qubits 2\ncbits 1\nmeasure 0 to 0", // bad measure syntax
		"qubits 2\nh 5",                     // validation: out of range
		"qubits 2\ncx 0 0",                  // validation: repeated operand
		"qubits 2\nrz 0",                    // validation: missing param
		"qubits -2",                         // bad register
		"qubits 2\ncbits 1\nmeasure 0 -> 4", // bad cbit
		"qubits 2\ncbits 1\nmeasure q -> 0", // bad qubit
		"qubits 2\nbarrier x",               // bad barrier operand
		"circuit a b\nqubits 1",             // circuit name arity
	}
	for _, src := range cases {
		if _, err := ParseText(src); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", src)
		}
	}
}

func TestTextContainsParams(t *testing.T) {
	c := New(1, 0)
	c.RZ(0, 0.25)
	if !strings.Contains(c.Text(), "rz(0.25) 0") {
		t.Fatalf("Text = %q", c.Text())
	}
}
