// Package circuit defines the quantum-circuit intermediate representation
// shared by the workload generators, the mapping compiler, and the
// simulation backends.
//
// A Circuit is an ordered list of operations over a fixed number of qubits
// and classical bits. The gate set matches what the paper's workloads and
// the IBM devices of that era need: the standard one-qubit Cliffords and
// rotations (including the IBM U1/U2/U3 family), CX/CZ/SWAP two-qubit
// gates, measurement, and barriers.
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Kind identifies an operation type.
type Kind int

// The supported operation kinds.
const (
	// One-qubit gates.
	I Kind = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	RX // one parameter: rotation angle theta
	RY // one parameter
	RZ // one parameter
	U1 // one parameter: lambda (phase gate)
	U2 // two parameters: phi, lambda
	U3 // three parameters: theta, phi, lambda
	// Two-qubit gates.
	CX   // control, target
	CZ   // symmetric
	SWAP // symmetric
	// Non-unitary operations.
	Measure // one qubit, one classical bit
	Barrier // any number of qubits (empty = all); scheduling fence
	numKinds
)

var kindNames = [numKinds]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", RX: "rx", RY: "ry", RZ: "rz",
	U1: "u1", U2: "u2", U3: "u3",
	CX: "cx", CZ: "cz", SWAP: "swap",
	Measure: "measure", Barrier: "barrier",
}

// String returns the lower-case mnemonic used in the textual circuit form.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindFromName returns the Kind with the given mnemonic.
func KindFromName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Arity returns the number of qubit operands the kind requires; Barrier
// returns -1 (variadic).
func (k Kind) Arity() int {
	switch k {
	case CX, CZ, SWAP:
		return 2
	case Barrier:
		return -1
	default:
		return 1
	}
}

// NumParams returns the number of real parameters the kind requires.
func (k Kind) NumParams() int {
	switch k {
	case RX, RY, RZ, U1:
		return 1
	case U2:
		return 2
	case U3:
		return 3
	default:
		return 0
	}
}

// IsUnitary reports whether the kind is a unitary gate (as opposed to
// Measure or Barrier).
func (k Kind) IsUnitary() bool { return k != Measure && k != Barrier }

// IsTwoQubit reports whether the kind is a two-qubit unitary.
func (k Kind) IsTwoQubit() bool { return k == CX || k == CZ || k == SWAP }

// Matrix2 is a one-qubit unitary in row-major order over basis {|0>, |1>}.
type Matrix2 [2][2]complex128

// Matrix4 is a two-qubit unitary over basis {|00>, |01>, |10>, |11>} where
// the first operand qubit is the *low* bit of the basis index. For CX the
// first operand is the control.
type Matrix4 [4][4]complex128

// Matrix1Q returns the 2x2 unitary for a one-qubit gate with the given
// parameters. It panics for non-unitary or two-qubit kinds or a wrong
// parameter count.
func Matrix1Q(k Kind, params []float64) Matrix2 {
	if len(params) != k.NumParams() {
		panic(fmt.Sprintf("circuit: %v expects %d params, got %d", k, k.NumParams(), len(params)))
	}
	switch k {
	case I:
		return Matrix2{{1, 0}, {0, 1}}
	case X:
		return Matrix2{{0, 1}, {1, 0}}
	case Y:
		return Matrix2{{0, -1i}, {1i, 0}}
	case Z:
		return Matrix2{{1, 0}, {0, -1}}
	case H:
		s := complex(1/math.Sqrt2, 0)
		return Matrix2{{s, s}, {s, -s}}
	case S:
		return Matrix2{{1, 0}, {0, 1i}}
	case Sdg:
		return Matrix2{{1, 0}, {0, -1i}}
	case T:
		return Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
	case Tdg:
		return Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}
	case RX:
		c := complex(math.Cos(params[0]/2), 0)
		s := complex(0, -math.Sin(params[0]/2))
		return Matrix2{{c, s}, {s, c}}
	case RY:
		c := complex(math.Cos(params[0]/2), 0)
		s := complex(math.Sin(params[0]/2), 0)
		return Matrix2{{c, -s}, {s, c}}
	case RZ:
		em := cmplx.Exp(complex(0, -params[0]/2))
		ep := cmplx.Exp(complex(0, params[0]/2))
		return Matrix2{{em, 0}, {0, ep}}
	case U1:
		return Matrix2{{1, 0}, {0, cmplx.Exp(complex(0, params[0]))}}
	case U2:
		return u3Matrix(math.Pi/2, params[0], params[1])
	case U3:
		return u3Matrix(params[0], params[1], params[2])
	default:
		panic(fmt.Sprintf("circuit: %v is not a one-qubit unitary", k))
	}
}

// u3Matrix returns the IBM U3(theta, phi, lambda) gate.
func u3Matrix(theta, phi, lambda float64) Matrix2 {
	c := math.Cos(theta / 2)
	s := math.Sin(theta / 2)
	return Matrix2{
		{complex(c, 0), -cmplx.Exp(complex(0, lambda)) * complex(s, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(s, 0), cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0)},
	}
}

// Matrix2Q returns the 4x4 unitary for a two-qubit gate. Basis ordering:
// index = q0 + 2*q1 where q0 is the first operand (control for CX).
func Matrix2Q(k Kind) Matrix4 {
	switch k {
	case CX:
		// Control is the low bit: |c t> -> |c, t xor c>.
		return Matrix4{
			{1, 0, 0, 0}, // |00> -> |00>
			{0, 0, 0, 1}, // |01> (c=1,t=0) -> |11>
			{0, 0, 1, 0}, // |10> (c=0,t=1) -> |10>
			{0, 1, 0, 0}, // |11> -> |01>
		}
	case CZ:
		return Matrix4{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, -1},
		}
	case SWAP:
		return Matrix4{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
		}
	default:
		panic(fmt.Sprintf("circuit: %v is not a two-qubit unitary", k))
	}
}

// IsDiagonal reports whether both off-diagonal entries are exactly zero
// (RZ, U1, Z, S, T and their products). Exact zeros are required so the
// diagonal fast path is bit-compatible with the general kernel.
func (m Matrix2) IsDiagonal() bool {
	return m[0][1] == 0 && m[1][0] == 0
}

// IsAntiDiagonal reports whether both diagonal entries are exactly zero
// (X, Y and their diagonal multiples).
func (m Matrix2) IsAntiDiagonal() bool {
	return m[0][0] == 0 && m[1][1] == 0
}

// NearIdentity reports whether m equals the identity up to a global phase
// within tol: off-diagonals below tol, diagonal entries equal within tol,
// and unit modulus within tol. A global phase on a trajectory or density
// state is unobservable, so such gates can be dropped from a schedule.
func (m Matrix2) NearIdentity(tol float64) bool {
	if cmplx.Abs(m[0][1]) > tol || cmplx.Abs(m[1][0]) > tol {
		return false
	}
	if cmplx.Abs(m[0][0]-m[1][1]) > tol {
		return false
	}
	return math.Abs(cmplx.Abs(m[0][0])-1) <= tol
}

// DiagonalOf returns the diagonal of m and whether every off-diagonal
// entry is exactly zero (ZZ interactions, CZ, products of RZ lifts).
func (m Matrix4) DiagonalOf() ([4]complex128, bool) {
	var d [4]complex128
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r == c {
				d[r] = m[r][c]
			} else if m[r][c] != 0 {
				return d, false
			}
		}
	}
	return d, true
}

// NearIdentity reports whether m equals the identity up to a global phase
// within tol.
func (m Matrix4) NearIdentity(tol float64) bool {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r != c && cmplx.Abs(m[r][c]) > tol {
				return false
			}
		}
	}
	for r := 1; r < 4; r++ {
		if cmplx.Abs(m[r][r]-m[0][0]) > tol {
			return false
		}
	}
	return math.Abs(cmplx.Abs(m[0][0])-1) <= tol
}

// Dagger returns the conjugate transpose of m.
func (m Matrix2) Dagger() Matrix2 {
	return Matrix2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// Mul returns m * other (matrix product).
func (m Matrix2) Mul(other Matrix2) Matrix2 {
	var out Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = m[i][0]*other[0][j] + m[i][1]*other[1][j]
		}
	}
	return out
}

// IsUnitary reports whether m is unitary to within tol.
func (m Matrix2) IsUnitary(tol float64) bool {
	p := m.Mul(m.Dagger())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// IsUnitary reports whether m is unitary to within tol.
func (m Matrix4) IsUnitary(tol float64) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var dot complex128
			for k := 0; k < 4; k++ {
				dot += m[i][k] * cmplx.Conj(m[j][k])
			}
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(dot-want) > tol {
				return false
			}
		}
	}
	return true
}
