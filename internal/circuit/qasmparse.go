package circuit

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseQASM parses the OpenQASM 2.0 subset this package emits (and that
// covers the paper's workloads): a single quantum and a single classical
// register, the qelib1 gates of this IR, measure and barrier. Register
// names are arbitrary; comments and the include directive are ignored.
// Together with (*Circuit).QASM this gives lossless round-tripping, so
// circuits can move between this library and the IBM toolchain.
func ParseQASM(src string) (*Circuit, error) {
	c := New(0, 0)
	qreg, creg := "", ""
	sawVersion := false

	// Strip line comments, then split into ';'-terminated statements.
	var cleaned strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			// Keep a possible circuit-name annotation.
			comment := strings.TrimSpace(line[i+2:])
			if strings.HasPrefix(comment, "circuit:") {
				c.Name = strings.TrimSpace(strings.TrimPrefix(comment, "circuit:"))
			}
			line = line[:i]
		}
		cleaned.WriteString(line)
		cleaned.WriteByte('\n')
	}
	for stmtNo, raw := range strings.Split(cleaned.String(), ";") {
		stmt := strings.TrimSpace(raw)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "OPENQASM"):
			sawVersion = true
		case strings.HasPrefix(stmt, "include"):
			// qelib1.inc is assumed.
		case strings.HasPrefix(stmt, "qreg"):
			name, size, err := parseReg(stmt[4:])
			if err != nil {
				return nil, fmt.Errorf("circuit: statement %d: %w", stmtNo, err)
			}
			if qreg != "" {
				return nil, fmt.Errorf("circuit: statement %d: multiple qregs unsupported", stmtNo)
			}
			qreg, c.NumQubits = name, size
		case strings.HasPrefix(stmt, "creg"):
			name, size, err := parseReg(stmt[4:])
			if err != nil {
				return nil, fmt.Errorf("circuit: statement %d: %w", stmtNo, err)
			}
			if creg != "" {
				return nil, fmt.Errorf("circuit: statement %d: multiple cregs unsupported", stmtNo)
			}
			creg, c.NumClbits = name, size
		case strings.HasPrefix(stmt, "measure"):
			parts := strings.Split(stmt[len("measure"):], "->")
			if len(parts) != 2 {
				return nil, fmt.Errorf("circuit: statement %d: malformed measure", stmtNo)
			}
			q, err := parseIndexed(strings.TrimSpace(parts[0]), qreg)
			if err != nil {
				return nil, fmt.Errorf("circuit: statement %d: %w", stmtNo, err)
			}
			b, err := parseIndexed(strings.TrimSpace(parts[1]), creg)
			if err != nil {
				return nil, fmt.Errorf("circuit: statement %d: %w", stmtNo, err)
			}
			c.Ops = append(c.Ops, Op{Kind: Measure, Qubits: []int{q}, Cbit: b})
		case strings.HasPrefix(stmt, "barrier"):
			operand := strings.TrimSpace(stmt[len("barrier"):])
			if operand == qreg && qreg != "" {
				c.Ops = append(c.Ops, Op{Kind: Barrier, Cbit: -1})
				continue
			}
			var qs []int
			for _, piece := range strings.Split(operand, ",") {
				q, err := parseIndexed(strings.TrimSpace(piece), qreg)
				if err != nil {
					return nil, fmt.Errorf("circuit: statement %d: %w", stmtNo, err)
				}
				qs = append(qs, q)
			}
			c.Ops = append(c.Ops, Op{Kind: Barrier, Qubits: qs, Cbit: -1})
		default:
			op, err := parseGateStmt(stmt, qreg)
			if err != nil {
				return nil, fmt.Errorf("circuit: statement %d: %w", stmtNo, err)
			}
			c.Ops = append(c.Ops, op)
		}
	}
	if !sawVersion {
		return nil, fmt.Errorf("circuit: missing OPENQASM version header")
	}
	if qreg == "" {
		return nil, fmt.Errorf("circuit: missing qreg declaration")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseReg(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	close := strings.IndexByte(s, ']')
	if open <= 0 || close != len(s)-1 {
		return "", 0, fmt.Errorf("malformed register declaration %q", s)
	}
	size, err := strconv.Atoi(s[open+1 : close])
	if err != nil || size < 0 {
		return "", 0, fmt.Errorf("bad register size in %q", s)
	}
	return strings.TrimSpace(s[:open]), size, nil
}

// parseIndexed parses reg[i] and checks the register name.
func parseIndexed(s, reg string) (int, error) {
	open := strings.IndexByte(s, '[')
	close := strings.IndexByte(s, ']')
	if open <= 0 || close != len(s)-1 {
		return 0, fmt.Errorf("malformed operand %q", s)
	}
	if name := strings.TrimSpace(s[:open]); name != reg {
		return 0, fmt.Errorf("unknown register %q in %q", name, s)
	}
	idx, err := strconv.Atoi(s[open+1 : close])
	if err != nil {
		return 0, fmt.Errorf("bad index in %q", s)
	}
	return idx, nil
}

func parseGateStmt(stmt, qreg string) (Op, error) {
	// Split "name(params) operands" — the first space outside parentheses
	// separates the head from the operand list.
	depth, split := 0, -1
	for i, r := range stmt {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ' ', '\t':
			if depth == 0 {
				split = i
			}
		}
		if split >= 0 {
			break
		}
	}
	if split < 0 {
		return Op{}, fmt.Errorf("malformed gate statement %q", stmt)
	}
	head := stmt[:split]
	operands := strings.TrimSpace(stmt[split:])

	name := head
	var params []float64
	if i := strings.IndexByte(head, '('); i >= 0 {
		if !strings.HasSuffix(head, ")") {
			return Op{}, fmt.Errorf("unterminated parameters in %q", head)
		}
		name = head[:i]
		for _, ps := range strings.Split(head[i+1:len(head)-1], ",") {
			ps = strings.TrimSpace(ps)
			if ps == "" {
				continue
			}
			v, err := parseQASMFloat(ps)
			if err != nil {
				return Op{}, err
			}
			params = append(params, v)
		}
	}
	kind, ok := KindFromName(name)
	if !ok || kind == Measure || kind == Barrier {
		return Op{}, fmt.Errorf("unsupported gate %q", name)
	}
	var qs []int
	for _, piece := range strings.Split(operands, ",") {
		q, err := parseIndexed(strings.TrimSpace(piece), qreg)
		if err != nil {
			return Op{}, err
		}
		qs = append(qs, q)
	}
	return Op{Kind: kind, Qubits: qs, Params: params, Cbit: -1}, nil
}

// parseQASMFloat accepts plain floats plus the pi idioms common in QASM
// sources: "pi", "-pi", "pi/2", "2*pi", "-pi/4".
func parseQASMFloat(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	const pi = 3.141592653589793
	neg := false
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "-") {
		neg = true
		t = strings.TrimSpace(t[1:])
	}
	var v float64
	switch {
	case t == "pi":
		v = pi
	case strings.HasPrefix(t, "pi/"):
		d, err := strconv.ParseFloat(t[3:], 64)
		if err != nil || d == 0 {
			return 0, fmt.Errorf("bad parameter %q", s)
		}
		v = pi / d
	case strings.HasSuffix(t, "*pi"):
		f, err := strconv.ParseFloat(t[:len(t)-3], 64)
		if err != nil {
			return 0, fmt.Errorf("bad parameter %q", s)
		}
		v = f * pi
	default:
		return 0, fmt.Errorf("bad parameter %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}
