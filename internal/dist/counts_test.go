package dist

import (
	"math"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/rng"
)

func TestCountsBasics(t *testing.T) {
	c := NewCounts(3)
	b := bitstr.MustParse("101")
	c.Observe(b)
	c.Observe(b)
	c.ObserveN(bitstr.MustParse("000"), 6)
	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Count(b) != 2 {
		t.Fatalf("Count = %d", c.Count(b))
	}
	d := c.Dist()
	if !approx(d.P(b), 0.25, 1e-12) {
		t.Fatalf("Dist P = %v", d.P(b))
	}
	if !approx(d.Sum(), 1, 1e-12) {
		t.Fatalf("Dist sum = %v", d.Sum())
	}
}

func TestCountsMerge(t *testing.T) {
	a := NewCounts(2)
	a.ObserveN(bitstr.MustParse("00"), 3)
	b := NewCounts(2)
	b.ObserveN(bitstr.MustParse("00"), 1)
	b.ObserveN(bitstr.MustParse("11"), 4)
	a.Merge(b)
	if a.Total() != 8 || a.Count(bitstr.MustParse("00")) != 4 {
		t.Fatalf("Merge wrong: total=%d", a.Total())
	}
}

func TestCountsSortedOrder(t *testing.T) {
	c := NewCounts(2)
	c.ObserveN(bitstr.MustParse("01"), 5)
	c.ObserveN(bitstr.MustParse("10"), 5)
	c.ObserveN(bitstr.MustParse("11"), 9)
	s := c.Sorted()
	if s[0].Count != 9 {
		t.Fatalf("Sorted[0] = %v", s[0])
	}
	// 5-5 tie broken by value: "01" packs to 2? bit0 leftmost: "01" -> bit1 set -> 2; "10" -> bit0 set -> 1.
	if s[1].Value.String() != "10" || s[2].Value.String() != "01" {
		t.Fatalf("tie-break wrong: %v", s)
	}
}

func TestCountsPanics(t *testing.T) {
	c := NewCounts(2)
	mustPanic(t, func() { c.Observe(bitstr.MustParse("111")) })
	mustPanic(t, func() { c.ObserveN(bitstr.MustParse("00"), -1) })
	mustPanic(t, func() { NewCounts(2).Dist() })
	mustPanic(t, func() { c.Merge(NewCounts(3)) })
}

func TestSampleConverges(t *testing.T) {
	d := MustFromMap(map[string]float64{"00": 0.5, "01": 0.3, "10": 0.15, "11": 0.05})
	r := rng.New(42)
	c := Sample(d, 200000, r)
	got := c.Dist()
	for _, o := range d.Sorted() {
		if math.Abs(got.P(o.Value)-o.P) > 0.01 {
			t.Errorf("Sample P(%v) = %v, want ~%v", o.Value, got.P(o.Value), o.P)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	d := Uniform(4)
	a := Sample(d, 1000, rng.New(7))
	b := Sample(d, 1000, rng.New(7))
	if !a.Dist().Equal(b.Dist(), 0) {
		t.Fatal("Sample not deterministic for equal seeds")
	}
}

func TestSampleZeroTrials(t *testing.T) {
	c := Sample(Uniform(2), 0, rng.New(1))
	if c.Total() != 0 {
		t.Fatalf("Total = %d", c.Total())
	}
}
