package dist

import (
	"fmt"
	"sort"

	"edm/internal/bitstr"
	"edm/internal/rng"
)

// Counts is a histogram of measurement outcomes — the raw "output log" of a
// NISQ run before conversion to a probability distribution.
type Counts struct {
	n     int
	c     map[uint64]int
	total int
}

// NewCounts returns an empty histogram over n-bit outcomes.
func NewCounts(n int) *Counts {
	if n < 0 || n > bitstr.MaxBits {
		panic(fmt.Sprintf("dist: width %d out of range", n))
	}
	return &Counts{n: n, c: make(map[uint64]int)}
}

// N returns the outcome width in bits.
func (c *Counts) N() int { return c.n }

// Total returns the number of recorded trials.
func (c *Counts) Total() int { return c.total }

// Observe records one trial with the given outcome.
func (c *Counts) Observe(b bitstr.BitString) {
	if b.Len() != c.n {
		panic(fmt.Sprintf("dist: outcome width %d does not match counts width %d", b.Len(), c.n))
	}
	c.c[b.Uint64()]++
	c.total++
}

// ObserveN records k identical trials.
func (c *Counts) ObserveN(b bitstr.BitString, k int) {
	if k < 0 {
		panic("dist: negative count")
	}
	if k == 0 {
		return
	}
	if b.Len() != c.n {
		panic(fmt.Sprintf("dist: outcome width %d does not match counts width %d", b.Len(), c.n))
	}
	c.c[b.Uint64()] += k
	c.total += k
}

// Count returns the number of trials that produced the outcome.
func (c *Counts) Count(b bitstr.BitString) int {
	if b.Len() != c.n {
		panic("dist: width mismatch")
	}
	return c.c[b.Uint64()]
}

// Merge adds all of other's observations into c.
func (c *Counts) Merge(other *Counts) {
	if c.n != other.n {
		panic("dist: Counts width mismatch")
	}
	for v, k := range other.c {
		c.c[v] += k
	}
	c.total += other.total
}

// Dist converts the histogram into a normalized probability distribution.
// It panics if no trials were recorded.
func (c *Counts) Dist() *Dist {
	if c.total == 0 {
		panic("dist: Counts.Dist with zero trials")
	}
	d := New(c.n)
	inv := 1 / float64(c.total)
	for v, k := range c.c {
		d.p[v] = float64(k) * inv
	}
	return d
}

// Sorted returns outcomes in decreasing count order (ties by value).
type CountEntry struct {
	Value bitstr.BitString
	Count int
}

// Sorted returns the non-zero entries ordered by decreasing count,
// breaking ties by increasing outcome value.
func (c *Counts) Sorted() []CountEntry {
	out := make([]CountEntry, 0, len(c.c))
	for v, k := range c.c {
		out = append(out, CountEntry{Value: bitstr.New(v, c.n), Count: k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Uint64() < out[j].Value.Uint64()
	})
	return out
}

// Sample draws trials outcomes from the distribution d and returns the
// resulting histogram — a convenience used by the buckets-and-balls model
// and by tests that need finite-sample noise on an exact distribution.
func Sample(d *Dist, trials int, r *rng.RNG) *Counts {
	if trials < 0 {
		panic("dist: negative trials")
	}
	// Build a cumulative table over the support for O(log s) sampling.
	type cum struct {
		v  uint64
		up float64
	}
	support := make([]cum, 0, len(d.p))
	var acc float64
	// Iterate deterministically for reproducibility.
	vals := make([]uint64, 0, len(d.p))
	for v := range d.p {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		acc += d.p[v]
		support = append(support, cum{v: v, up: acc})
	}
	if acc <= 0 {
		panic("dist: Sample from zero distribution")
	}
	c := NewCounts(d.n)
	for i := 0; i < trials; i++ {
		x := r.Float64() * acc
		lo, hi := 0, len(support)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if support[mid].up < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c.c[support[lo].v]++
		c.total++
	}
	return c
}
