package dist

import (
	"strings"
	"testing"

	"edm/internal/bitstr"
)

// The checked constructors exist so user-supplied job payloads degrade
// to errors on the serving path; the panicking variants must keep their
// contract for repository-internal call sites.

func TestNewChecked(t *testing.T) {
	for _, bad := range []int{-1, bitstr.MaxBits + 1} {
		if _, err := NewChecked(bad); err == nil {
			t.Errorf("NewChecked(%d) succeeded, want error", bad)
		}
	}
	d, err := NewChecked(3)
	if err != nil || d.N() != 3 {
		t.Fatalf("NewChecked(3) = %v, %v", d, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestMergeChecked(t *testing.T) {
	if _, err := MergeChecked(nil); err == nil {
		t.Error("MergeChecked(nil) succeeded, want error")
	}
	a := MustFromMap(map[string]float64{"00": 1})
	b := MustFromMap(map[string]float64{"000": 1})
	if _, err := MergeChecked([]*Dist{a, b}); err == nil || !strings.Contains(err.Error(), "width") {
		t.Errorf("mixed-width MergeChecked err = %v, want width mismatch", err)
	}
	m, err := MergeChecked([]*Dist{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.P(bitstr.MustParse("00")); p != 1 {
		t.Errorf("merged mass = %v, want 1", p)
	}
}

func TestWeightedMergeChecked(t *testing.T) {
	a := MustFromMap(map[string]float64{"0": 1})
	b := MustFromMap(map[string]float64{"1": 1})
	cases := []struct {
		name    string
		members []*Dist
		weights []float64
	}{
		{"no members", nil, nil},
		{"length mismatch", []*Dist{a, b}, []float64{1}},
		{"negative weight", []*Dist{a, b}, []float64{1, -1}},
		{"all zero", []*Dist{a, b}, []float64{0, 0}},
	}
	for _, tc := range cases {
		if _, err := WeightedMergeChecked(tc.members, tc.weights); err == nil {
			t.Errorf("%s: succeeded, want error", tc.name)
		}
	}
	m, err := WeightedMergeChecked([]*Dist{a, b}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.P(bitstr.MustParse("0")); p != 0.75 {
		t.Errorf("weighted mass = %v, want 0.75", p)
	}
	// The panicking wrapper must still panic for internal callers.
	defer func() {
		if recover() == nil {
			t.Error("WeightedMerge with bad weights did not panic")
		}
	}()
	WeightedMerge([]*Dist{a}, []float64{-1})
}
