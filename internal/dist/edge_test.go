package dist

import (
	"math"
	"strings"
	"testing"

	"edm/internal/bitstr"
)

// Edge-case coverage for the smaller accessors and guard paths.

func TestAccessors(t *testing.T) {
	d := New(3)
	if d.N() != 3 {
		t.Fatal("Dist.N wrong")
	}
	if d.Space() != 8 {
		t.Fatal("Space wrong")
	}
	c := NewCounts(4)
	if c.N() != 4 {
		t.Fatal("Counts.N wrong")
	}
}

func TestStringRendering(t *testing.T) {
	d := MustFromMap(map[string]float64{"01": 0.75, "10": 0.25})
	s := d.String()
	if !strings.Contains(s, "01:0.7500") || !strings.Contains(s, "10:0.2500") {
		t.Fatalf("String = %q", s)
	}
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		t.Fatalf("String braces: %q", s)
	}
}

func TestSetRemovesZero(t *testing.T) {
	d := New(2)
	b := bitstr.MustParse("01")
	d.Set(b, 0.5)
	d.Set(b, 0)
	if d.Support() != 0 {
		t.Fatal("Set(0) did not remove the entry")
	}
	mustPanic(t, func() { d.Set(b, -1) })
	mustPanic(t, func() { d.Set(bitstr.MustParse("111"), 0.1) })
}

func TestAddGuards(t *testing.T) {
	d := New(2)
	b := bitstr.MustParse("10")
	d.Add(b, 0) // no-op
	if d.Support() != 0 {
		t.Fatal("Add(0) created an entry")
	}
	mustPanic(t, func() { d.Add(b, -0.1) })
	mustPanic(t, func() { d.Add(bitstr.MustParse("1"), 0.1) })
}

func TestNewWidthGuards(t *testing.T) {
	mustPanic(t, func() { New(-1) })
	mustPanic(t, func() { New(64) })
	mustPanic(t, func() { NewCounts(-1) })
	mustPanic(t, func() { MustFromMap(map[string]float64{"0x": 1}) })
}

func TestMostLikelyEmptyPanics(t *testing.T) {
	mustPanic(t, func() { New(2).MostLikely() })
}

func TestStrongestErrorWhenOnlyCorrect(t *testing.T) {
	correct := bitstr.MustParse("101")
	d := Point(correct)
	se := d.StrongestError(correct)
	if se.P != 0 {
		t.Fatalf("StrongestError P = %v", se.P)
	}
	if se.Value.Equal(correct) {
		t.Fatal("StrongestError returned the correct outcome")
	}
}

func TestStrongestErrorTieBreak(t *testing.T) {
	correct := bitstr.MustParse("00")
	d := New(2)
	d.Set(bitstr.MustParse("10"), 0.5) // value 1
	d.Set(bitstr.MustParse("01"), 0.5) // value 2
	se := d.StrongestError(correct)
	if se.Value.Uint64() != 1 {
		t.Fatalf("tie-break wrong: %v", se.Value)
	}
}

func TestKLWidthMismatchPanics(t *testing.T) {
	mustPanic(t, func() { Uniform(2).KL(Uniform(3)) })
	mustPanic(t, func() { Uniform(2).TV(Uniform(3)) })
}

func TestCountObserveWidthPanics(t *testing.T) {
	c := NewCounts(2)
	mustPanic(t, func() { c.Count(bitstr.MustParse("1")) })
}

func TestMergeSingle(t *testing.T) {
	d := MustFromMap(map[string]float64{"1": 1})
	m := Merge([]*Dist{d})
	if !m.Equal(d, 1e-12) {
		t.Fatal("Merge of one member changed it")
	}
	mustPanic(t, func() { Merge(nil) })
}

func TestSampleGuards(t *testing.T) {
	mustPanic(t, func() { Sample(Uniform(2), -1, nil) })
	mustPanic(t, func() { Sample(New(2), 5, nil) })
}

func TestRelStdDevZeroDist(t *testing.T) {
	if v := New(3).RelStdDev(); v != 0 {
		t.Fatalf("empty RelStdDev = %v", v)
	}
}

func TestIsNearUniformZeroWidth(t *testing.T) {
	d := New(0)
	d.Set(bitstr.Zeros(0), 1)
	if !d.IsNearUniform(0.1) {
		t.Fatal("zero-width distribution should count as uniform")
	}
}

func TestEqualAsymmetricSupport(t *testing.T) {
	a := MustFromMap(map[string]float64{"0": 1})
	b := MustFromMap(map[string]float64{"0": 1, "1": 1e-15})
	if !a.Equal(b, 1e-9) || !b.Equal(a, 1e-9) {
		t.Fatal("tiny extra support broke Equal")
	}
	c := MustFromMap(map[string]float64{"0": 0.5, "1": 0.5})
	if a.Equal(c, 1e-9) {
		t.Fatal("different distributions Equal")
	}
}

func TestKLEpsilonFloor(t *testing.T) {
	// P has support where Q has none: KL stays finite via the floor.
	p := MustFromMap(map[string]float64{"0": 0.5, "1": 0.5})
	q := MustFromMap(map[string]float64{"0": 1})
	kl := p.KL(q)
	if math.IsInf(kl, 1) || math.IsNaN(kl) {
		t.Fatalf("KL = %v", kl)
	}
	if kl <= 0 {
		t.Fatalf("KL = %v, want positive", kl)
	}
}
