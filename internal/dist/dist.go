// Package dist implements discrete probability distributions over n-bit
// measurement outcomes, together with the statistics the paper relies on:
// Kullback-Leibler divergence (Appendix B), the Inference Strength (IST)
// and Probability of Successful Trial (PST) figures of merit (Section 4.3),
// distribution merging for EDM and WEDM (Sections 5 and 6), and the
// relative-standard-deviation uniformity test from footnote 2.
package dist

import (
	"fmt"
	"math"
	"sort"

	"edm/internal/bitstr"
)

// Dist is a probability distribution over outcomes of a fixed bit width.
// Outcomes with probability zero may be absent from the map. A Dist is
// normally normalized (probabilities summing to 1) but intermediate,
// unnormalized values are allowed; use Normalize or check Sum.
type Dist struct {
	n int
	p map[uint64]float64
}

// New returns an empty (all-zero) distribution over n-bit outcomes. The
// width is a property of the circuit on every internal call site, so an
// out-of-range width is a programmer error and panics; widths derived
// from user-supplied payloads go through NewChecked.
func New(n int) *Dist {
	d, err := NewChecked(n)
	if err != nil {
		panic(err)
	}
	return d
}

// NewChecked is New returning an error instead of panicking on an
// out-of-range width, for widths that come from untrusted input (a
// served job's inline circuit) rather than repository code.
func NewChecked(n int) (*Dist, error) {
	if n < 0 || n > bitstr.MaxBits {
		return nil, fmt.Errorf("dist: width %d out of range [0,%d]", n, bitstr.MaxBits)
	}
	return &Dist{n: n, p: make(map[uint64]float64)}, nil
}

// Uniform returns the uniform distribution over all 2^n outcomes.
func Uniform(n int) *Dist {
	d := New(n)
	total := uint64(1) << uint(n)
	p := 1 / float64(total)
	for v := uint64(0); v < total; v++ {
		d.p[v] = p
	}
	return d
}

// Point returns the distribution that puts all mass on the given outcome.
func Point(b bitstr.BitString) *Dist {
	d := New(b.Len())
	d.p[b.Uint64()] = 1
	return d
}

// FromMap builds a distribution from outcome-string→probability pairs, e.g.
// {"00": 0.5, "11": 0.5}. All keys must share one width.
func FromMap(m map[string]float64) (*Dist, error) {
	var d *Dist
	for s, p := range m {
		b, err := bitstr.Parse(s)
		if err != nil {
			return nil, err
		}
		if d == nil {
			d = New(b.Len())
		} else if b.Len() != d.n {
			return nil, fmt.Errorf("dist: mixed widths %d and %d", d.n, b.Len())
		}
		if p < 0 {
			return nil, fmt.Errorf("dist: negative probability %v for %q", p, s)
		}
		if p > 0 {
			d.p[b.Uint64()] = p
		}
	}
	if d == nil {
		return nil, fmt.Errorf("dist: empty map")
	}
	return d, nil
}

// MustFromMap is FromMap that panics on error.
func MustFromMap(m map[string]float64) *Dist {
	d, err := FromMap(m)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the outcome width in bits.
func (d *Dist) N() int { return d.n }

// Space returns the number of possible outcomes, 2^n.
func (d *Dist) Space() uint64 { return uint64(1) << uint(d.n) }

// Support returns the number of outcomes with non-zero probability.
func (d *Dist) Support() int { return len(d.p) }

// P returns the probability of the outcome.
func (d *Dist) P(b bitstr.BitString) float64 {
	d.checkWidth(b)
	return d.p[b.Uint64()]
}

// PV returns the probability of the packed outcome value.
func (d *Dist) PV(v uint64) float64 { return d.p[v] }

// Set assigns probability p to the outcome. Setting zero removes the entry.
func (d *Dist) Set(b bitstr.BitString, p float64) {
	d.checkWidth(b)
	if p < 0 {
		panic(fmt.Sprintf("dist: negative probability %v", p))
	}
	if p == 0 {
		delete(d.p, b.Uint64())
		return
	}
	d.p[b.Uint64()] = p
}

// Add increases the probability mass of the outcome by p (p may not be
// negative).
func (d *Dist) Add(b bitstr.BitString, p float64) {
	d.checkWidth(b)
	if p < 0 {
		panic(fmt.Sprintf("dist: negative mass %v", p))
	}
	if p == 0 {
		return
	}
	d.p[b.Uint64()] += p
}

// sortedSupport returns the non-zero outcomes in increasing value order.
// Reductions iterate this slice rather than the map so that every
// floating-point summation has a deterministic order: reproducibility of
// the experiments depends on bit-identical statistics.
func (d *Dist) sortedSupport() []uint64 {
	vals := make([]uint64, 0, len(d.p))
	for v := range d.p {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Sum returns the total probability mass.
func (d *Dist) Sum() float64 {
	var s float64
	for _, v := range d.sortedSupport() {
		s += d.p[v]
	}
	return s
}

// Normalize scales the distribution so its mass is 1. It panics if the
// distribution is all-zero.
func (d *Dist) Normalize() {
	s := d.Sum()
	if s <= 0 {
		panic("dist: cannot normalize zero distribution")
	}
	for v, p := range d.p {
		d.p[v] = p / s
	}
}

// Clone returns an independent copy.
func (d *Dist) Clone() *Dist {
	c := New(d.n)
	for v, p := range d.p {
		c.p[v] = p
	}
	return c
}

// Scale multiplies every probability by f >= 0, returning a new Dist.
func (d *Dist) Scale(f float64) *Dist {
	if f < 0 {
		panic("dist: negative scale")
	}
	c := New(d.n)
	if f == 0 {
		return c
	}
	for v, p := range d.p {
		c.p[v] = p * f
	}
	return c
}

// Outcome is an outcome together with its probability, as returned by
// Sorted and TopK.
type Outcome struct {
	Value bitstr.BitString
	P     float64
}

// Sorted returns all non-zero outcomes in decreasing probability order,
// breaking ties by increasing outcome value so the order is deterministic.
// This is the ordering used by the paper's Figure 3.
func (d *Dist) Sorted() []Outcome {
	out := make([]Outcome, 0, len(d.p))
	for v, p := range d.p {
		out = append(out, Outcome{Value: bitstr.New(v, d.n), P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Value.Uint64() < out[j].Value.Uint64()
	})
	return out
}

// TopK returns the k most likely outcomes (fewer if the support is smaller).
func (d *Dist) TopK(k int) []Outcome {
	s := d.Sorted()
	if k < len(s) {
		s = s[:k]
	}
	return s
}

// MostLikely returns the single most likely outcome. It panics on an empty
// distribution.
func (d *Dist) MostLikely() Outcome {
	s := d.Sorted()
	if len(s) == 0 {
		panic("dist: empty distribution")
	}
	return s[0]
}

// PST returns the Probability of Successful Trial: the probability mass on
// the correct outcome (Section 4.3).
func (d *Dist) PST(correct bitstr.BitString) float64 {
	return d.P(correct)
}

// StrongestError returns the most probable outcome other than correct, with
// probability zero if every other outcome has zero mass.
func (d *Dist) StrongestError(correct bitstr.BitString) Outcome {
	d.checkWidth(correct)
	best := Outcome{Value: bitstr.BitString{}, P: -1}
	for v, p := range d.p {
		if v == correct.Uint64() {
			continue
		}
		b := bitstr.New(v, d.n)
		if p > best.P || (p == best.P && v < best.Value.Uint64()) {
			best = Outcome{Value: b, P: p}
		}
	}
	if best.P < 0 {
		// No erroneous outcome observed at all.
		other := correct.Flip(0)
		if d.n == 0 {
			panic("dist: StrongestError on zero-width distribution")
		}
		return Outcome{Value: other, P: 0}
	}
	return best
}

// IST returns the Inference Strength: P(correct) divided by the probability
// of the most frequent erroneous outcome (Section 4.3). If no erroneous
// outcome was observed the result is +Inf when the correct answer has mass
// and 0 otherwise (an empty log infers nothing).
func (d *Dist) IST(correct bitstr.BitString) float64 {
	pc := d.P(correct)
	pe := d.StrongestError(correct).P
	if pe == 0 {
		if pc == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return pc / pe
}

// Mean returns the mean probability over the full 2^n outcome space
// (including zero-probability outcomes).
func (d *Dist) Mean() float64 {
	return d.Sum() / float64(d.Space())
}

// RelStdDev returns sigma/mu of the probability vector over the full
// outcome space. A perfectly uniform distribution has RelStdDev 0; a point
// distribution over n bits has RelStdDev sqrt(2^n - 1). The paper's
// footnote 2 uses this statistic to detect outputs degraded to noise.
func (d *Dist) RelStdDev() float64 {
	mu := d.Mean()
	if mu == 0 {
		return 0
	}
	total := float64(d.Space())
	var sumsq float64
	for _, v := range d.sortedSupport() {
		diff := d.p[v] - mu
		sumsq += diff * diff
	}
	// Outcomes absent from the map contribute (0 - mu)^2 each.
	absent := total - float64(len(d.p))
	sumsq += absent * mu * mu
	return math.Sqrt(sumsq/total) / mu
}

// IsNearUniform reports whether the distribution is within factor (e.g.
// 0.1) of uniform as judged by relative standard deviation, the discard
// criterion sketched in the paper's footnote 2. The threshold is expressed
// as a fraction of the RelStdDev of a point distribution, the most peaked
// possible reference.
func (d *Dist) IsNearUniform(factor float64) bool {
	ref := math.Sqrt(float64(d.Space()) - 1)
	if ref == 0 {
		return true
	}
	return d.RelStdDev() < factor*ref
}

// Entropy returns the Shannon entropy in bits.
func (d *Dist) Entropy() float64 {
	var h float64
	for _, v := range d.sortedSupport() {
		if p := d.p[v]; p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// TV returns the total-variation distance to other (half the L1 distance).
func (d *Dist) TV(other *Dist) float64 {
	d.checkSame(other)
	var s float64
	for _, v := range d.sortedSupport() {
		s += math.Abs(d.p[v] - other.p[v])
	}
	for _, v := range other.sortedSupport() {
		if _, ok := d.p[v]; !ok {
			s += other.p[v]
		}
	}
	return s / 2
}

// klEpsilon is the floor applied to the reference distribution when
// computing KL divergence of empirical distributions: a finite sample can
// assign zero counts to outcomes that truly have small non-zero
// probability, which would make KL infinite. The floor corresponds to
// "less than one count in a much larger experiment" and matches how the
// paper can report finite pairwise divergences on 16k-trial histograms.
const klEpsilon = 1e-9

// KL returns the Kullback-Leibler divergence D(d || other) in nats
// (Appendix B, Equation 1), flooring the reference probability at
// klEpsilon to keep empirical divergences finite.
func (d *Dist) KL(other *Dist) float64 {
	d.checkSame(other)
	var s float64
	for _, v := range d.sortedSupport() {
		p := d.p[v]
		if p <= 0 {
			continue
		}
		q := other.p[v]
		if q < klEpsilon {
			q = klEpsilon
		}
		s += p * math.Log(p/q)
	}
	if s < 0 {
		// Tiny negative values can arise from the epsilon floor plus
		// floating-point rounding; true KL is non-negative.
		if s > -1e-12 {
			return 0
		}
	}
	return s
}

// SymKL returns the symmetric KL divergence SD(d, other) = D(d||other) +
// D(other||d) (Appendix B, Equation 4), the quantity WEDM uses for member
// weights.
func (d *Dist) SymKL(other *Dist) float64 {
	return d.KL(other) + other.KL(d)
}

// Merge returns the uniform average of the member distributions — the EDM
// combination rule (Section 5.2). All members must share one width and
// there must be at least one member; violations panic. MergeChecked is
// the error-returning variant for untrusted inputs.
func Merge(members []*Dist) *Dist {
	d, err := MergeChecked(members)
	if err != nil {
		panic(err)
	}
	return d
}

// MergeChecked is Merge returning an error instead of panicking on
// invalid input (no members, mixed widths), for member sets assembled
// from user-supplied payloads.
func MergeChecked(members []*Dist) (*Dist, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("dist: Merge of no members")
	}
	w := make([]float64, len(members))
	for i := range w {
		w[i] = 1
	}
	return WeightedMergeChecked(members, w)
}

// WeightedMerge returns the weighted average of the member distributions
// with the given non-negative weights (not all zero). Weights are
// normalized internally, implementing Appendix B Equations 5-6 once the
// caller supplies the raw divergence weights. Invalid input panics;
// WeightedMergeChecked is the error-returning variant.
func WeightedMerge(members []*Dist, weights []float64) *Dist {
	d, err := WeightedMergeChecked(members, weights)
	if err != nil {
		panic(err)
	}
	return d
}

// WeightedMergeChecked is WeightedMerge returning an error instead of
// panicking on invalid input: no members, a members/weights length
// mismatch, mixed widths, a negative weight, or an all-zero weight
// vector. The serving path uses it so a malformed job degrades to a
// request error instead of killing the process.
func WeightedMergeChecked(members []*Dist, weights []float64) (*Dist, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("dist: WeightedMerge of no members")
	}
	if len(members) != len(weights) {
		return nil, fmt.Errorf("dist: %d members but %d weights", len(members), len(weights))
	}
	n := members[0].n
	var total float64
	for i, m := range members {
		if m.n != n {
			return nil, fmt.Errorf("dist: WeightedMerge width mismatch: member %d has width %d, member 0 has %d", i, m.n, n)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("dist: negative weight %v for member %d", weights[i], i)
		}
		total += weights[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: all weights zero")
	}
	out := New(n)
	for i, m := range members {
		f := weights[i] / total
		if f == 0 {
			continue
		}
		for v, p := range m.p {
			out.p[v] += f * p
		}
	}
	return out, nil
}

// DivergenceWeights returns the raw WEDM weight for every member: the sum
// of its symmetric KL divergences to all other members (Appendix B,
// Equation 6). Normalization happens inside WeightedMerge.
func DivergenceWeights(members []*Dist) []float64 {
	w := make([]float64, len(members))
	for i := range members {
		for j := range members {
			if i == j {
				continue
			}
			w[i] += members[i].SymKL(members[j])
		}
	}
	return w
}

// Equal reports whether the two distributions match within tol on every
// outcome.
func (d *Dist) Equal(other *Dist, tol float64) bool {
	if d.n != other.n {
		return false
	}
	for v, p := range d.p {
		if math.Abs(p-other.p[v]) > tol {
			return false
		}
	}
	for v, q := range other.p {
		if _, ok := d.p[v]; !ok && q > tol {
			return false
		}
	}
	return true
}

// String renders the distribution's non-zero outcomes in sorted order, for
// debugging and golden tests.
func (d *Dist) String() string {
	s := d.Sorted()
	out := "{"
	for i, o := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%.4f", o.Value, o.P)
	}
	return out + "}"
}

func (d *Dist) checkWidth(b bitstr.BitString) {
	if b.Len() != d.n {
		panic(fmt.Sprintf("dist: outcome width %d does not match distribution width %d", b.Len(), d.n))
	}
}

func (d *Dist) checkSame(other *Dist) {
	if d.n != other.n {
		panic(fmt.Sprintf("dist: width mismatch %d vs %d", d.n, other.n))
	}
}
