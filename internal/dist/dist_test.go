package dist

import (
	"math"
	"testing"
	"testing/quick"

	"edm/internal/bitstr"
	"edm/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestKLPaperExample reproduces Table 2 and Equations 2-3 of Appendix B:
// P = (0.2, 0.3, 0.4, 0.1) over outcomes 0..3, Q uniform. The paper writes
// "ln" but its printed values 0.046 and 0.052 are base-10: the natural-log
// divergences are 0.1064 and 0.1218, and dividing by ln(10) recovers the
// paper's numbers. We compute in nats and check both.
func TestKLPaperExample(t *testing.T) {
	p := New(2)
	p.Set(bitstr.New(0, 2), 0.2)
	p.Set(bitstr.New(1, 2), 0.3)
	p.Set(bitstr.New(2, 2), 0.4)
	p.Set(bitstr.New(3, 2), 0.1)
	q := Uniform(2)

	dpq := p.KL(q)
	dqp := q.KL(p)
	if !approx(dpq, 0.10644, 0.001) {
		t.Errorf("D(P||Q) = %v nats, want 0.1064", dpq)
	}
	if !approx(dqp, 0.12178, 0.001) {
		t.Errorf("D(Q||P) = %v nats, want 0.1218", dqp)
	}
	ln10 := math.Log(10)
	if !approx(dpq/ln10, 0.046, 0.001) {
		t.Errorf("D(P||Q) in base-10 = %v, paper prints 0.046", dpq/ln10)
	}
	if !approx(dqp/ln10, 0.052, 0.001) {
		t.Errorf("D(Q||P) in base-10 = %v, paper prints 0.052", dqp/ln10)
	}
	if !approx(p.SymKL(q), dpq+dqp, 1e-12) {
		t.Errorf("SymKL != sum of directed KLs")
	}
	if !approx(p.SymKL(q), q.SymKL(p), 1e-12) {
		t.Errorf("SymKL is not symmetric")
	}
}

func TestKLSelfZero(t *testing.T) {
	p := MustFromMap(map[string]float64{"00": 0.25, "01": 0.25, "10": 0.5})
	if kl := p.KL(p); kl != 0 {
		t.Errorf("D(P||P) = %v, want 0", kl)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	r := rng.New(101)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.DeriveN("kl", int(seed))
		p := randomDist(rr, 3)
		q := randomDist(rr, 3)
		return p.KL(q) >= 0 && q.KL(p) >= 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomDist(r *rng.RNG, n int) *Dist {
	d := New(n)
	for v := uint64(0); v < 1<<uint(n); v++ {
		if r.Bernoulli(0.7) {
			d.p[v] = r.Float64() + 1e-6
		}
	}
	if len(d.p) == 0 {
		d.p[0] = 1
	}
	d.Normalize()
	return d
}

func TestISTAndPST(t *testing.T) {
	correct := bitstr.MustParse("110011")
	d := New(6)
	d.Set(correct, 0.30)
	d.Set(bitstr.MustParse("010011"), 0.25)
	d.Set(bitstr.MustParse("100011"), 0.20)
	d.Set(bitstr.MustParse("000000"), 0.25)

	if pst := d.PST(correct); !approx(pst, 0.30, 1e-12) {
		t.Errorf("PST = %v", pst)
	}
	if ist := d.IST(correct); !approx(ist, 0.30/0.25, 1e-12) {
		t.Errorf("IST = %v", ist)
	}
	se := d.StrongestError(correct)
	if se.P != 0.25 {
		t.Errorf("StrongestError P = %v", se.P)
	}
}

func TestISTBelowOneWhenWrongDominates(t *testing.T) {
	// Figure 1(c): correct at 30%, a wrong answer at 35%.
	correct := bitstr.MustParse("11")
	d := New(2)
	d.Set(correct, 0.30)
	d.Set(bitstr.MustParse("01"), 0.35)
	d.Set(bitstr.MustParse("10"), 0.20)
	d.Set(bitstr.MustParse("00"), 0.15)
	if ist := d.IST(correct); ist >= 1 {
		t.Errorf("IST = %v, want < 1", ist)
	}
	if ml := d.MostLikely(); ml.Value.Equal(correct) {
		t.Errorf("most likely should be the wrong answer")
	}
}

func TestISTEdgeCases(t *testing.T) {
	correct := bitstr.MustParse("00")
	d := Point(correct)
	if ist := d.IST(correct); !math.IsInf(ist, 1) {
		t.Errorf("pure-correct IST = %v, want +Inf", ist)
	}
	empty := New(2)
	if ist := empty.IST(correct); ist != 0 {
		t.Errorf("empty IST = %v, want 0", ist)
	}
}

func TestMergeEqualWeights(t *testing.T) {
	// Figure 2(b): two members whose dominant wrong answers differ merge
	// into an ensemble whose most-likely outcome is the correct one.
	correct := bitstr.MustParse("10")
	m1 := MustFromMap(map[string]float64{"10": 0.30, "01": 0.35, "00": 0.20, "11": 0.15})
	m2 := MustFromMap(map[string]float64{"10": 0.30, "11": 0.35, "00": 0.20, "01": 0.15})
	if m1.IST(correct) >= 1 || m2.IST(correct) >= 1 {
		t.Fatal("members should individually fail")
	}
	merged := Merge([]*Dist{m1, m2})
	if !approx(merged.Sum(), 1, 1e-12) {
		t.Fatalf("merged mass = %v", merged.Sum())
	}
	if ist := merged.IST(correct); ist <= 1 {
		t.Errorf("ensemble IST = %v, want > 1", ist)
	}
	if !merged.MostLikely().Value.Equal(correct) {
		t.Errorf("ensemble most-likely = %v", merged.MostLikely().Value)
	}
	if got := merged.P(bitstr.MustParse("01")); !approx(got, 0.25, 1e-12) {
		t.Errorf("merged P(01) = %v, want 0.25", got)
	}
}

func TestWeightedMergeWeights(t *testing.T) {
	m1 := Point(bitstr.MustParse("0"))
	m2 := Point(bitstr.MustParse("1"))
	out := WeightedMerge([]*Dist{m1, m2}, []float64{3, 1})
	if !approx(out.P(bitstr.MustParse("0")), 0.75, 1e-12) {
		t.Errorf("weighted merge wrong: %v", out)
	}
}

func TestWeightedMergePanics(t *testing.T) {
	m := Point(bitstr.MustParse("0"))
	mustPanic(t, func() { WeightedMerge(nil, nil) })
	mustPanic(t, func() { WeightedMerge([]*Dist{m}, []float64{1, 2}) })
	mustPanic(t, func() { WeightedMerge([]*Dist{m}, []float64{-1}) })
	mustPanic(t, func() { WeightedMerge([]*Dist{m}, []float64{0}) })
	m2 := Point(bitstr.MustParse("00"))
	mustPanic(t, func() { WeightedMerge([]*Dist{m, m2}, []float64{1, 1}) })
}

func TestDivergenceWeights(t *testing.T) {
	// Two identical members and one divergent member: the divergent member
	// must receive the largest weight, and the identical pair equal weights.
	a := MustFromMap(map[string]float64{"00": 0.9, "11": 0.1})
	b := MustFromMap(map[string]float64{"00": 0.9, "11": 0.1})
	c := MustFromMap(map[string]float64{"01": 0.9, "10": 0.1})
	w := DivergenceWeights([]*Dist{a, b, c})
	if !approx(w[0], w[1], 1e-9) {
		t.Errorf("identical members got different weights: %v", w)
	}
	if w[2] <= w[0] {
		t.Errorf("divergent member weight %v not larger than %v", w[2], w[0])
	}
}

func TestMergePreservesNormalization(t *testing.T) {
	r := rng.New(55)
	members := []*Dist{randomDist(r, 4), randomDist(r, 4), randomDist(r, 4), randomDist(r, 4)}
	m := Merge(members)
	if !approx(m.Sum(), 1, 1e-9) {
		t.Errorf("merged mass = %v", m.Sum())
	}
	w := DivergenceWeights(members)
	wm := WeightedMerge(members, w)
	if !approx(wm.Sum(), 1, 1e-9) {
		t.Errorf("weighted merged mass = %v", wm.Sum())
	}
}

func TestEntropy(t *testing.T) {
	if h := Uniform(3).Entropy(); !approx(h, 3, 1e-12) {
		t.Errorf("uniform entropy = %v, want 3", h)
	}
	if h := Point(bitstr.MustParse("101")).Entropy(); h != 0 {
		t.Errorf("point entropy = %v, want 0", h)
	}
}

func TestMergeRaisesEntropy(t *testing.T) {
	// EDM is motivated by maximum entropy: merging divergent members cannot
	// decrease entropy below the mean member entropy (concavity of H).
	r := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		rr := r.DeriveN("m", trial)
		members := []*Dist{randomDist(rr, 4), randomDist(rr, 4)}
		m := Merge(members)
		avg := (members[0].Entropy() + members[1].Entropy()) / 2
		if m.Entropy() < avg-1e-9 {
			t.Fatalf("merge entropy %v < mean member entropy %v", m.Entropy(), avg)
		}
	}
}

func TestTV(t *testing.T) {
	a := MustFromMap(map[string]float64{"0": 1})
	b := MustFromMap(map[string]float64{"1": 1})
	if tv := a.TV(b); !approx(tv, 1, 1e-12) {
		t.Errorf("TV(disjoint points) = %v", tv)
	}
	if tv := a.TV(a); tv != 0 {
		t.Errorf("TV(a,a) = %v", tv)
	}
}

func TestRelStdDev(t *testing.T) {
	if rsd := Uniform(4).RelStdDev(); !approx(rsd, 0, 1e-9) {
		t.Errorf("uniform RelStdDev = %v", rsd)
	}
	n := 4
	pt := Point(bitstr.Zeros(n))
	space := 1 << uint(n)
	want := math.Sqrt(float64(space - 1))
	if rsd := pt.RelStdDev(); !approx(rsd, want, 1e-9) {
		t.Errorf("point RelStdDev = %v, want %v", rsd, want)
	}
}

func TestIsNearUniform(t *testing.T) {
	if !Uniform(5).IsNearUniform(0.1) {
		t.Error("uniform not detected as near-uniform")
	}
	if Point(bitstr.Zeros(5)).IsNearUniform(0.1) {
		t.Error("point detected as near-uniform")
	}
	// A mildly peaked distribution is not near-uniform at a tight factor.
	d := Uniform(3).Clone()
	d.Set(bitstr.Zeros(3), 0.4)
	d.Normalize()
	if d.IsNearUniform(0.01) {
		t.Error("peaked distribution detected as near-uniform at tight factor")
	}
}

func TestSortedDeterministic(t *testing.T) {
	d := MustFromMap(map[string]float64{"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25})
	s := d.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i-1].Value.Uint64() >= s[i].Value.Uint64() {
			t.Fatalf("tie-break order wrong: %v", s)
		}
	}
}

func TestTopK(t *testing.T) {
	d := MustFromMap(map[string]float64{"00": 0.5, "01": 0.3, "10": 0.15, "11": 0.05})
	top := d.TopK(2)
	if len(top) != 2 || top[0].P != 0.5 || top[1].P != 0.3 {
		t.Fatalf("TopK = %v", top)
	}
	if got := d.TopK(10); len(got) != 4 {
		t.Fatalf("TopK(10) len = %d", len(got))
	}
}

func TestNormalize(t *testing.T) {
	d := New(2)
	d.Add(bitstr.New(0, 2), 3)
	d.Add(bitstr.New(1, 2), 1)
	d.Normalize()
	if !approx(d.PV(0), 0.75, 1e-12) || !approx(d.PV(1), 0.25, 1e-12) {
		t.Fatalf("Normalize wrong: %v", d)
	}
	mustPanic(t, func() { New(2).Normalize() })
}

func TestCloneIndependent(t *testing.T) {
	d := MustFromMap(map[string]float64{"0": 1})
	c := d.Clone()
	c.Set(bitstr.MustParse("0"), 0.5)
	c.Set(bitstr.MustParse("1"), 0.5)
	if d.P(bitstr.MustParse("1")) != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestScale(t *testing.T) {
	d := MustFromMap(map[string]float64{"0": 0.5, "1": 0.5})
	s := d.Scale(0.5)
	if !approx(s.Sum(), 0.5, 1e-12) {
		t.Fatalf("Scale sum = %v", s.Sum())
	}
	if z := d.Scale(0); z.Support() != 0 {
		t.Fatalf("Scale(0) support = %d", z.Support())
	}
	mustPanic(t, func() { d.Scale(-1) })
}

func TestFromMapErrors(t *testing.T) {
	if _, err := FromMap(map[string]float64{"0x": 1}); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := FromMap(map[string]float64{"0": 0.5, "00": 0.5}); err == nil {
		t.Error("mixed widths accepted")
	}
	if _, err := FromMap(map[string]float64{"0": -1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := FromMap(map[string]float64{}); err == nil {
		t.Error("empty map accepted")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromMap(map[string]float64{"01": 0.5, "10": 0.5})
	b := MustFromMap(map[string]float64{"01": 0.5, "10": 0.5})
	if !a.Equal(b, 1e-12) {
		t.Error("equal distributions not Equal")
	}
	c := MustFromMap(map[string]float64{"01": 0.6, "10": 0.4})
	if a.Equal(c, 1e-3) {
		t.Error("different distributions Equal")
	}
	if a.Equal(Uniform(3), 1) {
		t.Error("different widths Equal")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
