package statevec

import (
	"fmt"
	"math"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
)

// TestBatchKernelsBitIdenticalToFrozen pins every *Batch kernel
// amplitude-for-amplitude to the frozen complex128 loops: a batched
// apply across B lanes must equal B independent frozen applies. Swept
// over the scalar and (where hardware allows) AVX2 dispatch paths,
// batch sizes 1, 3, 8 and 17 (non-power-of-two sizes make the flat
// prefix a non-power-of-two multiple of the lane length, exercising the
// vector kernels' tail handling), and lane widths down to one qubit.
func TestBatchKernelsBitIdenticalToFrozen(t *testing.T) {
	defer setKernelAVX2(true)
	for _, path := range kernelPaths(t) {
		path := path
		t.Run(path.name, func(t *testing.T) {
			if _, ok := setKernelAVX2(path.avx); !ok {
				t.Skipf("kernel path %q unavailable", path.name)
			}
			for _, lanes := range []int{1, 3, 8, 17} {
				for _, n := range []int{1, 2, 3, 5} {
					testBatchVsFrozen(t, lanes, n)
				}
			}
		})
	}
}

func testBatchVsFrozen(t *testing.T, lanes, n int) {
	t.Helper()
	r := rng.New(uint64(9000 + 64*lanes + n))
	b := GetBatch(n, lanes)
	defer b.Release()
	frozen := make([]*frozenState, lanes)
	for i := 0; i < lanes; i++ {
		src := randomState(n, r)
		b.PushLane(src)
		frozen[i] = newFrozenState(src)
	}
	for step := 0; step < 30; step++ {
		q := r.Intn(n)
		q2 := -1
		if n > 1 {
			for q2 = r.Intn(n); q2 == q; q2 = r.Intn(n) {
			}
		}
		kind := r.Intn(6)
		tag := fmt.Sprintf("lanes=%d n=%d step=%d kind=%d q=%d q2=%d", lanes, n, step, kind, q, q2)
		switch kind {
		case 0: // general 1Q
			m := randomDense2(r)
			b.Apply1QBatch(m, q)
			for _, f := range frozen {
				f.apply1Q(m, q)
			}
		case 1: // diagonal 1Q
			d0 := complex(r.Float64(), r.Float64())
			d1 := complex(r.Float64(), r.Float64())
			b.Apply1QDiagBatch(d0, d1, q)
			for _, f := range frozen {
				f.apply1QDiag(d0, d1, q)
			}
		case 2: // anti-diagonal 1Q
			a01 := complex(r.Float64(), r.Float64())
			a10 := complex(r.Float64(), r.Float64())
			b.Apply1QAntiDiagBatch(a01, a10, q)
			for _, f := range frozen {
				f.apply1QAntiDiag(a01, a10, q)
			}
		case 3: // general 2Q
			if n < 2 {
				continue
			}
			m := randomDense4(r)
			b.Apply2QBatch(m, q, q2)
			for _, f := range frozen {
				f.apply2Q(m, q, q2)
			}
		case 4: // diagonal 2Q
			if n < 2 {
				continue
			}
			var d [4]complex128
			for i := range d {
				d[i] = complex(r.Float64(), r.Float64())
			}
			b.Apply2QDiagBatch(d, q, q2)
			for _, f := range frozen {
				f.apply2QDiag(d, q, q2)
			}
		case 5: // permutation 2Q
			if n < 2 {
				continue
			}
			var p Perm4
			perm := r.Perm(4)
			for i := range perm {
				p.Src[i] = uint8(perm[i])
				p.Coef[i] = complex(r.Float64(), r.Float64())
			}
			b.Apply2QPermBatch(p, q, q2)
			for _, f := range frozen {
				f.apply2QPerm(p, q, q2)
			}
		}
		for i, f := range frozen {
			compareBits(t, fmt.Sprintf("%s lane=%d", tag, i), b.Lane(i), f)
		}
	}
}

// TestBatchLaneViews pins the per-lane half of the batched engine's
// contract: Lane views run the ordinary State methods (measurement
// probabilities, projection, Kraus branches) on batch storage with
// results bit-identical to the frozen loops, lane pushes and clones
// snapshot the exact amplitudes, and PutState on a view is a no-op that
// leaves the batch intact.
func TestBatchLaneViews(t *testing.T) {
	defer setKernelAVX2(true)
	r := rng.New(424242)
	const n = 4
	b := GetBatch(n, 6)
	defer b.Release()

	if got := b.PushLane(nil); got != 0 {
		t.Fatalf("PushLane(nil) index = %d, want 0", got)
	}
	zero := b.Lane(0)
	if zero.re[0] != 1 {
		t.Fatalf("PushLane(nil) lane is not |0...0>")
	}
	for i := 1; i < len(zero.re); i++ {
		if zero.re[i] != 0 || zero.im[i] != 0 {
			t.Fatalf("PushLane(nil) lane has residue at %d", i)
		}
	}

	src := randomState(n, r)
	i1 := b.PushLane(src)
	f := newFrozenState(src)
	compareBits(t, "restored lane", b.Lane(i1), f)

	// Mutate lane i1 through its view; clone must snapshot the mutated
	// amplitudes and further mutation must not leak between lanes.
	m := randomDense2(r)
	b.Lane(i1).Apply1Q(m, 2)
	f.apply1Q(m, 2)
	i2 := b.CloneLane(i1)
	compareBits(t, "cloned lane", b.Lane(i2), f)
	fClone := newFrozenState(b.Lane(i2))
	m2 := randomDense2(r)
	b.Lane(i1).Apply1Q(m2, 0)
	f.apply1Q(m2, 0)
	compareBits(t, "mutated original", b.Lane(i1), f)
	compareBits(t, "clone unchanged", b.Lane(i2), fClone)

	// Stochastic-step State methods on a view, vs frozen.
	q := 1
	p1 := b.Lane(i1).ProbabilityOne(q)
	if math.Float64bits(p1) != math.Float64bits(f.probabilityOne(q)) {
		t.Fatalf("ProbabilityOne on a lane view differs from frozen")
	}
	outcome := 0
	if p1 > 0.5 {
		outcome = 1
	}
	b.Lane(i1).Project(q, outcome)
	f.projectQubit(q, outcome)
	compareBits(t, "projected lane", b.Lane(i1), f)

	gamma := 0.31
	ks := []circuit.Matrix2{
		{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}},
		{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}},
	}
	sp := make([]float64, 2)
	fp := make([]float64, 2)
	b.Lane(i1).KrausBranchProbs1Q(ks, 3, sp)
	f.krausBranchProbs1Q(ks, 3, fp)
	for i := range sp {
		if math.Float64bits(sp[i]) != math.Float64bits(fp[i]) {
			t.Fatalf("Kraus branch prob %d on a lane view differs from frozen", i)
		}
	}
	b.Lane(i1).ApplyKrausBranch1Q(ks, 3, 0, sp[0])
	f.applyKrausBranch1Q(ks, 3, 0, fp[0])
	compareBits(t, "kraus lane", b.Lane(i1), f)

	// PutState of a view must not poison the shared storage.
	PutState(b.Lane(i2))
	compareBits(t, "lane after PutState", b.Lane(i2), fClone)

	if b.Live() != 3 || b.Cap() != 6 || b.N() != n {
		t.Fatalf("batch accounting: live=%d cap=%d n=%d", b.Live(), b.Cap(), b.N())
	}
}
