//go:build !amd64 || purego

package statevec

// kernelAVX2 is constant false off amd64 (and under the purego tag, which
// forces the scalar bodies on any architecture so CI can exercise the
// portable fallback): the dispatch branches in kernels.go compile away
// and only the scalar bodies remain.
const kernelAVX2 = false

// setKernelAVX2 is a no-op on this build; ok reports whether the
// requested value is in effect.
func setKernelAVX2(on bool) (old bool, ok bool) {
	return false, !on
}

// The assembly entry points are unreachable with kernelAVX2 == false;
// these stubs exist only to satisfy the compiler.

func mul1QAVX(loR, loI, hiR, hiI *float64, n int, m *[8]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func cscaleAVX(re, im *float64, n int, cr, ci float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func cscalePatAVX(re, im *float64, n int, cr, ci *[4]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func antiAVX(loR, loI, hiR, hiI *float64, n int, c *[4]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func mul2QAVX(r0, i0, r1, i1, r2, i2, r3, i3 *float64, n int, mm *[32]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func mul2QPairsB0AVX(loR, loI, hiR, hiI *float64, n int, mm *[32]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func mul2QPairsB1AVX(loR, loI, hiR, hiI *float64, n int, mm *[32]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func mul1QPairsAVX(re, im *float64, n int, m *[8]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func mul1QGap2AVX(re, im *float64, n int, m *[8]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func antiPairsAVX(re, im *float64, n int, c *[4]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}

func antiGap2AVX(re, im *float64, n int, c *[4]float64) {
	panic("statevec: AVX2 kernel on scalar-only build")
}
