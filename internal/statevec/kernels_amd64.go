//go:build amd64 && !purego

package statevec

// kernelAVX2 gates the hand-written AVX2 fast paths in kernels_amd64.s.
// It is a variable rather than a constant so the bit-identity tests can
// force the scalar bodies on AVX2 hardware (and confirm both paths agree
// with the frozen complex128 loops).
var kernelAVX2 = cpuHasAVX2()

// setKernelAVX2 flips the fast-path gate for tests and reports the
// previous value and whether the toggle is honoured on this build.
func setKernelAVX2(on bool) (old bool, ok bool) {
	old = kernelAVX2
	kernelAVX2 = on && cpuHasAVX2()
	return old, kernelAVX2 == on
}

// cpuHasAVX2 reports whether the CPU and OS support AVX2 (CPUID feature
// bit plus OSXSAVE/XGETBV confirmation that the OS saves YMM state).
func cpuHasAVX2() bool

//go:noescape
func mul1QAVX(loR, loI, hiR, hiI *float64, n int, m *[8]float64)

//go:noescape
func cscaleAVX(re, im *float64, n int, cr, ci float64)

//go:noescape
func cscalePatAVX(re, im *float64, n int, cr, ci *[4]float64)

//go:noescape
func antiAVX(loR, loI, hiR, hiI *float64, n int, c *[4]float64)

//go:noescape
func mul2QAVX(r0, i0, r1, i1, r2, i2, r3, i3 *float64, n int, mm *[32]float64)

//go:noescape
func mul2QPairsB0AVX(loR, loI, hiR, hiI *float64, n int, mm *[32]float64)

//go:noescape
func mul2QPairsB1AVX(loR, loI, hiR, hiI *float64, n int, mm *[32]float64)

//go:noescape
func mul1QPairsAVX(re, im *float64, n int, m *[8]float64)

//go:noescape
func mul1QGap2AVX(re, im *float64, n int, m *[8]float64)

//go:noescape
func antiPairsAVX(re, im *float64, n int, c *[4]float64)

//go:noescape
func antiGap2AVX(re, im *float64, n int, c *[4]float64)
