package statevec

import (
	"fmt"

	"edm/internal/circuit"
	"edm/internal/pool"
)

// Batch is a batch-major SoA block of statevector lanes: `capLanes`
// n-qubit statevectors stored back to back in one pair of flat re/im
// arrays (lane k's amplitude b lives at index k*2^n + b). The batched
// replay engine restores a bucket of divergent trials into lanes and
// applies each deterministic gate once across every live lane through
// the flat kernels (flat.go) — the batch dimension is just more of the
// same unit-stride array, so the AVX2 fast paths vectorize across lanes
// for free and every amplitude sees the exact FP op sequence of a
// lane-by-lane replay (bit-identity, pinned by batch_test.go).
//
// Memory: one buffer of 2 * ceilpow2(capLanes) * 2^n float64s, i.e. the
// DESIGN.md §15 bound B·16·2^n bytes (rounded up one size class).
// Stochastic steps are per-lane: Lane(k) is a *State view aliasing the
// batch storage, so the engine runs the ordinary State methods
// (ProbabilityOne, ApplyKrausBranch1Q, Project, ...) on single lanes
// between batched deterministic runs.
type Batch struct {
	n        int // qubits per lane
	capLanes int
	live     int
	buf      []float64 // pooled; re/im carved from the two halves
	re, im   []float64 // capLanes<<n floats each
	views    []State   // preallocated lane views (buf nil)
}

// batchScratch recycles batch buffers across GetBatch/Release pairs,
// size-classed by the pow2-rounded buffer length.
var batchScratch pool.Buffers[float64]

// GetBatch returns an empty batch (no live lanes) with capacity for
// `lanes` statevectors of n qubits, its buffer drawn from a process-wide
// free list. Pair with Release.
func GetBatch(n, lanes int) *Batch {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: %d qubits out of range", n))
	}
	if lanes <= 0 {
		panic(fmt.Sprintf("statevec: batch of %d lanes", lanes))
	}
	size := lanes << uint(n)
	half := pool.CeilPow2(size)
	b := &Batch{n: n, capLanes: lanes}
	b.buf = batchScratch.Get(2 * half)
	b.re = b.buf[:size:size]
	b.im = b.buf[half : half+size : half+size]
	b.views = make([]State, lanes)
	for i := range b.views {
		lo, hi := i<<uint(n), (i+1)<<uint(n)
		b.views[i] = State{n: n, re: b.re[lo:hi:hi], im: b.im[lo:hi:hi]}
	}
	return b
}

// Release returns the batch's buffer to the free list. Neither the
// batch nor any Lane view may be used afterwards.
func (b *Batch) Release() {
	if b == nil || b.buf == nil {
		return
	}
	batchScratch.Put(b.buf)
	b.buf, b.re, b.im, b.views = nil, nil, nil, nil
	b.live = 0
}

// N returns the number of qubits per lane.
func (b *Batch) N() int { return b.n }

// Cap returns the lane capacity.
func (b *Batch) Cap() int { return b.capLanes }

// Live returns the number of live lanes.
func (b *Batch) Live() int { return b.live }

// Lane returns a *State view of live lane i, aliasing the batch
// storage. The view stays valid until Release; PutState on it is a
// no-op.
func (b *Batch) Lane(i int) *State {
	if i < 0 || i >= b.live {
		panic(fmt.Sprintf("statevec: lane %d out of range [0,%d)", i, b.live))
	}
	return &b.views[i]
}

// PushLane appends a live lane initialized from src (nil means the
// initial state |0...0>) and returns its index. Panics when the batch
// is full; callers size the batch before restoring.
func (b *Batch) PushLane(src *State) int {
	if b.live >= b.capLanes {
		panic("statevec: batch lane capacity exceeded")
	}
	i := b.live
	b.live++
	lane := &b.views[i]
	if src == nil {
		lane.Reset()
	} else {
		lane.CopyFrom(src)
	}
	return i
}

// CloneLane appends a live lane copied from live lane i and returns the
// new lane's index. The engine uses it when a group of trials splits at
// a stochastic step: the minority branches get fresh lanes cloned from
// the still-unmutated group lane.
func (b *Batch) CloneLane(i int) int {
	return b.PushLane(b.Lane(i))
}

// flat returns the live prefix of the batch as one flat re/im pair.
// Every block period a flat kernel uses (2*bit, 2*hi) divides the lane
// stride 2^n, so a flat pass over live<<n amplitudes is exactly `live`
// independent per-lane applications.
func (b *Batch) flat() (re, im []float64) {
	size := b.live << uint(b.n)
	return b.re[:size:size], b.im[:size:size]
}

func (b *Batch) checkQubit(q int) {
	if q < 0 || q >= b.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, b.n))
	}
}

// Apply1QBatch applies a one-qubit unitary to qubit q of every live
// lane, with the same diagonal/anti-diagonal routing as State.Apply1Q.
func (b *Batch) Apply1QBatch(m circuit.Matrix2, q int) {
	b.checkQubit(q)
	if m.IsDiagonal() {
		b.Apply1QDiagBatch(m[0][0], m[1][1], q)
		return
	}
	if m.IsAntiDiagonal() {
		b.Apply1QAntiDiagBatch(m[0][1], m[1][0], q)
		return
	}
	mm := [8]float64{
		real(m[0][0]), imag(m[0][0]), real(m[0][1]), imag(m[0][1]),
		real(m[1][0]), imag(m[1][0]), real(m[1][1]), imag(m[1][1]),
	}
	re, im := b.flat()
	flat1QGeneral(re, im, 1<<uint(q), &mm)
}

// Apply1QDiagBatch applies diag(d0, d1) to qubit q of every live lane.
func (b *Batch) Apply1QDiagBatch(d0, d1 complex128, q int) {
	b.checkQubit(q)
	re, im := b.flat()
	flat1QDiag(re, im, 1<<uint(q), d0, d1)
}

// Apply1QAntiDiagBatch applies [[0, a01], [a10, 0]] to qubit q of every
// live lane.
func (b *Batch) Apply1QAntiDiagBatch(a01, a10 complex128, q int) {
	b.checkQubit(q)
	c := [4]float64{real(a01), imag(a01), real(a10), imag(a10)}
	re, im := b.flat()
	flat1QAnti(re, im, 1<<uint(q), &c)
}

// Apply2QBatch applies a two-qubit unitary on (q0, q1) of every live
// lane, with the same diagonal routing as State.Apply2Q.
func (b *Batch) Apply2QBatch(m circuit.Matrix4, q0, q1 int) {
	b.checkQubit(q0)
	b.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2QBatch with identical qubits")
	}
	if d, ok := m.DiagonalOf(); ok {
		b.Apply2QDiagBatch(d, q0, q1)
		return
	}
	mm := mat4SoA(m)
	re, im := b.flat()
	flat2QGeneral(re, im, 1<<uint(q0), 1<<uint(q1), &mm)
}

// Apply2QDiagBatch applies diag(d) on (q0, q1) of every live lane.
func (b *Batch) Apply2QDiagBatch(d [4]complex128, q0, q1 int) {
	b.checkQubit(q0)
	b.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2QDiagBatch with identical qubits")
	}
	re, im := b.flat()
	flat2QDiag(re, im, 1<<uint(q0), 1<<uint(q1), d)
}

// Apply2QPermBatch applies a permutation-with-phases unitary on
// (q0, q1) of every live lane.
func (b *Batch) Apply2QPermBatch(p Perm4, q0, q1 int) {
	b.checkQubit(q0)
	b.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2QPermBatch with identical qubits")
	}
	c := [8]float64{
		real(p.Coef[0]), imag(p.Coef[0]), real(p.Coef[1]), imag(p.Coef[1]),
		real(p.Coef[2]), imag(p.Coef[2]), real(p.Coef[3]), imag(p.Coef[3]),
	}
	re, im := b.flat()
	flat2QPerm(re, im, 1<<uint(q0), 1<<uint(q1), &p.Src, &c)
}
