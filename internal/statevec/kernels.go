package statevec

// This file holds the portable kernel layer of the SoA statevector: the
// scalar loop bodies and the dispatch wrappers that route long runs to
// the AVX2 assembly (kernels_amd64.s) when the CPU supports it.
//
// Bit-identity contract: every vector fast path performs exactly the
// float64 operations of its scalar body, lane by lane — complex multiply
// as (ac - bd, ad + bc), multi-term sums left-associated in matrix
// column order. The scalar bodies in turn replicate the frozen
// complex128 loops (frozen_test.go) operation for operation, so Counts
// and recorded thresholds are bit-identical no matter which path runs.
// Reductions (Norm, ProbabilityOne, Kraus branch probabilities) stay
// scalar in statevec.go: vectorizing them would change summation order.
//
// All run lengths in this package are powers of two, so a run of >= 4
// is always a multiple of 4 and the vector paths need no scalar tail;
// the wrappers keep a tail loop anyway as a guard.

// mul1QRuns applies a general 2x2 matrix (mat2SoA layout: m00r, m00i,
// m01r, m01i, m10r, m10i, m11r, m11i) to the paired runs lo/hi.
func mul1QRuns(loR, loI, hiR, hiI []float64, m *[8]float64) {
	n := len(loR)
	if kernelAVX2 && n >= 4 {
		v := n &^ 3
		mul1QAVX(&loR[0], &loI[0], &hiR[0], &hiI[0], v, m)
		if v == n {
			return
		}
		loR, loI = loR[v:], loI[v:]
		hiR, hiI = hiR[v:], hiI[v:]
	}
	scalarMul1Q(loR, loI, hiR, hiI, m)
}

func scalarMul1Q(loR, loI, hiR, hiI []float64, m *[8]float64) {
	m00r, m00i, m01r, m01i := m[0], m[1], m[2], m[3]
	m10r, m10i, m11r, m11i := m[4], m[5], m[6], m[7]
	loI = loI[:len(loR)]
	hiR = hiR[:len(loR)]
	hiI = hiI[:len(loR)]
	for i, a0r := range loR {
		a0i := loI[i]
		a1r := hiR[i]
		a1i := hiI[i]
		loR[i] = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
		loI[i] = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
		hiR[i] = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
		hiI[i] = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
	}
}

// cscaleRun multiplies a contiguous run by the complex scalar (cr + ci*i).
func cscaleRun(re, im []float64, cr, ci float64) {
	n := len(re)
	if kernelAVX2 && n >= 4 {
		v := n &^ 3
		cscaleAVX(&re[0], &im[0], v, cr, ci)
		if v == n {
			return
		}
		re, im = re[v:], im[v:]
	}
	scalarCScale(re, im, cr, ci)
}

func scalarCScale(re, im []float64, cr, ci float64) {
	im = im[:len(re)]
	for i, ar := range re {
		ai := im[i]
		re[i] = ar*cr - ai*ci
		im[i] = ar*ci + ai*cr
	}
}

// cscalePattern multiplies amplitude i by the complex scalar
// (cr[i&3] + ci[i&3]*i). Diagonal kernels whose stride is below the
// vector width reduce to this: the coefficient pattern repeats every 2
// or 4 amplitudes, so one unit-stride pass covers the whole array. The
// caller guarantees the pattern period divides 4 (or that len < 4).
func cscalePattern(re, im []float64, cr, ci *[4]float64) {
	n := len(re)
	start := 0
	if kernelAVX2 && n >= 4 {
		v := n &^ 3
		cscalePatAVX(&re[0], &im[0], v, cr, ci)
		if v == n {
			return
		}
		start = v
	}
	scalarCScalePattern(re, im, start, cr, ci)
}

func scalarCScalePattern(re, im []float64, start int, cr, ci *[4]float64) {
	for i := start; i < len(re); i++ {
		ar := re[i]
		ai := im[i]
		dr := cr[i&3]
		di := ci[i&3]
		re[i] = ar*dr - ai*di
		im[i] = ar*di + ai*dr
	}
}

// antiRuns applies the anti-diagonal matrix [[0, a01], [a10, 0]]
// (c = a01r, a01i, a10r, a10i) to the paired runs lo/hi.
func antiRuns(loR, loI, hiR, hiI []float64, c *[4]float64) {
	n := len(loR)
	if kernelAVX2 && n >= 4 {
		v := n &^ 3
		antiAVX(&loR[0], &loI[0], &hiR[0], &hiI[0], v, c)
		if v == n {
			return
		}
		loR, loI = loR[v:], loI[v:]
		hiR, hiI = hiR[v:], hiI[v:]
	}
	scalarAnti(loR, loI, hiR, hiI, c)
}

func scalarAnti(loR, loI, hiR, hiI []float64, c *[4]float64) {
	a01r, a01i, a10r, a10i := c[0], c[1], c[2], c[3]
	loI = loI[:len(loR)]
	hiR = hiR[:len(loR)]
	hiI = hiI[:len(loR)]
	for i, a0r := range loR {
		a0i := loI[i]
		a1r := hiR[i]
		a1i := hiI[i]
		loR[i] = a01r*a1r - a01i*a1i
		loI[i] = a01r*a1i + a01i*a1r
		hiR[i] = a10r*a0r - a10i*a0i
		hiI[i] = a10r*a0i + a10i*a0r
	}
}

// mul2QRuns applies a general 4x4 matrix (mat4SoA layout) to the run of
// `lo` base indices starting at i1; the four matrix-basis roles live at
// offsets 0, b0, b1, b0|b1 from each base.
func mul2QRuns(re, im []float64, i1, lo, b0, b1 int, mm *[32]float64) {
	if kernelAVX2 && lo >= 4 {
		mul2QAVX(
			&re[i1], &im[i1],
			&re[i1+b0], &im[i1+b0],
			&re[i1+b1], &im[i1+b1],
			&re[i1+b0+b1], &im[i1+b0+b1],
			lo, mm)
		return
	}
	scalarMul2Q(re, im, i1, lo, b0, b1, mm)
}

func scalarMul2Q(re, im []float64, i1, lo, b0, b1 int, mm *[32]float64) {
	for base := i1; base < i1+lo; base++ {
		idx := [4]int{base, base | b0, base | b1, base | b0 | b1}
		var inR, inI [4]float64
		for k := 0; k < 4; k++ {
			inR[k] = re[idx[k]]
			inI[k] = im[idx[k]]
		}
		for r := 0; r < 4; r++ {
			o := r * 8
			t0r := mm[o]*inR[0] - mm[o+1]*inI[0]
			t0i := mm[o]*inI[0] + mm[o+1]*inR[0]
			t1r := mm[o+2]*inR[1] - mm[o+3]*inI[1]
			t1i := mm[o+2]*inI[1] + mm[o+3]*inR[1]
			t2r := mm[o+4]*inR[2] - mm[o+5]*inI[2]
			t2i := mm[o+4]*inI[2] + mm[o+5]*inR[2]
			t3r := mm[o+6]*inR[3] - mm[o+7]*inI[3]
			t3i := mm[o+6]*inI[3] + mm[o+7]*inR[3]
			re[idx[r]] = ((t0r + t1r) + t2r) + t3r
			im[idx[r]] = ((t0i + t1i) + t2i) + t3i
		}
	}
}

// mul2QPairs handles the lo == 1 layout of Apply2Q: one target qubit is
// bit 0, so each half of an i2 block interleaves two matrix-basis role
// streams at stride 2 (even = qubit-0-clear, odd = qubit-0-set). The
// AVX2 kernels deinterleave the halves in registers; role order — and
// with it the frozen loop's summation order — depends on whether the
// interleaved qubit is q0 (matrix low bit) or q1, hence two variants.
// Only called when kernelAVX2 is set and the halves are >= 8 floats.
func mul2QPairs(loR, loI, hiR, hiI []float64, b0low bool, mm *[32]float64) {
	if b0low {
		mul2QPairsB0AVX(&loR[0], &loI[0], &hiR[0], &hiI[0], len(loR), mm)
		return
	}
	mul2QPairsB1AVX(&loR[0], &loI[0], &hiR[0], &hiI[0], len(loR), mm)
}

// perm2QRuns applies a permutation-with-phases matrix (Perm4) to the run
// of `lo` base indices starting at i1. Always scalar: one multiply per
// amplitude is gather-bound, not arithmetic-bound.
func perm2QRuns(re, im []float64, i1, lo, b0, b1 int, src *[4]uint8, c *[8]float64) {
	for base := i1; base < i1+lo; base++ {
		idx := [4]int{base, base | b0, base | b1, base | b0 | b1}
		var inR, inI [4]float64
		for k := 0; k < 4; k++ {
			inR[k] = re[idx[k]]
			inI[k] = im[idx[k]]
		}
		for r := 0; r < 4; r++ {
			cr := c[r*2]
			ci := c[r*2+1]
			sr := inR[src[r]]
			si := inI[src[r]]
			re[idx[r]] = cr*sr - ci*si
			im[idx[r]] = cr*si + ci*sr
		}
	}
}
