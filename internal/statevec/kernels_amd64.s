//go:build amd64 && !purego

#include "textflag.h"

// AVX2 fast paths for the SoA statevector kernels. Contract: every
// function performs exactly the float64 operations of its scalar body in
// kernels.go, lane by lane — VMULPD/VADDPD/VSUBPD are elementwise IEEE
// operations, so a 4-lane vector step is bit-identical to 4 scalar
// steps. No FMA is used anywhere: fusing a*b+c would change rounding and
// break the bit-identity contract with the frozen complex128 loops.
//
// Register conventions shared by the 4x4 kernels below:
//   BX  — pointer to the 32-float matrix (row-major, re/im interleaved;
//         row r column c real part at byte offset r*64 + c*16)
//   R8  — current float index into the streams
//   Y8, Y9   — accumulator (real, imag) for the row being computed
//   Y10-Y13  — temporaries (matrix broadcasts, products)

// TERM0 starts a row accumulation with matrix-column term
// m[row][0] * in: acc = (mr*inR - mi*inI, mr*inI + mi*inR).
// MR/MI are byte offsets of the coefficient in the matrix, INR/INI the
// Y registers holding the input stream.
#define TERM0(MR, MI, INR, INI) \
	VBROADCASTSD MR(BX), Y10 \
	VBROADCASTSD MI(BX), Y11 \
	VMULPD INR, Y10, Y8 \
	VMULPD INI, Y11, Y12 \
	VSUBPD Y12, Y8, Y8 \
	VMULPD INI, Y10, Y9 \
	VMULPD INR, Y11, Y12 \
	VADDPD Y12, Y9, Y9

// TERMN adds matrix-column term m[row][c] * in to the accumulator,
// keeping the frozen loop's left-associated summation order.
#define TERMN(MR, MI, INR, INI) \
	VBROADCASTSD MR(BX), Y10 \
	VBROADCASTSD MI(BX), Y11 \
	VMULPD INR, Y10, Y12 \
	VMULPD INI, Y11, Y13 \
	VSUBPD Y13, Y12, Y12 \
	VADDPD Y12, Y8, Y8 \
	VMULPD INI, Y10, Y12 \
	VMULPD INR, Y11, Y13 \
	VADDPD Y13, Y12, Y12 \
	VADDPD Y12, Y9, Y9

// DEINT loads 8 interleaved floats [e0 o0 e1 o1 e2 o2 e3 o3] from
// PTR+R8*8 and splits them into even lanes EV and odd lanes OD.
#define DEINT(PTR, EV, OD) \
	VMOVUPD (PTR)(R8*8), Y10 \
	VMOVUPD 32(PTR)(R8*8), Y11 \
	VPERM2F128 $0x20, Y11, Y10, Y12 \
	VPERM2F128 $0x31, Y11, Y10, Y13 \
	VUNPCKLPD Y13, Y12, EV \
	VUNPCKHPD Y13, Y12, OD

// REPACK interleaves even lanes EV and odd lanes OD back into
// [e0 o0 e1 o1 e2 o2 e3 o3] and stores them at PTR+R8*8.
#define REPACK(EV, OD, PTR) \
	VUNPCKLPD OD, EV, Y10 \
	VUNPCKHPD OD, EV, Y11 \
	VPERM2F128 $0x20, Y11, Y10, Y12 \
	VPERM2F128 $0x31, Y11, Y10, Y13 \
	VMOVUPD Y12, (PTR)(R8*8) \
	VMOVUPD Y13, 32(PTR)(R8*8)

// func cpuHasAVX2() bool
// CPUID feature bits plus XGETBV confirmation that the OS saves YMM
// state (XCR0 bits 1 and 2).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27), BX // OSXSAVE
	JZ   novx
	MOVL CX, BX
	ANDL $(1<<28), BX // AVX
	JZ   novx
	XORL CX, CX
	XGETBV
	ANDL $6, AX // XMM and YMM state saved by the OS
	CMPL AX, $6
	JNE  novx
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX // AVX2
	JZ   novx
	MOVB $1, ret+0(FP)
	RET
novx:
	MOVB $0, ret+0(FP)
	RET

// func mul1QAVX(loR, loI, hiR, hiI *float64, n int, m *[8]float64)
// General 2x2 kernel over contiguous paired runs; n is a multiple of 4.
TEXT ·mul1QAVX(SB), NOSPLIT, $0-48
	MOVQ loR+0(FP), DI
	MOVQ loI+8(FP), SI
	MOVQ hiR+16(FP), DX
	MOVQ hiI+24(FP), CX
	MOVQ n+32(FP), AX
	MOVQ m+40(FP), BX
	VBROADCASTSD 0(BX), Y8   // m00r
	VBROADCASTSD 8(BX), Y9   // m00i
	VBROADCASTSD 16(BX), Y10 // m01r
	VBROADCASTSD 24(BX), Y11 // m01i
	VBROADCASTSD 32(BX), Y12 // m10r
	VBROADCASTSD 40(BX), Y13 // m10i
	VBROADCASTSD 48(BX), Y14 // m11r
	VBROADCASTSD 56(BX), Y15 // m11i
	XORQ R8, R8
m1loop:
	CMPQ R8, AX
	JGE  m1done
	VMOVUPD (DI)(R8*8), Y0 // a0r
	VMOVUPD (SI)(R8*8), Y1 // a0i
	VMOVUPD (DX)(R8*8), Y2 // a1r
	VMOVUPD (CX)(R8*8), Y3 // a1i

	// loR' = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
	VMULPD Y0, Y8, Y4
	VMULPD Y1, Y9, Y5
	VSUBPD Y5, Y4, Y4
	VMULPD Y2, Y10, Y5
	VMULPD Y3, Y11, Y6
	VSUBPD Y6, Y5, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (DI)(R8*8)

	// loI' = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
	VMULPD Y1, Y8, Y4
	VMULPD Y0, Y9, Y5
	VADDPD Y5, Y4, Y4
	VMULPD Y3, Y10, Y5
	VMULPD Y2, Y11, Y6
	VADDPD Y6, Y5, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (SI)(R8*8)

	// hiR' = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
	VMULPD Y0, Y12, Y4
	VMULPD Y1, Y13, Y5
	VSUBPD Y5, Y4, Y4
	VMULPD Y2, Y14, Y5
	VMULPD Y3, Y15, Y6
	VSUBPD Y6, Y5, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (DX)(R8*8)

	// hiI' = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
	VMULPD Y1, Y12, Y4
	VMULPD Y0, Y13, Y5
	VADDPD Y5, Y4, Y4
	VMULPD Y3, Y14, Y5
	VMULPD Y2, Y15, Y6
	VADDPD Y6, Y5, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (CX)(R8*8)

	ADDQ $4, R8
	JMP  m1loop
m1done:
	VZEROUPPER
	RET

// func cscaleAVX(re, im *float64, n int, cr, ci float64)
// Complex scalar multiply of a contiguous run; n is a multiple of 4.
TEXT ·cscaleAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	VBROADCASTSD cr+24(FP), Y8
	VBROADCASTSD ci+32(FP), Y9
	XORQ R8, R8
csloop:
	CMPQ R8, AX
	JGE  csdone
	VMOVUPD (DI)(R8*8), Y0
	VMOVUPD (SI)(R8*8), Y1

	// re' = ar*cr - ai*ci
	VMULPD Y0, Y8, Y2
	VMULPD Y1, Y9, Y3
	VSUBPD Y3, Y2, Y2
	VMOVUPD Y2, (DI)(R8*8)

	// im' = ar*ci + ai*cr
	VMULPD Y0, Y9, Y2
	VMULPD Y1, Y8, Y3
	VADDPD Y3, Y2, Y2
	VMOVUPD Y2, (SI)(R8*8)

	ADDQ $4, R8
	JMP  csloop
csdone:
	VZEROUPPER
	RET

// func cscalePatAVX(re, im *float64, n int, cr, ci *[4]float64)
// Complex multiply by a 4-lane coefficient pattern (period 2 or 4);
// n is a multiple of 4 so lane k always sees pattern index k.
TEXT ·cscalePatAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ cr+24(FP), BX
	MOVQ ci+32(FP), CX
	VMOVUPD (BX), Y8
	VMOVUPD (CX), Y9
	XORQ R8, R8
cploop:
	CMPQ R8, AX
	JGE  cpdone
	VMOVUPD (DI)(R8*8), Y0
	VMOVUPD (SI)(R8*8), Y1

	// re' = ar*dr - ai*di
	VMULPD Y0, Y8, Y2
	VMULPD Y1, Y9, Y3
	VSUBPD Y3, Y2, Y2
	VMOVUPD Y2, (DI)(R8*8)

	// im' = ar*di + ai*dr
	VMULPD Y0, Y9, Y2
	VMULPD Y1, Y8, Y3
	VADDPD Y3, Y2, Y2
	VMOVUPD Y2, (SI)(R8*8)

	ADDQ $4, R8
	JMP  cploop
cpdone:
	VZEROUPPER
	RET

// func antiAVX(loR, loI, hiR, hiI *float64, n int, c *[4]float64)
// Anti-diagonal kernel (scaled swap) over contiguous paired runs;
// n is a multiple of 4. c holds a01r, a01i, a10r, a10i.
TEXT ·antiAVX(SB), NOSPLIT, $0-48
	MOVQ loR+0(FP), DI
	MOVQ loI+8(FP), SI
	MOVQ hiR+16(FP), DX
	MOVQ hiI+24(FP), CX
	MOVQ n+32(FP), AX
	MOVQ c+40(FP), BX
	VBROADCASTSD 0(BX), Y8   // a01r
	VBROADCASTSD 8(BX), Y9   // a01i
	VBROADCASTSD 16(BX), Y10 // a10r
	VBROADCASTSD 24(BX), Y11 // a10i
	XORQ R8, R8
adloop:
	CMPQ R8, AX
	JGE  addone
	VMOVUPD (DI)(R8*8), Y0 // a0r
	VMOVUPD (SI)(R8*8), Y1 // a0i
	VMOVUPD (DX)(R8*8), Y2 // a1r
	VMOVUPD (CX)(R8*8), Y3 // a1i

	// loR' = a01r*a1r - a01i*a1i
	VMULPD Y2, Y8, Y4
	VMULPD Y3, Y9, Y5
	VSUBPD Y5, Y4, Y4
	VMOVUPD Y4, (DI)(R8*8)

	// loI' = a01r*a1i + a01i*a1r
	VMULPD Y3, Y8, Y4
	VMULPD Y2, Y9, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (SI)(R8*8)

	// hiR' = a10r*a0r - a10i*a0i
	VMULPD Y0, Y10, Y4
	VMULPD Y1, Y11, Y5
	VSUBPD Y5, Y4, Y4
	VMOVUPD Y4, (DX)(R8*8)

	// hiI' = a10r*a0i + a10i*a0r
	VMULPD Y1, Y10, Y4
	VMULPD Y0, Y11, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (CX)(R8*8)

	ADDQ $4, R8
	JMP  adloop
addone:
	VZEROUPPER
	RET

// func mul2QAVX(r0, i0, r1, i1, r2, i2, r3, i3 *float64, n int, mm *[32]float64)
// General 4x4 kernel over four contiguous role streams (run length
// lo >= 4); n is a multiple of 4. Rows accumulate in matrix-column
// order via TERM0/TERMN, matching the frozen loop's summation order.
TEXT ·mul2QAVX(SB), NOSPLIT, $0-80
	MOVQ r0+0(FP), DI
	MOVQ i0+8(FP), SI
	MOVQ r1+16(FP), DX
	MOVQ i1+24(FP), CX
	MOVQ r2+32(FP), R9
	MOVQ i2+40(FP), R10
	MOVQ r3+48(FP), R11
	MOVQ i3+56(FP), R12
	MOVQ n+64(FP), AX
	MOVQ mm+72(FP), BX
	XORQ R8, R8
m2loop:
	CMPQ R8, AX
	JGE  m2done
	VMOVUPD (DI)(R8*8), Y0
	VMOVUPD (SI)(R8*8), Y1
	VMOVUPD (DX)(R8*8), Y2
	VMOVUPD (CX)(R8*8), Y3
	VMOVUPD (R9)(R8*8), Y4
	VMOVUPD (R10)(R8*8), Y5
	VMOVUPD (R11)(R8*8), Y6
	VMOVUPD (R12)(R8*8), Y7

	// row 0
	TERM0(0, 8, Y0, Y1)
	TERMN(16, 24, Y2, Y3)
	TERMN(32, 40, Y4, Y5)
	TERMN(48, 56, Y6, Y7)
	VMOVUPD Y8, (DI)(R8*8)
	VMOVUPD Y9, (SI)(R8*8)

	// row 1
	TERM0(64, 72, Y0, Y1)
	TERMN(80, 88, Y2, Y3)
	TERMN(96, 104, Y4, Y5)
	TERMN(112, 120, Y6, Y7)
	VMOVUPD Y8, (DX)(R8*8)
	VMOVUPD Y9, (CX)(R8*8)

	// row 2
	TERM0(128, 136, Y0, Y1)
	TERMN(144, 152, Y2, Y3)
	TERMN(160, 168, Y4, Y5)
	TERMN(176, 184, Y6, Y7)
	VMOVUPD Y8, (R9)(R8*8)
	VMOVUPD Y9, (R10)(R8*8)

	// row 3
	TERM0(192, 200, Y0, Y1)
	TERMN(208, 216, Y2, Y3)
	TERMN(224, 232, Y4, Y5)
	TERMN(240, 248, Y6, Y7)
	VMOVUPD Y8, (R11)(R8*8)
	VMOVUPD Y9, (R12)(R8*8)

	ADDQ $4, R8
	JMP  m2loop
m2done:
	VZEROUPPER
	RET

// func mul2QPairsB0AVX(loR, loI, hiR, hiI *float64, n int, mm *[32]float64)
// General 4x4 kernel for the lo == 1 layout with q0 (matrix low bit) at
// qubit 0: each half interleaves two role streams at stride 2. Streams
// after DEINT: Y0/Y1 lowEven, Y2/Y3 lowOdd, Y4/Y5 highEven, Y6/Y7
// highOdd; matrix-basis roles are (lowEven, lowOdd, highEven, highOdd).
// n (floats per half) is a multiple of 8.
TEXT ·mul2QPairsB0AVX(SB), NOSPLIT, $0-48
	MOVQ loR+0(FP), DI
	MOVQ loI+8(FP), SI
	MOVQ hiR+16(FP), DX
	MOVQ hiI+24(FP), CX
	MOVQ n+32(FP), AX
	MOVQ mm+40(FP), BX
	XORQ R8, R8
p0loop:
	CMPQ R8, AX
	JGE  p0done
	DEINT(DI, Y0, Y2)
	DEINT(SI, Y1, Y3)
	DEINT(DX, Y4, Y6)
	DEINT(CX, Y5, Y7)

	// row 0 -> lowEven', parked in Y14/Y15
	TERM0(0, 8, Y0, Y1)
	TERMN(16, 24, Y2, Y3)
	TERMN(32, 40, Y4, Y5)
	TERMN(48, 56, Y6, Y7)
	VMOVAPD Y8, Y14
	VMOVAPD Y9, Y15

	// row 1 -> lowOdd'
	TERM0(64, 72, Y0, Y1)
	TERMN(80, 88, Y2, Y3)
	TERMN(96, 104, Y4, Y5)
	TERMN(112, 120, Y6, Y7)
	REPACK(Y14, Y8, DI)
	REPACK(Y15, Y9, SI)

	// row 2 -> highEven', parked in Y14/Y15
	TERM0(128, 136, Y0, Y1)
	TERMN(144, 152, Y2, Y3)
	TERMN(160, 168, Y4, Y5)
	TERMN(176, 184, Y6, Y7)
	VMOVAPD Y8, Y14
	VMOVAPD Y9, Y15

	// row 3 -> highOdd'
	TERM0(192, 200, Y0, Y1)
	TERMN(208, 216, Y2, Y3)
	TERMN(224, 232, Y4, Y5)
	TERMN(240, 248, Y6, Y7)
	REPACK(Y14, Y8, DX)
	REPACK(Y15, Y9, CX)

	ADDQ $8, R8
	JMP  p0loop
p0done:
	VZEROUPPER
	RET

// func mul2QPairsB1AVX(loR, loI, hiR, hiI *float64, n int, mm *[32]float64)
// As mul2QPairsB0AVX but with q1 (matrix high bit) at qubit 0: roles are
// (lowEven, highEven, lowOdd, highOdd), so matrix columns 1 and 2 swap
// streams relative to B0, keeping the frozen summation order, and rows
// pair up as (0,2) -> low half, (1,3) -> high half.
TEXT ·mul2QPairsB1AVX(SB), NOSPLIT, $0-48
	MOVQ loR+0(FP), DI
	MOVQ loI+8(FP), SI
	MOVQ hiR+16(FP), DX
	MOVQ hiI+24(FP), CX
	MOVQ n+32(FP), AX
	MOVQ mm+40(FP), BX
	XORQ R8, R8
p1loop:
	CMPQ R8, AX
	JGE  p1done
	DEINT(DI, Y0, Y2)
	DEINT(SI, Y1, Y3)
	DEINT(DX, Y4, Y6)
	DEINT(CX, Y5, Y7)

	// row 0 -> lowEven', parked in Y14/Y15
	TERM0(0, 8, Y0, Y1)
	TERMN(16, 24, Y4, Y5)
	TERMN(32, 40, Y2, Y3)
	TERMN(48, 56, Y6, Y7)
	VMOVAPD Y8, Y14
	VMOVAPD Y9, Y15

	// row 2 -> lowOdd'
	TERM0(128, 136, Y0, Y1)
	TERMN(144, 152, Y4, Y5)
	TERMN(160, 168, Y2, Y3)
	TERMN(176, 184, Y6, Y7)
	REPACK(Y14, Y8, DI)
	REPACK(Y15, Y9, SI)

	// row 1 -> highEven', parked in Y14/Y15
	TERM0(64, 72, Y0, Y1)
	TERMN(80, 88, Y4, Y5)
	TERMN(96, 104, Y2, Y3)
	TERMN(112, 120, Y6, Y7)
	VMOVAPD Y8, Y14
	VMOVAPD Y9, Y15

	// row 3 -> highOdd'
	TERM0(192, 200, Y0, Y1)
	TERMN(208, 216, Y4, Y5)
	TERMN(224, 232, Y2, Y3)
	TERMN(240, 248, Y6, Y7)
	REPACK(Y14, Y8, DX)
	REPACK(Y15, Y9, CX)

	ADDQ $8, R8
	JMP  p1loop
p1done:
	VZEROUPPER
	RET

// DEINT2 loads 8 floats [a a b b | a a b b] (two 4-float blocks whose
// low/high 128-bit halves are the two roles) from PTR+R8*8 and splits
// them into the low-half stream EV and the high-half stream OD.
#define DEINT2(PTR, EV, OD) \
	VMOVUPD (PTR)(R8*8), Y10 \
	VMOVUPD 32(PTR)(R8*8), Y11 \
	VPERM2F128 $0x20, Y11, Y10, EV \
	VPERM2F128 $0x31, Y11, Y10, OD

// REPACK2 is the inverse of DEINT2: reassembles the two blocks from the
// role streams and stores them at PTR+R8*8.
#define REPACK2(EV, OD, PTR) \
	VPERM2F128 $0x20, OD, EV, Y10 \
	VPERM2F128 $0x31, OD, EV, Y11 \
	VMOVUPD Y10, (PTR)(R8*8) \
	VMOVUPD Y11, 32(PTR)(R8*8)

// MUL1Q_FLAT computes the general 2x2 update on deinterleaved streams
// Y0 (a0r), Y1 (a0i), Y2 (a1r), Y3 (a1i), leaving loR'/loI'/hiR'/hiI'
// in Y4/Y5/Y6/Y7. BX points at the mat2SoA matrix. Matches scalarMul1Q
// operation for operation (no FMA, left-associated sums).
#define MUL1Q_FLAT \
	VBROADCASTSD 0(BX), Y8 \
	VBROADCASTSD 8(BX), Y9 \
	VBROADCASTSD 16(BX), Y14 \
	VBROADCASTSD 24(BX), Y15 \
	VMULPD Y0, Y8, Y4 \
	VMULPD Y1, Y9, Y12 \
	VSUBPD Y12, Y4, Y4 \
	VMULPD Y2, Y14, Y12 \
	VMULPD Y3, Y15, Y13 \
	VSUBPD Y13, Y12, Y12 \
	VADDPD Y12, Y4, Y4 \
	VMULPD Y1, Y8, Y5 \
	VMULPD Y0, Y9, Y12 \
	VADDPD Y12, Y5, Y5 \
	VMULPD Y3, Y14, Y12 \
	VMULPD Y2, Y15, Y13 \
	VADDPD Y13, Y12, Y12 \
	VADDPD Y12, Y5, Y5 \
	VBROADCASTSD 32(BX), Y8 \
	VBROADCASTSD 40(BX), Y9 \
	VBROADCASTSD 48(BX), Y14 \
	VBROADCASTSD 56(BX), Y15 \
	VMULPD Y0, Y8, Y6 \
	VMULPD Y1, Y9, Y12 \
	VSUBPD Y12, Y6, Y6 \
	VMULPD Y2, Y14, Y12 \
	VMULPD Y3, Y15, Y13 \
	VSUBPD Y13, Y12, Y12 \
	VADDPD Y12, Y6, Y6 \
	VMULPD Y1, Y8, Y7 \
	VMULPD Y0, Y9, Y12 \
	VADDPD Y12, Y7, Y7 \
	VMULPD Y3, Y14, Y12 \
	VMULPD Y2, Y15, Y13 \
	VADDPD Y13, Y12, Y12 \
	VADDPD Y12, Y7, Y7

// ANTI_FLAT computes the anti-diagonal update on deinterleaved streams
// Y0-Y3 into Y4-Y7, with the coefficients pre-broadcast in Y8 (a01r),
// Y9 (a01i), Y14 (a10r), Y15 (a10i). Matches scalarAnti.
#define ANTI_FLAT \
	VMULPD Y2, Y8, Y4 \
	VMULPD Y3, Y9, Y12 \
	VSUBPD Y12, Y4, Y4 \
	VMULPD Y3, Y8, Y5 \
	VMULPD Y2, Y9, Y12 \
	VADDPD Y12, Y5, Y5 \
	VMULPD Y0, Y14, Y6 \
	VMULPD Y1, Y15, Y12 \
	VSUBPD Y12, Y6, Y6 \
	VMULPD Y1, Y14, Y7 \
	VMULPD Y0, Y15, Y12 \
	VADDPD Y12, Y7, Y7

// func mul1QPairsAVX(re, im *float64, n int, m *[8]float64)
// General 2x2 kernel for target bit 1 (qubit 0) on a flat array: even
// indices are the qubit-clear role, odd indices the qubit-set role.
// Deinterleaves the pair streams in registers, so the flat array — and
// with it a Batch's batch dimension — is unit-stride vector work.
// n is a multiple of 8.
TEXT ·mul1QPairsAVX(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ m+24(FP), BX
	XORQ R8, R8
q1ploop:
	CMPQ R8, AX
	JGE  q1pdone
	DEINT(DI, Y0, Y2)
	DEINT(SI, Y1, Y3)
	MUL1Q_FLAT
	REPACK(Y4, Y6, DI)
	REPACK(Y5, Y7, SI)
	ADDQ $8, R8
	JMP  q1ploop
q1pdone:
	VZEROUPPER
	RET

// func mul1QGap2AVX(re, im *float64, n int, m *[8]float64)
// General 2x2 kernel for target bit 2 (qubit 1) on a flat array: each
// 4-amplitude block is [clear clear set set], so the roles are the
// 128-bit halves of each block. n is a multiple of 8.
TEXT ·mul1QGap2AVX(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ m+24(FP), BX
	XORQ R8, R8
q1gloop:
	CMPQ R8, AX
	JGE  q1gdone
	DEINT2(DI, Y0, Y2)
	DEINT2(SI, Y1, Y3)
	MUL1Q_FLAT
	REPACK2(Y4, Y6, DI)
	REPACK2(Y5, Y7, SI)
	ADDQ $8, R8
	JMP  q1gloop
q1gdone:
	VZEROUPPER
	RET

// func antiPairsAVX(re, im *float64, n int, c *[4]float64)
// Anti-diagonal kernel for target bit 1 on a flat array (pair layout of
// mul1QPairsAVX). n is a multiple of 8.
TEXT ·antiPairsAVX(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ c+24(FP), BX
	VBROADCASTSD 0(BX), Y8   // a01r
	VBROADCASTSD 8(BX), Y9   // a01i
	VBROADCASTSD 16(BX), Y14 // a10r
	VBROADCASTSD 24(BX), Y15 // a10i
	XORQ R8, R8
adploop:
	CMPQ R8, AX
	JGE  adpdone
	DEINT(DI, Y0, Y2)
	DEINT(SI, Y1, Y3)
	ANTI_FLAT
	REPACK(Y4, Y6, DI)
	REPACK(Y5, Y7, SI)
	ADDQ $8, R8
	JMP  adploop
adpdone:
	VZEROUPPER
	RET

// func antiGap2AVX(re, im *float64, n int, c *[4]float64)
// Anti-diagonal kernel for target bit 2 on a flat array (block layout
// of mul1QGap2AVX). n is a multiple of 8.
TEXT ·antiGap2AVX(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ c+24(FP), BX
	VBROADCASTSD 0(BX), Y8   // a01r
	VBROADCASTSD 8(BX), Y9   // a01i
	VBROADCASTSD 16(BX), Y14 // a10r
	VBROADCASTSD 24(BX), Y15 // a10i
	XORQ R8, R8
adgloop:
	CMPQ R8, AX
	JGE  adgdone
	DEINT2(DI, Y0, Y2)
	DEINT2(SI, Y1, Y3)
	ANTI_FLAT
	REPACK2(Y4, Y6, DI)
	REPACK2(Y5, Y7, SI)
	ADDQ $8, R8
	JMP  adgloop
adgdone:
	VZEROUPPER
	RET
