package statevec

// Frozen pre-SoA kernels: a verbatim copy of the complex128 loops the
// SoA engine replaced, kept test-only as the bit-identity oracle.
// TestKernelsBitIdenticalToFrozen drives both engines through the same
// operation sequences and requires every amplitude to match in
// math.Float64bits — on the scalar paths and, on amd64 hardware with
// AVX2, on the assembly paths.

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
)

type frozenState struct {
	n   int
	amp []complex128
}

func newFrozenState(s *State) *frozenState {
	f := &frozenState{n: s.n, amp: make([]complex128, len(s.re))}
	for i := range f.amp {
		f.amp[i] = complex(s.re[i], s.im[i])
	}
	return f
}

func (f *frozenState) apply1Q(m circuit.Matrix2, q int) {
	if m.IsDiagonal() {
		f.apply1QDiag(m[0][0], m[1][1], q)
		return
	}
	if m.IsAntiDiagonal() {
		f.apply1QAntiDiag(m[0][1], m[1][0], q)
		return
	}
	m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
	bit := 1 << uint(q)
	n := len(f.amp)
	for blk := 0; blk < n; blk += bit << 1 {
		lo := f.amp[blk : blk+bit]
		hi := f.amp[blk+bit : blk+(bit<<1)]
		for i, a0 := range lo {
			a1 := hi[i]
			lo[i] = m00*a0 + m01*a1
			hi[i] = m10*a0 + m11*a1
		}
	}
}

func (f *frozenState) apply1QDiag(d0, d1 complex128, q int) {
	bit := 1 << uint(q)
	n := len(f.amp)
	for blk := 0; blk < n; blk += bit << 1 {
		lo := f.amp[blk : blk+bit]
		hi := f.amp[blk+bit : blk+(bit<<1)]
		for i := range lo {
			lo[i] *= d0
			hi[i] *= d1
		}
	}
}

func (f *frozenState) apply1QAntiDiag(a01, a10 complex128, q int) {
	bit := 1 << uint(q)
	n := len(f.amp)
	for blk := 0; blk < n; blk += bit << 1 {
		lo := f.amp[blk : blk+bit]
		hi := f.amp[blk+bit : blk+(bit<<1)]
		for i, a0 := range lo {
			lo[i] = a01 * hi[i]
			hi[i] = a10 * a0
		}
	}
}

func (f *frozenState) apply2Q(m circuit.Matrix4, q0, q1 int) {
	if d, ok := m.DiagonalOf(); ok {
		f.apply2QDiag(d, q0, q1)
		return
	}
	b0 := 1 << uint(q0)
	b1 := 1 << uint(q1)
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	n := len(f.amp)
	for i2 := 0; i2 < n; i2 += hi << 1 {
		for i1 := i2; i1 < i2+hi; i1 += lo << 1 {
			for base := i1; base < i1+lo; base++ {
				idx := [4]int{base, base | b0, base | b1, base | b0 | b1}
				var in [4]complex128
				for k := 0; k < 4; k++ {
					in[k] = f.amp[idx[k]]
				}
				for r := 0; r < 4; r++ {
					f.amp[idx[r]] = m[r][0]*in[0] + m[r][1]*in[1] + m[r][2]*in[2] + m[r][3]*in[3]
				}
			}
		}
	}
}

func (f *frozenState) apply2QDiag(d [4]complex128, q0, q1 int) {
	b0 := 1 << uint(q0)
	b1 := 1 << uint(q1)
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	n := len(f.amp)
	for i2 := 0; i2 < n; i2 += hi << 1 {
		for i1 := i2; i1 < i2+hi; i1 += lo << 1 {
			for base := i1; base < i1+lo; base++ {
				f.amp[base] *= d[0]
				f.amp[base|b0] *= d[1]
				f.amp[base|b1] *= d[2]
				f.amp[base|b0|b1] *= d[3]
			}
		}
	}
}

func (f *frozenState) apply2QPerm(p Perm4, q0, q1 int) {
	b0 := 1 << uint(q0)
	b1 := 1 << uint(q1)
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	n := len(f.amp)
	for i2 := 0; i2 < n; i2 += hi << 1 {
		for i1 := i2; i1 < i2+hi; i1 += lo << 1 {
			for base := i1; base < i1+lo; base++ {
				idx := [4]int{base, base | b0, base | b1, base | b0 | b1}
				var in [4]complex128
				for k := 0; k < 4; k++ {
					in[k] = f.amp[idx[k]]
				}
				for r := 0; r < 4; r++ {
					f.amp[idx[r]] = p.Coef[r] * in[p.Src[r]]
				}
			}
		}
	}
}

func (f *frozenState) probabilityOne(q int) float64 {
	bit := 1 << uint(q)
	n := len(f.amp)
	var p float64
	for blk := bit; blk < n; blk += bit << 1 {
		for _, a := range f.amp[blk : blk+bit] {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

func (f *frozenState) projectQubit(q, outcome int) {
	bit := uint64(1) << uint(q)
	var norm float64
	for i := range f.amp {
		set := uint64(i)&bit != 0
		if set != (outcome == 1) {
			f.amp[i] = 0
		} else {
			a := f.amp[i]
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range f.amp {
		f.amp[i] *= scale
	}
}

func (f *frozenState) krausBranchProbs1Q(ks []circuit.Matrix2, q int, probs []float64) {
	bit := 1 << uint(q)
	n := len(f.amp)
	if krausDiagLike(ks) {
		var p0, p1 float64
		for blk := 0; blk < n; blk += bit << 1 {
			lo := f.amp[blk : blk+bit]
			hi := f.amp[blk+bit : blk+(bit<<1)]
			for i, a0 := range lo {
				a1 := hi[i]
				p0 += real(a0)*real(a0) + imag(a0)*imag(a0)
				p1 += real(a1)*real(a1) + imag(a1)*imag(a1)
			}
		}
		for i, k := range ks {
			if k.IsDiagonal() {
				probs[i] = abs2(k[0][0])*p0 + abs2(k[1][1])*p1
			} else {
				probs[i] = abs2(k[0][1])*p1 + abs2(k[1][0])*p0
			}
		}
		return
	}
	for i := range probs {
		probs[i] = 0
	}
	for blk := 0; blk < n; blk += bit << 1 {
		loAmp := f.amp[blk : blk+bit]
		hiAmp := f.amp[blk+bit : blk+(bit<<1)]
		for j, a0 := range loAmp {
			a1 := hiAmp[j]
			for i, k := range ks {
				n0 := k[0][0]*a0 + k[0][1]*a1
				n1 := k[1][0]*a0 + k[1][1]*a1
				probs[i] += real(n0)*real(n0) + imag(n0)*imag(n0) +
					real(n1)*real(n1) + imag(n1)*imag(n1)
			}
		}
	}
}

func (f *frozenState) applyKrausBranch1Q(ks []circuit.Matrix2, q, choice int, p float64) {
	inv := complex(1/math.Sqrt(p), 0)
	k := ks[choice]
	if k.IsDiagonal() {
		f.apply1QDiag(k[0][0]*inv, k[1][1]*inv, q)
		return
	}
	if k.IsAntiDiagonal() {
		f.apply1QAntiDiag(k[0][1]*inv, k[1][0]*inv, q)
		return
	}
	f.apply1Q(circuit.Matrix2{
		{k[0][0] * inv, k[0][1] * inv},
		{k[1][0] * inv, k[1][1] * inv},
	}, q)
}

func (f *frozenState) fidelity(other *frozenState) float64 {
	var dot complex128
	for i, a := range f.amp {
		dot += cmplx.Conj(a) * other.amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// compareBits fails the test unless every SoA amplitude matches the
// frozen amplitude in Float64bits, including zero signs.
func compareBits(t *testing.T, tag string, s *State, f *frozenState) {
	t.Helper()
	for i := range s.re {
		fr, fi := real(f.amp[i]), imag(f.amp[i])
		if math.Float64bits(s.re[i]) != math.Float64bits(fr) ||
			math.Float64bits(s.im[i]) != math.Float64bits(fi) {
			t.Fatalf("%s: amplitude %d differs: soa=(%x,%x) frozen=(%x,%x)",
				tag, i,
				math.Float64bits(s.re[i]), math.Float64bits(s.im[i]),
				math.Float64bits(fr), math.Float64bits(fi))
		}
	}
}

// randomDense2 returns a 2x2 matrix with no zero entries (no fast-path
// classification applies).
func randomDense2(r *rng.RNG) circuit.Matrix2 {
	var m circuit.Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
	}
	return m
}

// randomDense4 returns a 4x4 matrix with no zero entries.
func randomDense4(r *rng.RNG) circuit.Matrix4 {
	var m circuit.Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
	}
	return m
}

// kernelPaths names the dispatch configurations the bit-identity tests
// sweep: the portable scalar bodies and (where hardware allows) the
// AVX2 assembly.
func kernelPaths(t *testing.T) []struct {
	name string
	avx  bool
} {
	paths := []struct {
		name string
		avx  bool
	}{{"scalar", false}}
	if _, ok := setKernelAVX2(true); ok {
		paths = append(paths, struct {
			name string
			avx  bool
		}{"avx2", true})
	}
	setKernelAVX2(true) // restore default preference; ignored off amd64
	return paths
}

func TestKernelsBitIdenticalToFrozen(t *testing.T) {
	defer setKernelAVX2(true)
	for _, path := range kernelPaths(t) {
		path := path
		t.Run(path.name, func(t *testing.T) {
			if _, ok := setKernelAVX2(path.avx); !ok {
				t.Skipf("kernel path %q unavailable", path.name)
			}
			for _, n := range []int{1, 2, 3, 4, 5, 7, 9} {
				r := rng.New(uint64(1000 + n))
				s := randomState(n, r)
				f := newFrozenState(s)
				steps := 40
				if n == 1 {
					steps = 20
				}
				for step := 0; step < steps; step++ {
					q := r.Intn(n)
					q2 := -1
					if n > 1 {
						for q2 = r.Intn(n); q2 == q; q2 = r.Intn(n) {
						}
					}
					kind := r.Intn(8)
					tag := fmt.Sprintf("n=%d step=%d kind=%d q=%d q2=%d", n, step, kind, q, q2)
					switch kind {
					case 0: // general 1Q
						m := randomDense2(r)
						s.Apply1Q(m, q)
						f.apply1Q(m, q)
					case 1: // diagonal 1Q
						d0 := complex(r.Float64(), r.Float64())
						d1 := complex(r.Float64(), r.Float64())
						s.Apply1QDiag(d0, d1, q)
						f.apply1QDiag(d0, d1, q)
					case 2: // anti-diagonal 1Q
						a01 := complex(r.Float64(), r.Float64())
						a10 := complex(r.Float64(), r.Float64())
						s.Apply1QAntiDiag(a01, a10, q)
						f.apply1QAntiDiag(a01, a10, q)
					case 3: // general 2Q
						if n < 2 {
							continue
						}
						m := randomDense4(r)
						s.Apply2Q(m, q, q2)
						f.apply2Q(m, q, q2)
					case 4: // diagonal 2Q
						if n < 2 {
							continue
						}
						var d [4]complex128
						for i := range d {
							d[i] = complex(r.Float64(), r.Float64())
						}
						s.Apply2QDiag(d, q, q2)
						f.apply2QDiag(d, q, q2)
					case 5: // permutation 2Q (CX with phases)
						if n < 2 {
							continue
						}
						var p Perm4
						perm := r.Perm(4)
						for i := range perm {
							p.Src[i] = uint8(perm[i])
							p.Coef[i] = complex(r.Float64(), r.Float64())
						}
						s.Apply2QPerm(p, q, q2)
						f.apply2QPerm(p, q, q2)
					case 6: // measurement probability + projection
						p1 := s.ProbabilityOne(q)
						fp1 := f.probabilityOne(q)
						if math.Float64bits(p1) != math.Float64bits(fp1) {
							t.Fatalf("%s: ProbabilityOne differs: soa=%x frozen=%x",
								tag, math.Float64bits(p1), math.Float64bits(fp1))
						}
						outcome := 0 // project onto the likelier branch
						if p1 > 0.5 {
							outcome = 1
						}
						s.Project(q, outcome)
						f.projectQubit(q, outcome)
					case 7: // Kraus channel: probs + pre-scaled branch apply
						ks := []circuit.Matrix2{randomDense2(r), randomDense2(r)}
						sp := make([]float64, 2)
						fp := make([]float64, 2)
						s.KrausBranchProbs1Q(ks, q, sp)
						f.krausBranchProbs1Q(ks, q, fp)
						for i := range sp {
							if math.Float64bits(sp[i]) != math.Float64bits(fp[i]) {
								t.Fatalf("%s: branch prob %d differs: soa=%x frozen=%x",
									tag, i, math.Float64bits(sp[i]), math.Float64bits(fp[i]))
							}
						}
						choice := 0
						if sp[1] > sp[0] {
							choice = 1
						}
						s.ApplyKrausBranch1Q(ks, q, choice, sp[choice])
						f.applyKrausBranch1Q(ks, q, choice, fp[choice])
					}
					compareBits(t, tag, s, f)
				}
				// Reductions over the final state.
				fnorm := func() float64 {
					var sum float64
					for _, a := range f.amp {
						sum += real(a)*real(a) + imag(a)*imag(a)
					}
					return math.Sqrt(sum)
				}()
				if math.Float64bits(s.Norm()) != math.Float64bits(fnorm) {
					t.Fatalf("n=%d: Norm differs", n)
				}
				if math.Float64bits(s.Fidelity(s)) != math.Float64bits(f.fidelity(f)) {
					t.Fatalf("n=%d: Fidelity differs", n)
				}
			}
		})
	}
}

// TestKernelsBitIdenticalDiagLikeKraus pins the population fast path for
// diagonal/anti-diagonal Kraus sets (the shape the noise model samples
// every trial) on both dispatch paths.
func TestKernelsBitIdenticalDiagLikeKraus(t *testing.T) {
	defer setKernelAVX2(true)
	for _, path := range kernelPaths(t) {
		path := path
		t.Run(path.name, func(t *testing.T) {
			if _, ok := setKernelAVX2(path.avx); !ok {
				t.Skipf("kernel path %q unavailable", path.name)
			}
			gamma := 0.23
			ks := []circuit.Matrix2{
				{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}},
				{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}},
			}
			for _, n := range []int{1, 3, 6} {
				r := rng.New(uint64(77 + n))
				s := randomState(n, r)
				f := newFrozenState(s)
				for q := 0; q < n; q++ {
					sp := make([]float64, 2)
					fp := make([]float64, 2)
					s.KrausBranchProbs1Q(ks, q, sp)
					f.krausBranchProbs1Q(ks, q, fp)
					for i := range sp {
						if math.Float64bits(sp[i]) != math.Float64bits(fp[i]) {
							t.Fatalf("n=%d q=%d: branch prob %d differs", n, q, i)
						}
					}
					choice := q % 2
					s.ApplyKrausBranch1Q(ks, q, choice, sp[choice])
					f.applyKrausBranch1Q(ks, q, choice, fp[choice])
					compareBits(t, fmt.Sprintf("kraus n=%d q=%d", n, q), s, f)
				}
			}
		})
	}
}
