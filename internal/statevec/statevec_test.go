package statevec

import (
	"math"
	"testing"
	"testing/quick"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestInitialState(t *testing.T) {
	s := NewState(3)
	if s.Amplitude(0) != 1 {
		t.Fatal("initial amplitude of |000> != 1")
	}
	if !approx(s.Norm(), 1, 1e-12) {
		t.Fatalf("Norm = %v", s.Norm())
	}
	b := bitstr.MustParse("101")
	bs := NewBasisState(b)
	if bs.Amplitude(b.Uint64()) != 1 || bs.Amplitude(0) != 0 {
		t.Fatal("NewBasisState wrong")
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	if !approx(s.ProbabilityOne(0), 0.5, 1e-12) {
		t.Fatalf("P(1) after H = %v", s.ProbabilityOne(0))
	}
	// H twice is identity.
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	if !approx(real(s.Amplitude(0)), 1, 1e-12) {
		t.Fatalf("HH|0> != |0>: %v", s.Amplitude(0))
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	p := s.Probabilities()
	if !approx(p[0], 0.5, 1e-12) || !approx(p[3], 0.5, 1e-12) {
		t.Fatalf("Bell probabilities = %v", p)
	}
	if p[1] > 1e-12 || p[2] > 1e-12 {
		t.Fatalf("Bell cross terms = %v", p)
	}
}

func TestCXControlConvention(t *testing.T) {
	// CX with control=qubit0: |10> (q0=1 means index 1) -> q1 flips.
	s := NewBasisState(bitstr.MustParse("10")) // q0=1, q1=0 -> index 1
	s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	if !approx(real(s.Amplitude(3)), 1, 1e-12) {
		t.Fatalf("CX did not flip target: %v", s.Probabilities())
	}
	// Control 0: nothing happens.
	s2 := NewBasisState(bitstr.MustParse("01")) // q0=0, q1=1 -> index 2
	s2.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	if !approx(real(s2.Amplitude(2)), 1, 1e-12) {
		t.Fatalf("CX acted with control 0: %v", s2.Probabilities())
	}
}

func TestSwapGateEqualsThreeCX(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		a := randomState(3, r)
		b := a.Clone()
		a.Apply2Q(circuit.Matrix2Q(circuit.SWAP), 0, 2)
		cx := circuit.Matrix2Q(circuit.CX)
		b.Apply2Q(cx, 0, 2)
		b.Apply2Q(cx, 2, 0)
		b.Apply2Q(cx, 0, 2)
		if f := a.Fidelity(b); !approx(f, 1, 1e-10) {
			t.Fatalf("SWAP != CX^3, fidelity %v", f)
		}
	}
}

func randomState(n int, r *rng.RNG) *State {
	s := NewState(n)
	for q := 0; q < n; q++ {
		s.Apply1Q(circuit.Matrix1Q(circuit.U3, []float64{r.Float64() * 3, r.Float64() * 6, r.Float64() * 6}), q)
	}
	for q := 0; q+1 < n; q++ {
		s.Apply2Q(circuit.Matrix2Q(circuit.CX), q, q+1)
	}
	return s
}

func TestUnitaryPreservesNormProperty(t *testing.T) {
	r := rng.New(17)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.DeriveN("u", int(seed))
		s := randomState(4, rr)
		kinds := []circuit.Kind{circuit.X, circuit.H, circuit.T, circuit.RX, circuit.U3}
		k := kinds[rr.Intn(len(kinds))]
		params := make([]float64, k.NumParams())
		for i := range params {
			params[i] = rr.Float64() * 6
		}
		s.Apply1Q(circuit.Matrix1Q(k, params), rr.Intn(4))
		return approx(s.Norm(), 1, 1e-10)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureStatistics(t *testing.T) {
	r := rng.New(5)
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		s := NewState(1)
		s.Apply1Q(circuit.Matrix1Q(circuit.RY, []float64{2 * math.Asin(math.Sqrt(0.3))}), 0)
		if s.MeasureQubit(0, r.DeriveN("m", i)) == 1 {
			ones++
		}
	}
	rate := float64(ones) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("measurement rate = %v, want ~0.3", rate)
	}
}

func TestMeasureCollapses(t *testing.T) {
	r := rng.New(9)
	s := NewState(2)
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	m0 := s.MeasureQubit(0, r)
	// After measuring one half of a Bell pair, the other is determined.
	m1 := s.MeasureQubit(1, r)
	if m0 != m1 {
		t.Fatalf("Bell measurement disagreement: %d vs %d", m0, m1)
	}
	if !approx(s.Norm(), 1, 1e-12) {
		t.Fatalf("norm after collapse = %v", s.Norm())
	}
}

func TestSampleOutcomeMatchesProbabilities(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	r := rng.New(3)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[s.SampleOutcome(r).String()]++
	}
	if counts["10"] != 0 || counts["01"] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", counts)
	}
	if math.Abs(float64(counts["00"])/n-0.5) > 0.02 {
		t.Fatalf("sample split = %v", counts)
	}
}

func TestApplyKrausIdentityChannel(t *testing.T) {
	// A trivial channel {I} must leave the state alone.
	r := rng.New(1)
	s := randomState(3, r)
	before := s.Clone()
	s.ApplyKraus1Q([]circuit.Matrix2{circuit.Matrix1Q(circuit.I, nil)}, 1, r)
	if f := s.Fidelity(before); !approx(f, 1, 1e-10) {
		t.Fatalf("identity channel changed state: %v", f)
	}
}

func TestApplyKrausBitFlipRate(t *testing.T) {
	// Bit-flip channel: K0 = sqrt(1-p) I, K1 = sqrt(p) X.
	p := 0.2
	k0 := scaleM(circuit.Matrix1Q(circuit.I, nil), math.Sqrt(1-p))
	k1 := scaleM(circuit.Matrix1Q(circuit.X, nil), math.Sqrt(p))
	r := rng.New(77)
	flips := 0
	const n = 20000
	for i := 0; i < n; i++ {
		s := NewState(1)
		if s.ApplyKraus1Q([]circuit.Matrix2{k0, k1}, 0, r.DeriveN("t", i)) == 1 {
			flips++
		}
	}
	rate := float64(flips) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("bit-flip branch rate = %v, want ~%v", rate, p)
	}
}

func TestApplyKrausAmplitudeDamping(t *testing.T) {
	// Amplitude damping with gamma: starting from |1>, P(decay to |0>)=gamma.
	gamma := 0.3
	k0 := circuit.Matrix2{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}}
	k1 := circuit.Matrix2{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}}
	r := rng.New(13)
	decays := 0
	const n = 20000
	for i := 0; i < n; i++ {
		s := NewBasisState(bitstr.MustParse("1"))
		s.ApplyKraus1Q([]circuit.Matrix2{k0, k1}, 0, r.DeriveN("t", i))
		if s.ProbabilityOne(0) < 0.5 {
			decays++
		}
	}
	rate := float64(decays) / n
	if math.Abs(rate-gamma) > 0.01 {
		t.Fatalf("damping rate = %v, want ~%v", rate, gamma)
	}
}

func TestKrausPreservesNormProperty(t *testing.T) {
	gamma := 0.25
	k0 := circuit.Matrix2{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}}
	k1 := circuit.Matrix2{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}}
	r := rng.New(21)
	for i := 0; i < 100; i++ {
		s := randomState(3, r.DeriveN("s", i))
		s.ApplyKraus1Q([]circuit.Matrix2{k0, k1}, i%3, r.DeriveN("k", i))
		if !approx(s.Norm(), 1, 1e-10) {
			t.Fatalf("norm after Kraus = %v", s.Norm())
		}
	}
}

func scaleM(m circuit.Matrix2, f float64) circuit.Matrix2 {
	c := complex(f, 0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] *= c
		}
	}
	return m
}

func TestPanics(t *testing.T) {
	s := NewState(2)
	mustPanic(t, func() { s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 5) })
	mustPanic(t, func() { s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 0) })
	mustPanic(t, func() { NewState(-1) })
	mustPanic(t, func() { NewState(MaxQubits + 1) })
	mustPanic(t, func() { s.ApplyKraus1Q(nil, 0, rng.New(1)) })
	mustPanic(t, func() { s.ApplyOp(circuit.Op{Kind: circuit.Barrier}) })
	mustPanic(t, func() { s.Fidelity(NewState(3)) })
}

func TestIdealDistBell(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	d, err := IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.P(bitstr.MustParse("00")), 0.5, 1e-12) ||
		!approx(d.P(bitstr.MustParse("11")), 0.5, 1e-12) {
		t.Fatalf("Bell dist = %v", d)
	}
}

func TestIdealDistPartialMeasurement(t *testing.T) {
	// Only measure qubit 1 of a Bell pair into bit 0 of a 1-bit register.
	c := circuit.New(2, 1)
	c.H(0).CX(0, 1).Measure(1, 0)
	d, err := IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.P(bitstr.MustParse("0")), 0.5, 1e-12) {
		t.Fatalf("partial dist = %v", d)
	}
}

func TestIdealDistUnmeasuredBitsZero(t *testing.T) {
	c := circuit.New(2, 2)
	c.X(0).Measure(0, 1) // bit 0 never written -> stays 0
	d, err := IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.P(bitstr.MustParse("01")), 1, 1e-12) {
		t.Fatalf("dist = %v", d)
	}
}

func TestIdealDistRejectsMidCircuitMeasure(t *testing.T) {
	c := circuit.New(1, 1)
	c.Measure(0, 0).X(0)
	if _, err := IdealDist(c); err == nil {
		t.Fatal("gate after measurement accepted")
	}
}

func TestIdealDistRejectsInvalid(t *testing.T) {
	c := circuit.New(1, 1)
	c.Ops = append(c.Ops, circuit.Op{Kind: circuit.CX, Qubits: []int{0}, Cbit: -1})
	if _, err := IdealDist(c); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

func TestGHZ(t *testing.T) {
	n := 6
	c := circuit.New(n, n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	d, err := IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.P(bitstr.Zeros(n)), 0.5, 1e-12) || !approx(d.P(bitstr.Ones(n)), 0.5, 1e-12) {
		t.Fatalf("GHZ dist = %v", d)
	}
	if d.Support() != 2 {
		t.Fatalf("GHZ support = %d", d.Support())
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
