package statevec

import (
	"testing"

	"edm/internal/circuit"
	"edm/internal/noise"
	"edm/internal/rng"
)

// scrambled returns a 3-qubit state pushed through a few entangling
// gates so every amplitude is nonzero and irrational.
func scrambled() *State {
	s := NewState(3)
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	s.Apply1Q(circuit.Matrix1Q(circuit.RY, []float64{0.3}), 2)
	s.Apply2Q(circuit.Matrix2Q(circuit.CZ), 1, 2)
	s.Apply1Q(circuit.Matrix1Q(circuit.RZ, []float64{0.7}), 1)
	return s
}

func statesEqual(a, b *State) bool {
	if a.N() != b.N() {
		return false
	}
	for i := uint64(0); i < 1<<uint(a.N()); i++ {
		if a.Amplitude(i) != b.Amplitude(i) {
			return false
		}
	}
	return true
}

func TestCloneIsBitIdenticalAndIndependent(t *testing.T) {
	src := scrambled()
	c := src.Clone()
	if !statesEqual(src, c) {
		t.Fatal("Clone is not bit-identical to its source")
	}
	// Mutating the clone must not touch the source (no aliasing).
	before := src.Amplitude(0)
	c.Apply1Q(circuit.Matrix1Q(circuit.X, nil), 0)
	if src.Amplitude(0) != before {
		t.Fatal("Clone aliases its source buffer")
	}
	if statesEqual(src, c) {
		t.Fatal("mutated clone still equals source")
	}
}

func TestCopyFromRestoresBitIdentical(t *testing.T) {
	src := scrambled()
	snap := src.Clone()
	// Wreck a scratch state, then restore the snapshot into it.
	dst := NewState(3)
	dst.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 1)
	dst.CopyFrom(snap)
	if !statesEqual(dst, src) {
		t.Fatal("CopyFrom did not restore a bit-identical state")
	}
	// Restore must not alias: mutate dst, snapshot unchanged.
	dst.Apply1Q(circuit.Matrix1Q(circuit.X, nil), 2)
	if !statesEqual(snap, src) {
		t.Fatal("CopyFrom aliased the snapshot buffer")
	}
	// Simulating forward from the restored state matches simulating
	// forward from the original: the snapshot round-trip is invisible.
	a, b := src.Clone(), snap.Clone()
	a.Apply2Q(circuit.Matrix2Q(circuit.CX), 2, 0)
	b.Apply2Q(circuit.Matrix2Q(circuit.CX), 2, 0)
	if !statesEqual(a, b) {
		t.Fatal("evolution diverges after snapshot round-trip")
	}
}

func TestCopyFromSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across sizes did not panic")
		}
	}()
	NewState(2).CopyFrom(NewState(3))
}

func TestGetStatePutStateRecycles(t *testing.T) {
	s := GetState(4)
	if s.N() != 4 {
		t.Fatalf("GetState(4).N() = %d", s.N())
	}
	if !statesEqual(s, NewState(4)) {
		t.Fatal("GetState did not return |0...0>")
	}
	s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	PutState(s)
	// A recycled buffer must come back reset despite stale contents.
	s2 := GetState(4)
	if !statesEqual(s2, NewState(4)) {
		t.Fatal("recycled GetState is not |0...0>")
	}
	PutState(s2)
	PutState(nil)
}

// TestProjectMatchesMeasure pins Project to MeasureQubit's post-draw
// state update: measuring with a forced draw and projecting onto the
// same outcome must be bit-identical.
func TestProjectMatchesMeasure(t *testing.T) {
	for q := 0; q < 3; q++ {
		a, b := scrambled(), scrambled()
		r := rng.New(uint64(17 + q))
		outcome := a.MeasureQubit(q, r)
		b.Project(q, outcome)
		if !statesEqual(a, b) {
			t.Fatalf("Project(%d, %d) differs from MeasureQubit collapse", q, outcome)
		}
	}
}

// TestKrausBranchDecomposition pins the refactored ApplyKraus1Q: probs +
// Choose + branch application must reproduce the one-shot call exactly,
// for both the diag-like fast path (damping) and the general path.
func TestKrausBranchDecomposition(t *testing.T) {
	general := []circuit.Matrix2{
		circuit.Matrix1Q(circuit.H, nil).Mul(circuit.Matrix2{{0.8, 0}, {0, 0.8}}),
		{{0.6, 0}, {0, -0.6}},
	}
	cases := []struct {
		name string
		ks   []circuit.Matrix2
	}{
		{"amp-damping", noise.AmplitudeDampingKraus(0.3)},
		{"phase-damping", noise.PhaseDampingKraus(0.4)},
		{"general", general},
	}
	for _, tc := range cases {
		for trial := 0; trial < 32; trial++ {
			q := trial % 3
			a, b := scrambled(), scrambled()
			ra, rb := rng.New(uint64(trial)), rng.New(uint64(trial))
			choiceA := a.ApplyKraus1Q(tc.ks, q, ra)

			probs := make([]float64, len(tc.ks))
			b.KrausBranchProbs1Q(tc.ks, q, probs)
			choiceB := rb.Choose(probs)
			b.ApplyKrausBranch1Q(tc.ks, q, choiceB, probs[choiceB])

			if choiceA != choiceB {
				t.Fatalf("%s: branch choice differs (%d vs %d)", tc.name, choiceA, choiceB)
			}
			if ra.State() != rb.State() {
				t.Fatalf("%s: draw consumption differs", tc.name)
			}
			if !statesEqual(a, b) {
				t.Fatalf("%s: decomposed Kraus application is not bit-identical", tc.name)
			}
		}
	}
}
