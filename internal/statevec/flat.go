package statevec

// Flat kernels: every gate application in this package reduces to a pass
// over one flat pair of re/im arrays whose block structure depends only
// on the target qubit bits — never on where the array ends. Because a
// lane (one statevector) is 2^n amplitudes and every block period
// (2*bit, 2*hi) divides 2^n, the same pass applied to B back-to-back
// lanes of a Batch is exactly B independent per-lane applications. State
// methods call these with their own 2^n-long arrays; Batch methods call
// them with the live lanes' B*2^n-long prefix. That is what makes the
// batched replay kernels (Apply1QBatch and friends) bit-identical to a
// lane-by-lane loop: amplitude i of lane k sees the exact FP op sequence
// of the frozen complex128 loops either way.
//
// For target bits below the vector width (bit 1 and 2 — qubits 0 and 1)
// the per-run dispatch used to fall through to the scalar bodies; here
// those cases get their own AVX2 kernels (mul1QPairsAVX etc.) that
// deinterleave the role streams in registers, turning the flat array —
// and with it the batch dimension — into stride-1 vector work.

// flat1QGeneral applies a general 2x2 matrix (mat2SoA layout) on the
// qubit with bit mask `bit` across the whole flat array.
func flat1QGeneral(re, im []float64, bit int, mm *[8]float64) {
	n := len(re)
	if kernelAVX2 && bit < 4 && n >= 8 {
		// Runs of 1 or 2: deinterleave the role streams in registers.
		// v is a multiple of 8, so it is block-aligned for both layouts
		// and the tail (< 8 floats) falls through to the scalar runs.
		v := n &^ 7
		if bit == 1 {
			mul1QPairsAVX(&re[0], &im[0], v, mm)
		} else {
			mul1QGap2AVX(&re[0], &im[0], v, mm)
		}
		if v == n {
			return
		}
		re, im = re[v:], im[v:]
		n -= v
	}
	// Stride loop: enumerate only the base indices with the qubit clear,
	// as contiguous runs of length `bit`.
	for blk := 0; blk < n; blk += bit << 1 {
		mul1QRuns(
			re[blk:blk+bit:blk+bit], im[blk:blk+bit:blk+bit],
			re[blk+bit:blk+(bit<<1):blk+(bit<<1)], im[blk+bit:blk+(bit<<1):blk+(bit<<1)],
			mm)
	}
}

// flat1QDiag applies diag(d0, d1) on the qubit with bit mask `bit`.
func flat1QDiag(re, im []float64, bit int, d0, d1 complex128) {
	n := len(re)
	if bit < 4 {
		// Runs too short for the vector kernel individually, but the
		// coefficient pattern repeats every 2*bit amplitudes, so one
		// pattern-vector pass covers the whole array.
		var cr, ci [4]float64
		for i := 0; i < 4; i++ {
			if i&bit == 0 {
				cr[i], ci[i] = real(d0), imag(d0)
			} else {
				cr[i], ci[i] = real(d1), imag(d1)
			}
		}
		cscalePattern(re, im, &cr, &ci)
		return
	}
	for blk := 0; blk < n; blk += bit << 1 {
		cscaleRun(re[blk:blk+bit:blk+bit], im[blk:blk+bit:blk+bit], real(d0), imag(d0))
		cscaleRun(re[blk+bit:blk+(bit<<1):blk+(bit<<1)], im[blk+bit:blk+(bit<<1):blk+(bit<<1)], real(d1), imag(d1))
	}
}

// flat1QAnti applies the anti-diagonal matrix [[0, a01], [a10, 0]]
// (c = a01r, a01i, a10r, a10i) on the qubit with bit mask `bit`.
func flat1QAnti(re, im []float64, bit int, c *[4]float64) {
	n := len(re)
	if kernelAVX2 && bit < 4 && n >= 8 {
		v := n &^ 7
		if bit == 1 {
			antiPairsAVX(&re[0], &im[0], v, c)
		} else {
			antiGap2AVX(&re[0], &im[0], v, c)
		}
		if v == n {
			return
		}
		re, im = re[v:], im[v:]
		n -= v
	}
	for blk := 0; blk < n; blk += bit << 1 {
		antiRuns(
			re[blk:blk+bit:blk+bit], im[blk:blk+bit:blk+bit],
			re[blk+bit:blk+(bit<<1):blk+(bit<<1)], im[blk+bit:blk+(bit<<1):blk+(bit<<1)],
			c)
	}
}

// flat2QGeneral applies a general 4x4 matrix (mat4SoA layout) on the
// ordered qubit bit masks (b0, b1).
func flat2QGeneral(re, im []float64, b0, b1 int, mm *[32]float64) {
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	n := len(re)
	if lo == 1 && hi >= 8 && kernelAVX2 {
		// One of the qubits is bit 0: every base index is even and its
		// b-low partner is the adjacent odd index, so the low and high
		// halves of each block are two interleaved role streams. The
		// pairs kernel deinterleaves them in registers.
		for i2 := 0; i2 < n; i2 += hi << 1 {
			mul2QPairs(
				re[i2:i2+hi:i2+hi], im[i2:i2+hi:i2+hi],
				re[i2+hi:i2+(hi<<1):i2+(hi<<1)], im[i2+hi:i2+(hi<<1):i2+(hi<<1)],
				b0 == 1, mm)
		}
		return
	}
	// Stride loop: enumerate only the base indices with both qubits
	// clear via three nested strides.
	for i2 := 0; i2 < n; i2 += hi << 1 {
		for i1 := i2; i1 < i2+hi; i1 += lo << 1 {
			mul2QRuns(re, im, i1, lo, b0, b1, mm)
		}
	}
}

// flat2QDiag applies diag(d) on the ordered qubit bit masks (b0, b1),
// where the matrix basis index is (bit b0) + 2*(bit b1).
func flat2QDiag(re, im []float64, b0, b1 int, d [4]complex128) {
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	n := len(re)
	if hi < 4 {
		// Both qubits inside one 4-amplitude block: a single pattern pass
		// covers the whole array.
		var cr, ci [4]float64
		for i := 0; i < 4; i++ {
			k := 0
			if i&b0 != 0 {
				k |= 1
			}
			if i&b1 != 0 {
				k |= 2
			}
			cr[i], ci[i] = real(d[k]), imag(d[k])
		}
		cscalePattern(re, im, &cr, &ci)
		return
	}
	if lo < 4 {
		// The diagonal acts elementwise, so short inner runs reduce to a
		// coefficient pattern of period 2*lo applied to each half-block:
		// the low half holds matrix entries {0, lo-bit}, the high half
		// {hi-bit, both}.
		kHi := 2 // d-index contribution of the hi bit: +1 if q0, +2 if q1
		if hi == b0 {
			kHi = 1
		}
		var loCr, loCi, hiCr, hiCi [4]float64
		for i := 0; i < 4; i++ {
			k := 0
			if i&lo != 0 {
				k = 3 - kHi // the lo-bit entry index
			}
			loCr[i], loCi[i] = real(d[k]), imag(d[k])
			hiCr[i], hiCi[i] = real(d[k|kHi]), imag(d[k|kHi])
		}
		for i2 := 0; i2 < n; i2 += hi << 1 {
			cscalePattern(re[i2:i2+hi:i2+hi], im[i2:i2+hi:i2+hi], &loCr, &loCi)
			cscalePattern(re[i2+hi:i2+(hi<<1):i2+(hi<<1)], im[i2+hi:i2+(hi<<1):i2+(hi<<1)], &hiCr, &hiCi)
		}
		return
	}
	for i2 := 0; i2 < n; i2 += hi << 1 {
		for i1 := i2; i1 < i2+hi; i1 += lo << 1 {
			cscaleRun(re[i1:i1+lo:i1+lo], im[i1:i1+lo:i1+lo], real(d[0]), imag(d[0]))
			j := i1 + b0
			cscaleRun(re[j:j+lo:j+lo], im[j:j+lo:j+lo], real(d[1]), imag(d[1]))
			j = i1 + b1
			cscaleRun(re[j:j+lo:j+lo], im[j:j+lo:j+lo], real(d[2]), imag(d[2]))
			j = i1 + b0 + b1
			cscaleRun(re[j:j+lo:j+lo], im[j:j+lo:j+lo], real(d[3]), imag(d[3]))
		}
	}
}

// flat2QPerm applies a permutation-with-phases matrix on the ordered
// qubit bit masks (b0, b1).
func flat2QPerm(re, im []float64, b0, b1 int, src *[4]uint8, c *[8]float64) {
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	n := len(re)
	for i2 := 0; i2 < n; i2 += hi << 1 {
		for i1 := i2; i1 < i2+hi; i1 += lo << 1 {
			perm2QRuns(re, im, i1, lo, b0, b1, src, c)
		}
	}
}
