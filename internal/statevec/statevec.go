// Package statevec implements a pure-state (statevector) quantum
// simulator. It is the workhorse engine of this repository: the noisy
// backend runs one Monte-Carlo *trajectory* per trial by interleaving
// unitary gates with stochastically sampled Kraus operators, exactly
// mirroring the paper's methodology of running a program for thousands of
// trials and logging one outcome per trial.
//
// Amplitude indexing: basis state index b has qubit q in state (b>>q)&1,
// i.e. qubit 0 is the least-significant bit.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/rng"
)

// MaxQubits bounds the register size (memory is 16 bytes * 2^n).
const MaxQubits = 24

// State is the statevector of an n-qubit register.
type State struct {
	n   int
	amp []complex128
}

// NewState returns the all-zeros computational basis state |0...0>.
func NewState(n int) *State {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: %d qubits out of range", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NewBasisState returns the computational basis state |b>.
func NewBasisState(b bitstr.BitString) *State {
	s := NewState(b.Len())
	s.amp[0] = 0
	s.amp[b.Uint64()] = 1
	return s
}

// N returns the number of qubits.
func (s *State) N() int { return s.n }

// Amplitude returns the amplitude of basis state index b.
func (s *State) Amplitude(b uint64) complex128 { return s.amp[b] }

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Norm returns the 2-norm of the statevector (1 for a valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
	}
}

// Apply1Q applies a one-qubit unitary to qubit q.
func (s *State) Apply1Q(m circuit.Matrix2, q int) {
	s.checkQubit(q)
	bit := uint64(1) << uint(q)
	size := uint64(len(s.amp))
	for base := uint64(0); base < size; base++ {
		if base&bit != 0 {
			continue
		}
		i0 := base
		i1 := base | bit
		a0, a1 := s.amp[i0], s.amp[i1]
		s.amp[i0] = m[0][0]*a0 + m[0][1]*a1
		s.amp[i1] = m[1][0]*a0 + m[1][1]*a1
	}
}

// Apply2Q applies a two-qubit unitary to the ordered qubit pair (q0, q1),
// where q0 is the low bit of the 4x4 matrix basis (the control for CX).
func (s *State) Apply2Q(m circuit.Matrix4, q0, q1 int) {
	s.checkQubit(q0)
	s.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2Q with identical qubits")
	}
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	size := uint64(len(s.amp))
	for base := uint64(0); base < size; base++ {
		if base&b0 != 0 || base&b1 != 0 {
			continue
		}
		var idx [4]uint64
		idx[0] = base
		idx[1] = base | b0
		idx[2] = base | b1
		idx[3] = base | b0 | b1
		var in [4]complex128
		for k := 0; k < 4; k++ {
			in[k] = s.amp[idx[k]]
		}
		for r := 0; r < 4; r++ {
			s.amp[idx[r]] = m[r][0]*in[0] + m[r][1]*in[1] + m[r][2]*in[2] + m[r][3]*in[3]
		}
	}
}

// ApplyOp applies a unitary circuit operation. It panics on Measure or
// Barrier (callers handle those explicitly).
func (s *State) ApplyOp(op circuit.Op) {
	switch {
	case op.Kind == circuit.Barrier || op.Kind == circuit.Measure:
		panic(fmt.Sprintf("statevec: ApplyOp on non-unitary %v", op.Kind))
	case op.Kind.IsTwoQubit():
		s.Apply2Q(circuit.Matrix2Q(op.Kind), op.Qubits[0], op.Qubits[1])
	default:
		s.Apply1Q(circuit.Matrix1Q(op.Kind, op.Params), op.Qubits[0])
	}
}

// ProbabilityOne returns the probability that measuring qubit q yields 1.
func (s *State) ProbabilityOne(q int) float64 {
	s.checkQubit(q)
	bit := uint64(1) << uint(q)
	var p float64
	for i, a := range s.amp {
		if uint64(i)&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// MeasureQubit projectively measures qubit q, collapsing the state, and
// returns the observed bit.
func (s *State) MeasureQubit(q int, r *rng.RNG) int {
	p1 := s.ProbabilityOne(q)
	outcome := 0
	if r.Float64() < p1 {
		outcome = 1
	}
	s.projectQubit(q, outcome)
	return outcome
}

// projectQubit zeroes the amplitudes inconsistent with qubit q being in
// the given state and renormalizes.
func (s *State) projectQubit(q, outcome int) {
	bit := uint64(1) << uint(q)
	var norm float64
	for i := range s.amp {
		set := uint64(i)&bit != 0
		if set != (outcome == 1) {
			s.amp[i] = 0
		} else {
			a := s.amp[i]
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if norm <= 0 {
		panic("statevec: projection onto zero-probability outcome")
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
}

// ApplyKraus1Q applies a one-qubit quantum channel given by Kraus
// operators ks to qubit q by sampling one trajectory branch: branch i is
// chosen with probability ||K_i psi||^2 and the state is renormalized.
// It returns the index of the chosen branch. The operators must satisfy
// sum K_i^dagger K_i = I for the probabilities to sum to one; small
// numerical slack is tolerated.
func (s *State) ApplyKraus1Q(ks []circuit.Matrix2, q int, r *rng.RNG) int {
	s.checkQubit(q)
	if len(ks) == 0 {
		panic("statevec: empty Kraus set")
	}
	if len(ks) == 1 {
		// Deterministic channel; still renormalize in case K is not unitary.
		s.Apply1Q(ks[0], q)
		n := s.Norm()
		if n <= 0 {
			panic("statevec: Kraus operator annihilated the state")
		}
		s.scale(1 / n)
		return 0
	}
	bit := uint64(1) << uint(q)
	// Branch probability p_i = sum over basis pairs of |K_i acting on the
	// (a0, a1) sub-vector|^2.
	probs := make([]float64, len(ks))
	for base := uint64(0); base < uint64(len(s.amp)); base++ {
		if base&bit != 0 {
			continue
		}
		a0 := s.amp[base]
		a1 := s.amp[base|bit]
		for i, k := range ks {
			n0 := k[0][0]*a0 + k[0][1]*a1
			n1 := k[1][0]*a0 + k[1][1]*a1
			probs[i] += real(n0)*real(n0) + imag(n0)*imag(n0) +
				real(n1)*real(n1) + imag(n1)*imag(n1)
		}
	}
	choice := r.Choose(probs)
	s.Apply1Q(ks[choice], q)
	p := math.Sqrt(probs[choice])
	if p <= 0 {
		panic("statevec: chose zero-probability Kraus branch")
	}
	s.scale(1 / p)
	return choice
}

func (s *State) scale(f float64) {
	c := complex(f, 0)
	for i := range s.amp {
		s.amp[i] *= c
	}
}

// Probabilities returns the probability of every basis state.
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.amp))
	for i, a := range s.amp {
		out[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// SampleOutcome draws a full-register measurement outcome without
// collapsing the state.
func (s *State) SampleOutcome(r *rng.RNG) bitstr.BitString {
	x := r.Float64()
	var acc float64
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if x < acc {
			return bitstr.New(uint64(i), s.n)
		}
	}
	return bitstr.New(uint64(len(s.amp)-1), s.n)
}

// Fidelity returns |<s|other>|^2.
func (s *State) Fidelity(other *State) float64 {
	if s.n != other.n {
		panic("statevec: Fidelity size mismatch")
	}
	var dot complex128
	for i, a := range s.amp {
		dot += cmplx.Conj(a) * other.amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}
