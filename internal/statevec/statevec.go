// Package statevec implements a pure-state (statevector) quantum
// simulator. It is the workhorse engine of this repository: the noisy
// backend runs one Monte-Carlo *trajectory* per trial by interleaving
// unitary gates with stochastically sampled Kraus operators, exactly
// mirroring the paper's methodology of running a program for thousands of
// trials and logging one outcome per trial.
//
// Amplitude indexing: basis state index b has qubit q in state (b>>q)&1,
// i.e. qubit 0 is the least-significant bit.
//
// Layout: amplitudes are stored structure-of-arrays — one []float64 of
// real parts and one of imaginary parts, carved out of a single backing
// buffer — rather than as []complex128. The hot kernels (kernels.go)
// stream contiguous float64 runs, which keeps operands in registers,
// drops the complex128 shuffle traffic, and gives the amd64 AVX2 fast
// paths (kernels_amd64.s) unit-stride vector loads. Every kernel
// replicates the float operations of the frozen complex128 loops
// operation for operation, so amplitudes are bit-identical to the
// pre-SoA engine (TestKernelsBitIdenticalToFrozen pins this against the
// frozen loops kept in frozen_test.go).
package statevec

import (
	"fmt"
	"math"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/pool"
	"edm/internal/rng"
)

// MaxQubits bounds the register size (memory is 16 bytes * 2^n).
const MaxQubits = 24

// State is the statevector of an n-qubit register. re[b] and im[b] are
// the real and imaginary parts of the amplitude of basis state b; for an
// owned state both slices alias one backing buffer (buf) so snapshot
// copies and pooling work on a single allocation. A Batch lane view
// (Batch.Lane) has buf nil and re/im aliasing the batch's storage; every
// State method works on re/im only, so views and owned states are
// interchangeable.
type State struct {
	n   int
	re  []float64
	im  []float64
	buf []float64 // owned states: len 2*2^n, re = buf[:2^n], im = buf[2^n:]; nil for lane views
}

// split carves the re/im views out of a backing buffer of 2*2^n floats.
func (s *State) split(n int, buf []float64) {
	size := 1 << uint(n)
	s.n = n
	s.buf = buf
	s.re = buf[:size:size]
	s.im = buf[size:]
}

// NewState returns the all-zeros computational basis state |0...0>.
func NewState(n int) *State {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: %d qubits out of range", n))
	}
	s := &State{}
	s.split(n, make([]float64, 2<<uint(n)))
	s.re[0] = 1
	return s
}

// scratch recycles amplitude buffers across GetState/PutState pairs.
// Stripe workers in the backend take a scratch state per stripe and
// return it when the stripe ends, so wide campaigns reuse a few buffers
// instead of allocating one statevector per (run x worker).
var scratch pool.Buffers[float64]

// GetState returns a |0...0> state of n qubits whose amplitude buffer
// comes from a process-wide free list. Pair with PutState when the
// state is no longer referenced.
func GetState(n int) *State {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: %d qubits out of range", n))
	}
	s := &State{}
	s.split(n, scratch.Get(2<<uint(n)))
	s.Reset()
	return s
}

// PutState returns a GetState state's buffer to the free list. The
// state must not be used afterwards. PutState(nil) is a no-op, as is
// PutState of a Batch lane view (the batch owns that storage).
func PutState(s *State) {
	if s == nil || s.buf == nil {
		return
	}
	scratch.Put(s.buf)
	s.buf, s.re, s.im = nil, nil, nil
}

// NewBasisState returns the computational basis state |b>.
func NewBasisState(b bitstr.BitString) *State {
	s := NewState(b.Len())
	s.re[0] = 0
	s.re[b.Uint64()] = 1
	return s
}

// N returns the number of qubits.
func (s *State) N() int { return s.n }

// Reset returns the state to |0...0> in place, so one allocation can be
// reused across many Monte-Carlo trajectories.
func (s *State) Reset() {
	for i := range s.re {
		s.re[i] = 0
	}
	for i := range s.im {
		s.im[i] = 0
	}
	s.re[0] = 1
}

// Amplitude returns the amplitude of basis state index b.
func (s *State) Amplitude(b uint64) complex128 {
	return complex(s.re[b], s.im[b])
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{}
	c.split(s.n, make([]float64, 2*len(s.re)))
	copy(c.re, s.re)
	copy(c.im, s.im)
	return c
}

// CopyFrom overwrites s with a bit-identical copy of src, reusing s's
// amplitude buffer. It is the restore half of the snapshot API: the
// backend's trajectory engine clones checkpoint states once per program
// and restores diverging trials into a reused scratch state with no
// allocation. The two states must have the same qubit count and must
// not alias.
func (s *State) CopyFrom(src *State) {
	if s.n != src.n {
		panic(fmt.Sprintf("statevec: CopyFrom size mismatch (%d vs %d qubits)", s.n, src.n))
	}
	copy(s.re, src.re)
	copy(s.im, src.im)
}

// Norm returns the 2-norm of the statevector (1 for a valid state).
func (s *State) Norm() float64 {
	var sum float64
	for i, ar := range s.re {
		ai := s.im[i]
		sum += ar*ar + ai*ai
	}
	return math.Sqrt(sum)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
	}
}

// Apply1Q applies a one-qubit unitary to qubit q. Diagonal and
// anti-diagonal matrices (whose zero entries are exact) are routed to the
// specialized kernels; the results are bit-identical to the general loop
// because multiplying by an exact complex zero contributes exactly zero.
func (s *State) Apply1Q(m circuit.Matrix2, q int) {
	s.checkQubit(q)
	if m.IsDiagonal() {
		s.Apply1QDiag(m[0][0], m[1][1], q)
		return
	}
	if m.IsAntiDiagonal() {
		s.Apply1QAntiDiag(m[0][1], m[1][0], q)
		return
	}
	mm := [8]float64{
		real(m[0][0]), imag(m[0][0]), real(m[0][1]), imag(m[0][1]),
		real(m[1][0]), imag(m[1][0]), real(m[1][1]), imag(m[1][1]),
	}
	flat1QGeneral(s.re, s.im, 1<<uint(q), &mm)
}

// Apply1QDiag applies diag(d0, d1) to qubit q: amplitudes with the qubit
// clear scale by d0, amplitudes with it set scale by d1.
func (s *State) Apply1QDiag(d0, d1 complex128, q int) {
	s.checkQubit(q)
	flat1QDiag(s.re, s.im, 1<<uint(q), d0, d1)
}

// Apply1QAntiDiag applies the X-like matrix [[0, a01], [a10, 0]] to qubit
// q: a scaled swap of each amplitude pair.
func (s *State) Apply1QAntiDiag(a01, a10 complex128, q int) {
	s.checkQubit(q)
	c := [4]float64{real(a01), imag(a01), real(a10), imag(a10)}
	flat1QAnti(s.re, s.im, 1<<uint(q), &c)
}

// mat4SoA flattens a 4x4 complex matrix row-major into interleaved
// (real, imag) float pairs: entry (r, c) lives at mm[(r*4+c)*2, +1].
func mat4SoA(m circuit.Matrix4) [32]float64 {
	var mm [32]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			mm[(r*4+c)*2] = real(m[r][c])
			mm[(r*4+c)*2+1] = imag(m[r][c])
		}
	}
	return mm
}

// Apply2Q applies a two-qubit unitary to the ordered qubit pair (q0, q1),
// where q0 is the low bit of the 4x4 matrix basis (the control for CX).
// Exactly diagonal matrices are routed to Apply2QDiag.
func (s *State) Apply2Q(m circuit.Matrix4, q0, q1 int) {
	s.checkQubit(q0)
	s.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2Q with identical qubits")
	}
	if d, ok := m.DiagonalOf(); ok {
		s.Apply2QDiag(d, q0, q1)
		return
	}
	mm := mat4SoA(m)
	flat2QGeneral(s.re, s.im, 1<<uint(q0), 1<<uint(q1), &mm)
}

// Apply2QDiag applies diag(d) on the ordered pair (q0, q1), where the
// matrix basis index is (bit q0) + 2*(bit q1). ZZ interactions — the
// dominant noise-injected two-qubit step — are diagonal, so this kernel
// carries most of the crosstalk load at 4 multiplies per base index.
func (s *State) Apply2QDiag(d [4]complex128, q0, q1 int) {
	s.checkQubit(q0)
	s.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2QDiag with identical qubits")
	}
	flat2QDiag(s.re, s.im, 1<<uint(q0), 1<<uint(q1), d)
}

// Perm4 is a two-qubit permutation-with-phases unitary: row r of the
// matrix has its single nonzero entry Coef[r] in column Src[r]. CX, CZ,
// SWAP and their phase products all have this shape.
type Perm4 struct {
	Src  [4]uint8
	Coef [4]complex128
}

// ClassifyPerm4 reports whether m is a permutation-with-phases matrix
// (exactly one nonzero entry per row and per column) and returns its
// compact form. Zero tests are exact, mirroring the diagonal fast paths.
func ClassifyPerm4(m circuit.Matrix4) (Perm4, bool) {
	var p Perm4
	var colUsed [4]bool
	for r := 0; r < 4; r++ {
		found := -1
		for c := 0; c < 4; c++ {
			if m[r][c] != 0 {
				if found >= 0 {
					return Perm4{}, false
				}
				found = c
			}
		}
		if found < 0 || colUsed[found] {
			return Perm4{}, false
		}
		colUsed[found] = true
		p.Src[r] = uint8(found)
		p.Coef[r] = m[r][found]
	}
	return p, true
}

// Apply2QPerm applies a permutation-with-phases unitary on (q0, q1):
// out[idx[r]] = Coef[r] * in[idx[Src[r]]], one multiply per amplitude.
func (s *State) Apply2QPerm(p Perm4, q0, q1 int) {
	s.checkQubit(q0)
	s.checkQubit(q1)
	if q0 == q1 {
		panic("statevec: Apply2QPerm with identical qubits")
	}
	c := [8]float64{
		real(p.Coef[0]), imag(p.Coef[0]), real(p.Coef[1]), imag(p.Coef[1]),
		real(p.Coef[2]), imag(p.Coef[2]), real(p.Coef[3]), imag(p.Coef[3]),
	}
	flat2QPerm(s.re, s.im, 1<<uint(q0), 1<<uint(q1), &p.Src, &c)
}

// ApplyOp applies a unitary circuit operation. It panics on Measure or
// Barrier (callers handle those explicitly).
func (s *State) ApplyOp(op circuit.Op) {
	switch {
	case op.Kind == circuit.Barrier || op.Kind == circuit.Measure:
		panic(fmt.Sprintf("statevec: ApplyOp on non-unitary %v", op.Kind))
	case op.Kind.IsTwoQubit():
		s.Apply2Q(circuit.Matrix2Q(op.Kind), op.Qubits[0], op.Qubits[1])
	default:
		s.Apply1Q(circuit.Matrix1Q(op.Kind, op.Params), op.Qubits[0])
	}
}

// ProbabilityOne returns the probability that measuring qubit q yields 1.
// The summation order matches the frozen complex128 loop exactly (block
// by block, index-ascending), so thresholds recorded by the trajectory
// engine's dominant-path builder are bit-stable across engines.
func (s *State) ProbabilityOne(q int) float64 {
	s.checkQubit(q)
	bit := 1 << uint(q)
	n := len(s.re)
	var p float64
	for blk := bit; blk < n; blk += bit << 1 {
		re := s.re[blk : blk+bit : blk+bit]
		im := s.im[blk : blk+bit : blk+bit]
		for i, ar := range re {
			ai := im[i]
			p += ar*ar + ai*ai
		}
	}
	return p
}

// MeasureQubit projectively measures qubit q, collapsing the state, and
// returns the observed bit.
func (s *State) MeasureQubit(q int, r *rng.RNG) int {
	p1 := s.ProbabilityOne(q)
	outcome := 0
	if r.Float64() < p1 {
		outcome = 1
	}
	s.projectQubit(q, outcome)
	return outcome
}

// Project collapses qubit q onto the given outcome without drawing a
// sample — exactly the state update MeasureQubit performs after its
// draw. Callers that decide the outcome externally (the trajectory
// engine's dominant-path builder) get a state bit-identical to a
// MeasureQubit call whose draw produced the same outcome. It panics if
// the outcome has zero probability.
func (s *State) Project(q, outcome int) {
	s.checkQubit(q)
	if outcome != 0 && outcome != 1 {
		panic(fmt.Sprintf("statevec: Project with outcome %d", outcome))
	}
	s.projectQubit(q, outcome)
}

// projectQubit zeroes the amplitudes inconsistent with qubit q being in
// the given state and renormalizes. The scale pass spells out the full
// complex multiply by (scale + 0i) — including the multiply-by-zero
// terms — so zero signs stay bit-identical to the frozen loop.
func (s *State) projectQubit(q, outcome int) {
	bit := 1 << uint(q)
	n := len(s.re)
	var norm float64
	// Zero the discarded half-blocks (range-clear loops compile to
	// memclr) and accumulate the kept amplitudes' norm. The kept indices
	// are visited in the same ascending order as a single whole-array
	// pass, so the reduction value is bit-identical to the frozen loop.
	for blk := 0; blk < n; blk += bit << 1 {
		keep, drop := blk+bit, blk
		if outcome == 0 {
			keep, drop = blk, blk+bit
		}
		dropR := s.re[drop : drop+bit]
		for i := range dropR {
			dropR[i] = 0
		}
		dropI := s.im[drop : drop+bit]
		for i := range dropI {
			dropI[i] = 0
		}
		keepR := s.re[keep : keep+bit : keep+bit]
		keepI := s.im[keep : keep+bit : keep+bit]
		for i, ar := range keepR {
			ai := keepI[i]
			norm += ar*ar + ai*ai
		}
	}
	if norm <= 0 {
		panic("statevec: projection onto zero-probability outcome")
	}
	// Renormalization is a complex scale by (1/sqrt(norm) + 0i): cscaleRun
	// computes re' = ar*scale - ai*0, im' = ar*0 + ai*scale — the frozen
	// loop's expressions, zero signs included — through the shared kernel.
	cscaleRun(s.re, s.im, 1/math.Sqrt(norm), 0)
}

// ApplyKraus1Q applies a one-qubit quantum channel given by Kraus
// operators ks to qubit q by sampling one trajectory branch: branch i is
// chosen with probability ||K_i psi||^2 and the state is renormalized.
// It returns the index of the chosen branch. The operators must satisfy
// sum K_i^dagger K_i = I for the probabilities to sum to one; small
// numerical slack is tolerated.
//
// Channels whose operators are all diagonal or anti-diagonal — damping,
// dephasing, and Pauli channels, i.e. every channel the noise model
// samples per trial — take a fast path: branch probabilities follow from
// the qubit's populations alone (one cheap pass instead of a full
// matrix-action scan), and the chosen operator is applied pre-scaled so
// renormalization costs no extra pass.
func (s *State) ApplyKraus1Q(ks []circuit.Matrix2, q int, r *rng.RNG) int {
	s.checkQubit(q)
	if len(ks) == 0 {
		panic("statevec: empty Kraus set")
	}
	if len(ks) == 1 {
		// Deterministic channel; still renormalize in case K is not unitary.
		s.Apply1Q(ks[0], q)
		n := s.Norm()
		if n <= 0 {
			panic("statevec: Kraus operator annihilated the state")
		}
		s.scale(1 / n)
		return 0
	}
	var pbuf [8]float64
	var probs []float64
	if len(ks) <= len(pbuf) {
		probs = pbuf[:len(ks)]
	} else {
		probs = make([]float64, len(ks))
	}
	s.KrausBranchProbs1Q(ks, q, probs)
	choice := r.Choose(probs)
	s.ApplyKrausBranch1Q(ks, q, choice, probs[choice])
	return choice
}

// KrausBranchProbs1Q fills probs (len(ks) entries) with the trajectory
// branch probabilities ||K_i psi||^2 of the channel on qubit q, computed
// exactly — operation for operation — as ApplyKraus1Q computes them
// before its draw. The trajectory engine's dominant-path builder uses it
// to record state-dependent branch thresholds that are bit-identical to
// the ones a live trial would compare its uniform against.
//
// Sets whose operators are each diagonal or anti-diagonal — damping,
// dephasing, and Pauli channels, i.e. every channel the noise model
// samples per trial — take a fast path: for such a set the branch
// probabilities depend only on the target qubit's populations p0, p1:
//
//	diagonal K:      ||K psi||^2 = |k00|^2 p0 + |k11|^2 p1
//	anti-diagonal K: ||K psi||^2 = |k01|^2 p1 + |k10|^2 p0
//
// so one population pass replaces the per-operator matrix-action scan.
func (s *State) KrausBranchProbs1Q(ks []circuit.Matrix2, q int, probs []float64) {
	s.checkQubit(q)
	if len(probs) != len(ks) {
		panic("statevec: KrausBranchProbs1Q buffer size mismatch")
	}
	bit := 1 << uint(q)
	n := len(s.re)
	if krausDiagLike(ks) {
		var p0, p1 float64
		for blk := 0; blk < n; blk += bit << 1 {
			loR := s.re[blk : blk+bit : blk+bit]
			loI := s.im[blk : blk+bit : blk+bit]
			hiR := s.re[blk+bit : blk+(bit<<1) : blk+(bit<<1)]
			hiI := s.im[blk+bit : blk+(bit<<1) : blk+(bit<<1)]
			for i, a0r := range loR {
				a0i := loI[i]
				a1r := hiR[i]
				a1i := hiI[i]
				p0 += a0r*a0r + a0i*a0i
				p1 += a1r*a1r + a1i*a1i
			}
		}
		for i, k := range ks {
			if k.IsDiagonal() {
				probs[i] = abs2(k[0][0])*p0 + abs2(k[1][1])*p1
			} else {
				probs[i] = abs2(k[0][1])*p1 + abs2(k[1][0])*p0
			}
		}
		return
	}
	// Branch probability p_i = sum over basis pairs of |K_i acting on the
	// (a0, a1) sub-vector|^2.
	for i := range probs {
		probs[i] = 0
	}
	for blk := 0; blk < n; blk += bit << 1 {
		loR := s.re[blk : blk+bit : blk+bit]
		loI := s.im[blk : blk+bit : blk+bit]
		hiR := s.re[blk+bit : blk+(bit<<1) : blk+(bit<<1)]
		hiI := s.im[blk+bit : blk+(bit<<1) : blk+(bit<<1)]
		for j, a0r := range loR {
			a0i := loI[j]
			a1r := hiR[j]
			a1i := hiI[j]
			for i, k := range ks {
				k00r, k00i := real(k[0][0]), imag(k[0][0])
				k01r, k01i := real(k[0][1]), imag(k[0][1])
				k10r, k10i := real(k[1][0]), imag(k[1][0])
				k11r, k11i := real(k[1][1]), imag(k[1][1])
				n0r := (k00r*a0r - k00i*a0i) + (k01r*a1r - k01i*a1i)
				n0i := (k00r*a0i + k00i*a0r) + (k01r*a1i + k01i*a1r)
				n1r := (k10r*a0r - k10i*a0i) + (k11r*a1r - k11i*a1i)
				n1i := (k10r*a0i + k10i*a0r) + (k11r*a1i + k11i*a1r)
				probs[i] += n0r*n0r + n0i*n0i +
					n1r*n1r + n1i*n1i
			}
		}
	}
}

// ApplyKrausBranch1Q applies branch `choice` of the channel, pre-scaled
// by 1/sqrt(p) where p is that branch's probability (as returned by
// KrausBranchProbs1Q), so the apply and the renormalization are one
// pass. It is the post-draw half of ApplyKraus1Q and performs the same
// kernel dispatch: diagonal and anti-diagonal operators (exact zero
// tests) go through the specialized kernels.
func (s *State) ApplyKrausBranch1Q(ks []circuit.Matrix2, q, choice int, p float64) {
	s.checkQubit(q)
	sq := math.Sqrt(p)
	if sq <= 0 {
		panic("statevec: chose zero-probability Kraus branch")
	}
	inv := complex(1/sq, 0)
	k := ks[choice]
	if k.IsDiagonal() {
		s.Apply1QDiag(k[0][0]*inv, k[1][1]*inv, q)
		return
	}
	if k.IsAntiDiagonal() {
		s.Apply1QAntiDiag(k[0][1]*inv, k[1][0]*inv, q)
		return
	}
	s.Apply1Q(circuit.Matrix2{
		{k[0][0] * inv, k[0][1] * inv},
		{k[1][0] * inv, k[1][1] * inv},
	}, q)
}

// krausDiagLike reports whether every operator in the set is diagonal or
// anti-diagonal, enabling the population-based probability fast path.
func krausDiagLike(ks []circuit.Matrix2) bool {
	for _, k := range ks {
		if !k.IsDiagonal() && !k.IsAntiDiagonal() {
			return false
		}
	}
	return true
}

func abs2(c complex128) float64 {
	return real(c)*real(c) + imag(c)*imag(c)
}

// scale multiplies every amplitude by the real factor f, spelled as the
// full complex multiply by (f + 0i) the frozen loop performed so zero
// signs stay bit-identical.
func (s *State) scale(f float64) {
	for i, ar := range s.re {
		ai := s.im[i]
		s.re[i] = ar*f - ai*0
		s.im[i] = ar*0 + ai*f
	}
}

// Probabilities returns the probability of every basis state.
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.re))
	for i, ar := range s.re {
		ai := s.im[i]
		out[i] = ar*ar + ai*ai
	}
	return out
}

// SampleOutcome draws a full-register measurement outcome without
// collapsing the state.
func (s *State) SampleOutcome(r *rng.RNG) bitstr.BitString {
	x := r.Float64()
	var acc float64
	for i, ar := range s.re {
		ai := s.im[i]
		acc += ar*ar + ai*ai
		if x < acc {
			return bitstr.New(uint64(i), s.n)
		}
	}
	return bitstr.New(uint64(len(s.re)-1), s.n)
}

// Fidelity returns |<s|other>|^2.
func (s *State) Fidelity(other *State) float64 {
	if s.n != other.n {
		panic("statevec: Fidelity size mismatch")
	}
	var dr, di float64
	for i, ar := range s.re {
		ai := -s.im[i] // conj
		br := other.re[i]
		bi := other.im[i]
		dr += ar*br - ai*bi
		di += ar*bi + ai*br
	}
	return dr*dr + di*di
}
