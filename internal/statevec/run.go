package statevec

import (
	"fmt"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/dist"
)

// IdealDist computes the exact, noise-free output distribution of the
// circuit over its classical register. The circuit may only measure at the
// end (no unitary may act on a qubit after it has been measured); this
// matches all of the paper's workloads and keeps the computation a single
// statevector pass.
func IdealDist(c *circuit.Circuit) (*dist.Dist, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	measured := make(map[int]bool)
	s := NewState(c.NumQubits)
	for i, op := range c.Ops {
		switch op.Kind {
		case circuit.Barrier:
			continue
		case circuit.Measure:
			measured[op.Qubits[0]] = true
		default:
			for _, q := range op.Qubits {
				if measured[q] {
					return nil, fmt.Errorf("statevec: op %d acts on qubit %d after measurement", i, q)
				}
			}
			s.ApplyOp(op)
		}
	}
	bits := c.MeasuredBits()
	d := dist.New(c.NumClbits)
	for b, p := range s.Probabilities() {
		if p == 0 {
			continue
		}
		var out uint64
		for cb, q := range bits {
			if q >= 0 && uint64(b)>>uint(q)&1 == 1 {
				out |= 1 << uint(cb)
			}
		}
		d.Add(bitstr.New(out, c.NumClbits), p)
	}
	return d, nil
}
