package statevec

import (
	"fmt"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
)

// benchSizes are the register widths the kernel micro-benchmarks sweep;
// 14 matches the Melbourne device the repo's experiments target.
// The benchmarks reuse randomState (statevec_test.go) so the kernels see
// a fully entangled state with no special structure to exploit.
var benchSizes = []int{6, 10, 14}

// denseMatrix4 left-multiplies (H ⊗ H) into CX, producing a 4x4 with no
// zero entries so no fast-path classification (diagonal, permutation)
// applies and Apply2Q exercises its general kernel.
func denseMatrix4() circuit.Matrix4 {
	h := circuit.Matrix1Q(circuit.H, nil)
	cx := circuit.Matrix2Q(circuit.CX)
	var hh circuit.Matrix4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			hh[r][c] = h[r&1][c&1] * h[r>>1][c>>1]
		}
	}
	var out circuit.Matrix4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var acc complex128
			for k := 0; k < 4; k++ {
				acc += hh[r][k] * cx[k][c]
			}
			out[r][c] = acc
		}
	}
	return out
}

// BenchmarkApply1Q measures the general dense one-qubit kernel on the
// middle qubit of each register size.
func BenchmarkApply1Q(b *testing.B) {
	h := circuit.Matrix1Q(circuit.H, nil)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			s := randomState(n, rng.New(3))
			q := n / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply1Q(h, q)
			}
		})
	}
}

// BenchmarkApply2Q measures the general dense two-qubit kernel on the
// worst-case stride pair (lowest and highest qubit).
func BenchmarkApply2Q(b *testing.B) {
	dense := denseMatrix4()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			s := randomState(n, rng.New(5))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply2Q(dense, 0, n-1)
			}
		})
	}
}

// BenchmarkApplyDiagonal measures the diagonal fast paths the fusion pass
// routes RZ and ZZ-crosstalk steps through.
func BenchmarkApplyDiagonal(b *testing.B) {
	rz := circuit.Matrix1Q(circuit.RZ, []float64{0.37})
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("1q/q%d", n), func(b *testing.B) {
			s := randomState(n, rng.New(7))
			q := n / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply1QDiag(rz[0][0], rz[1][1], q)
			}
		})
		b.Run(fmt.Sprintf("2q/q%d", n), func(b *testing.B) {
			s := randomState(n, rng.New(9))
			d := [4]complex128{1, rz[1][1], rz[1][1], 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply2QDiag(d, 0, n-1)
			}
		})
	}
}

// BenchmarkApply1QAntiDiag measures the anti-diagonal fast path — X/Y
// Pauli errors and the amplitude-damping jump branch, the off-diagonal
// operators a noisy trajectory applies most often.
func BenchmarkApply1QAntiDiag(b *testing.B) {
	x := circuit.Matrix1Q(circuit.X, nil)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			s := randomState(n, rng.New(11))
			q := n / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply1QAntiDiag(x[0][1], x[1][0], q)
			}
		})
	}
}

// BenchmarkApplyMixedDiagSequence interleaves diagonal and anti-diagonal
// one-qubit kernels across the register the way a damping-heavy
// schedule does (no-jump scale, dephasing, jump branch), so the
// dispatch cost between the two fast paths is measured, not just each
// kernel in isolation.
func BenchmarkApplyMixedDiagSequence(b *testing.B) {
	rz := circuit.Matrix1Q(circuit.RZ, []float64{0.37})
	x := circuit.Matrix1Q(circuit.X, nil)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			s := randomState(n, rng.New(13))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := i % n
				s.Apply1QDiag(rz[0][0], rz[1][1], q)
				s.Apply1QAntiDiag(x[0][1], x[1][0], q)
				s.Apply1QDiag(rz[1][1], rz[0][0], (q+1)%n)
			}
		})
	}
}

// Frozen-kernel benchmarks: the same operations through the verbatim
// pre-SoA complex128 loops (frozen_test.go), giving bench_kernels.sh an
// in-process denominator for the SoA/AVX2 speedups — the frozen code
// lives in the test binary forever, so the baseline never goes stale.

func BenchmarkFrozenApply1Q(b *testing.B) {
	h := circuit.Matrix1Q(circuit.H, nil)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			f := newFrozenState(randomState(n, rng.New(3)))
			q := n / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.apply1Q(h, q)
			}
		})
	}
}

func BenchmarkFrozenApply2Q(b *testing.B) {
	dense := denseMatrix4()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			f := newFrozenState(randomState(n, rng.New(5)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.apply2Q(dense, 0, n-1)
			}
		})
	}
}

func BenchmarkFrozenApply1QAntiDiag(b *testing.B) {
	x := circuit.Matrix1Q(circuit.X, nil)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("q%d", n), func(b *testing.B) {
			f := newFrozenState(randomState(n, rng.New(11)))
			q := n / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.apply1QAntiDiag(x[0][1], x[1][0], q)
			}
		})
	}
}

func BenchmarkFrozenApplyDiagonal(b *testing.B) {
	rz := circuit.Matrix1Q(circuit.RZ, []float64{0.37})
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("1q/q%d", n), func(b *testing.B) {
			f := newFrozenState(randomState(n, rng.New(7)))
			q := n / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.apply1QDiag(rz[0][0], rz[1][1], q)
			}
		})
		b.Run(fmt.Sprintf("2q/q%d", n), func(b *testing.B) {
			f := newFrozenState(randomState(n, rng.New(9)))
			d := [4]complex128{1, rz[1][1], rz[1][1], 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.apply2QDiag(d, 0, n-1)
			}
		})
	}
}
