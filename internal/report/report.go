// Package report renders experiment results as fixed-width text tables,
// ASCII bar charts and heat maps, and CSV series — the harness output that
// stands in for the paper's figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes a fixed-width table with a header row and a separator.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Pct formats a probability as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}

// Bars renders a labelled horizontal ASCII bar chart. Values must be
// non-negative; the widest bar spans `width` characters. A reference line
// value (e.g. IST = 1) can be marked with refLabel; pass NaN to disable.
func Bars(w io.Writer, labels []string, values []float64, width int, ref float64, refLabel string) {
	maxV := ref
	if math.IsNaN(maxV) {
		maxV = 0
	}
	for _, v := range values {
		if !math.IsInf(v, 1) && v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := width
		if !math.IsInf(v, 1) {
			n = int(math.Round(v / maxV * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		bar := strings.Repeat("#", n)
		fmt.Fprintf(w, "%s  %s %s\n", pad(label, labW), pad(bar, width), F(v))
	}
	if !math.IsNaN(ref) && refLabel != "" {
		mark := int(math.Round(ref / maxV * float64(width)))
		if mark >= 0 && mark <= width {
			fmt.Fprintf(w, "%s  %s^ %s\n", strings.Repeat(" ", labW), strings.Repeat(" ", mark), refLabel)
		}
	}
}

// Heatmap renders a square matrix as ASCII shades, darker meaning larger.
// It mirrors the paper's Figure 4 heat maps (where *dark* meant *similar*,
// i.e. low divergence; here shade tracks the raw value, so low-divergence
// cells print light — the scale is printed alongside).
func Heatmap(w io.Writer, m [][]float64) {
	shades := []byte(" .:-=+*#%@")
	maxV := 0.0
	for _, row := range m {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(w, "    ")
	for j := range m {
		fmt.Fprintf(w, "%c ", 'A'+j)
	}
	fmt.Fprintln(w)
	for i, row := range m {
		fmt.Fprintf(w, "  %c ", 'A'+i)
		for _, v := range row {
			idx := int(v / maxV * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Fprintf(w, "%c ", shades[idx])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  scale: ' '=0 .. '@'=%.3f\n", maxV)
}

// CSV writes a simple CSV with a header; cells are written verbatim, so
// callers must not pass cells containing commas or newlines.
func CSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
