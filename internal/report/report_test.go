package report

import (
	"math"
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// Columns aligned: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22222") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"a", "b"}, [][]string{{"x"}})
	if !strings.Contains(sb.String(), "x") {
		t.Fatal("short row dropped")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		1.23456:        "1.235",
		0:              "0.000",
		math.Inf(1):    "inf",
		math.Inf(-1):   "-inf",
		math.NaN():     "nan",
		0.000012345678: "1.23e-05",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.028); got != "2.80%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, []string{"A", "B", "EDM"}, []float64{0.5, 1.0, 1.2}, 20, 1, "IST=1")
	out := sb.String()
	if !strings.Contains(out, "EDM") || !strings.Contains(out, "IST=1") {
		t.Fatalf("bars missing labels:\n%s", out)
	}
	// The longest value gets the most #.
	lines := strings.Split(out, "\n")
	countHash := func(s string) int { return strings.Count(s, "#") }
	if !(countHash(lines[2]) > countHash(lines[1]) && countHash(lines[1]) > countHash(lines[0])) {
		t.Fatalf("bar lengths not ordered:\n%s", out)
	}
}

func TestBarsInfinity(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, []string{"x"}, []float64{math.Inf(1)}, 10, math.NaN(), "")
	if !strings.Contains(sb.String(), "inf") {
		t.Fatal("infinite bar not labelled")
	}
}

func TestHeatmap(t *testing.T) {
	var sb strings.Builder
	Heatmap(&sb, [][]float64{
		{0, 0.5},
		{0.5, 1.0},
	})
	out := sb.String()
	if !strings.Contains(out, "@") {
		t.Fatalf("max shade missing:\n%s", out)
	}
	if !strings.Contains(out, "scale:") {
		t.Fatal("scale line missing")
	}
	// Header letters.
	if !strings.Contains(out, "A B") {
		t.Fatalf("column header missing:\n%s", out)
	}
}

func TestHeatmapAllZero(t *testing.T) {
	var sb strings.Builder
	Heatmap(&sb, [][]float64{{0, 0}, {0, 0}})
	if strings.Contains(sb.String(), "@@") {
		t.Fatal("zero matrix rendered dark")
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "x,y\n1,2\n3,4\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q", sb.String())
	}
}
