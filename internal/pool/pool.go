// Package pool provides the process-wide compute-token pool that every
// CPU-bound fan-out in the repository gates through.
//
// Several layers of the pipeline parallelize independently: the backend
// stripes trials across workers, core runs ensemble members concurrently,
// the mapper scores isomorphic placements in parallel and the experiment
// campaign runs (workload x round) cells side by side. If each layer sized
// its own worker pool at GOMAXPROCS the composition would oversubscribe
// the CPUs multiplicatively. Instead, every *leaf* worker — a goroutine
// that performs raw compute and never spawns or waits for further
// token-gated work — acquires one token for its lifetime, so total
// CPU-bound concurrency stays bounded no matter how the layers nest.
//
// Deadlock rule: a goroutine must never hold a token while acquiring
// another or while waiting on work that needs one. Orchestration layers
// (experiment cells, ensemble members) therefore use plain local
// semaphores and leave the tokens to their leaves.
package pool

import (
	"context"
	"runtime"
)

// tokens is sized once at init; see Size.
var tokens = make(chan struct{}, initialSize())

func initialSize() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c > n {
		n = c
	}
	if n < 2 {
		n = 2
	}
	return n
}

// Size returns the token-pool capacity, fixed at process init.
func Size() int { return cap(tokens) }

// Acquire blocks until a compute token is available.
func Acquire() { tokens <- struct{}{} }

// Release returns a token acquired with Acquire, AcquireCtx or
// TryAcquire.
func Release() { <-tokens }

// AcquireCtx blocks until a compute token is available or ctx is done,
// in which case it returns ctx.Err() without holding a token. An
// available token wins over an already-expired ctx, so callers under
// light load never pay a spurious cancellation. The serving layer uses
// it so a request abandoned while queued for CPU stops occupying the
// admission pipeline.
func AcquireCtx(ctx context.Context) error {
	select {
	case tokens <- struct{}{}:
		return nil
	default:
	}
	select {
	case tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a token if one is immediately available and reports
// whether it did.
func TryAcquire() bool {
	select {
	case tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Workers returns the number of goroutines worth spawning for n
// independent work items: min(GOMAXPROCS, n), at least 1. Callers decide
// at call time, so tests that raise GOMAXPROCS exercise the parallel
// paths even on small machines.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Each runs f(i) for every i in [0, n), fanning out across Workers(n)
// token-holding goroutines (worker w owns items w, w+W, w+2W, ...). It is
// intended for leaf compute loops: f must not acquire tokens itself, and
// results must be written to per-index slots so the outcome is identical
// to a serial loop. Each returns after all items complete; if any f
// panicked, the lowest-index panic is re-raised in the caller.
func Each(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	if w < 2 {
		Acquire()
		defer Release()
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	panics := make([]any, n)
	done := make(chan struct{})
	for g := 0; g < w; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			Acquire()
			defer Release()
			for i := g; i < n; i += w {
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					f(i)
				}(i)
			}
		}(g)
	}
	for g := 0; g < w; g++ {
		<-done
	}
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
