package pool

import "sync"

// Buffers is a size-classed free list for fixed-length scratch slices.
// It complements the compute-token pool: tokens bound how many leaf
// workers run at once, Buffers bounds how much scratch memory those
// workers allocate. A stripe worker that needs a statevector (or any
// other large slice) of length n takes one from the class for n and
// returns it when the stripe completes, so campaigns that launch
// thousands of stripes recycle a handful of buffers instead of
// allocating one per stripe.
//
// Returned slices carry stale contents; callers must reinitialize. Each
// size class is a sync.Pool, so unused buffers are reclaimed by the GC
// under memory pressure rather than pinned forever.
type Buffers[T any] struct {
	classes sync.Map // int (length) -> *sync.Pool of []T
}

// Get returns a slice of exactly length n, reusing a previously Put
// buffer of the same length when one is available. Contents are
// unspecified.
func (b *Buffers[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	if p, ok := b.classes.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return v.([]T)
		}
	}
	return make([]T, n)
}

// CeilPow2 returns the smallest power of two >= n (and 1 for n <= 1).
// Batch-of-statevector buffers round their lane count up through it so
// variable batch widths collapse into a few pow2 size classes instead of
// one class per width.
func CeilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Put returns a slice obtained from Get (or any slice whose length is
// its full capacity class) to the free list. Put of a nil or empty
// slice is a no-op. The caller must not retain references to s.
func (b *Buffers[T]) Put(s []T) {
	if len(s) == 0 {
		return
	}
	p, ok := b.classes.Load(len(s))
	if !ok {
		p, _ = b.classes.LoadOrStore(len(s), &sync.Pool{})
	}
	p.(*sync.Pool).Put(s[:len(s):len(s)])
}
