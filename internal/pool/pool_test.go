package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSizeBounds(t *testing.T) {
	if Size() < 2 {
		t.Fatalf("pool size = %d, want >= 2", Size())
	}
}

func TestAcquireRelease(t *testing.T) {
	for i := 0; i < Size(); i++ {
		Acquire()
	}
	for i := 0; i < Size(); i++ {
		Release()
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d", w)
	}
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers exceeded GOMAXPROCS: %d", w)
	}
}

func TestEachCoversAllItems(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 257
	var hits [n]atomic.Int32
	Each(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("item %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestEachPropagatesLowestPanic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	defer func() {
		r := recover()
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	Each(16, func(i int) {
		if i == 3 || i == 11 {
			panic("boom-" + string(rune('0'+i%10)))
		}
	})
}

func TestEachZero(t *testing.T) {
	Each(0, func(int) { t.Fatal("called") })
	Each(-1, func(int) { t.Fatal("called") })
}

func TestBuffersReuse(t *testing.T) {
	var b Buffers[complex128]
	s := b.Get(16)
	if len(s) != 16 {
		t.Fatalf("Get(16) returned len %d", len(s))
	}
	s[3] = 7i
	b.Put(s)
	got := b.Get(16)
	if len(got) != 16 {
		t.Fatalf("reused Get(16) returned len %d", len(got))
	}
	// Different size classes never mix.
	if other := b.Get(8); len(other) != 8 {
		t.Fatalf("Get(8) returned len %d", len(other))
	}
	// Degenerate cases are no-ops.
	if b.Get(0) != nil {
		t.Fatal("Get(0) should be nil")
	}
	b.Put(nil)
}

func TestBuffersConcurrent(t *testing.T) {
	var b Buffers[int]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 << uint(i%6)
				s := b.Get(n)
				if len(s) != n {
					panic("wrong length")
				}
				for j := range s {
					s[j] = j
				}
				b.Put(s)
			}
		}()
	}
	wg.Wait()
}
