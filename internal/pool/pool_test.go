package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSizeBounds(t *testing.T) {
	if Size() < 2 {
		t.Fatalf("pool size = %d, want >= 2", Size())
	}
}

func TestAcquireRelease(t *testing.T) {
	for i := 0; i < Size(); i++ {
		Acquire()
	}
	for i := 0; i < Size(); i++ {
		Release()
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d", w)
	}
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers exceeded GOMAXPROCS: %d", w)
	}
}

func TestEachCoversAllItems(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 257
	var hits [n]atomic.Int32
	Each(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("item %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestEachPropagatesLowestPanic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	defer func() {
		r := recover()
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	Each(16, func(i int) {
		if i == 3 || i == 11 {
			panic("boom-" + string(rune('0'+i%10)))
		}
	})
}

func TestEachZero(t *testing.T) {
	Each(0, func(int) { t.Fatal("called") })
	Each(-1, func(int) { t.Fatal("called") })
}
