package pool

import (
	"context"
	"errors"
	"testing"
	"time"
)

func drainAll(t *testing.T) (restore func()) {
	t.Helper()
	n := 0
	for TryAcquire() {
		n++
	}
	held := n
	return func() {
		for i := 0; i < held; i++ {
			Release()
		}
	}
}

func TestAcquireCtxImmediate(t *testing.T) {
	if err := AcquireCtx(context.Background()); err != nil {
		t.Fatalf("AcquireCtx with free tokens: %v", err)
	}
	Release()
}

func TestAcquireCtxCancelledWhileWaiting(t *testing.T) {
	restore := drainAll(t)
	defer restore()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := AcquireCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		if err == nil {
			Release()
		}
		t.Fatalf("AcquireCtx on exhausted pool = %v, want DeadlineExceeded", err)
	}
}

func TestAcquireCtxAvailableTokenBeatsExpiredCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := AcquireCtx(ctx); err != nil {
		t.Fatalf("expired ctx with free token = %v, want nil", err)
	}
	Release()
}

func TestTryAcquire(t *testing.T) {
	restore := drainAll(t)
	if TryAcquire() {
		Release()
		restore()
		t.Fatal("TryAcquire succeeded on an exhausted pool")
	}
	restore()
	if !TryAcquire() {
		t.Fatal("TryAcquire failed with free tokens")
	}
	Release()
}
