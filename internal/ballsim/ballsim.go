// Package ballsim implements the paper's Appendix-A buckets-and-balls
// analysis of NISQ inference.
//
// Running an m-bit program for N trials is modelled as throwing N balls at
// M = 2^m buckets: one green bucket (the correct answer) catches a ball
// with probability Ps, and the remaining M-1 red buckets share the rest.
// A correlation "Demon" redirects a fraction Qcor of the error mass into k
// favoured ("purple") buckets, modelling correlated errors that make a few
// wrong answers dominate. IST is the green count divided by the largest
// non-green count; the PST frontier is the smallest Ps at which the median
// IST reaches 1.
package ballsim

import (
	"fmt"
	"math"
	"sort"

	"edm/internal/rng"
)

// Model is a buckets-and-balls configuration.
type Model struct {
	// M is the number of buckets (2^m for an m-bit program).
	M int
	// K is the number of correlation-favoured ("purple") buckets. The
	// paper takes k = log2(M) since error correlations tend to be local.
	K int
	// Qcor is the correlation factor: the fraction of error balls the
	// Demon redirects into the purple buckets (0 = uncorrelated).
	Qcor float64
}

// Uncorrelated returns the no-Demon model for M buckets.
func Uncorrelated(m int) Model { return Model{M: m} }

// Correlated returns a model with k = log2(M) purple buckets and the given
// correlation factor, the configuration of the paper's Figure 13.
func Correlated(m int, qcor float64) Model {
	return Model{M: m, K: int(math.Round(math.Log2(float64(m)))), Qcor: qcor}
}

func (m Model) validate() error {
	if m.M < 2 {
		return fmt.Errorf("ballsim: need at least 2 buckets, have %d", m.M)
	}
	if m.Qcor < 0 || m.Qcor > 1 {
		return fmt.Errorf("ballsim: Qcor %v out of [0,1]", m.Qcor)
	}
	if m.Qcor > 0 && (m.K < 1 || m.K > m.M-1) {
		return fmt.Errorf("ballsim: k=%d purple buckets out of range", m.K)
	}
	return nil
}

// AnalyticIST returns the closed-form IST estimate of Appendix A.2 for the
// uncorrelated model: green holds N*Ps balls, and with 95% confidence the
// fullest red bucket holds at most N*Pe + 2*sqrt(N*Pe*(1-Pe)) where
// Pe = (1-Ps)/(M-1).
func AnalyticIST(ps float64, m, trials int) float64 {
	if ps < 0 || ps > 1 {
		panic("ballsim: ps out of [0,1]")
	}
	if m < 2 || trials <= 0 {
		panic("ballsim: need m >= 2 buckets and positive trials")
	}
	n := float64(trials)
	pe := (1 - ps) / float64(m-1)
	red := n*pe + 2*math.Sqrt(n*pe*(1-pe))
	if red <= 0 {
		return math.Inf(1)
	}
	return n * ps / red
}

// SimulateIST throws `trials` balls once and returns the observed IST
// (green count over the fullest non-green bucket; +Inf if no errors,
// 0 if the green bucket is empty and errors exist).
func (m Model) SimulateIST(ps float64, trials int, r *rng.RNG) float64 {
	if err := m.validate(); err != nil {
		panic(err)
	}
	if ps < 0 || ps > 1 {
		panic("ballsim: ps out of [0,1]")
	}
	green := 0
	// Bucket 0..K-1 are purple, the rest red; counts tracked sparsely.
	counts := make(map[int]int)
	maxOther := 0
	for i := 0; i < trials; i++ {
		x := r.Float64()
		if x < ps {
			green++
			continue
		}
		// The Demon intercepts a fraction Qcor of the error balls and
		// drops them uniformly into the k purple buckets; the rest land
		// uniformly over all M-1 non-green buckets (purple included), so
		// a purple bucket's rate is Qcor/k + (1-Qcor)/(M-1). This is the
		// parameterization that reproduces the paper's frontier shifts
		// (1.8% -> 3.6% at Qcor=10% -> ~8% at Qcor=50% for M=64, k=6).
		var b int
		if m.Qcor > 0 && r.Bernoulli(m.Qcor) {
			b = r.Intn(m.K)
		} else {
			b = r.Intn(m.M - 1)
		}
		counts[b]++
		if counts[b] > maxOther {
			maxOther = counts[b]
		}
	}
	if maxOther == 0 {
		if green == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(green) / float64(maxOther)
}

// MedianIST repeats SimulateIST reps times and returns the median, the
// statistic the paper reports per experimental point.
func (m Model) MedianIST(ps float64, trials, reps int, r *rng.RNG) float64 {
	if reps <= 0 {
		panic("ballsim: reps must be positive")
	}
	ists := make([]float64, reps)
	for i := 0; i < reps; i++ {
		ists[i] = m.SimulateIST(ps, trials, r.DeriveN("rep", i))
	}
	sort.Float64s(ists)
	if reps%2 == 1 {
		return ists[reps/2]
	}
	return (ists[reps/2-1] + ists[reps/2]) / 2
}

// Frontier returns the PST frontier: the smallest success probability at
// which the median IST reaches 1 (Appendix A.3), located by bisection on
// [lo, hi].
func (m Model) Frontier(trials, reps int, r *rng.RNG) float64 {
	lo, hi := 0.0, 0.5
	// The frontier is monotone: more success probability, more IST.
	for iter := 0; iter < 24; iter++ {
		mid := (lo + hi) / 2
		ist := m.MedianIST(mid, trials, reps, r.DeriveN("frontier", iter))
		if ist >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// Curve samples median IST over a slice of success probabilities,
// producing one series of the paper's Figure 13.
func (m Model) Curve(ps []float64, trials, reps int, r *rng.RNG) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = m.MedianIST(p, trials, reps, r.DeriveN("curve", i))
	}
	return out
}
