package ballsim

import (
	"math"
	"testing"

	"edm/internal/rng"
)

func TestAnalyticISTMatchesMonteCarlo(t *testing.T) {
	// The appendix states the analytic model was "confirmed with Monte
	// Carlo"; the two must agree within sampling slack.
	r := rng.New(1)
	m := Uncorrelated(64)
	for _, ps := range []float64{0.02, 0.05, 0.1} {
		analytic := AnalyticIST(ps, 64, 8192)
		mc := m.MedianIST(ps, 8192, 31, r.Derive("mc"))
		if math.Abs(analytic-mc)/analytic > 0.25 {
			t.Errorf("ps=%v: analytic %v vs MC %v", ps, analytic, mc)
		}
	}
}

func TestUncorrelatedFrontierNearPaper(t *testing.T) {
	// Paper: "For the model with no correlation, PST frontier is at 1.8%"
	// for M=64 (with 8192 trials per run).
	f := Uncorrelated(64).Frontier(8192, 31, rng.New(2))
	if f < 0.010 || f > 0.028 {
		t.Fatalf("uncorrelated frontier = %.4f, paper reports ~0.018", f)
	}
}

func TestCorrelatedFrontiersShiftRight(t *testing.T) {
	// Paper: frontier moves 1.8% -> 3.6% at Qcor=10% -> 8% at Qcor=50%.
	r := rng.New(3)
	f0 := Uncorrelated(64).Frontier(8192, 31, r.Derive("f0"))
	f10 := Correlated(64, 0.10).Frontier(8192, 31, r.Derive("f10"))
	f50 := Correlated(64, 0.50).Frontier(8192, 31, r.Derive("f50"))
	t.Logf("frontiers: uncorrelated=%.4f q10=%.4f q50=%.4f", f0, f10, f50)
	if !(f0 < f10 && f10 < f50) {
		t.Fatalf("frontier not monotone in Qcor: %v %v %v", f0, f10, f50)
	}
	if f10 < 0.02 || f10 > 0.06 {
		t.Errorf("Qcor=10%% frontier %.4f, paper reports ~0.036", f10)
	}
	if f50 < 0.05 || f50 > 0.13 {
		t.Errorf("Qcor=50%% frontier %.4f, paper reports ~0.08", f50)
	}
}

func TestCorrelationDegradesIST(t *testing.T) {
	// At a fixed Ps, more correlation means lower IST.
	r := rng.New(4)
	ps := 0.05
	i0 := Uncorrelated(64).MedianIST(ps, 8192, 21, r.Derive("a"))
	i10 := Correlated(64, 0.10).MedianIST(ps, 8192, 21, r.Derive("b"))
	i50 := Correlated(64, 0.50).MedianIST(ps, 8192, 21, r.Derive("c"))
	if !(i0 > i10 && i10 > i50) {
		t.Fatalf("IST not decreasing with correlation: %v %v %v", i0, i10, i50)
	}
}

func TestISTMonotoneInPs(t *testing.T) {
	m := Correlated(64, 0.3)
	r := rng.New(5)
	prev := -1.0
	for _, ps := range []float64{0.01, 0.03, 0.08, 0.2} {
		ist := m.MedianIST(ps, 8192, 21, r.DeriveN("p", int(ps*1000)))
		if ist <= prev {
			t.Fatalf("IST not increasing at ps=%v: %v <= %v", ps, ist, prev)
		}
		prev = ist
	}
}

func TestSimulateEdgeCases(t *testing.T) {
	r := rng.New(6)
	// ps=1: every ball green, no errors -> +Inf.
	if ist := Uncorrelated(8).SimulateIST(1, 100, r); !math.IsInf(ist, 1) {
		t.Fatalf("pure success IST = %v", ist)
	}
	// ps=0: no greens -> 0.
	if ist := Uncorrelated(8).SimulateIST(0, 100, r); ist != 0 {
		t.Fatalf("pure failure IST = %v", ist)
	}
	// zero trials: no balls at all -> 0.
	if ist := Uncorrelated(8).SimulateIST(0.5, 0, r); ist != 0 {
		t.Fatalf("zero-trial IST = %v", ist)
	}
}

func TestAnalyticISTValidation(t *testing.T) {
	mustPanic(t, func() { AnalyticIST(-0.1, 64, 100) })
	mustPanic(t, func() { AnalyticIST(0.5, 1, 100) })
	mustPanic(t, func() { AnalyticIST(0.5, 64, 0) })
	mustPanic(t, func() { Model{M: 1}.SimulateIST(0.5, 10, rng.New(1)) })
	mustPanic(t, func() { Model{M: 64, Qcor: 2}.SimulateIST(0.5, 10, rng.New(1)) })
	mustPanic(t, func() { Model{M: 64, Qcor: 0.5, K: 0}.SimulateIST(0.5, 10, rng.New(1)) })
	mustPanic(t, func() { Uncorrelated(64).MedianIST(0.5, 10, 0, rng.New(1)) })
}

func TestCurve(t *testing.T) {
	ps := []float64{0.01, 0.05, 0.1}
	c := Uncorrelated(64).Curve(ps, 4096, 11, rng.New(7))
	if len(c) != 3 {
		t.Fatalf("curve len = %d", len(c))
	}
	if !(c[0] < c[1] && c[1] < c[2]) {
		t.Fatalf("curve not increasing: %v", c)
	}
}

func TestCorrelatedDefaultK(t *testing.T) {
	m := Correlated(64, 0.5)
	if m.K != 6 {
		t.Fatalf("k = %d, want log2(64) = 6", m.K)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
