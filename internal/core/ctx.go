package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
)

// RunCtx is Run with request cancellation threaded through the compile
// (mapper.TopKCtx) and execution (backend.RunCtx) hot paths. Results are
// bit-identical to Run whenever ctx does not expire; a cancelled request
// returns ctx.Err() wrapped with the failing member. A nil or
// never-cancellable ctx makes RunCtx exactly Run.
func (r *Runner) RunCtx(ctx context.Context, logical *circuit.Circuit, cfg Config, rr *rng.RNG) (*Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return r.Run(logical, cfg, rr)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("core: ensemble size %d must be positive", cfg.K)
	}
	if cfg.Trials < cfg.K {
		return nil, fmt.Errorf("core: %d trials cannot cover %d members", cfg.Trials, cfg.K)
	}
	execs, err := r.Compiler.TopKCtx(ctx, logical, cfg.K)
	if err != nil {
		return nil, err
	}
	return r.RunExecutablesCtx(ctx, execs, cfg, rr)
}

// RunExecutablesCtx is RunExecutables with per-member cancellation: each
// member's machine run goes through backend.RunCtx, so an expiring
// request detaches from (or aborts, depending on the machine's run
// cache) the remaining simulation instead of blocking until the full
// trial budget completes. Member RNG streams, budget splitting and the
// merge are identical to RunExecutables, preserving bit-identity for
// requests that finish.
func (r *Runner) RunExecutablesCtx(ctx context.Context, execs []*mapper.Executable, cfg Config, rr *rng.RNG) (*Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return r.RunExecutables(execs, cfg, rr)
	}
	if len(execs) == 0 {
		return nil, fmt.Errorf("core: empty ensemble")
	}
	res := &Result{Config: cfg, Members: make([]Member, len(execs))}
	base := cfg.Trials / len(execs)
	rem := cfg.Trials % len(execs)

	fanout := runtime.GOMAXPROCS(0)
	if fanout > len(execs) {
		fanout = len(execs)
	}
	if fanout < 1 {
		fanout = 1
	}
	sem := make(chan struct{}, fanout)
	errs := make([]error, len(execs))
	var wg sync.WaitGroup
	for i, exe := range execs {
		trials := base
		if i < rem {
			trials++
		}
		memberRNG := rr.DeriveN("member", i)
		wg.Add(1)
		go func(i int, exe *mapper.Executable, trials int, mr *rng.RNG) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			counts, err := r.Machine.RunCtx(ctx, exe.Circuit, trials, mr)
			if err != nil {
				errs[i] = fmt.Errorf("core: member %d: %w", i, err)
				return
			}
			res.Members[i] = Member{Exec: exe, Counts: counts, Output: counts.Dist()}
		}(i, exe, trials, memberRNG)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := mergeChecked(res, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// mergeChecked is merge through the error-returning dist entry points,
// for the serving path where member sets trace back to user payloads.
func mergeChecked(res *Result, cfg Config) (err error) {
	kept := make([]int, 0, len(res.Members))
	if cfg.UniformityFilter > 0 {
		for i := range res.Members {
			if res.Members[i].Output.IsNearUniform(cfg.UniformityFilter) {
				res.Members[i].Discarded = true
			} else {
				kept = append(kept, i)
			}
		}
	}
	if len(kept) == 0 {
		kept = kept[:0]
		for i := range res.Members {
			res.Members[i].Discarded = false
			kept = append(kept, i)
		}
	}
	dists := make([]*dist.Dist, len(kept))
	for j, i := range kept {
		dists[j] = res.Members[i].Output
	}
	weights := MergeWeights(dists, cfg.Weighting)
	var total float64
	for _, w := range weights {
		total += w
	}
	for j, i := range kept {
		res.Members[i].Weight = weights[j] / total
	}
	res.Merged, err = dist.WeightedMergeChecked(dists, weights)
	return err
}
