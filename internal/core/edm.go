// Package core implements the paper's contribution: the Ensemble of
// Diverse Mappings (EDM) and its weighted variant (WEDM).
//
// The pipeline follows Figure 5 of the paper:
//
//  1. a variation-aware compiler produces the best initial mapping and
//     SWAP schedule (package mapper),
//  2. all isomorphic sub-graph placements are enumerated and ranked by
//     ESP, keeping the top K (mapper.TopK),
//  3. the trial budget is split evenly over the K executables and each
//     group runs on the machine (package backend),
//  4. the K output probability distributions are merged — uniformly for
//     EDM, or weighted by each member's summed symmetric KL divergence
//     from the others for WEDM (Appendix B, Equations 5-6).
//
// The figure of merit is IST (Inference Strength), the ratio of the
// correct outcome's probability to the strongest wrong outcome's
// probability; the paper's reliability claims are IST improvements of the
// merged ensemble distribution over the single-best-mapping baseline.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
)

// Weighting selects the merge rule for the ensemble outputs.
type Weighting int

const (
	// WeightUniform merges members with equal weights — EDM (Section 5.2).
	WeightUniform Weighting = iota
	// WeightDivergence weights each member by its cumulative symmetric KL
	// divergence from the other members — WEDM (Section 6).
	WeightDivergence
	// WeightInverseDivergence inverts the WEDM weights (similar members
	// weighted up). It exists as an ablation control: it should do worse
	// than both EDM and WEDM.
	WeightInverseDivergence
)

// String returns the scheme name.
func (w Weighting) String() string {
	switch w {
	case WeightUniform:
		return "EDM"
	case WeightDivergence:
		return "WEDM"
	case WeightInverseDivergence:
		return "inverse-WEDM"
	default:
		return fmt.Sprintf("weighting(%d)", int(w))
	}
}

// Config parameterizes an ensemble run.
type Config struct {
	// K is the ensemble size; the paper's default is 4 (Section 5.5).
	K int
	// Trials is the total trial budget, split evenly across members so
	// the ensemble spends exactly as many shots as the baseline (the
	// paper uses 16384 total, 4096 per member).
	Trials int
	// Weighting selects EDM or WEDM merging.
	Weighting Weighting
	// UniformityFilter, when positive, discards members whose output is
	// within this factor of uniform by relative standard deviation before
	// merging (footnote 2 of the paper). Zero disables the filter.
	UniformityFilter float64
}

// DefaultConfig returns the paper's defaults: a 4-member ensemble and
// 16384 total trials with uniform (EDM) merging.
func DefaultConfig() Config {
	return Config{K: 4, Trials: 16384, Weighting: WeightUniform}
}

// Member is one ensemble member's executable and observed output.
type Member struct {
	Exec *mapper.Executable
	// Counts is the raw output log of this member's trials.
	Counts *dist.Counts
	// Output is the normalized output distribution.
	Output *dist.Dist
	// Weight is the normalized merge weight this member received.
	Weight float64
	// Discarded reports that the uniformity filter removed this member
	// from the merge.
	Discarded bool
}

// Result is the outcome of an ensemble run.
type Result struct {
	Members []Member
	// Merged is the combined output distribution of the ensemble.
	Merged *dist.Dist
	Config Config
}

// MemberOutputs returns the per-member output distributions in order.
func (r *Result) MemberOutputs() []*dist.Dist {
	out := make([]*dist.Dist, len(r.Members))
	for i := range r.Members {
		out[i] = r.Members[i].Output
	}
	return out
}

// Runner orchestrates ensemble runs against one compiler (compile-time
// calibration) and one machine (runtime behaviour). Keeping the two
// separate models the calibration drift of paper Section 5.3: the
// compiler ranks mappings with stale data while the machine executes with
// the drifted truth.
type Runner struct {
	Compiler *mapper.Compiler
	Machine  *backend.Machine
}

// NewRunner builds a runner.
func NewRunner(c *mapper.Compiler, m *backend.Machine) *Runner {
	return &Runner{Compiler: c, Machine: m}
}

// Run executes the full EDM pipeline on the logical circuit and returns
// the per-member outputs and the merged ensemble distribution.
func (r *Runner) Run(logical *circuit.Circuit, cfg Config, rr *rng.RNG) (*Result, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("core: ensemble size %d must be positive", cfg.K)
	}
	if cfg.Trials < cfg.K {
		return nil, fmt.Errorf("core: %d trials cannot cover %d members", cfg.Trials, cfg.K)
	}
	execs, err := r.Compiler.TopK(logical, cfg.K)
	if err != nil {
		return nil, err
	}
	return r.RunExecutables(execs, cfg, rr)
}

// RunExecutables runs a pre-compiled ensemble: cfg.Trials are split as
// evenly as possible (earlier members receive the remainder), each member
// executes on the machine, and the outputs are merged per cfg.Weighting.
//
// Members run concurrently: each one derives an independent RNG stream
// from its index before its goroutine starts, and results land in their
// member slot, so the outcome is bit-identical to running them serially.
// Member fan-out is capped at GOMAXPROCS, and the backend additionally
// gates its trial workers through a process-wide token pool, so
// member-level and trial-level parallelism compose instead of
// oversubscribing the CPUs.
func (r *Runner) RunExecutables(execs []*mapper.Executable, cfg Config, rr *rng.RNG) (*Result, error) {
	if len(execs) == 0 {
		return nil, fmt.Errorf("core: empty ensemble")
	}
	res := &Result{Config: cfg, Members: make([]Member, len(execs))}
	base := cfg.Trials / len(execs)
	rem := cfg.Trials % len(execs)

	fanout := runtime.GOMAXPROCS(0)
	if fanout > len(execs) {
		fanout = len(execs)
	}
	if fanout < 1 {
		fanout = 1
	}
	sem := make(chan struct{}, fanout)
	errs := make([]error, len(execs))
	var wg sync.WaitGroup
	for i, exe := range execs {
		trials := base
		if i < rem {
			trials++
		}
		memberRNG := rr.DeriveN("member", i)
		wg.Add(1)
		go func(i int, exe *mapper.Executable, trials int, mr *rng.RNG) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			counts, err := r.Machine.Run(exe.Circuit, trials, mr)
			if err != nil {
				errs[i] = fmt.Errorf("core: member %d: %w", i, err)
				return
			}
			res.Members[i] = Member{Exec: exe, Counts: counts, Output: counts.Dist()}
		}(i, exe, trials, memberRNG)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merge(res, cfg)
	return res, nil
}

// merge combines member outputs into res.Merged, applying the uniformity
// filter and the configured weighting, and records per-member weights.
// Inputs on this path are repository-built, so a merge failure is a
// programmer error; the serving path uses mergeChecked (ctx.go) instead.
func merge(res *Result, cfg Config) {
	if err := mergeChecked(res, cfg); err != nil {
		panic(err)
	}
}

// MergeWeights returns the raw (unnormalized) member weights for the
// given weighting scheme. With a single member, or when every pair of
// members is identical (all divergences zero), the weights degrade to
// uniform.
func MergeWeights(dists []*dist.Dist, w Weighting) []float64 {
	uniform := func() []float64 {
		out := make([]float64, len(dists))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	if len(dists) <= 1 || w == WeightUniform {
		return uniform()
	}
	dw := dist.DivergenceWeights(dists)
	var total float64
	for _, v := range dw {
		total += v
	}
	if total <= 0 {
		return uniform()
	}
	if w == WeightDivergence {
		return dw
	}
	// Inverse weighting (ablation): weight ~ 1 / (divergence + epsilon).
	const eps = 1e-9
	out := make([]float64, len(dw))
	for i, v := range dw {
		out[i] = 1 / (v + eps)
	}
	return out
}

// RunSingleBest runs the baseline the paper compares against: the single
// best compile-time mapping receives the entire trial budget.
func (r *Runner) RunSingleBest(logical *circuit.Circuit, trials int, rr *rng.RNG) (*Member, error) {
	execs, err := r.Compiler.TopK(logical, 1)
	if err != nil {
		return nil, err
	}
	return r.runOne(execs[0], trials, rr)
}

// runOne executes one mapping for the full budget.
func (r *Runner) runOne(exe *mapper.Executable, trials int, rr *rng.RNG) (*Member, error) {
	counts, err := r.Machine.Run(exe.Circuit, trials, rr)
	if err != nil {
		return nil, err
	}
	return &Member{Exec: exe, Counts: counts, Output: counts.Dist(), Weight: 1}, nil
}

// BestPostExec selects, from an ensemble result, the member whose
// observed PST for the given correct outcome was highest — the paper's
// "single best mapping post execution" — and re-runs that mapping with
// the full trial budget so the comparison is shot-for-shot fair.
func (r *Runner) BestPostExec(res *Result, correct bitstr.BitString, trials int, rr *rng.RNG) (*Member, error) {
	bestIdx, bestPST := -1, -1.0
	for i := range res.Members {
		p := res.Members[i].Output.PST(correct)
		if p > bestPST {
			bestPST = p
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("core: empty ensemble result")
	}
	return r.runOne(res.Members[bestIdx].Exec, trials, rr)
}
