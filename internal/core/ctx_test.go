package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"edm/internal/rng"
	"edm/internal/workloads"
)

// TestRunCtxBitIdenticalToRun pins that the full context-threaded EDM
// pipeline (TopKCtx compile + RunCtx members + checked merge) matches
// Run exactly when the context stays live.
func TestRunCtxBitIdenticalToRun(t *testing.T) {
	r := newRunner(31, 0.1)
	w := workloads.BV("1011")
	cfg := Config{K: 4, Trials: 2000, Weighting: WeightDivergence}
	want, err := r.Run(w.Circuit, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := r.RunCtx(ctx, w.Circuit, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Merged.Equal(want.Merged, 0) {
		t.Fatal("RunCtx merged distribution differs from Run")
	}
	for i := range got.Members {
		if !got.Members[i].Output.Equal(want.Members[i].Output, 0) {
			t.Fatalf("member %d output differs", i)
		}
		if got.Members[i].Weight != want.Members[i].Weight {
			t.Fatalf("member %d weight %v vs %v", i, got.Members[i].Weight, want.Members[i].Weight)
		}
	}
}

// TestRunCtxCancelled: mid-request cancellation surfaces as a member
// error wrapping ctx.Err(), without a panic.
func TestRunCtxCancelled(t *testing.T) {
	r := newRunner(32, 0.1)
	w := workloads.QAOA(5)
	cfg := Config{K: 2, Trials: 1 << 20, Weighting: WeightUniform}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := r.RunCtx(ctx, w.Circuit, cfg, rng.New(7))
	if err == nil {
		t.Skip("machine finished 2^20 trials before the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in the chain", err)
	}
}

// TestRunCtxBadConfig: invalid configs error on the ctx path exactly as
// on the plain one.
func TestRunCtxBadConfig(t *testing.T) {
	r := newRunner(33, 0.1)
	w := workloads.Adder()
	ctx := context.Background()
	if _, err := r.RunCtx(ctx, w.Circuit, Config{K: 0, Trials: 100}, rng.New(1)); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := r.RunCtx(ctx, w.Circuit, Config{K: 4, Trials: 2}, rng.New(1)); err == nil {
		t.Fatal("Trials < K must error")
	}
}
