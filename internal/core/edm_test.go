package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"edm/internal/backend"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// newRunner builds a runner whose machine drifted away from the
// compile-time calibration, per the paper's Section 5.3 setting.
func newRunner(seed uint64, drift float64) *Runner {
	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(seed))
	runtimeCal := cal.Drift(drift, rng.New(seed+1000))
	return NewRunner(mapper.NewCompiler(cal), backend.New(runtimeCal))
}

func TestRunBasics(t *testing.T) {
	r := newRunner(1, 0.1)
	w := workloads.BV("1011")
	cfg := Config{K: 4, Trials: 2000, Weighting: WeightUniform}
	res, err := r.Run(w.Circuit, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 {
		t.Fatalf("members = %d", len(res.Members))
	}
	total := 0
	for i, m := range res.Members {
		total += m.Counts.Total()
		if m.Output == nil || m.Exec == nil {
			t.Fatalf("member %d incomplete", i)
		}
		if math.Abs(m.Weight-0.25) > 1e-12 {
			t.Fatalf("EDM weight = %v, want 0.25", m.Weight)
		}
	}
	if total != 2000 {
		t.Fatalf("total trials = %d", total)
	}
	if math.Abs(res.Merged.Sum()-1) > 1e-9 {
		t.Fatalf("merged mass = %v", res.Merged.Sum())
	}
}

func TestTrialSplitRemainder(t *testing.T) {
	r := newRunner(2, 0)
	w := workloads.BV("101")
	res, err := r.Run(w.Circuit, Config{K: 3, Trials: 100, Weighting: WeightUniform}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got := []int{res.Members[0].Counts.Total(), res.Members[1].Counts.Total(), res.Members[2].Counts.Total()}
	if got[0] != 34 || got[1] != 33 || got[2] != 33 {
		t.Fatalf("split = %v", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	r := newRunner(3, 0.1)
	w := workloads.BV("1101")
	cfg := Config{K: 2, Trials: 500, Weighting: WeightDivergence}
	a, err := r.Run(w.Circuit, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(w.Circuit, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Merged.Equal(b.Merged, 0) {
		t.Fatal("same seed produced different ensembles")
	}
}

func TestMembersUseDifferentMappings(t *testing.T) {
	r := newRunner(4, 0)
	w := workloads.QAOA(5)
	res, err := r.Run(w.Circuit, Config{K: 4, Trials: 400, Weighting: WeightUniform}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range res.Members {
		key := ""
		for _, q := range m.Exec.InitialLayout {
			key += string(rune('a' + q))
		}
		if seen[key] {
			t.Fatal("duplicate mapping in ensemble")
		}
		seen[key] = true
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRunner(5, 0)
	w := workloads.BV("11")
	if _, err := r.Run(w.Circuit, Config{K: 0, Trials: 100}, rng.New(1)); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := r.Run(w.Circuit, Config{K: 8, Trials: 4}, rng.New(1)); err == nil {
		t.Fatal("trials < K accepted")
	}
	if _, err := r.RunExecutables(nil, DefaultConfig(), rng.New(1)); err == nil {
		t.Fatal("empty ensemble accepted")
	}
}

func TestMergeWeightsSchemes(t *testing.T) {
	a := dist.MustFromMap(map[string]float64{"00": 0.9, "11": 0.1})
	b := dist.MustFromMap(map[string]float64{"00": 0.9, "11": 0.1})
	c := dist.MustFromMap(map[string]float64{"01": 0.8, "10": 0.2})
	members := []*dist.Dist{a, b, c}

	uni := MergeWeights(members, WeightUniform)
	for _, w := range uni {
		if w != 1 {
			t.Fatalf("uniform weights = %v", uni)
		}
	}
	wedm := MergeWeights(members, WeightDivergence)
	if wedm[2] <= wedm[0] {
		t.Fatalf("WEDM should upweight the divergent member: %v", wedm)
	}
	inv := MergeWeights(members, WeightInverseDivergence)
	if inv[2] >= inv[0] {
		t.Fatalf("inverse weighting should downweight the divergent member: %v", inv)
	}
	// Identical members: fall back to uniform.
	same := MergeWeights([]*dist.Dist{a, b}, WeightDivergence)
	if same[0] != same[1] {
		t.Fatalf("identical members got different weights: %v", same)
	}
	// Single member: uniform regardless of scheme.
	one := MergeWeights([]*dist.Dist{a}, WeightDivergence)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("single member weights = %v", one)
	}
}

func TestWeightingString(t *testing.T) {
	if WeightUniform.String() != "EDM" || WeightDivergence.String() != "WEDM" {
		t.Fatal("Weighting names wrong")
	}
	if Weighting(9).String() == "" {
		t.Fatal("unknown weighting empty")
	}
}

func TestUniformityFilter(t *testing.T) {
	// Synthesize a result with one informative and one uniform member and
	// check the filter discards the uniform one.
	informative := dist.MustFromMap(map[string]float64{"00": 0.7, "01": 0.1, "10": 0.1, "11": 0.1})
	res := &Result{Members: []Member{
		{Output: informative},
		{Output: dist.Uniform(2)},
	}}
	cfg := Config{K: 2, Trials: 100, Weighting: WeightUniform, UniformityFilter: 0.2}
	merge(res, cfg)
	if !res.Members[1].Discarded {
		t.Fatal("uniform member not discarded")
	}
	if res.Members[0].Discarded {
		t.Fatal("informative member discarded")
	}
	if !res.Merged.Equal(informative, 1e-12) {
		t.Fatalf("merged should equal the surviving member: %v", res.Merged)
	}
	// All-uniform ensemble: filter must keep everyone rather than nobody.
	res2 := &Result{Members: []Member{
		{Output: dist.Uniform(2)},
		{Output: dist.Uniform(2)},
	}}
	merge(res2, cfg)
	if res2.Members[0].Discarded || res2.Members[1].Discarded {
		t.Fatal("filter discarded the whole ensemble")
	}
	if res2.Merged == nil {
		t.Fatal("no merged output")
	}
}

func TestSingleBestBaseline(t *testing.T) {
	r := newRunner(6, 0.1)
	w := workloads.BV("1011")
	m, err := r.RunSingleBest(w.Circuit, 1000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Counts.Total() != 1000 {
		t.Fatalf("baseline trials = %d", m.Counts.Total())
	}
	if m.Weight != 1 {
		t.Fatalf("baseline weight = %v", m.Weight)
	}
}

func TestBestPostExec(t *testing.T) {
	r := newRunner(7, 0.2)
	w := workloads.BV("1011")
	res, err := r.Run(w.Circuit, Config{K: 4, Trials: 2000, Weighting: WeightUniform}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.BestPostExec(res, w.Correct, 2000, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if m.Counts.Total() != 2000 {
		t.Fatalf("post-exec trials = %d", m.Counts.Total())
	}
	// The chosen executable must be one of the ensemble's.
	found := false
	for _, mem := range res.Members {
		if mem.Exec == m.Exec {
			found = true
		}
	}
	if !found {
		t.Fatal("post-exec mapping not from the ensemble")
	}
}

// TestEDMImprovesMedianIST is the headline behavioural check (paper
// Figures 7/11 in miniature): across several calibration rounds, the
// median IST of the 4-member ensemble beats the median IST of the
// single-best-mapping baseline on a correlated-error machine.
func TestEDMImprovesMedianIST(t *testing.T) {
	w := workloads.BV("110011")
	var baseISTs, edmISTs, wedmISTs []float64
	rounds := 6
	for round := 0; round < rounds; round++ {
		r := newRunner(uint64(100+round), 0.25)
		seed := rng.New(uint64(9000 + round))
		base, err := r.RunSingleBest(w.Circuit, 4096, seed.Derive("base"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(w.Circuit, Config{K: 4, Trials: 4096, Weighting: WeightUniform}, seed.Derive("edm"))
		if err != nil {
			t.Fatal(err)
		}
		wres := &Result{Members: res.Members, Config: res.Config}
		merge(wres, Config{K: 4, Trials: 4096, Weighting: WeightDivergence})
		baseISTs = append(baseISTs, base.Output.IST(w.Correct))
		edmISTs = append(edmISTs, res.Merged.IST(w.Correct))
		wedmISTs = append(wedmISTs, wres.Merged.IST(w.Correct))
	}
	mb, me, mw := median(baseISTs), median(edmISTs), median(wedmISTs)
	t.Logf("median IST: baseline=%.3f EDM=%.3f WEDM=%.3f", mb, me, mw)
	if me <= mb {
		t.Errorf("EDM median IST %.3f did not beat baseline %.3f", me, mb)
	}
	if mw < me*0.9 {
		t.Errorf("WEDM median IST %.3f far below EDM %.3f", mw, me)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// TestEnsembleEntropyAboveMembers: the merged distribution's entropy is
// at least the mean member entropy (the maximum-entropy intuition of
// Section 5.1).
func TestEnsembleEntropyAboveMembers(t *testing.T) {
	r := newRunner(8, 0.1)
	w := workloads.BV("10101")
	res, err := r.Run(w.Circuit, Config{K: 4, Trials: 4000, Weighting: WeightUniform}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, m := range res.Members {
		mean += m.Output.Entropy()
	}
	mean /= float64(len(res.Members))
	if res.Merged.Entropy() < mean-1e-9 {
		t.Fatalf("merged entropy %v below mean member entropy %v", res.Merged.Entropy(), mean)
	}
}

func TestRunExecutablesDirect(t *testing.T) {
	r := newRunner(9, 0)
	w := workloads.BV("101")
	execs, err := r.Compiler.TopK(w.Circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunExecutables(execs, Config{K: 2, Trials: 200, Weighting: WeightUniform}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 2 || res.Merged == nil {
		t.Fatal("RunExecutables incomplete")
	}
	outs := res.MemberOutputs()
	if len(outs) != 2 || outs[0] != res.Members[0].Output {
		t.Fatal("MemberOutputs wrong")
	}
}

// TestEDMOnTokyo: the full pipeline is topology-agnostic — compile,
// ensemble, run and merge on the 20-qubit tokyo lattice.
func TestEDMOnTokyo(t *testing.T) {
	cal := device.Generate(device.Tokyo(), device.MelbourneProfile(), rng.New(77))
	r := NewRunner(mapper.NewCompiler(cal), backend.New(cal.Drift(0.2, rng.New(78))))
	w := workloads.BV("1100110") // 8 qubits incl. ancilla on 20-qubit fabric
	res, err := r.Run(w.Circuit, Config{K: 4, Trials: 2000, Weighting: WeightDivergence}, rng.New(79))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 {
		t.Fatalf("members = %d", len(res.Members))
	}
	seen := map[string]bool{}
	for _, m := range res.Members {
		key := fmt.Sprint(m.Exec.UsedQubits())
		if seen[key] {
			t.Fatal("tokyo ensemble reused a qubit set")
		}
		seen[key] = true
	}
	if res.Merged.Support() == 0 {
		t.Fatal("no output")
	}
}
