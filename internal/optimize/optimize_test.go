package optimize

import (
	"math"
	"testing"

	"edm/internal/circuit"
	"edm/internal/rng"
	"edm/internal/statevec"
)

func TestCancelSelfInversePairs(t *testing.T) {
	c := circuit.New(3, 3)
	c.H(0).H(0).X(1).X(1).CX(0, 1).CX(0, 1).SWAP(1, 2).SWAP(2, 1).CZ(0, 2).CZ(2, 0)
	out, res := Circuit(c)
	if len(out.Ops) != 0 {
		t.Fatalf("ops left: %v", out.Ops)
	}
	if res.Removed != 10 {
		t.Fatalf("Removed = %d", res.Removed)
	}
	// Input untouched.
	if len(c.Ops) != 10 {
		t.Fatal("input mutated")
	}
}

func TestCXOrderMatters(t *testing.T) {
	c := circuit.New(2, 0)
	c.CX(0, 1).CX(1, 0)
	out, _ := Circuit(c)
	if len(out.Ops) != 2 {
		t.Fatalf("CX(0,1) CX(1,0) wrongly cancelled: %v", out.Ops)
	}
}

func TestInversePairs(t *testing.T) {
	c := circuit.New(1, 0)
	c.S(0).Sdg(0).T(0).Tdg(0).Tdg(0).T(0)
	out, _ := Circuit(c)
	if len(out.Ops) != 0 {
		t.Fatalf("ops left: %v", out.Ops)
	}
}

func TestInterveningOpBlocksCancel(t *testing.T) {
	c := circuit.New(2, 0)
	c.H(0).CX(0, 1).H(0)
	out, _ := Circuit(c)
	if len(out.Ops) != 3 {
		t.Fatalf("H..H cancelled across CX: %v", out.Ops)
	}
	// An op on the *other* qubit does not block.
	c2 := circuit.New(2, 0)
	c2.H(0).X(1).H(0)
	out2, _ := Circuit(c2)
	if len(out2.Ops) != 1 || out2.Ops[0].Kind != circuit.X {
		t.Fatalf("independent op blocked cancellation: %v", out2.Ops)
	}
}

func TestMeasureBlocks(t *testing.T) {
	c := circuit.New(1, 1)
	c.X(0).Measure(0, 0)
	out, _ := Circuit(c)
	if len(out.Ops) != 2 {
		t.Fatalf("measure dropped or X cancelled: %v", out.Ops)
	}
	c2 := circuit.New(1, 1)
	c2.X(0).Measure(0, 0).X(0)
	out2, _ := Circuit(c2)
	if len(out2.Ops) != 3 {
		t.Fatalf("X..X cancelled across measurement: %v", out2.Ops)
	}
}

func TestBarrierBlocks(t *testing.T) {
	c := circuit.New(1, 0)
	c.H(0).Barrier().H(0)
	out, _ := Circuit(c)
	if len(out.Ops) != 3 {
		t.Fatalf("H..H cancelled across barrier: %v", out.Ops)
	}
}

func TestMergeRotations(t *testing.T) {
	c := circuit.New(1, 0)
	c.RZ(0, 0.25).RZ(0, 0.5).RX(0, 1.0).RX(0, -1.0)
	out, res := Circuit(c)
	if len(out.Ops) != 1 {
		t.Fatalf("ops = %v", out.Ops)
	}
	if math.Abs(out.Ops[0].Params[0]-0.75) > 1e-12 {
		t.Fatalf("merged angle = %v", out.Ops[0].Params[0])
	}
	if res.Merged != 2 {
		t.Fatalf("Merged = %d", res.Merged)
	}
}

func TestDropNoopRotation(t *testing.T) {
	c := circuit.New(1, 0)
	c.RZ(0, 2*math.Pi).RY(0, 0)
	out, _ := Circuit(c)
	if len(out.Ops) != 0 {
		t.Fatalf("no-op rotations survived: %v", out.Ops)
	}
}

func TestFixpointCascade(t *testing.T) {
	// H X X H: inner XX cancels in pass 1, exposing HH for pass 2.
	c := circuit.New(1, 0)
	c.H(0).X(0).X(0).H(0)
	out, res := Circuit(c)
	if len(out.Ops) != 0 {
		t.Fatalf("cascade missed: %v", out.Ops)
	}
	if res.Passes < 2 {
		t.Fatalf("Passes = %d, expected a cascade", res.Passes)
	}
}

func TestSwapLoweringCancellation(t *testing.T) {
	// Routed circuits often contain SWAP followed by CX on the same pair;
	// after lowering, the trailing CX of the SWAP cancels with the gate.
	c := circuit.New(2, 0)
	c.SWAP(0, 1).CX(0, 1)
	out, _ := Circuit(c.LowerSwaps())
	if got := len(out.Ops); got != 2 {
		t.Fatalf("lowered swap+cx should reduce to 2 CX, got %d", got)
	}
}

// TestSemanticsPreservedProperty is the package's contract: on random
// circuits the optimized version has the identical ideal output
// distribution.
func TestSemanticsPreservedProperty(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 60; trial++ {
		rr := r.DeriveN("t", trial)
		c := randomCircuit(4, 30, rr)
		out, res := Circuit(c)
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d: optimized circuit invalid: %v", trial, err)
		}
		want, err := statevec.IdealDist(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := statevec.IdealDist(out)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: semantics changed (removed %d, merged %d)\nbefore: %v\nafter:  %v",
				trial, res.Removed, res.Merged, want, got)
		}
	}
}

// randomCircuit is biased toward producing adjacent duplicates so the
// optimizer actually fires.
func randomCircuit(n, ops int, r *rng.RNG) *circuit.Circuit {
	c := circuit.New(n, n)
	for i := 0; i < ops; i++ {
		q := r.Intn(n)
		switch r.Intn(8) {
		case 0:
			c.H(q)
		case 1:
			c.X(q)
		case 2:
			c.S(q)
		case 3:
			c.Sdg(q)
		case 4:
			c.RZ(q, r.Float64()*4*3.14159)
		case 5:
			b := (q + 1 + r.Intn(n-1)) % n
			c.CX(q, b)
		case 6:
			b := (q + 1 + r.Intn(n-1)) % n
			c.SWAP(q, b)
		default:
			// Duplicate the previous op to create cancellation fodder.
			if len(c.Ops) > 0 {
				c.Ops = append(c.Ops, c.Ops[len(c.Ops)-1].Clone())
			}
		}
	}
	c.MeasureAll()
	return c
}

func TestOptimizerReducesGateCount(t *testing.T) {
	r := rng.New(7)
	c := randomCircuit(4, 60, r)
	before := len(c.Ops)
	out, _ := Circuit(c)
	if len(out.Ops) >= before {
		t.Fatalf("no reduction: %d -> %d", before, len(out.Ops))
	}
}
