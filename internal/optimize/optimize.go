// Package optimize implements peephole circuit optimizations: cancelling
// adjacent inverse gate pairs, merging adjacent rotations about the same
// axis, and dropping no-op rotations. Every pass preserves the circuit's
// measurement semantics exactly (up to global phase), a property the
// tests check against the ideal simulator on random circuits.
//
// On NISQ machines removed gates are removed noise, so the optimizer
// composes naturally with the mapping pipeline: routed circuits often
// expose CX-CX cancellations across SWAP boundaries. It is kept as an
// explicit opt-in pass rather than a default so that compiled gate counts
// remain directly comparable with the paper's Table 1.
package optimize

import (
	"math"

	"edm/internal/circuit"
)

// Result describes what an optimization run did.
type Result struct {
	// Removed is the number of operations deleted.
	Removed int
	// Merged is the number of rotation pairs folded into one.
	Merged int
	// Passes is how many fixpoint iterations ran.
	Passes int
}

// Circuit returns an optimized copy of c together with statistics. The
// input is never mutated.
func Circuit(c *circuit.Circuit) (*circuit.Circuit, Result) {
	out := c.Clone()
	var res Result
	for {
		removed, merged := pass(out)
		if removed == 0 && merged == 0 {
			break
		}
		res.Removed += removed
		res.Merged += merged
		res.Passes++
	}
	res.Passes++ // the final, no-change pass
	return out, res
}

// pass performs one sweep, returning the number of deletions and merges.
func pass(c *circuit.Circuit) (removed, merged int) {
	// last[q] = index of the most recent surviving op touching qubit q.
	last := make([]int, c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	dead := make([]bool, len(c.Ops))

	touch := func(op circuit.Op) []int {
		if op.Kind == circuit.Barrier && len(op.Qubits) == 0 {
			all := make([]int, c.NumQubits)
			for i := range all {
				all[i] = i
			}
			return all
		}
		return op.Qubits
	}

	for i := 0; i < len(c.Ops); i++ {
		op := c.Ops[i]
		qs := touch(op)
		// The candidate predecessor must be the last op on *every* operand
		// qubit, otherwise another operation intervenes on part of the
		// support and neither cancellation nor merging is sound.
		prev := -1
		uniform := true
		for _, q := range qs {
			if prev == -1 {
				prev = last[q]
			} else if last[q] != prev {
				uniform = false
			}
		}
		if uniform && prev >= 0 && !dead[prev] {
			p := c.Ops[prev]
			switch {
			case cancels(p, op):
				dead[prev], dead[i] = true, true
				removed += 2
				// The slots these ops occupied fall back to "unknown":
				// rewinding last[] precisely would need a full history, so
				// clear it and let the next fixpoint pass pick up newly
				// exposed pairs.
				for _, q := range qs {
					last[q] = -1
				}
				continue
			case mergeableRotation(p, op):
				c.Ops[prev].Params = []float64{normalizeAngle(p.Params[0] + op.Params[0])}
				dead[i] = true
				merged++
				if isNoopRotation(c.Ops[prev]) {
					dead[prev] = true
					removed++
					for _, q := range qs {
						last[q] = -1
					}
				}
				continue
			}
		}
		if op.Kind.IsUnitary() && op.Kind != circuit.Barrier && isNoopRotation(op) {
			dead[i] = true
			removed++
			continue
		}
		for _, q := range qs {
			last[q] = i
		}
	}
	if removed == 0 && merged == 0 {
		return 0, 0
	}
	kept := c.Ops[:0]
	for i, op := range c.Ops {
		if !dead[i] {
			kept = append(kept, op)
		}
	}
	c.Ops = kept
	return removed, merged
}

// cancels reports whether b immediately undoes a.
func cancels(a, b circuit.Op) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	sameOrdered := true
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			sameOrdered = false
			break
		}
	}
	sameUnordered := sameOrdered
	if !sameOrdered && len(a.Qubits) == 2 {
		sameUnordered = a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0]
	}
	switch {
	case a.Kind == b.Kind && selfInverse(a.Kind):
		if a.Kind == circuit.CZ || a.Kind == circuit.SWAP {
			return sameUnordered
		}
		return sameOrdered
	case inversePair(a.Kind, b.Kind):
		return sameOrdered
	case a.Kind == b.Kind && a.Kind.NumParams() == 1 && rotationKind(a.Kind):
		// Handled by merging, not cancellation.
		return false
	}
	return false
}

func selfInverse(k circuit.Kind) bool {
	switch k {
	case circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.CX, circuit.CZ, circuit.SWAP, circuit.I:
		return true
	}
	return false
}

func inversePair(a, b circuit.Kind) bool {
	switch {
	case a == circuit.S && b == circuit.Sdg, a == circuit.Sdg && b == circuit.S:
		return true
	case a == circuit.T && b == circuit.Tdg, a == circuit.Tdg && b == circuit.T:
		return true
	}
	return false
}

func rotationKind(k circuit.Kind) bool {
	switch k {
	case circuit.RX, circuit.RY, circuit.RZ, circuit.U1:
		return true
	}
	return false
}

func mergeableRotation(a, b circuit.Op) bool {
	return a.Kind == b.Kind && rotationKind(a.Kind) && a.Qubits[0] == b.Qubits[0]
}

// normalizeAngle maps an angle into (-2pi, 2pi) preserving the unitary
// (rotations are 4pi-periodic, but a 2pi rotation is a pure global phase,
// which measurement semantics cannot observe).
func normalizeAngle(theta float64) float64 {
	m := math.Mod(theta, 2*math.Pi)
	return m
}

// isNoopRotation reports whether the op is a rotation by (a multiple of)
// 2pi — identity up to global phase — and therefore removable.
func isNoopRotation(op circuit.Op) bool {
	if !rotationKind(op.Kind) || len(op.Params) != 1 {
		return false
	}
	m := math.Abs(math.Mod(op.Params[0], 2*math.Pi))
	const tol = 1e-12
	return m < tol || 2*math.Pi-m < tol
}
