package density

import (
	"math"
	"testing"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/rng"
	"edm/internal/statevec"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestInitialState(t *testing.T) {
	d := New(2)
	if !approx(d.Trace(), 1, 1e-12) {
		t.Fatalf("Trace = %v", d.Trace())
	}
	if !approx(d.Purity(), 1, 1e-12) {
		t.Fatalf("Purity = %v", d.Purity())
	}
	if !approx(real(d.Element(0, 0)), 1, 1e-12) {
		t.Fatal("rho[0][0] != 1")
	}
}

func TestBellStateDensity(t *testing.T) {
	d := New(2)
	d.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	d.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	diag := d.Diagonal()
	if !approx(diag[0], 0.5, 1e-12) || !approx(diag[3], 0.5, 1e-12) {
		t.Fatalf("Bell diagonal = %v", diag)
	}
	if !approx(d.Purity(), 1, 1e-12) {
		t.Fatalf("Bell purity = %v (should remain pure)", d.Purity())
	}
	// Coherence terms present for a pure Bell state.
	if !approx(real(d.Element(0, 3)), 0.5, 1e-12) {
		t.Fatalf("off-diagonal = %v", d.Element(0, 3))
	}
}

func TestDepolarizingMixes(t *testing.T) {
	// Full depolarizing channel: K_i = 1/2 {I, X, Y, Z} drives any state to
	// maximally mixed.
	ks := []circuit.Matrix2{
		scaleM(circuit.Matrix1Q(circuit.I, nil), 0.5),
		scaleM(circuit.Matrix1Q(circuit.X, nil), 0.5),
		scaleM(circuit.Matrix1Q(circuit.Y, nil), 0.5),
		scaleM(circuit.Matrix1Q(circuit.Z, nil), 0.5),
	}
	d := New(1)
	d.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	d.ApplyKraus1Q(ks, 0)
	if !approx(d.Trace(), 1, 1e-12) {
		t.Fatalf("Trace = %v", d.Trace())
	}
	if !approx(d.Purity(), 0.5, 1e-12) {
		t.Fatalf("Purity = %v, want 0.5 (maximally mixed)", d.Purity())
	}
	diag := d.Diagonal()
	if !approx(diag[0], 0.5, 1e-12) || !approx(diag[1], 0.5, 1e-12) {
		t.Fatalf("diagonal = %v", diag)
	}
}

func TestAmplitudeDampingExact(t *testing.T) {
	gamma := 0.3
	k0 := circuit.Matrix2{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}}
	k1 := circuit.Matrix2{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}}
	d := NewBasis(bitstr.MustParse("1"))
	d.ApplyKraus1Q([]circuit.Matrix2{k0, k1}, 0)
	diag := d.Diagonal()
	if !approx(diag[0], gamma, 1e-12) || !approx(diag[1], 1-gamma, 1e-12) {
		t.Fatalf("damped diagonal = %v", diag)
	}
}

func TestMatchesStatevectorOnUnitaries(t *testing.T) {
	// Identical random circuits through both engines must give identical
	// output distributions.
	r := rng.New(42)
	for trial := 0; trial < 10; trial++ {
		rr := r.DeriveN("t", trial)
		c := randomCircuit(4, 12, rr)
		s := statevec.NewState(4)
		d := New(4)
		for _, op := range c.Ops {
			s.ApplyOp(op)
			d.ApplyOp(op)
		}
		sp := s.Probabilities()
		dp := d.Diagonal()
		for i := range sp {
			if !approx(sp[i], dp[i], 1e-10) {
				t.Fatalf("trial %d: engines disagree at %d: %v vs %v", trial, i, sp[i], dp[i])
			}
		}
		if !d.IsHermitian(1e-10) {
			t.Fatalf("trial %d: rho not hermitian", trial)
		}
	}
}

func randomCircuit(n, ops int, r *rng.RNG) *circuit.Circuit {
	c := circuit.New(n, n)
	for i := 0; i < ops; i++ {
		if r.Bernoulli(0.4) {
			a := r.Intn(n)
			b := (a + 1 + r.Intn(n-1)) % n
			c.CX(a, b)
		} else {
			c.U3(r.Intn(n), r.Float64()*3, r.Float64()*6, r.Float64()*6)
		}
	}
	return c
}

// TestTrajectoryConvergesToDensity is the key cross-engine validation: the
// Monte-Carlo trajectory engine sampled many times must converge to the
// exact density-matrix channel evolution.
func TestTrajectoryConvergesToDensity(t *testing.T) {
	p := 0.15
	f := math.Sqrt(p / 3)
	ks := []circuit.Matrix2{
		scaleM(circuit.Matrix1Q(circuit.I, nil), math.Sqrt(1-p)),
		scaleM(circuit.Matrix1Q(circuit.X, nil), f),
		scaleM(circuit.Matrix1Q(circuit.Y, nil), f),
		scaleM(circuit.Matrix1Q(circuit.Z, nil), f),
	}
	// Exact: H on q0, depolarize q0, CX(0,1), damp q1.
	gamma := 0.2
	ad0 := circuit.Matrix2{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}}
	ad1 := circuit.Matrix2{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}}
	damp := []circuit.Matrix2{ad0, ad1}

	d := New(2)
	d.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	d.ApplyKraus1Q(ks, 0)
	d.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	d.ApplyKraus1Q(damp, 1)
	exact := d.Diagonal()

	r := rng.New(7)
	const trials = 60000
	counts := make([]float64, 4)
	for i := 0; i < trials; i++ {
		rr := r.DeriveN("traj", i)
		s := statevec.NewState(2)
		s.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
		s.ApplyKraus1Q(ks, 0, rr)
		s.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
		s.ApplyKraus1Q(damp, 1, rr)
		counts[s.SampleOutcome(rr).Uint64()]++
	}
	for i := range counts {
		got := counts[i] / trials
		if math.Abs(got-exact[i]) > 0.01 {
			t.Fatalf("outcome %d: trajectory %v vs exact %v", i, got, exact[i])
		}
	}
}

func TestApplyKraus2QDepolarizing(t *testing.T) {
	// Two-qubit depolarizing with p=1 (uniform over 15 non-identity Paulis
	// plus identity at weight 1/16... here: uniform over all 16) drives to
	// maximally mixed.
	paulis := []circuit.Matrix2{
		circuit.Matrix1Q(circuit.I, nil),
		circuit.Matrix1Q(circuit.X, nil),
		circuit.Matrix1Q(circuit.Y, nil),
		circuit.Matrix1Q(circuit.Z, nil),
	}
	var ks []circuit.Matrix4
	for _, a := range paulis {
		for _, b := range paulis {
			ks = append(ks, scale4(kron(a, b), 0.25))
		}
	}
	d := New(2)
	d.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 0)
	d.Apply2Q(circuit.Matrix2Q(circuit.CX), 0, 1)
	d.ApplyKraus2Q(ks, 0, 1)
	if !approx(d.Purity(), 0.25, 1e-10) {
		t.Fatalf("Purity = %v, want 0.25", d.Purity())
	}
	for _, p := range d.Diagonal() {
		if !approx(p, 0.25, 1e-10) {
			t.Fatalf("diagonal = %v", d.Diagonal())
		}
	}
}

// kron returns a ⊗ b with a on the low bit (first operand).
func kron(low, high circuit.Matrix2) circuit.Matrix4 {
	var out circuit.Matrix4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[r][c] = low[r&1][c&1] * high[r>>1][c>>1]
		}
	}
	return out
}

func scale4(m circuit.Matrix4, f float64) circuit.Matrix4 {
	cf := complex(f, 0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			m[r][c] *= cf
		}
	}
	return m
}

func scaleM(m circuit.Matrix2, f float64) circuit.Matrix2 {
	c := complex(f, 0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] *= c
		}
	}
	return m
}

func TestDistConversion(t *testing.T) {
	d := New(2)
	d.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 1)
	dd := d.Dist()
	if !approx(dd.P(bitstr.MustParse("00")), 0.5, 1e-12) ||
		!approx(dd.P(bitstr.MustParse("01")), 0.5, 1e-12) {
		t.Fatalf("Dist = %v", dd)
	}
}

func TestPanics(t *testing.T) {
	d := New(2)
	mustPanic(t, func() { New(MaxQubits + 1) })
	mustPanic(t, func() { New(-1) })
	mustPanic(t, func() { d.Apply1Q(circuit.Matrix1Q(circuit.H, nil), 9) })
	mustPanic(t, func() { d.Apply2Q(circuit.Matrix2Q(circuit.CX), 1, 1) })
	mustPanic(t, func() { d.ApplyKraus1Q(nil, 0) })
	mustPanic(t, func() { d.ApplyKraus2Q(nil, 0, 1) })
	mustPanic(t, func() { d.ApplyOp(circuit.Op{Kind: circuit.Measure, Qubits: []int{0}, Cbit: 0}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
