// Package density implements an exact density-matrix simulator.
//
// Where package statevec samples one stochastic trajectory per trial, this
// engine evolves the full mixed state rho under unitaries and Kraus
// channels, yielding the *exact* output distribution of a noisy circuit.
// It is quadratically more expensive in memory (4^n complex numbers), so
// it is reserved for small registers; its role in this repository is to
// cross-validate the trajectory engine (the two must agree in the limit of
// many trajectories) and to compute exact distributions where sampling
// noise would cloud a comparison.
package density

import (
	"fmt"
	"math"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/dist"
)

// MaxQubits bounds the register size; 4^10 complex128 is 16 MiB.
const MaxQubits = 10

// Density is the density matrix of an n-qubit register, stored row-major:
// rho[row*dim + col].
type Density struct {
	n   int
	dim uint64
	rho []complex128
}

// New returns the pure state |0...0><0...0|.
func New(n int) *Density {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("density: %d qubits out of range", n))
	}
	dim := uint64(1) << uint(n)
	d := &Density{n: n, dim: dim, rho: make([]complex128, dim*dim)}
	d.rho[0] = 1
	return d
}

// NewBasis returns the pure basis state |b><b|.
func NewBasis(b bitstr.BitString) *Density {
	d := New(b.Len())
	d.rho[0] = 0
	v := b.Uint64()
	d.rho[v*d.dim+v] = 1
	return d
}

// N returns the number of qubits.
func (d *Density) N() int { return d.n }

// Element returns rho[row][col].
func (d *Density) Element(row, col uint64) complex128 { return d.rho[row*d.dim+col] }

// Trace returns the trace of rho (1 for a valid state).
func (d *Density) Trace() float64 {
	var tr float64
	for i := uint64(0); i < d.dim; i++ {
		tr += real(d.rho[i*d.dim+i])
	}
	return tr
}

// Purity returns Tr(rho^2): 1 for pure states, 1/2^n for maximally mixed.
func (d *Density) Purity() float64 {
	var p float64
	for r := uint64(0); r < d.dim; r++ {
		for c := uint64(0); c < d.dim; c++ {
			a := d.rho[r*d.dim+c]
			b := d.rho[c*d.dim+r]
			p += real(a)*real(b) - imag(a)*imag(b)
		}
	}
	return p
}

func (d *Density) checkQubit(q int) {
	if q < 0 || q >= d.n {
		panic(fmt.Sprintf("density: qubit %d out of range [0,%d)", q, d.n))
	}
}

// apply1QLeft computes rho <- (U ⊗ I_rest) rho on the row index.
func (d *Density) apply1QLeft(m circuit.Matrix2, q int) {
	bit := uint64(1) << uint(q)
	for row := uint64(0); row < d.dim; row++ {
		if row&bit != 0 {
			continue
		}
		r0, r1 := row, row|bit
		for col := uint64(0); col < d.dim; col++ {
			a0 := d.rho[r0*d.dim+col]
			a1 := d.rho[r1*d.dim+col]
			d.rho[r0*d.dim+col] = m[0][0]*a0 + m[0][1]*a1
			d.rho[r1*d.dim+col] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// apply1QRight computes rho <- rho (U^dagger ⊗ I_rest) on the column index.
func (d *Density) apply1QRight(m circuit.Matrix2, q int) {
	md := m.Dagger()
	bit := uint64(1) << uint(q)
	for col := uint64(0); col < d.dim; col++ {
		if col&bit != 0 {
			continue
		}
		c0, c1 := col, col|bit
		for row := uint64(0); row < d.dim; row++ {
			a0 := d.rho[row*d.dim+c0]
			a1 := d.rho[row*d.dim+c1]
			// rho * U^dagger: out[r][c] = sum_k rho[r][k] Udag[k][c].
			d.rho[row*d.dim+c0] = a0*md[0][0] + a1*md[1][0]
			d.rho[row*d.dim+c1] = a0*md[0][1] + a1*md[1][1]
		}
	}
}

// Apply1Q conjugates rho by the one-qubit unitary: rho <- U rho U^dagger.
// Exactly diagonal matrices take the element-wise fast path.
func (d *Density) Apply1Q(m circuit.Matrix2, q int) {
	d.checkQubit(q)
	if m.IsDiagonal() {
		d.Apply1QDiag(m[0][0], m[1][1], q)
		return
	}
	d.apply1QLeft(m, q)
	d.apply1QRight(m, q)
}

// Apply1QDiag conjugates rho by diag(d0, d1) on qubit q:
// rho[r][c] *= d(r) * conj(d(c)), a single element-wise pass.
func (d *Density) Apply1QDiag(d0, d1 complex128, q int) {
	d.checkQubit(q)
	var dd [2]complex128
	dd[0], dd[1] = d0, d1
	var f [2][2]complex128
	for rb := 0; rb < 2; rb++ {
		for cb := 0; cb < 2; cb++ {
			c := dd[cb]
			f[rb][cb] = dd[rb] * complex(real(c), -imag(c))
		}
	}
	bit := uint64(1) << uint(q)
	for row := uint64(0); row < d.dim; row++ {
		rb := int(row >> uint(q) & 1)
		base := row * d.dim
		for col := uint64(0); col < d.dim; col++ {
			d.rho[base+col] *= f[rb][(col&bit)>>uint(q)]
		}
	}
}

// apply2QLeft computes rho <- (U ⊗ I_rest) rho for a two-qubit U on (q0, q1).
func (d *Density) apply2QLeft(m circuit.Matrix4, q0, q1 int) {
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	for row := uint64(0); row < d.dim; row++ {
		if row&b0 != 0 || row&b1 != 0 {
			continue
		}
		idx := [4]uint64{row, row | b0, row | b1, row | b0 | b1}
		for col := uint64(0); col < d.dim; col++ {
			var in [4]complex128
			for k := 0; k < 4; k++ {
				in[k] = d.rho[idx[k]*d.dim+col]
			}
			for r := 0; r < 4; r++ {
				d.rho[idx[r]*d.dim+col] = m[r][0]*in[0] + m[r][1]*in[1] + m[r][2]*in[2] + m[r][3]*in[3]
			}
		}
	}
}

// apply2QRight computes rho <- rho (U^dagger ⊗ I_rest).
func (d *Density) apply2QRight(m circuit.Matrix4, q0, q1 int) {
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	for col := uint64(0); col < d.dim; col++ {
		if col&b0 != 0 || col&b1 != 0 {
			continue
		}
		idx := [4]uint64{col, col | b0, col | b1, col | b0 | b1}
		for row := uint64(0); row < d.dim; row++ {
			var in [4]complex128
			for k := 0; k < 4; k++ {
				in[k] = d.rho[row*d.dim+idx[k]]
			}
			// out[c] = sum_k in[k] * Udag[k][c] = sum_k in[k] * conj(U[c][k]).
			for c := 0; c < 4; c++ {
				var acc complex128
				for k := 0; k < 4; k++ {
					u := m[c][k]
					acc += in[k] * complex(real(u), -imag(u))
				}
				d.rho[row*d.dim+idx[c]] = acc
			}
		}
	}
}

// Apply2Q conjugates rho by a two-qubit unitary on the ordered pair
// (q0, q1), q0 being the low bit of the matrix basis. Exactly diagonal
// matrices take the element-wise fast path.
func (d *Density) Apply2Q(m circuit.Matrix4, q0, q1 int) {
	d.checkQubit(q0)
	d.checkQubit(q1)
	if q0 == q1 {
		panic("density: Apply2Q with identical qubits")
	}
	if dg, ok := m.DiagonalOf(); ok {
		d.Apply2QDiag(dg, q0, q1)
		return
	}
	d.apply2QLeft(m, q0, q1)
	d.apply2QRight(m, q0, q1)
}

// Apply2QDiag conjugates rho by diag(dg) on the ordered pair (q0, q1):
// rho[r][c] *= dg(r) * conj(dg(c)), one pass with a 16-entry factor
// table. ZZ crosstalk steps are diagonal, so this carries most of the
// two-qubit noise load in ExactDist.
func (d *Density) Apply2QDiag(dg [4]complex128, q0, q1 int) {
	d.checkQubit(q0)
	d.checkQubit(q1)
	if q0 == q1 {
		panic("density: Apply2QDiag with identical qubits")
	}
	var f [4][4]complex128
	for rb := 0; rb < 4; rb++ {
		for cb := 0; cb < 4; cb++ {
			c := dg[cb]
			f[rb][cb] = dg[rb] * complex(real(c), -imag(c))
		}
	}
	sub := func(i uint64) int {
		return int(i>>uint(q0)&1 | (i>>uint(q1)&1)<<1)
	}
	for row := uint64(0); row < d.dim; row++ {
		rb := sub(row)
		base := row * d.dim
		for col := uint64(0); col < d.dim; col++ {
			d.rho[base+col] *= f[rb][sub(col)]
		}
	}
}

// ApplyOp applies a unitary circuit operation.
func (d *Density) ApplyOp(op circuit.Op) {
	switch {
	case op.Kind == circuit.Barrier || op.Kind == circuit.Measure:
		panic(fmt.Sprintf("density: ApplyOp on non-unitary %v", op.Kind))
	case op.Kind.IsTwoQubit():
		d.Apply2Q(circuit.Matrix2Q(op.Kind), op.Qubits[0], op.Qubits[1])
	default:
		d.Apply1Q(circuit.Matrix1Q(op.Kind, op.Params), op.Qubits[0])
	}
}

// ApplyKraus1Q applies the channel rho <- sum_i K_i rho K_i^dagger exactly.
func (d *Density) ApplyKraus1Q(ks []circuit.Matrix2, q int) {
	d.checkQubit(q)
	if len(ks) == 0 {
		panic("density: empty Kraus set")
	}
	acc := make([]complex128, len(d.rho))
	work := &Density{n: d.n, dim: d.dim, rho: make([]complex128, len(d.rho))}
	for _, k := range ks {
		copy(work.rho, d.rho)
		work.apply1QLeft(k, q)
		work.apply1QRight(k, q)
		for i, v := range work.rho {
			acc[i] += v
		}
	}
	copy(d.rho, acc)
}

// ApplyKraus2Q applies a two-qubit channel exactly.
func (d *Density) ApplyKraus2Q(ks []circuit.Matrix4, q0, q1 int) {
	d.checkQubit(q0)
	d.checkQubit(q1)
	if q0 == q1 {
		panic("density: ApplyKraus2Q with identical qubits")
	}
	if len(ks) == 0 {
		panic("density: empty Kraus set")
	}
	acc := make([]complex128, len(d.rho))
	work := &Density{n: d.n, dim: d.dim, rho: make([]complex128, len(d.rho))}
	for _, k := range ks {
		copy(work.rho, d.rho)
		work.apply2QLeft(k, q0, q1)
		work.apply2QRight(k, q0, q1)
		for i, v := range work.rho {
			acc[i] += v
		}
	}
	copy(d.rho, acc)
}

// Diagonal returns the basis-state probabilities (the diagonal of rho).
// Tiny negative values from rounding are clamped to zero.
func (d *Density) Diagonal() []float64 {
	out := make([]float64, d.dim)
	for i := uint64(0); i < d.dim; i++ {
		p := real(d.rho[i*d.dim+i])
		if p < 0 && p > -1e-12 {
			p = 0
		}
		out[i] = p
	}
	return out
}

// Dist returns the measurement distribution over all n qubits.
func (d *Density) Dist() *dist.Dist {
	out := dist.New(d.n)
	for i, p := range d.Diagonal() {
		if p > 0 {
			out.Add(bitstr.New(uint64(i), d.n), p)
		}
	}
	return out
}

// IsHermitian reports whether rho equals its conjugate transpose within tol.
func (d *Density) IsHermitian(tol float64) bool {
	for r := uint64(0); r < d.dim; r++ {
		for c := r; c < d.dim; c++ {
			a := d.rho[r*d.dim+c]
			b := d.rho[c*d.dim+r]
			if math.Abs(real(a)-real(b)) > tol || math.Abs(imag(a)+imag(b)) > tol {
				return false
			}
		}
	}
	return true
}
