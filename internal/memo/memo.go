// Package memo provides the fingerprint-keyed memoization table shared by
// the campaign caches: the compiler cache and per-compiler Top-K pools in
// internal/mapper, the trial-run cache in internal/backend, and the Round
// cache in internal/experiment.
//
// A Cache is a bounded map from 64-bit fingerprints to immutable values
// with three properties the experiment sweeps need:
//
//   - Singleflight builds: when concurrent sweep cells miss on the same
//     key, exactly one goroutine runs the build function and the others
//     wait for its result instead of duplicating the most expensive work
//     in the process (compiler construction, VF2 enumeration, a 2048-trial
//     simulation).
//   - Ring-buffer FIFO eviction: evicted keys release their values
//     immediately. The slice-FIFO pattern this replaces
//     (fps = fps[1:]) kept every evicted value reachable through the
//     backing array for the lifetime of the cache.
//   - Hit / miss / singleflight-wait / eviction counters, optionally
//     shared across caches so a family of per-object caches (one Top-K
//     pool cache per compiler) reports one aggregate line.
//
// Values must be immutable once built — callers on a hit share the exact
// value the builder returned. Keys are caller-computed fingerprints; the
// cache trusts them, so two semantically different inputs hashing to the
// same 64 bits would alias (the repo-wide convention for its FNV-1a
// fingerprints, whose collision odds are negligible at campaign scale).
package memo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of a cache's counters, mirroring the backend's
// compiled-program CacheStats.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Waits     uint64 // singleflight waits: misses that joined an in-flight build
	Evictions uint64
	Entries   int // live entries (inserts minus evictions)
}

// Counters accumulates cache activity. A zero Counters is ready to use.
// One Counters may be shared by several caches (see NewShared), in which
// case its Stats aggregate across all of them.
type Counters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	waits     atomic.Uint64
	evictions atomic.Uint64
	inserts   atomic.Uint64
}

// Stats snapshots the counters.
func (c *Counters) Stats() Stats {
	ins, ev := c.inserts.Load(), c.evictions.Load()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Waits:     c.waits.Load(),
		Evictions: ev,
		Entries:   int(ins - ev),
	}
}

// entry is one cache slot. done is closed when val is ready; a build that
// panicked records the panic value instead and re-raises it in every
// waiter. gen is the generation the entry was built at (always 0 for
// plain Get; see GetGen).
type entry[V any] struct {
	done     chan struct{}
	val      V
	gen      uint64
	panicked any
}

// Cache is a fingerprint-keyed, capacity-bounded memoization table with
// singleflight build deduplication. It is safe for concurrent use.
type Cache[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*entry[V]
	ring    []uint64 // circular insertion-order buffer of keys
	head    int      // index of the oldest key in ring
	n       int      // number of keys in ring
	ctr     *Counters
}

// New returns a cache holding at most capacity entries, with its own
// counters. capacity must be positive.
func New[V any](capacity int) *Cache[V] {
	return NewShared[V](capacity, &Counters{})
}

// NewShared is New with caller-supplied counters, so several caches can
// report one aggregate Stats line. The capacity is a compile-time choice
// on every call site in this repository, so a non-positive value is a
// programmer error and panics; configuration-supplied capacities (the
// serving layer's shard sizes) go through NewChecked instead.
func NewShared[V any](capacity int, ctr *Counters) *Cache[V] {
	c, err := NewChecked[V](capacity, ctr)
	if err != nil {
		panic(err)
	}
	return c
}

// NewChecked is NewShared returning an error instead of panicking on a
// non-positive capacity, for callers whose capacity comes from runtime
// configuration rather than a constant. A nil ctr allocates private
// counters.
func NewChecked[V any](capacity int, ctr *Counters) (*Cache[V], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memo: cache capacity %d must be positive", capacity)
	}
	if ctr == nil {
		ctr = &Counters{}
	}
	return &Cache[V]{
		cap:     capacity,
		entries: make(map[uint64]*entry[V], capacity),
		ring:    make([]uint64, capacity),
		ctr:     ctr,
	}, nil
}

// Get returns the cached value for key, building it with build on a miss.
// Concurrent Gets for the same key run build once; the rest wait for the
// winner. If build panics, the panic propagates to the builder and every
// waiter, and the key is removed so a later Get retries.
func (c *Cache[V]) Get(key uint64, build func() V) V {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.ctr.hits.Add(1)
		default:
			c.ctr.waits.Add(1)
		}
		c.mu.Unlock()
		<-e.done
		if e.panicked != nil {
			panic(e.panicked)
		}
		return e.val
	}
	e := &entry[V]{done: make(chan struct{})}
	c.ctr.misses.Add(1)
	c.ctr.inserts.Add(1)
	c.evictOldestLocked()
	c.entries[key] = e
	c.ring[(c.head+c.n)%c.cap] = key
	c.n++
	c.mu.Unlock()

	return c.runBuild(key, e, build)
}

// GetCtx is Get with cancellation: a caller whose ctx expires while the
// value is being built detaches and returns ctx.Err() without waiting.
// The build itself is never cancelled — it runs detached to completion
// and publishes its value for every other (and future) caller, so a
// request timeout can never poison the entry. This is the serving-path
// variant of Get: one client abandoning a job must not invalidate the
// work for the clients still waiting on it.
//
// A build that panics records the panic and re-raises it in every caller
// that observes the entry, exactly as Get does; if every caller has
// detached, the panic is dropped with the entry (the next Get retries).
// With a ctx that can never be cancelled, GetCtx is exactly Get.
func (c *Cache[V]) GetCtx(ctx context.Context, key uint64, build func() V) (V, error) {
	if ctx.Done() == nil {
		return c.Get(key, build), nil
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.ctr.hits.Add(1)
		default:
			c.ctr.waits.Add(1)
		}
		c.mu.Unlock()
		return waitEntry(ctx, e)
	}
	e := &entry[V]{done: make(chan struct{})}
	c.ctr.misses.Add(1)
	c.ctr.inserts.Add(1)
	c.evictOldestLocked()
	c.entries[key] = e
	c.ring[(c.head+c.n)%c.cap] = key
	c.n++
	c.mu.Unlock()

	go c.runBuildDetached(key, e, build)
	return waitEntry(ctx, e)
}

// waitEntry waits for an in-flight entry with cancellation. A completed
// entry wins over an already-expired ctx, so hits never turn into
// spurious cancellation errors.
func waitEntry[V any](ctx context.Context, e *entry[V]) (V, error) {
	select {
	case <-e.done:
	default:
		select {
		case <-e.done:
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	if e.panicked != nil {
		panic(e.panicked)
	}
	return e.val, nil
}

// runBuildDetached is runBuild for builds owned by the cache rather than
// the calling goroutine: a panic is recorded and published to waiters
// (who re-raise it) but not re-raised here, where it would kill the
// process from a goroutine no caller owns.
func (c *Cache[V]) runBuildDetached(key uint64, e *entry[V], build func() V) {
	defer func() {
		if r := recover(); r != nil {
			e.panicked = r
			close(e.done)
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
				c.ctr.evictions.Add(1)
			}
			c.mu.Unlock()
		}
	}()
	e.val = build()
	close(e.done)
}

// runBuild executes build for a freshly inserted in-flight entry,
// publishing the value (or the panic) to every waiter. A panicking build
// removes the entry so a later Get retries.
func (c *Cache[V]) runBuild(key uint64, e *entry[V], build func() V) V {
	defer func() {
		if r := recover(); r != nil {
			e.panicked = r
			close(e.done)
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
				c.ctr.evictions.Add(1)
			}
			c.mu.Unlock()
			panic(r)
		}
	}()
	e.val = build()
	close(e.done)
	return e.val
}

// GetGen is Get with generation-tagged entries, the invalidation
// mechanism behind drift-aware incremental recompilation (DESIGN.md
// §11). An entry is valid only for the generation it was built at:
//
//   - matching generation: a hit (or a singleflight wait, exactly as in
//     Get);
//   - absent key: a miss built with build;
//   - stale completed entry: replaced in place — counted as one eviction
//     plus one miss/insert pair, keeping its FIFO ring slot — by an
//     in-flight entry whose value upgrade(stale) builds, so callers can
//     rebuild incrementally from the previous generation's value. The
//     stale value becomes unreachable the moment the replacement is
//     published; no waiter ever observes a value from another
//     generation.
//   - stale in-flight entry: callers wait for that build to finish
//     (counted as a wait) and retry, so at most one build runs per
//     (key, generation).
//
// A nil upgrade, or a stale entry left by a panicked build, falls back
// to build. Generations are expected to be monotone per key; racing
// different generations on one key is last-writer-wins. Panics propagate
// exactly as in Get. Mixing Get and GetGen on the same key is not
// supported (Get ignores generations).
func (c *Cache[V]) GetGen(key, gen uint64, build func() V, upgrade func(stale V) V) V {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok && e.gen == gen {
			select {
			case <-e.done:
				c.ctr.hits.Add(1)
			default:
				c.ctr.waits.Add(1)
			}
			c.mu.Unlock()
			<-e.done
			if e.panicked != nil {
				panic(e.panicked)
			}
			return e.val
		}
		if ok {
			select {
			case <-e.done:
			default:
				// A stale generation is still building. Its waiters need
				// that value; we need this generation's. Wait it out and
				// retry so the two builds never run concurrently.
				c.ctr.waits.Add(1)
				c.mu.Unlock()
				<-e.done
				continue
			}
		}
		ne := &entry[V]{done: make(chan struct{}), gen: gen}
		c.ctr.misses.Add(1)
		c.ctr.inserts.Add(1)
		var stale *entry[V]
		if ok {
			// Replace the stale entry in place: it keeps its ring slot, so
			// the live-entry/ring-slot invariant of evictOldestLocked holds
			// and the key keeps its original FIFO age.
			stale = e
			c.ctr.evictions.Add(1)
		} else {
			c.evictOldestLocked()
			c.ring[(c.head+c.n)%c.cap] = key
			c.n++
		}
		c.entries[key] = ne
		c.mu.Unlock()

		return c.runBuild(key, ne, func() V {
			if stale != nil && stale.panicked == nil && upgrade != nil {
				return upgrade(stale.val)
			}
			return build()
		})
	}
}

// GetGenCtx is GetGen with the cancellation semantics of GetCtx: callers
// detach when ctx expires, builds and upgrades run detached to
// completion, and a cancelled caller can never poison the entry. With a
// ctx that can never be cancelled it is exactly GetGen.
func (c *Cache[V]) GetGenCtx(ctx context.Context, key, gen uint64, build func() V, upgrade func(stale V) V) (V, error) {
	if ctx.Done() == nil {
		return c.GetGen(key, gen, build, upgrade), nil
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok && e.gen == gen {
			select {
			case <-e.done:
				c.ctr.hits.Add(1)
			default:
				c.ctr.waits.Add(1)
			}
			c.mu.Unlock()
			return waitEntry(ctx, e)
		}
		if ok {
			select {
			case <-e.done:
			default:
				// A stale generation is still building; wait it out (or
				// detach) and retry, as in GetGen.
				c.ctr.waits.Add(1)
				c.mu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					var zero V
					return zero, ctx.Err()
				}
				continue
			}
		}
		ne := &entry[V]{done: make(chan struct{}), gen: gen}
		c.ctr.misses.Add(1)
		c.ctr.inserts.Add(1)
		var stale *entry[V]
		if ok {
			stale = e
			c.ctr.evictions.Add(1)
		} else {
			c.evictOldestLocked()
			c.ring[(c.head+c.n)%c.cap] = key
			c.n++
		}
		c.entries[key] = ne
		c.mu.Unlock()

		go c.runBuildDetached(key, ne, func() V {
			if stale != nil && stale.panicked == nil && upgrade != nil {
				return upgrade(stale.val)
			}
			return build()
		})
		return waitEntry(ctx, ne)
	}
}

// evictOldestLocked makes room for one insertion. Every live entry owns
// exactly one ring slot (a key re-inserted after eviction gets a fresh
// slot; a panicked build leaves a stale slot behind), so len(entries) <=
// n always, and popping the ring until it has a free slot also guarantees
// the map does. A popped key whose entry is already gone is just a stale
// slot; a live one is the FIFO eviction.
func (c *Cache[V]) evictOldestLocked() {
	for c.n >= c.cap {
		old := c.ring[c.head]
		c.head = (c.head + 1) % c.cap
		c.n--
		if _, ok := c.entries[old]; ok {
			delete(c.entries, old)
			c.ctr.evictions.Add(1)
		}
	}
}

// Stats snapshots the cache's counters. For a NewShared cache the numbers
// aggregate every cache sharing the Counters.
func (c *Cache[V]) Stats() Stats { return c.ctr.Stats() }

// Len returns the number of live entries in this cache.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Each calls f with every live, completed value. In-flight builds are
// skipped (Each never blocks on a builder). Iteration order is
// unspecified. The entries are snapshotted under the lock and f runs
// outside it, so f may call back into this cache (including Get on the
// keys it is handed) without deadlocking; values inserted or evicted
// while the callbacks run may or may not be observed.
func (c *Cache[V]) Each(f func(key uint64, v V)) {
	type kv struct {
		k uint64
		v V
	}
	c.mu.Lock()
	snap := make([]kv, 0, len(c.entries))
	for k, e := range c.entries {
		select {
		case <-e.done:
			if e.panicked == nil {
				snap = append(snap, kv{k, e.val})
			}
		default:
		}
	}
	c.mu.Unlock()
	for _, p := range snap {
		f(p.k, p.v)
	}
}

// Reset drops every entry (in-flight builds still complete for their
// waiters but are no longer shared) and counts the drops as evictions so
// shared counters stay consistent.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctr.evictions.Add(uint64(len(c.entries)))
	c.entries = make(map[uint64]*entry[V], c.cap)
	c.head, c.n = 0, 0
}

// FNV-1a 64-bit constants, matching the repo's other fingerprints.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Mix folds one 64-bit word into a running FNV-1a hash, byte by byte —
// the building block for composite cache keys such as
// (setup fingerprint, round index) or (circuit fingerprint, trials, rng
// state). Start from Seed.
func Mix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	return h
}

// Seed is the FNV-1a offset basis, the canonical starting hash for Mix
// chains.
func Seed() uint64 { return fnvOffset64 }
