package memo

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetCtxWaiterDetaches is the serving-path contract: a waiter whose
// context expires while another goroutine is building must detach with
// ctx.Err() without poisoning the entry — the build completes, later
// callers hit.
func TestGetCtxWaiterDetaches(t *testing.T) {
	c := New[int](4)
	gate := make(chan struct{})
	var builds atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Builder: plain Get, runs the build synchronously.
		v := c.Get(7, func() int {
			builds.Add(1)
			<-gate
			return 42
		})
		if v != 42 {
			t.Errorf("builder got %d, want 42", v)
		}
	}()
	// Wait until the entry is in flight.
	for c.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.GetCtx(ctx, 7, func() int { t.Error("waiter must not build"); return 0 }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("detached waiter err = %v, want DeadlineExceeded", err)
	}
	close(gate)
	wg.Wait()
	v, err := c.GetCtx(context.Background(), 7, func() int { builds.Add(1); return -1 })
	if err != nil || v != 42 {
		t.Fatalf("post-detach Get = %d, %v; want 42, nil", v, err)
	}
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1 (detach must not poison the entry)", builds.Load())
	}
	if s := c.Stats(); s.Hits != 1 || s.Waits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 wait / 1 miss", s)
	}
}

// TestGetCtxBuilderDetaches: when the *initiating* caller's context
// expires, the detached build still completes and publishes for everyone
// else.
func TestGetCtxBuilderDetaches(t *testing.T) {
	c := New[int](4)
	gate := make(chan struct{})
	var builds atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	res := make(chan error, 1)
	go func() {
		_, err := c.GetCtx(ctx, 9, func() int {
			builds.Add(1)
			close(started)
			<-gate
			return 5
		})
		res <- err
	}()
	<-started
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled initiator err = %v, want Canceled", err)
	}
	close(gate)
	// The orphaned build must finish and serve future callers.
	v, err := c.GetCtx(context.Background(), 9, func() int { builds.Add(1); return -1 })
	if err != nil || v != 5 {
		t.Fatalf("got %d, %v; want 5, nil", v, err)
	}
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
}

// TestGetCtxNonCancellable pins that a background context takes the
// plain Get path bit-for-bit (same counters, synchronous build).
func TestGetCtxNonCancellable(t *testing.T) {
	c := New[int](2)
	v, err := c.GetCtx(context.Background(), 1, func() int { return 11 })
	if err != nil || v != 11 {
		t.Fatalf("got %d, %v", v, err)
	}
	v, err = c.GetCtx(context.Background(), 1, func() int { return -1 })
	if err != nil || v != 11 {
		t.Fatalf("hit got %d, %v", v, err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Waits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestGetCtxExpiredHitStillServes: a completed entry wins over an
// already-expired context — hits never become cancellation errors.
func TestGetCtxExpiredHitStillServes(t *testing.T) {
	c := New[int](2)
	c.Get(3, func() int { return 30 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := c.GetCtx(ctx, 3, func() int { return -1 })
	if err != nil || v != 30 {
		t.Fatalf("expired-ctx hit = %d, %v; want 30, nil", v, err)
	}
}

// TestGetCtxPanicPropagatesToWaiters: a panicking detached build
// re-raises in callers that observe it and removes the entry for retry.
func TestGetCtxPanicPropagatesToWaiters(t *testing.T) {
	c := New[int](2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v, want boom", r)
			}
		}()
		_, _ = c.GetCtx(ctx, 4, func() int { panic("boom") })
		t.Error("GetCtx returned instead of panicking")
	}()
	// Entry was removed; a later build retries and succeeds.
	v, err := c.GetCtx(ctx, 4, func() int { return 44 })
	if err != nil || v != 44 {
		t.Fatalf("retry got %d, %v", v, err)
	}
}

// TestGetGenCtxWaiterDetaches covers the generation-tagged variant: a
// waiter on a stale in-flight build detaches on expiry; the new
// generation's upgrade still runs exactly once.
func TestGetGenCtxWaiterDetaches(t *testing.T) {
	c := New[int](4)
	gate := make(chan struct{})
	bg := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetGen(5, 0, func() int { <-gate; return 100 }, nil)
	}()
	for c.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Waiter for generation 1 sees a stale in-flight build and must
	// detach when its deadline fires.
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	defer cancel()
	_, err := c.GetGenCtx(ctx, 5, 1, func() int { return -1 }, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stale-wait err = %v, want DeadlineExceeded", err)
	}
	close(gate)
	wg.Wait()
	var upgrades atomic.Int64
	v, err := c.GetGenCtx(bg, 5, 1, func() int { return -1 }, func(stale int) int {
		upgrades.Add(1)
		return stale + 1
	})
	if err != nil || v != 101 {
		t.Fatalf("gen-1 value = %d, %v; want 101, nil", v, err)
	}
	if upgrades.Load() != 1 {
		t.Fatalf("upgrade ran %d times, want 1", upgrades.Load())
	}
}

// TestGetCtxCancellationStress exercises the detach path at full
// GOMAXPROCS under the race detector: many keys, many waiters, a mix of
// expiring and patient contexts. Every patient caller must observe the
// correct value and every key must build exactly once.
func TestGetCtxCancellationStress(t *testing.T) {
	const keys = 8
	goroutines := 4 * runtime.GOMAXPROCS(0)
	c := New[uint64](keys)
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := uint64(i % keys)
				var ctx context.Context
				var cancel context.CancelFunc
				if (g+i)%3 == 0 {
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
				} else {
					ctx, cancel = context.WithCancel(context.Background())
				}
				v, err := c.GetCtx(ctx, key, func() uint64 {
					builds.Add(1)
					time.Sleep(200 * time.Microsecond)
					return key * 1000
				})
				cancel()
				if err == nil && v != key*1000 {
					t.Errorf("key %d got %d", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if b := builds.Load(); b != keys {
		t.Fatalf("builds = %d, want exactly %d (one per key)", b, keys)
	}
	for k := uint64(0); k < keys; k++ {
		v, err := c.GetCtx(context.Background(), k, func() uint64 { builds.Add(1); return 0 })
		if err != nil || v != k*1000 {
			t.Fatalf("final key %d = %d, %v", k, v, err)
		}
	}
	if b := builds.Load(); b != keys {
		t.Fatalf("final builds = %d, want %d (no poisoned entries)", b, keys)
	}
}

// TestEachReentrant pins the deadlock fix: a callback touching the same
// cache (Get on its own key, Len, a fresh insert) must not deadlock.
func TestEachReentrant(t *testing.T) {
	c := New[int](8)
	for k := uint64(0); k < 4; k++ {
		k := k
		c.Get(k, func() int { return int(k) * 10 })
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := 0
		c.Each(func(k uint64, v int) {
			seen++
			if got := c.Get(k, func() int { return -1 }); got != v {
				t.Errorf("reentrant Get(%d) = %d, want %d", k, got, v)
			}
			_ = c.Len()
			c.Get(100+k, func() int { return 0 }) // insert during iteration
		})
		if seen != 4 {
			t.Errorf("Each visited %d entries, want 4", seen)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Each deadlocked on a reentrant callback")
	}
}

// TestNewChecked pins the error-returning constructor and that the
// panicking constructors remain for programmer-constant capacities.
func TestNewChecked(t *testing.T) {
	for _, bad := range []int{0, -1} {
		if _, err := NewChecked[int](bad, nil); err == nil {
			t.Errorf("NewChecked(%d) succeeded, want error", bad)
		}
	}
	c, err := NewChecked[int](2, nil)
	if err != nil || c == nil {
		t.Fatalf("NewChecked(2) = %v, %v", c, err)
	}
	if v := c.Get(1, func() int { return 7 }); v != 7 {
		t.Fatalf("checked cache Get = %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New[int](0)
}
