package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetGenHitMissUpgrade(t *testing.T) {
	c := New[int](4)
	builds, upgrades := 0, 0
	v := c.GetGen(1, 0, func() int { builds++; return 10 }, nil)
	if v != 10 || builds != 1 {
		t.Fatalf("gen 0 build: v=%d builds=%d", v, builds)
	}
	if v = c.GetGen(1, 0, func() int { builds++; return -1 }, nil); v != 10 || builds != 1 {
		t.Fatalf("gen 0 hit: v=%d builds=%d", v, builds)
	}
	up := func(stale int) int { upgrades++; return stale + 1 }
	if v = c.GetGen(1, 1, func() int { builds++; return -1 }, up); v != 11 {
		t.Fatalf("gen 1 upgrade: v=%d", v)
	}
	if builds != 1 || upgrades != 1 {
		t.Fatalf("upgrade must not call build: builds=%d upgrades=%d", builds, upgrades)
	}
	// The stale gen-0 value is unreachable: same gen hits return the
	// upgraded value only.
	if v = c.GetGen(1, 1, func() int { return -1 }, up); v != 11 {
		t.Fatalf("gen 1 hit after upgrade: v=%d", v)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Evictions != 1 || s.Entries != 1 {
		t.Fatalf("counters inconsistent: %+v", s)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetGenNilUpgradeRebuilds(t *testing.T) {
	c := New[int](4)
	c.GetGen(1, 0, func() int { return 10 }, nil)
	if v := c.GetGen(1, 1, func() int { return 20 }, nil); v != 20 {
		t.Fatalf("nil upgrade must rebuild: v=%d", v)
	}
}

func TestGetGenStaleValueUnreachable(t *testing.T) {
	c := New[*int](4)
	old := c.GetGen(1, 0, func() *int { v := 1; return &v }, nil)
	newV := c.GetGen(1, 1, func() *int { v := 2; return &v }, func(stale *int) *int {
		if stale != old {
			t.Errorf("upgrade did not receive the stale value")
		}
		v := *stale + 1
		return &v
	})
	for i := 0; i < 3; i++ {
		if got := c.GetGen(1, 1, func() *int { return nil }, nil); got != newV {
			t.Fatalf("gen 1 returned a value other than the upgraded one")
		}
	}
}

func TestGetGenUpgradePanicPropagatesAndRetries(t *testing.T) {
	c := New[int](4)
	c.GetGen(1, 0, func() int { return 10 }, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("upgrade panic did not propagate")
			}
		}()
		c.GetGen(1, 1, func() int { return -1 }, func(int) int { panic("boom") })
	}()
	// The stale entry was evicted by the replacement and the panicked
	// replacement removed itself, so the next access rebuilds from scratch.
	if v := c.GetGen(1, 1, func() int { return 30 }, func(int) int { return -1 }); v != 30 {
		t.Fatalf("retry after panic: v=%d", v)
	}
	s := c.Stats()
	if s.Entries != c.Len() {
		t.Fatalf("entry accounting off after panic: %+v vs Len %d", s, c.Len())
	}
}

func TestGetGenEvictionInterplay(t *testing.T) {
	c := New[int](2)
	c.GetGen(1, 0, func() int { return 1 }, nil)
	c.GetGen(2, 0, func() int { return 2 }, nil)
	// Upgrading key 1 keeps its ring slot (and FIFO age): inserting key 3
	// must evict key 1 — the oldest — not key 2.
	c.GetGen(1, 1, func() int { return -1 }, func(stale int) int { return stale + 10 })
	c.GetGen(3, 0, func() int { return 3 }, nil)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	rebuilt := false
	c.GetGen(2, 0, func() int { rebuilt = true; return 2 }, nil)
	if rebuilt {
		t.Fatalf("key 2 was evicted; want key 1 (oldest) evicted")
	}
	c.GetGen(1, 1, func() int { rebuilt = true; return 11 }, nil)
	if !rebuilt {
		t.Fatalf("key 1 still cached; want it evicted as oldest")
	}
	s := c.Stats()
	if s.Entries != c.Len() {
		t.Fatalf("entry accounting off: %+v vs Len %d", s, c.Len())
	}
}

// Hammer one key across advancing generations from many goroutines: at
// most one build per (key, generation), every observed value belongs to
// the requested generation, and the counters stay consistent. Run with
// -race this is the singleflight-during-invalidation race test.
func TestGetGenConcurrentGenerations(t *testing.T) {
	c := New[uint64](8)
	const (
		workers = 8
		gens    = 20
	)
	var builds atomic.Uint64
	for gen := uint64(0); gen < gens; gen++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(gen uint64) {
				defer wg.Done()
				v := c.GetGen(42, gen, func() uint64 {
					builds.Add(1)
					return gen * 100
				}, func(stale uint64) uint64 {
					builds.Add(1)
					if stale != (gen-1)*100 {
						t.Errorf("gen %d upgrade saw stale value %d", gen, stale)
					}
					return gen * 100
				})
				if v != gen*100 {
					t.Errorf("gen %d observed value %d", gen, v)
				}
			}(gen)
		}
		wg.Wait()
	}
	if got := builds.Load(); got != gens {
		t.Fatalf("builds = %d, want exactly one per generation (%d)", got, gens)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Misses != gens || s.Evictions != gens-1 {
		t.Fatalf("counters inconsistent: %+v", s)
	}
	if s.Hits+s.Waits != workers*gens-gens {
		t.Fatalf("hits+waits = %d, want %d", s.Hits+s.Waits, workers*gens-gens)
	}
}

// Concurrent callers racing *different* generations on one key must stay
// race-clean and deliver each caller a value of the generation it asked
// for (last writer wins in the cache itself).
func TestGetGenCrossGenerationRace(t *testing.T) {
	c := New[uint64](4)
	var wg sync.WaitGroup
	for it := 0; it < 50; it++ {
		for _, gen := range []uint64{1, 2} {
			wg.Add(1)
			go func(gen uint64) {
				defer wg.Done()
				v := c.GetGen(7, gen, func() uint64 { return gen }, func(stale uint64) uint64 { return gen })
				if v != gen {
					t.Errorf("asked gen %d, got value %d", gen, v)
				}
			}(gen)
		}
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries != c.Len() {
		t.Fatalf("entry accounting off: %+v vs Len %d", s, c.Len())
	}
}
