package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetHitMiss(t *testing.T) {
	c := New[int](4)
	builds := 0
	get := func(k uint64) int {
		return c.Get(k, func() int { builds++; return int(k) * 10 })
	}
	if v := get(1); v != 10 {
		t.Fatalf("get(1) = %d", v)
	}
	if v := get(1); v != 10 {
		t.Fatalf("get(1) second = %d", v)
	}
	if v := get(2); v != 20 {
		t.Fatalf("get(2) = %d", v)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New[int](3)
	for k := uint64(1); k <= 5; k++ {
		c.Get(k, func() int { return int(k) })
	}
	// Keys 1 and 2 evicted; 3, 4, 5 live.
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	rebuilt := false
	c.Get(1, func() int { rebuilt = true; return 1 })
	if !rebuilt {
		t.Fatal("evicted key 1 still cached")
	}
	hit := true
	c.Get(4, func() int { hit = false; return 4 })
	if !hit {
		t.Fatal("key 4 was evicted out of FIFO order")
	}
	st := c.Stats()
	// 6 misses (1..5 plus re-built 1), 1 hit (4), 3 evictions (1, 2, then 3
	// when 1 was re-inserted).
	if st.Misses != 6 || st.Hits != 1 || st.Evictions != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEvictionReleasesValue pins the satellite fix: eviction must drop the
// cache's reference to the value (the slice-FIFO pattern this package
// replaces kept evicted values reachable through the backing array).
func TestEvictionReleasesValue(t *testing.T) {
	c := New[*int](2)
	seen := 0
	c.Get(1, func() *int { v := 1; return &v })
	c.Get(2, func() *int { v := 2; return &v })
	c.Get(3, func() *int { v := 3; return &v }) // evicts key 1
	c.Each(func(k uint64, v *int) {
		seen++
		if k == 1 {
			t.Fatal("evicted entry still reachable via Each")
		}
	})
	if seen != 2 {
		t.Fatalf("live entries = %d", seen)
	}
}

func TestSingleflight(t *testing.T) {
	c := New[int](8)
	release := make(chan struct{})
	var builds atomic.Int32
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(7, func() int {
				builds.Add(1)
				<-release
				return 42
			})
		}(i)
	}
	// Let the goroutines pile up on the key, then release the builder.
	for c.Stats().Misses == 0 {
	}
	close(release)
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Fatalf("builds = %d, want 1", b)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Waits != waiters-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBuildPanicPropagatesAndRetries(t *testing.T) {
	c := New[int](4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("builder panic swallowed")
			}
		}()
		c.Get(9, func() int { panic("boom") })
	}()
	// The key must be retryable after a failed build.
	if v := c.Get(9, func() int { return 99 }); v != 99 {
		t.Fatalf("retry = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	// Stale ring slots from the panicked insert must not corrupt capacity
	// accounting: fill far past cap and check the bound holds.
	for k := uint64(100); k < 120; k++ {
		c.Get(k, func() int { return int(k) })
	}
	if c.Len() > 4 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}

func TestSharedCounters(t *testing.T) {
	var ctr Counters
	a := NewShared[int](4, &ctr)
	b := NewShared[int](4, &ctr)
	a.Get(1, func() int { return 1 })
	a.Get(1, func() int { return 1 })
	b.Get(1, func() int { return 1 }) // separate cache: a miss of its own
	st := ctr.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Entries != 2 {
		t.Fatalf("aggregate stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	c := New[int](4)
	c.Get(1, func() int { return 1 })
	c.Get(2, func() int { return 2 })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
	st := c.Stats()
	if st.Entries != 0 || st.Evictions != 2 {
		t.Fatalf("stats after reset = %+v", st)
	}
	rebuilt := false
	c.Get(1, func() int { rebuilt = true; return 1 })
	if !rebuilt {
		t.Fatal("reset did not drop entries")
	}
}

func TestMixDistinguishesComposites(t *testing.T) {
	// (a, b) and (b, a) must hash differently, as must (x, y) vs (x', y')
	// differing in either word.
	h1 := Mix(Mix(Seed(), 1), 2)
	h2 := Mix(Mix(Seed(), 2), 1)
	h3 := Mix(Mix(Seed(), 1), 3)
	if h1 == h2 || h1 == h3 || h2 == h3 {
		t.Fatalf("mix collisions: %x %x %x", h1, h2, h3)
	}
}

func TestGetConcurrentDistinctKeys(t *testing.T) {
	c := New[uint64](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(0); k < 32; k++ {
				if v := c.Get(k, func() uint64 { return k * k }); v != k*k {
					t.Errorf("key %d: got %d", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
}
