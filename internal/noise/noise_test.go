package noise

import (
	"math"
	"math/cmplx"
	"testing"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/rng"
)

// krausComplete1Q checks sum K†K = I.
func krausComplete1Q(t *testing.T, ks []circuit.Matrix2) {
	t.Helper()
	var sum circuit.Matrix2
	for _, k := range ks {
		d := k.Dagger()
		p := d.Mul(k)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				sum[i][j] += p[i][j]
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(sum[i][j]-want) > 1e-12 {
				t.Fatalf("Kraus completeness violated: sum[%d][%d] = %v", i, j, sum[i][j])
			}
		}
	}
}

func TestDepolarizing1QComplete(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.2, 1} {
		krausComplete1Q(t, DepolarizingKraus1Q(p))
	}
}

func TestDampingKrausComplete(t *testing.T) {
	for _, g := range []float64{0, 0.1, 0.5, 1} {
		krausComplete1Q(t, AmplitudeDampingKraus(g))
		krausComplete1Q(t, PhaseDampingKraus(g))
	}
}

func TestDepolarizing2QComplete(t *testing.T) {
	for _, p := range []float64{0, 0.04, 0.5} {
		ks := DepolarizingKraus2Q(p)
		var sum circuit.Matrix4
		for _, k := range ks {
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					for m := 0; m < 4; m++ {
						sum[r][c] += cmplx.Conj(k[m][r]) * k[m][c]
					}
				}
			}
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				want := complex128(0)
				if r == c {
					want = 1
				}
				if cmplx.Abs(sum[r][c]-want) > 1e-12 {
					t.Fatalf("p=%v: 2q completeness violated at (%d,%d)", p, r, c)
				}
			}
		}
	}
}

func TestSamplePauli1QRates(t *testing.T) {
	r := rng.New(11)
	const n = 100000
	p := 0.3
	counts := [4]int{}
	for i := 0; i < n; i++ {
		counts[SamplePauli1Q(p, r)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-(1-p)) > 0.01 {
		t.Fatalf("identity rate = %v", got)
	}
	for i := 1; i < 4; i++ {
		if got := float64(counts[i]) / n; math.Abs(got-p/3) > 0.01 {
			t.Fatalf("Pauli %d rate = %v", i, got)
		}
	}
	if SamplePauli1Q(0, r) != 0 {
		t.Fatal("p=0 produced an error")
	}
}

func TestSamplePauli2QRates(t *testing.T) {
	r := rng.New(13)
	const n = 150000
	p := 0.4
	errCount := 0
	seen := map[[2]int]int{}
	for i := 0; i < n; i++ {
		a, b := SamplePauli2Q(p, r)
		if a != 0 || b != 0 {
			errCount++
			seen[[2]int{a, b}]++
		}
	}
	if got := float64(errCount) / n; math.Abs(got-p) > 0.01 {
		t.Fatalf("error rate = %v", got)
	}
	if len(seen) != 15 {
		t.Fatalf("only %d of 15 Pauli pairs seen", len(seen))
	}
	for pair, c := range seen {
		if got := float64(c) / float64(errCount); math.Abs(got-1.0/15) > 0.01 {
			t.Fatalf("pair %v rate = %v", pair, got)
		}
	}
}

func TestDampingParams(t *testing.T) {
	// elapsed 0: no damping.
	if a, p := DampingParams(0, 50, 30); a != 0 || p != 0 {
		t.Fatal("zero elapsed produced damping")
	}
	// T2 = 2*T1: no pure dephasing.
	if _, p := DampingParams(10, 50, 100); p != 0 {
		t.Fatalf("no-dephasing case gave lambda=%v", p)
	}
	// One T1 of elapsed time: gamma = 1 - 1/e.
	a, _ := DampingParams(50, 50, 30)
	if math.Abs(a-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("gammaAmp = %v", a)
	}
	// Monotone in elapsed.
	a1, p1 := DampingParams(1, 50, 30)
	a2, p2 := DampingParams(5, 50, 30)
	if a2 <= a1 || p2 <= p1 {
		t.Fatal("damping not monotone in time")
	}
}

func TestZZMatrixProperties(t *testing.T) {
	m := ZZMatrix(0.3)
	if !m.IsUnitary(1e-12) {
		t.Fatal("ZZ not unitary")
	}
	// theta=0 is identity.
	id := ZZMatrix(0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if id[r][c] != want {
				t.Fatal("ZZ(0) != I")
			}
		}
	}
	// Diagonal signs: |00> and |11> get e^-it, |01>,|10> get e^it.
	if cmplx.Abs(m[0][0]-m[3][3]) > 1e-15 || cmplx.Abs(m[1][1]-m[2][2]) > 1e-15 {
		t.Fatal("ZZ diagonal structure wrong")
	}
	if cmplx.Abs(m[0][0]-cmplx.Conj(m[1][1])) > 1e-15 {
		t.Fatal("ZZ phases not conjugate")
	}
}

func TestKronConvention(t *testing.T) {
	// X on low operand only: should map |00> -> |01> i.e. basis 0 -> 1.
	m := Kron(Pauli1Q[1], Pauli1Q[0])
	if m[1][0] != 1 || m[0][1] != 1 {
		t.Fatalf("Kron low-bit convention wrong: %v", m)
	}
	// Against circuit's CX convention: CX = |0><0|⊗I + |1><1|⊗X with control low.
	p0 := circuit.Matrix2{{1, 0}, {0, 0}}
	p1 := circuit.Matrix2{{0, 0}, {0, 1}}
	var cx circuit.Matrix4
	a := Kron(p0, Pauli1Q[0])
	b := Kron(p1, Pauli1Q[1])
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			cx[r][c] = a[r][c] + b[r][c]
		}
	}
	want := circuit.Matrix2Q(circuit.CX)
	if cx != want {
		t.Fatalf("Kron-built CX mismatch:\n%v\nvs\n%v", cx, want)
	}
}

func TestMul4(t *testing.T) {
	zz := ZZMatrix(0.25)
	inv := ZZMatrix(-0.25)
	p := Mul4(zz, inv)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(p[r][c]-want) > 1e-12 {
				t.Fatal("Mul4(ZZ, ZZ^-1) != I")
			}
		}
	}
}

func TestReadoutFlipProb(t *testing.T) {
	cal := device.Generate(device.Linear(3), device.IdealProfile(), rng.New(1))
	cal.Meas01[1] = 0.05
	cal.Meas10[1] = 0.12
	cal.ReadoutCorr = 0.5
	if p := ReadoutFlipProb(cal, 1, 0, false); p != 0.05 {
		t.Fatalf("P(flip|0) = %v", p)
	}
	if p := ReadoutFlipProb(cal, 1, 1, false); p != 0.12 {
		t.Fatalf("P(flip|1) = %v", p)
	}
	if p := ReadoutFlipProb(cal, 1, 1, true); math.Abs(p-0.18) > 1e-12 {
		t.Fatalf("correlated P(flip|1) = %v", p)
	}
	// Cap at 0.5.
	cal.Meas10[1] = 0.45
	if p := ReadoutFlipProb(cal, 1, 1, true); p != 0.5 {
		t.Fatalf("cap failed: %v", p)
	}
}

func TestProbValidation(t *testing.T) {
	mustPanic(t, func() { DepolarizingKraus1Q(-0.1) })
	mustPanic(t, func() { DepolarizingKraus2Q(1.1) })
	mustPanic(t, func() { AmplitudeDampingKraus(2) })
	mustPanic(t, func() { SamplePauli1Q(-1, rng.New(1)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
