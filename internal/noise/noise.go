// Package noise turns a device calibration into concrete quantum channels.
//
// The model has three ingredients, chosen to reproduce the error phenomena
// the paper measures on IBMQ-14:
//
//  1. Stochastic (incoherent) errors: depolarizing noise after every gate
//     and T1/T2 damping over gate and idle windows. These are the errors an
//     IID simulator captures; on their own they spread wrong answers evenly
//     and keep IST high (paper Section 4.4, Figure 13's uncorrelated
//     curve).
//
//  2. Coherent (systematic) errors: per-qubit over-rotations, per-link ZZ
//     over-rotation on CX, and ZZ crosstalk kicks on couplings adjacent to
//     a firing CX. These are fixed properties of the chosen physical
//     qubits/links, so all trials of one mapping make the *same* mistake —
//     the correlated errors that let one wrong answer dominate (Sections
//     2.6 and 3).
//
//  3. Readout errors with state-dependent bias (reading |1> as 0 is more
//     likely than the reverse) and pairwise correlation between coupled
//     qubits, after Sun & Geller's correlated-SPAM characterization that
//     the paper cites.
package noise

import (
	"math"
	"math/cmplx"

	"edm/internal/circuit"
	"edm/internal/device"
	"edm/internal/rng"
)

// Pauli1Q holds the four one-qubit Pauli matrices indexed I, X, Y, Z.
var Pauli1Q = [4]circuit.Matrix2{
	circuit.Matrix1Q(circuit.I, nil),
	circuit.Matrix1Q(circuit.X, nil),
	circuit.Matrix1Q(circuit.Y, nil),
	circuit.Matrix1Q(circuit.Z, nil),
}

// DepolarizingKraus1Q returns the Kraus operators of the one-qubit
// depolarizing channel with error probability p: with probability p one of
// X, Y, Z is applied uniformly.
func DepolarizingKraus1Q(p float64) []circuit.Matrix2 {
	checkProb(p)
	if p == 0 {
		return []circuit.Matrix2{Pauli1Q[0]}
	}
	out := make([]circuit.Matrix2, 4)
	out[0] = scale2(Pauli1Q[0], math.Sqrt(1-p))
	f := math.Sqrt(p / 3)
	for i := 1; i < 4; i++ {
		out[i] = scale2(Pauli1Q[i], f)
	}
	return out
}

// DepolarizingKraus2Q returns the 16 Kraus operators of the two-qubit
// depolarizing channel with error probability p: with probability p one of
// the 15 non-identity two-qubit Paulis is applied uniformly.
func DepolarizingKraus2Q(p float64) []circuit.Matrix4 {
	checkProb(p)
	if p == 0 {
		return []circuit.Matrix4{Kron(Pauli1Q[0], Pauli1Q[0])}
	}
	out := make([]circuit.Matrix4, 0, 16)
	f := math.Sqrt(p / 15)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			w := f
			if a == 0 && b == 0 {
				w = math.Sqrt(1 - p)
			}
			out = append(out, scale4(Kron(Pauli1Q[a], Pauli1Q[b]), w))
		}
	}
	return out
}

// SamplePauli1Q applies the stochastic one-qubit depolarizing event for
// error probability p: with probability p a uniformly chosen X, Y or Z. It
// returns the Pauli index applied (0 = none).
func SamplePauli1Q(p float64, r *rng.RNG) int {
	checkProb(p)
	if p == 0 || !r.Bernoulli(p) {
		return 0
	}
	return 1 + r.Intn(3)
}

// SamplePauli2Q returns the pair of Pauli indices for a stochastic
// two-qubit depolarizing event with probability p ((0,0) = none).
func SamplePauli2Q(p float64, r *rng.RNG) (int, int) {
	checkProb(p)
	if p == 0 || !r.Bernoulli(p) {
		return 0, 0
	}
	k := 1 + r.Intn(15)
	return k & 3, k >> 2
}

// AmplitudeDampingKraus returns the Kraus pair of amplitude damping with
// decay probability gamma.
func AmplitudeDampingKraus(gamma float64) []circuit.Matrix2 {
	checkProb(gamma)
	return []circuit.Matrix2{
		{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}},
		{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}},
	}
}

// PhaseDampingKraus returns the Kraus pair of pure dephasing with
// dephasing probability lambda.
func PhaseDampingKraus(lambda float64) []circuit.Matrix2 {
	checkProb(lambda)
	return []circuit.Matrix2{
		{{1, 0}, {0, complex(math.Sqrt(1-lambda), 0)}},
		{{0, 0}, {0, complex(math.Sqrt(lambda), 0)}},
	}
}

// DampingParams converts an elapsed time into amplitude- and
// phase-damping probabilities for a qubit with the given T1/T2 (all in
// consistent units). The pure-dephasing rate is 1/T2 - 1/(2 T1), floored
// at zero so T2 = 2*T1 means no extra dephasing.
func DampingParams(elapsed, t1, t2 float64) (gammaAmp, gammaPhase float64) {
	if elapsed <= 0 {
		return 0, 0
	}
	gammaAmp = 1 - math.Exp(-elapsed/t1)
	invTphi := 1/t2 - 1/(2*t1)
	if invTphi > 0 {
		gammaPhase = 1 - math.Exp(-elapsed*invTphi)
	}
	return gammaAmp, gammaPhase
}

// RYMatrix returns the RY(theta) rotation, the form of the coherent
// over-rotation applied after gates.
func RYMatrix(theta float64) circuit.Matrix2 {
	return circuit.Matrix1Q(circuit.RY, []float64{theta})
}

// RZMatrix returns the RZ(theta) rotation used for idle phase drift.
func RZMatrix(theta float64) circuit.Matrix2 {
	return circuit.Matrix1Q(circuit.RZ, []float64{theta})
}

// ZZMatrix returns exp(-i theta Z⊗Z), the coherent ZZ interaction used
// for CX over-rotation and crosstalk. It is diagonal:
// diag(e^-it, e^it, e^it, e^-it).
func ZZMatrix(theta float64) circuit.Matrix4 {
	em := cmplx.Exp(complex(0, -theta))
	ep := cmplx.Exp(complex(0, theta))
	return circuit.Matrix4{
		{em, 0, 0, 0},
		{0, ep, 0, 0},
		{0, 0, ep, 0},
		{0, 0, 0, em},
	}
}

// Kron returns low ⊗ high with `low` acting on the first (low-bit)
// operand, matching the circuit.Matrix4 basis convention.
func Kron(low, high circuit.Matrix2) circuit.Matrix4 {
	var out circuit.Matrix4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[r][c] = low[r&1][c&1] * high[r>>1][c>>1]
		}
	}
	return out
}

// Mul4 returns a*b.
func Mul4(a, b circuit.Matrix4) circuit.Matrix4 {
	var out circuit.Matrix4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var acc complex128
			for k := 0; k < 4; k++ {
				acc += a[r][k] * b[k][c]
			}
			out[r][c] = acc
		}
	}
	return out
}

func scale2(m circuit.Matrix2, f float64) circuit.Matrix2 {
	c := complex(f, 0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] *= c
		}
	}
	return m
}

func scale4(m circuit.Matrix4, f float64) circuit.Matrix4 {
	c := complex(f, 0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] *= c
		}
	}
	return m
}

func checkProb(p float64) {
	if p < 0 || p > 1 {
		panic("noise: probability out of [0,1]")
	}
}

// ReadoutFlipProb returns the probability that qubit q's readout flips,
// given its true bit and whether any coupled neighbour's true bit is 1
// (the correlated-SPAM scaling).
func ReadoutFlipProb(cal *device.Calibration, q int, trueBit int, neighbourOne bool) float64 {
	var p float64
	if trueBit == 0 {
		p = cal.Meas01[q]
	} else {
		p = cal.Meas10[q]
	}
	if neighbourOne {
		p *= 1 + cal.ReadoutCorr
	}
	if p > 0.5 {
		p = 0.5
	}
	return p
}
